(** Synthetic program generators for the benchmarks: size along one
    axis is the parameter. *)

val flat_rows : n:int -> string
(** [n] tappable rows with a selection highlight (render scaling,
    incremental re-layout). *)

val independent_rows : n:int -> string
(** [n] rows each reading its own global; a tap invalidates one row's
    read set (the render-memoization workload). *)

val host_app : ?cold:int -> rows:int -> version:int -> unit -> string
(** The multi-session host's load-driver app: a [version] banner over
    [rows] tappable counter rows (banner at y=0, rows at y in
    [1, rows], a total-taps footer below).  A version bump is a
    broadcastable edit: counters survive the Fig. 12 fix-up, the
    version-named [epoch] global is reset, and the banner changes on
    every display.  [cold] (default 0) adds that many globals and
    functions the start page never references (reachable only through
    an unused [aux] page): editing one of them is the O(edit)
    broadcast workload — the diff's dirty set excludes the start page,
    so the fleet's displays survive the swap (B13,
    [host_bench --edit-size]). *)

val nested : depth:int -> fanout:int -> string
(** A complete box tree of the given depth and fan-out. *)

val many_globals : n:int -> string
(** [n] globals, all written by init (the fix-up workload). *)

val many_functions : n:int -> string
(** [n] chained functions (the typechecking workload). *)

val page_chain : n:int -> string
(** [n] pages, each linking to the next. *)

val compile_exn : string -> Live_surface.Compile.compiled
