(** Synthetic program generators for the benchmarks: programs whose
    size along one axis (box count, nesting depth, global count,
    function count, page-stack depth) is a parameter, so the benches
    can sweep it. *)

let buf_program (f : Buffer.t -> unit) : string =
  let buf = Buffer.create 1024 in
  f buf;
  Buffer.contents buf

(** A page rendering [n] flat rows — the render-scaling workload (B1's
    companion; Sec. 5: "recreating the entire box tree on a redraw can
    become slow if there are many boxes on the screen"). *)
let flat_rows ~(n : int) : string =
  buf_program (fun b ->
      Buffer.add_string b "global sel : number = 0\n\n";
      Buffer.add_string b "page start()\ninit { }\nrender {\n";
      Buffer.add_string b "  boxed {\n";
      Buffer.add_string b (Printf.sprintf "    for i from 0 to %d {\n" n);
      Buffer.add_string b "      boxed {\n";
      Buffer.add_string b "        box.direction := \"horizontal\"\n";
      Buffer.add_string b "        if i == sel {\n";
      Buffer.add_string b "          box.background := \"light blue\"\n";
      Buffer.add_string b "        }\n";
      Buffer.add_string b "        boxed { box.width := 8 post \"row \" ++ str(i) }\n";
      Buffer.add_string b "        boxed { post \"value \" ++ str(i * i) }\n";
      Buffer.add_string b "        on tapped { sel := i }\n";
      Buffer.add_string b "      }\n";
      Buffer.add_string b "    }\n";
      Buffer.add_string b "  }\n";
      Buffer.add_string b "}\n")

(** [n] rows, each reading {e its own} global counter, tapping a row
    bumps only that row's global — the render-memoization workload: a
    tap invalidates exactly one row's read set, so a dependency-tracked
    render cache re-evaluates one row and splices the other [n-1].
    (Contrast {!flat_rows}, where every row reads the shared [sel]
    global and a tap invalidates everything.)  Rows are unrolled
    because the surface language cannot index globals dynamically. *)
let independent_rows ~(n : int) : string =
  buf_program (fun b ->
      for i = 0 to n - 1 do
        Buffer.add_string b (Printf.sprintf "global g%d : number = 0\n" i)
      done;
      Buffer.add_string b "\npage start()\ninit { }\nrender {\n";
      Buffer.add_string b "  boxed {\n";
      for i = 0 to n - 1 do
        Buffer.add_string b "    boxed {\n";
        Buffer.add_string b "      box.direction := \"horizontal\"\n";
        Buffer.add_string b
          (Printf.sprintf
             "      boxed { box.width := 8 post \"row %d\" }\n" i);
        Buffer.add_string b
          (Printf.sprintf "      boxed { post \"count \" ++ str(g%d) }\n" i);
        Buffer.add_string b
          (Printf.sprintf "      on tapped { g%d := g%d + 1 }\n" i i);
        Buffer.add_string b "    }\n"
      done;
      Buffer.add_string b "  }\n";
      Buffer.add_string b "}\n")

(** The multi-session host's load-driver app: a version banner over
    [rows] independently-tappable counter rows plus a total-taps
    footer.  The [version] parameter makes version bumps broadcastable
    edits with observable, accountable fix-up: the banner text changes
    (every display re-renders), the per-row counters and the shared
    [tick] survive (they type under the new code), and the
    version-named [epoch{v}] global is dropped and re-initialised
    (each broadcast's fix-up report lists exactly one reset global per
    session).  Banner at y=0, tappable rows at y in [1, rows], footer
    below. *)
let host_app ?(cold = 0) ~(rows : int) ~(version : int) () : string =
  buf_program (fun b ->
      Buffer.add_string b "global tick : number = 0\n";
      for i = 0 to rows - 1 do
        Buffer.add_string b (Printf.sprintf "global g%d : number = 0\n" i)
      done;
      (* [cold] definitions the start page never references: [cold]
         globals and [cold] functions, the functions reachable only
         through an [aux] page nobody pushes.  Editing one of them is
         the O(edit) broadcast's target workload — the diff's dirty set
         is {the edited def} (+ [aux] for a function), the start page
         stays transitively clean, and every session's display cache
         survives the swap.  Edits are made structurally
         ([Program.with_def] on the compiled core program — see
         [bin/host_bench.ml --edit-size]), not by regenerating source,
         so unchanged definitions stay physically shared. *)
      for i = 0 to cold - 1 do
        Buffer.add_string b
          (Printf.sprintf "global c%d : number = %d\n" i i);
        Buffer.add_string b
          (Printf.sprintf
             "fun cf%d(x : number) : number {\n  return x + c%d + %d\n}\n" i i
             i)
      done;
      if cold > 0 then begin
        Buffer.add_string b "\npage aux()\ninit { }\nrender {\n";
        Buffer.add_string b "  boxed { post \"aux \" ++ str(";
        for i = 0 to cold - 1 do
          if i > 0 then Buffer.add_string b " + ";
          Buffer.add_string b (Printf.sprintf "cf%d(0)" i)
        done;
        Buffer.add_string b ") }\n}\n"
      end;
      Buffer.add_string b
        (Printf.sprintf "global epoch%d : number = %d\n" version version);
      (* init writes the epoch global, so it is in the store and the
         next version bump's fix-up observably drops it (S-SKIP) *)
      Buffer.add_string b
        (Printf.sprintf "\npage start()\ninit { epoch%d := %d }\nrender {\n"
           version (version + 100));
      Buffer.add_string b "  boxed {\n";
      Buffer.add_string b
        (Printf.sprintf
           "    boxed { post \"fleet app v%d epoch \" ++ str(epoch%d) }\n"
           version version);
      for i = 0 to rows - 1 do
        Buffer.add_string b "    boxed {\n";
        Buffer.add_string b "      box.direction := \"horizontal\"\n";
        Buffer.add_string b
          (Printf.sprintf "      boxed { box.width := 8 post \"row %d\" }\n" i);
        Buffer.add_string b
          (Printf.sprintf "      boxed { post \"count \" ++ str(g%d) }\n" i);
        Buffer.add_string b
          (Printf.sprintf
             "      on tapped { g%d := g%d + 1 tick := tick + 1 }\n" i i);
        Buffer.add_string b "    }\n"
      done;
      Buffer.add_string b "    boxed { post \"taps \" ++ str(tick) }\n";
      Buffer.add_string b "  }\n";
      Buffer.add_string b "}\n")

(** A page rendering a complete tree of boxes with the given depth and
    fan-out — the nesting workload for layout. *)
let nested ~(depth : int) ~(fanout : int) : string =
  buf_program (fun b ->
      Buffer.add_string b "fun node(d : number) {\n";
      Buffer.add_string b "  boxed {\n";
      Buffer.add_string b "    post \"d\" ++ str(d)\n";
      Buffer.add_string b "    if d > 0 {\n";
      Buffer.add_string b
        (Printf.sprintf "      for i from 0 to %d {\n" fanout);
      Buffer.add_string b "        node(d - 1)\n";
      Buffer.add_string b "      }\n";
      Buffer.add_string b "    }\n";
      Buffer.add_string b "  }\n";
      Buffer.add_string b "}\n\n";
      Buffer.add_string b "page start()\ninit { }\nrender {\n";
      Buffer.add_string b (Printf.sprintf "  node(%d)\n" depth);
      Buffer.add_string b "}\n")

(** A program with [n] globals, all written by init — the store-fixup
    workload (B7). *)
let many_globals ~(n : int) : string =
  buf_program (fun b ->
      for i = 0 to n - 1 do
        Buffer.add_string b
          (Printf.sprintf "global g%d : number = %d\n" i i)
      done;
      Buffer.add_string b "\npage start()\ninit {\n";
      for i = 0 to n - 1 do
        Buffer.add_string b (Printf.sprintf "  g%d := g%d + 1\n" i i)
      done;
      Buffer.add_string b "}\nrender {\n  boxed { post \"g0 = \" ++ str(g0) }\n}\n")

(** A program with [n] small functions chained into the render path —
    the typechecking workload (B5). *)
let many_functions ~(n : int) : string =
  buf_program (fun b ->
      Buffer.add_string b "fun f0(x : number) : number {\n  return x + 1\n}\n";
      for i = 1 to n - 1 do
        Buffer.add_string b
          (Printf.sprintf
             "fun f%d(x : number) : number {\n  return f%d(x) + %d\n}\n" i
             (i - 1) i)
      done;
      Buffer.add_string b "\npage start()\ninit { }\nrender {\n";
      Buffer.add_string b
        (Printf.sprintf "  boxed { post \"v = \" ++ str(f%d(0)) }\n" (n - 1));
      Buffer.add_string b "}\n")

(** [n] pages where page [i] links to page [i+1]; used for page-stack
    and navigation tests. *)
let page_chain ~(n : int) : string =
  buf_program (fun b ->
      Buffer.add_string b "page start()\ninit { }\nrender {\n";
      Buffer.add_string b "  boxed {\n    post \"page 0\"\n";
      if n > 1 then
        Buffer.add_string b "    on tapped { push p1() }\n";
      Buffer.add_string b "  }\n}\n\n";
      for i = 1 to n - 1 do
        Buffer.add_string b (Printf.sprintf "page p%d()\ninit { }\nrender {\n" i);
        Buffer.add_string b
          (Printf.sprintf "  boxed {\n    post \"page %d\"\n" i);
        if i < n - 1 then
          Buffer.add_string b
            (Printf.sprintf "    on tapped { push p%d() }\n" (i + 1));
        Buffer.add_string b "  }\n}\n\n"
      done)

let compile_exn (src : string) : Live_surface.Compile.compiled =
  match Live_surface.Compile.compile src with
  | Ok c -> c
  | Error e ->
      invalid_arg
        ("synthetic workload does not compile: "
        ^ Live_surface.Compile.error_to_string e
        ^ "\n" ^ src)
