(** Interpretation of a box's attribute entries as a style record.
    Later writes win; values are clamped, not rejected — attribute
    {e types} are T-ATTR's business, ranges are presentation. *)

type direction = Vertical | Horizontal
type align = Left | Center | Right

type t = {
  margin : int;
  padding : int;
  border : bool;
  direction : direction;
  background : Color.t;
  color : Color.t;
  fontsize : int;  (** line-height multiplier, 1-4 *)
  bold : bool;
  align : align;
  width : int option;  (** fixed frame width *)
  height : int option;
  handler : Live_core.Ast.value option;  (** the [ontap] handler *)
}

val default : t
val equal : t -> t -> bool
val apply : t -> string -> Live_core.Ast.value -> t
val of_box : Live_core.Boxcontent.t -> t
