(** Interpretation of box attributes (the [B [a = v]] entries of the
    box content) as a style record for the layout engine.

    Later attribute writes win, matching the render semantics where a
    second [box.a := v] overwrites the first.  Numeric attributes are
    floored to whole cells; nonsensical values are clamped rather than
    rejected — attribute {e types} are enforced by T-ATTR (Fig. 10),
    attribute {e ranges} are presentation concerns. *)

module Ast = Live_core.Ast
module Boxcontent = Live_core.Boxcontent

type direction = Vertical | Horizontal

type align = Left | Center | Right

type t = {
  margin : int;
  padding : int;
  border : bool;
  direction : direction;
  background : Color.t;
  color : Color.t;
  fontsize : int;  (** line-height multiplier, >= 1 *)
  bold : bool;
  align : align;
  width : int option;  (** fixed frame width, overrides natural *)
  height : int option;
  handler : Ast.value option;  (** the [ontap] handler, if any *)
}

let default =
  {
    margin = 0;
    padding = 0;
    border = false;
    direction = Vertical;
    background = Color.Default;
    color = Color.Default;
    fontsize = 1;
    bold = false;
    align = Left;
    width = None;
    height = None;
    handler = None;
  }

let equal (a : t) (b : t) : bool =
  a.margin = b.margin && a.padding = b.padding && a.border = b.border
  && a.direction = b.direction
  && a.background = b.background
  && a.color = b.color && a.fontsize = b.fontsize && a.bold = b.bold
  && a.align = b.align && a.width = b.width && a.height = b.height
  && Option.equal Ast.equal_value a.handler b.handler

let int_of_value ?(min_ = 0) (v : Ast.value) : int option =
  match v with
  | Ast.VNum f when Float.is_finite f -> Some (max min_ (int_of_float f))
  | _ -> None

let apply (st : t) (attr : string) (v : Ast.value) : t =
  match (attr, v) with
  | "margin", _ -> (
      match int_of_value v with Some n -> { st with margin = n } | None -> st)
  | "padding", _ -> (
      match int_of_value v with Some n -> { st with padding = n } | None -> st)
  | "border", _ -> (
      match int_of_value v with
      | Some n -> { st with border = n > 0 }
      | None -> st)
  | "fontsize", _ -> (
      match int_of_value ~min_:1 v with
      | Some n -> { st with fontsize = min 4 n }
      | None -> st)
  | "bold", _ -> (
      match int_of_value v with
      | Some n -> { st with bold = n > 0 }
      | None -> st)
  | "width", _ -> (
      match int_of_value v with
      | Some 0 -> { st with width = None }
      | Some n -> { st with width = Some n }
      | None -> st)
  | "height", _ -> (
      match int_of_value v with
      | Some 0 -> { st with height = None }
      | Some n -> { st with height = Some n }
      | None -> st)
  | "direction", Ast.VStr s -> (
      match String.lowercase_ascii (String.trim s) with
      | "horizontal" -> { st with direction = Horizontal }
      | "vertical" -> { st with direction = Vertical }
      | _ -> st)
  | "align", Ast.VStr s -> (
      match String.lowercase_ascii (String.trim s) with
      | "left" -> { st with align = Left }
      | "center" | "centre" -> { st with align = Center }
      | "right" -> { st with align = Right }
      | _ -> st)
  | "background", Ast.VStr s -> { st with background = Color.of_name s }
  | "color", Ast.VStr s -> { st with color = Color.of_name s }
  | "ontap", _ -> { st with handler = Some v }
  | _ -> st

(** Collect the style of a box from its attribute entries. *)
let of_box (b : Boxcontent.t) : t =
  List.fold_left
    (fun st item ->
      match item with
      | Boxcontent.Attr (a, v) -> apply st a v
      | Boxcontent.Leaf _ | Boxcontent.Box _ -> st)
    default b
