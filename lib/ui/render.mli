(** Painting a layout tree into a framebuffer: parent-first, so nested
    boxes override inherited styling; foreground color inherits.
    {!paint_damaged} repaints only the rows on which the new layout
    differs from the previous frame. *)

val paint :
  Framebuffer.t -> ?rows:bool array -> ?fg:Color.t -> Layout.node -> unit
(** [rows] is a damage mask: only marked rows are written, and nodes
    whose span contains no marked row are skipped wholesale. *)

type damage = {
  repainted_rows : int;  (** rows cleared and repainted *)
  total_rows : int;  (** framebuffer height *)
  full : bool;  (** height changed: whole-frame repaint *)
}

val mark_damage : bool array -> Layout.node -> Layout.node -> unit
(** Mark every row any difference between the two trees touches, in
    both old and new coordinates. *)

val paint_damaged :
  prev:Layout.node * Framebuffer.t ->
  ?fg:Color.t ->
  Layout.node ->
  Framebuffer.t * damage
(** Repaint only the dirty rows, starting from the previous frame.
    Cell-identical to a full {!paint} into a fresh buffer; returns the
    previous buffer unchanged when nothing differs. *)

val render_page :
  ?cache:Layout.cache ->
  ?width:int ->
  Live_core.Boxcontent.t ->
  Framebuffer.t * Layout.node

val screenshot : ?width:int -> Live_core.Boxcontent.t -> string
(** Plain text — the golden-test format. *)

val screenshot_ansi : ?width:int -> Live_core.Boxcontent.t -> string

val screenshot_state : ?width:int -> Live_core.State.t -> string
(** [⊥] renders as ["<display invalid>"]. *)
