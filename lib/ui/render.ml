(** Painting a layout tree into a {!Framebuffer}.

    Paint order is parent-first: a box fills its background, draws its
    border, then paints its text and children over it, so nested boxes
    naturally override inherited styling.  Foreground color inherits
    down the tree; background does not need to (the parent already
    painted those cells).

    {b Damage-tracked repainting} ({!paint_damaged}): instead of
    repainting every cell each frame, diff the new layout tree against
    the previous one, mark the row spans that differ as dirty, start
    from the previous framebuffer, clear only the dirty rows and
    repaint with a row mask.  Clean rows keep the previous frame's
    cells verbatim; nodes whose span misses every dirty row are skipped
    wholesale, so the repaint cost tracks the size of the change, not
    the size of the screen.  Correctness: the diff marks (in both old
    and new coordinates) every row any layout difference touches, and
    within a dirty row all intersecting nodes repaint in full paint
    order — so dirty rows equal a full paint and clean rows were equal
    already. *)

(** [rows]: damage mask — when given, only marked rows are written and
    nodes whose vertical span contains no marked row are skipped. *)
let rec paint (fb : Framebuffer.t) ?rows ?(fg = Color.Default)
    (n : Layout.node) : unit =
  let span_live =
    match rows with
    | None -> true
    | Some m ->
        let y0 = max 0 n.Layout.outer.Geometry.y in
        let y1 =
          min (Array.length m - 1)
            (n.Layout.outer.Geometry.y + n.Layout.outer.Geometry.h - 1)
        in
        let rec any y = y <= y1 && (m.(y) || any (y + 1)) in
        any y0
  in
  if span_live then begin
    let style = n.Layout.style in
    if style.Style.background <> Color.Default then
      Framebuffer.fill_rect fb ?rows n.Layout.frame
        ~bg:style.Style.background;
    if style.Style.border then begin
      let border_fg =
        if style.Style.color <> Color.Default then style.Style.color else fg
      in
      Framebuffer.draw_border fb ?rows n.Layout.frame ~fg:border_fg ()
    end;
    let fg =
      if style.Style.color <> Color.Default then style.Style.color else fg
    in
    let clip_bottom = n.Layout.frame.Geometry.y + n.Layout.frame.Geometry.h in
    List.iter
      (fun item ->
        match item with
        | Layout.Text { lines; rect; style = tstyle } ->
            let tfg =
              if tstyle.Style.color <> Color.Default then tstyle.Style.color
              else fg
            in
            let bold = tstyle.Style.bold || tstyle.Style.fontsize > 1 in
            List.iteri
              (fun i line ->
                let y = rect.Geometry.y + (i * tstyle.Style.fontsize) in
                if y < clip_bottom then
                  Framebuffer.draw_text fb ?rows ~x:rect.Geometry.x ~y
                    ~max_x:(rect.Geometry.x + rect.Geometry.w)
                    ~fg:tfg ~bold line)
              lines
        | Layout.Child c -> paint fb ?rows ~fg c)
      n.Layout.items
  end

(* ------------------------------------------------------------------ *)
(* Damage tracking                                                     *)
(* ------------------------------------------------------------------ *)

(** Damage statistics of one {!paint_damaged} call. *)
type damage = {
  repainted_rows : int;  (** rows cleared and repainted *)
  total_rows : int;  (** framebuffer height *)
  full : bool;  (** height changed: whole-frame repaint *)
}

let mark_span (rows : bool array) (r : Geometry.rect) : unit =
  let y1 = min (Array.length rows - 1) (r.Geometry.y + r.Geometry.h - 1) in
  for y = max 0 r.Geometry.y to y1 do
    rows.(y) <- true
  done

(** A node's own painted output (background, border, and descent
    decisions) is determined by these fields; items are diffed
    separately. *)
let shallow_equal (a : Layout.node) (b : Layout.node) : bool =
  Option.equal Live_core.Srcid.equal a.Layout.srcid b.Layout.srcid
  && Style.equal a.Layout.style b.Layout.style
  && Geometry.equal a.Layout.outer b.Layout.outer
  && Geometry.equal a.Layout.frame b.Layout.frame
  && Geometry.equal a.Layout.inner b.Layout.inner

let mark_item (rows : bool array) (it : Layout.item) : unit =
  match it with
  | Layout.Text { rect; _ } -> mark_span rows rect
  | Layout.Child c -> mark_span rows c.Layout.outer

(** Mark every row any difference between the two trees touches, in
    both old and new coordinates — the conservative damage set. *)
let rec mark_damage (rows : bool array) (a : Layout.node) (b : Layout.node) :
    unit =
  if a == b then () (* reused wholesale: no damage, in constant time *)
  else if not (shallow_equal a b) then begin
    mark_span rows a.Layout.outer;
    mark_span rows b.Layout.outer
  end
  else begin
    let rec go xs ys =
      match (xs, ys) with
      | [], [] -> ()
      | x :: xs', y :: ys' -> (
          match (x, y) with
          | Layout.Child ca, Layout.Child cb ->
              mark_damage rows ca cb;
              go xs' ys'
          | _, _ ->
              if not (Layout.item_equal x y) then begin
                mark_item rows x;
                mark_item rows y
              end;
              go xs' ys')
      | rest, [] | [], rest -> List.iter (mark_item rows) rest
    in
    go a.Layout.items b.Layout.items
  end

(** Paint [root] by repainting only the rows on which it differs from
    the previous frame [(prev_root, prev_fb)].  The result is
    cell-identical to a full {!paint} of [root] into a fresh buffer.
    Falls back to a full repaint when the frame height changed. *)
let paint_damaged ~(prev : Layout.node * Framebuffer.t) ?(fg = Color.Default)
    (root : Layout.node) : Framebuffer.t * damage =
  let prev_root, prev_fb = prev in
  let height = max 1 (Layout.total_height root) in
  let width = prev_fb.Framebuffer.width in
  if height <> prev_fb.Framebuffer.height then begin
    let fb = Framebuffer.create ~width ~height in
    paint fb ~fg root;
    (fb, { repainted_rows = height; total_rows = height; full = true })
  end
  else begin
    let rows = Array.make height false in
    mark_damage rows prev_root root;
    let dirty = Array.fold_left (fun n d -> if d then n + 1 else n) 0 rows in
    if dirty = 0 then
      (prev_fb, { repainted_rows = 0; total_rows = height; full = false })
    else begin
      let fb = Framebuffer.copy prev_fb in
      Array.iteri (fun y d -> if d then Framebuffer.clear_row fb y) rows;
      paint fb ~rows ~fg root;
      (fb, { repainted_rows = dirty; total_rows = height; full = false })
    end
  end

(** Lay out and paint a page's box content.  Returns the framebuffer
    and the layout tree (for hit-testing and navigation). *)
let render_page ?cache ?(width = 48) (b : Live_core.Boxcontent.t) :
    Framebuffer.t * Layout.node =
  let root = Layout.layout_page ?cache ~width b in
  let height = max 1 (Layout.total_height root) in
  let fb = Framebuffer.create ~width ~height in
  paint fb root;
  (fb, root)

(** Plain-text screenshot of box content — the golden-test format. *)
let screenshot ?width (b : Live_core.Boxcontent.t) : string =
  let fb, _ = render_page ?width b in
  Framebuffer.to_text fb

(** ANSI screenshot for terminals. *)
let screenshot_ansi ?width (b : Live_core.Boxcontent.t) : string =
  let fb, _ = render_page ?width b in
  Framebuffer.to_ansi fb

(** Screenshot of a system state's display; [⊥] renders as a marker. *)
let screenshot_state ?width (st : Live_core.State.t) : string =
  match st.Live_core.State.display with
  | Live_core.State.Invalid -> "<display invalid>\n"
  | Live_core.State.Shown b -> screenshot ?width b
