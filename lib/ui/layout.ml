(** The layout engine: box content (Fig. 7's [B]) to positioned
    rectangles.

    The model: every box has an {e outer} rectangle (including margin),
    a {e frame} (the painted area: background and border) and an
    {e inner} content rectangle (frame minus border and padding).  A
    box lays out its items — posted text leaves and nested boxes — in
    document order, stacked vertically (the default, as in the paper)
    or horizontally.

    Sizing follows the familiar block model: children of a vertical box
    stretch to the available width; children of a horizontal box
    shrink to their natural width; [width]/[height] attributes
    override.  Text wraps at the available width.  Heights are always
    natural (content-determined) unless fixed.

    The resulting tree keeps, for every box, the {!Live_core.Srcid.t}
    of the [boxed] statement that created it and the box path into the
    box content — the data UI-Code Navigation needs. *)

module Boxcontent = Live_core.Boxcontent
module Pretty = Live_core.Pretty
open Geometry

type item =
  | Text of {
      lines : string list;
      rect : rect;
      style : Style.t;  (** the owning box's style (color, bold, ...) *)
    }
  | Child of node

and node = {
  srcid : Live_core.Srcid.t option;
  bpath : int list;  (** box path within the page's box content *)
  style : Style.t;
  outer : rect;
  frame : rect;
  inner : rect;
  items : item list;
}

(** Greedy word-wrap; hard-breaks words longer than the width.  Lines
    that already fit are kept verbatim (preserving leading and internal
    spaces — they matter in horizontal layouts). *)
let rec wrap_text (width : int) (s : string) : string list =
  let width = max 1 width in
  let fits =
    String.split_on_char '\n' s
    |> List.for_all (fun l -> String.length l <= width)
  in
  if fits then String.split_on_char '\n' s
  else wrap_text_greedy width s

and wrap_text_greedy (width : int) (s : string) : string list =
  let words =
    String.split_on_char ' ' s
    |> List.concat_map (fun w ->
           (* explicit newlines split lines *)
           String.split_on_char '\n' w
           |> List.mapi (fun i p -> if i = 0 then (false, p) else (true, p)))
  in
  let lines = ref [] in
  let cur = Buffer.create width in
  let flush () =
    lines := Buffer.contents cur :: !lines;
    Buffer.clear cur
  in
  let add_word w =
    let rec hard w =
      if String.length w > width then begin
        if Buffer.length cur > 0 then flush ();
        Buffer.add_string cur (String.sub w 0 width);
        flush ();
        hard (String.sub w width (String.length w - width))
      end
      else if Buffer.length cur = 0 then Buffer.add_string cur w
      else if Buffer.length cur + 1 + String.length w <= width then begin
        Buffer.add_char cur ' ';
        Buffer.add_string cur w
      end
      else begin
        flush ();
        Buffer.add_string cur w
      end
    in
    hard w
  in
  List.iter
    (fun (newline, w) ->
      if newline then flush ();
      if w <> "" then add_word w)
    words;
  flush ();
  let result = List.rev !lines in
  match result with [] -> [ "" ] | _ -> result

(** Natural (unwrapped) width of a text. *)
let text_natural_width (s : string) : int =
  String.split_on_char '\n' s
  |> List.fold_left (fun m line -> max m (String.length line)) 0

(* Natural content width of a box: the width it would occupy without
   wrapping, used to shrink-fit children of horizontal boxes. *)
let rec natural_width (b : Boxcontent.t) : int =
  let style = Style.of_box b in
  match style.Style.width with
  | Some w -> w + (2 * style.Style.margin)
  | None ->
      let chrome = 2 * (style.Style.padding + if style.Style.border then 1 else 0) in
      let widths =
        List.filter_map
          (function
            | Boxcontent.Leaf v ->
                Some (text_natural_width (Pretty.display_string v))
            | Boxcontent.Box (_, inner) -> Some (natural_width inner)
            | Boxcontent.Attr _ -> None)
          b
      in
      let content =
        match style.Style.direction with
        | Style.Vertical -> List.fold_left max 0 widths
        | Style.Horizontal -> List.fold_left ( + ) 0 widths
      in
      content + chrome + (2 * style.Style.margin)

let align_offset (align : Style.align) (avail : int) (w : int) : int =
  match align with
  | Style.Left -> 0
  | Style.Center -> max 0 ((avail - w) / 2)
  | Style.Right -> max 0 (avail - w)

(** A layout cache, keyed by (content hash, available width, stretch):
    the Sec. 5 optimization — "reuse box tree elements that have not
    changed".  Cached subtrees are stored normalized to the origin and
    rebased on reuse, so a row that reappears at a different vertical
    offset still hits. *)
type cache = {
  tbl : (int * int * int * bool, Boxcontent.t * node) Hashtbl.t;
      (** key: content hash, srcid (-1 for none), avail width, stretch;
          the stored content is compared with {!Boxcontent.equal} on
          every hit, so hash collisions cannot corrupt the display *)
  mutable hits : int;
  mutable misses : int;
}

let create_cache () : cache = { tbl = Hashtbl.create 256; hits = 0; misses = 0 }

let cache_stats (c : cache) = (c.hits, c.misses)

let rec rebase ~(dx : int) ~(dy : int) ~(prefix : int list) (n : node) : node
    =
  if dx = 0 && dy = 0 && prefix = [] then n
  else
    let move (r : rect) = { r with x = r.x + dx; y = r.y + dy } in
    {
      n with
      bpath = prefix @ n.bpath;
      outer = move n.outer;
      frame = move n.frame;
      inner = move n.inner;
      items =
        List.map
          (function
            | Text t -> Text { t with rect = move t.rect }
            | Child c -> Child (rebase ~dx ~dy ~prefix c))
          n.items;
    }

(** Previous-frame layout reuse by {e physical} identity, for sessions
    whose box trees come out of {!Live_core.Render_cache}: the render
    cache splices unchanged subtrees as the very same values, so a
    subtree that is [==] to what stood at the same box path last frame
    (with the same available width, stretch mode and srcid) lays out to
    the same node, translated.  Unlike the structural {!cache} this
    needs no hashing and no deep equality, and it holds exactly one
    frame's entries, so it cannot grow without bound. *)
type reuse = {
  mutable last : (int list, reuse_entry) Hashtbl.t;
      (** box path -> what was there last frame *)
  mutable rhits : int;
  mutable rmisses : int;
}

and reuse_entry = {
  ebox : Boxcontent.t;
  esrcid : Live_core.Srcid.t option;
  eavail : int;
  estretch : bool;
  enode : node;
}

let create_reuse () : reuse =
  { last = Hashtbl.create 64; rhits = 0; rmisses = 0 }

let reuse_stats (r : reuse) = (r.rhits, r.rmisses)

(* Record a laid-out subtree in the next frame's table.  Children's
   layout inputs are recovered from the node itself: vertical children
   stretch to the parent's inner width; horizontal children shrink
   within the space right of their own left edge. *)
let rec register_tree (next : (int list, reuse_entry) Hashtbl.t)
    (b : Boxcontent.t) ~(srcid : Live_core.Srcid.t option) ~(avail : int)
    ~(stretch : bool) (n : node) : unit =
  Hashtbl.replace next n.bpath
    { ebox = b; esrcid = srcid; eavail = avail; estretch = stretch; enode = n };
  let horizontal = n.style.Style.direction = Style.Horizontal in
  let boxes =
    List.filter_map
      (function Boxcontent.Box (id, c) -> Some (id, c) | _ -> None)
      b
  in
  let childs =
    List.filter_map (function Child c -> Some c | Text _ -> None) n.items
  in
  (* every Box item becomes a Child node, in order, by construction;
     stop at the shorter list out of caution *)
  let rec both bs cs =
    match (bs, cs) with
    | (id, cb) :: bs, cn :: cs ->
        let avail =
          if horizontal then n.inner.x + n.inner.w - cn.outer.x
          else n.inner.w
        in
        register_tree next cb ~srcid:id ~avail ~stretch:(not horizontal) cn;
        both bs cs
    | _, _ -> ()
  in
  both boxes childs

(** Lay out one box at absolute position [(x, y)] with [avail] outer
    width.  [stretch] forces the frame to fill the available width
    (vertical-stack children); otherwise the box shrinks to content.
    [frame] is the previous-frame physical-reuse table (paired with the
    table being filled for the next frame); when active it takes the
    place of the structural [cache]. *)
let rec layout_box_frames ?cache ?frame ~(x : int) ~(y : int) ~(avail : int)
    ~(stretch : bool) ~(bpath : int list)
    (srcid : Live_core.Srcid.t option) (b : Boxcontent.t) : node =
  match frame with
  | Some (r, next) -> (
      match Hashtbl.find_opt r.last bpath with
      | Some e
        when e.ebox == b && e.eavail = avail && e.estretch = stretch
             && Option.equal Live_core.Srcid.equal e.esrcid srcid ->
          r.rhits <- r.rhits + 1;
          let n0 = e.enode in
          let n =
            rebase ~dx:(x - n0.outer.x) ~dy:(y - n0.outer.y) ~prefix:[] n0
          in
          register_tree next b ~srcid ~avail ~stretch n;
          n
      | _ ->
          r.rmisses <- r.rmisses + 1;
          let n = layout_box_raw ?frame ~x ~y ~avail ~stretch ~bpath srcid b in
          Hashtbl.replace next bpath
            { ebox = b; esrcid = srcid; eavail = avail; estretch = stretch;
              enode = n };
          n)
  | None -> (
      match cache with
      | None ->
          layout_box_raw ?cache:None ~x ~y ~avail ~stretch ~bpath srcid b
      | Some c -> (
          let id =
            match srcid with
            | Some i -> Live_core.Srcid.to_int i
            | None -> -1
          in
          let key = (Boxcontent.hash b, id, avail, stretch) in
          match Hashtbl.find_opt c.tbl key with
          | Some (b0, n0) when Boxcontent.equal b0 b ->
              c.hits <- c.hits + 1;
              rebase ~dx:x ~dy:y ~prefix:bpath n0
          | _ ->
              c.misses <- c.misses + 1;
              let n0 =
                layout_box_raw ~cache:c ~x:0 ~y:0 ~avail ~stretch ~bpath:[]
                  srcid b
              in
              Hashtbl.replace c.tbl key (b, n0);
              rebase ~dx:x ~dy:y ~prefix:bpath n0))

and layout_box_raw ?cache ?frame ~(x : int) ~(y : int) ~(avail : int)
    ~(stretch : bool) ~(bpath : int list)
    (srcid : Live_core.Srcid.t option) (b : Boxcontent.t) : node =
  let style = Style.of_box b in
  let margin = style.Style.margin in
  let chrome = style.Style.padding + if style.Style.border then 1 else 0 in
  (* decide the frame width *)
  let frame_w =
    match style.Style.width with
    | Some w -> max 0 (min w (avail - (2 * margin)))
    | None ->
        if stretch then max 0 (avail - (2 * margin))
        else
          let nat = natural_width b - (2 * margin) in
          max 0 (min nat (avail - (2 * margin)))
  in
  let inner_w = max 0 (frame_w - (2 * chrome)) in
  let inner_x = x + margin + chrome in
  let inner_y = y + margin + chrome in
  (* lay out items *)
  let items = ref [] in
  let cursor_x = ref inner_x in
  let cursor_y = ref inner_y in
  let max_row_h = ref 0 in
  let box_index = ref 0 in
  let horizontal = style.Style.direction = Style.Horizontal in
  List.iter
    (fun it ->
      match it with
      | Boxcontent.Attr _ -> ()
      | Boxcontent.Leaf v ->
          let s = Pretty.display_string v in
          if horizontal then begin
            let w = min (text_natural_width s) (max 0 (inner_x + inner_w - !cursor_x)) in
            let lines = wrap_text w s in
            let h = List.length lines * style.Style.fontsize in
            let r = make ~x:!cursor_x ~y:!cursor_y ~w ~h in
            items := Text { lines; rect = r; style } :: !items;
            cursor_x := !cursor_x + w;
            max_row_h := max !max_row_h h
          end
          else begin
            let lines = wrap_text inner_w s in
            let w = List.fold_left (fun m l -> max m (String.length l)) 0 lines in
            let h = List.length lines * style.Style.fontsize in
            let ax = inner_x + align_offset style.Style.align inner_w w in
            let r = make ~x:ax ~y:!cursor_y ~w ~h in
            items := Text { lines; rect = r; style } :: !items;
            cursor_y := !cursor_y + h
          end
      | Boxcontent.Box (child_id, child) ->
          let idx = !box_index in
          incr box_index;
          if horizontal then begin
            let child_avail = max 0 (inner_x + inner_w - !cursor_x) in
            let n =
              layout_box_frames ?cache ?frame ~x:!cursor_x ~y:!cursor_y
                ~avail:child_avail ~stretch:false ~bpath:(bpath @ [ idx ])
                child_id child
            in
            items := Child n :: !items;
            cursor_x := !cursor_x + n.outer.w;
            max_row_h := max !max_row_h n.outer.h
          end
          else begin
            let n =
              layout_box_frames ?cache ?frame ~x:inner_x ~y:!cursor_y ~avail:inner_w
                ~stretch:true ~bpath:(bpath @ [ idx ]) child_id child
            in
            items := Child n :: !items;
            cursor_y := !cursor_y + n.outer.h
          end)
    b;
  let content_h =
    if horizontal then !max_row_h else !cursor_y - inner_y
  in
  let frame_h =
    match style.Style.height with
    | Some h -> h
    | None -> content_h + (2 * chrome)
  in
  let frame = make ~x:(x + margin) ~y:(y + margin) ~w:frame_w ~h:frame_h in
  let outer =
    make ~x ~y ~w:(frame_w + (2 * margin)) ~h:(frame_h + (2 * margin))
  in
  let inner = inset frame chrome in
  { srcid; bpath; style; outer; frame; inner; items = List.rev !items }

let layout_box ?cache ~x ~y ~avail ~stretch ~bpath srcid b =
  layout_box_frames ?cache ~x ~y ~avail ~stretch ~bpath srcid b

(** Lay out a page's whole box content under the implicit top-level
    box ("our model has an implicit top-level box", Sec. 4.3).
    [reuse] rotates the previous-frame table: the layout consults last
    frame's entries and leaves behind this frame's. *)
let layout_page ?cache ?reuse ?(width = 48) (b : Boxcontent.t) : node =
  match reuse with
  | None ->
      layout_box_frames ?cache ~x:0 ~y:0 ~avail:width ~stretch:true ~bpath:[] None b
  | Some r ->
      let next = Hashtbl.create (max 16 (Hashtbl.length r.last)) in
      let n =
        layout_box_frames ?cache ~frame:(r, next) ~x:0 ~y:0 ~avail:width
          ~stretch:true ~bpath:[] None b
      in
      r.last <- next;
      n

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

(** Structural equality of laid-out trees — what the damage-tracked
    painter diffs.  Two equal nodes paint identical cells.  Physical
    equality short-circuits, so subtrees reused between frames compare
    in constant time. *)
let rec node_equal (a : node) (b : node) : bool =
  a == b
  || Option.equal Live_core.Srcid.equal a.srcid b.srcid
     && a.bpath = b.bpath
     && Style.equal a.style b.style
     && Geometry.equal a.outer b.outer
     && Geometry.equal a.frame b.frame
     && Geometry.equal a.inner b.inner
     && List.equal item_equal a.items b.items

and item_equal (a : item) (b : item) : bool =
  a == b
  ||
  match (a, b) with
  | ( Text { lines = la; rect = ra; style = sa },
      Text { lines = lb; rect = rb; style = sb } ) ->
      List.equal String.equal la lb
      && Geometry.equal ra rb && Style.equal sa sb
  | Child ca, Child cb -> node_equal ca cb
  | (Text _ | Child _), _ -> false

let rec iter_nodes (f : node -> unit) (n : node) : unit =
  f n;
  List.iter (function Child c -> iter_nodes f c | Text _ -> ()) n.items

let rec fold_nodes (f : 'a -> node -> 'a) (acc : 'a) (n : node) : 'a =
  let acc = f acc n in
  List.fold_left
    (fun acc it -> match it with Child c -> fold_nodes f acc c | Text _ -> acc)
    acc n.items

(** All nodes whose frame contains the point, outermost first. *)
let nodes_at (n : node) ~(x : int) ~(y : int) : node list =
  let rec go acc n =
    if contains n.frame ~x ~y then
      let acc = n :: acc in
      List.fold_left
        (fun acc it -> match it with Child c -> go acc c | Text _ -> acc)
        acc n.items
    else acc
  in
  List.rev (go [] n)

(** The deepest box at the point carrying an [ontap] handler — the
    implementation counterpart of the TAP rule's [[ontap = v] ∈ B]. *)
let handler_at (n : node) ~(x : int) ~(y : int) : Live_core.Ast.value option
    =
  nodes_at n ~x ~y
  |> List.rev
  |> List.find_map (fun n -> n.style.Style.handler)

(** The deepest box at the point that has a source id — what the live
    view selects when the programmer taps a box (Sec. 3). *)
let srcid_at (n : node) ~(x : int) ~(y : int) : Live_core.Srcid.t option =
  nodes_at n ~x ~y |> List.rev |> List.find_map (fun n -> n.srcid)

(** Frames of every box created by the given boxed statement — the
    code-to-live-view direction of UI-Code Navigation; a boxed
    statement in a loop yields several frames. *)
let frames_of_srcid (n : node) (id : Live_core.Srcid.t) : rect list =
  fold_nodes
    (fun acc m ->
      match m.srcid with
      | Some i when Live_core.Srcid.equal i id -> m.frame :: acc
      | _ -> acc)
    [] n
  |> List.rev

let count_nodes (n : node) : int = fold_nodes (fun a _ -> a + 1) 0 n

let total_height (n : node) : int = n.outer.h
