(** The layout engine: box content to positioned rectangles.

    Every box has an outer rectangle (with margin), a frame (the
    painted area) and an inner content rectangle (frame minus border
    and padding).  Children of vertical boxes stretch to the available
    width; children of horizontal boxes shrink to natural width; text
    wraps.  Nodes keep their {!Live_core.Srcid.t} and box path — the
    data UI-Code Navigation needs. *)

type item =
  | Text of { lines : string list; rect : Geometry.rect; style : Style.t }
  | Child of node

and node = {
  srcid : Live_core.Srcid.t option;
  bpath : int list;  (** box path within the page's content *)
  style : Style.t;
  outer : Geometry.rect;
  frame : Geometry.rect;
  inner : Geometry.rect;
  items : item list;
}

val wrap_text : int -> string -> string list
(** Greedy word-wrap; lines that fit are kept verbatim (leading
    spaces matter in horizontal layouts). *)

val text_natural_width : string -> int
val natural_width : Live_core.Boxcontent.t -> int

(** {1 The Sec. 5 cache}

    Keyed by (content hash, srcid, available width, stretch); cached
    subtrees are stored origin-normalized and rebased on reuse, and
    every hit is verified with {!Live_core.Boxcontent.equal}, so
    collisions cost time, never correctness. *)

type cache

val create_cache : unit -> cache
val cache_stats : cache -> int * int
(** (hits, misses). *)

(** {1 Previous-frame reuse}

    Physical-identity layout reuse for box trees produced by
    {!Live_core.Render_cache}: a subtree that is [==] to what stood at
    the same box path last frame (same available width, stretch and
    srcid) reuses its node, translated.  No hashing, no deep equality,
    and the table holds exactly one frame, so it cannot grow without
    bound.  When active it takes the place of the structural cache. *)

type reuse

val create_reuse : unit -> reuse

val reuse_stats : reuse -> int * int
(** (hits, misses). *)

val layout_box :
  ?cache:cache ->
  x:int ->
  y:int ->
  avail:int ->
  stretch:bool ->
  bpath:int list ->
  Live_core.Srcid.t option ->
  Live_core.Boxcontent.t ->
  node

val layout_page :
  ?cache:cache -> ?reuse:reuse -> ?width:int -> Live_core.Boxcontent.t -> node
(** Lay the page out under the implicit top-level box (Sec. 4.3);
    [width] defaults to 48 cells.  [reuse] rotates the previous-frame
    table (consult last frame, leave behind this frame). *)

(** {1 Queries} *)

val node_equal : node -> node -> bool
(** Structural equality; equal nodes paint identical cells. *)

val item_equal : item -> item -> bool

val iter_nodes : (node -> unit) -> node -> unit
val fold_nodes : ('a -> node -> 'a) -> 'a -> node -> 'a

val nodes_at : node -> x:int -> y:int -> node list
(** Boxes whose frame contains the point, outermost first. *)

val handler_at : node -> x:int -> y:int -> Live_core.Ast.value option
(** Deepest handler under the point — the implementation counterpart
    of TAP's [[ontap = v] ∈ B]. *)

val srcid_at : node -> x:int -> y:int -> Live_core.Srcid.t option
(** Deepest boxed statement under the point (live-view selection). *)

val frames_of_srcid : node -> Live_core.Srcid.t -> Geometry.rect list
(** Every frame a boxed statement produced (several, in loops). *)

val count_nodes : node -> int
val total_height : node -> int
