(** A character-cell framebuffer with per-cell colors and emphasis —
    this repository's display device.  Plain-text output feeds the
    golden tests; ANSI output feeds the CLI. *)

type cell = { ch : char; fg : Color.t; bg : Color.t; bold : bool }

val blank : cell

type t = { width : int; height : int; cells : cell array }

val create : width:int -> height:int -> t
val copy : t -> t
val in_bounds : t -> int -> int -> bool

val get : t -> x:int -> y:int -> cell
(** Out-of-bounds reads return {!blank}. *)

val set : t -> x:int -> y:int -> cell -> unit
(** Out-of-bounds writes are ignored. *)

val set_char :
  t -> x:int -> y:int -> ?fg:Color.t -> ?bg:Color.t -> ?bold:bool ->
  char -> unit

val clear_row : t -> int -> unit
(** Reset one row to {!blank} cells (damage repaint clears only the
    dirty rows of the previous frame). *)

val fill_rect : t -> ?rows:bool array -> Geometry.rect -> bg:Color.t -> unit
(** Paint a background; boxes paint back-to-front.  [rows] is a damage
    mask: when given, only rows marked [true] are written. *)

val draw_text :
  t -> ?rows:bool array -> x:int -> y:int -> ?max_x:int -> ?fg:Color.t ->
  ?bold:bool -> string -> unit
(** Clipped at the buffer edge and at [max_x]; preserves the existing
    cell backgrounds so text composes over fills.  [rows] as in
    {!fill_rect}. *)

val draw_border :
  t -> ?rows:bool array -> Geometry.rect -> ?fg:Color.t -> unit -> unit
(** ASCII frame ([+--+] / [|]) just inside the rectangle; skipped for
    degenerate rectangles.  [rows] as in {!fill_rect}. *)

val to_text : t -> string
(** One line per row, trailing blanks trimmed — the golden format. *)

val to_ansi : t -> string

val diff_cells : t -> t -> int
(** Number of differing cells; [max_int] on size mismatch. *)
