(** A character-cell framebuffer with per-cell colors and emphasis.

    This is the repository's display device: the paper rendered to a
    browser, we render to a grid of styled ASCII cells (the formal
    model deliberately does not specify visual layout, so any
    deterministic presentation of the box tree is faithful).  Plain
    text output feeds the golden tests; ANSI output feeds the CLI. *)

type cell = { ch : char; fg : Color.t; bg : Color.t; bold : bool }

let blank = { ch = ' '; fg = Color.Default; bg = Color.Default; bold = false }

type t = { width : int; height : int; cells : cell array }

let create ~width ~height =
  { width; height; cells = Array.make (max 0 (width * height)) blank }

let copy (t : t) = { t with cells = Array.copy t.cells }

let in_bounds (t : t) x y = x >= 0 && x < t.width && y >= 0 && y < t.height

let get (t : t) ~x ~y : cell =
  if in_bounds t x y then t.cells.((y * t.width) + x) else blank

let set (t : t) ~x ~y (c : cell) : unit =
  if in_bounds t x y then t.cells.((y * t.width) + x) <- c

let set_char (t : t) ~x ~y ?(fg = Color.Default) ?(bg = Color.Default)
    ?(bold = false) (ch : char) : unit =
  set t ~x ~y { ch; fg; bg; bold }

(** Row masks for damage-tracked repainting: when [rows] is given,
    writes land only on rows marked [true] — the dirty rows.  Clean
    rows keep the previous frame's cells verbatim. *)
let row_on (rows : bool array option) (y : int) : bool =
  match rows with
  | None -> true
  | Some m -> y >= 0 && y < Array.length m && m.(y)

(** Reset one row to blank cells (damage repaint starts from the
    previous frame and clears only the dirty rows). *)
let clear_row (t : t) (y : int) : unit =
  if y >= 0 && y < t.height then
    for x = 0 to t.width - 1 do
      t.cells.((y * t.width) + x) <- blank
    done

(** Fill a rectangle's background (keeps nothing underneath — boxes
    paint back-to-front). *)
let fill_rect (t : t) ?rows (r : Geometry.rect) ~(bg : Color.t) : unit =
  for y = r.y to r.y + r.h - 1 do
    if row_on rows y then
      for x = r.x to r.x + r.w - 1 do
        if in_bounds t x y then set t ~x ~y { blank with bg }
      done
  done

(** Draw a string; clipped at the buffer edge and at [max_x] if given.
    Preserves the existing background of each cell so text composes
    over filled boxes. *)
let draw_text (t : t) ?rows ~x ~y ?max_x ?(fg = Color.Default)
    ?(bold = false) (s : string) : unit =
  if row_on rows y then begin
    let limit = match max_x with Some m -> m | None -> t.width in
    String.iteri
      (fun i ch ->
        let cx = x + i in
        if cx < limit && in_bounds t cx y then begin
          let prev = get t ~x:cx ~y in
          set t ~x:cx ~y { ch; fg; bg = prev.bg; bold }
        end)
      s
  end

(** Draw an ASCII border just inside the rectangle. *)
let draw_border (t : t) ?rows (r : Geometry.rect) ?(fg = Color.Default) () :
    unit =
  if r.w >= 2 && r.h >= 2 then begin
    let put x y ch =
      if row_on rows y && in_bounds t x y then begin
        let prev = get t ~x ~y in
        set t ~x ~y { ch; fg; bg = prev.bg; bold = false }
      end
    in
    let x1 = r.x + r.w - 1 and y1 = r.y + r.h - 1 in
    for x = r.x + 1 to x1 - 1 do
      put x r.y '-';
      put x y1 '-'
    done;
    for y = r.y + 1 to y1 - 1 do
      put r.x y '|';
      put x1 y '|'
    done;
    put r.x r.y '+';
    put x1 r.y '+';
    put r.x y1 '+';
    put x1 y1 '+'
  end

(** Plain-text rendering, one line per row, trailing blanks trimmed.
    This is the stable format the golden tests compare against. *)
let to_text (t : t) : string =
  let buf = Buffer.create (t.width * t.height) in
  for y = 0 to t.height - 1 do
    let line = Bytes.make t.width ' ' in
    for x = 0 to t.width - 1 do
      Bytes.set line x (get t ~x ~y).ch
    done;
    let s = Bytes.to_string line in
    (* trim right *)
    let len = ref (String.length s) in
    while !len > 0 && s.[!len - 1] = ' ' do
      decr len
    done;
    Buffer.add_string buf (String.sub s 0 !len);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(** ANSI rendering with 256-color SGR sequences. *)
let to_ansi (t : t) : string =
  let buf = Buffer.create (t.width * t.height * 4) in
  for y = 0 to t.height - 1 do
    let current = ref "" in
    for x = 0 to t.width - 1 do
      let c = get t ~x ~y in
      let sgr =
        String.concat ";"
          (List.filter
             (fun s -> s <> "")
             [
               (if c.bold then "1" else "");
               Color.sgr_fg c.fg;
               Color.sgr_bg c.bg;
             ])
      in
      if sgr <> !current then begin
        Buffer.add_string buf "\027[0m";
        if sgr <> "" then begin
          Buffer.add_string buf "\027[";
          Buffer.add_string buf sgr;
          Buffer.add_char buf 'm'
        end;
        current := sgr
      end;
      Buffer.add_char buf c.ch
    done;
    Buffer.add_string buf "\027[0m\n"
  done;
  Buffer.contents buf

(** Count cells whose content differs between two buffers of equal
    size; used by the incremental-rendering tests. *)
let diff_cells (a : t) (b : t) : int =
  if a.width <> b.width || a.height <> b.height then max_int
  else begin
    let n = ref 0 in
    Array.iteri (fun i c -> if c <> b.cells.(i) then incr n) a.cells;
    !n
  end
