(** Splitmix64 (Steele, Lea & Flood 2014): a tiny, fast, well-mixed
    generator whose entire state is one 64-bit word, so seeds are
    one-line and streams are identical on every platform. *)

type t = { mutable s : int64 }

let create (seed : int) : t = { s = Int64.of_int seed }
let copy (t : t) : t = { s = t.s }

let golden = 0x9E3779B97F4A7C15L

let mix (z : int64) : int64 =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next (t : t) : int64 =
  t.s <- Int64.add t.s golden;
  mix t.s

let int (t : t) (bound : int) : int =
  if bound <= 0 then 0
  else
    Int64.to_int
      (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let bool (t : t) : bool = Int64.logand (next t) 1L = 1L

let pick (t : t) (arr : 'a array) : 'a =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

(** Mix the master seed with the iteration index through one splitmix
    step each, then fold to a non-negative OCaml int. *)
let derive (seed : int) (k : int) : int =
  let z = mix (Int64.add (Int64.of_int seed) (Int64.mul golden (Int64.of_int (k + 1)))) in
  Int64.to_int (Int64.shift_right_logical z 2)
