(** Typing of system states (Fig. 11): [C |- C], [C |- D], [C |- S],
    [C |- P], [C |- Q] and the top-level T-SYS. *)

val check_code : Program.t -> (unit, string) result
(** [C |- C]: distinct names; arrow-free globals/page arguments with
    well-typed initial values; function and page bodies typed at their
    declared types and effects.  The premise of UPDATE (Fig. 9). *)

val check_def : Program.t -> Program.def -> (unit, string) result
(** One definition's derivation (T-C-GLOBAL / T-C-FUN / T-C-PAGE),
    exactly as {!check_code} runs it — the shared unit of work of the
    from-scratch and incremental checkers. *)

val check_code_filtered :
  recheck:(string -> bool) -> Program.t -> (unit, string) result
(** {!check_code} with per-definition derivations gated by [recheck]
    (the duplicate-name scan always runs in full).  Sound only when
    every skipped definition is known to hold a valid derivation under
    [prog] — see {!Machine.check_program_incremental}.  With
    [recheck = fun _ -> true] this is {!check_code} itself. *)

val check_start : Program.t -> (unit, string) result
(** T-SYS's extra premise: a parameterless [start] page exists. *)

val check_display : Program.t -> State.display -> (unit, string) result
val check_store : Program.t -> Store.t -> (unit, string) result

val check_stack :
  Program.t -> (Ident.page * Ast.value) list -> (unit, string) result

val check_queue : Program.t -> Event.t Fqueue.t -> (unit, string) result

val check_state : State.t -> (unit, string) result
(** [|- (C, D, S, P, Q)]. *)
