(** Structural diff between two programs (see the interface for the
    soundness contract).  The diff is computed once per UPDATE and then
    drives every O(edit) path: incremental re-typechecking
    ({!State_typing.check_code_filtered}), targeted fix-up ({!Fixup}),
    compiled-code reuse ({!Compile_eval.get_incremental}) and scoped
    render-cache invalidation ({!Render_cache.retarget}). *)

module SS = Ast.StringSet

type status = Unchanged | Body_changed | Sig_changed | Added | Removed

let status_to_string = function
  | Unchanged -> "unchanged"
  | Body_changed -> "body-changed"
  | Sig_changed -> "sig-changed"
  | Added -> "added"
  | Removed -> "removed"

(* -- static references of definitions -------------------------------- *)

(* Every name a definition can reach at evaluation or typing time
   appears syntactically in its source: [Fn] for functions, [Get]/[Set]
   for globals, [Push] for pages.  Values are walked too because lambda
   literals ([on tapped] handlers, thunk encodings) carry expressions. *)
let rec refs_value (acc : SS.t) (v : Ast.value) : SS.t =
  match v with
  | Ast.VNum _ | Ast.VStr _ -> acc
  | Ast.VTuple vs | Ast.VList (_, vs) -> List.fold_left refs_value acc vs
  | Ast.VLam (_, _, body) -> refs_expr acc body

and refs_expr (acc : SS.t) (e : Ast.expr) : SS.t =
  match e with
  | Ast.Val v -> refs_value acc v
  | Ast.Var _ | Ast.Pop -> acc
  | Ast.Tuple es -> List.fold_left refs_expr acc es
  | Ast.App (e1, e2) -> refs_expr (refs_expr acc e1) e2
  | Ast.Fn f -> SS.add f acc
  | Ast.Proj (e1, _) -> refs_expr acc e1
  | Ast.Get g -> SS.add g acc
  | Ast.Set (g, e1) -> refs_expr (SS.add g acc) e1
  | Ast.Push (p, e1) -> refs_expr (SS.add p acc) e1
  | Ast.Boxed (_, e1) | Ast.Post e1 | Ast.SetAttr (_, e1) -> refs_expr acc e1
  | Ast.Prim (_, _, es) -> List.fold_left refs_expr acc es

let def_refs (d : Program.def) : SS.t =
  match d with
  | Program.Global { init; _ } -> refs_value SS.empty init
  | Program.Func { body; _ } -> refs_expr SS.empty body
  | Program.Page { init; render; _ } -> refs_expr (refs_expr SS.empty init) render

let expr_refs (e : Ast.expr) : SS.t = refs_expr SS.empty e
let value_refs (v : Ast.value) : SS.t = refs_value SS.empty v

(* -- per-definition classification ----------------------------------- *)

(** The {e signature} of a definition is what other derivations can
    depend on: its kind plus its declared type (globals and functions
    have declared types; a page's is its argument type).  Bodies are
    invisible to other definitions' typing derivations. *)
let classify (d_old : Program.def) (d_new : Program.def) : status =
  if d_old == d_new then Unchanged (* [Program.with_def] shares untouched defs *)
  else
    match (d_old, d_new) with
    | ( Program.Global { ty = ty1; init = i1; _ },
        Program.Global { ty = ty2; init = i2; _ } ) ->
        if not (Typ.equal ty1 ty2) then Sig_changed
        else if Ast.equal_value i1 i2 then Unchanged
        else Body_changed
    | ( Program.Func { ty = ty1; body = b1; _ },
        Program.Func { ty = ty2; body = b2; _ } ) ->
        if not (Typ.equal ty1 ty2) then Sig_changed
        else if Ast.equal_expr b1 b2 then Unchanged
        else Body_changed
    | ( Program.Page { arg_ty = a1; init = i1; render = r1; _ },
        Program.Page { arg_ty = a2; init = i2; render = r2; _ } ) ->
        if not (Typ.equal a1 a2) then Sig_changed
        else if Ast.equal_expr i1 i2 && Ast.equal_expr r1 r2 then Unchanged
        else Body_changed
    | _ -> Sig_changed (* kind change: global became a page, ... *)

type t = {
  old_prog : Program.t;
  new_prog : Program.t;
  status : (string, status) Hashtbl.t;
      (** names of old ∪ new whose status is {e not} [Unchanged] —
          absence means unchanged *)
  deps : (string, SS.t) Hashtbl.t;  (** static refs, per new definition *)
  dirty : (string, unit) Hashtbl.t;
      (** semantic dirty set: transitive reverse-dependency closure of
          every non-[Unchanged] name (removed names included) *)
  recheck : (string, unit) Hashtbl.t;
      (** definitions whose typing derivation must be re-derived *)
}

let old_program (d : t) = d.old_prog
let new_program (d : t) = d.new_prog

let status (d : t) (name : string) : status =
  Option.value (Hashtbl.find_opt d.status name) ~default:Unchanged

let changed (d : t) : (string * status) list =
  Hashtbl.fold (fun n s acc -> (n, s) :: acc) d.status []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let identical (d : t) : bool = Hashtbl.length d.status = 0
let is_dirty (d : t) (name : string) : bool = Hashtbl.mem d.dirty name
let dirty_count (d : t) : int = Hashtbl.length d.dirty

let dirty_names (d : t) : string list =
  Hashtbl.fold (fun n () acc -> n :: acc) d.dirty []
  |> List.sort String.compare
let needs_recheck (d : t) (name : string) : bool = Hashtbl.mem d.recheck name
let recheck_count (d : t) : int = Hashtbl.length d.recheck

let diff ~(old_prog : Program.t) (new_prog : Program.t) : t =
  let status = Hashtbl.create 16 in
  let deps = Hashtbl.create 16 in
  (* classify every name of old ∪ new *)
  List.iter
    (fun d_new ->
      let name = Program.def_name d_new in
      Hashtbl.replace deps name (def_refs d_new);
      let st =
        match Program.find old_prog name with
        | None -> Added
        | Some d_old -> classify d_old d_new
      in
      if st <> Unchanged then Hashtbl.replace status name st)
    (Program.defs new_prog);
  List.iter
    (fun d_old ->
      let name = Program.def_name d_old in
      if not (Program.mem new_prog name) then Hashtbl.replace status name Removed)
    (Program.defs old_prog);
  (* reverse-dependency adjacency over the new program; removed names
     appear as targets so their referrers are reachable from the seed *)
  let rdeps : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let name = Program.def_name d in
      SS.iter
        (fun r ->
          Hashtbl.replace rdeps r
            (name :: Option.value (Hashtbl.find_opt rdeps r) ~default:[]))
        (Hashtbl.find deps name))
    (Program.defs new_prog);
  (* dirty = transitive reverse closure of every changed name, plus any
     definition with a reference that resolves nowhere (conservative;
     such a program is ill-typed anyway) *)
  let dirty = Hashtbl.create 16 in
  let work = Queue.create () in
  let mark n =
    if not (Hashtbl.mem dirty n) then begin
      Hashtbl.replace dirty n ();
      Queue.add n work
    end
  in
  Hashtbl.iter (fun n _ -> mark n) status;
  List.iter
    (fun d ->
      let name = Program.def_name d in
      if
        SS.exists
          (fun r -> not (Program.mem new_prog r))
          (Hashtbl.find deps name)
      then mark name)
    (Program.defs new_prog);
  while not (Queue.is_empty work) do
    let n = Queue.pop work in
    List.iter mark (Option.value (Hashtbl.find_opt rdeps n) ~default:[])
  done;
  (* recheck: declared signatures cut the typing dependency chain — a
     derivation reads only its own source plus the existence and
     declared types of the names it references, so only edited
     definitions and the {e direct} referrers of a signature-level
     change need re-derivation *)
  let recheck = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let name = Program.def_name d in
      let self_changed =
        match Hashtbl.find_opt status name with
        | Some (Added | Body_changed | Sig_changed) -> true
        | Some (Unchanged | Removed) | None -> false
      in
      let dep_sig_changed =
        SS.exists
          (fun r ->
            (not (Program.mem new_prog r))
            ||
            match Hashtbl.find_opt status r with
            | Some (Sig_changed | Removed | Added) -> true
            | Some (Unchanged | Body_changed) | None -> false)
          (Hashtbl.find deps name)
      in
      if self_changed || dep_sig_changed then Hashtbl.replace recheck name ())
    (Program.defs new_prog);
  { old_prog; new_prog; status; deps; dirty; recheck }

(* -- fix-up and cache-retention predicates --------------------------- *)

(** A store binding for [g] survives any fix-up unchanged when the new
    code still declares [g] as a global at the same declared type
    ([Unchanged] or [Body_changed]): store values are arrow-free, so
    S-OKAY depends only on (value, declared type), both untouched. *)
let global_preserved (d : t) (g : string) : bool =
  (match status d g with Unchanged | Body_changed -> true | _ -> false)
  && (match Program.find d.new_prog g with
     | Some (Program.Global _) -> true
     | _ -> false)

(** Same for a page-stack entry: the page still exists at the same
    argument type, so P-OKAY's premise is untouched. *)
let page_preserved (d : t) (p : string) : bool =
  (match status d p with Unchanged | Body_changed -> true | _ -> false)
  && (match Program.find d.new_prog p with
     | Some (Program.Page _) -> true
     | _ -> false)

let refs_clean (d : t) (rs : SS.t) : bool =
  SS.for_all (fun r -> Program.mem d.new_prog r && not (is_dirty d r)) rs

(** Every name a (closed) expression references resolves to a
    transitively-clean definition of the new program — the condition
    under which re-evaluating it under the new code follows the same
    path as under the old (its recorded global reads are validated
    separately, against the new program's initials). *)
let expr_clean (d : t) (e : Ast.expr) : bool = refs_clean d (expr_refs e)
let value_clean (d : t) (v : Ast.value) : bool = refs_clean d (value_refs v)

let pp ppf (d : t) =
  if identical d then Fmt.string ppf "no definition changed"
  else
    Fmt.pf ppf "@[<v>%a@ dirty %d, recheck %d@]"
      Fmt.(
        list ~sep:(any ", ") (fun ppf (n, s) ->
            Fmt.pf ppf "%s:%s" n (status_to_string s)))
      (changed d) (dirty_count d) (recheck_count d)
