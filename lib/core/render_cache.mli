(** Dependency-tracked memoization of render evaluation.

    Sound because render code has effect [r]: a boxed subexpression is
    closed (substitution-based evaluation) and may only {e read}
    globals, so its output is a pure function of (the expression, the
    code, the values of the globals it read).  Entries are replayed
    only under physically identical code ({!ensure_code} flushes
    otherwise — UPDATE always installs a fresh {!Program.t}) and a
    store in which every recorded read observes the same value. *)

type reads = (Ident.global * Ast.value) list
(** Globals read during one evaluation, with the observed values. *)

type subtree_entry = {
  expr : Ast.expr;
  value : Ast.value;
  item : Boxcontent.item;
  reads : reads;
}

type csubtree_entry = {
  args : Ast.value list;
      (** the captured environment values — the real key *)
  cvalue : Ast.value;
  citem : Boxcontent.item;
  creads : reads;
}
(** The compiled evaluator's subtree layer ({!Compile_eval}): entries
    are keyed by a compile-time site id (standing for the expression
    skeleton of one compilation of one program) plus the values of the
    environment slots the subtree captures (standing for everything
    substitution would have filled in).  Same soundness argument as
    the expression-keyed layer; {!ensure_code} enforces code
    identity. *)

type stats = {
  hits : int;  (** subtree entries spliced without evaluation *)
  misses : int;  (** subtree evaluations that populated an entry *)
  revalidations : int;  (** whole displays revalidated without evaluation *)
  flushes : int;  (** wholesale invalidations (code changes) *)
  retargets : int;  (** scoped invalidations ({!retarget} diffed swaps) *)
  evictions : int;  (** entries dropped by scoped invalidation *)
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the subtree table; exceeding it resets the cache
    (default 16384 entries). *)

val stats : t -> stats
val size : t -> int

val flush : t -> unit
(** Drop every entry (counted in {!stats}.flushes). *)

val ensure_code : t -> Program.t -> unit
(** Flush unless the entries were recorded under this exact (physically
    identical) code.  Call before consulting the cache for a render. *)

val retarget :
  t -> diff:Program_diff.t -> keep_csite:(int -> bool) -> Program.t -> unit
(** Scoped invalidation on a code swap: rebind the cache from the
    diff's old program to [new_prog], keeping every entry the diff
    proves still replayable — instead of the wholesale flush
    {!ensure_code} would perform.  Retention contract: display entries
    survive iff their page is transitively clean
    ([not (Program_diff.is_dirty diff page)]); subtree entries iff
    every definition their expression references is transitively clean
    ({!Program_diff.expr_clean}); compiled-subtree entries iff
    [keep_csite] accepts their site id (pass the new compilation's
    {!Compile_eval.site_live} — reused definitions keep their site
    ids, recompiled ones get fresh ids, so stale entries are exactly
    the rejected ones).  Store-dependent validity is untouched: hits
    still re-validate their recorded reads against the {e new}
    program's store semantics, so changed initial values miss as they
    must.  No-op fallback (the next {!ensure_code} flushes wholesale)
    when the cache is not currently bound to the diff's old program. *)

val set_sabotage_no_flush : t -> bool -> unit
(** Test-only: make {!ensure_code} keep stale entries across code
    changes — a deliberately broken cache, used by the conformance
    fuzzer to prove the differential oracle catches the resulting
    stale-display divergence. *)

val reads_valid : Program.t -> Store.t -> reads -> bool

val subtree_key : Srcid.t option -> Ast.expr -> int * int

val find_subtree :
  t ->
  int * int ->
  expr:Ast.expr ->
  prog:Program.t ->
  store:Store.t ->
  subtree_entry option
(** A replayable entry: same expression (verified structurally), every
    recorded read unchanged.  Counts a hit or a miss. *)

val add_subtree :
  t ->
  int * int ->
  expr:Ast.expr ->
  value:Ast.value ->
  item:Boxcontent.item ->
  reads:reads ->
  unit

val find_csubtree :
  t ->
  site:int ->
  args:Ast.value list ->
  prog:Program.t ->
  store:Store.t ->
  csubtree_entry option
(** A replayable compiled-subtree entry: same captured values
    (verified structurally), every recorded read unchanged.  Counts a
    hit or a miss. *)

val add_csubtree :
  t ->
  site:int ->
  args:Ast.value list ->
  value:Ast.value ->
  item:Boxcontent.item ->
  reads:reads ->
  unit

val find_display :
  t ->
  page:Ident.page ->
  arg:Ast.value ->
  prog:Program.t ->
  store:Store.t ->
  Boxcontent.t option
(** The whole-display fast path: the previous render of this page with
    the same argument whose read globals all still hold the observed
    values.  {!ensure_code} must have been called for the current
    code. *)

val add_display :
  t -> page:Ident.page -> arg:Ast.value -> reads:reads -> Boxcontent.t -> unit

val pp_stats : Format.formatter -> stats -> unit
