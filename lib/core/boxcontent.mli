(** Box content [B] (Fig. 7): an ordered sequence of posted leaf
    values, attribute settings, and nested boxes.  Nested boxes carry
    the {!Srcid.t} of the [boxed] statement that created them. *)

type item =
  | Leaf of Ast.value  (** [B v] *)
  | Attr of Ident.attr * Ast.value  (** [B [a = v]] *)
  | Box of Srcid.t option * t  (** [B <B'>] *)

and t = item list

val empty : t
val equal : t -> t -> bool
val equal_item : item -> item -> bool

val handlers : ?attr:Ident.attr -> t -> Ast.value list
(** All handler values in the tree (pre-order) — the premise pool of
    the TAP rule's [[ontap = v] ∈ B]. *)

val first_handler : ?attr:Ident.attr -> t -> Ast.value option

type handler_index
(** Hashed index over a tree's [ontap] handlers; see {!mem_handler}. *)

val build_handler_index : t -> handler_index
val index_mem : handler_index -> Ast.value -> bool

val handler_index : t -> handler_index
(** The index for this tree, memoized by physical identity (box
    content is immutable; RENDER installs a fresh tree). *)

val mem_handler : t -> Ast.value -> bool
(** [[ontap = v] ∈ B] in O(1) expected time — the TAP premise.
    Equivalent to [List.exists (Ast.equal_value v) (handlers b)]. *)

val own_attr : Ident.attr -> t -> Ast.value option
(** The box's own attribute (not nested ones); last write wins. *)

val own_leaves : t -> Ast.value list
val children : t -> (Srcid.t option * t) list
val srcids : t -> Srcid.t list

type path = int list
(** A box address: child indices from the root. *)

val paths_of_srcid : Srcid.t -> t -> path list
(** Every box a boxed statement produced — several, in loops. *)

val box_at : path -> t -> t option
val srcid_at : path -> t -> Srcid.t option

val count_boxes : t -> int
val count_items : t -> int
val depth : t -> int

val hash : t -> int
(** Full-structure hash for the incremental layout cache; the cache
    still verifies {!equal} on hits, so collisions cost time, never
    correctness. *)

val pp : Format.formatter -> t -> unit
val pp_item : Format.formatter -> item -> unit
