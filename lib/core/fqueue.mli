(** A persistent FIFO queue — the event queue [Q] of Fig. 7.

    The paper enqueues at the left end of the sequence and dequeues at
    the right end; system states are persistent values, so the queue
    is too. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

val enqueue : 'a -> 'a t -> 'a t
(** Add at the left (newest) end. *)

val dequeue : 'a t -> ('a * 'a t) option
(** Remove from the right (oldest) end; [None] on the empty queue. *)

val push_front : 'a -> 'a t -> 'a t
(** Put an element back at the right (oldest) end, so it is dequeued
    next.  [dequeue (push_front x q) = Some (x, q)] up to {!equal}. *)

val length : 'a t -> int

val to_list : 'a t -> 'a list
(** Oldest first. *)

val of_list : 'a list -> 'a t
(** Inverse of {!to_list}. *)

val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
val pp : 'a Fmt.t -> Format.formatter -> 'a t -> unit
