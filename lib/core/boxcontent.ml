(** Box content [B] (Fig. 7):

    {v
      B ::= epsilon | B v | B [a = v] | B <B>
    v}

    A box's content is an ordered sequence of posted leaf values,
    attribute settings, and nested boxes.  Nested boxes additionally
    carry the {!Srcid.t} of the [boxed] statement that created them
    (when compiled from surface code), which implements the paper's
    UI-Code Navigation (Sec. 3): selecting a box selects the boxed
    statement and vice versa. *)

type item =
  | Leaf of Ast.value  (** [B v] — content posted with [post] *)
  | Attr of Ident.attr * Ast.value  (** [B [a = v]] *)
  | Box of Srcid.t option * t  (** [B <B'>] — a nested box *)

and t = item list

let empty : t = []

let rec equal (a : t) (b : t) = List.equal equal_item a b

and equal_item a b =
  match (a, b) with
  | Leaf x, Leaf y -> Ast.equal_value x y
  | Attr (a1, v1), Attr (a2, v2) -> String.equal a1 a2 && Ast.equal_value v1 v2
  | Box (i1, b1), Box (i2, b2) -> Option.equal Srcid.equal i1 i2 && equal b1 b2
  | (Leaf _ | Attr _ | Box _), _ -> false

(** The premise of the TAP rule (Fig. 9): [[ontap = v] ∈ B], searching
    the whole tree.  Returns every handler, outermost first, pre-order;
    the UI layer picks one by hit-testing, the core tests use
    [first_handler]. *)
let rec handlers ?(attr = "ontap") (b : t) : Ast.value list =
  List.concat_map
    (function
      | Attr (a, v) when String.equal a attr -> [ v ]
      | Box (_, inner) -> handlers ~attr inner
      | Attr _ | Leaf _ -> [])
    b

let first_handler ?attr b =
  match handlers ?attr b with [] -> None | v :: _ -> Some v

(** Hashed index over a tree's [ontap] handlers, so the TAP rule's
    premise check [[ontap = v] ∈ B] is O(1) expected instead of a
    List.exists scan over every handler in the tree.  Keys are
    structural hashes; membership re-verifies with {!Ast.equal_value},
    so collisions cost time, never a wrong premise. *)
type handler_index = (int, Ast.value list) Hashtbl.t

let build_handler_index (b : t) : handler_index =
  let idx : handler_index = Hashtbl.create 64 in
  List.iter
    (fun v ->
      let h = Ast.hash_value v in
      let vs = Option.value (Hashtbl.find_opt idx h) ~default:[] in
      Hashtbl.replace idx h (v :: vs))
    (handlers b);
  idx

let index_mem (idx : handler_index) (v : Ast.value) : bool =
  match Hashtbl.find_opt idx (Ast.hash_value v) with
  | Some vs -> List.exists (Ast.equal_value v) vs
  | None -> false

(* One-slot memo keyed on the physical identity of the tree: the
   common pattern is many taps validated against the same display, and
   box content is immutable, so [==] identifies "the same display".
   RENDER installs a new tree and the next tap rebuilds the index.

   The slot is domain-local: the parallel host (lib/host/parallel)
   taps sessions from several domains at once, and a single global
   slot would be both a data race and a ping-pong between domains.
   Session affinity within a tick means each domain keeps validating
   taps against the display it just served, so the memo hits exactly
   as often as the sequential one did.  The memo only short-circuits
   index construction — [index_mem] re-verifies membership — so it can
   never change a result, only its cost. *)
let index_memo : (t * handler_index) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let handler_index (b : t) : handler_index =
  let memo = Domain.DLS.get index_memo in
  match !memo with
  | Some (b0, idx) when b0 == b -> idx
  | _ ->
      let idx = build_handler_index b in
      memo := Some (b, idx);
      idx

let mem_handler (b : t) (v : Ast.value) : bool =
  index_mem (handler_index b) v

(** Attributes set directly on this box (not in nested boxes); last
    write wins, as the render code's later [box.a := v] overrides an
    earlier one. *)
let own_attr (attr : Ident.attr) (b : t) : Ast.value option =
  List.fold_left
    (fun acc item ->
      match item with
      | Attr (a, v) when String.equal a attr -> Some v
      | _ -> acc)
    None b

let own_leaves (b : t) : Ast.value list =
  List.filter_map (function Leaf v -> Some v | _ -> None) b

let children (b : t) : (Srcid.t option * t) list =
  List.filter_map (function Box (id, inner) -> Some (id, inner) | _ -> None) b

(** All source ids appearing in the tree, pre-order. *)
let rec srcids (b : t) : Srcid.t list =
  List.concat_map
    (function
      | Box (Some id, inner) -> id :: srcids inner
      | Box (None, inner) -> srcids inner
      | Leaf _ | Attr _ -> [])
    b

(** Paths address boxes by child index, root box tree = []. *)
type path = int list

(** Find the paths of every box created by the given boxed statement —
    the live-view half of UI-Code Navigation.  A boxed statement inside
    a loop yields several paths (Fig. 2's multi-selection). *)
let paths_of_srcid (target : Srcid.t) (b : t) : path list =
  let rec go (prefix : path) (b : t) acc =
    let _, acc =
      List.fold_left
        (fun (i, acc) item ->
          match item with
          | Box (id, inner) ->
              let here = prefix @ [ i ] in
              let acc =
                if Option.equal Srcid.equal id (Some target) then
                  here :: acc
                else acc
              in
              (i + 1, go here inner acc)
          | Leaf _ | Attr _ -> (i, acc))
        (0, acc) b
    in
    acc
  in
  List.rev (go [] b [])

(** Look up the box at a path. *)
let rec box_at (p : path) (b : t) : t option =
  match p with
  | [] -> Some b
  | i :: rest -> (
      match List.nth_opt (children b) i with
      | Some (_, inner) -> box_at rest inner
      | None -> None)

let srcid_at (p : path) (b : t) : Srcid.t option =
  match List.rev p with
  | [] -> None
  | last :: revprefix -> (
      match box_at (List.rev revprefix) b with
      | None -> None
      | Some parent -> (
          match List.nth_opt (children parent) last with
          | Some (id, _) -> id
          | None -> None))

(** Total number of boxes in the tree (used by benches and tests). *)
let rec count_boxes (b : t) : int =
  List.fold_left
    (fun n item ->
      match item with
      | Box (_, inner) -> n + 1 + count_boxes inner
      | Leaf _ | Attr _ -> n)
    0 b

let rec count_items (b : t) : int =
  List.fold_left
    (fun n item ->
      match item with
      | Box (_, inner) -> n + 1 + count_items inner
      | Leaf _ | Attr _ -> n + 1)
    0 b

let rec depth (b : t) : int =
  List.fold_left
    (fun d item ->
      match item with
      | Box (_, inner) -> max d (1 + depth inner)
      | Leaf _ | Attr _ -> d)
    0 b

(** Structural hash, used by the incremental-rendering cache:
    identical subtrees get identical hashes.  [Hashtbl.hash]'s default
    traversal bound truncates deep trees (different amortization rows
    would collide), so this walks the whole structure; handler lambdas
    are hashed with a widened bound.  The cache still verifies
    {!equal} on every hit, so a residual collision costs time, never
    correctness. *)
let hash (b : t) : int =
  let combine h x = (h * 31) + x in
  let hash_value (v : Ast.value) = Hashtbl.hash_param 500 1000 v in
  let rec go h (items : t) =
    List.fold_left
      (fun h item ->
        match item with
        | Leaf v -> combine (combine h 1) (hash_value v)
        | Attr (a, v) ->
            combine (combine (combine h 2) (Hashtbl.hash a)) (hash_value v)
        | Box (id, inner) ->
            let h = combine (combine h 3) (Hashtbl.hash id) in
            go h inner)
      h items
  in
  go 0 b

let rec pp ppf (b : t) =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_item) b

and pp_item ppf = function
  | Leaf v -> Fmt.pf ppf "post %a" Pretty.pp_value v
  | Attr (a, v) -> Fmt.pf ppf "[%s = %a]" a Pretty.pp_value v
  | Box (id, inner) ->
      let pp_id ppf = function
        | None -> ()
        | Some id -> Fmt.pf ppf "@%a" Srcid.pp id
      in
      Fmt.pf ppf "@[<v2>box%a <@,%a@]@,>" pp_id id pp inner
