(** A seeded, splittable-free PRNG (splitmix64) for the conformance
    fuzzer.  The stdlib [Random] is avoided deliberately: its stream
    is not specified across OCaml releases, and every fuzz failure
    must be reproducible from a one-line seed on any toolchain the CI
    matrix runs. *)

type t

val create : int -> t
val copy : t -> t

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound); [0] when
    [bound <= 0]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform draw; raises [Invalid_argument] on an empty array. *)

val derive : int -> int -> int
(** [derive seed k]: the [k]-th child seed of a master seed — a pure
    mixing function, so campaign iteration [k] is reproducible without
    replaying iterations [0..k-1]. *)
