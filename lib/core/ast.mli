(** Values and expressions of the calculus (Fig. 6).

    Evaluation is substitution-based, as in the paper: EP-APP replaces
    the bound variable by the argument value, so closed programs reduce
    without environments.  [Prim] (delta-rule primitives) and [VList]
    (homogeneous lists) are the two documented extensions; [Boxed]
    carries an optional {!Srcid.t} linking boxes back to source. *)

type value =
  | VNum of float
  | VStr of string
  | VTuple of value list
  | VLam of Ident.var * Typ.t * expr  (** [lambda(x : tau). e] *)
  | VList of Typ.t * value list  (** homogeneous list; element type *)

and expr =
  | Val of value
  | Var of Ident.var
  | Tuple of expr list
  | App of expr * expr
  | Fn of Ident.func  (** reference to a global function *)
  | Proj of expr * int  (** [e.n], 1-indexed *)
  | Get of Ident.global
  | Set of Ident.global * expr
  | Push of Ident.page * expr
  | Pop
  | Boxed of Srcid.t option * expr
  | Post of expr
  | SetAttr of Ident.attr * expr
  | Prim of string * Typ.t list * expr list
      (** [Prim (name, type_args, args)] — see {!Prim} *)

val vunit : value
(** The unit value [()] (the empty tuple). *)

val eunit : expr

val vbool : bool -> value
(** Numbers double as booleans: [1.] / [0.]. *)

val vtrue : value
val vfalse : value

val truthy : value -> bool
(** Non-zero-ness of numbers; everything else is falsy. *)

val equal_value : value -> value -> bool
val equal_expr : expr -> expr -> bool

val as_value : expr -> value option
(** Classify an expression as a value ([Val], or a tuple expression
    whose components are all values). *)

val is_value : expr -> bool

module StringSet : Set.S with type elt = string

val free_vars : expr -> StringSet.t
(** Free lambda-bound variables (globals are not variables). *)

val closed_expr : expr -> bool
val closed_value : value -> bool

val size_value : value -> int
val size_expr : expr -> int

val hash_value : value -> int
(** Structural hash with a widened traversal bound; consumers verify
    with {!equal_value} on a hit, so collisions cost time, never
    correctness. *)

val hash_expr : expr -> int
