(** Closure-compiled evaluation: the Fig. 8 relations, compiled once.

    The substitution evaluator ({!Eval}) pays [Subst.beta] — an
    O(|body|) copy — on every application.  This module instead
    {e compiles} each program once into OCaml closures over a
    slot-indexed environment: variables are resolved to environment
    slots at compile time, so at run time there is no substitution and
    no free-variable scan.  The classic interpreter optimisation in the
    lineage of Feeley & Lapalme's "using closures for code generation".

    The compiled code implements the {e same} relations — all three
    effect modes [p]/[s]/[r], the same dynamic effect discipline, the
    same stuck messages, the same read-set tracing that {!Render_cache}
    depends on — and is checked byte-identical against the substitution
    machine by the conformance oracle's ["compiled"] configuration and
    the property tests in [test/test_compile_eval.ml].

    Lambda values that {e escape} (are returned, stored, or passed to a
    primitive) are reified back to plain {!Ast.value} lambdas by
    substituting the environment slots they capture — so observable
    values are exactly what substitution would have produced, and the
    rest of the system (display handlers, the store, the oracle's
    observations) needs no changes.

    Compiled code is {b immutable} after {!get} returns: the per-program
    tables are populated during compilation and only read afterwards,
    so one compiled program is safely shared read-only across the
    parallel host's domains.  {!get} memoizes by physical program
    identity in a lock-free (CAS-published) cache; a racing duplicate
    compilation is benign because compilation is deterministic up to
    cache-private subtree site ids. *)

type t
(** A program compiled to closures.  Immutable; safe to share across
    domains. *)

val get : Program.t -> t
(** Compile, or return the cached compilation of this exact (physically
    identical) program.  The broadcast path calls this once per UPDATE
    so the whole fleet shares one compilation. *)

val get_incremental : diff:Program_diff.t -> Program.t -> t
(** Like {!get}, but when the diff's old program is still in the
    compile cache, reuse its compiled definitions for every name the
    diff proves transitively clean and recompile only the dirty ones —
    O(edit) instead of O(program) for a small edit.  Reused definitions
    keep their subtree memoization site ids, so a session's
    {!Render_cache} compiled-subtree entries for clean code stay valid
    across the swap (see {!Render_cache.retarget} and {!site_live});
    recompiled definitions get fresh ids, making their stale entries
    unreachable.  Falls back to a full {!compile} when the old
    compilation has been evicted.  The result is published in the same
    cache, so subsequent {!get} calls for the new program hit. *)

(** {1 Epoch pins (staged rollouts)}

    During a staged rollout ({!Live_host.Rollout}) the registry keeps
    two code epochs live at once; both compilations must stay resident
    for the whole rollout window.  The LRU compile cache could evict
    the base epoch under unrelated compile traffic, and a re-compile
    issues fresh subtree site ids — orphaning the canary cohort's
    [csubtree] render-cache entries.  A pin is an eviction-proof cache
    entry keyed by an epoch id; {!get} and {!get_incremental} consult
    pins first, so every session of an epoch shares one physical
    compilation. *)

val pin_epoch : epoch:int -> ?diff:Program_diff.t -> Program.t -> unit
(** Compile [prog] (incrementally when [diff] spans old→[prog] and the
    old compilation is resident) and pin the result under [epoch],
    replacing any previous pin for that epoch. *)

val unpin_epoch : epoch:int -> unit
(** Drop the pin for [epoch] (idempotent).  The compilation may still
    live in the LRU cache; it just becomes evictable again. *)

val pinned_epochs : unit -> int list
(** Epoch ids currently pinned, ascending (tests and invariants). *)

val site_live : t -> int -> bool
(** Whether a [boxed] memoization site id belongs to this compilation
    (stamped fresh, or carried over from the previous compilation by
    {!get_incremental}).  {!Render_cache.retarget} uses this as the
    compiled-subtree retention predicate. *)

val compile : Program.t -> t
(** Always compile afresh (benchmarks measuring compilation cost). *)

val program : t -> Program.t

(** {1 The Fig. 9 entry points}

    These mirror what {!Machine} evaluates with the substitution
    engine: THUNK runs [v ()] in state mode, PUSH runs the page's init
    code, RENDER the page's render code.  Page init/render bodies are
    compiled once per program (not per call), so [boxed] subtree
    memoization sites stay stable across renders.

    All raise {!Eval.Stuck} and {!Eval.Out_of_fuel} exactly like the
    substitution evaluator. *)

val run_thunk :
  ?fuel:int ->
  t ->
  Store.t ->
  Event.t Fqueue.t ->
  Ast.value ->
  Ast.value * Store.t * Event.t Fqueue.t
(** Apply a handler value to [()] in state mode (rule THUNK). *)

val run_page_init :
  ?fuel:int ->
  t ->
  page:Ident.page ->
  Store.t ->
  Event.t Fqueue.t ->
  Ast.value ->
  Ast.value * Store.t * Event.t Fqueue.t
(** Run page [page]'s init code on the argument in state mode (rule
    PUSH).  @raise Eval.Stuck if the page does not exist. *)

val run_page_render :
  ?fuel:int ->
  t ->
  page:Ident.page ->
  Store.t ->
  Ast.value ->
  Ast.value * Boxcontent.t
(** Run page [page]'s render code in render mode (rule RENDER). *)

val run_page_render_traced :
  ?fuel:int ->
  ?memo:Render_cache.t ->
  t ->
  page:Ident.page ->
  Store.t ->
  Ast.value ->
  Ast.value * Boxcontent.t * Render_cache.reads
(** {!run_page_render} with read-set tracing and (optionally) [boxed]
    subtree memoization: compiled subtree sites are keyed by (site,
    captured environment values) in [memo] — see
    {!Render_cache.find_csubtree} — no expression reification needed
    on the hot path. *)

(** {1 Arbitrary expressions}

    Compile-and-run counterparts of {!Eval.eval_pure} /
    {!Eval.eval_state} / {!Eval.eval_render}, for tests and tools.
    The expression is compiled on the fly (cost O(|e|), like one
    substitution pass), so prefer the entry points above in hot
    paths. *)

val eval_pure : ?fuel:int -> t -> Store.t -> Ast.expr -> Ast.value

val eval_state :
  ?fuel:int ->
  t ->
  Store.t ->
  Event.t Fqueue.t ->
  Ast.expr ->
  Ast.value * Store.t * Event.t Fqueue.t

val eval_render :
  ?fuel:int -> t -> Store.t -> Ast.expr -> Ast.value * Boxcontent.t

val eval_render_traced :
  ?fuel:int ->
  ?memo:Render_cache.t ->
  t ->
  Store.t ->
  Ast.expr ->
  Ast.value * Boxcontent.t * Render_cache.reads

(** {1 Introspection} *)

val cache_size : unit -> int
(** Number of programs currently in the compile cache (tests). *)
