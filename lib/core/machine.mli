(** The system step relation [->g] (Fig. 9): STARTUP, TAP, BACK
    enqueue events; THUNK, PUSH, POP handle them; RENDER refreshes the
    display; UPDATE swaps the code.  Every transition except RENDER
    invalidates the display, so taps can never land on a stale view.

    Big-step premises are discharged by {!Eval}'s efficient evaluator
    under a fuel bound; divergence (which the paper acknowledges) is
    reported as {!Diverged}. *)

type error =
  | Not_enabled of string  (** the transition's premise fails *)
  | Ill_typed of string  (** UPDATE: [C' |- C'] fails *)
  | Execution_failed of string  (** user code got stuck *)
  | Diverged  (** fuel exhausted *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type 'a outcome = ('a, error) result

type evaluator = Subst | Compiled
(** Which engine discharges the big-step premises: {!Eval}'s
    substitution evaluator (the executable specification, the default
    here) or {!Compile_eval}'s closure-compiled one (compiled once per
    program — the default for {!Live_runtime.Session}s).  Observable
    behaviour is byte-identical; the conformance oracle's ["compiled"]
    configuration enforces it. *)

val startup : State.t -> State.t outcome
(** (STARTUP): requires empty stack and queue; enqueues
    [push start ()]. *)

val tap : State.t -> handler:Ast.value -> State.t outcome
(** (TAP): requires a valid display containing the handler
    ([[ontap = v] ∈ B]); enqueues [exec v].  The UI layer resolves
    screen coordinates to the handler by hit-testing. *)

val tap_first : State.t -> State.t outcome
(** Tap the first handler in document order (tests, demos). *)

val back : State.t -> State.t
(** (BACK): always enabled; enqueues [pop]. *)

val dispatch :
  ?fuel:int -> ?evaluator:evaluator -> State.t -> State.t outcome
(** Dequeue and handle one event: (THUNK), (PUSH) or (POP). *)

val drop_oldest_event : State.t -> State.t
(** Fault injection (conformance fuzzing): lose the oldest queued
    event, as if the platform dropped it.  No-op on an empty queue. *)

val duplicate_oldest_event : State.t -> State.t
(** Fault injection: deliver the oldest queued event twice, back to
    back (at-least-once delivery).  No-op on an empty queue. *)

val render :
  ?fuel:int ->
  ?cache:Render_cache.t ->
  ?evaluator:evaluator ->
  State.t ->
  State.t outcome
(** (RENDER): from [(C, ⊥, S, P(p,v), eps)], rebuild the display by
    running the top page's render code in render mode.  With [cache]
    the render is memoized on the globals it reads — observationally
    identical (see {!Render_cache}), but an unchanged display is
    revalidated without evaluating and unchanged [boxed] subtrees are
    spliced in without re-evaluation. *)

val check_program : Program.t -> (unit, error) result
(** The UPDATE premise on the new code alone: [C' |- C'] plus the
    start-page condition.  A multi-session host typechecks an edit once
    with this, then applies it fleet-wide with [update ~checked:true]. *)

val check_program_incremental :
  diff:Program_diff.t -> Program.t -> (unit, error) result
(** {!check_program} by derivation reuse: re-derive only the diff's
    recheck set, O(edit) instead of O(program).  Accepts and rejects
    exactly as {!check_program} does, with the same first error —
    provided the diff's old program previously passed {!check_program}
    (the caller's obligation; {!Live_host.Broadcast} tracks it with a
    per-registry checked flag).  The from-scratch checker remains the
    oracle: the conformance fuzzer cross-checks the two on every
    broadcast it generates. *)

val update :
  ?checked:bool ->
  ?diff:Program_diff.t ->
  ?report:Fixup.report option ref ->
  Program.t ->
  State.t ->
  State.t outcome
(** (UPDATE): from a state with an empty queue, swap in arbitrary new
    code provided [C' |- C'] (plus the start-page condition); fix up
    store and stack per Fig. 12; invalidate the display.  [checked]
    skips the {!check_program} premise when the caller has already
    discharged it (the empty-queue premise is always re-checked).
    [diff] makes the fix-up targeted ({!Fixup.fixup_with_report}):
    bindings whose declarations kept their signature survive without
    re-checking.  A diff whose endpoints are not physically this
    state's code and [new_code] is ignored (full fix-up). *)

val run_to_stable :
  ?fuel:int ->
  ?cache:Render_cache.t ->
  ?evaluator:evaluator ->
  ?max_steps:int ->
  State.t ->
  State.t outcome
(** Drive internal transitions (STARTUP / dispatch / RENDER) until the
    state is stable with a valid display — Sec. 4.2's liveness loop.
    [cache] memoizes the RENDER steps. *)

val boot :
  ?fuel:int ->
  ?cache:Render_cache.t ->
  ?evaluator:evaluator ->
  ?max_steps:int ->
  Program.t ->
  State.t outcome
(** {!State.initial} driven to its first stable state. *)
