(** A persistent FIFO queue, used for the event queue [Q] (Fig. 7).

    The paper enqueues "by adding elements to the left of the sequence"
    and dequeues "by removing elements from the right end"; we keep that
    orientation in the API names.  Implemented as the classic pair of
    lists with amortised O(1) operations — system states are persistent
    values (transitions return new states), so the queue must be
    persistent too. *)

type 'a t = { front : 'a list; back : 'a list }
(* Invariant: elements leave from [front] head; enter at [back] head.
   [front = []] implies [back = []] after normalisation. *)

let empty = { front = []; back = [] }

let is_empty q = q.front = [] && q.back = []

let normalise q =
  match q.front with
  | [] -> { front = List.rev q.back; back = [] }
  | _ -> q

(** Add an element at the left end (newest). *)
let enqueue x q = normalise { q with back = x :: q.back }

(** Put an element back at the right end (it becomes the oldest) —
    used by the conformance fuzzer's fault injection to re-order or
    duplicate queued events deterministically. *)
let push_front x q = { q with front = x :: q.front }

(** Remove the element at the right end (oldest). *)
let dequeue q =
  match (normalise q).front with
  | [] -> None
  | x :: front -> Some (x, normalise { (normalise q) with front })

let length q = List.length q.front + List.length q.back

(** Oldest-first list of the queue's contents. *)
let to_list q = q.front @ List.rev q.back

let of_list xs = { front = xs; back = [] }

let fold f acc q = List.fold_left f acc (to_list q)

let equal eq a b = List.equal eq (to_list a) (to_list b)

let pp pp_elt ppf q =
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") pp_elt) (to_list q)
