(** Capture-avoiding substitution [e[v/x]], the engine of rule EP-APP
    (Fig. 8).

    Substituted values are always closed in a well-typed run (values
    produced by evaluation of closed programs are closed), but we keep
    the implementation capture-avoiding anyway so that the small-step
    machine is safe on arbitrary terms produced by the random testers. *)

module SS = Ast.StringSet

(* Atomic so concurrent domains never tear the counter.  In the
   parallel host this path is in fact unreachable — sessions evaluate
   closed programs, where capture is impossible — but the small-step
   specification machine substitutes into arbitrary terms, and a
   module-level [ref] would be the kind of silent shared state the
   domain audit exists to rule out. *)
let rename_counter = Atomic.make 0

let rename_away x avoid =
  let rec try_next () =
    let n = 1 + Atomic.fetch_and_add rename_counter 1 in
    let cand = Printf.sprintf "%s#%d" x n in
    if SS.mem cand avoid then try_next () else cand
  in
  try_next ()

(** [subst_expr x v e] is [e[v/x]].

    [closed_arg] asserts that [v] is a closed value, which makes
    capture impossible and lets substitution skip the free-variable
    scan of [v] (that scan is O(|v|); recomputing it at every loop
    iteration of a list fold would make rendering quadratic in the
    list length).  The big-step evaluator maintains the invariant that
    every value it produces from a closed program is closed, so it
    passes [~closed_arg:true]; the small-step specification machine
    does not. *)
let rec subst_expr ?(closed_arg = false) (x : Ident.var) (v : Ast.value)
    (e : Ast.expr) : Ast.expr =
  let fv =
    lazy (if closed_arg then SS.empty else Ast.free_vars (Val v))
  in
  let rec go_v (bound : SS.t) (w : Ast.value) : Ast.value =
    match w with
    | VNum _ | VStr _ -> w
    (* arrow-free lists contain no lambdas and hence no variables *)
    | VList (t, _) when Typ.arrow_free t -> w
    | VTuple vs -> VTuple (List.map (go_v bound) vs)
    | VList (t, vs) -> VList (t, List.map (go_v bound) vs)
    | VLam (y, t, body) ->
        if String.equal y x then w
        else if SS.mem y (Lazy.force fv) then
          (* [y] would capture a free variable of [v]: alpha-rename. *)
          let y' =
            rename_away y
              (SS.union (Lazy.force fv) (Ast.free_vars body))
          in
          let body_renamed = rename_var y y' body in
          VLam (y', t, go bound body_renamed)
        else VLam (y, t, go (SS.add y bound) body)
  and go (bound : SS.t) (e : Ast.expr) : Ast.expr =
    match e with
    | Val w -> Val (go_v bound w)
    | Var y -> if String.equal y x && not (SS.mem y bound) then Val v else e
    | Tuple es -> Tuple (List.map (go bound) es)
    | App (e1, e2) -> App (go bound e1, go bound e2)
    | Fn _ | Get _ | Pop -> e
    | Proj (e1, n) -> Proj (go bound e1, n)
    | Set (g, e1) -> Set (g, go bound e1)
    | Push (p, e1) -> Push (p, go bound e1)
    | Boxed (id, e1) -> Boxed (id, go bound e1)
    | Post e1 -> Post (go bound e1)
    | SetAttr (a, e1) -> SetAttr (a, go bound e1)
    | Prim (n, ts, es) -> Prim (n, ts, List.map (go bound) es)
  in
  go SS.empty e

(** [rename_var y y' e] renames free occurrences of variable [y] to
    [y'] (used only for alpha-renaming during capture avoidance). *)
and rename_var (y : Ident.var) (y' : Ident.var) (e : Ast.expr) : Ast.expr =
  let rec go_v bound (w : Ast.value) : Ast.value =
    match w with
    | VNum _ | VStr _ -> w
    | VList (t, _) when Typ.arrow_free t -> w
    | VTuple vs -> VTuple (List.map (go_v bound) vs)
    | VList (t, vs) -> VList (t, List.map (go_v bound) vs)
    | VLam (z, t, body) ->
        if String.equal z y then w else VLam (z, t, go (SS.add z bound) body)
  and go bound (e : Ast.expr) : Ast.expr =
    match e with
    | Val w -> Val (go_v bound w)
    | Var z ->
        if String.equal z y && not (SS.mem z bound) then Var y' else e
    | Tuple es -> Tuple (List.map (go bound) es)
    | App (e1, e2) -> App (go bound e1, go bound e2)
    | Fn _ | Get _ | Pop -> e
    | Proj (e1, n) -> Proj (go bound e1, n)
    | Set (g, e1) -> Set (g, go bound e1)
    | Push (p, e1) -> Push (p, go bound e1)
    | Boxed (id, e1) -> Boxed (id, go bound e1)
    | Post e1 -> Post (go bound e1)
    | SetAttr (a, e1) -> SetAttr (a, go bound e1)
    | Prim (n, ts, es) -> Prim (n, ts, List.map (go bound) es)
  in
  go SS.empty e

(** Apply a lambda value to an argument value: the right-hand side of
    EP-APP, [(lambda(x:tau).e) v  ->  e[v/x]]. *)
let beta ?closed_arg (x : Ident.var) (body : Ast.expr) (arg : Ast.value) :
    Ast.expr =
  subst_expr ?closed_arg x arg body
