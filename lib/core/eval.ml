(** Expression evaluation (Fig. 8): the three relations

    {v
      (C, S, e)       ->p (C, S, e')          pure steps
      (C, S, Q, e)    ->s (C, S', Q', e')     standard (stateful) steps
      (C, S, B, e)    ->r (C, S, B', e')      render steps
    v}

    Two implementations live here:

    - {b Small-step} ({!step}, {!step_pure}, {!step_state},
      {!step_render}): a literal transcription of the evaluation
      contexts and rules of Fig. 8, used by the metatheory test-suite
      (preservation/progress) and as the executable specification.
      Rule ER-BOXED has a big-step premise [(C,S,eps,e) ->r* (C,S,B',v)]
      in the paper; we mirror that — a [boxed] expression reduces in
      one outer step whose premise iterates inner render steps.

    - {b Big-step} ({!eval_state}, {!eval_render}, {!eval_pure}): an
      efficient evaluator used by {!Machine} and the benchmarks.  It is
      checked against the small-step semantics on random well-typed
      programs (see [test/test_smallstep.ml]).

    Both enforce the effect discipline dynamically as well (a [Set] in
    render mode is {e stuck}, not silently executed), so even untyped
    terms cannot violate the model-view separation. *)

exception Stuck of string
exception Out_of_fuel

let stuck fmt = Fmt.kstr (fun s -> raise (Stuck s)) fmt

(** Default fuel for a single expression evaluation; generous enough
    for every workload in this repository while still catching the
    divergent programs the paper acknowledges ("the execution of user
    code may of course diverge", Sec. 4.2). *)
let default_fuel = 50_000_000

(* ================================================================== *)
(* Small-step semantics                                                *)
(* ================================================================== *)

(** Configuration shared by the three relations.  Pure steps ignore
    [queue] and [box]; stateful steps ignore [box]; render steps ignore
    [queue] and may not change [store]. *)
type cfg = { store : Store.t; queue : Event.t Fqueue.t; box : Boxcontent.t }

let cfg_of_store store = { store; queue = Fqueue.empty; box = [] }

type outcome =
  | Value  (** the expression is a value; no step applies *)
  | Next of cfg * Ast.expr  (** one step *)
  | Wrong of string  (** stuck: no rule applies *)

(** [step mode prog cfg e] — one small step of [->mode].  [fuel] bounds
    the inner iteration of ER-BOXED premises. *)
let rec step ?(fuel = default_fuel) (mode : Eff.t) (prog : Program.t)
    (cfg : cfg) (e : Ast.expr) : outcome =
  let sub_step e' k =
    (* Step inside an evaluation context: if the subterm steps, rebuild. *)
    match step ~fuel mode prog cfg e' with
    | Value -> Value (* caller must handle: subterm already a value *)
    | Next (cfg', e'') -> Next (cfg', k e'')
    | Wrong m -> Wrong m
  in
  let first_nonvalue es =
    (* leftmost non-value subterm, per the (v1,...,vi,E,ej,...) context *)
    let rec go i = function
      | [] -> None
      | e :: rest -> if Ast.is_value e then go (i + 1) rest else Some (i, e)
    in
    go 0 es
  in
  let step_list es rebuild =
    match first_nonvalue es with
    | None -> Value
    | Some (i, ei) -> (
        match step ~fuel mode prog cfg ei with
        | Value -> Wrong "impossible: non-value classified as value"
        | Wrong m -> Wrong m
        | Next (cfg', ei') ->
            Next (cfg', rebuild (List.mapi (fun j e -> if j = i then ei' else e) es)))
  in
  match e with
  | Ast.Val _ -> Value
  | Ast.Var x -> Wrong (Fmt.str "unbound variable %s" x)
  | Ast.Tuple es -> (
      match first_nonvalue es with
      | None -> Value (* a tuple of values is a value *)
      | Some _ -> step_list es (fun es -> Ast.Tuple es))
  | Ast.App (e1, e2) -> (
      if not (Ast.is_value e1) then sub_step e1 (fun e1' -> Ast.App (e1', e2))
      else if not (Ast.is_value e2) then
        sub_step e2 (fun e2' -> Ast.App (e1, e2'))
      else
        (* EP-APP *)
        match Ast.as_value e1 with
        | Some (Ast.VLam (x, _, body)) ->
            let arg = Option.get (Ast.as_value e2) in
            Next (cfg, Subst.beta x body arg)
        | _ -> Wrong "application of a non-function value")
  | Ast.Fn f -> (
      (* EP-FUN *)
      match Program.find_func prog f with
      | Some (_, body) -> Next (cfg, body)
      | None -> Wrong (Fmt.str "undefined function %s" f))
  | Ast.Proj (e1, n) -> (
      if not (Ast.is_value e1) then sub_step e1 (fun e1' -> Ast.Proj (e1', n))
      else
        (* EP-TUPLE *)
        match Ast.as_value e1 with
        | Some (Ast.VTuple vs) -> (
            match List.nth_opt vs (n - 1) with
            | Some v -> Next (cfg, Ast.Val v)
            | None -> Wrong (Fmt.str "projection .%d out of range" n))
        | _ -> Wrong "projection from a non-tuple")
  | Ast.Get g -> (
      (* EP-GLOBAL-1 / EP-GLOBAL-2 *)
      match Store.read prog g cfg.store with
      | Some v -> Next (cfg, Ast.Val v)
      | None -> Wrong (Fmt.str "undefined global %s" g))
  | Ast.Set (g, e1) -> (
      if not (Eff.sub Eff.State mode) then
        Wrong (Fmt.str "global write to %s outside state effect" g)
      else if not (Ast.is_value e1) then
        sub_step e1 (fun e1' -> Ast.Set (g, e1'))
      else
        (* ES-ASSIGN *)
        match Ast.as_value e1 with
        | Some v ->
            Next ({ cfg with store = Store.write g v cfg.store }, Ast.eunit)
        | None -> Wrong "impossible")
  | Ast.Push (p, e1) -> (
      if not (Eff.sub Eff.State mode) then
        Wrong "push outside state effect"
      else if not (Ast.is_value e1) then
        sub_step e1 (fun e1' -> Ast.Push (p, e1'))
      else
        (* ES-PUSH *)
        match Ast.as_value e1 with
        | Some v ->
            Next
              ( { cfg with queue = Fqueue.enqueue (Event.Push (p, v)) cfg.queue },
                Ast.eunit )
        | None -> Wrong "impossible")
  | Ast.Pop ->
      (* ES-POP *)
      if not (Eff.sub Eff.State mode) then Wrong "pop outside state effect"
      else
        Next
          ({ cfg with queue = Fqueue.enqueue Event.Pop cfg.queue }, Ast.eunit)
  | Ast.Boxed (id, inner) ->
      (* ER-BOXED, with its big-step premise (C,S,eps,e) ->r* (C,S,B',v) *)
      if not (Eff.sub Eff.Render mode) then
        Wrong "boxed outside render effect"
      else
        let rec run fuel' (c : cfg) (e : Ast.expr) =
          if fuel' <= 0 then raise Out_of_fuel
          else
            match step ~fuel Eff.Render prog c e with
            | Value -> Ok (c.box, Option.get (Ast.as_value e))
            | Next (c', e') -> run (fuel' - 1) c' e'
            | Wrong m -> Error m
        in
        (match run fuel { cfg with box = [] } inner with
        | Ok (inner_box, v) ->
            Next
              ( { cfg with box = cfg.box @ [ Boxcontent.Box (id, inner_box) ] },
                Ast.Val v )
        | Error m -> Wrong m)
  | Ast.Post e1 -> (
      if not (Eff.sub Eff.Render mode) then Wrong "post outside render effect"
      else if not (Ast.is_value e1) then
        sub_step e1 (fun e1' -> Ast.Post e1')
      else
        (* ER-POST *)
        match Ast.as_value e1 with
        | Some v ->
            Next
              ({ cfg with box = cfg.box @ [ Boxcontent.Leaf v ] }, Ast.eunit)
        | None -> Wrong "impossible")
  | Ast.SetAttr (a, e1) -> (
      if not (Eff.sub Eff.Render mode) then
        Wrong "attribute write outside render effect"
      else if not (Ast.is_value e1) then
        sub_step e1 (fun e1' -> Ast.SetAttr (a, e1'))
      else
        (* ER-ATTR *)
        match Ast.as_value e1 with
        | Some v ->
            Next
              ( { cfg with box = cfg.box @ [ Boxcontent.Attr (a, v) ] },
                Ast.eunit )
        | None -> Wrong "impossible")
  | Ast.Prim (name, ts, es) -> (
      match first_nonvalue es with
      | Some _ -> step_list es (fun es -> Ast.Prim (name, ts, es))
      | None -> (
          let vs = List.map (fun e -> Option.get (Ast.as_value e)) es in
          match Prim.delta name ts vs with
          | Ok e' -> Next (cfg, e')
          | Error m -> Wrong m))

(** The paper's three relations, as wrappers over {!step}. *)
let step_pure ?fuel prog store e =
  match step ?fuel Eff.Pure prog (cfg_of_store store) e with
  | Value -> Value
  | Wrong m -> Wrong m
  | Next (cfg, e') ->
      (* pure steps touch nothing *)
      assert (Store.equal cfg.store store);
      Next (cfg, e')

let step_state ?fuel prog store queue e =
  step ?fuel Eff.State prog { store; queue; box = [] } e

let step_render ?fuel prog store box e =
  step ?fuel Eff.Render prog { store; queue = Fqueue.empty; box } e

(** Reduce to a value with iterated small steps (the [->mu*] closure).
    Raises {!Stuck} or {!Out_of_fuel}. *)
let run_small ?(fuel = default_fuel) (mode : Eff.t) (prog : Program.t)
    (cfg : cfg) (e : Ast.expr) : cfg * Ast.value =
  let rec go fuel cfg e =
    if fuel <= 0 then raise Out_of_fuel
    else
      match step ~fuel mode prog cfg e with
      | Value -> (cfg, Option.get (Ast.as_value e))
      | Next (cfg', e') -> go (fuel - 1) cfg' e'
      | Wrong m -> raise (Stuck m)
  in
  go fuel cfg e

(* ================================================================== *)
(* Big-step evaluator                                                  *)
(* ================================================================== *)

(** Read-set tracing for the render memoization cache
    ({!Render_cache}): a stack of open scopes, one per [boxed]
    subexpression being evaluated for the first time, plus the root
    scope of the whole render.  Each global read is recorded (once —
    render mode cannot change the store, so a global's value is stable
    within one render) in the innermost scope; when a scope closes its
    reads are folded into its parent, so every scope ends up with the
    {e transitive} read set of its subtree. *)
type readscope = (Ident.global, Ast.value) Hashtbl.t

type tracer = { mutable scopes : readscope list  (** innermost first *) }

type ctx = {
  prog : Program.t;
  mutable fuel : int;
  mutable store : Store.t;
  mutable queue : Event.t Fqueue.t;
  trace : tracer option;  (** read-set tracing, on for cached renders *)
  memo : Render_cache.t option;  (** subtree memoization, ditto *)
}

let tick (c : ctx) =
  c.fuel <- c.fuel - 1;
  if c.fuel <= 0 then raise Out_of_fuel

let record_read (c : ctx) (g : Ident.global) (v : Ast.value) : unit =
  match c.trace with
  | None -> ()
  | Some { scopes = scope :: _; _ } ->
      if not (Hashtbl.mem scope g) then Hashtbl.add scope g v
  | Some { scopes = []; _ } -> ()

let record_reads (c : ctx) (reads : Render_cache.reads) : unit =
  List.iter (fun (g, v) -> record_read c g v) reads

let scope_reads (scope : readscope) : Render_cache.reads =
  Hashtbl.fold (fun g v acc -> (g, v) :: acc) scope []

(* Box accumulators are reversed lists for O(1) append. *)
type boxacc = Boxcontent.item list ref

let rec eval (mode : Eff.t) (c : ctx) (box : boxacc option) (e : Ast.expr) :
    Ast.value =
  tick c;
  match e with
  | Ast.Val v -> v
  | Ast.Var x -> stuck "unbound variable %s" x
  | Ast.Tuple es -> Ast.VTuple (List.map (eval mode c box) es)
  | Ast.App (e1, e2) -> (
      let f = eval mode c box e1 in
      let arg = eval mode c box e2 in
      match f with
      | Ast.VLam (x, _, body) ->
          (* values produced from a closed program are closed, so
             capture-avoidance is unnecessary (see {!Subst.subst_expr}) *)
          eval mode c box (Subst.beta ~closed_arg:true x body arg)
      | _ -> stuck "application of a non-function value")
  | Ast.Fn f -> (
      match Program.find_func c.prog f with
      | Some (_, body) -> eval mode c box body
      | None -> stuck "undefined function %s" f)
  | Ast.Proj (e1, n) -> (
      match eval mode c box e1 with
      | Ast.VTuple vs -> (
          match List.nth_opt vs (n - 1) with
          | Some v -> v
          | None -> stuck "projection .%d out of range" n)
      | _ -> stuck "projection from a non-tuple")
  | Ast.Get g -> (
      match Store.read c.prog g c.store with
      | Some v ->
          record_read c g v;
          v
      | None -> stuck "undefined global %s" g)
  | Ast.Set (g, e1) ->
      if not (Eff.sub Eff.State mode) then
        stuck "global write to %s outside state effect" g
      else begin
        let v = eval mode c box e1 in
        c.store <- Store.write g v c.store;
        Ast.vunit
      end
  | Ast.Push (p, e1) ->
      if not (Eff.sub Eff.State mode) then stuck "push outside state effect"
      else begin
        let v = eval mode c box e1 in
        c.queue <- Fqueue.enqueue (Event.Push (p, v)) c.queue;
        Ast.vunit
      end
  | Ast.Pop ->
      if not (Eff.sub Eff.State mode) then stuck "pop outside state effect"
      else begin
        c.queue <- Fqueue.enqueue Event.Pop c.queue;
        Ast.vunit
      end
  | Ast.Boxed (id, inner) -> (
      match box with
      | Some parent when Eff.sub Eff.Render mode -> (
          match c.memo with
          | None ->
              let acc : boxacc = ref [] in
              let v = eval mode c (Some acc) inner in
              parent := Boxcontent.Box (id, List.rev !acc) :: !parent;
              v
          | Some memo -> eval_boxed_memo mode c parent memo id inner)
      | _ -> stuck "boxed outside render effect")
  | Ast.Post e1 -> (
      match box with
      | Some acc when Eff.sub Eff.Render mode ->
          let v = eval mode c box e1 in
          acc := Boxcontent.Leaf v :: !acc;
          Ast.vunit
      | _ -> stuck "post outside render effect")
  | Ast.SetAttr (a, e1) -> (
      match box with
      | Some acc when Eff.sub Eff.Render mode ->
          let v = eval mode c box e1 in
          acc := Boxcontent.Attr (a, v) :: !acc;
          Ast.vunit
      | _ -> stuck "attribute write outside render effect")
  | Ast.Prim (name, ts, es) -> (
      let vs = List.map (eval mode c box) es in
      match Prim.delta name ts vs with
      | Ok (Ast.Val v) -> v
      | Ok e' -> eval mode c box e'
      | Error m -> raise (Stuck m))

(** A [boxed] expression under memoization.  [inner] is closed
    (substitution already happened), so (inner, code, read globals)
    determines the produced subtree: on a valid cache entry splice it
    in without evaluating; otherwise evaluate under a fresh read scope
    and record the entry.  Either way the subtree's reads are folded
    into the enclosing scope, keeping parents' read sets transitive. *)
and eval_boxed_memo (mode : Eff.t) (c : ctx) (parent : boxacc)
    (memo : Render_cache.t) (id : Srcid.t option) (inner : Ast.expr) :
    Ast.value =
  let key = Render_cache.subtree_key id inner in
  match
    Render_cache.find_subtree memo key ~expr:inner ~prog:c.prog ~store:c.store
  with
  | Some entry ->
      parent := entry.Render_cache.item :: !parent;
      record_reads c entry.Render_cache.reads;
      entry.Render_cache.value
  | None ->
      let scope : readscope = Hashtbl.create 8 in
      (match c.trace with
      | Some tr -> tr.scopes <- scope :: tr.scopes
      | None -> ());
      let acc : boxacc = ref [] in
      let v = eval mode c (Some acc) inner in
      (match c.trace with
      | Some tr -> tr.scopes <- List.tl tr.scopes
      | None -> ());
      let item = Boxcontent.Box (id, List.rev !acc) in
      parent := item :: !parent;
      let reads = scope_reads scope in
      Render_cache.add_subtree memo key ~expr:inner ~value:v ~item ~reads;
      record_reads c reads;
      v

(** Evaluate a pure expression: [(C, S, e) ->p* (C, S, v)]. *)
let eval_pure ?(fuel = default_fuel) (prog : Program.t) (store : Store.t)
    (e : Ast.expr) : Ast.value =
  let c =
    { prog; fuel; store; queue = Fqueue.empty; trace = None; memo = None }
  in
  eval Eff.Pure c None e

(** Evaluate in standard mode: returns the value, final store, and the
    events the expression enqueued. *)
let eval_state ?(fuel = default_fuel) (prog : Program.t) (store : Store.t)
    (queue : Event.t Fqueue.t) (e : Ast.expr) :
    Ast.value * Store.t * Event.t Fqueue.t =
  let c = { prog; fuel; store; queue; trace = None; memo = None } in
  let v = eval Eff.State c None e in
  (v, c.store, c.queue)

(** Evaluate in render mode against an implicit top-level box ("our
    model has an implicit top-level box, so render code can set
    attributes even outside a boxed statement", Sec. 4.3).  The store
    is read-only by construction. *)
let eval_render ?(fuel = default_fuel) (prog : Program.t) (store : Store.t)
    (e : Ast.expr) : Ast.value * Boxcontent.t =
  let c =
    { prog; fuel; store; queue = Fqueue.empty; trace = None; memo = None }
  in
  let acc : boxacc = ref [] in
  let v = eval Eff.Render c (Some acc) e in
  (v, List.rev !acc)

(** {!eval_render} with read-set tracing and (optionally) subtree
    memoization against [memo]: additionally returns the set of globals
    the render read, with the values it observed — the dependency
    record that lets [Machine.render] revalidate the whole display next
    time without evaluating anything. *)
let eval_render_traced ?(fuel = default_fuel) ?memo (prog : Program.t)
    (store : Store.t) (e : Ast.expr) :
    Ast.value * Boxcontent.t * Render_cache.reads =
  let root : readscope = Hashtbl.create 16 in
  let c =
    {
      prog;
      fuel;
      store;
      queue = Fqueue.empty;
      trace = Some { scopes = [ root ] };
      memo;
    }
  in
  let acc : boxacc = ref [] in
  let v = eval Eff.Render c (Some acc) e in
  (v, List.rev !acc, scope_reads root)
