let placeholder () = ()
