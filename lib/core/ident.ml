(** Identifier classes of the calculus (Fig. 6): global variables [g],
    global functions [f], page names [p], box attributes [a], and
    lambda-bound variables [x].  All are interned as strings; the
    distinct types below are aliases kept separate for documentation. *)

type global = string
type func = string
type page = string
type attr = string
type var = string

(** The distinguished page every program must define (T-SYS, Fig. 11). *)
let start_page : page = "start"

(** Fresh-name generation for compiler-introduced identifiers (loop
    functions, temporaries).  Generated names contain ['$'], which the
    surface lexer rejects, so they can never collide with user names. *)
let fresh_counter = Atomic.make 0

let fresh prefix =
  let n = 1 + Atomic.fetch_and_add fresh_counter 1 in
  Printf.sprintf "$%s_%d" prefix n

let reset_fresh () = Atomic.set fresh_counter 0

let is_generated name = String.length name > 0 && name.[0] = '$'
