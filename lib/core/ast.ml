(** Values and expressions of the calculus (Fig. 6).

    {v
      v ::= n | s | x | (v_1, ..., v_n) | lambda(x : tau). e
      e ::= v | e1 e2 | f | (e_1, ..., e_n) | e.n | g | g := e
          | push p e | pop | boxed e | post e | box.a := e
    v}

    Implementation notes:
    - Values and expressions are mutually recursive; [Val] injects a
      value into expressions, and a tuple expression whose components
      have all been reduced steps to a tuple value (EP-TUPLE context).
    - Variables [Var x] only appear transiently: EP-APP substitutes the
      argument value for the bound variable, so closed programs reduce
      without environments, exactly as the paper's substitution
      semantics prescribes.
    - [Prim] is a documented extension: the paper treats arithmetic,
      string operations ([math->floor], [||], ...) and the lazy
      conditional as ambient functions; we realise them as primitive
      applications with delta-rules (module {!Prim}).  Primitives are
      effect-[p], so they do not perturb the effect discipline.
    - [Boxed] carries an optional {!Srcid.t} stamped by the surface
      compiler; it is what makes UI-Code Navigation (Sec. 3) possible.
*)

type value =
  | VNum of float
  | VStr of string
  | VTuple of value list
  | VLam of Ident.var * Typ.t * expr
  | VList of Typ.t * value list
      (** extension: homogeneous list with element type *)

and expr =
  | Val of value
  | Var of Ident.var
  | Tuple of expr list
  | App of expr * expr
  | Fn of Ident.func  (** reference to a global function definition *)
  | Proj of expr * int  (** [e.n], 1-indexed as in Fig. 6 *)
  | Get of Ident.global
  | Set of Ident.global * expr
  | Push of Ident.page * expr
  | Pop
  | Boxed of Srcid.t option * expr
  | Post of expr
  | SetAttr of Ident.attr * expr
  | Prim of string * Typ.t list * expr list
      (** extension: [Prim (name, type_args, args)] *)

(** The unit value [()] — the empty tuple. *)
let vunit = VTuple []

let eunit = Val vunit

(** Numbers double as booleans in the calculus (the paper encodes
    conditionals with thunks; truth is non-zero-ness, as in the
    TouchDevelop runtime). *)
let vbool b = VNum (if b then 1.0 else 0.0)

let vtrue = vbool true
let vfalse = vbool false
let truthy = function VNum f -> f <> 0.0 | _ -> false

let rec equal_value a b =
  match (a, b) with
  | VNum x, VNum y -> Float.equal x y
  | VStr x, VStr y -> String.equal x y
  | VTuple xs, VTuple ys ->
      List.length xs = List.length ys && List.for_all2 equal_value xs ys
  | VLam (x1, t1, e1), VLam (x2, t2, e2) ->
      String.equal x1 x2 && Typ.equal t1 t2 && equal_expr e1 e2
  | VList (t1, xs), VList (t2, ys) ->
      Typ.equal t1 t2
      && List.length xs = List.length ys
      && List.for_all2 equal_value xs ys
  | (VNum _ | VStr _ | VTuple _ | VLam _ | VList _), _ -> false

and equal_expr a b =
  match (a, b) with
  | Val v1, Val v2 -> equal_value v1 v2
  | Var x, Var y -> String.equal x y
  | Tuple xs, Tuple ys ->
      List.length xs = List.length ys && List.for_all2 equal_expr xs ys
  | App (f1, a1), App (f2, a2) -> equal_expr f1 f2 && equal_expr a1 a2
  | Fn f, Fn g -> String.equal f g
  | Proj (e1, n1), Proj (e2, n2) -> n1 = n2 && equal_expr e1 e2
  | Get g1, Get g2 -> String.equal g1 g2
  | Set (g1, e1), Set (g2, e2) -> String.equal g1 g2 && equal_expr e1 e2
  | Push (p1, e1), Push (p2, e2) -> String.equal p1 p2 && equal_expr e1 e2
  | Pop, Pop -> true
  | Boxed (i1, e1), Boxed (i2, e2) ->
      Option.equal Srcid.equal i1 i2 && equal_expr e1 e2
  | Post e1, Post e2 -> equal_expr e1 e2
  | SetAttr (a1, e1), SetAttr (a2, e2) ->
      String.equal a1 a2 && equal_expr e1 e2
  | Prim (n1, t1, a1), Prim (n2, t2, a2) ->
      String.equal n1 n2
      && List.length t1 = List.length t2
      && List.for_all2 Typ.equal t1 t2
      && List.length a1 = List.length a2
      && List.for_all2 equal_expr a1 a2
  | ( ( Val _ | Var _ | Tuple _ | App _ | Fn _ | Proj _ | Get _ | Set _
      | Push _ | Pop | Boxed _ | Post _ | SetAttr _ | Prim _ ),
      _ ) ->
      false

(** [as_value e] classifies an expression as a value (Fig. 6's [v]
    production): a [Val] injection, or a tuple expression all of whose
    components are values. *)
let rec as_value = function
  | Val v -> Some v
  | Tuple es ->
      let rec go acc = function
        | [] -> Some (VTuple (List.rev acc))
        | e :: rest -> (
            match as_value e with
            | Some v -> go (v :: acc) rest
            | None -> None)
      in
      go [] es
  | _ -> None

let is_value e = Option.is_some (as_value e)

module StringSet = Set.Make (String)

(** Free variables of an expression (bound variables come only from
    lambdas). *)
let free_vars expr =
  let module SS = StringSet in
  let rec go_v bound acc = function
    | VNum _ | VStr _ -> acc
    (* an arrow-free-typed list cannot contain lambdas, hence no
       variables: skip it in O(1) (large model values are repeatedly
       substituted through loop bodies) *)
    | VList (t, _) when Typ.arrow_free t -> acc
    | VTuple vs | VList (_, vs) -> List.fold_left (go_v bound) acc vs
    | VLam (x, _, e) -> go (SS.add x bound) acc e
  and go bound acc = function
    | Val v -> go_v bound acc v
    | Var x -> if SS.mem x bound then acc else SS.add x acc
    | Tuple es | Prim (_, _, es) -> List.fold_left (go bound) acc es
    | App (e1, e2) -> go bound (go bound acc e1) e2
    | Fn _ | Get _ | Pop -> acc
    | Proj (e, _) | Set (_, e) | Push (_, e) | Boxed (_, e) | Post e
    | SetAttr (_, e) ->
        go bound acc e
  in
  go SS.empty SS.empty expr

let closed_expr e = StringSet.is_empty (free_vars e)

let closed_value v = closed_expr (Val v)

(** Term size, used for shrinking and generation budgets. *)
let rec size_value = function
  | VNum _ | VStr _ -> 1
  | VTuple vs | VList (_, vs) ->
      1 + List.fold_left (fun n v -> n + size_value v) 0 vs
  | VLam (_, _, e) -> 1 + size_expr e

and size_expr = function
  | Val v -> size_value v
  | Var _ | Fn _ | Get _ | Pop -> 1
  | Tuple es | Prim (_, _, es) ->
      1 + List.fold_left (fun n e -> n + size_expr e) 0 es
  | App (e1, e2) -> 1 + size_expr e1 + size_expr e2
  | Proj (e, _) | Set (_, e) | Push (_, e) | Boxed (_, e) | Post e
  | SetAttr (_, e) ->
      1 + size_expr e

(** Structural hashes for the render memoization cache.
    [Hashtbl.hash]'s default traversal bound (10 meaningful nodes)
    would make most distinct render subexpressions collide; the widened
    bound keeps collisions rare.  Every cache consumer re-verifies with
    {!equal_expr} / {!equal_value} on a hit, so a residual collision
    costs time, never correctness. *)
let hash_value (v : value) : int = Hashtbl.hash_param 500 1000 v

let hash_expr (e : expr) : int = Hashtbl.hash_param 500 1000 e
