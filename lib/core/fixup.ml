(** State fix-up after a code update (Fig. 12).

    The UPDATE transition imposes {e no} relationship between the old
    and new code ("Supporting arbitrary code changes is important in
    practice", Sec. 4.2); instead, whatever part of the store and page
    stack does not type under the new code is deleted:

    - S-SKIP / S-OKAY: a binding [g -> v] survives iff the new code
      declares [g] and [v] checks against its declared type.  A global
      whose declaration disappeared, or whose type changed incompatibly,
      reverts to the new initial value (via EP-GLOBAL-2's fallback).
    - P-SKIP / P-OKAY: a stack entry [(p, v)] survives iff page [p]
      still exists and [v] checks against its argument type.

    "Essentially, it just deletes whatever does not type." *)

(* With a diff of the edit in hand, the Fig. 12 walk becomes targeted:
   a binding whose declaration kept its kind and declared type survives
   without being re-checked.  This is sound because the declared types
   here are arrow-free (T-C-GLOBAL / T-C-PAGE), so a value that checked
   against the type once checks forever — {!Typecheck.check_value}
   consults the program only under arrows, which an arrow-free-typed
   value cannot contain.  The old state being well-typed (C |- S,
   C |- P — the machine's preservation invariant) supplies that
   "checked once".  Everything else — removed, retyped, kind-changed or
   somehow-undeclared names — takes the full S-/P-rule check, so the
   targeted walk deletes exactly what the full walk deletes. *)

let global_survives ?diff (new_code : Program.t) (g : Ident.global)
    (v : Ast.value) : bool =
  match diff with
  | Some d when Program_diff.global_preserved d g -> true (* S-OKAY *)
  | _ -> (
      match Program.find_global new_code g with
      | None -> false (* S-SKIP: g not in C' *)
      | Some (ty, _) -> Typecheck.check_value new_code v ty
      (* S-OKAY / S-SKIP on type mismatch *))

let page_survives ?diff (new_code : Program.t) (page : Ident.page)
    (v : Ast.value) : bool =
  match diff with
  | Some d when Program_diff.page_preserved d page -> true (* P-OKAY *)
  | _ -> (
      match Program.find_page new_code page with
      | None -> false (* P-SKIP: p not in C' *)
      | Some (arg_ty, _, _) -> Typecheck.check_value new_code v arg_ty
      (* P-OKAY *))

(** [C' : S . S'] — the store fix-up. *)
let fixup_store ?diff (new_code : Program.t) (s : Store.t) : Store.t =
  Store.filter (global_survives ?diff new_code) s

(** [C' : P . P'] — the page stack fix-up. *)
let fixup_stack ?diff (new_code : Program.t)
    (p : (Ident.page * Ast.value) list) : (Ident.page * Ast.value) list =
  List.filter (fun (page, v) -> page_survives ?diff new_code page v) p

(** Statistics about what a fix-up deleted — surfaced to the programmer
    by the live environment ("your edit reset global [xs]"). *)
type report = {
  dropped_globals : Ident.global list;
  dropped_pages : Ident.page list;
}

let fixup_with_report ?diff (new_code : Program.t) (store : Store.t)
    (stack : (Ident.page * Ast.value) list) :
    Store.t * (Ident.page * Ast.value) list * report =
  let store' = fixup_store ?diff new_code store in
  let stack' = fixup_stack ?diff new_code stack in
  let dropped_globals =
    List.filter_map
      (fun (g, _) -> if Store.mem g store' then None else Some g)
      (Store.bindings store)
  in
  let dropped_pages =
    List.filter_map
      (fun (page, v) ->
        if page_survives ?diff new_code page v then None else Some page)
      stack
  in
  (store', stack', { dropped_globals; dropped_pages })

let pp_report ppf (r : report) =
  match (r.dropped_globals, r.dropped_pages) with
  | [], [] -> Fmt.string ppf "nothing dropped"
  | gs, ps ->
      let part what = function
        | [] -> None
        | xs ->
            Some (Printf.sprintf "dropped %s %s" what (String.concat ", " xs))
      in
      Fmt.string ppf
        (String.concat "; "
           (List.filter_map Fun.id [ part "globals" gs; part "pages" ps ]))

let report_to_string (r : report) : string = Fmt.str "%a" pp_report r
