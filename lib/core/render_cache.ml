(** Dependency-tracked memoization of render evaluation.

    The paper's type-and-effect discipline is what makes this sound:
    render code has effect [r], so it may {e read} globals but never
    write them, never touch the event queue, and never capture mutable
    state (Sec. 4.1's model-view separation).  Evaluation is
    substitution-based, so by the time a [boxed] subexpression is
    evaluated it is {e closed}: the box subtree and value it produces
    are a pure function of

    - the subexpression itself (argument values are substituted in),
    - the code [C] (function bodies reached through [Fn]), and
    - the values of the globals it reads (rule EP-GLOBAL-1/2).

    Hence a cache entry [(srcid, e) -> (v, B, reads)] may be replayed
    whenever the same expression is rendered again under the same code
    and a store that gives every global in [reads] the same value.  The
    cache is flushed wholesale whenever the code changes (the UPDATE
    transition installs a fresh {!Program.t}; {!ensure_code} detects it
    by physical identity), which also covers the subtle cases — edited
    function bodies, changed global {e initial} values read through
    EP-GLOBAL-2, and re-stamped source ids.

    Two layers:

    - {b subtree entries}, consulted by {!Eval} at every [boxed]
      expression: a hit splices the cached {!Boxcontent.item} into the
      parent box without evaluating the subtree;
    - {b the display entry}, consulted by [Machine.render] before
      evaluating at all: if the same page is re-rendered with the same
      argument and none of the globals the {e previous} render read
      changed, the previous box tree is revalidated for free (a THUNK
      that did not touch rendered state costs no render work). *)

type reads = (Ident.global * Ast.value) list
(** The read set of one evaluation: each global read, with the value
    observed.  Render mode cannot write the store, so within a single
    render every global has one stable value and each appears once. *)

type subtree_entry = {
  expr : Ast.expr;  (** the (closed) boxed subexpression — the real key *)
  value : Ast.value;  (** the value the subexpression produced *)
  item : Boxcontent.item;  (** the [Box] item it appended to its parent *)
  reads : reads;
}

type csubtree_entry = {
  args : Ast.value list;
      (** the captured environment values — the real key *)
  cvalue : Ast.value;
  citem : Boxcontent.item;
  creads : reads;
}

type display_entry = {
  page : Ident.page;
  arg : Ast.value;
  box : Boxcontent.t;
  display_reads : reads;
}

type stats = {
  hits : int;  (** subtree entries spliced without evaluation *)
  misses : int;  (** subtree evaluations that populated an entry *)
  revalidations : int;  (** whole displays revalidated without evaluation *)
  flushes : int;  (** wholesale invalidations (code changes) *)
  retargets : int;  (** scoped invalidations (diffed code changes) *)
  evictions : int;  (** entries dropped by scoped invalidation *)
}

type t = {
  subtrees : (int * int, subtree_entry) Hashtbl.t;
      (** key: (srcid as int, -1 for none; {!Ast.hash_expr} of the
          subexpression); verified against [expr] on every hit *)
  csubtrees : (int * int, csubtree_entry) Hashtbl.t;
      (** the compiled evaluator's subtree layer — key: (compile-time
          site id, hash of the captured values); verified against
          [args] on every hit.  The site id stands for the expression
          skeleton (one compilation of one program), the captured
          values for everything substitution would have filled in. *)
  displays : (Ident.page, display_entry) Hashtbl.t;
  mutable code : Program.t option;
      (** the code the entries were recorded under, compared by
          physical identity — UPDATE always installs a fresh value *)
  mutable sabotage_no_flush : bool;
      (** test-only: {!ensure_code} stops flushing on code changes,
          deliberately breaking live-update soundness so the
          conformance fuzzer can prove it would catch the bug *)
  mutable capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable revalidations : int;
  mutable flushes : int;
  mutable retargets : int;
  mutable evictions : int;
}

(** Wholesale-flush threshold: beyond this many subtree entries the
    cache resets rather than grow without bound (a long session that
    renders many distinct subtrees, e.g. an ever-growing list). *)
let default_capacity = 16_384

let create ?(capacity = default_capacity) () : t =
  {
    subtrees = Hashtbl.create 256;
    csubtrees = Hashtbl.create 256;
    displays = Hashtbl.create 4;
    code = None;
    sabotage_no_flush = false;
    capacity;
    hits = 0;
    misses = 0;
    revalidations = 0;
    flushes = 0;
    retargets = 0;
    evictions = 0;
  }

let stats (c : t) : stats =
  {
    hits = c.hits;
    misses = c.misses;
    revalidations = c.revalidations;
    flushes = c.flushes;
    retargets = c.retargets;
    evictions = c.evictions;
  }

let size (c : t) = Hashtbl.length c.subtrees + Hashtbl.length c.csubtrees

let flush (c : t) : unit =
  Hashtbl.reset c.subtrees;
  Hashtbl.reset c.csubtrees;
  Hashtbl.reset c.displays;
  c.code <- None;
  c.flushes <- c.flushes + 1

(** Bind the cache to the given code, flushing every entry recorded
    under different code.  Called at the start of every cached RENDER,
    so a code swap (UPDATE) can never replay stale entries even if the
    caller forgets to flush. *)
let ensure_code (c : t) (prog : Program.t) : unit =
  match c.code with
  | Some p when p == prog -> ()
  | Some _ when c.sabotage_no_flush -> c.code <- Some prog
  | Some _ -> flush c; c.code <- Some prog
  | None -> c.code <- Some prog

(** Scoped invalidation on a code swap: rebind the cache to [new_prog]
    keeping every entry the diff proves still replayable, instead of
    the wholesale flush {!ensure_code} would perform.

    Retention conditions, per layer:

    - a {b display} entry for page [p] survives iff [p] is transitively
      clean: re-rendering [p] evaluates only [p]'s body and the
      definitions it transitively references, all unchanged, so under
      the same argument and reads it reproduces the cached box tree
      byte for byte.  (The reads are still re-validated against the
      {e new} program on every hit, so a changed initial value read
      through EP-GLOBAL-2 misses as it must.)
    - a {b subtree} entry survives iff every definition its (closed)
      expression references is transitively clean
      ({!Program_diff.expr_clean}) — same argument, at subtree
      granularity.
    - a {b compiled-subtree} entry survives iff [keep_csite] accepts
      its site id.  Site ids are compilation-scoped: the caller passes
      the liveness predicate of the {e new} compilation
      ({!Compile_eval.site_live}), which inherited the ids of reused
      (clean) definitions and stamped fresh ids for recompiled ones —
      so surviving entries are exactly those belonging to compiled
      code that is still running, and entries of recompiled
      definitions become unreachable garbage and are dropped here.

    If the cache is not currently bound to the diff's old program the
    entries' provenance is unknown and the whole thing degrades to the
    wholesale flush — never wrong, just slower. *)
let retarget (c : t) ~(diff : Program_diff.t) ~(keep_csite : int -> bool)
    (new_prog : Program.t) : unit =
  match c.code with
  | Some p
    when p == Program_diff.old_program diff
         && new_prog == Program_diff.new_program diff
         && not c.sabotage_no_flush ->
      let evict tbl keep =
        let doomed =
          Hashtbl.fold
            (fun k e acc -> if keep e then acc else k :: acc)
            tbl []
        in
        List.iter (Hashtbl.remove tbl) doomed;
        c.evictions <- c.evictions + List.length doomed
      in
      evict c.displays (fun (d : display_entry) ->
          not (Program_diff.is_dirty diff d.page));
      evict c.subtrees (fun (e : subtree_entry) ->
          Program_diff.expr_clean diff e.expr);
      (* csubtree keys carry the site id; filter on it directly *)
      let doomed_sites =
        Hashtbl.fold
          (fun ((site, _) as k) _ acc ->
            if keep_csite site then acc else k :: acc)
          c.csubtrees []
      in
      List.iter (Hashtbl.remove c.csubtrees) doomed_sites;
      c.evictions <- c.evictions + List.length doomed_sites;
      c.retargets <- c.retargets + 1;
      c.code <- Some new_prog
  | _ ->
      (* unknown provenance (or sabotage): the next [ensure_code] under
         the new program performs the wholesale flush as before *)
      ()

(** Break the flush-on-UPDATE invariant on purpose.  Exists only so
    the conformance fuzzer can demonstrate sensitivity: with the flag
    set, stale entries survive a code swap and the differential oracle
    must report the divergence (see [test/test_conformance.ml]). *)
let set_sabotage_no_flush (c : t) (b : bool) : unit =
  c.sabotage_no_flush <- b

(** Every recorded read observes the same value in [store]?  Reads are
    validated with {!Store.read} (not raw lookup) so a global whose
    assigned value was dropped back to its initial value still
    validates iff the observed value matches. *)
let reads_valid (prog : Program.t) (store : Store.t) (reads : reads) : bool =
  List.for_all
    (fun (g, v0) ->
      match Store.read prog g store with
      | Some v -> Ast.equal_value v0 v
      | None -> false)
    reads

(* ------------------------------------------------------------------ *)
(* Subtree entries                                                     *)
(* ------------------------------------------------------------------ *)

let subtree_key (id : Srcid.t option) (e : Ast.expr) : int * int =
  let i = match id with Some i -> Srcid.to_int i | None -> -1 in
  (i, Ast.hash_expr e)

(** Look up a replayable entry for the boxed subexpression [expr]:
    same expression, every recorded read unchanged. *)
let find_subtree (c : t) (key : int * int) ~(expr : Ast.expr)
    ~(prog : Program.t) ~(store : Store.t) : subtree_entry option =
  match Hashtbl.find_opt c.subtrees key with
  | Some e
    when Ast.equal_expr e.expr expr && reads_valid prog store e.reads ->
      c.hits <- c.hits + 1;
      Some e
  | Some _ | None ->
      c.misses <- c.misses + 1;
      None

let add_subtree (c : t) (key : int * int) ~(expr : Ast.expr)
    ~(value : Ast.value) ~(item : Boxcontent.item) ~(reads : reads) : unit =
  if size c >= c.capacity then begin
    let code = c.code in
    flush c;
    c.code <- code
  end;
  Hashtbl.replace c.subtrees key { expr; value; item; reads }

(* ------------------------------------------------------------------ *)
(* Compiled subtree entries                                            *)
(* ------------------------------------------------------------------ *)

let hash_args (args : Ast.value list) : int =
  List.fold_left (fun h v -> (h * 31) + Ast.hash_value v) 17 args

let equal_args (a : Ast.value list) (b : Ast.value list) : bool =
  try List.for_all2 Ast.equal_value a b with Invalid_argument _ -> false

(** Look up a replayable entry for the compiled [boxed] site [site]:
    same captured values (verified structurally), every recorded read
    unchanged.  The enclosing code identity is enforced by
    {!ensure_code}, exactly as for expression-keyed entries. *)
let find_csubtree (c : t) ~(site : int) ~(args : Ast.value list)
    ~(prog : Program.t) ~(store : Store.t) : csubtree_entry option =
  match Hashtbl.find_opt c.csubtrees (site, hash_args args) with
  | Some e when equal_args e.args args && reads_valid prog store e.creads ->
      c.hits <- c.hits + 1;
      Some e
  | Some _ | None ->
      c.misses <- c.misses + 1;
      None

let add_csubtree (c : t) ~(site : int) ~(args : Ast.value list)
    ~(value : Ast.value) ~(item : Boxcontent.item) ~(reads : reads) : unit =
  if size c >= c.capacity then begin
    let code = c.code in
    flush c;
    c.code <- code
  end;
  Hashtbl.replace c.csubtrees (site, hash_args args)
    { args; cvalue = value; citem = item; creads = reads }

(* ------------------------------------------------------------------ *)
(* The whole-display fast path                                         *)
(* ------------------------------------------------------------------ *)

(** Revalidate the previous render of [page]: same argument, no read
    global changed.  [ensure_code] must have been called first, so the
    code is known identical. *)
let find_display (c : t) ~(page : Ident.page) ~(arg : Ast.value)
    ~(prog : Program.t) ~(store : Store.t) : Boxcontent.t option =
  match Hashtbl.find_opt c.displays page with
  | Some d
    when Ast.equal_value d.arg arg
         && reads_valid prog store d.display_reads ->
      c.revalidations <- c.revalidations + 1;
      Some d.box
  | Some _ | None -> None

let add_display (c : t) ~(page : Ident.page) ~(arg : Ast.value)
    ~(reads : reads) (box : Boxcontent.t) : unit =
  Hashtbl.replace c.displays page { page; arg; box; display_reads = reads }

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "hits=%d misses=%d revalidations=%d flushes=%d retargets=%d evictions=%d"
    s.hits s.misses s.revalidations s.flushes s.retargets s.evictions
