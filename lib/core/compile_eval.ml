(** Closure-compiled evaluation (see the interface).

    Compilation maps each {!Ast.expr} to an OCaml closure
    [rt -> env -> Ast.value] over a slot-indexed environment: the
    compile-time environment is the list of binders in scope
    (innermost first), and every [Var] is resolved to its slot index
    once, at compile time.  Applications of lambda {e literals} — the
    shape every [let], loop body and page entry desugars to — push the
    argument onto the environment and run the precompiled body: no
    substitution, no copying, no free-variable scan.

    Equivalence with the substitution machine ({!Eval}) rests on the
    standard substitution lemma plus one twist: runtime values must be
    plain {!Ast.value}s, byte-identical to what substitution produces,
    because they escape into the store, the display (tap handlers) and
    the oracle's observations.  So a lambda literal that {e captures}
    environment slots is {e reified} when evaluated as a value: the
    captured values are substituted into the literal, exactly mirroring
    [Subst.subst_expr ~closed_arg:true] (values of closed programs are
    closed, so simultaneous and sequential substitution agree).  A
    literal applied directly is never reified — that is the fast path.

    Dynamic applications (the callee is a computed value, e.g. the
    THUNK rule's handler) compile the lambda body on the fly — an
    O(|body|) pass, the same order as one substitution, so the dynamic
    path never regresses.  Fuel is consumed per compiled node, like the
    substitution evaluator consumes it per visited node; exact tick
    parity is not promised (only programs diverging near the bound
    could tell), stuck states and messages are identical.

    Effect discipline is enforced dynamically against the runtime mode,
    exactly as in {!Eval}: a [Set] reached in render mode is stuck with
    the same message.  [boxed] subtrees under memoization are keyed by
    a globally unique compile-time {e site id} plus the values of the
    environment slots the subtree captures ({!Render_cache.csubtree}
    layer) — the compiled counterpart of the substitution cache's
    (srcid, closed expression) key, again with no reification on the
    hot path. *)

module SS = Ast.StringSet

let stuck fmt = Fmt.kstr (fun s -> raise (Eval.Stuck s)) fmt

(* Subtree memoization sites are numbered by one global atomic counter
   so that sites from different compilations (racing [get] calls,
   successive programs) can never collide in a session's cache. *)
let site_counter = Atomic.make 0

let fresh_site () = Atomic.fetch_and_add site_counter 1

(* ------------------------------------------------------------------ *)
(* Runtime representation                                              *)
(* ------------------------------------------------------------------ *)

type env = Ast.value list
(** Runtime environment: value of each binder in scope, innermost
    first — same order as the compile-time [senv]. *)

type readscope = (Ident.global, Ast.value) Hashtbl.t

type tracer = { mutable scopes : readscope list  (** innermost first *) }

(** Mutable evaluation state, one per entry-point call (mirrors
    [Eval.ctx]).  [mode] is fixed for the whole run; the effect
    discipline is checked against it dynamically. *)
type rt = {
  prog : Program.t;
  mutable fuel : int;
  mutable store : Store.t;
  mutable queue : Event.t Fqueue.t;
  mode : Eff.t;
  mutable box : Boxcontent.item list ref option;
      (** current box accumulator (reversed, O(1) append) *)
  trace : tracer option;
  memo : Render_cache.t option;
}

let tick (rt : rt) =
  rt.fuel <- rt.fuel - 1;
  if rt.fuel <= 0 then raise Eval.Out_of_fuel

let record_read (rt : rt) (g : Ident.global) (v : Ast.value) : unit =
  match rt.trace with
  | None -> ()
  | Some { scopes = scope :: _ } ->
      if not (Hashtbl.mem scope g) then Hashtbl.add scope g v
  | Some { scopes = [] } -> ()

let record_reads (rt : rt) (reads : Render_cache.reads) : unit =
  List.iter (fun (g, v) -> record_read rt g v) reads

let scope_reads (scope : readscope) : Render_cache.reads =
  Hashtbl.fold (fun g v acc -> (g, v) :: acc) scope []

type code = rt -> env -> Ast.value

type apply = rt -> Ast.value -> Ast.value

type cpage = { p_init : apply; p_render : apply }

type t = {
  cprog : Program.t;
  funcs : (Ident.func, code) Hashtbl.t;
      (** every function body, compiled under the empty environment *)
  fapply : (Ident.func, apply) Hashtbl.t;
      (** direct application, for functions whose body is statically a
          lambda literal (all of them, in desugared programs) *)
  cpages : (Ident.page, cpage) Hashtbl.t;
  def_sites : (string, int list) Hashtbl.t;
      (** subtree memoization sites stamped while compiling each
          definition — lets {!get_incremental} carry a reused
          definition's sites over to the next compilation *)
  sites : (int, unit) Hashtbl.t;
      (** every site live in this compilation (stamped fresh or carried
          over) — the domain of {!site_live} *)
  mutable cur_def : string option;
      (** the definition being compiled right now (compile time only;
          always [None] once compilation finishes) *)
}

let program (t : t) = t.cprog

let site_live (t : t) (site : int) : bool = Hashtbl.mem t.sites site

(* Stamp a fresh memoization site and attribute it to the definition
   being compiled.  Dynamic (re)compilations pass no [cur_def] and are
   never reused, so only static sites are recorded. *)
let record_site (ct : t) : int =
  let site = fresh_site () in
  Hashtbl.replace ct.sites site ();
  (match ct.cur_def with
  | Some d ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt ct.def_sites d)
      in
      Hashtbl.replace ct.def_sites d (site :: prev)
  | None -> ());
  site

(* ------------------------------------------------------------------ *)
(* Value reification                                                   *)
(* ------------------------------------------------------------------ *)

(* Substitute captured environment values into a lambda literal that
   escapes as a value.  This mirrors [Subst.subst_expr ~closed_arg:true]
   (naive, shadowing-aware, no capture avoidance — runtime values of
   closed programs are closed) performed simultaneously for every
   captured binder. *)
let rec reify_value (sub : (Ident.var * Ast.value) list) (w : Ast.value) :
    Ast.value =
  match w with
  | Ast.VNum _ | Ast.VStr _ -> w
  | Ast.VList (t, _) when Typ.arrow_free t -> w
  | Ast.VTuple vs -> Ast.VTuple (List.map (reify_value sub) vs)
  | Ast.VList (t, vs) -> Ast.VList (t, List.map (reify_value sub) vs)
  | Ast.VLam (y, t, body) -> (
      match List.filter (fun (x, _) -> not (String.equal x y)) sub with
      | [] -> w
      | sub' -> Ast.VLam (y, t, reify_expr sub' body))

and reify_expr (sub : (Ident.var * Ast.value) list) (e : Ast.expr) : Ast.expr
    =
  match e with
  | Ast.Val w -> Ast.Val (reify_value sub w)
  | Ast.Var y -> (
      match List.assoc_opt y sub with Some v -> Ast.Val v | None -> e)
  | Ast.Tuple es -> Ast.Tuple (List.map (reify_expr sub) es)
  | Ast.App (e1, e2) -> Ast.App (reify_expr sub e1, reify_expr sub e2)
  | Ast.Fn _ | Ast.Get _ | Ast.Pop -> e
  | Ast.Proj (e1, n) -> Ast.Proj (reify_expr sub e1, n)
  | Ast.Set (g, e1) -> Ast.Set (g, reify_expr sub e1)
  | Ast.Push (p, e1) -> Ast.Push (p, reify_expr sub e1)
  | Ast.Boxed (id, e1) -> Ast.Boxed (id, reify_expr sub e1)
  | Ast.Post e1 -> Ast.Post (reify_expr sub e1)
  | Ast.SetAttr (a, e1) -> Ast.SetAttr (a, reify_expr sub e1)
  | Ast.Prim (n, ts, es) -> Ast.Prim (n, ts, List.map (reify_expr sub) es)

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let slot_of (senv : Ident.var list) (x : Ident.var) : int option =
  let rec go i = function
    | [] -> None
    | y :: tl -> if String.equal y x then Some i else go (i + 1) tl
  in
  go 0 senv

(** The environment slots a subexpression captures: for each free
    variable bound in [senv], its name and slot, in deterministic
    (sorted-name) order. *)
let captured (senv : Ident.var list) (fvs : SS.t) :
    (Ident.var * int) list =
  SS.elements fvs
  |> List.filter_map (fun x ->
         match slot_of senv x with Some i -> Some (x, i) | None -> None)

let slot_values (slots : (Ident.var * int) list) (env : env) :
    (Ident.var * Ast.value) list =
  List.map (fun (x, i) -> (x, List.nth env i)) slots

(** [compile_e ct ~static senv e] — compile [e] under the binders [senv]
    (innermost first).  [static] is true for code compiled once per
    program (function and page bodies): only static [boxed] sites get
    memoization site ids, because a dynamically compiled site would get
    a fresh id per compilation and never hit. *)
let rec compile_e (ct : t) ~(static : bool) (senv : Ident.var list)
    (e : Ast.expr) : code =
  match e with
  | Ast.Val v -> (
      match captured senv (Ast.free_vars e) with
      | [] -> fun rt _env -> tick rt; v
      | slots ->
          fun rt env ->
            tick rt;
            reify_value (slot_values slots env) v)
  | Ast.Var x -> (
      match slot_of senv x with
      | Some i -> fun rt env -> tick rt; List.nth env i
      | None -> fun rt _env -> tick rt; stuck "unbound variable %s" x)
  | Ast.Tuple es ->
      let cs = List.map (compile_e ct ~static senv) es in
      fun rt env ->
        tick rt;
        Ast.VTuple (List.map (fun c -> c rt env) cs)
  | Ast.App (Ast.Val (Ast.VLam (x, _, body)), e2) ->
      (* the shape every [let] and loop body desugars to: push the
         argument on the environment and run the precompiled body —
         the whole point of this module *)
      let carg = compile_e ct ~static senv e2 in
      let cbody = compile_e ct ~static (x :: senv) body in
      fun rt env ->
        tick rt;
        let arg = carg rt env in
        cbody rt (arg :: env)
  | Ast.App (Ast.Fn f, e2) ->
      (* like the substitution evaluator, resolve the callee before
         evaluating the argument (stuck order matters) *)
      let carg = compile_e ct ~static senv e2 in
      fun rt env -> (
        tick rt;
        match Hashtbl.find_opt ct.fapply f with
        | Some ap ->
            let arg = carg rt env in
            ap rt arg
        | None -> (
            match Hashtbl.find_opt ct.funcs f with
            | Some cf ->
                let fv = cf rt [] in
                let arg = carg rt env in
                apply_value ct rt fv arg
            | None -> stuck "undefined function %s" f))
  | Ast.App (e1, e2) ->
      let c1 = compile_e ct ~static senv e1 in
      let c2 = compile_e ct ~static senv e2 in
      fun rt env ->
        tick rt;
        let f = c1 rt env in
        let arg = c2 rt env in
        apply_value ct rt f arg
  | Ast.Fn f -> (
      fun rt _env ->
        tick rt;
        match Hashtbl.find_opt ct.funcs f with
        | Some cf -> cf rt []
        | None -> stuck "undefined function %s" f)
  | Ast.Proj (e1, n) -> (
      let c1 = compile_e ct ~static senv e1 in
      fun rt env ->
        tick rt;
        match c1 rt env with
        | Ast.VTuple vs -> (
            match List.nth_opt vs (n - 1) with
            | Some v -> v
            | None -> stuck "projection .%d out of range" n)
        | _ -> stuck "projection from a non-tuple")
  | Ast.Get g -> (
      fun rt _env ->
        tick rt;
        match Store.read rt.prog g rt.store with
        | Some v ->
            record_read rt g v;
            v
        | None -> stuck "undefined global %s" g)
  | Ast.Set (g, e1) ->
      let c1 = compile_e ct ~static senv e1 in
      fun rt env ->
        tick rt;
        if not (Eff.sub Eff.State rt.mode) then
          stuck "global write to %s outside state effect" g
        else begin
          let v = c1 rt env in
          rt.store <- Store.write g v rt.store;
          Ast.vunit
        end
  | Ast.Push (p, e1) ->
      let c1 = compile_e ct ~static senv e1 in
      fun rt env ->
        tick rt;
        if not (Eff.sub Eff.State rt.mode) then
          stuck "push outside state effect"
        else begin
          let v = c1 rt env in
          rt.queue <- Fqueue.enqueue (Event.Push (p, v)) rt.queue;
          Ast.vunit
        end
  | Ast.Pop ->
      fun rt _env ->
        tick rt;
        if not (Eff.sub Eff.State rt.mode) then
          stuck "pop outside state effect"
        else begin
          rt.queue <- Fqueue.enqueue Event.Pop rt.queue;
          Ast.vunit
        end
  | Ast.Boxed (id, inner) ->
      let ci = compile_e ct ~static senv inner in
      if static then
        let site = record_site ct in
        let slots = captured senv (Ast.free_vars inner) in
        fun rt env -> (
          tick rt;
          match rt.box with
          | Some parent when Eff.sub Eff.Render rt.mode -> (
              match rt.memo with
              | None -> eval_boxed_plain rt parent ci id env
              | Some memo ->
                  let args = List.map (fun (_, i) -> List.nth env i) slots in
                  eval_boxed_memo rt parent memo ~site ~args ci id env)
          | _ -> stuck "boxed outside render effect")
      else
        fun rt env -> (
          tick rt;
          match rt.box with
          | Some parent when Eff.sub Eff.Render rt.mode ->
              (* dynamically compiled sites skip subtree memoization
                 (their site id would be fresh every compilation);
                 reads land in the enclosing scope, keeping parents'
                 read sets transitive *)
              eval_boxed_plain rt parent ci id env
          | _ -> stuck "boxed outside render effect")
  | Ast.Post e1 -> (
      let c1 = compile_e ct ~static senv e1 in
      fun rt env ->
        tick rt;
        match rt.box with
        | Some acc when Eff.sub Eff.Render rt.mode ->
            let v = c1 rt env in
            acc := Boxcontent.Leaf v :: !acc;
            Ast.vunit
        | _ -> stuck "post outside render effect")
  | Ast.SetAttr (a, e1) -> (
      let c1 = compile_e ct ~static senv e1 in
      fun rt env ->
        tick rt;
        match rt.box with
        | Some acc when Eff.sub Eff.Render rt.mode ->
            let v = c1 rt env in
            acc := Boxcontent.Attr (a, v) :: !acc;
            Ast.vunit
        | _ -> stuck "attribute write outside render effect")
  | Ast.Prim
      ( "cond",
        ([ _ ] as ts),
        [ b; Ast.Val (Ast.VLam (x1, _, t1)); Ast.Val (Ast.VLam (x2, _, t2)) ]
      ) ->
      (* the thunk encoding of conditionals, with both thunks statically
         lambda literals (the only shape the surface compiler emits):
         run the chosen branch body directly instead of reifying two
         thunks per evaluation — this is the inner-loop hot path *)
      let cb = compile_e ct ~static senv b in
      let c1 = compile_e ct ~static (x1 :: senv) t1 in
      let c2 = compile_e ct ~static (x2 :: senv) t2 in
      fun rt env -> (
        tick rt;
        match cb rt env with
        | Ast.VNum c ->
            if c <> 0.0 then c1 rt (Ast.vunit :: env)
            else c2 rt (Ast.vunit :: env)
        | v -> (
            (* same message the delta rule produces on a non-numeric
               condition (it never inspects the thunks first) *)
            match Prim.delta "cond" ts [ v; Ast.vunit; Ast.vunit ] with
            | Error m -> raise (Eval.Stuck m)
            | Ok _ -> assert false))
  | Ast.Prim (name, ts, es) -> (
      let cs = List.map (compile_e ct ~static senv) es in
      fun rt env ->
        tick rt;
        let vs = List.map (fun c -> c rt env) cs in
        match Prim.delta name ts vs with
        | Ok (Ast.Val v) -> v
        | Ok e' ->
            (* residual expression (only [cond] produces one): built
               from values, hence closed — compile and run *)
            (compile_e ct ~static:false [] e') rt []
        | Error m -> raise (Eval.Stuck m))

and eval_boxed_plain (rt : rt) (parent : Boxcontent.item list ref)
    (ci : code) (id : Srcid.t option) (env : env) : Ast.value =
  let acc : Boxcontent.item list ref = ref [] in
  rt.box <- Some acc;
  let v = ci rt env in
  rt.box <- Some parent;
  parent := Boxcontent.Box (id, List.rev !acc) :: !parent;
  v

(** A static [boxed] site under memoization — the compiled counterpart
    of [Eval.eval_boxed_memo].  The subtree's output is a pure function
    of (the compiled site, the captured environment values, the code,
    the globals it read); code identity is enforced by
    [Render_cache.ensure_code], the rest is the cache key and the
    recorded read set. *)
and eval_boxed_memo (rt : rt) (parent : Boxcontent.item list ref)
    (memo : Render_cache.t) ~(site : int) ~(args : Ast.value list)
    (ci : code) (id : Srcid.t option) (env : env) : Ast.value =
  match
    Render_cache.find_csubtree memo ~site ~args ~prog:rt.prog ~store:rt.store
  with
  | Some entry ->
      parent := entry.Render_cache.citem :: !parent;
      record_reads rt entry.Render_cache.creads;
      entry.Render_cache.cvalue
  | None ->
      let scope : readscope = Hashtbl.create 8 in
      (match rt.trace with
      | Some tr -> tr.scopes <- scope :: tr.scopes
      | None -> ());
      let acc : Boxcontent.item list ref = ref [] in
      rt.box <- Some acc;
      let v = ci rt env in
      rt.box <- Some parent;
      (match rt.trace with
      | Some tr -> tr.scopes <- List.tl tr.scopes
      | None -> ());
      let item = Boxcontent.Box (id, List.rev !acc) in
      parent := item :: !parent;
      let reads = scope_reads scope in
      Render_cache.add_csubtree memo ~site ~args ~value:v ~item ~reads;
      record_reads rt reads;
      v

(** Apply a computed callee value: compile the lambda body on the fly
    under its single binder — O(|body|), the same order as the one
    substitution the EP-APP rule would perform. *)
and apply_value (ct : t) (rt : rt) (f : Ast.value) (arg : Ast.value) :
    Ast.value =
  match f with
  | Ast.VLam (x, _, body) ->
      let cb = compile_e ct ~static:false [ x ] body in
      cb rt [ arg ]
  | _ -> stuck "application of a non-function value"

(** Compile an expression of arrow shape (page init/render code, always
    a lambda literal after desugaring) to a direct application. *)
let compile_apply (ct : t) ~(static : bool) (e : Ast.expr) : apply =
  match e with
  | Ast.Val (Ast.VLam (x, _, body)) ->
      let cb = compile_e ct ~static [ x ] body in
      fun rt arg -> cb rt [ arg ]
  | _ ->
      let ce = compile_e ct ~static [] e in
      fun rt arg ->
        let f = ce rt [] in
        apply_value ct rt f arg

(* ------------------------------------------------------------------ *)
(* Program compilation and the compile cache                           *)
(* ------------------------------------------------------------------ *)

let empty_ct (prog : Program.t) : t =
  {
    cprog = prog;
    funcs = Hashtbl.create 16;
    fapply = Hashtbl.create 16;
    cpages = Hashtbl.create 8;
    def_sites = Hashtbl.create 16;
    sites = Hashtbl.create 32;
    cur_def = None;
  }

let compile_func (ct : t) (f : Ident.func) (body : Ast.expr) : unit =
  ct.cur_def <- Some f;
  Hashtbl.replace ct.funcs f (compile_e ct ~static:true [] body);
  (match body with
  | Ast.Val (Ast.VLam _) ->
      Hashtbl.replace ct.fapply f (compile_apply ct ~static:true body)
  | _ -> ());
  ct.cur_def <- None

let compile_page (ct : t) (p : Ident.page) (init : Ast.expr)
    (render : Ast.expr) : unit =
  ct.cur_def <- Some p;
  Hashtbl.replace ct.cpages p
    {
      p_init = compile_apply ct ~static:true init;
      p_render = compile_apply ct ~static:true render;
    };
  ct.cur_def <- None

let compile (prog : Program.t) : t =
  let ct = empty_ct prog in
  (* Eagerly compile every function and page body.  Recursion (and
     mutual recursion) works because compiled [Fn] references resolve
     through the tables at run time, after all of them are filled.
     Eager — not lazy — because [Lazy.t] is not safe to force from
     multiple domains, and compiled programs are shared fleet-wide. *)
  List.iter
    (fun (f, _, body) -> compile_func ct f body)
    (Program.functions prog);
  List.iter
    (fun (p, _, init, render) -> compile_page ct p init render)
    (Program.pages prog);
  ct

(** Compile [prog] reusing [old_ct]'s compiled definitions for every
    name the diff proves transitively clean; only dirty definitions are
    recompiled.

    Soundness of reuse: a reused closure resolves [Fn f] through the
    tables of the compilation it was {e born} in ([old_ct] — closures
    capture their [ct]), so everything it can reach at run time is a
    definition it (transitively) references.  The diff's dirty set is
    closed under reverse dependencies, so a transitively-clean
    definition references only transitively-clean definitions — whose
    old compiled code is byte-for-byte the code a fresh compilation
    would produce (compilation is deterministic up to site ids).
    Global reads never go through the tables at all: [Get] reads
    [rt.prog], and every entry point builds [rt] from the {e new}
    compilation's [cprog], so reused code observes new initial values
    correctly.  Reused definitions keep their memoization site ids
    (globally unique, so no collision with fresh ones) — their cached
    subtrees stay valid; recompiled definitions get fresh ids, so
    their stale cache entries become unreachable (and
    {!Render_cache.retarget} evicts them by site liveness). *)
let compile_incremental ~(diff : Program_diff.t) (old_ct : t)
    (prog : Program.t) : t =
  let ct = empty_ct prog in
  let carry_sites name =
    match Hashtbl.find_opt old_ct.def_sites name with
    | Some sites ->
        Hashtbl.replace ct.def_sites name sites;
        List.iter (fun s -> Hashtbl.replace ct.sites s ()) sites
    | None -> ()
  in
  List.iter
    (fun (f, _, body) ->
      match Hashtbl.find_opt old_ct.funcs f with
      | Some c when not (Program_diff.is_dirty diff f) ->
          Hashtbl.replace ct.funcs f c;
          (match Hashtbl.find_opt old_ct.fapply f with
          | Some ap -> Hashtbl.replace ct.fapply f ap
          | None -> ());
          carry_sites f
      | _ -> compile_func ct f body)
    (Program.functions prog);
  List.iter
    (fun (p, _, init, render) ->
      match Hashtbl.find_opt old_ct.cpages p with
      | Some cp when not (Program_diff.is_dirty diff p) ->
          Hashtbl.replace ct.cpages p cp;
          carry_sites p
      | _ -> compile_page ct p init render)
    (Program.pages prog);
  ct

(* The compile cache: a small association list keyed by physical
   program identity, published by CAS so concurrent domains (the
   parallel host's workers booting sessions) never tear it.  Losing a
   race just means one redundant compilation — compiled code is
   deterministic, and site ids are globally unique either way. *)
let cache_limit = 8

let cache : (Program.t * t) list Atomic.t = Atomic.make []

let cache_size () = List.length (Atomic.get cache)

let find_cached (prog : Program.t) (entries : (Program.t * t) list) :
    t option =
  let rec go = function
    | [] -> None
    | (p, c) :: tl -> if p == prog then Some c else go tl
  in
  go entries

let publish (prog : Program.t) (c : t) : t =
  let rec loop () =
    let old = Atomic.get cache in
    match find_cached prog old with
    | Some c' -> c' (* another domain won the race; use its result *)
    | None ->
        let trimmed =
          if List.length old >= cache_limit then
            List.filteri (fun i _ -> i < cache_limit - 1) old
          else old
        in
        if Atomic.compare_and_set cache old ((prog, c) :: trimmed) then c
        else loop ()
  in
  loop ()

(* Epoch pins: during a staged rollout the registry keeps two code
   epochs live at once, and both compilations must stay resident for
   the whole rollout window — the LRU cache above would happily evict
   the base epoch under unrelated compile traffic, and a re-compile
   issues fresh site ids, orphaning every csubtree entry the canary
   cohort's render caches hold.  A pin is an eviction-proof entry
   keyed by epoch id; [get]/[get_incremental] consult pins first, so
   all sessions of an epoch share one physical compilation. *)

let epoch_pins : (int * (Program.t * t)) list Atomic.t = Atomic.make []

let find_pinned (prog : Program.t) : t option =
  let rec go = function
    | [] -> None
    | (_, (p, c)) :: tl -> if p == prog then Some c else go tl
  in
  go (Atomic.get epoch_pins)

let get (prog : Program.t) : t =
  match find_pinned prog with
  | Some c -> c
  | None -> (
      match find_cached prog (Atomic.get cache) with
      | Some c -> c
      | None -> publish prog (compile prog))

let get_incremental ~(diff : Program_diff.t) (prog : Program.t) : t =
  match find_pinned prog with
  | Some c -> c
  | None -> (
      match find_cached prog (Atomic.get cache) with
      | Some c -> c
      | None ->
          let lookup p =
            match find_pinned p with
            | Some c -> Some c
            | None -> find_cached p (Atomic.get cache)
          in
          let c =
            match lookup (Program_diff.old_program diff) with
            | Some old_ct when Program_diff.new_program diff == prog ->
                compile_incremental ~diff old_ct prog
            | _ -> compile prog (* old compilation evicted: start over *)
          in
          publish prog c)

let rec pin_epoch ~(epoch : int) ?(diff : Program_diff.t option)
    (prog : Program.t) : unit =
  let c =
    match diff with
    | Some d -> get_incremental ~diff:d prog
    | None -> get prog
  in
  let old = Atomic.get epoch_pins in
  let cleaned = List.remove_assoc epoch old in
  if not (Atomic.compare_and_set epoch_pins old ((epoch, (prog, c)) :: cleaned))
  then pin_epoch ~epoch ?diff prog

let rec unpin_epoch ~(epoch : int) : unit =
  let old = Atomic.get epoch_pins in
  if List.mem_assoc epoch old then
    let cleaned = List.remove_assoc epoch old in
    if not (Atomic.compare_and_set epoch_pins old cleaned) then
      unpin_epoch ~epoch

let pinned_epochs () : int list =
  List.sort_uniq compare (List.map fst (Atomic.get epoch_pins))

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let make_rt ?(fuel = Eval.default_fuel) (ct : t) (mode : Eff.t)
    (store : Store.t) (queue : Event.t Fqueue.t) (trace : tracer option)
    (memo : Render_cache.t option) : rt =
  { prog = ct.cprog; fuel; store; queue; mode; box = None; trace; memo }

let run_thunk ?fuel (ct : t) (store : Store.t) (queue : Event.t Fqueue.t)
    (v : Ast.value) : Ast.value * Store.t * Event.t Fqueue.t =
  let rt = make_rt ?fuel ct Eff.State store queue None None in
  let r = apply_value ct rt v Ast.vunit in
  (r, rt.store, rt.queue)

let find_page (ct : t) (page : Ident.page) : cpage =
  match Hashtbl.find_opt ct.cpages page with
  | Some cp -> cp
  | None -> stuck "undefined page %s" page

let run_page_init ?fuel (ct : t) ~(page : Ident.page) (store : Store.t)
    (queue : Event.t Fqueue.t) (arg : Ast.value) :
    Ast.value * Store.t * Event.t Fqueue.t =
  let cp = find_page ct page in
  let rt = make_rt ?fuel ct Eff.State store queue None None in
  let v = cp.p_init rt arg in
  (v, rt.store, rt.queue)

let run_page_render ?fuel (ct : t) ~(page : Ident.page) (store : Store.t)
    (arg : Ast.value) : Ast.value * Boxcontent.t =
  let cp = find_page ct page in
  let rt = make_rt ?fuel ct Eff.Render store Fqueue.empty None None in
  let acc : Boxcontent.item list ref = ref [] in
  rt.box <- Some acc;
  let v = cp.p_render rt arg in
  (v, List.rev !acc)

let run_page_render_traced ?fuel ?memo (ct : t) ~(page : Ident.page)
    (store : Store.t) (arg : Ast.value) :
    Ast.value * Boxcontent.t * Render_cache.reads =
  let cp = find_page ct page in
  let root : readscope = Hashtbl.create 16 in
  let rt =
    make_rt ?fuel ct Eff.Render store Fqueue.empty
      (Some { scopes = [ root ] })
      memo
  in
  let acc : Boxcontent.item list ref = ref [] in
  rt.box <- Some acc;
  let v = cp.p_render rt arg in
  (v, List.rev !acc, scope_reads root)

(* Arbitrary expressions, compiled on the fly (tests, tools, the THUNK
   residuals).  [~static:false]: a fresh compilation would get fresh
   subtree site ids, so memoization is pointless here. *)

let eval_pure ?fuel (ct : t) (store : Store.t) (e : Ast.expr) : Ast.value =
  let rt = make_rt ?fuel ct Eff.Pure store Fqueue.empty None None in
  (compile_e ct ~static:false [] e) rt []

let eval_state ?fuel (ct : t) (store : Store.t) (queue : Event.t Fqueue.t)
    (e : Ast.expr) : Ast.value * Store.t * Event.t Fqueue.t =
  let rt = make_rt ?fuel ct Eff.State store queue None None in
  let v = (compile_e ct ~static:false [] e) rt [] in
  (v, rt.store, rt.queue)

let eval_render ?fuel (ct : t) (store : Store.t) (e : Ast.expr) :
    Ast.value * Boxcontent.t =
  let rt = make_rt ?fuel ct Eff.Render store Fqueue.empty None None in
  let acc : Boxcontent.item list ref = ref [] in
  rt.box <- Some acc;
  let v = (compile_e ct ~static:false [] e) rt [] in
  (v, List.rev !acc)

let eval_render_traced ?fuel ?memo (ct : t) (store : Store.t) (e : Ast.expr)
    : Ast.value * Boxcontent.t * Render_cache.reads =
  let root : readscope = Hashtbl.create 16 in
  let rt =
    make_rt ?fuel ct Eff.Render store Fqueue.empty
      (Some { scopes = [ root ] })
      memo
  in
  let acc : Boxcontent.item list ref = ref [] in
  rt.box <- Some acc;
  let v = (compile_e ct ~static:false [] e) rt [] in
  (v, List.rev !acc, scope_reads root)
