(** State fix-up after a code update (Fig. 12): "it just deletes
    whatever does not type".  Arbitrary code changes are supported;
    the fixed-up store and page stack always type under the new code
    (tested in [test/test_fixup.ml]). *)

val fixup_store : ?diff:Program_diff.t -> Program.t -> Store.t -> Store.t
(** [C' : S . S'] — keep [g -> v] iff [C'] declares [g] and [v] checks
    against its declared type (S-OKAY / S-SKIP).  With [diff] the walk
    is targeted: a binding whose global kept its declared (arrow-free)
    type survives without re-checking — same deletions, O(edit) checks.
    Sound because arrow-free-typed values never consult the program
    when checked, so survival depends only on (value, declared type),
    and the machine's preservation invariant says the value checked
    under the old code. *)

val fixup_stack :
  ?diff:Program_diff.t ->
  Program.t ->
  (Ident.page * Ast.value) list ->
  (Ident.page * Ast.value) list
(** [C' : P . P'] (P-OKAY / P-SKIP), targeted like {!fixup_store} when
    [diff] is given (page argument types are arrow-free too). *)

type report = {
  dropped_globals : Ident.global list;
  dropped_pages : Ident.page list;
}
(** What a fix-up deleted — surfaced to the programmer by the live
    environment ("your edit reset global xs"). *)

val fixup_with_report :
  ?diff:Program_diff.t ->
  Program.t ->
  Store.t ->
  (Ident.page * Ast.value) list ->
  Store.t * (Ident.page * Ast.value) list * report
(** The two fix-ups plus the deletion report, targeted when [diff] is
    given — the report is byte-identical either way. *)

val pp_report : Format.formatter -> report -> unit
(** ["dropped globals a, b; dropped pages p"], or ["nothing dropped"] —
    the one-line summary the host's broadcast fan-out prints per
    session. *)

val report_to_string : report -> string
