(** Expression evaluation (Fig. 8): the pure, standard and render
    relations, in two implementations.

    The {b small-step} machine ({!step} and friends) is a literal
    transcription of the paper's evaluation contexts and rules — the
    executable specification, used by the metatheory tests.  The
    {b big-step} evaluator ({!eval_pure}, {!eval_state},
    {!eval_render}) is the efficient implementation used by
    {!Machine}; property tests pin the two together on random
    well-typed programs.

    Both enforce the effect discipline dynamically: a [Set] in render
    mode is {e stuck}, never silently executed. *)

exception Stuck of string
exception Out_of_fuel

val default_fuel : int

(** {1 Small-step} *)

type cfg = { store : Store.t; queue : Event.t Fqueue.t; box : Boxcontent.t }
(** Shared configuration: pure steps ignore [queue] and [box];
    stateful steps ignore [box]; render steps may not change
    [store]/[queue]. *)

val cfg_of_store : Store.t -> cfg

type outcome =
  | Value  (** the expression is a value *)
  | Next of cfg * Ast.expr  (** one step *)
  | Wrong of string  (** stuck *)

val step : ?fuel:int -> Eff.t -> Program.t -> cfg -> Ast.expr -> outcome
(** One step of [->mu].  ER-BOXED's big-step premise
    [(C,S,eps,e) ->r* (C,S,B',v)] is discharged by iterating inner
    steps, as in the paper. *)

val step_pure : ?fuel:int -> Program.t -> Store.t -> Ast.expr -> outcome
val step_state :
  ?fuel:int -> Program.t -> Store.t -> Event.t Fqueue.t -> Ast.expr -> outcome
val step_render :
  ?fuel:int -> Program.t -> Store.t -> Boxcontent.t -> Ast.expr -> outcome

val run_small :
  ?fuel:int -> Eff.t -> Program.t -> cfg -> Ast.expr -> cfg * Ast.value
(** The reflexive-transitive closure [->mu*] down to a value.
    @raise Stuck and @raise Out_of_fuel accordingly. *)

(** {1 Big-step} *)

val eval_pure : ?fuel:int -> Program.t -> Store.t -> Ast.expr -> Ast.value
(** [(C, S, e) ->p* (C, S, v)]. *)

val eval_state :
  ?fuel:int ->
  Program.t ->
  Store.t ->
  Event.t Fqueue.t ->
  Ast.expr ->
  Ast.value * Store.t * Event.t Fqueue.t
(** Standard mode: value, final store, enqueued events. *)

val eval_render :
  ?fuel:int -> Program.t -> Store.t -> Ast.expr -> Ast.value * Boxcontent.t
(** Render mode against the implicit top-level box (Sec. 4.3); the
    store is read-only by construction. *)

val eval_render_traced :
  ?fuel:int ->
  ?memo:Render_cache.t ->
  Program.t ->
  Store.t ->
  Ast.expr ->
  Ast.value * Boxcontent.t * Render_cache.reads
(** {!eval_render} plus the render's read set (each global read, with
    the observed value).  With [memo], every [boxed] subexpression is
    memoized: a valid cache entry is spliced in without evaluation.
    The untraced {!eval_render} path is unaffected. *)
