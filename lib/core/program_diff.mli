(** Structural diff between two programs — the blast-radius analysis
    behind O(edit) live updates.

    The UPDATE transition (Fig. 9) supports arbitrary code changes, but
    the edits a live programming session actually broadcasts touch one
    or two definitions.  This module compares the old and new code
    definition by definition and computes the two sets every
    incremental path needs:

    - the {b recheck set}: definitions whose typing derivation must be
      re-derived.  Definitions have {e declared} signatures (a global's
      type, a function's arrow type, a page's argument type), so a
      derivation depends only on its own source plus the existence and
      declared types of the names it references — signature changes
      reach their {e direct} referrers and stop there;
    - the {b (semantic) dirty set}: the transitive reverse-dependency
      closure of every changed, added or removed definition.  Anything
      outside it evaluates identically under old and new code, which is
      what makes compiled-code reuse ({!Compile_eval.get_incremental})
      and scoped render-cache retention ({!Render_cache.retarget})
      sound.

    Unchanged definitions are detected by physical identity first (the
    editor's {!Program.with_def} shares untouched definitions), then
    structurally; a re-parsed program that re-stamps source ids simply
    classifies more definitions as changed — conservative, never
    unsound. *)

type status =
  | Unchanged
  | Body_changed  (** same declared signature, different body *)
  | Sig_changed  (** declared type or definition kind changed *)
  | Added
  | Removed

val status_to_string : status -> string

type t

val diff : old_prog:Program.t -> Program.t -> t
(** Classify every definition of [old_prog ∪ new_prog] and close the
    dirty set over the new program's reverse dependency graph.  O(size
    of the two programs) with small constants — one structural
    comparison per definition (O(1) for physically shared ones) and one
    linear reverse-reachability pass. *)

val old_program : t -> Program.t
val new_program : t -> Program.t

val status : t -> string -> status
(** [Unchanged] for names defined (identically) in both programs or in
    neither. *)

val changed : t -> (string * status) list
(** Every non-[Unchanged] name with its status, sorted. *)

val identical : t -> bool
(** No definition changed at all (the no-op edit). *)

val is_dirty : t -> string -> bool
(** Membership in the semantic dirty set: the name changed, or some
    definition it transitively reaches did.  Removed names are dirty. *)

val dirty_count : t -> int

val dirty_names : t -> string list
(** The semantic dirty set as a sorted list — the human-readable
    summary of what an edit transaction touches
    ({!Live_host.Rollout.summary}). *)

val needs_recheck : t -> string -> bool
(** The definition's typing derivation must be re-derived: it changed,
    or a name it references directly was signature-changed, added or
    removed. *)

val recheck_count : t -> int

val global_preserved : t -> string -> bool
(** The new code declares this global at the same declared type, so a
    well-typed store binding for it survives fix-up without being
    re-checked (S-OKAY's premise is untouched — store values are
    arrow-free, hence their typing never consults the program). *)

val page_preserved : t -> string -> bool
(** Same, for a page-stack entry (P-OKAY). *)

val expr_clean : t -> Ast.expr -> bool
(** Every definition the (closed) expression references is present and
    transitively clean — evaluating it under the new code follows the
    same path as under the old.  Used to retain render-cache subtree
    entries across an UPDATE. *)

val value_clean : t -> Ast.value -> bool

val pp : Format.formatter -> t -> unit
