(** Typing of system states (Fig. 11): the judgments [C |- C],
    [C |- D], [C |- S], [C |- P], [C |- Q], and the top-level
    [|- (C, D, S, P, Q)] (T-SYS).

    [C |- C] is the well-formedness premise of the UPDATE transition:
    no duplicate names, globals and page arguments are arrow-free,
    every body types at its declared type under the declared effect.
    T-SYS additionally demands a [start] page. *)

let ( let* ) = Result.bind

let err fmt = Fmt.kstr (fun s -> Error s) fmt

(** One definition's typing derivation (T-C-GLOBAL, T-C-FUN or
    T-C-PAGE) — shared verbatim by the from-scratch and the incremental
    checker, so the two report byte-identical errors. *)
let check_def (prog : Program.t) (d : Program.def) : (unit, string) result =
  match d with
  | Program.Global { name; ty; init } ->
      (* T-C-GLOBAL *)
      if not (Typ.arrow_free ty) then
        err "global %s has a function type %s (must be ->-free)" name
          (Typ.to_string ty)
      else if not (Typecheck.check_value prog init ty) then
        err "initial value of global %s does not have type %s" name
          (Typ.to_string ty)
      else Ok ()
  | Program.Func { name; ty; body } -> (
      (* T-C-FUN *)
      match ty with
      | Typ.Fn _ -> (
          match Typecheck.check prog Typecheck.empty_gamma Eff.Pure body ty with
          | Ok () -> Ok ()
          | Error m -> err "in function %s: %s" name m)
      | _ ->
          err "function %s declared with non-function type %s" name
            (Typ.to_string ty))
  | Program.Page { name; arg_ty; init; render } ->
      (* T-C-PAGE *)
      if not (Typ.arrow_free arg_ty) then
        err "page %s has a function-typed argument %s" name
          (Typ.to_string arg_ty)
      else
        let* () =
          match
            Typecheck.check prog Typecheck.empty_gamma Eff.State init
              (Typ.Fn (arg_ty, Eff.State, Typ.unit_))
          with
          | Ok () -> Ok ()
          | Error m -> err "in init body of page %s: %s" name m
        in
        let* () =
          match
            Typecheck.check prog Typecheck.empty_gamma Eff.State render
              (Typ.Fn (arg_ty, Eff.Render, Typ.unit_))
          with
          | Ok () -> Ok ()
          | Error m -> err "in render body of page %s: %s" name m
        in
        Ok ()

(** [C |- C] with per-definition derivations gated by [recheck]: the
    duplicate-name scan always covers every definition (it is a global
    property, and a cheap one), the expensive body derivations run only
    where [recheck] says.  With [recheck = fun _ -> true] this {e is}
    the from-scratch judgment; with anything narrower the caller
    guarantees skipped definitions hold valid derivations (see
    {!Machine.check_program_incremental} for the argument). *)
let check_code_filtered ~(recheck : string -> bool) (prog : Program.t) :
    (unit, string) result =
  let seen = Hashtbl.create 16 in
  let rec go = function
    | [] -> Ok ()
    | d :: rest ->
        let name = Program.def_name d in
        if Hashtbl.mem seen name then err "duplicate definition of %s" name
        else begin
          Hashtbl.add seen name ();
          let* () = if recheck name then check_def prog d else Ok () in
          go rest
        end
  in
  go (Program.defs prog)

(** [C |- C] (T-C-GLOBAL, T-C-FUN, T-C-PAGE). *)
let check_code (prog : Program.t) : (unit, string) result =
  check_code_filtered ~recheck:(fun _ -> true) prog

(** T-SYS's extra premise: [page start() ... ∈ C], with a unit
    argument so that STARTUP's [push start ()] is well-typed. *)
let check_start (prog : Program.t) : (unit, string) result =
  match Program.find_page prog Ident.start_page with
  | None -> err "program has no 'start' page"
  | Some (arg_ty, _, _) ->
      if Typ.equal arg_ty Typ.unit_ then Ok ()
      else
        err "'start' page must take the unit argument, has %s"
          (Typ.to_string arg_ty)

(** [C |- D] (T-D-INV, T-B-VAL, T-B-ATTR, T-B-NEST). *)
let check_display (prog : Program.t) (d : State.display) :
    (unit, string) result =
  let rec check_box (b : Boxcontent.t) =
    match b with
    | [] -> Ok ()
    | item :: rest ->
        let* () =
          match item with
          | Boxcontent.Leaf v -> (
              match
                Typecheck.infer_value prog Typecheck.empty_gamma v
              with
              | Ok _ -> Ok ()
              | Error m -> err "ill-typed leaf value in display: %s" m)
          | Boxcontent.Attr (a, v) -> (
              match Attrs.lookup a with
              | None -> err "display sets unknown attribute %s" a
              | Some ty ->
                  if Typecheck.check_value prog v ty then Ok ()
                  else
                    err "display attribute %s does not have type %s" a
                      (Typ.to_string ty))
          | Boxcontent.Box (_, inner) -> check_box inner
        in
        check_box rest
  in
  match d with State.Invalid -> Ok () | State.Shown b -> check_box b

(** [C |- S] (T-S-ENTRY): every assigned global is declared and its
    value has the declared type. *)
let check_store (prog : Program.t) (s : Store.t) : (unit, string) result =
  let rec go = function
    | [] -> Ok ()
    | (g, v) :: rest -> (
        match Program.find_global prog g with
        | None -> err "store binds undeclared global %s" g
        | Some (ty, _) ->
            if Typecheck.check_value prog v ty then go rest
            else err "store value for %s does not have type %s" g
                (Typ.to_string ty))
  in
  go (Store.bindings s)

(** [C |- P] (T-R-ENTRY). *)
let check_stack (prog : Program.t) (p : (Ident.page * Ast.value) list) :
    (unit, string) result =
  let rec go = function
    | [] -> Ok ()
    | (page, v) :: rest -> (
        match Program.find_page prog page with
        | None -> err "page stack refers to undefined page %s" page
        | Some (arg_ty, _, _) ->
            if Typecheck.check_value prog v arg_ty then go rest
            else
              err "page stack argument for %s does not have type %s" page
                (Typ.to_string arg_ty))
  in
  go p

(** [C |- Q] (T-Q-EXEC, T-Q-PUSH, T-Q-POP). *)
let check_queue (prog : Program.t) (q : Event.t Fqueue.t) :
    (unit, string) result =
  let rec go = function
    | [] -> Ok ()
    | Event.Pop :: rest -> go rest
    | Event.Exec v :: rest ->
        if Typecheck.check_value prog v Typ.handler then go rest
        else err "queued thunk does not have type () -s-> ()"
    | Event.Push (page, v) :: rest -> (
        match Program.find_page prog page with
        | None -> err "queued push refers to undefined page %s" page
        | Some (arg_ty, _, _) ->
            if Typecheck.check_value prog v arg_ty then go rest
            else err "queued push argument for %s is ill-typed" page)
  in
  go (Fqueue.to_list q)

(** [|- (C, D, S, P, Q)] (T-SYS). *)
let check_state (st : State.t) : (unit, string) result =
  let* () = check_code st.code in
  let* () = check_start st.code in
  let* () = check_display st.code st.display in
  let* () = check_store st.code st.store in
  let* () = check_stack st.code st.stack in
  let* () = check_queue st.code st.queue in
  Ok ()
