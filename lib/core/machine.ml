(** The system step relation [->g] (Fig. 9).

    Three rules enqueue events (STARTUP, TAP, BACK); three handle them
    (THUNK, PUSH, POP); one refreshes the display (RENDER); one changes
    the program (UPDATE).  Every transition except RENDER invalidates
    the display, so the display is never stale: it is either [⊥] or
    consistent with the current code and store.

    The event-handling and render rules have big-step premises
    ([->s*], [->r*]); we discharge them with the efficient big-step
    evaluator {!Eval.eval_state} / {!Eval.eval_render}.  A fuel bound
    turns the divergence the paper acknowledges into an
    {!Eval.Out_of_fuel} exception. *)

type error =
  | Not_enabled of string  (** the transition's premise does not hold *)
  | Ill_typed of string  (** UPDATE: the new code fails [C' |- C'] *)
  | Execution_failed of string  (** user code got stuck (untypable states) *)
  | Diverged  (** fuel exhausted discharging a big-step premise *)

let pp_error ppf = function
  | Not_enabled m -> Fmt.pf ppf "transition not enabled: %s" m
  | Ill_typed m -> Fmt.pf ppf "ill-typed code: %s" m
  | Execution_failed m -> Fmt.pf ppf "execution stuck: %s" m
  | Diverged -> Fmt.string ppf "evaluation exceeded its fuel bound"

let error_to_string e = Fmt.str "%a" pp_error e

type 'a outcome = ('a, error) result

(** Which expression-evaluation engine discharges the big-step
    premises: the paper-faithful substitution evaluator ({!Eval}), or
    the closure-compiled one ({!Compile_eval}) — compiled once per
    program, byte-identical observable behaviour (enforced by the
    conformance oracle's ["compiled"] configuration).  The
    specification machine defaults to [Subst]; sessions default to
    [Compiled]. *)
type evaluator = Subst | Compiled

let guard cond msg : (unit, error) result =
  if cond then Ok () else Error (Not_enabled msg)

let ( let* ) = Result.bind

let run_state ?fuel (st : State.t) (e : Ast.expr) :
    (Store.t * Event.t Fqueue.t) outcome =
  match Eval.eval_state ?fuel st.code st.store st.queue e with
  | _, store, queue -> Ok (store, queue)
  | exception Eval.Stuck m -> Error (Execution_failed m)
  | exception Eval.Out_of_fuel -> Error Diverged

(** The same big-step premise discharged by the compiled engine.
    [run] receives the compiled program and returns the same
    (value, store, queue) triple as {!Eval.eval_state}. *)
let run_state_compiled ?fuel (st : State.t)
    (run : Compile_eval.t -> Ast.value * Store.t * Event.t Fqueue.t) :
    (Store.t * Event.t Fqueue.t) outcome =
  ignore fuel;
  match run (Compile_eval.get st.code) with
  | _, store, queue -> Ok (store, queue)
  | exception Eval.Stuck m -> Error (Execution_failed m)
  | exception Eval.Out_of_fuel -> Error Diverged

(* ------------------------------------------------------------------ *)
(* Rules that enqueue events                                           *)
(* ------------------------------------------------------------------ *)

(** (STARTUP): from [(C, D, S, eps, eps)], enqueue [push start ()]. *)
let startup (st : State.t) : State.t outcome =
  let* () = guard (st.stack = []) "STARTUP requires an empty page stack" in
  let* () =
    guard (Fqueue.is_empty st.queue) "STARTUP requires an empty event queue"
  in
  Ok
    (State.invalidate
       (State.enqueue (Event.Push (Ident.start_page, Ast.vunit)) st))

(** (TAP): requires a valid display containing [[ontap = v]]; enqueues
    [exec v].  The caller supplies the handler value [v] it found in
    the display (the UI layer resolves a screen position to a handler
    by hit-testing); [tap_first] taps the first handler in the tree,
    which is what the core test-suite uses. *)
let tap (st : State.t) ~(handler : Ast.value) : State.t outcome =
  let* b =
    match st.display with
    | State.Invalid -> Error (Not_enabled "TAP requires a valid display")
    | State.Shown b -> Ok b
  in
  let* () =
    guard
      (Boxcontent.mem_handler b handler)
      "TAP requires [ontap = v] ∈ B"
  in
  Ok (State.invalidate (State.enqueue (Event.Exec handler) st))

let tap_first (st : State.t) : State.t outcome =
  match st.display with
  | State.Invalid -> Error (Not_enabled "TAP requires a valid display")
  | State.Shown b -> (
      match Boxcontent.first_handler b with
      | Some handler -> tap st ~handler
      | None -> Error (Not_enabled "display contains no tap handler"))

(** (BACK): always enabled; enqueues [pop]. *)
let back (st : State.t) : State.t =
  State.invalidate (State.enqueue Event.Pop st)

(* ------------------------------------------------------------------ *)
(* Rules that handle events                                            *)
(* ------------------------------------------------------------------ *)

(** Dequeue and handle one event: (THUNK), (PUSH) or (POP). *)
let dispatch ?fuel ?(evaluator = Subst) (st : State.t) : State.t outcome =
  match Fqueue.dequeue st.queue with
  | None -> Error (Not_enabled "event queue is empty")
  | Some (ev, rest) -> (
      let st = { st with queue = rest } in
      match ev with
      | Event.Exec v ->
          (* (THUNK): run [v ()] in standard mode *)
          let* store, queue =
            match evaluator with
            | Subst -> run_state ?fuel st (Ast.App (Ast.Val v, Ast.eunit))
            | Compiled ->
                run_state_compiled ?fuel st (fun ct ->
                    Compile_eval.run_thunk ?fuel ct st.store st.queue v)
          in
          Ok (State.invalidate { st with store; queue })
      | Event.Push (p, v) -> (
          (* (PUSH): run the page's init code, then push [(p, v)] *)
          match Program.find_page st.code p with
          | None ->
              Error
                (Execution_failed (Fmt.str "push of undefined page %s" p))
          | Some (_, init, _) ->
              let* store, queue =
                match evaluator with
                | Subst -> run_state ?fuel st (Ast.App (init, Ast.Val v))
                | Compiled ->
                    run_state_compiled ?fuel st (fun ct ->
                        Compile_eval.run_page_init ?fuel ct ~page:p st.store
                          st.queue v)
              in
              Ok
                (State.invalidate
                   (State.push_page p v { st with store; queue })))
      | Event.Pop ->
          (* (POP): pop the top page, or do nothing on an empty stack *)
          Ok (State.invalidate (State.pop_page st)))

(* ------------------------------------------------------------------ *)
(* Fault injection (conformance fuzzing)                               *)
(* ------------------------------------------------------------------ *)

(** Lose the oldest queued event, as if the platform dropped it.  Not
    one of the paper's rules: a CRASH-style fault the conformance
    fuzzer injects identically into every oracle configuration, so the
    configurations must still agree on the resulting state.  No-op on
    an empty queue. *)
let drop_oldest_event (st : State.t) : State.t =
  match Fqueue.dequeue st.queue with
  | None -> st
  | Some (_, rest) -> State.invalidate { st with queue = rest }

(** Deliver the oldest queued event twice (at-least-once delivery):
    the event is re-queued in front of itself, so it is dispatched
    back to back.  No-op on an empty queue. *)
let duplicate_oldest_event (st : State.t) : State.t =
  match Fqueue.dequeue st.queue with
  | None -> st
  | Some (e, rest) ->
      State.invalidate
        { st with queue = Fqueue.push_front e (Fqueue.push_front e rest) }

(* ------------------------------------------------------------------ *)
(* Display refresh                                                     *)
(* ------------------------------------------------------------------ *)

(** (RENDER): from [(C, ⊥, S, P(p,v), eps)], run the page's render
    code in render mode and install the produced box tree.

    With [cache], the render is memoized (see {!Render_cache} for the
    soundness argument): if the same page was previously rendered with
    the same argument under the same code and none of the globals that
    render read has changed, the previous box tree is revalidated
    without evaluating at all; otherwise the render runs with read-set
    tracing and unchanged [boxed] subtrees are spliced from the cache.
    Either way the installed display is exactly what the uncached rule
    would produce. *)
let render ?fuel ?cache ?(evaluator = Subst) (st : State.t) :
    State.t outcome =
  let* () =
    guard (not (State.display_valid st)) "RENDER requires an invalid display"
  in
  let* () =
    guard (Fqueue.is_empty st.queue) "RENDER requires an empty event queue"
  in
  let* p, v =
    match State.top_page st with
    | Some pv -> Ok pv
    | None -> Error (Not_enabled "RENDER requires a non-empty page stack")
  in
  match Program.find_page st.code p with
  | None -> Error (Execution_failed (Fmt.str "undefined page %s" p))
  | Some (_, _, render_fn) -> (
      (* the compiled engine renders through its per-page precompiled
         entry (stable [boxed] site ids across renders); the
         substitution engine evaluates [render_fn v] afresh *)
      let eval_uncached () =
        match evaluator with
        | Subst ->
            Eval.eval_render ?fuel st.code st.store
              (Ast.App (render_fn, Ast.Val v))
        | Compiled ->
            Compile_eval.run_page_render ?fuel (Compile_eval.get st.code)
              ~page:p st.store v
      in
      let eval_traced memo =
        match evaluator with
        | Subst ->
            Eval.eval_render_traced ?fuel ~memo st.code st.store
              (Ast.App (render_fn, Ast.Val v))
        | Compiled ->
            Compile_eval.run_page_render_traced ?fuel ~memo
              (Compile_eval.get st.code) ~page:p st.store v
      in
      match cache with
      | None -> (
          match eval_uncached () with
          | _, box -> Ok { st with display = State.Shown box }
          | exception Eval.Stuck m -> Error (Execution_failed m)
          | exception Eval.Out_of_fuel -> Error Diverged)
      | Some cache -> (
          Render_cache.ensure_code cache st.code;
          match
            Render_cache.find_display cache ~page:p ~arg:v ~prog:st.code
              ~store:st.store
          with
          | Some box -> Ok { st with display = State.Shown box }
          | None -> (
              match eval_traced cache with
              | _, box, reads ->
                  Render_cache.add_display cache ~page:p ~arg:v ~reads box;
                  Ok { st with display = State.Shown box }
              | exception Eval.Stuck m -> Error (Execution_failed m)
              | exception Eval.Out_of_fuel -> Error Diverged)))

(* ------------------------------------------------------------------ *)
(* Code update                                                         *)
(* ------------------------------------------------------------------ *)

(** The UPDATE premise on the new code alone: [C' |- C'] plus T-SYS's
    start-page condition.  Exposed separately so a multi-session host
    can typecheck an edit {e once} and then apply it fleet-wide with
    [update ~checked:true] — the per-state premise (empty queue) is
    still re-checked per session. *)
let check_program (new_code : Program.t) : (unit, error) result =
  let* () =
    match State_typing.check_code new_code with
    | Ok () -> Ok ()
    | Error m -> Error (Ill_typed m)
  in
  match State_typing.check_start new_code with
  | Ok () -> Ok ()
  | Error m -> Error (Ill_typed m)

(** [C' |- C'] by derivation reuse: re-derive only the definitions the
    diff marks for recheck, keep every other derivation from the old
    code's accepted run.

    Soundness (why the skipped derivations are still valid): a
    definition's derivation reads (a) its own source and (b) the
    {e existence} and {e declared type} of every name it references —
    nothing else, because definitions carry declared signatures and the
    typing rules look them up rather than re-deriving bodies.  A
    definition outside the recheck set is unchanged and none of its
    references changed signature or disappeared, so replaying its old
    derivation under the new code succeeds step for step.  Hence any
    definition that fails under [C'] is in the recheck set, and the
    incremental walk (same order, same per-definition judgment, full
    duplicate scan) reports the same first error the from-scratch
    checker would.  Precondition: [Program_diff.old_program diff]
    passed {!check_program} — callers (the broadcast path) track this
    with a checked flag and fall back to {!check_program} otherwise.
    The scratch/incremental agreement is cross-checked for every
    mutation the conformance fuzzer can produce (the ["host-incr"]
    oracle configuration) and in [test/test_program_diff.ml]. *)
let check_program_incremental ~(diff : Program_diff.t)
    (new_code : Program.t) : (unit, error) result =
  let* () =
    match
      State_typing.check_code_filtered
        ~recheck:(Program_diff.needs_recheck diff)
        new_code
    with
    | Ok () -> Ok ()
    | Error m -> Error (Ill_typed m)
  in
  match State_typing.check_start new_code with
  | Ok () -> Ok ()
  | Error m -> Error (Ill_typed m)

(** (UPDATE): from a state with an empty event queue, swap in arbitrary
    new code [C'], provided [C' |- C'] (and T-SYS's start-page
    condition), and fix up the store and page stack per Fig. 12.  The
    display is invalidated; the next RENDER rebuilds it from the new
    code applied to the surviving model state.  [checked] skips the
    code premise when the caller already discharged it via
    {!check_program} (the broadcast fast path). *)
let update ?(checked = false) ?diff ?(report = ref None)
    (new_code : Program.t) (st : State.t) : State.t outcome =
  let* () =
    guard (Fqueue.is_empty st.queue) "UPDATE requires an empty event queue"
  in
  let* () = if checked then Ok () else check_program new_code in
  (* a diff computed against different code must not steer the fix-up *)
  let diff =
    match diff with
    | Some d
      when Program_diff.old_program d == st.code
           && Program_diff.new_program d == new_code ->
        diff
    | _ -> None
  in
  let store, stack, rep =
    Fixup.fixup_with_report ?diff new_code st.store st.stack
  in
  report := Some rep;
  Ok
    {
      State.code = new_code;
      display = State.Invalid;
      store;
      stack;
      queue = st.queue;
    }

(* ------------------------------------------------------------------ *)
(* Driving the system                                                  *)
(* ------------------------------------------------------------------ *)

(** Run internal transitions until the state is stable with a valid
    display (or the step budget is exhausted).  This is the "while the
    system state is unstable, one of the following transitions is
    always enabled" loop of Sec. 4.2: STARTUP on an empty stack,
    event dispatch while the queue is non-empty, then RENDER. *)
let run_to_stable ?fuel ?cache ?evaluator ?(max_steps = 100_000)
    (st : State.t) : State.t outcome =
  let rec go n st =
    if n <= 0 then Error Diverged
    else if st.State.stack = [] && Fqueue.is_empty st.State.queue then
      let* st = startup st in
      go (n - 1) st
    else if not (Fqueue.is_empty st.State.queue) then
      let* st = dispatch ?fuel ?evaluator st in
      go (n - 1) st
    else if not (State.display_valid st) then
      let* st = render ?fuel ?cache ?evaluator st in
      go (n - 1) st
    else Ok st
  in
  go max_steps st

(** Boot a program: initial state [(C, ⊥, eps, eps, eps)] driven to its
    first stable state. *)
let boot ?fuel ?cache ?evaluator ?max_steps (code : Program.t) :
    State.t outcome =
  run_to_stable ?fuel ?cache ?evaluator ?max_steps (State.initial code)
