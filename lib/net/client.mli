(** A deterministic lockstep load client for the networked host —
    the measurement half of bench B15 and the net soak's traffic
    source.

    The client opens [conns] connections and distributes [sessions]
    slots over them (contiguous blocks, Hellos sent in connection
    order, so server-side spawn order equals slot order).  Traffic is
    {e closed-loop}: each round, every slot sends exactly one
    generated event and the round ends only when every slot's answer
    arrived (a [Delta] — possibly empty, the byte-identical-frame
    acknowledgement — or a backpressure [Error] code 2).  One event in
    flight per session means the per-session event sequence is exactly
    [gen slot 0 .. gen slot (rounds-1)] whatever the socket
    interleaving — which is what lets the caller replay the same
    generator against a direct in-process fleet and demand digest
    equality (transport invariance).

    [detach_every k] exercises persistence: after every [k]-th round,
    one slot (rotating) is detached, its snapshot carried client-side,
    and resumed — the slot continues under the fresh session id the
    [Attach] brings back.

    Unsolicited [Delta]s (broadcast repaints pushed after
    {!Server.mark_all_dirty}) are applied to the slot's reconstructed
    frame whenever they arrive; {!report.frames} is therefore always
    the server's view after {!run}'s final settle. *)

type report = {
  rounds : int;
  events_sent : int;
  rejected : int;  (** backpressure rejections (count as answers) *)
  latency : Live_host.Host_metrics.histogram;
      (** event-written → answer-decoded, nanoseconds *)
  bytes_in : int;
  bytes_out : int;
  frames_in : int;
  frames_out : int;
  delta_rows : int;  (** rows shipped in deltas *)
  full_rows : int;  (** rows full-frame repaints would have shipped *)
  detaches : int;
  resumes : int;
  session_ids : int list;  (** final server-side id of each slot, in slot order *)
  frames : string array array;  (** reconstructed rows per slot *)
  metrics : string option;  (** the host's [Metrics] dump, if [stats] *)
}

val run :
  socket:string ->
  conns:int ->
  sessions:int ->
  rounds:int ->
  gen:(slot:int -> round:int -> Wire.event) ->
  ?detach_every:int ->
  ?on_round:(int -> unit) ->
  ?pump:(unit -> unit) ->
  ?stats:bool ->
  unit ->
  (report, string) result
(** Drive the load.  [on_round r] runs after round [r] fully settled
    (every slot answered) — the quiescent point the caller injects
    fleet-wide broadcasts at.  [pump] is called inside every poll
    iteration; an in-process harness passes [fun () -> ignore
    (Server.step ~timeout:0. server)] to co-schedule the server on
    this same thread (real sockets, no threads).  Total: protocol
    errors, decode corruption and unexpected disconnects return
    [Error], never raise. *)
