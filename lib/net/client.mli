(** A deterministic lockstep load client for the networked host —
    the measurement half of bench B15 and the net soak's traffic
    source.

    The client opens [conns] connections and distributes [sessions]
    slots over them (contiguous blocks, Hellos sent in connection
    order, so server-side spawn order equals slot order).  Traffic is
    {e closed-loop} with a per-slot credit window: each round, every
    slot sends exactly one generated event, but a slot may have up to
    [window] rounds' events in flight before it must wait for credits.
    Credits come back in [Delta] frames' [acks] field (a server
    batching several of a session's events into one delta acks them
    all at once) or as a backpressure [Error] code 2 (one credit).
    With [window] = 1 — the default — every round is a full barrier
    and the client is the original one-event-in-flight lockstep.
    Whatever the window, a session's events leave in round order on
    one connection, so the per-session event sequence is exactly
    [gen slot 0 .. gen slot (rounds-1)] whatever the socket
    interleaving — which is what lets the caller replay the same
    generator against a direct in-process fleet and demand digest
    equality (transport invariance).

    [detach_every k] exercises persistence: after every [k]-th round,
    one slot (rotating) is detached, its snapshot carried client-side,
    and resumed — the slot continues under the fresh session id the
    [Attach] brings back.

    Unsolicited [Delta]s (broadcast repaints pushed after
    {!Server.mark_all_dirty}) are applied to the slot's reconstructed
    frame whenever they arrive; {!report.frames} is therefore always
    the server's view after {!run}'s final settle. *)

type report = {
  rounds : int;
  events_sent : int;
  rejected : int;  (** backpressure rejections (count as answers) *)
  latency : Live_host.Host_metrics.histogram;
      (** event-written → answer-decoded, nanoseconds *)
  bytes_in : int;
  bytes_out : int;
  frames_in : int;
  frames_out : int;
  delta_rows : int;  (** rows shipped in deltas *)
  full_rows : int;  (** rows full-frame repaints would have shipped *)
  detaches : int;
  resumes : int;
  session_ids : int list;  (** final server-side id of each slot, in slot order *)
  frames : string array array;  (** reconstructed rows per slot *)
  metrics : string option;  (** the host's [Metrics] dump, if [stats] *)
}

val run :
  socket:string ->
  conns:int ->
  sessions:int ->
  rounds:int ->
  gen:(slot:int -> round:int -> Wire.event) ->
  ?window:int ->
  ?barrier:(int -> bool) ->
  ?detach_every:int ->
  ?on_round:(int -> unit) ->
  ?pump:(unit -> unit) ->
  ?stats:bool ->
  unit ->
  (report, string) result
(** Drive the load.  [window] (default 1) is the per-slot in-flight
    event budget; [barrier r] (default: every round) declares the
    rounds that must fully drain — with a wide window, [on_round] runs
    {e only} after barrier rounds (detach rounds and the final round
    barrier implicitly), at a quiescent fleet: the point the caller
    injects fleet-wide broadcasts at.  [pump] is called inside every
    poll iteration; an in-process harness passes [fun () -> ignore
    (Server.step ~timeout:0. server)] to co-schedule the server on
    this same thread (real sockets, no threads).  Total: protocol
    errors, decode corruption and unexpected disconnects return
    [Error], never raise. *)
