(** The shard director (see the interface).  Single-threaded and
    [select]-based like {!Server}: client connections and shard
    connections are nonblocking, with staged egress — every frame bound
    for a peer during one select round lands in that peer's staging
    buffer and flushes as a single write.  A control frame
    ([Detach]/[Resume]/[Prepare]/...) turns the shard conversation
    briefly synchronous — the director writes the request through and
    pumps frames off the shard until the reply arrives, routing any
    unrelated [Delta] traffic to its owner on the way.

    The data plane is copy-free: a shard's [Delta] and a client's
    [Event] are relayed as raw bytes with only the session-id field
    rewritten ({!Wire.relay_rewrite}), never decoded.  Shards are
    director-trusted (an envelope violation is still {!Fatal}, but a
    delta's payload is forwarded unexamined); client events are {e not}
    trusted — the fast path takes only byte-validated event frames
    ({!Wire.event_payload_ok}) and everything else falls back to the
    full decoder, so malformed client bytes can never reach a shard
    stream.  Fleet-wide sweeps ([Observe]/[Stats_data]) broadcast the
    request to every shard before gathering replies: one round-trip
    wall-clock, not one per shard. *)

module Host_metrics = Live_host.Host_metrics
module Prng = Live_core.Prng

exception Fatal of string

let fatal fmt = Printf.ksprintf (fun m -> raise (Fatal m)) fmt

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type shard = {
  sx : int;
  endpoint : string;
  sfd : Unix.file_descr;
  s_in : Buffer.t;
  mutable s_off : int;  (** decode offset into [s_in] *)
  mutable s_out_pending : string;
      (** the write in flight; bytes before [s_out_off] are sent *)
  mutable s_out_off : int;
  s_out_staging : Buffer.t;  (** frames staged since the last promote *)
  s_scratch : Buffer.t;  (** body scratch for {!Wire.encode_into} *)
  locals : (int, int) Hashtbl.t;  (** shard-local id -> global id *)
}

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable out_pending : string;
  mutable out_off : int;
  out_staging : Buffer.t;
  scratch : Buffer.t;
  mutable closing : bool;
}

let shard_has_output (sh : shard) : bool =
  String.length sh.s_out_pending > sh.s_out_off
  || Buffer.length sh.s_out_staging > 0

let conn_has_output (c : conn) : bool =
  String.length c.out_pending > c.out_off || Buffer.length c.out_staging > 0

type placement = {
  mutable p_shard : int;  (** index into [shards] *)
  mutable p_local : int;  (** the session's id on that shard *)
  mutable p_owner : Unix.file_descr option;
      (** the client connection attached to this session, if any *)
}

type t = {
  shards : shard array;
  listen_fd : Unix.file_descr;
  path : string;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  sessions : (int, placement) Hashtbl.t;  (** global id -> placement *)
  mutable next_global : int;
  mutable next_txn : int;
  pump : unit -> unit;
  mutable stopped : bool;
  mutable d_accepted : int;
  mutable d_frames_in : int;
  mutable d_frames_out : int;
  mutable d_updates : int;
  mutable d_updates_rejected : int;
  mutable d_rebalances : int;
  mutable d_moved : int;
  mutable d_digest_checks : int;
  mutable d_digest_failures : int;
  mutable d_corrupt : int;
}

(* ------------------------------------------------------------------ *)
(* Placement: rendezvous hashing                                       *)
(* ------------------------------------------------------------------ *)

(* FNV-1a over the endpoint string, folded to a seed.  Any fixed hash
   works: the only requirements are determinism and that distinct
   endpoints get distinct score streams. *)
let hash_endpoint (s : string) : int =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land max_int)
    s;
  !h

(* Highest-random-weight: session [g] lives wherever
   [derive (hash endpoint) g] is largest.  Stable under shard-list
   growth: adding an endpoint only moves the sessions it wins. *)
let place (t : t) (g : int) : int =
  let best = ref 0 and best_score = ref min_int in
  Array.iter
    (fun sh ->
      let score = Prng.derive (hash_endpoint sh.endpoint) g in
      if score > !best_score then begin
        best_score := score;
        best := sh.sx
      end)
    t.shards;
  !best

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let connect_shard ~(timeout : float) (sx : int) (endpoint : string) : shard =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec attempt () =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX endpoint) with
    | () ->
        Unix.set_nonblock fd;
        fd
    | exception Unix.Unix_error (e, _, _) when Unix.gettimeofday () < deadline
      ->
        Unix.close fd;
        ignore e;
        Unix.sleepf 0.05;
        attempt ()
    | exception e ->
        Unix.close fd;
        raise e
  in
  {
    sx;
    endpoint;
    sfd = attempt ();
    s_in = Buffer.create 4096;
    s_off = 0;
    s_out_pending = "";
    s_out_off = 0;
    s_out_staging = Buffer.create 4096;
    s_scratch = Buffer.create 256;
    locals = Hashtbl.create 64;
  }

let create ?(pump = fun () -> ()) ?(connect_timeout = 10.) ~socket
    ~(shards : string list) () : t =
  if shards = [] then invalid_arg "Director.create: no shards";
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let shards =
    Array.of_list
      (List.mapi (fun sx ep -> connect_shard ~timeout:connect_timeout sx ep)
         shards)
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  (try
     Unix.bind fd (Unix.ADDR_UNIX socket);
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  {
    shards;
    listen_fd = fd;
    path = socket;
    conns = Hashtbl.create 16;
    sessions = Hashtbl.create 256;
    next_global = 0;
    next_txn = 1;
    pump;
    stopped = false;
    d_accepted = 0;
    d_frames_in = 0;
    d_frames_out = 0;
    d_updates = 0;
    d_updates_rejected = 0;
    d_rebalances = 0;
    d_moved = 0;
    d_digest_checks = 0;
    d_digest_failures = 0;
    d_corrupt = 0;
  }

(* ------------------------------------------------------------------ *)
(* Client-side plumbing                                                *)
(* ------------------------------------------------------------------ *)

let send_client (t : t) (c : conn) (f : Wire.frame) : unit =
  Wire.encode_into ~scratch:c.scratch c.out_staging f;
  t.d_frames_out <- t.d_frames_out + 1

let error t c code msg = send_client t c (Wire.Host (Wire.Error { code; msg }))

let violation (t : t) (c : conn) (msg : string) : unit =
  t.d_corrupt <- t.d_corrupt + 1;
  error t c 1 msg;
  c.closing <- true

let disown (t : t) (c : conn) : unit =
  Hashtbl.iter
    (fun _ p -> if p.p_owner = Some c.fd then p.p_owner <- None)
    t.sessions

let drop_conn (t : t) (c : conn) : unit =
  disown t c;
  Hashtbl.remove t.conns c.fd;
  try Unix.close c.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Shard-side plumbing                                                 *)
(* ------------------------------------------------------------------ *)

let send_shard (t : t) (sh : shard) (f : Wire.client_frame) : unit =
  Wire.encode_into ~scratch:sh.s_scratch sh.s_out_staging (Wire.Client f);
  t.d_frames_out <- t.d_frames_out + 1

(* Write as much of the staged shard egress as the socket takes right
   now: when the in-flight write completes, the whole staging buffer
   (every frame relayed this round) becomes the next write. *)
let flush_shard_once (sh : shard) : unit =
  let continue = ref true in
  while !continue do
    let remaining = String.length sh.s_out_pending - sh.s_out_off in
    if remaining = 0 then
      if Buffer.length sh.s_out_staging = 0 then continue := false
      else begin
        sh.s_out_pending <- Buffer.contents sh.s_out_staging;
        Buffer.clear sh.s_out_staging;
        sh.s_out_off <- 0
      end
    else
      match
        Unix.write_substring sh.sfd sh.s_out_pending sh.s_out_off remaining
      with
      | n ->
          sh.s_out_off <- sh.s_out_off + n;
          if n < remaining then continue := false
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (e, _, _) ->
          fatal "shard %s: write: %s" sh.endpoint (Unix.error_message e)
  done

(* Block (pumping the harness) until the shard egress is fully on the
   wire — the request half of a synchronous control exchange. *)
let flush_shard (t : t) (sh : shard) : unit =
  while shard_has_output sh do
    flush_shard_once sh;
    if shard_has_output sh then begin
      t.pump ();
      match Unix.select [] [ sh.sfd ] [] 0.01 with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end
  done

let shard_read_chunk = Bytes.create 65536

(* Pull whatever the shard socket holds into its decode buffer. *)
let read_shard (sh : shard) : unit =
  let rec go () =
    match Unix.read sh.sfd shard_read_chunk 0 (Bytes.length shard_read_chunk) with
    | 0 -> fatal "shard %s: connection closed" sh.endpoint
    | n ->
        Buffer.add_subbytes sh.s_in shard_read_chunk 0 n;
        if n = Bytes.length shard_read_chunk then go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (e, _, _) ->
        fatal "shard %s: read: %s" sh.endpoint (Unix.error_message e)
  in
  go ()

let leading_int (msg : string) : int option =
  int_of_string_opt (List.hd (String.split_on_char ' ' msg))

let owner_conn (t : t) (g : int) : conn option =
  match Hashtbl.find_opt t.sessions g with
  | Some { p_owner = Some fd; _ } -> (
      match Hashtbl.find_opt t.conns fd with
      | Some c when not c.closing -> Some c
      | _ -> None)
  | _ -> None

(* The hot path: a shard [Delta] located by {!Wire.peek} is relayed to
   its owner as raw bytes, only the session-id field rewritten local →
   global — no decode, no re-encode, one append into the owner's
   staging buffer. *)
let route_raw_delta (t : t) (sh : shard) (data : string) (r : Wire.raw) : unit
    =
  match Hashtbl.find_opt sh.locals r.Wire.r_session with
  | None -> () (* session migrated away mid-flight; stale delta *)
  | Some g -> (
      match owner_conn t g with
      | Some c ->
          Wire.relay_rewrite c.out_staging data r ~session:g;
          t.d_frames_out <- t.d_frames_out + 1
      | None -> ())

(* An asynchronous decoded shard frame (one that is not the reply a
   control exchange is waiting for): session traffic, translated
   local -> global and routed to the owning client.  [Delta]s normally
   take {!route_raw_delta} instead and only land here as a fallback. *)
let route_shard_frame (t : t) (sh : shard) (f : Wire.host_frame) : unit =
  match f with
  | Wire.Delta { session = local; height; acks; rows } -> (
      match Hashtbl.find_opt sh.locals local with
      | None -> () (* session migrated away mid-flight; stale delta *)
      | Some g -> (
          match owner_conn t g with
          | Some c ->
              send_client t c
                (Wire.Host (Wire.Delta { session = g; height; acks; rows }))
          | None -> ()))
  | Wire.Error { code = 2; msg } -> (
      (* backpressure rejection: the message leads with the shard-local
         session id; rewrite it to the global id for the owner *)
      match leading_int msg with
      | Some local -> (
          match Hashtbl.find_opt sh.locals local with
          | None -> ()
          | Some g -> (
              match owner_conn t g with
              | Some c ->
                  let rest =
                    match String.index_opt msg ' ' with
                    | Some i ->
                        String.sub msg i (String.length msg - i)
                    | None -> ""
                  in
                  error t c 2 (string_of_int g ^ rest)
              | None -> ()))
      | None -> fatal "shard %s: malformed backpressure message" sh.endpoint)
  | f ->
      fatal "shard %s: unexpected frame %s" sh.endpoint
        (Fmt.to_to_string Wire.pp (Wire.Host f))

(* Process every complete frame currently buffered from the shard in
   one pass over the buffer ([Buffer.contents] once per call, not once
   per frame).  [Delta]s take the raw fast path; anything else is
   decoded and — when [stop] is given — offered to it first: a [Some]
   verdict ends the pass (the reply of a control exchange), a [None]
   routes the frame as ordinary traffic. *)
let drain_shard_frames (t : t) (sh : shard) ?stop () =
  let data = Buffer.contents sh.s_in in
  let len = String.length data in
  let result = ref None in
  let continue = ref true in
  while !continue && !result = None && sh.s_off < len do
    match Wire.peek ~off:sh.s_off data with
    | Wire.Raw_need_more -> continue := false
    | Wire.Raw_corrupt m -> fatal "shard %s: corrupt stream: %s" sh.endpoint m
    | Wire.Raw r when r.Wire.r_tag = 0x82 ->
        route_raw_delta t sh data r;
        sh.s_off <- sh.s_off + r.Wire.r_total
    | Wire.Raw _ -> (
        match Wire.decode ~off:sh.s_off data with
        | Wire.Frame (Wire.Host f, consumed) -> (
            sh.s_off <- sh.s_off + consumed;
            match stop with
            | Some matcher -> (
                match matcher f with
                | Some v -> result := Some v
                | None -> route_shard_frame t sh f)
            | None -> route_shard_frame t sh f)
        | Wire.Frame (Wire.Client _, _) ->
            fatal "shard %s: client-tagged frame" sh.endpoint
        | Wire.Need_more -> continue := false
        | Wire.Corrupt m -> fatal "shard %s: corrupt stream: %s" sh.endpoint m)
  done;
  if sh.s_off > 0 then begin
    if sh.s_off = len then Buffer.clear sh.s_in
    else begin
      let rest = String.sub data sh.s_off (len - sh.s_off) in
      Buffer.clear sh.s_in;
      Buffer.add_string sh.s_in rest
    end;
    sh.s_off <- 0
  end;
  !result

(* Synchronous control exchange: send [req], then pump frames off this
   shard — routing unrelated traffic — until [matcher] recognises the
   reply.  The matcher must return [None] for backpressure [Error]s
   (they can interleave) and [Some] for its reply, including error
   replies; [Delta]s never reach it (raw fast path). *)
let rpc (t : t) (sh : shard) (req : Wire.client_frame)
    (matcher : Wire.host_frame -> 'a option) : 'a =
  send_shard t sh req;
  flush_shard t sh;
  let result = ref (drain_shard_frames t sh ~stop:matcher ()) in
  let deadline = Unix.gettimeofday () +. 60. in
  while !result = None do
    if Unix.gettimeofday () > deadline then
      fatal "shard %s: no reply within 60s" sh.endpoint;
    t.pump ();
    (match Unix.select [ sh.sfd ] [] [] 0.001 with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    read_shard sh;
    result := drain_shard_frames t sh ~stop:matcher ()
  done;
  Option.get !result

(* Fleet-wide sweep: the same request to {e every} shard up front, then
   gather the replies as they land — the sweep costs one round-trip
   wall-clock instead of one per shard, which is what makes fleet
   observation scale when the shards are real processes answering in
   parallel. *)
let broadcast_rpc (t : t) (req : Wire.client_frame)
    (matcher : shard -> Wire.host_frame -> 'a option) : 'a array =
  Array.iter
    (fun sh ->
      send_shard t sh req;
      flush_shard t sh)
    t.shards;
  let results = Array.map (fun _ -> None) t.shards in
  let missing () = Array.exists Option.is_none results in
  let gather () =
    Array.iteri
      (fun i sh ->
        if results.(i) = None then
          match drain_shard_frames t sh ~stop:(matcher sh) () with
          | Some r -> results.(i) <- Some r
          | None -> ())
      t.shards
  in
  gather ();
  let deadline = Unix.gettimeofday () +. 60. in
  while missing () do
    if Unix.gettimeofday () > deadline then
      fatal "shards: no sweep reply within 60s";
    t.pump ();
    let fds =
      Array.to_list t.shards
      |> List.filter_map (fun sh ->
             if results.(sh.sx) = None then Some sh.sfd else None)
    in
    (match Unix.select fds [] [] 0.001 with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    Array.iteri (fun i sh -> if results.(i) = None then read_shard sh) t.shards;
    gather ()
  done;
  Array.map Option.get results

(* ------------------------------------------------------------------ *)
(* Fleet-wide observation                                              *)
(* ------------------------------------------------------------------ *)

(* Every resident session's canonical observation, tagged with its
   global id, ascending.  One broadcast sweep: all shards observe
   concurrently. *)
let observe_fleet (t : t) : (int * string) list =
  let per_shard =
    broadcast_rpc t Wire.Observe (fun sh -> function
      | Wire.Observed { sessions } -> Some sessions
      | Wire.Error { code; msg } ->
          fatal "shard %s: observe: error %d: %s" sh.endpoint code msg
      | _ -> None)
  in
  let all =
    Array.to_list
      (Array.mapi
         (fun i sessions ->
           let sh = t.shards.(i) in
           List.map
             (fun (local, obs) ->
               match Hashtbl.find_opt sh.locals local with
               | Some g -> (g, obs)
               | None ->
                   fatal "shard %s: unknown local session %d" sh.endpoint local)
             sessions)
         per_shard)
    |> List.concat
  in
  List.sort (fun (a, _) (b, _) -> compare a b) all

(* Byte-compatible with {!Live_host.Registry.digest}: same per-session
   header, same id order (global ids are dense and spawn-ordered, like
   a single registry's). *)
let digest_of_observations (obs : (int * string) list) : string =
  let b = Buffer.create 4096 in
  List.iter
    (fun (g, o) ->
      Buffer.add_string b (Printf.sprintf "== session %d ==\n" g);
      Buffer.add_string b o)
    obs;
  Digest.to_hex (Digest.string (Buffer.contents b))

let fleet_digest (t : t) : string = digest_of_observations (observe_fleet t)

let shard_exports (t : t) : Host_metrics.exported list =
  broadcast_rpc t Wire.Stats_data (fun sh -> function
    | Wire.Metrics { text } -> (
        match Host_metrics.import text with
        | Ok x -> Some x
        | Error m -> fatal "shard %s: bad metrics export: %s" sh.endpoint m)
    | Wire.Error { code; msg } ->
        fatal "shard %s: stats: error %d: %s" sh.endpoint code msg
    | _ -> None)
  |> Array.to_list

(* The exact union of the shard exports, re-exported in the same
   format — raw counters and buckets, not precomputed quantiles. *)
let merged_export (exports : Host_metrics.exported list) : string =
  let m =
    Host_metrics.merge_all
      (List.map (fun x -> x.Host_metrics.x_metrics) exports)
  in
  let sessions =
    List.fold_left (fun acc x -> acc + x.Host_metrics.x_sessions) 0 exports
  in
  let pending =
    List.fold_left (fun acc x -> acc + x.Host_metrics.x_pending) 0 exports
  in
  let cache =
    if List.for_all (fun x -> x.Host_metrics.x_cache = None) exports then None
    else
      Some
        (List.fold_left
           (fun (h, ms) x ->
             let xh, xm = Option.value x.Host_metrics.x_cache ~default:(0, 0) in
             (h + xh, ms + xm))
           (0, 0) exports)
  in
  Host_metrics.export m ~sessions ~pending ~cache

(* ------------------------------------------------------------------ *)
(* Two-phase UPDATE                                                    *)
(* ------------------------------------------------------------------ *)

let ack_or_error (what : string) (sh : shard) : Wire.host_frame -> (string, string) result option
    = function
  | Wire.Ack { info } -> Some (Ok info)
  | Wire.Error { code = 6; msg } -> Some (Error msg)
  | Wire.Error { code; msg } ->
      fatal "shard %s: %s: error %d: %s" sh.endpoint what code msg
  | _ -> None

(* Prepare on every shard; if any refuses, abort the ones already
   prepared and report failure — all-or-nothing.  Otherwise commit
   everywhere.  No client frame is read while this runs, so the fleet
   is never observably mixed-epoch. *)
let update (t : t) (program : string) : (string, string) result =
  let txn = t.next_txn in
  t.next_txn <- txn + 1;
  let prepared = ref [] in
  let failure = ref None in
  Array.iter
    (fun sh ->
      if !failure = None then
        match rpc t sh (Wire.Prepare { txn; program }) (ack_or_error "prepare" sh) with
        | Ok _ -> prepared := sh :: !prepared
        | Error m -> failure := Some (sh.endpoint, m))
    t.shards;
  match !failure with
  | Some (ep, m) ->
      List.iter
        (fun sh ->
          match rpc t sh (Wire.Abort { txn }) (ack_or_error "abort" sh) with
          | Ok _ -> ()
          | Error m -> fatal "shard %s: abort refused: %s" sh.endpoint m)
        !prepared;
      t.d_updates_rejected <- t.d_updates_rejected + 1;
      Error (Printf.sprintf "prepare failed on %s: %s (fleet unchanged)" ep m)
  | None ->
      Array.iter
        (fun sh ->
          match rpc t sh (Wire.Commit { txn }) (ack_or_error "commit" sh) with
          | Ok _ -> ()
          | Error m ->
              (* a commit refusal after every shard prepared breaks the
                 protocol's promise; there is no good recovery *)
              fatal "shard %s: commit refused: %s" sh.endpoint m)
        t.shards;
      t.d_updates <- t.d_updates + 1;
      Ok
        (Printf.sprintf "txn %d committed on %d shards" txn
           (Array.length t.shards))

(* ------------------------------------------------------------------ *)
(* Live rebalance                                                      *)
(* ------------------------------------------------------------------ *)

let shard_load (t : t) : int array =
  Array.map (fun sh -> Hashtbl.length sh.locals) t.shards

(* Move one session: the lowest global id on the fullest shard goes to
   the emptiest, via detach -> snapshot -> resume.  The global id is
   unchanged; only the placement entry moves.  Returns whether the
   migrated snapshot carried pending events (in which case the fleet
   was not quiescent and the digest check downgrades to advisory). *)
let move_one (t : t) ~(src : shard) ~(dst : shard) : bool =
  let g, local =
    Hashtbl.fold
      (fun local g acc ->
        match acc with
        | Some (g0, _) when g0 <= g -> acc
        | _ -> Some (g, local))
      src.locals None
    |> function
    | Some x -> x
    | None -> fatal "rebalance: shard %s is empty" src.endpoint
  in
  let snapshot =
    rpc t src (Wire.Detach { session = local }) (function
      | Wire.Detached { session; snapshot } when session = local ->
          Some snapshot
      | Wire.Error { code; msg } ->
          fatal "shard %s: detach %d: error %d: %s" src.endpoint local code msg
      | _ -> None)
  in
  Hashtbl.remove src.locals local;
  let carried_pending =
    match Snapshot.of_string snapshot with
    | Ok snap -> snap.Snapshot.pending <> []
    | Error m -> fatal "rebalance: bad snapshot for %d: %s" g m
  in
  let new_local =
    rpc t dst (Wire.Resume { snapshot }) (function
      | Wire.Attach { session; width = _; frame = _ } -> Some session
      | Wire.Error { code; msg } ->
          fatal "shard %s: resume %d: error %d: %s" dst.endpoint g code msg
      | _ -> None)
  in
  Hashtbl.replace dst.locals new_local g;
  (match Hashtbl.find_opt t.sessions g with
  | Some p ->
      p.p_shard <- dst.sx;
      p.p_local <- new_local
  | None -> fatal "rebalance: no placement for %d" g);
  t.d_moved <- t.d_moved + 1;
  carried_pending

let rebalance (t : t) (count : int) : (string, string) result =
  t.d_rebalances <- t.d_rebalances + 1;
  if Array.length t.shards < 2 then Ok "moved 0 sessions (single shard)"
  else begin
    let before = observe_fleet t in
    let exports = shard_exports t in
    let quiescent =
      List.for_all (fun x -> x.Host_metrics.x_pending = 0) exports
    in
    let moved = ref 0 in
    let carried = ref false in
    (try
       for _ = 1 to count do
         let load = shard_load t in
         let argbest cmp =
           let best = ref 0 in
           Array.iteri (fun i _ -> if cmp load.(i) load.(!best) then best := i)
             load;
           !best
         in
         let src = argbest ( > ) and dst = argbest ( < ) in
         if src <> dst && load.(src) > 0 then begin
           if move_one t ~src:t.shards.(src) ~dst:t.shards.(dst) then
             carried := true;
           incr moved
         end
         else raise Exit
       done
     with Exit -> ());
    let after = observe_fleet t in
    let strict = quiescent && not !carried in
    let db = digest_of_observations before
    and da = digest_of_observations after in
    if strict then begin
      t.d_digest_checks <- t.d_digest_checks + 1;
      if not (String.equal db da) then begin
        t.d_digest_failures <- t.d_digest_failures + 1;
        Error
          (Printf.sprintf "digest mismatch after rebalance: %s -> %s" db da)
      end
      else
        Ok
          (Printf.sprintf "moved %d sessions, digest %s held" !moved da)
    end
    else
      Ok
        (Printf.sprintf
           "moved %d sessions (fleet not quiescent; digest advisory %s -> %s)"
           !moved db da)
  end

(* ------------------------------------------------------------------ *)
(* Aggregated stats                                                    *)
(* ------------------------------------------------------------------ *)

let aggregated_metrics (t : t) : string =
  let exports = shard_exports t in
  let merged = Host_metrics.merge_exported exports in
  let b = Buffer.create 1024 in
  Buffer.add_string b (Host_metrics.to_string merged);
  Buffer.add_string b
    (Printf.sprintf "director: %d shards, %d sessions\n"
       (Array.length t.shards) (Hashtbl.length t.sessions));
  Array.iter
    (fun sh ->
      Buffer.add_string b
        (Printf.sprintf "  shard %-24s %6d sessions\n" sh.endpoint
           (Hashtbl.length sh.locals)))
    t.shards;
  Buffer.add_string b
    (Printf.sprintf
       "  updates: %d committed, %d rejected; rebalance: %d runs, %d moved\n"
       t.d_updates t.d_updates_rejected t.d_rebalances t.d_moved);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Client frame handling                                               *)
(* ------------------------------------------------------------------ *)

let spawn_one (t : t) (c : conn) (client : string) : unit =
  let g = t.next_global in
  let sh = t.shards.(place t g) in
  let reply =
    rpc t sh (Wire.Hello { client; sessions = 1 }) (function
      | Wire.Attach { session; width; frame } -> Some (Ok (session, width, frame))
      | Wire.Error { code = (3 | 4 | 5) as code; msg } -> Some (Error (code, msg))
      | _ -> None)
  in
  match reply with
  | Error (code, msg) -> error t c code msg
  | Ok (local, width, frame) ->
      t.next_global <- g + 1;
      Hashtbl.replace sh.locals local g;
      Hashtbl.replace t.sessions g
        { p_shard = sh.sx; p_local = local; p_owner = Some c.fd };
      send_client t c (Wire.Host (Wire.Attach { session = g; width; frame }))

let handle_client_frame (t : t) (c : conn) (f : Wire.client_frame) : unit =
  match f with
  | Wire.Hello { client; sessions } ->
      if sessions < 1 then violation t c "Hello: sessions must be >= 1"
      else
        for _ = 1 to sessions do
          spawn_one t c client
        done
  | Wire.Event { session = g; ev } -> (
      (* fallback for events the raw fast path declined; staged, and
         flushed with the rest of the round's shard egress *)
      match Hashtbl.find_opt t.sessions g with
      | Some p when p.p_owner = Some c.fd ->
          let sh = t.shards.(p.p_shard) in
          send_shard t sh (Wire.Event { session = p.p_local; ev })
      | _ -> error t c 5 (string_of_int g))
  | Wire.Detach { session = g } -> (
      match Hashtbl.find_opt t.sessions g with
      | Some p when p.p_owner = Some c.fd ->
          let sh = t.shards.(p.p_shard) in
          let snapshot =
            rpc t sh (Wire.Detach { session = p.p_local }) (function
              | Wire.Detached { session; snapshot } when session = p.p_local ->
                  Some snapshot
              | Wire.Error { code; msg } ->
                  fatal "shard %s: detach: error %d: %s" sh.endpoint code msg
              | _ -> None)
          in
          Hashtbl.remove sh.locals p.p_local;
          Hashtbl.remove t.sessions g;
          send_client t c (Wire.Host (Wire.Detached { session = g; snapshot }))
      | _ -> error t c 5 (string_of_int g))
  | Wire.Resume { snapshot } -> (
      let g = t.next_global in
      let sh = t.shards.(place t g) in
      let reply =
        rpc t sh (Wire.Resume { snapshot }) (function
          | Wire.Attach { session; width; frame } ->
              Some (Ok (session, width, frame))
          | Wire.Error { code = (3 | 4) as code; msg } -> Some (Error (code, msg))
          | _ -> None)
      in
      match reply with
      | Error (code, msg) -> error t c code msg
      | Ok (local, width, frame) ->
          t.next_global <- g + 1;
          Hashtbl.replace sh.locals local g;
          Hashtbl.replace t.sessions g
            { p_shard = sh.sx; p_local = local; p_owner = Some c.fd };
          send_client t c
            (Wire.Host (Wire.Attach { session = g; width; frame })))
  | Wire.Stats ->
      send_client t c (Wire.Host (Wire.Metrics { text = aggregated_metrics t }))
  | Wire.Stats_data ->
      (* machine-readable aggregate: re-export the merged raw counters,
         so a director composes (a director of directors merges the
         same way a director of shards does) *)
      send_client t c
        (Wire.Host (Wire.Metrics { text = merged_export (shard_exports t) }))
  | Wire.Update { program } -> (
      match update t program with
      | Ok info -> send_client t c (Wire.Host (Wire.Ack { info }))
      | Error msg -> error t c 6 msg)
  | Wire.Rebalance { count } ->
      if count < 0 then violation t c "Rebalance: negative count"
      else (
        match rebalance t count with
        | Ok info -> send_client t c (Wire.Host (Wire.Ack { info }))
        | Error msg -> error t c 6 msg)
  | Wire.Observe ->
      send_client t c (Wire.Host (Wire.Observed { sessions = observe_fleet t }))
  | Wire.Prepare _ | Wire.Commit _ | Wire.Abort _ ->
      violation t c "shard transaction frame at the director"
  | Wire.Bye ->
      disown t c;
      c.closing <- true

(* ------------------------------------------------------------------ *)
(* The select loop                                                     *)
(* ------------------------------------------------------------------ *)

(* A client [Event] whose bytes validate completely takes the raw fast
   path: relayed into the owning shard's staging buffer with only the
   session id rewritten global → local, never decoded.  Returns [true]
   if the frame at [off] was consumed this way.  Anything else — other
   tags, an event that fails byte validation (the decoder will call it
   Corrupt), an unknown or unowned session — declines into the decode
   path, so no unvalidated client byte ever reaches a shard stream. *)
let try_fast_event (t : t) (c : conn) (data : string) (off : int) : int option
    =
  match Wire.peek ~off data with
  | Wire.Raw r
    when r.Wire.r_tag = 0x02 && Wire.event_payload_ok data r -> (
      match Hashtbl.find_opt t.sessions r.Wire.r_session with
      | Some p when p.p_owner = Some c.fd ->
          let sh = t.shards.(p.p_shard) in
          Wire.relay_rewrite sh.s_out_staging data r ~session:p.p_local;
          t.d_frames_in <- t.d_frames_in + 1;
          t.d_frames_out <- t.d_frames_out + 1;
          Some r.Wire.r_total
      | _ ->
          t.d_frames_in <- t.d_frames_in + 1;
          error t c 5 (string_of_int r.Wire.r_session);
          Some r.Wire.r_total)
  | _ -> None

let drain_client_inbuf (t : t) (c : conn) : unit =
  let data = Buffer.contents c.inbuf in
  let len = String.length data in
  let off = ref 0 in
  let continue = ref true in
  while !continue && !off < len && not c.closing do
    match try_fast_event t c data !off with
    | Some consumed -> off := !off + consumed
    | None -> (
        match Wire.decode ~off:!off data with
        | Wire.Frame (Wire.Client f, consumed) ->
            t.d_frames_in <- t.d_frames_in + 1;
            off := !off + consumed;
            handle_client_frame t c f
        | Wire.Frame (Wire.Host _, consumed) ->
            ignore consumed;
            violation t c "host-tagged frame from a client";
            continue := false
        | Wire.Need_more -> continue := false
        | Wire.Corrupt m ->
            violation t c m;
            continue := false)
  done;
  if !off > 0 || c.closing then begin
    let rest = if c.closing then "" else String.sub data !off (len - !off) in
    Buffer.clear c.inbuf;
    Buffer.add_string c.inbuf rest
  end

let client_read_chunk = Bytes.create 65536

let read_client (c : conn) : bool =
  let rec go () =
    match Unix.read c.fd client_read_chunk 0 (Bytes.length client_read_chunk) with
    | 0 -> false
    | n ->
        Buffer.add_subbytes c.inbuf client_read_chunk 0 n;
        if n = Bytes.length client_read_chunk then go () else true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> false
  in
  go ()

let flush_client (c : conn) : bool =
  let rec go () =
    let remaining = String.length c.out_pending - c.out_off in
    if remaining = 0 then
      if Buffer.length c.out_staging = 0 then true
      else begin
        c.out_pending <- Buffer.contents c.out_staging;
        Buffer.clear c.out_staging;
        c.out_off <- 0;
        go ()
      end
    else
      match Unix.write_substring c.fd c.out_pending c.out_off remaining with
      | n ->
          c.out_off <- c.out_off + n;
          if n = remaining then go () else true
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> false
  in
  go ()

let accept_loop (t : t) : bool =
  let accepted = ref false in
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        Hashtbl.replace t.conns fd
          {
            fd;
            inbuf = Buffer.create 4096;
            out_pending = "";
            out_off = 0;
            out_staging = Buffer.create 4096;
            scratch = Buffer.create 256;
            closing = false;
          };
        t.d_accepted <- t.d_accepted + 1;
        accepted := true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
  done;
  !accepted

let step ?(timeout = 0.05) (t : t) : bool =
  if t.stopped then false
  else begin
    let reads = ref [ t.listen_fd ] in
    Array.iter (fun sh -> reads := sh.sfd :: !reads) t.shards;
    let writes = ref [] in
    Hashtbl.iter
      (fun fd c ->
        if not c.closing then reads := fd :: !reads;
        if conn_has_output c then writes := fd :: !writes)
      t.conns;
    Array.iter
      (fun sh -> if shard_has_output sh then writes := sh.sfd :: !writes)
      t.shards;
    let rec select_retry () =
      try Unix.select !reads !writes [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> select_retry ()
    in
    let readable, writable, _ = select_retry () in
    let worked = ref false in
    if List.mem t.listen_fd readable then
      if accept_loop t then worked := true;
    (* shard traffic first: deltas route into client staging buffers.
       The drain runs whether or not the socket is readable — an rpc
       may have left complete frames (repaint deltas that rode in
       behind its reply) sitting in the buffer with nothing new on the
       wire. *)
    Array.iter
      (fun sh ->
        if List.mem sh.sfd readable then read_shard sh;
        if Buffer.length sh.s_in > 0 then begin
          worked := true;
          ignore (drain_shard_frames t sh ())
        end)
      t.shards;
    (* client frames, which may fan control exchanges out to shards *)
    List.iter
      (fun fd ->
        if fd <> t.listen_fd then
          match Hashtbl.find_opt t.conns fd with
          | None -> ()
          | Some c ->
              worked := true;
              if read_client c then drain_client_inbuf t c else drop_conn t c)
      readable;
    (* egress both ways *)
    Array.iter (fun sh -> flush_shard_once sh) t.shards;
    ignore writable;
    let dead = ref [] in
    Hashtbl.iter
      (fun _ c ->
        if conn_has_output c || c.closing then begin
          if not (flush_client c) then dead := c :: !dead
          else if c.closing && not (conn_has_output c) then dead := c :: !dead
        end)
      t.conns;
    List.iter (fun c -> drop_conn t c) !dead;
    !worked
  end

let run ~(until : unit -> bool) (t : t) : unit =
  while not (until ()) && not t.stopped do
    ignore (step t)
  done

type stats = {
  shards : int;
  sessions : int;
  per_shard : (string * int) list;
  accepted : int;
  frames_in : int;
  frames_out : int;
  updates_committed : int;
  updates_rejected : int;
  rebalances : int;
  sessions_moved : int;
  digest_checks : int;
  digest_failures : int;
  corrupt : int;
}

let stats (t : t) : stats =
  {
    shards = Array.length t.shards;
    sessions = Hashtbl.length t.sessions;
    per_shard =
      Array.to_list t.shards
      |> List.map (fun sh -> (sh.endpoint, Hashtbl.length sh.locals));
    accepted = t.d_accepted;
    frames_in = t.d_frames_in;
    frames_out = t.d_frames_out;
    updates_committed = t.d_updates;
    updates_rejected = t.d_updates_rejected;
    rebalances = t.d_rebalances;
    sessions_moved = t.d_moved;
    digest_checks = t.d_digest_checks;
    digest_failures = t.d_digest_failures;
    corrupt = t.d_corrupt;
  }

let stop (t : t) : unit =
  if not t.stopped then begin
    t.stopped <- true;
    Array.iter
      (fun sh -> try Unix.close sh.sfd with Unix.Unix_error _ -> ())
      t.shards;
    Hashtbl.iter
      (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      t.conns;
    Hashtbl.reset t.conns;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    try Unix.unlink t.path with Unix.Unix_error _ -> ()
  end
