(** The shard director (see the interface).  Single-threaded and
    [select]-based like {!Server}: client connections are nonblocking
    and queue-buffered; shard connections are the same, except that a
    control frame ([Detach]/[Resume]/[Prepare]/...) turns the shard
    conversation briefly synchronous — the director writes the request
    through and pumps frames off the shard until the reply arrives,
    routing any unrelated [Delta] traffic to its owner on the way. *)

module Host_metrics = Live_host.Host_metrics
module Prng = Live_core.Prng

exception Fatal of string

let fatal fmt = Printf.ksprintf (fun m -> raise (Fatal m)) fmt

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type shard = {
  sx : int;
  endpoint : string;
  sfd : Unix.file_descr;
  s_in : Buffer.t;
  mutable s_off : int;  (** decode offset into [s_in] *)
  s_out : string Queue.t;
  mutable s_out_off : int;
  locals : (int, int) Hashtbl.t;  (** shard-local id -> global id *)
}

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  outq : string Queue.t;
  mutable out_off : int;
  mutable closing : bool;
}

type placement = {
  mutable p_shard : int;  (** index into [shards] *)
  mutable p_local : int;  (** the session's id on that shard *)
  mutable p_owner : Unix.file_descr option;
      (** the client connection attached to this session, if any *)
}

type t = {
  shards : shard array;
  listen_fd : Unix.file_descr;
  path : string;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  sessions : (int, placement) Hashtbl.t;  (** global id -> placement *)
  mutable next_global : int;
  mutable next_txn : int;
  pump : unit -> unit;
  mutable stopped : bool;
  mutable d_accepted : int;
  mutable d_frames_in : int;
  mutable d_frames_out : int;
  mutable d_updates : int;
  mutable d_updates_rejected : int;
  mutable d_rebalances : int;
  mutable d_moved : int;
  mutable d_digest_checks : int;
  mutable d_digest_failures : int;
  mutable d_corrupt : int;
}

(* ------------------------------------------------------------------ *)
(* Placement: rendezvous hashing                                       *)
(* ------------------------------------------------------------------ *)

(* FNV-1a over the endpoint string, folded to a seed.  Any fixed hash
   works: the only requirements are determinism and that distinct
   endpoints get distinct score streams. *)
let hash_endpoint (s : string) : int =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land max_int)
    s;
  !h

(* Highest-random-weight: session [g] lives wherever
   [derive (hash endpoint) g] is largest.  Stable under shard-list
   growth: adding an endpoint only moves the sessions it wins. *)
let place (t : t) (g : int) : int =
  let best = ref 0 and best_score = ref min_int in
  Array.iter
    (fun sh ->
      let score = Prng.derive (hash_endpoint sh.endpoint) g in
      if score > !best_score then begin
        best_score := score;
        best := sh.sx
      end)
    t.shards;
  !best

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let connect_shard ~(timeout : float) (sx : int) (endpoint : string) : shard =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec attempt () =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX endpoint) with
    | () ->
        Unix.set_nonblock fd;
        fd
    | exception Unix.Unix_error (e, _, _) when Unix.gettimeofday () < deadline
      ->
        Unix.close fd;
        ignore e;
        Unix.sleepf 0.05;
        attempt ()
    | exception e ->
        Unix.close fd;
        raise e
  in
  {
    sx;
    endpoint;
    sfd = attempt ();
    s_in = Buffer.create 4096;
    s_off = 0;
    s_out = Queue.create ();
    s_out_off = 0;
    locals = Hashtbl.create 64;
  }

let create ?(pump = fun () -> ()) ?(connect_timeout = 10.) ~socket
    ~(shards : string list) () : t =
  if shards = [] then invalid_arg "Director.create: no shards";
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let shards =
    Array.of_list
      (List.mapi (fun sx ep -> connect_shard ~timeout:connect_timeout sx ep)
         shards)
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  (try
     Unix.bind fd (Unix.ADDR_UNIX socket);
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  {
    shards;
    listen_fd = fd;
    path = socket;
    conns = Hashtbl.create 16;
    sessions = Hashtbl.create 256;
    next_global = 0;
    next_txn = 1;
    pump;
    stopped = false;
    d_accepted = 0;
    d_frames_in = 0;
    d_frames_out = 0;
    d_updates = 0;
    d_updates_rejected = 0;
    d_rebalances = 0;
    d_moved = 0;
    d_digest_checks = 0;
    d_digest_failures = 0;
    d_corrupt = 0;
  }

(* ------------------------------------------------------------------ *)
(* Client-side plumbing                                                *)
(* ------------------------------------------------------------------ *)

let send_client (t : t) (c : conn) (f : Wire.frame) : unit =
  Queue.add (Wire.encode f) c.outq;
  t.d_frames_out <- t.d_frames_out + 1

let error t c code msg = send_client t c (Wire.Host (Wire.Error { code; msg }))

let violation (t : t) (c : conn) (msg : string) : unit =
  t.d_corrupt <- t.d_corrupt + 1;
  error t c 1 msg;
  c.closing <- true

let disown (t : t) (c : conn) : unit =
  Hashtbl.iter
    (fun _ p -> if p.p_owner = Some c.fd then p.p_owner <- None)
    t.sessions

let drop_conn (t : t) (c : conn) : unit =
  disown t c;
  Hashtbl.remove t.conns c.fd;
  try Unix.close c.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Shard-side plumbing                                                 *)
(* ------------------------------------------------------------------ *)

let send_shard (t : t) (sh : shard) (f : Wire.client_frame) : unit =
  Queue.add (Wire.encode (Wire.Client f)) sh.s_out;
  t.d_frames_out <- t.d_frames_out + 1

(* Write as much of the shard out-queue as the socket takes right now. *)
let flush_shard_once (sh : shard) : unit =
  let continue = ref true in
  while !continue do
    match Queue.peek_opt sh.s_out with
    | None -> continue := false
    | Some s -> (
        let remaining = String.length s - sh.s_out_off in
        match Unix.write_substring sh.sfd s sh.s_out_off remaining with
        | n ->
            if n = remaining then begin
              ignore (Queue.pop sh.s_out);
              sh.s_out_off <- 0
            end
            else begin
              sh.s_out_off <- sh.s_out_off + n;
              continue := false
            end
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            continue := false
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error (e, _, _) ->
            fatal "shard %s: write: %s" sh.endpoint (Unix.error_message e))
  done

(* Block (pumping the harness) until the shard out-queue is fully on
   the wire — the request half of a synchronous control exchange. *)
let flush_shard (t : t) (sh : shard) : unit =
  while not (Queue.is_empty sh.s_out) do
    flush_shard_once sh;
    if not (Queue.is_empty sh.s_out) then begin
      t.pump ();
      match Unix.select [] [ sh.sfd ] [] 0.01 with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end
  done

let shard_read_chunk = Bytes.create 65536

(* Pull whatever the shard socket holds into its decode buffer. *)
let read_shard (sh : shard) : unit =
  let rec go () =
    match Unix.read sh.sfd shard_read_chunk 0 (Bytes.length shard_read_chunk) with
    | 0 -> fatal "shard %s: connection closed" sh.endpoint
    | n ->
        Buffer.add_subbytes sh.s_in shard_read_chunk 0 n;
        if n = Bytes.length shard_read_chunk then go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (e, _, _) ->
        fatal "shard %s: read: %s" sh.endpoint (Unix.error_message e)
  in
  go ()

(* Decode one complete frame out of the shard buffer, if present. *)
let next_shard_frame (sh : shard) : Wire.host_frame option =
  let data = Buffer.contents sh.s_in in
  match Wire.decode ~off:sh.s_off data with
  | Wire.Frame (Wire.Host f, consumed) ->
      sh.s_off <- sh.s_off + consumed;
      if sh.s_off = String.length data then begin
        Buffer.clear sh.s_in;
        sh.s_off <- 0
      end;
      Some f
  | Wire.Frame (Wire.Client _, _) ->
      fatal "shard %s: client-tagged frame" sh.endpoint
  | Wire.Need_more ->
      if sh.s_off > 0 then begin
        let rest = String.sub data sh.s_off (String.length data - sh.s_off) in
        Buffer.clear sh.s_in;
        Buffer.add_string sh.s_in rest;
        sh.s_off <- 0
      end;
      None
  | Wire.Corrupt m -> fatal "shard %s: corrupt stream: %s" sh.endpoint m

let leading_int (msg : string) : int option =
  int_of_string_opt (List.hd (String.split_on_char ' ' msg))

let owner_conn (t : t) (g : int) : conn option =
  match Hashtbl.find_opt t.sessions g with
  | Some { p_owner = Some fd; _ } -> (
      match Hashtbl.find_opt t.conns fd with
      | Some c when not c.closing -> Some c
      | _ -> None)
  | _ -> None

(* An asynchronous shard frame (one that is not the reply a control
   exchange is waiting for): session traffic, translated local ->
   global and routed to the owning client. *)
let route_shard_frame (t : t) (sh : shard) (f : Wire.host_frame) : unit =
  match f with
  | Wire.Delta { session = local; height; rows } -> (
      match Hashtbl.find_opt sh.locals local with
      | None -> () (* session migrated away mid-flight; stale delta *)
      | Some g -> (
          match owner_conn t g with
          | Some c ->
              send_client t c
                (Wire.Host (Wire.Delta { session = g; height; rows }))
          | None -> ()))
  | Wire.Error { code = 2; msg } -> (
      (* backpressure rejection: the message leads with the shard-local
         session id; rewrite it to the global id for the owner *)
      match leading_int msg with
      | Some local -> (
          match Hashtbl.find_opt sh.locals local with
          | None -> ()
          | Some g -> (
              match owner_conn t g with
              | Some c ->
                  let rest =
                    match String.index_opt msg ' ' with
                    | Some i ->
                        String.sub msg i (String.length msg - i)
                    | None -> ""
                  in
                  error t c 2 (string_of_int g ^ rest)
              | None -> ()))
      | None -> fatal "shard %s: malformed backpressure message" sh.endpoint)
  | f ->
      fatal "shard %s: unexpected frame %s" sh.endpoint
        (Fmt.to_to_string Wire.pp (Wire.Host f))

(* Synchronous control exchange: send [req], then pump frames off this
   shard — routing unrelated traffic — until [matcher] recognises the
   reply.  The matcher must return [None] for [Delta] and
   backpressure [Error]s (they can interleave) and [Some] for its
   reply, including error replies. *)
let rpc (t : t) (sh : shard) (req : Wire.client_frame)
    (matcher : Wire.host_frame -> 'a option) : 'a =
  send_shard t sh req;
  flush_shard t sh;
  let result = ref None in
  let deadline = Unix.gettimeofday () +. 60. in
  while !result = None do
    (match next_shard_frame sh with
    | Some f -> (
        match matcher f with
        | Some r -> result := Some r
        | None -> route_shard_frame t sh f)
    | None ->
        if Unix.gettimeofday () > deadline then
          fatal "shard %s: no reply within 60s" sh.endpoint;
        t.pump ();
        (match Unix.select [ sh.sfd ] [] [] 0.001 with
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        read_shard sh)
  done;
  Option.get !result

(* ------------------------------------------------------------------ *)
(* Fleet-wide observation                                              *)
(* ------------------------------------------------------------------ *)

(* Every resident session's canonical observation, tagged with its
   global id, ascending. *)
let observe_fleet (t : t) : (int * string) list =
  let all =
    Array.to_list t.shards
    |> List.concat_map (fun sh ->
           let sessions =
             rpc t sh Wire.Observe (function
               | Wire.Observed { sessions } -> Some sessions
               | Wire.Error { code; msg } ->
                   fatal "shard %s: observe: error %d: %s" sh.endpoint code msg
               | _ -> None)
           in
           List.map
             (fun (local, obs) ->
               match Hashtbl.find_opt sh.locals local with
               | Some g -> (g, obs)
               | None ->
                   fatal "shard %s: unknown local session %d" sh.endpoint local)
             sessions)
  in
  List.sort (fun (a, _) (b, _) -> compare a b) all

(* Byte-compatible with {!Live_host.Registry.digest}: same per-session
   header, same id order (global ids are dense and spawn-ordered, like
   a single registry's). *)
let digest_of_observations (obs : (int * string) list) : string =
  let b = Buffer.create 4096 in
  List.iter
    (fun (g, o) ->
      Buffer.add_string b (Printf.sprintf "== session %d ==\n" g);
      Buffer.add_string b o)
    obs;
  Digest.to_hex (Digest.string (Buffer.contents b))

let fleet_digest (t : t) : string = digest_of_observations (observe_fleet t)

let shard_exports (t : t) : Host_metrics.exported list =
  Array.to_list t.shards
  |> List.map (fun sh ->
         let text =
           rpc t sh Wire.Stats_data (function
             | Wire.Metrics { text } -> Some text
             | Wire.Error { code; msg } ->
                 fatal "shard %s: stats: error %d: %s" sh.endpoint code msg
             | _ -> None)
         in
         match Host_metrics.import text with
         | Ok x -> x
         | Error m -> fatal "shard %s: bad metrics export: %s" sh.endpoint m)

(* The exact union of the shard exports, re-exported in the same
   format — raw counters and buckets, not precomputed quantiles. *)
let merged_export (exports : Host_metrics.exported list) : string =
  let m =
    Host_metrics.merge_all
      (List.map (fun x -> x.Host_metrics.x_metrics) exports)
  in
  let sessions =
    List.fold_left (fun acc x -> acc + x.Host_metrics.x_sessions) 0 exports
  in
  let pending =
    List.fold_left (fun acc x -> acc + x.Host_metrics.x_pending) 0 exports
  in
  let cache =
    if List.for_all (fun x -> x.Host_metrics.x_cache = None) exports then None
    else
      Some
        (List.fold_left
           (fun (h, ms) x ->
             let xh, xm = Option.value x.Host_metrics.x_cache ~default:(0, 0) in
             (h + xh, ms + xm))
           (0, 0) exports)
  in
  Host_metrics.export m ~sessions ~pending ~cache

(* ------------------------------------------------------------------ *)
(* Two-phase UPDATE                                                    *)
(* ------------------------------------------------------------------ *)

let ack_or_error (what : string) (sh : shard) : Wire.host_frame -> (string, string) result option
    = function
  | Wire.Ack { info } -> Some (Ok info)
  | Wire.Error { code = 6; msg } -> Some (Error msg)
  | Wire.Error { code; msg } ->
      fatal "shard %s: %s: error %d: %s" sh.endpoint what code msg
  | _ -> None

(* Prepare on every shard; if any refuses, abort the ones already
   prepared and report failure — all-or-nothing.  Otherwise commit
   everywhere.  No client frame is read while this runs, so the fleet
   is never observably mixed-epoch. *)
let update (t : t) (program : string) : (string, string) result =
  let txn = t.next_txn in
  t.next_txn <- txn + 1;
  let prepared = ref [] in
  let failure = ref None in
  Array.iter
    (fun sh ->
      if !failure = None then
        match rpc t sh (Wire.Prepare { txn; program }) (ack_or_error "prepare" sh) with
        | Ok _ -> prepared := sh :: !prepared
        | Error m -> failure := Some (sh.endpoint, m))
    t.shards;
  match !failure with
  | Some (ep, m) ->
      List.iter
        (fun sh ->
          match rpc t sh (Wire.Abort { txn }) (ack_or_error "abort" sh) with
          | Ok _ -> ()
          | Error m -> fatal "shard %s: abort refused: %s" sh.endpoint m)
        !prepared;
      t.d_updates_rejected <- t.d_updates_rejected + 1;
      Error (Printf.sprintf "prepare failed on %s: %s (fleet unchanged)" ep m)
  | None ->
      Array.iter
        (fun sh ->
          match rpc t sh (Wire.Commit { txn }) (ack_or_error "commit" sh) with
          | Ok _ -> ()
          | Error m ->
              (* a commit refusal after every shard prepared breaks the
                 protocol's promise; there is no good recovery *)
              fatal "shard %s: commit refused: %s" sh.endpoint m)
        t.shards;
      t.d_updates <- t.d_updates + 1;
      Ok
        (Printf.sprintf "txn %d committed on %d shards" txn
           (Array.length t.shards))

(* ------------------------------------------------------------------ *)
(* Live rebalance                                                      *)
(* ------------------------------------------------------------------ *)

let shard_load (t : t) : int array =
  Array.map (fun sh -> Hashtbl.length sh.locals) t.shards

(* Move one session: the lowest global id on the fullest shard goes to
   the emptiest, via detach -> snapshot -> resume.  The global id is
   unchanged; only the placement entry moves.  Returns whether the
   migrated snapshot carried pending events (in which case the fleet
   was not quiescent and the digest check downgrades to advisory). *)
let move_one (t : t) ~(src : shard) ~(dst : shard) : bool =
  let g, local =
    Hashtbl.fold
      (fun local g acc ->
        match acc with
        | Some (g0, _) when g0 <= g -> acc
        | _ -> Some (g, local))
      src.locals None
    |> function
    | Some x -> x
    | None -> fatal "rebalance: shard %s is empty" src.endpoint
  in
  let snapshot =
    rpc t src (Wire.Detach { session = local }) (function
      | Wire.Detached { session; snapshot } when session = local ->
          Some snapshot
      | Wire.Error { code; msg } ->
          fatal "shard %s: detach %d: error %d: %s" src.endpoint local code msg
      | _ -> None)
  in
  Hashtbl.remove src.locals local;
  let carried_pending =
    match Snapshot.of_string snapshot with
    | Ok snap -> snap.Snapshot.pending <> []
    | Error m -> fatal "rebalance: bad snapshot for %d: %s" g m
  in
  let new_local =
    rpc t dst (Wire.Resume { snapshot }) (function
      | Wire.Attach { session; width = _; frame = _ } -> Some session
      | Wire.Error { code; msg } ->
          fatal "shard %s: resume %d: error %d: %s" dst.endpoint g code msg
      | _ -> None)
  in
  Hashtbl.replace dst.locals new_local g;
  (match Hashtbl.find_opt t.sessions g with
  | Some p ->
      p.p_shard <- dst.sx;
      p.p_local <- new_local
  | None -> fatal "rebalance: no placement for %d" g);
  t.d_moved <- t.d_moved + 1;
  carried_pending

let rebalance (t : t) (count : int) : (string, string) result =
  t.d_rebalances <- t.d_rebalances + 1;
  if Array.length t.shards < 2 then Ok "moved 0 sessions (single shard)"
  else begin
    let before = observe_fleet t in
    let exports = shard_exports t in
    let quiescent =
      List.for_all (fun x -> x.Host_metrics.x_pending = 0) exports
    in
    let moved = ref 0 in
    let carried = ref false in
    (try
       for _ = 1 to count do
         let load = shard_load t in
         let argbest cmp =
           let best = ref 0 in
           Array.iteri (fun i _ -> if cmp load.(i) load.(!best) then best := i)
             load;
           !best
         in
         let src = argbest ( > ) and dst = argbest ( < ) in
         if src <> dst && load.(src) > 0 then begin
           if move_one t ~src:t.shards.(src) ~dst:t.shards.(dst) then
             carried := true;
           incr moved
         end
         else raise Exit
       done
     with Exit -> ());
    let after = observe_fleet t in
    let strict = quiescent && not !carried in
    let db = digest_of_observations before
    and da = digest_of_observations after in
    if strict then begin
      t.d_digest_checks <- t.d_digest_checks + 1;
      if not (String.equal db da) then begin
        t.d_digest_failures <- t.d_digest_failures + 1;
        Error
          (Printf.sprintf "digest mismatch after rebalance: %s -> %s" db da)
      end
      else
        Ok
          (Printf.sprintf "moved %d sessions, digest %s held" !moved da)
    end
    else
      Ok
        (Printf.sprintf
           "moved %d sessions (fleet not quiescent; digest advisory %s -> %s)"
           !moved db da)
  end

(* ------------------------------------------------------------------ *)
(* Aggregated stats                                                    *)
(* ------------------------------------------------------------------ *)

let aggregated_metrics (t : t) : string =
  let exports = shard_exports t in
  let merged = Host_metrics.merge_exported exports in
  let b = Buffer.create 1024 in
  Buffer.add_string b (Host_metrics.to_string merged);
  Buffer.add_string b
    (Printf.sprintf "director: %d shards, %d sessions\n"
       (Array.length t.shards) (Hashtbl.length t.sessions));
  Array.iter
    (fun sh ->
      Buffer.add_string b
        (Printf.sprintf "  shard %-24s %6d sessions\n" sh.endpoint
           (Hashtbl.length sh.locals)))
    t.shards;
  Buffer.add_string b
    (Printf.sprintf
       "  updates: %d committed, %d rejected; rebalance: %d runs, %d moved\n"
       t.d_updates t.d_updates_rejected t.d_rebalances t.d_moved);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Client frame handling                                               *)
(* ------------------------------------------------------------------ *)

let spawn_one (t : t) (c : conn) (client : string) : unit =
  let g = t.next_global in
  let sh = t.shards.(place t g) in
  let reply =
    rpc t sh (Wire.Hello { client; sessions = 1 }) (function
      | Wire.Attach { session; width; frame } -> Some (Ok (session, width, frame))
      | Wire.Error { code = (3 | 4 | 5) as code; msg } -> Some (Error (code, msg))
      | _ -> None)
  in
  match reply with
  | Error (code, msg) -> error t c code msg
  | Ok (local, width, frame) ->
      t.next_global <- g + 1;
      Hashtbl.replace sh.locals local g;
      Hashtbl.replace t.sessions g
        { p_shard = sh.sx; p_local = local; p_owner = Some c.fd };
      send_client t c (Wire.Host (Wire.Attach { session = g; width; frame }))

let handle_client_frame (t : t) (c : conn) (f : Wire.client_frame) : unit =
  match f with
  | Wire.Hello { client; sessions } ->
      if sessions < 1 then violation t c "Hello: sessions must be >= 1"
      else
        for _ = 1 to sessions do
          spawn_one t c client
        done
  | Wire.Event { session = g; ev } -> (
      match Hashtbl.find_opt t.sessions g with
      | Some p when p.p_owner = Some c.fd ->
          let sh = t.shards.(p.p_shard) in
          send_shard t sh (Wire.Event { session = p.p_local; ev });
          flush_shard_once sh
      | _ -> error t c 5 (string_of_int g))
  | Wire.Detach { session = g } -> (
      match Hashtbl.find_opt t.sessions g with
      | Some p when p.p_owner = Some c.fd ->
          let sh = t.shards.(p.p_shard) in
          let snapshot =
            rpc t sh (Wire.Detach { session = p.p_local }) (function
              | Wire.Detached { session; snapshot } when session = p.p_local ->
                  Some snapshot
              | Wire.Error { code; msg } ->
                  fatal "shard %s: detach: error %d: %s" sh.endpoint code msg
              | _ -> None)
          in
          Hashtbl.remove sh.locals p.p_local;
          Hashtbl.remove t.sessions g;
          send_client t c (Wire.Host (Wire.Detached { session = g; snapshot }))
      | _ -> error t c 5 (string_of_int g))
  | Wire.Resume { snapshot } -> (
      let g = t.next_global in
      let sh = t.shards.(place t g) in
      let reply =
        rpc t sh (Wire.Resume { snapshot }) (function
          | Wire.Attach { session; width; frame } ->
              Some (Ok (session, width, frame))
          | Wire.Error { code = (3 | 4) as code; msg } -> Some (Error (code, msg))
          | _ -> None)
      in
      match reply with
      | Error (code, msg) -> error t c code msg
      | Ok (local, width, frame) ->
          t.next_global <- g + 1;
          Hashtbl.replace sh.locals local g;
          Hashtbl.replace t.sessions g
            { p_shard = sh.sx; p_local = local; p_owner = Some c.fd };
          send_client t c
            (Wire.Host (Wire.Attach { session = g; width; frame })))
  | Wire.Stats ->
      send_client t c (Wire.Host (Wire.Metrics { text = aggregated_metrics t }))
  | Wire.Stats_data ->
      (* machine-readable aggregate: re-export the merged raw counters,
         so a director composes (a director of directors merges the
         same way a director of shards does) *)
      send_client t c
        (Wire.Host (Wire.Metrics { text = merged_export (shard_exports t) }))
  | Wire.Update { program } -> (
      match update t program with
      | Ok info -> send_client t c (Wire.Host (Wire.Ack { info }))
      | Error msg -> error t c 6 msg)
  | Wire.Rebalance { count } ->
      if count < 0 then violation t c "Rebalance: negative count"
      else (
        match rebalance t count with
        | Ok info -> send_client t c (Wire.Host (Wire.Ack { info }))
        | Error msg -> error t c 6 msg)
  | Wire.Observe ->
      send_client t c (Wire.Host (Wire.Observed { sessions = observe_fleet t }))
  | Wire.Prepare _ | Wire.Commit _ | Wire.Abort _ ->
      violation t c "shard transaction frame at the director"
  | Wire.Bye ->
      disown t c;
      c.closing <- true

(* ------------------------------------------------------------------ *)
(* The select loop                                                     *)
(* ------------------------------------------------------------------ *)

let drain_client_inbuf (t : t) (c : conn) : unit =
  let data = Buffer.contents c.inbuf in
  let len = String.length data in
  let off = ref 0 in
  let continue = ref true in
  while !continue && !off < len && not c.closing do
    match Wire.decode ~off:!off data with
    | Wire.Frame (Wire.Client f, consumed) ->
        t.d_frames_in <- t.d_frames_in + 1;
        off := !off + consumed;
        handle_client_frame t c f
    | Wire.Frame (Wire.Host _, consumed) ->
        ignore consumed;
        violation t c "host-tagged frame from a client";
        continue := false
    | Wire.Need_more -> continue := false
    | Wire.Corrupt m ->
        violation t c m;
        continue := false
  done;
  if !off > 0 || c.closing then begin
    let rest = if c.closing then "" else String.sub data !off (len - !off) in
    Buffer.clear c.inbuf;
    Buffer.add_string c.inbuf rest
  end

let client_read_chunk = Bytes.create 65536

let read_client (c : conn) : bool =
  let rec go () =
    match Unix.read c.fd client_read_chunk 0 (Bytes.length client_read_chunk) with
    | 0 -> false
    | n ->
        Buffer.add_subbytes c.inbuf client_read_chunk 0 n;
        if n = Bytes.length client_read_chunk then go () else true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> false
  in
  go ()

let flush_client (c : conn) : bool =
  let rec go () =
    match Queue.peek_opt c.outq with
    | None -> true
    | Some s -> (
        let remaining = String.length s - c.out_off in
        match Unix.write_substring c.fd s c.out_off remaining with
        | n ->
            if n = remaining then begin
              ignore (Queue.pop c.outq);
              c.out_off <- 0;
              go ()
            end
            else begin
              c.out_off <- c.out_off + n;
              true
            end
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ -> false)
  in
  go ()

let accept_loop (t : t) : bool =
  let accepted = ref false in
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        Hashtbl.replace t.conns fd
          {
            fd;
            inbuf = Buffer.create 4096;
            outq = Queue.create ();
            out_off = 0;
            closing = false;
          };
        t.d_accepted <- t.d_accepted + 1;
        accepted := true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
  done;
  !accepted

let step ?(timeout = 0.05) (t : t) : bool =
  if t.stopped then false
  else begin
    let reads = ref [ t.listen_fd ] in
    Array.iter (fun sh -> reads := sh.sfd :: !reads) t.shards;
    let writes = ref [] in
    Hashtbl.iter
      (fun fd c ->
        if not c.closing then reads := fd :: !reads;
        if not (Queue.is_empty c.outq) then writes := fd :: !writes)
      t.conns;
    Array.iter
      (fun sh -> if not (Queue.is_empty sh.s_out) then writes := sh.sfd :: !writes)
      t.shards;
    let rec select_retry () =
      try Unix.select !reads !writes [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> select_retry ()
    in
    let readable, writable, _ = select_retry () in
    let worked = ref false in
    if List.mem t.listen_fd readable then
      if accept_loop t then worked := true;
    (* shard traffic first: deltas route into client out-queues.  The
       decode loop runs whether or not the socket is readable — an rpc
       may have left complete frames (repaint deltas that rode in
       behind its reply) sitting in the buffer with nothing new on the
       wire. *)
    Array.iter
      (fun sh ->
        if List.mem sh.sfd readable then read_shard sh;
        let continue = ref true in
        while !continue do
          match next_shard_frame sh with
          | Some f ->
              worked := true;
              route_shard_frame t sh f
          | None -> continue := false
        done)
      t.shards;
    (* client frames, which may fan control exchanges out to shards *)
    List.iter
      (fun fd ->
        if fd <> t.listen_fd then
          match Hashtbl.find_opt t.conns fd with
          | None -> ()
          | Some c ->
              worked := true;
              if read_client c then drain_client_inbuf t c else drop_conn t c)
      readable;
    (* egress both ways *)
    Array.iter (fun sh -> flush_shard_once sh) t.shards;
    ignore writable;
    let dead = ref [] in
    Hashtbl.iter
      (fun _ c ->
        if not (Queue.is_empty c.outq) || c.closing then begin
          if not (flush_client c) then dead := c :: !dead
          else if c.closing && Queue.is_empty c.outq then dead := c :: !dead
        end)
      t.conns;
    List.iter (fun c -> drop_conn t c) !dead;
    !worked
  end

let run ~(until : unit -> bool) (t : t) : unit =
  while not (until ()) && not t.stopped do
    ignore (step t)
  done

type stats = {
  shards : int;
  sessions : int;
  per_shard : (string * int) list;
  accepted : int;
  frames_in : int;
  frames_out : int;
  updates_committed : int;
  updates_rejected : int;
  rebalances : int;
  sessions_moved : int;
  digest_checks : int;
  digest_failures : int;
  corrupt : int;
}

let stats (t : t) : stats =
  {
    shards = Array.length t.shards;
    sessions = Hashtbl.length t.sessions;
    per_shard =
      Array.to_list t.shards
      |> List.map (fun sh -> (sh.endpoint, Hashtbl.length sh.locals));
    accepted = t.d_accepted;
    frames_in = t.d_frames_in;
    frames_out = t.d_frames_out;
    updates_committed = t.d_updates;
    updates_rejected = t.d_updates_rejected;
    rebalances = t.d_rebalances;
    sessions_moved = t.d_moved;
    digest_checks = t.d_digest_checks;
    digest_failures = t.d_digest_failures;
    corrupt = t.d_corrupt;
  }

let stop (t : t) : unit =
  if not t.stopped then begin
    t.stopped <- true;
    Array.iter
      (fun sh -> try Unix.close sh.sfd with Unix.Unix_error _ -> ())
      t.shards;
    Hashtbl.iter
      (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      t.conns;
    Hashtbl.reset t.conns;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    try Unix.unlink t.path with Unix.Unix_error _ -> ()
  end
