(** Canonical session snapshots: the persistence half of detach/resume
    (DESIGN.md §12.3).

    A snapshot is the complete durable identity of a session — the
    code [C], the store [S], the page stack [P], the interaction
    trace, the engine configuration (width, fuel, evaluator, caches),
    a still-armed queue fault, and any events taken from the host's
    ingress queue but not yet served.  The display and pixels are
    deliberately {e not} serialized: RENDER re-derives them
    deterministically on restore ({!Live_runtime.Session.restore}), so
    a restored session is byte-identical to one that never detached —
    the oracle's ["host-net"] configuration and [test/test_net.ml]
    enforce exactly that.

    The text format is a canonical s-expression (grammar in
    DESIGN.md §12.3): one snapshot value has exactly one printed
    image, so [of_string (to_string s)] re-prints byte-identically —
    snapshots can be diffed, digested and checked into a repository.
    Floats are printed as C99 hex-float literals ([%h]), which
    round-trip every bit pattern including negative zero. *)

type t = {
  width : int;
  fuel : int;
  incremental : bool;  (** the Sec. 5 layout-reuse cache was on *)
  cache : bool;  (** the end-to-end render cache was on *)
  evaluator : Live_core.Machine.evaluator;
  program : Live_core.Program.t;
  store : (Live_core.Ident.global * Live_core.Ast.value) list;
      (** assigned globals, in {!Live_core.Store.bindings} order *)
  stack : (Live_core.Ident.page * Live_core.Ast.value) list;
      (** page stack, top last (as in {!Live_core.State}) *)
  trace : Live_runtime.Trace.t;
  fault : Live_runtime.Session.fault option;
  pending : Wire.event list;
      (** events taken from the ingress queue but not yet served;
          re-offered in order after resume *)
}

val of_session : ?pending:Wire.event list -> Live_runtime.Session.t -> t
(** Capture a session.  The session is read, not consumed — the
    caller (the server's [Detach] path) kills it separately. *)

val to_string : t -> string
(** The canonical text.  Total on values produced by {!of_session} or
    {!of_string}. *)

val of_string : string -> (t, string) result
(** Parse canonical text.  Total: malformed input is [Error reason],
    never an exception.  [to_string] of the result is byte-identical
    to [to_string] of the value that produced the input. *)

val program_to_string : Live_core.Program.t -> string
(** Canonical text of a bare program — the same [(program def ...)]
    s-expression a full snapshot embeds, for shipping code over the
    wire ([Update] / [Prepare] frames). *)

val program_of_string : string -> (Live_core.Program.t, string) result
(** Parse {!program_to_string} text.  Total: malformed input is
    [Error reason], never an exception. *)

val program_equal : Live_core.Program.t -> Live_core.Program.t -> bool
(** Structural equality of programs, definition by definition — used
    by {!restore} to decide whether a host-supplied program is the
    same code the snapshot carries. *)

val restore :
  ?program:Live_core.Program.t ->
  t ->
  (Live_runtime.Session.t, string) result
(** Rebuild a live session from a snapshot and drive it to stability.
    [program], when given and {!program_equal} to the snapshot's code,
    is used in its place — the server passes the registry's current
    program so a resumed session shares it {e physically} (the
    registry's epoch accounting compares code by identity).  A
    [program] that differs structurally is ignored; the caller decides
    whether to then UPDATE the resumed session to the host's code.
    Pending events are {e not} re-offered here ({!pending} is data);
    the server re-offers them through its normal ingress path. *)

val save : string -> t -> unit
(** Write [to_string] to a file (atomically: temp file + rename). *)

val load : string -> (t, string) result
