(** The binary wire protocol between a client and the networked host
    (DESIGN.md §12).

    Framing: every frame is a 4-byte big-endian length prefix followed
    by a body of exactly that many bytes; the body starts with a
    protocol {!version} byte and a tag byte, then the tag's payload.
    Integers are unsigned 32-bit big-endian; strings and blobs are a
    u32 length followed by raw bytes.  The encoding is {e canonical}:
    a frame has exactly one wire image, so [decode (encode f) = f] and
    re-encoding a decoded frame is byte-identical — the round-trip
    property [test/test_net.ml] checks by qcheck and pins with a
    golden file.

    {!decode} never raises: truncated input is {!Need_more} (feed more
    bytes and retry), and anything malformed — a bad version byte, an
    unknown tag, an over-long length, trailing payload bytes — is
    {!Corrupt} with a reason, which the server answers with an
    [Error] frame before closing the connection. *)

val version : int
(** Protocol version byte, bumped on any wire-visible change. *)

val max_frame : int
(** Upper bound on a frame body's length; a length prefix beyond it is
    {!Corrupt} (a garbage prefix must not trigger a giant allocation). *)

(** A user event on the wire — the client-side counterpart of
    {!Live_host.Registry.uevent}: a tap by screen coordinates (the
    paper's TAP, which pushes/execs through the handler it hits) or
    BACK (pop). *)
type event = Ev_tap of { x : int; y : int } | Ev_back

(** Client → host. *)
type client_frame =
  | Hello of { client : string; sessions : int }
      (** open the conversation; the host spawns [sessions] fresh
          sessions (at least 1) and answers each with [Attach] *)
  | Event of { session : int; ev : event }
      (** one user event for one of this connection's sessions *)
  | Detach of { session : int }
      (** stop serving the session and send back its canonical
          {!Snapshot} as [Detached]; the session leaves the fleet *)
  | Resume of { snapshot : string }
      (** re-enter a detached session from its snapshot text (same or
          different host process); answered with [Attach] *)
  | Stats  (** ask for a [Metrics] frame *)
  | Bye
      (** orderly goodbye; the connection closes but its sessions live
          on in the fleet, unattached — only [Detach] removes one *)
  | Update of { program : string }
      (** one-shot fleet-wide UPDATE: replace the host program with the
          parsed {!Snapshot.program_of_string} text and broadcast to
          every session; answered with [Ack] or [Error] code 6.  At a
          director this runs the two-phase protocol across all shards. *)
  | Prepare of { txn : int; program : string }
      (** phase one of a cross-shard UPDATE (director → shard): diff,
          typecheck, compile and open the new epoch without applying it
          ({!Live_host.Rollout.begin_}).  Answered with [Ack] or [Error]
          code 6; at most one transaction may be open per shard. *)
  | Commit of { txn : int }
      (** phase two: promote the prepared epoch to the whole shard
          fleet atomically; [txn] must match the open [Prepare] *)
  | Abort of { txn : int }
      (** roll the prepared epoch back; every session stays on the old
          code *)
  | Observe
      (** ask for an [Observed] frame: the canonical observation text
          of every resident session, in session-id order — the fleet
          digest's raw material *)
  | Rebalance of { count : int }
      (** director only: migrate [count] sessions from the fullest to
          the emptiest shard via detach → snapshot → resume, proving
          byte-identical fleet digests before and after; answered with
          [Ack] or [Error] code 6 *)
  | Stats_data
      (** ask for a [Metrics] frame carrying the machine-readable
          {!Live_host.Host_metrics.export} text instead of the human
          dump — what a director merges across shards *)

(** Host → client. *)
type host_frame =
  | Attach of { session : int; width : int; frame : string }
      (** a session is now served on this connection; [frame] is the
          full framebuffer text (one row per line) *)
  | Delta of {
      session : int;
      height : int;
      acks : int;
      rows : (int * string) list;
    }
      (** damage-masked repaint after the session was served: the new
          frame height and only the rows whose text changed.  [acks] is
          the number of this session's offered events consumed since the
          last delta — the pipelining credit return; a server may batch
          several events into one delta, so one frame can acknowledge
          many ([acks] = 0 for unsolicited repaints, e.g. a broadcast
          UPDATE).  An empty [rows] with [acks] > 0 still acknowledges
          the served events (the frame was byte-identical).  Applying a
          delta: resize to [height] rows (new rows blank), then
          overwrite the listed rows. *)
  | Detached of { session : int; snapshot : string }
      (** reply to [Detach]: the canonical snapshot text *)
  | Error of { code : int; msg : string }
      (** [code] 1 = protocol violation (fatal, connection closes),
          2 = event rejected by backpressure, 3 = bad snapshot,
          4 = resume failed, 5 = unknown session, 6 = update / prepare
          / rebalance refused (nothing changed) *)
  | Metrics of { text : string }
      (** the fleet {!Live_host.Host_metrics} dump ([Stats]) or its
          machine-readable export ([Stats_data]) *)
  | Ack of { info : string }
      (** success reply to [Update] / [Prepare] / [Commit] / [Abort] /
          [Rebalance], with a short human-readable summary *)
  | Observed of { sessions : (int * string) list }
      (** reply to [Observe]: (session id, canonical observation text)
          for every resident session, in ascending id order *)

type frame = Client of client_frame | Host of host_frame

val equal : frame -> frame -> bool
val pp : Format.formatter -> frame -> unit

val encode : frame -> string
(** Full wire bytes, length prefix included.
    @raise Invalid_argument on out-of-range fields (negative ids, a
    blob longer than {!max_frame}) — encoder inputs are trusted,
    decoder inputs are not. *)

val encode_into : scratch:Buffer.t -> Buffer.t -> frame -> unit
(** Append the full wire bytes of a frame to a destination buffer,
    building the body in the caller-owned [scratch] (cleared first) —
    the allocation-free path for a connection that reuses one scratch
    and stages all of a tick's frames into one outbound buffer.
    [encode f] ≡ fresh buffers + [encode_into]; byte-identical.
    @raise Invalid_argument as {!encode}. *)

(** One step of decoding a byte stream. *)
type decoded =
  | Frame of frame * int
      (** a complete frame and the total bytes consumed (prefix
          included); continue decoding at [off + consumed] *)
  | Need_more  (** the buffer holds a prefix of a frame; read more *)
  | Corrupt of string  (** malformed input; the stream is dead *)

val decode : ?off:int -> string -> decoded
(** Decode one frame starting at [off] (default 0).  Total function:
    never raises, whatever the bytes are. *)

(** {2 Raw relay}

    The director's zero-copy fast path: look at a frame's envelope
    (length, version, tag, and — for session-addressed tags — the
    session id at a fixed offset) without decoding the payload, then
    forward the original bytes, patching only the id.  {!peek} is
    exactly as strict as {!decode} about framing (length bounds,
    version byte) but does {e not} validate the payload, so a relay
    must only fast-path tags whose payload it either trusts (its own
    shards) or has validated byte-wise ({!event_payload_ok}). *)

(** A complete frame located in a buffer: its start offset, total byte
    count (length prefix included), tag, and the session id for
    session-addressed tags ([-1] otherwise). *)
type raw = { r_off : int; r_total : int; r_tag : int; r_session : int }

type peeked = Raw of raw | Raw_need_more | Raw_corrupt of string

val session_addressed : int -> bool
(** Tags whose payload begins with a session id (frame offset 6):
    Event 0x02, Detach 0x03, Attach 0x81, Delta 0x82, Detached 0x83. *)

val peek : ?off:int -> string -> peeked
(** Locate one frame starting at [off] without decoding its payload.
    Agrees with {!decode} on framing verdicts: [Raw_need_more] iff
    decode says [Need_more]; a [Raw_corrupt] is always [Corrupt] to
    decode (the converse doesn't hold — a corrupt {e payload} peeks
    fine).  Never raises. *)

val relay : Buffer.t -> string -> raw -> unit
(** Append the frame's original bytes to the buffer, unchanged. *)

val relay_rewrite : Buffer.t -> string -> raw -> session:int -> unit
(** Append the frame's bytes with the session-id field replaced by
    [session] — byte-identical to decode → substitute id → re-encode,
    without touching the payload (qcheck-pinned in test_net).
    @raise Invalid_argument if the tag is not session-addressed. *)

val event_payload_ok : string -> raw -> bool
(** Byte-level validation of an [Event] frame's payload (exact length
    for its event kind, known kind byte, in-range coordinates): [true]
    iff {!decode} would accept it — what lets a director relay a
    client's event bytes to a shard without decoding them. *)

val apply_delta : string array -> height:int -> rows:(int * string) list -> string array
(** Client-side delta application: resize the previous frame's rows to
    [height] (new rows blank) and overwrite the listed rows — the
    reconstruction rule [Delta] is defined against. *)

val delta_of_frames : prev:string array -> string array -> (int * string) list
(** The rows of the new frame that differ from [prev] (rows beyond
    [prev]'s height count as blank) — the server's damage unit.
    [apply_delta prev ~height:(Array.length next) ~rows:(delta_of_frames
    ~prev next) = next]. *)

val rows_of_text : string -> string array
(** Split a framebuffer text dump (one row per line, trailing newline)
    into rows. *)
