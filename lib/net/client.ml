(** Lockstep load client (see the interface).  Everything is driven
    from one thread: nonblocking sockets, a poll loop that interleaves
    the caller's [pump] (the in-process server's [step]) with reads,
    and an internal exception for the fatal paths that {!run} catches
    into a [result]. *)

module Host_metrics = Live_host.Host_metrics

exception Fail of string

let fail fmt = Printf.ksprintf (fun m -> raise (Fail m)) fmt

type cstate = {
  fd : Unix.file_descr;
  mutable up : bool;  (** connected — only these fds are selectable *)
  inbuf : Buffer.t;
  mutable in_off : int;  (** decode offset into [inbuf] *)
  (* session id -> slot, for every slot currently homed on this
     connection *)
  slots : (int, int) Hashtbl.t;
  (* slots awaiting an [Attach] on this connection, in send order —
     the server spawns in request order, so Attaches pair up FIFO *)
  attach_q : int Queue.t;
}

type report = {
  rounds : int;
  events_sent : int;
  rejected : int;
  latency : Host_metrics.histogram;
  bytes_in : int;
  bytes_out : int;
  frames_in : int;
  frames_out : int;
  delta_rows : int;
  full_rows : int;
  detaches : int;
  resumes : int;
  session_ids : int list;
  frames : string array array;
  metrics : string option;
}

type st = {
  conns : cstate array;
  pump : unit -> unit;
  window : int;  (** max in-flight events per slot *)
  slot_conn : int array;  (** slot -> connection index *)
  slot_id : int array;  (** slot -> current server-side session id *)
  slot_frame : string array array;  (** slot -> reconstructed rows *)
  slot_sent_at : float Queue.t array;
      (** send timestamps of the slot's in-flight events, oldest first —
          credits come back in send order (the server consumes a
          session's events FIFO), so each ack pops the head *)
  slot_inflight : int array;
  latency : Host_metrics.histogram;
  mutable events_sent : int;
  mutable rejected : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable frames_in : int;
  mutable frames_out : int;
  mutable delta_rows : int;
  mutable full_rows : int;
  mutable detaches : int;
  mutable resumes : int;
  (* out-of-band expectations, keyed by connection index *)
  mutable expect_detached : (int * int * string option ref) option;
      (** (conn, slot, cell): the next Detached on [conn] fills [cell] *)
  mutable metrics_cell : string option;
}

let now_ns () = Unix.gettimeofday () *. 1e9

(* ------------------------------------------------------------------ *)
(* I/O                                                                 *)
(* ------------------------------------------------------------------ *)

let send_all (t : st) (c : cstate) (frame : Wire.frame) : unit =
  let bytes = Wire.encode frame in
  let len = String.length bytes in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring c.fd bytes !off (len - !off) with
    | n ->
        off := !off + n;
        t.bytes_out <- t.bytes_out + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (* the server isn't reading yet: give it the thread *)
        t.pump ();
        (try ignore (Unix.select [] [ c.fd ] [] 0.01)
         with Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
        fail "write: %s" (Unix.error_message e)
  done;
  t.frames_out <- t.frames_out + 1

let read_chunk = Bytes.create 65536

let read_available (t : st) (c : cstate) : unit =
  let rec go () =
    match Unix.read c.fd read_chunk 0 (Bytes.length read_chunk) with
    | 0 -> fail "server closed the connection"
    | n ->
        t.bytes_in <- t.bytes_in + n;
        Buffer.add_subbytes c.inbuf read_chunk 0 n;
        if n = Bytes.length read_chunk then go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (e, _, _) ->
        fail "read: %s" (Unix.error_message e)
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Frame dispatch                                                      *)
(* ------------------------------------------------------------------ *)

let slot_of_session (t : st) (ci : int) (session : int) : int =
  match Hashtbl.find_opt t.conns.(ci).slots session with
  | Some slot -> slot
  | None -> fail "server spoke of unknown session %d" session

(* Return [n] credits to the slot: pop that many send timestamps
   (oldest first) and record each latency.  A server batching several
   events into one delta acks them all at once; a broadcast repaint
   acks none. *)
let return_credits (t : st) (slot : int) (n : int) : unit =
  let q = t.slot_sent_at.(slot) in
  for _ = 1 to min n (Queue.length q) do
    t.slot_inflight.(slot) <- t.slot_inflight.(slot) - 1;
    Host_metrics.record t.latency (now_ns () -. Queue.pop q)
  done

let apply_delta_frame (t : st) (ci : int) ~session ~height ~acks ~rows : unit =
  let slot = slot_of_session t ci session in
  t.delta_rows <- t.delta_rows + List.length rows;
  t.full_rows <- t.full_rows + height;
  t.slot_frame.(slot) <- Wire.apply_delta t.slot_frame.(slot) ~height ~rows;
  return_credits t slot acks

let handle_host_frame (t : st) (ci : int) (f : Wire.host_frame) : unit =
  match f with
  | Wire.Delta { session; height; acks; rows } ->
      apply_delta_frame t ci ~session ~height ~acks ~rows
  | Wire.Attach { session; width = _; frame } -> (
      match Queue.take_opt t.conns.(ci).attach_q with
      | Some slot ->
          Hashtbl.replace t.conns.(ci).slots session slot;
          t.slot_id.(slot) <- session;
          t.slot_frame.(slot) <- Wire.rows_of_text frame
      | None -> fail "unexpected Attach for session %d" session)
  | Wire.Detached { session; snapshot } -> (
      match t.expect_detached with
      | Some (eci, slot, cell) when eci = ci && t.slot_id.(slot) = session ->
          t.expect_detached <- None;
          cell := Some snapshot;
          Hashtbl.remove t.conns.(ci).slots session
      | _ -> fail "unexpected Detached for session %d" session)
  | Wire.Error { code = 2; msg } -> (
      (* backpressure rejection; msg leads with the session id *)
      match int_of_string_opt (List.hd (String.split_on_char ' ' msg)) with
      | Some session ->
          let slot = slot_of_session t ci session in
          if t.slot_inflight.(slot) = 0 then
            fail "stray backpressure rejection for session %d" session;
          (* the rejection answers exactly one offered event *)
          t.rejected <- t.rejected + 1;
          return_credits t slot 1
      | None -> fail "malformed backpressure rejection %S" msg)
  | Wire.Error { code; msg } -> fail "host error %d: %s" code msg
  | Wire.Metrics { text } -> t.metrics_cell <- Some text
  | Wire.Ack { info } -> fail "unexpected Ack %S" info
  | Wire.Observed _ -> fail "unexpected Observed"

let dispatch (t : st) (ci : int) : unit =
  let c = t.conns.(ci) in
  let data = Buffer.contents c.inbuf in
  let len = String.length data in
  let continue = ref true in
  while !continue && c.in_off < len do
    match Wire.decode ~off:c.in_off data with
    | Wire.Frame (Wire.Host f, consumed) ->
        c.in_off <- c.in_off + consumed;
        t.frames_in <- t.frames_in + 1;
        handle_host_frame t ci f
    | Wire.Frame (Wire.Client _, _) -> fail "client-tagged frame from the host"
    | Wire.Need_more -> continue := false
    | Wire.Corrupt m -> fail "corrupt frame from the host: %s" m
  done;
  if c.in_off > 0 && c.in_off = Buffer.length c.inbuf then begin
    Buffer.clear c.inbuf;
    c.in_off <- 0
  end

(* One poll iteration: pump the in-process server, then read whatever
   arrived.  Returns whether any bytes came in. *)
let poll (t : st) : bool =
  t.pump ();
  let fds =
    Array.to_list t.conns
    |> List.filter_map (fun c -> if c.up then Some c.fd else None)
  in
  if fds = [] then false
  else
  match
    (try Unix.select fds [] [] 0.001
     with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], []))
  with
  | [], _, _ -> false
  | readable, _, _ ->
      List.iter
        (fun fd ->
          Array.iteri
            (fun ci c ->
              if c.fd = fd then begin
                read_available t c;
                dispatch t ci
              end)
            t.conns)
        readable;
      true

let poll_until (t : st) ~(what : string) (done_ : unit -> bool) : unit =
  let spins = ref 0 in
  while not (done_ ()) do
    if not (poll t) then begin
      incr spins;
      if !spins > 30_000 then fail "timed out waiting for %s" what
    end
    else spins := 0
  done

(* ------------------------------------------------------------------ *)
(* The run                                                             *)
(* ------------------------------------------------------------------ *)

let run ~socket ~conns ~sessions ~rounds ~gen ?(window = 1)
    ?(barrier = fun _ -> true) ?detach_every ?(on_round = fun _ -> ())
    ?(pump = fun () -> ()) ?(stats = false) () : (report, string) result =
  if conns < 1 then Error "conns must be >= 1"
  else if sessions < conns then Error "sessions must be >= conns"
  else if window < 1 then Error "window must be >= 1"
  else begin
    (* a host hanging up mid-write must surface as EPIPE (→ [Error]),
       not kill the client process *)
    if Sys.os_type = "Unix" then
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let t =
      {
        conns =
          Array.init conns (fun _ ->
              {
                fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0;
                up = false;
                inbuf = Buffer.create 4096;
                in_off = 0;
                slots = Hashtbl.create 8;
                attach_q = Queue.create ();
              });
        pump;
        window;
        slot_conn = Array.make sessions 0;
        slot_id = Array.make sessions (-1);
        slot_frame = Array.make sessions [||];
        slot_sent_at = Array.init sessions (fun _ -> Queue.create ());
        slot_inflight = Array.make sessions 0;
        latency = Host_metrics.histogram ();
        events_sent = 0;
        rejected = 0;
        bytes_in = 0;
        bytes_out = 0;
        frames_in = 0;
        frames_out = 0;
        delta_rows = 0;
        full_rows = 0;
        detaches = 0;
        resumes = 0;
        expect_detached = None;
        metrics_cell = None;
      }
    in
    let close_all () =
      Array.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        t.conns
    in
    match
      (* Slot layout: contiguous blocks, connection by connection. *)
      let base = sessions / conns and extra = sessions mod conns in
      let slot = ref 0 in
      let block ci = base + if ci < extra then 1 else 0 in
      Array.iteri
        (fun ci c ->
          pump ();
          Unix.connect c.fd (Unix.ADDR_UNIX socket);
          Unix.set_nonblock c.fd;
          c.up <- true;
          let k = block ci in
          let first = !slot in
          for s = first to first + k - 1 do
            t.slot_conn.(s) <- ci
          done;
          slot := first + k;
          send_all t c
            (Wire.Client (Wire.Hello { client = "live-load"; sessions = k }));
          (* Attaches arrive in spawn order: hand them to slots
             first..first+k-1 FIFO. *)
          for s = first to first + k - 1 do
            Queue.add s c.attach_q
          done;
          poll_until t ~what:"Attach" (fun () -> Queue.is_empty c.attach_q))
        t.conns;
      (* Rounds.  With [window] = 1 every round is a full barrier —
         the original lockstep.  With a wider window, each slot keeps
         up to [window] events in flight and only the declared barrier
         rounds (plus detach rounds and the final round) drain the
         pipe before [on_round] runs at a quiescent fleet. *)
      for round = 0 to rounds - 1 do
        let detach_round =
          match detach_every with
          | Some k when k > 0 && (round + 1) mod k = 0 -> true
          | _ -> false
        in
        let is_barrier =
          t.window = 1 || detach_round || round = rounds - 1 || barrier round
        in
        for s = 0 to sessions - 1 do
          let ev = gen ~slot:s ~round in
          if t.slot_inflight.(s) >= t.window then
            poll_until t ~what:"window credit" (fun () ->
                t.slot_inflight.(s) < t.window);
          Queue.add (now_ns ()) t.slot_sent_at.(s);
          t.slot_inflight.(s) <- t.slot_inflight.(s) + 1;
          send_all t
            t.conns.(t.slot_conn.(s))
            (Wire.Client (Wire.Event { session = t.slot_id.(s); ev }));
          t.events_sent <- t.events_sent + 1
        done;
        if is_barrier then begin
          poll_until t ~what:"round answers" (fun () ->
              Array.for_all (fun n -> n = 0) t.slot_inflight);
          (if detach_round then
             match detach_every with
             | Some k ->
                 let s = round / k mod sessions in
                 let ci = t.slot_conn.(s) in
                 let cell = ref None in
                 t.expect_detached <- Some (ci, s, cell);
                 send_all t t.conns.(ci)
                   (Wire.Client (Wire.Detach { session = t.slot_id.(s) }));
                 poll_until t ~what:"Detached" (fun () -> !cell <> None);
                 t.detaches <- t.detaches + 1;
                 let snapshot = Option.get !cell in
                 Queue.add s t.conns.(ci).attach_q;
                 send_all t t.conns.(ci)
                   (Wire.Client (Wire.Resume { snapshot }));
                 poll_until t ~what:"Attach after Resume" (fun () ->
                     Queue.is_empty t.conns.(ci).attach_q);
                 t.resumes <- t.resumes + 1
             | None -> ());
          on_round round
        end
      done;
      (* Settle: collect any unsolicited broadcast deltas still in
         flight. *)
      let quiet = ref 0 in
      while !quiet < 25 do
        if poll t then quiet := 0 else incr quiet
      done;
      if stats then begin
        send_all t t.conns.(0) (Wire.Client Wire.Stats);
        poll_until t ~what:"Metrics" (fun () -> t.metrics_cell <> None)
      end;
      Array.iter (fun c -> send_all t c (Wire.Client Wire.Bye)) t.conns
    with
    | () ->
        close_all ();
        Ok
          {
            rounds;
            events_sent = t.events_sent;
            rejected = t.rejected;
            latency = t.latency;
            bytes_in = t.bytes_in;
            bytes_out = t.bytes_out;
            frames_in = t.frames_in;
            frames_out = t.frames_out;
            delta_rows = t.delta_rows;
            full_rows = t.full_rows;
            detaches = t.detaches;
            resumes = t.resumes;
            session_ids = Array.to_list t.slot_id;
            frames = t.slot_frame;
            metrics = t.metrics_cell;
          }
    | exception Fail m ->
        close_all ();
        Error m
    | exception Unix.Unix_error (e, fn, _) ->
        close_all ();
        Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  end
