(** The networked host (see the interface).  Single-threaded and
    [select]-based: every connection is nonblocking, reads accumulate
    in a per-connection buffer that {!Wire.decode} consumes frame by
    frame.  Egress is coalesced: every frame sent during a tick is
    encoded (via a per-connection scratch, no per-frame allocation)
    into one staging buffer, which flush promotes to a single write —
    so a tick's worth of deltas costs one syscall per connection, and
    a slow client never blocks the fleet. *)

module Registry = Live_host.Registry
module Scheduler = Live_host.Scheduler
module Backpressure = Live_host.Backpressure
module Host_metrics = Live_host.Host_metrics
module Broadcast = Live_host.Broadcast
module Rollout = Live_host.Rollout
module Session = Live_runtime.Session

(* Per-session client-side view: the rows this connection last saw
   (the baseline every Delta is diffed against) and the number of
   offered-but-not-yet-acknowledged events — returned to the client as
   the next Delta's [acks], the pipelining credit scheme. *)
type view = {
  mutable last : string array;
  mutable dirty : bool;
  mutable unacked : int;
}

type conn = {
  fd : Unix.file_descr;
  mutable inbuf : Buffer.t;
  mutable out_pending : string;
      (** the write in flight; bytes before [out_off] are sent *)
  mutable out_off : int;
  out_staging : Buffer.t;
      (** frames staged since the last promote — one tick's egress,
          flushed as a single write *)
  scratch : Buffer.t;  (** body scratch for {!Wire.encode_into} *)
  views : (Registry.id, view) Hashtbl.t;
  mutable closing : bool;  (** close once the out buffers drain *)
}

let has_output (c : conn) : bool =
  String.length c.out_pending > c.out_off || Buffer.length c.out_staging > 0

type stats = {
  accepted : int;
  connections : int;
  frames_in : int;
  frames_out : int;
  bytes_in : int;
  bytes_out : int;
  deltas_sent : int;
  delta_rows_sent : int;
  full_rows : int;
  detaches : int;
  resumes : int;
  corrupt : int;
}

type t = {
  reg : Registry.t;
  sched : Scheduler.t;
  listen_fd : Unix.file_descr;
  path : string;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  mutable pending_rollout : (int * Rollout.t) option;
      (** the open cross-shard UPDATE transaction, at most one:
          [Prepare]d but not yet [Commit]ted or [Abort]ed *)
  mutable stopped : bool;
  mutable s_accepted : int;
  mutable s_frames_in : int;
  mutable s_frames_out : int;
  mutable s_bytes_in : int;
  mutable s_bytes_out : int;
  mutable s_deltas : int;
  mutable s_delta_rows : int;
  mutable s_full_rows : int;
  mutable s_detaches : int;
  mutable s_resumes : int;
  mutable s_corrupt : int;
}

let create ?(config = Registry.default_config) ?batch ~socket
    (program : Live_core.Program.t) : t =
  (* a peer hanging up mid-write must surface as EPIPE on the write
     (handled per-connection), not kill the whole host *)
  if Sys.os_type = "Unix" then
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let reg = Registry.create ~config program in
  let sched = Scheduler.create ?batch reg in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  (try
     Unix.bind fd (Unix.ADDR_UNIX socket);
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  {
    reg;
    sched;
    listen_fd = fd;
    path = socket;
    conns = Hashtbl.create 16;
    pending_rollout = None;
    stopped = false;
    s_accepted = 0;
    s_frames_in = 0;
    s_frames_out = 0;
    s_bytes_in = 0;
    s_bytes_out = 0;
    s_deltas = 0;
    s_delta_rows = 0;
    s_full_rows = 0;
    s_detaches = 0;
    s_resumes = 0;
    s_corrupt = 0;
  }

let registry (t : t) = t.reg
let scheduler (t : t) = t.sched

let stats (t : t) : stats =
  {
    accepted = t.s_accepted;
    connections = Hashtbl.length t.conns;
    frames_in = t.s_frames_in;
    frames_out = t.s_frames_out;
    bytes_in = t.s_bytes_in;
    bytes_out = t.s_bytes_out;
    deltas_sent = t.s_deltas;
    delta_rows_sent = t.s_delta_rows;
    full_rows = t.s_full_rows;
    detaches = t.s_detaches;
    resumes = t.s_resumes;
    corrupt = t.s_corrupt;
  }

let send (t : t) (c : conn) (f : Wire.frame) : unit =
  Wire.encode_into ~scratch:c.scratch c.out_staging f;
  t.s_frames_out <- t.s_frames_out + 1

(* Close the connection now.  Its sessions stay in the fleet — session
   lifetime is decoupled from connection lifetime (the whole point of
   the persistence layer): a vanished client's sessions keep running
   and remain observable; only an explicit [Detach] takes one out. *)
let drop_conn (t : t) (c : conn) : unit =
  Hashtbl.reset c.views;
  Hashtbl.remove t.conns c.fd;
  try Unix.close c.fd with Unix.Unix_error _ -> ()

let screenshot_rows (t : t) (id : Registry.id) : string array option =
  match Registry.session t.reg id with
  | None -> None
  | Some s -> Some (Wire.rows_of_text (Session.screenshot s))

let attach (t : t) (c : conn) (id : Registry.id) : unit =
  match Registry.session t.reg id with
  | None -> send t c (Wire.Host (Wire.Error { code = 5; msg = string_of_int id }))
  | Some s ->
      let text = Session.screenshot s in
      Hashtbl.replace c.views id
        { last = Wire.rows_of_text text; dirty = false; unacked = 0 };
      send t c
        (Wire.Host
           (Wire.Attach { session = id; width = Session.width s; frame = text }))

let uevent_of_wire : Wire.event -> Registry.uevent = function
  | Wire.Ev_tap { x; y } -> Registry.Tap { x; y }
  | Wire.Ev_back -> Registry.Back

let wire_of_uevent : Registry.uevent -> Wire.event = function
  | Registry.Tap { x; y } -> Wire.Ev_tap { x; y }
  | Registry.Back -> Wire.Ev_back

let error t c code msg = send t c (Wire.Host (Wire.Error { code; msg }))

let mark_all_dirty (t : t) : unit =
  Hashtbl.iter
    (fun _ c -> Hashtbl.iter (fun _ view -> view.dirty <- true) c.views)
    t.conns

(* A protocol violation: answer code 1 and close once the write
   drains.  The connection stops being read immediately. *)
let violation (t : t) (c : conn) (msg : string) : unit =
  t.s_corrupt <- t.s_corrupt + 1;
  error t c 1 msg;
  c.closing <- true

let handle_client_frame (t : t) (c : conn) (f : Wire.client_frame) : unit =
  match f with
  | Wire.Hello { client = _; sessions } ->
      if sessions < 1 then violation t c "Hello: sessions must be >= 1"
      else
        for _ = 1 to sessions do
          match Registry.spawn t.reg with
          | Ok id -> attach t c id
          | Error e -> error t c 4 (Live_core.Machine.error_to_string e)
        done
  | Wire.Event { session; ev } -> (
      match Hashtbl.find_opt c.views session with
      | None -> error t c 5 (string_of_int session)
      | Some view -> (
          match Registry.offer t.reg session (uevent_of_wire ev) with
          | Backpressure.Accepted | Backpressure.Dropped_oldest ->
              (* a dropped-oldest still consumed an offer: the credit
                 goes back to the client either way *)
              view.dirty <- true;
              view.unacked <- view.unacked + 1
          | Backpressure.Rejected ->
              error t c 2 (Printf.sprintf "%d rejected by backpressure" session)
          ))
  | Wire.Detach { session } -> (
      match Hashtbl.find_opt c.views session with
      | None -> error t c 5 (string_of_int session)
      | Some _ -> (
          match Registry.session t.reg session with
          | None -> error t c 5 (string_of_int session)
          | Some s ->
              (* Drain the still-queued ingress into the snapshot so
                 no accepted event is lost across the detach. *)
              let rec drain acc =
                match Registry.take t.reg session with
                | None -> List.rev acc
                | Some ev -> drain (wire_of_uevent ev :: acc)
              in
              let pending = drain [] in
              let snap = Snapshot.of_session ~pending s in
              let text = Snapshot.to_string snap in
              Hashtbl.remove c.views session;
              ignore (Registry.kill t.reg session);
              t.s_detaches <- t.s_detaches + 1;
              send t c (Wire.Host (Wire.Detached { session; snapshot = text }))
          ))
  | Wire.Resume { snapshot } -> (
      match Snapshot.of_string snapshot with
      | Error m -> error t c 3 m
      | Ok snap -> (
          let host_program = Registry.program t.reg in
          match Snapshot.restore ~program:host_program snap with
          | Error m -> error t c 4 m
          | Ok s -> (
              (* A snapshot carrying older code is UPDATE-d to the
                 host's program before joining the fleet — the fleet
                 shares one program, physically (check_epochs). *)
              let upd =
                if Snapshot.program_equal snap.Snapshot.program host_program
                then Ok ()
                else
                  match Session.update s host_program with
                  | Ok _report -> Ok ()
                  | Error e -> Error (Live_core.Machine.error_to_string e)
              in
              match upd with
              | Error m -> error t c 4 m
              | Ok () -> (
                  (* adopt refuses while a rollout is open (the epoch
                     ledger would not know which epoch to pin the
                     newcomer to) — a resume landing inside a prepared
                     transaction is refused, not fatal *)
                  match Registry.adopt t.reg s with
                  | exception Invalid_argument m -> error t c 4 m
                  | id ->
                  t.s_resumes <- t.s_resumes + 1;
                  attach t c id;
                  List.iter
                    (fun ev ->
                      match Registry.offer t.reg id (uevent_of_wire ev) with
                      | Backpressure.Accepted | Backpressure.Dropped_oldest ->
                          (match Hashtbl.find_opt c.views id with
                          | Some view ->
                              view.dirty <- true;
                              view.unacked <- view.unacked + 1
                          | None -> ())
                      | Backpressure.Rejected ->
                          error t c 2
                            (Printf.sprintf "%d rejected by backpressure" id))
                    snap.Snapshot.pending))))
  | Wire.Stats ->
      send t c
        (Wire.Host
           (Wire.Metrics
              { text = Host_metrics.to_string (Registry.snapshot t.reg) }))
  | Wire.Bye ->
      (* orderly goodbye: the sessions live on, unattached *)
      Hashtbl.reset c.views;
      c.closing <- true
  | Wire.Update { program } -> (
      match Snapshot.program_of_string program with
      | Error m -> error t c 6 m
      | Ok p -> (
          if t.pending_rollout <> None then
            error t c 6 "a prepared transaction is open"
          else
            match Broadcast.update t.reg p with
            | Error e -> error t c 6 (Live_core.Machine.error_to_string e)
            | Ok report ->
                let failed =
                  List.length
                    (List.filter
                       (fun (o : Broadcast.session_outcome) ->
                         Result.is_error o.Broadcast.outcome)
                       report.Broadcast.outcomes)
                in
                mark_all_dirty t;
                send t c
                  (Wire.Host
                     (Wire.Ack
                        {
                          info =
                            Printf.sprintf "updated %d sessions (%d failed)"
                              (List.length report.Broadcast.outcomes) failed;
                        }))))
  | Wire.Prepare { txn; program } -> (
      (* phase one of the director's two-phase UPDATE: diff, typecheck
         and compile, open the target epoch, apply nothing.  Refusing
         when a transaction is already open is also the fault-injection
         hook the atomicity tests lean on. *)
      match t.pending_rollout with
      | Some (open_txn, _) ->
          error t c 6 (Printf.sprintf "transaction %d is already open" open_txn)
      | None -> (
          match Snapshot.program_of_string program with
          | Error m -> error t c 6 m
          | Ok p -> (
              match Rollout.begin_ ~seed:txn t.reg p with
              | exception Invalid_argument m -> error t c 6 m
              | Error e -> error t c 6 (Live_core.Machine.error_to_string e)
              | Ok r ->
                  t.pending_rollout <- Some (txn, r);
                  send t c
                    (Wire.Host
                       (Wire.Ack
                          {
                            info =
                              Printf.sprintf "prepared txn %d (epoch %d)" txn
                                (Rollout.target_epoch r);
                          })))))
  | Wire.Commit { txn } -> (
      match t.pending_rollout with
      | Some (open_txn, r) when open_txn = txn ->
          (* canary + promote back to back — no client frame is read in
             between, so the whole shard moves epochs in one step *)
          let failed outcomes =
            List.length
              (List.filter
                 (fun (o : Broadcast.session_outcome) ->
                   Result.is_error o.Broadcast.outcome)
                 outcomes)
          in
          let f1 = failed (Rollout.canary r) in
          let f2 = failed (Rollout.promote r) in
          t.pending_rollout <- None;
          mark_all_dirty t;
          send t c
            (Wire.Host
               (Wire.Ack
                  {
                    info =
                      Printf.sprintf "committed txn %d (%d failed)" txn
                        (f1 + f2);
                  }))
      | Some (open_txn, _) ->
          error t c 6
            (Printf.sprintf "commit txn %d: transaction %d is open" txn open_txn)
      | None -> error t c 6 (Printf.sprintf "commit txn %d: none open" txn))
  | Wire.Abort { txn } -> (
      match t.pending_rollout with
      | Some (open_txn, r) when open_txn = txn ->
          (* a Staged rollout never touched a session: rollback is a
             pure close and every session stays on the base epoch *)
          let errs = Rollout.rollback r in
          t.pending_rollout <- None;
          send t c
            (Wire.Host
               (Wire.Ack
                  {
                    info =
                      Printf.sprintf "aborted txn %d (%d replay errors)" txn
                        (List.length errs);
                  }))
      | Some (open_txn, _) ->
          error t c 6
            (Printf.sprintf "abort txn %d: transaction %d is open" txn open_txn)
      | None -> error t c 6 (Printf.sprintf "abort txn %d: none open" txn))
  | Wire.Observe ->
      let sessions =
        List.filter_map
          (fun id ->
            match Registry.session t.reg id with
            | None -> None
            | Some s -> Some (id, Registry.observe_session s))
          (Registry.ids t.reg)
      in
      send t c (Wire.Host (Wire.Observed { sessions }))
  | Wire.Stats_data ->
      send t c (Wire.Host (Wire.Metrics { text = Registry.export_metrics t.reg }))
  | Wire.Rebalance _ ->
      error t c 6 "rebalance: not a director"

let handle_frame (t : t) (c : conn) : Wire.frame -> unit = function
  | Wire.Client f -> handle_client_frame t c f
  | Wire.Host _ -> violation t c "host-tagged frame from a client"

(* Decode and handle every complete frame in the connection's input
   buffer; compacts the buffer to the undecoded remainder. *)
let drain_inbuf (t : t) (c : conn) : unit =
  let data = Buffer.contents c.inbuf in
  let len = String.length data in
  let off = ref 0 in
  let continue = ref true in
  while !continue && !off < len && not c.closing do
    match Wire.decode ~off:!off data with
    | Wire.Frame (f, consumed) ->
        t.s_frames_in <- t.s_frames_in + 1;
        off := !off + consumed;
        handle_frame t c f
    | Wire.Need_more -> continue := false
    | Wire.Corrupt m ->
        violation t c m;
        continue := false
  done;
  if !off > 0 || c.closing then begin
    let rest =
      if c.closing then "" else String.sub data !off (len - !off)
    in
    Buffer.clear c.inbuf;
    Buffer.add_string c.inbuf rest
  end

let read_chunk = Bytes.create 65536

(* Read everything currently available; [false] if the peer hung up
   or errored (the connection is dropped). *)
let read_conn (t : t) (c : conn) : bool =
  let rec go () =
    match Unix.read c.fd read_chunk 0 (Bytes.length read_chunk) with
    | 0 -> false
    | n ->
        t.s_bytes_in <- t.s_bytes_in + n;
        Buffer.add_subbytes c.inbuf read_chunk 0 n;
        if n = Bytes.length read_chunk then go () else true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        true
    (* a signal landing mid-read is not a peer error — retry *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> false
  in
  go ()

(* Drain the out buffers as far as the socket allows; [false] on a
   dead peer.  When the in-flight write completes, the whole staging
   buffer — every frame sent since the last promote — becomes the next
   write: one syscall per tick per connection in the common case. *)
let flush_conn (t : t) (c : conn) : bool =
  let rec go () =
    let remaining = String.length c.out_pending - c.out_off in
    if remaining = 0 then
      if Buffer.length c.out_staging = 0 then true
      else begin
        c.out_pending <- Buffer.contents c.out_staging;
        Buffer.clear c.out_staging;
        c.out_off <- 0;
        go ()
      end
    else
      match Unix.write_substring c.fd c.out_pending c.out_off remaining with
      | n ->
          t.s_bytes_out <- t.s_bytes_out + n;
          c.out_off <- c.out_off + n;
          if n = remaining then go () else true
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> false
  in
  go ()

(* Send every dirty view its damage-masked Delta.  An empty row list
   still goes out — it is the acknowledgement a lockstep client waits
   for. *)
let send_deltas (t : t) : unit =
  Hashtbl.iter
    (fun _ c ->
      if not c.closing then
        Hashtbl.iter
          (fun id view ->
            if view.dirty then begin
              view.dirty <- false;
              match screenshot_rows t id with
              | None -> ()
              | Some rows ->
                  let delta = Wire.delta_of_frames ~prev:view.last rows in
                  let acks = view.unacked in
                  view.unacked <- 0;
                  view.last <- rows;
                  t.s_deltas <- t.s_deltas + 1;
                  t.s_delta_rows <- t.s_delta_rows + List.length delta;
                  t.s_full_rows <- t.s_full_rows + Array.length rows;
                  send t c
                    (Wire.Host
                       (Wire.Delta
                          {
                            session = id;
                            height = Array.length rows;
                            acks;
                            rows = delta;
                          }))
            end)
          c.views)
    t.conns

let accept_loop (t : t) : bool =
  let accepted = ref false in
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        Hashtbl.replace t.conns fd
          {
            fd;
            inbuf = Buffer.create 4096;
            out_pending = "";
            out_off = 0;
            out_staging = Buffer.create 4096;
            scratch = Buffer.create 256;
            views = Hashtbl.create 8;
            closing = false;
          };
        t.s_accepted <- t.s_accepted + 1;
        accepted := true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
  done;
  !accepted

let step ?(timeout = 0.05) (t : t) : bool =
  if t.stopped then false
  else begin
    let reads = ref [ t.listen_fd ] in
    let writes = ref [] in
    Hashtbl.iter
      (fun fd c ->
        if not c.closing then reads := fd :: !reads;
        if has_output c then writes := fd :: !writes)
      t.conns;
    (* An interrupted select is retried, not treated as an idle tick:
       a signal storm must never starve the loop of readiness facts. *)
    let rec select_retry () =
      try Unix.select !reads !writes [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> select_retry ()
    in
    let readable, writable, _ = select_retry () in
    let worked = ref false in
    if List.mem t.listen_fd readable then
      if accept_loop t then worked := true;
    (* Ingress: read and handle every complete frame on every readable
       connection. *)
    List.iter
      (fun fd ->
        if fd <> t.listen_fd then
          match Hashtbl.find_opt t.conns fd with
          | None -> ()
          | Some c ->
              worked := true;
              if read_conn t c then drain_inbuf t c
              else drop_conn t c)
      readable;
    (* Serve: drain every event accepted above (and any left over),
       then answer with deltas. *)
    if Registry.total_pending t.reg > 0 then begin
      worked := true;
      (match Scheduler.drain t.sched with Ok _ | Error _ -> ())
    end;
    send_deltas t;
    (* Egress: flush what the sockets will take; close drained
       connections that asked for it. *)
    let dead = ref [] in
    Hashtbl.iter
      (fun _ c ->
        if has_output c || c.closing then begin
          if not (flush_conn t c) then dead := c :: !dead
          else if c.closing && not (has_output c) then dead := c :: !dead
        end)
      t.conns;
    List.iter (fun c -> drop_conn t c) !dead;
    List.iter
      (fun fd ->
        match Hashtbl.find_opt t.conns fd with
        | Some c -> if not (flush_conn t c) then drop_conn t c
        | None -> ())
      writable;
    !worked
  end

let run ~(until : unit -> bool) (t : t) : unit =
  while not (until ()) && not t.stopped do
    ignore (step t)
  done

let stop (t : t) : unit =
  if not t.stopped then begin
    t.stopped <- true;
    Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      t.conns;
    Hashtbl.reset t.conns;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    try Unix.unlink t.path with Unix.Unix_error _ -> ()
  end
