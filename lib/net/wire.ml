(** Binary wire codec (see the interface).  The writer side is a
    plain [Buffer]; the reader side is a cursor over a string with
    every read bounds-checked through one internal exception that
    {!decode} catches — so malformed bytes can only ever produce
    {!Corrupt}, never an escape. *)

let version = 3
let max_frame = 16 * 1024 * 1024

type event = Ev_tap of { x : int; y : int } | Ev_back

type client_frame =
  | Hello of { client : string; sessions : int }
  | Event of { session : int; ev : event }
  | Detach of { session : int }
  | Resume of { snapshot : string }
  | Stats
  | Bye
  | Update of { program : string }
  | Prepare of { txn : int; program : string }
  | Commit of { txn : int }
  | Abort of { txn : int }
  | Observe
  | Rebalance of { count : int }
  | Stats_data

type host_frame =
  | Attach of { session : int; width : int; frame : string }
  | Delta of {
      session : int;
      height : int;
      acks : int;
      rows : (int * string) list;
    }
  | Detached of { session : int; snapshot : string }
  | Error of { code : int; msg : string }
  | Metrics of { text : string }
  | Ack of { info : string }
  | Observed of { sessions : (int * string) list }

type frame = Client of client_frame | Host of host_frame

let equal (a : frame) (b : frame) = a = b

let pp_event ppf = function
  | Ev_tap { x; y } -> Fmt.pf ppf "tap(%d,%d)" x y
  | Ev_back -> Fmt.string ppf "back"

let pp ppf = function
  | Client (Hello { client; sessions }) ->
      Fmt.pf ppf "Hello(%S, sessions=%d)" client sessions
  | Client (Event { session; ev }) ->
      Fmt.pf ppf "Event(#%d, %a)" session pp_event ev
  | Client (Detach { session }) -> Fmt.pf ppf "Detach(#%d)" session
  | Client (Resume { snapshot }) ->
      Fmt.pf ppf "Resume(%d bytes)" (String.length snapshot)
  | Client Stats -> Fmt.string ppf "Stats"
  | Client Bye -> Fmt.string ppf "Bye"
  | Client (Update { program }) ->
      Fmt.pf ppf "Update(%d bytes)" (String.length program)
  | Client (Prepare { txn; program }) ->
      Fmt.pf ppf "Prepare(txn=%d, %d bytes)" txn (String.length program)
  | Client (Commit { txn }) -> Fmt.pf ppf "Commit(txn=%d)" txn
  | Client (Abort { txn }) -> Fmt.pf ppf "Abort(txn=%d)" txn
  | Client Observe -> Fmt.string ppf "Observe"
  | Client (Rebalance { count }) -> Fmt.pf ppf "Rebalance(count=%d)" count
  | Client Stats_data -> Fmt.string ppf "Stats_data"
  | Host (Attach { session; width; frame }) ->
      Fmt.pf ppf "Attach(#%d, width=%d, %d bytes)" session width
        (String.length frame)
  | Host (Delta { session; height; acks; rows }) ->
      Fmt.pf ppf "Delta(#%d, height=%d, acks=%d, %d rows)" session height acks
        (List.length rows)
  | Host (Detached { session; snapshot }) ->
      Fmt.pf ppf "Detached(#%d, %d bytes)" session (String.length snapshot)
  | Host (Error { code; msg }) -> Fmt.pf ppf "Error(%d, %S)" code msg
  | Host (Metrics { text }) -> Fmt.pf ppf "Metrics(%d bytes)" (String.length text)
  | Host (Ack { info }) -> Fmt.pf ppf "Ack(%S)" info
  | Host (Observed { sessions }) ->
      Fmt.pf ppf "Observed(%d sessions)" (List.length sessions)

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let put_u8 (b : Buffer.t) (v : int) =
  if v < 0 || v > 0xFF then invalid_arg "Wire: u8 out of range";
  Buffer.add_char b (Char.chr v)

let put_u32 (b : Buffer.t) (v : int) =
  if v < 0 || v > 0x3FFFFFFF then invalid_arg "Wire: u32 out of range";
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let put_str (b : Buffer.t) (s : string) =
  if String.length s > max_frame then invalid_arg "Wire: string too long";
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_ev (b : Buffer.t) = function
  | Ev_tap { x; y } ->
      put_u8 b 0;
      put_u32 b x;
      put_u32 b y
  | Ev_back -> put_u8 b 1

(* Tags: client frames in 0x01-0x7F, host frames in 0x81-0xFF, so a
   peer speaking the wrong direction is caught at the tag. *)
let put_body (b : Buffer.t) = function
  | Client (Hello { client; sessions }) ->
      put_u8 b 0x01;
      put_str b client;
      put_u32 b sessions
  | Client (Event { session; ev }) ->
      put_u8 b 0x02;
      put_u32 b session;
      put_ev b ev
  | Client (Detach { session }) ->
      put_u8 b 0x03;
      put_u32 b session
  | Client (Resume { snapshot }) ->
      put_u8 b 0x04;
      put_str b snapshot
  | Client Stats -> put_u8 b 0x05
  | Client Bye -> put_u8 b 0x06
  | Client (Update { program }) ->
      put_u8 b 0x07;
      put_str b program
  | Client (Prepare { txn; program }) ->
      put_u8 b 0x08;
      put_u32 b txn;
      put_str b program
  | Client (Commit { txn }) ->
      put_u8 b 0x09;
      put_u32 b txn
  | Client (Abort { txn }) ->
      put_u8 b 0x0A;
      put_u32 b txn
  | Client Observe -> put_u8 b 0x0B
  | Client (Rebalance { count }) ->
      put_u8 b 0x0C;
      put_u32 b count
  | Client Stats_data -> put_u8 b 0x0D
  | Host (Attach { session; width; frame }) ->
      put_u8 b 0x81;
      put_u32 b session;
      put_u32 b width;
      put_str b frame
  | Host (Delta { session; height; acks; rows }) ->
      put_u8 b 0x82;
      put_u32 b session;
      put_u32 b height;
      put_u32 b acks;
      put_u32 b (List.length rows);
      List.iter
        (fun (i, s) ->
          put_u32 b i;
          put_str b s)
        rows
  | Host (Detached { session; snapshot }) ->
      put_u8 b 0x83;
      put_u32 b session;
      put_str b snapshot
  | Host (Error { code; msg }) ->
      put_u8 b 0x84;
      put_u32 b code;
      put_str b msg
  | Host (Metrics { text }) ->
      put_u8 b 0x85;
      put_str b text
  | Host (Ack { info }) ->
      put_u8 b 0x86;
      put_str b info
  | Host (Observed { sessions }) ->
      put_u8 b 0x87;
      put_u32 b (List.length sessions);
      List.iter
        (fun (id, obs) ->
          put_u32 b id;
          put_str b obs)
        sessions

let encode_into ~(scratch : Buffer.t) (dst : Buffer.t) (f : frame) : unit =
  Buffer.clear scratch;
  put_u8 scratch version;
  put_body scratch f;
  let n = Buffer.length scratch in
  if n > max_frame then invalid_arg "Wire.encode: frame too large";
  put_u32 dst n;
  Buffer.add_buffer dst scratch

let encode (f : frame) : string =
  let scratch = Buffer.create 64 in
  let out = Buffer.create 68 in
  encode_into ~scratch out f;
  Buffer.contents out

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

type cursor = { buf : string; mutable pos : int; limit : int }

let need (c : cursor) (n : int) =
  if n < 0 || c.limit - c.pos < n then raise (Bad "truncated payload")

let get_u8 (c : cursor) : int =
  need c 1;
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 (c : cursor) : int =
  need c 4;
  let b i = Char.code c.buf.[c.pos + i] in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  c.pos <- c.pos + 4;
  if v > 0x3FFFFFFF then raise (Bad "u32 out of range");
  v

let get_str (c : cursor) : string =
  let n = get_u32 c in
  need c n;
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let get_ev (c : cursor) : event =
  match get_u8 c with
  | 0 ->
      let x = get_u32 c in
      let y = get_u32 c in
      Ev_tap { x; y }
  | 1 -> Ev_back
  | t -> raise (Bad (Printf.sprintf "unknown event kind 0x%02x" t))

let get_body (c : cursor) : frame =
  match get_u8 c with
  | 0x01 ->
      let client = get_str c in
      let sessions = get_u32 c in
      Client (Hello { client; sessions })
  | 0x02 ->
      let session = get_u32 c in
      let ev = get_ev c in
      Client (Event { session; ev })
  | 0x03 -> Client (Detach { session = get_u32 c })
  | 0x04 -> Client (Resume { snapshot = get_str c })
  | 0x05 -> Client Stats
  | 0x06 -> Client Bye
  | 0x07 -> Client (Update { program = get_str c })
  | 0x08 ->
      let txn = get_u32 c in
      let program = get_str c in
      Client (Prepare { txn; program })
  | 0x09 -> Client (Commit { txn = get_u32 c })
  | 0x0A -> Client (Abort { txn = get_u32 c })
  | 0x0B -> Client Observe
  | 0x0C -> Client (Rebalance { count = get_u32 c })
  | 0x0D -> Client Stats_data
  | 0x81 ->
      let session = get_u32 c in
      let width = get_u32 c in
      let frame = get_str c in
      Host (Attach { session; width; frame })
  | 0x82 ->
      let session = get_u32 c in
      let height = get_u32 c in
      let acks = get_u32 c in
      let n = get_u32 c in
      (* each row costs at least 8 bytes on the wire; a count beyond
         that bound cannot be honest *)
      if n > (c.limit - c.pos) / 8 + 1 then raise (Bad "row count too large");
      let rows =
        List.init n (fun _ ->
            let i = get_u32 c in
            let s = get_str c in
            (i, s))
      in
      Host (Delta { session; height; acks; rows })
  | 0x83 ->
      let session = get_u32 c in
      let snapshot = get_str c in
      Host (Detached { session; snapshot })
  | 0x84 ->
      let code = get_u32 c in
      let msg = get_str c in
      Host (Error { code; msg })
  | 0x85 -> Host (Metrics { text = get_str c })
  | 0x86 -> Host (Ack { info = get_str c })
  | 0x87 ->
      let n = get_u32 c in
      (* each entry costs at least 8 bytes on the wire *)
      if n > (c.limit - c.pos) / 8 + 1 then
        raise (Bad "session count too large");
      let sessions =
        List.init n (fun _ ->
            let id = get_u32 c in
            let obs = get_str c in
            (id, obs))
      in
      Host (Observed { sessions })
  | t -> raise (Bad (Printf.sprintf "unknown frame tag 0x%02x" t))

type decoded = Frame of frame * int | Need_more | Corrupt of string

let decode ?(off = 0) (buf : string) : decoded =
  let len = String.length buf in
  if off < 0 || off > len then Corrupt "offset out of bounds"
  else if len - off < 4 then Need_more
  else
    let b i = Char.code buf.[off + i] in
    let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if n < 2 then Corrupt "frame body too short"
    else if n > max_frame then Corrupt "frame length exceeds max_frame"
    else if len - off - 4 < n then Need_more
    else
      try
        let c = { buf; pos = off + 4; limit = off + 4 + n } in
        let v = get_u8 c in
        if v <> version then
          Corrupt (Printf.sprintf "unsupported protocol version %d" v)
        else
          let f = get_body c in
          if c.pos <> c.limit then Corrupt "trailing bytes in frame body"
          else Frame (f, n + 4)
      with Bad m -> Corrupt m

(* ------------------------------------------------------------------ *)
(* Raw relay                                                           *)
(* ------------------------------------------------------------------ *)

type raw = { r_off : int; r_total : int; r_tag : int; r_session : int }
type peeked = Raw of raw | Raw_need_more | Raw_corrupt of string

(* Tags whose payload begins with a session id (body offset 2, i.e.
   frame offset 6): Event, Detach, Attach, Delta, Detached. *)
let session_addressed = function
  | 0x02 | 0x03 | 0x81 | 0x82 | 0x83 -> true
  | _ -> false

let peek ?(off = 0) (buf : string) : peeked =
  let len = String.length buf in
  if off < 0 || off > len then Raw_corrupt "offset out of bounds"
  else if len - off < 4 then Raw_need_more
  else
    let b i = Char.code buf.[off + i] in
    let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if n < 2 then Raw_corrupt "frame body too short"
    else if n > max_frame then Raw_corrupt "frame length exceeds max_frame"
    else if len - off - 4 < n then Raw_need_more
    else if b 4 <> version then
      Raw_corrupt (Printf.sprintf "unsupported protocol version %d" (b 4))
    else
      let tag = b 5 in
      if not (session_addressed tag) then
        Raw { r_off = off; r_total = n + 4; r_tag = tag; r_session = -1 }
      else if n < 6 then Raw_corrupt "truncated payload"
      else
        let s = (b 6 lsl 24) lor (b 7 lsl 16) lor (b 8 lsl 8) lor b 9 in
        if s > 0x3FFFFFFF then Raw_corrupt "u32 out of range"
        else Raw { r_off = off; r_total = n + 4; r_tag = tag; r_session = s }

let relay (dst : Buffer.t) (buf : string) (r : raw) : unit =
  Buffer.add_substring dst buf r.r_off r.r_total

let relay_rewrite (dst : Buffer.t) (buf : string) (r : raw) ~(session : int) :
    unit =
  if not (session_addressed r.r_tag) then
    invalid_arg "Wire.relay_rewrite: tag has no session field";
  (* prefix (4) + version + tag, then the fresh id, then the rest *)
  Buffer.add_substring dst buf r.r_off 6;
  put_u32 dst session;
  Buffer.add_substring dst buf (r.r_off + 10) (r.r_total - 10)

let event_payload_ok (buf : string) (r : raw) : bool =
  r.r_tag = 0x02
  &&
  let b i = Char.code buf.[r.r_off + i] in
  match r.r_total with
  | 11 -> b 10 = 1 (* Ev_back *)
  | 19 -> b 10 = 0 && b 11 land 0xC0 = 0 && b 15 land 0xC0 = 0 (* Ev_tap *)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Deltas                                                              *)
(* ------------------------------------------------------------------ *)

let rows_of_text (s : string) : string array =
  let parts = String.split_on_char '\n' s in
  let parts =
    match List.rev parts with "" :: rest -> List.rev rest | _ -> parts
  in
  Array.of_list parts

let delta_of_frames ~(prev : string array) (next : string array) :
    (int * string) list =
  let old i = if i < Array.length prev then prev.(i) else "" in
  let rows = ref [] in
  for i = Array.length next - 1 downto 0 do
    if not (String.equal next.(i) (old i)) then rows := (i, next.(i)) :: !rows
  done;
  !rows

let apply_delta (prev : string array) ~(height : int)
    ~(rows : (int * string) list) : string array =
  let height = max 0 height in
  let out =
    Array.init height (fun i -> if i < Array.length prev then prev.(i) else "")
  in
  List.iter (fun (i, s) -> if i >= 0 && i < height then out.(i) <- s) rows;
  out
