(** The networked host: a single-threaded, [select]-based Unix-domain
    socket server wrapping a {!Live_host.Registry} fleet and its
    {!Live_host.Scheduler} (DESIGN.md §12.2).

    One {!step} is one cycle of the liveness loop over the wire:
    accept new connections, read and decode every complete frame,
    route [Event]s into the per-session {!Live_host.Backpressure}
    queues, drain the scheduler, and answer every served session with
    a damage-masked [Delta] — only the rows whose text changed since
    the last frame this connection saw.  An [Event] whose session's
    frame came out byte-identical still gets an {e empty} [Delta]: the
    acknowledgement the lockstep load client paces itself by.

    Detach/resume: [Detach] drains the session's still-queued events,
    captures a canonical {!Snapshot} (pending events included), kills
    the session and returns the text as [Detached]; [Resume] restores
    the snapshot — UPDATE-ing it to the host's current program first
    if the snapshot carried older code — adopts it into the fleet
    under a fresh id ({!Live_host.Registry.adopt}) and re-offers the
    pending events through the ordinary ingress path.  The id travels
    back in the [Attach] frame.

    A backpressure-rejected event answers [Error] code 2 whose [msg]
    {e starts with the decimal session id} (then a space), so a client
    multiplexing sessions can attribute the rejection.  Protocol
    violations (garbage bytes, a host-tagged frame from a client, a
    [Hello] with no sessions) answer [Error] code 1 and close the
    connection after the write drains. *)

type t

type stats = {
  accepted : int;  (** connections ever accepted *)
  connections : int;  (** currently open *)
  frames_in : int;
  frames_out : int;
  bytes_in : int;
  bytes_out : int;
  deltas_sent : int;
  delta_rows_sent : int;  (** dirty rows actually shipped *)
  full_rows : int;  (** rows full-frame repaints would have shipped *)
  detaches : int;
  resumes : int;
  corrupt : int;  (** connections dropped for protocol violations *)
}

val create :
  ?config:Live_host.Registry.config ->
  ?batch:int ->
  socket:string ->
  Live_core.Program.t ->
  t
(** Bind and listen on the Unix-domain socket at [socket] (an existing
    file there is unlinked first), over a fresh fleet running
    [program].  [config] is the registry config (default
    {!Live_host.Registry.default_config}); [batch] the scheduler's
    per-session batch bound.
    @raise Unix.Unix_error if the socket cannot be bound. *)

val registry : t -> Live_host.Registry.t
val scheduler : t -> Live_host.Scheduler.t

val step : ?timeout:float -> t -> bool
(** One server cycle; [timeout] (default 0.05s) bounds the [select]
    wait when nothing is ready.  Returns whether any I/O or event work
    happened — a pure-timeout step returns [false]. *)

val run : until:(unit -> bool) -> t -> unit
(** {!step} until [until ()] — the accept loop of a standalone host
    process. *)

val mark_all_dirty : t -> unit
(** Force the next {!step} to re-diff and [Delta] every attached
    session — called after an out-of-band fleet mutation the ingress
    path didn't see (a {!Live_host.Broadcast.update} driven from the
    host side). *)

val stats : t -> stats

val stop : t -> unit
(** Close every connection and the listener, and unlink the socket
    path.  Idempotent. *)
