(** The shard director: one socket in front of N shard host processes
    (DESIGN.md §13).

    Clients speak the ordinary {!Wire} protocol to the director as if
    it were a single {!Server}; the director owns the global session
    id space and proxies each session's traffic to the shard that
    hosts it.  Three invariants define the abstraction:

    - {b Placement} is deterministic: session [g] lives on the shard
      with the highest rendezvous score
      [Prng.derive (hash endpoint) g], so any observer can recompute
      the map from the endpoint list alone — there is no placement
      table to replicate or lose.  Global ids are dense and assigned
      in spawn order, exactly like a single-process registry, so a
      directed fleet digests identically to an undirected one.
    - {b UPDATE is atomic} fleet-wide: a client [Update] runs two-phase
      commit over the shards' staged-rollout machinery ([Prepare] =
      {!Live_host.Rollout.begin_} everywhere, then [Commit] =
      canary+promote everywhere, or [Abort] = rollback everywhere if
      any prepare refuses).  The director reads no client frame while
      the transaction is in flight, so no client ever observes a
      mixed-epoch fleet.
    - {b Rebalance preserves state byte-for-byte}: sessions migrate
      from the fullest to the emptiest shard through the canonical
      detach → snapshot → resume path, keeping their global ids; the
      fleet digest (MD5 over every session's canonical observation in
      id order) is recomputed before and after, and a quiescent-fleet
      mismatch fails the command.

    A dead or protocol-violating shard raises {!Fatal}: the director
    refuses to improvise around a half-alive fleet. *)

exception Fatal of string

type t

type stats = {
  shards : int;
  sessions : int;  (** sessions currently resident, across all shards *)
  per_shard : (string * int) list;  (** endpoint, resident sessions *)
  accepted : int;
  frames_in : int;  (** client frames routed *)
  frames_out : int;  (** frames sent, to clients and shards *)
  updates_committed : int;
  updates_rejected : int;  (** two-phase aborts (all-or-nothing held) *)
  rebalances : int;
  sessions_moved : int;
  digest_checks : int;  (** strict before/after digest comparisons *)
  digest_failures : int;
  corrupt : int;
}

val create :
  ?pump:(unit -> unit) ->
  ?connect_timeout:float ->
  socket:string ->
  shards:string list ->
  unit ->
  t
(** Connect to every shard endpoint (Unix-socket paths; retried until
    [connect_timeout], default 10 s, so shards may still be booting)
    and listen on [socket].  [pump] is called while the director waits
    on a shard reply — in-process harnesses pass a closure stepping
    the shard servers; standalone processes leave it out.
    @raise Unix.Unix_error if a shard never comes up. *)

val step : ?timeout:float -> t -> bool
(** One select round: accept clients, route frames, run any control
    transaction to completion.  [true] if any work was done. *)

val run : until:(unit -> bool) -> t -> unit
val stats : t -> stats

val fleet_digest : t -> string
(** MD5 over every resident session's canonical observation in global
    id order — byte-identical to {!Live_host.Registry.digest} of a
    single-process fleet that served the same per-session traffic. *)

val stop : t -> unit
