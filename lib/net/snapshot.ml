(** Canonical session snapshots (see the interface).  The format is a
    tiny s-expression language with a deterministic printer — bare
    atoms where possible, quoted atoms with a fixed escape set
    otherwise — so every snapshot value has exactly one text image and
    [of_string] ∘ [to_string] is the identity byte-for-byte. *)

module Ast = Live_core.Ast
module Typ = Live_core.Typ
module Eff = Live_core.Eff
module Program = Live_core.Program
module Srcid = Live_core.Srcid
module Store = Live_core.Store
module Machine = Live_core.Machine
module Session = Live_runtime.Session
module Trace = Live_runtime.Trace

type t = {
  width : int;
  fuel : int;
  incremental : bool;
  cache : bool;
  evaluator : Machine.evaluator;
  program : Program.t;
  store : (Live_core.Ident.global * Ast.value) list;
  stack : (Live_core.Ident.page * Ast.value) list;
  trace : Trace.t;
  fault : Session.fault option;
  pending : Wire.event list;
}

(* ------------------------------------------------------------------ *)
(* S-expressions                                                       *)
(* ------------------------------------------------------------------ *)

type sexp = A of string | L of sexp list

exception Parse of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt

let is_atom_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '+' | '-' -> true
  | _ -> false

let bare_atom s =
  s <> "" && String.for_all is_atom_char s

let print_atom (b : Buffer.t) (s : string) =
  if bare_atom s then Buffer.add_string b s
  else begin
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 || Char.code c > 0x7E ->
            Buffer.add_string b (Printf.sprintf "\\x%02x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'
  end

let rec print_sexp (b : Buffer.t) = function
  | A s -> print_atom b s
  | L items ->
      Buffer.add_char b '(';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ' ';
          print_sexp b x)
        items;
      Buffer.add_char b ')'

let parse_sexp (s : string) : sexp =
  let n = String.length s in
  let pos = ref 0 in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let rec parse () : sexp =
    skip_ws ();
    if !pos >= n then fail "unexpected end of input";
    match s.[!pos] with
    | '(' ->
        incr pos;
        let items = ref [] in
        let rec loop () =
          skip_ws ();
          if !pos >= n then fail "unclosed list";
          if s.[!pos] = ')' then incr pos
          else begin
            items := parse () :: !items;
            loop ()
          end
        in
        loop ();
        L (List.rev !items)
    | ')' -> fail "unexpected ')'"
    | '"' ->
        incr pos;
        let b = Buffer.create 16 in
        let rec loop () =
          if !pos >= n then fail "unterminated string";
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              if !pos + 1 >= n then fail "dangling escape";
              (match s.[!pos + 1] with
              | '\\' ->
                  Buffer.add_char b '\\';
                  pos := !pos + 2
              | '"' ->
                  Buffer.add_char b '"';
                  pos := !pos + 2
              | 'n' ->
                  Buffer.add_char b '\n';
                  pos := !pos + 2
              | 'r' ->
                  Buffer.add_char b '\r';
                  pos := !pos + 2
              | 't' ->
                  Buffer.add_char b '\t';
                  pos := !pos + 2
              | 'x' ->
                  if !pos + 3 >= n then fail "truncated \\x escape";
                  (match
                     int_of_string_opt ("0x" ^ String.sub s (!pos + 2) 2)
                   with
                  | Some c ->
                      Buffer.add_char b (Char.chr c);
                      pos := !pos + 4
                  | None -> fail "malformed \\x escape")
              | c -> fail "unknown escape '\\%c'" c);
              loop ()
          | c ->
              Buffer.add_char b c;
              incr pos;
              loop ()
        in
        loop ();
        A (Buffer.contents b)
    | c when is_atom_char c ->
        let start = !pos in
        while !pos < n && is_atom_char s.[!pos] do
          incr pos
        done;
        A (String.sub s start (!pos - start))
    | c -> fail "unexpected character %C" c
  in
  let x = parse () in
  skip_ws ();
  if !pos <> n then fail "trailing input after snapshot";
  x

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

(* [%h] prints the exact bit pattern as a C99 hex-float literal (and
   [nan] / [infinity] by name); [float_of_string] reads all of them
   back losslessly. *)
let sexp_of_float (f : float) : sexp = A (Printf.sprintf "%h" f)

let rec sexp_of_typ : Typ.t -> sexp = function
  | Typ.Num -> A "num"
  | Typ.Str -> A "str"
  | Typ.Tuple ts -> L (A "tuple" :: List.map sexp_of_typ ts)
  | Typ.Fn (a, e, r) ->
      L [ A "fn"; sexp_of_typ a; A (Eff.to_string e); sexp_of_typ r ]
  | Typ.List t -> L [ A "list"; sexp_of_typ t ]

let rec sexp_of_value : Ast.value -> sexp = function
  | Ast.VNum f -> L [ A "n"; sexp_of_float f ]
  | Ast.VStr s -> L [ A "s"; A s ]
  | Ast.VTuple vs -> L (A "tup" :: List.map sexp_of_value vs)
  | Ast.VLam (x, ty, e) -> L [ A "lam"; A x; sexp_of_typ ty; sexp_of_expr e ]
  | Ast.VList (ty, vs) ->
      L (A "vlist" :: sexp_of_typ ty :: List.map sexp_of_value vs)

and sexp_of_expr : Ast.expr -> sexp = function
  | Ast.Val v -> L [ A "val"; sexp_of_value v ]
  | Ast.Var x -> L [ A "var"; A x ]
  | Ast.Tuple es -> L (A "tuple" :: List.map sexp_of_expr es)
  | Ast.App (f, a) -> L [ A "app"; sexp_of_expr f; sexp_of_expr a ]
  | Ast.Fn f -> L [ A "fn"; A f ]
  | Ast.Proj (e, i) -> L [ A "proj"; sexp_of_expr e; A (string_of_int i) ]
  | Ast.Get g -> L [ A "get"; A g ]
  | Ast.Set (g, e) -> L [ A "set"; A g; sexp_of_expr e ]
  | Ast.Push (p, e) -> L [ A "push"; A p; sexp_of_expr e ]
  | Ast.Pop -> L [ A "pop" ]
  | Ast.Boxed (sid, e) ->
      let id =
        match sid with
        | None -> A "none"
        | Some s -> A (string_of_int (Srcid.to_int s))
      in
      L [ A "boxed"; id; sexp_of_expr e ]
  | Ast.Post e -> L [ A "post"; sexp_of_expr e ]
  | Ast.SetAttr (a, e) -> L [ A "setattr"; A a; sexp_of_expr e ]
  | Ast.Prim (name, tys, args) ->
      L
        [
          A "prim";
          A name;
          L (List.map sexp_of_typ tys);
          L (List.map sexp_of_expr args);
        ]

let sexp_of_def : Program.def -> sexp = function
  | Program.Global { name; ty; init } ->
      L [ A "global"; A name; sexp_of_typ ty; sexp_of_value init ]
  | Program.Func { name; ty; body } ->
      L [ A "func"; A name; sexp_of_typ ty; sexp_of_expr body ]
  | Program.Page { name; arg_ty; init; render } ->
      L
        [
          A "page";
          A name;
          sexp_of_typ arg_ty;
          sexp_of_expr init;
          sexp_of_expr render;
        ]

let sexp_of_entry : Trace.entry -> sexp = function
  | Trace.Tap { x; y } ->
      L [ A "tap"; A (string_of_int x); A (string_of_int y) ]
  | Trace.Back -> L [ A "back" ]

let sexp_of_event : Wire.event -> sexp = function
  | Wire.Ev_tap { x; y } ->
      L [ A "tap"; A (string_of_int x); A (string_of_int y) ]
  | Wire.Ev_back -> L [ A "back" ]

let to_string (s : t) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "(snapshot";
  let field x =
    Buffer.add_string b "\n ";
    print_sexp b x
  in
  field (L [ A "version"; A "1" ]);
  field (L [ A "width"; A (string_of_int s.width) ]);
  field (L [ A "fuel"; A (string_of_int s.fuel) ]);
  field (L [ A "incremental"; A (if s.incremental then "true" else "false") ]);
  field (L [ A "cache"; A (if s.cache then "true" else "false") ]);
  field
    (L
       [
         A "evaluator";
         A
           (match s.evaluator with
           | Machine.Subst -> "subst"
           | Machine.Compiled -> "compiled");
       ]);
  field (L (A "program" :: List.map sexp_of_def (Program.defs s.program)));
  field
    (L
       (A "store"
       :: List.map (fun (g, v) -> L [ A g; sexp_of_value v ]) s.store));
  field
    (L
       (A "stack"
       :: List.map (fun (p, v) -> L [ A p; sexp_of_value v ]) s.stack));
  field (L (A "trace" :: List.map sexp_of_entry s.trace));
  field
    (L
       [
         A "fault";
         A
           (match s.fault with
           | None -> "none"
           | Some Session.Drop_next_event -> "drop"
           | Some Session.Duplicate_next_event -> "dup");
       ]);
  field (L (A "pending" :: List.map sexp_of_event s.pending));
  Buffer.add_string b ")\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let atom_of = function A s -> s | L _ -> fail "expected an atom"

let int_of x =
  match int_of_string_opt (atom_of x) with
  | Some v -> v
  | None -> fail "malformed integer %S" (atom_of x)

let float_of x =
  match float_of_string_opt (atom_of x) with
  | Some v -> v
  | None -> fail "malformed float %S" (atom_of x)

let bool_of x =
  match atom_of x with
  | "true" -> true
  | "false" -> false
  | s -> fail "malformed boolean %S" s

let eff_of = function
  | "p" -> Eff.Pure
  | "s" -> Eff.State
  | "r" -> Eff.Render
  | s -> fail "malformed effect %S" s

let rec typ_of : sexp -> Typ.t = function
  | A "num" -> Typ.Num
  | A "str" -> Typ.Str
  | L (A "tuple" :: ts) -> Typ.Tuple (List.map typ_of ts)
  | L [ A "fn"; a; A e; r ] -> Typ.Fn (typ_of a, eff_of e, typ_of r)
  | L [ A "list"; t ] -> Typ.List (typ_of t)
  | _ -> fail "malformed type"

let rec value_of : sexp -> Ast.value = function
  | L [ A "n"; f ] -> Ast.VNum (float_of f)
  | L [ A "s"; s ] -> Ast.VStr (atom_of s)
  | L (A "tup" :: vs) -> Ast.VTuple (List.map value_of vs)
  | L [ A "lam"; x; ty; e ] -> Ast.VLam (atom_of x, typ_of ty, expr_of e)
  | L (A "vlist" :: ty :: vs) -> Ast.VList (typ_of ty, List.map value_of vs)
  | _ -> fail "malformed value"

and expr_of : sexp -> Ast.expr = function
  | L [ A "val"; v ] -> Ast.Val (value_of v)
  | L [ A "var"; x ] -> Ast.Var (atom_of x)
  | L (A "tuple" :: es) -> Ast.Tuple (List.map expr_of es)
  | L [ A "app"; f; a ] -> Ast.App (expr_of f, expr_of a)
  | L [ A "fn"; f ] -> Ast.Fn (atom_of f)
  | L [ A "proj"; e; i ] -> Ast.Proj (expr_of e, int_of i)
  | L [ A "get"; g ] -> Ast.Get (atom_of g)
  | L [ A "set"; g; e ] -> Ast.Set (atom_of g, expr_of e)
  | L [ A "push"; p; e ] -> Ast.Push (atom_of p, expr_of e)
  | L [ A "pop" ] -> Ast.Pop
  | L [ A "boxed"; A "none"; e ] -> Ast.Boxed (None, expr_of e)
  | L [ A "boxed"; id; e ] ->
      Ast.Boxed (Some (Srcid.of_int (int_of id)), expr_of e)
  | L [ A "post"; e ] -> Ast.Post (expr_of e)
  | L [ A "setattr"; a; e ] -> Ast.SetAttr (atom_of a, expr_of e)
  | L [ A "prim"; name; L tys; L args ] ->
      Ast.Prim (atom_of name, List.map typ_of tys, List.map expr_of args)
  | _ -> fail "malformed expression"

let def_of : sexp -> Program.def = function
  | L [ A "global"; name; ty; init ] ->
      Program.Global
        { name = atom_of name; ty = typ_of ty; init = value_of init }
  | L [ A "func"; name; ty; body ] ->
      Program.Func { name = atom_of name; ty = typ_of ty; body = expr_of body }
  | L [ A "page"; name; arg_ty; init; render ] ->
      Program.Page
        {
          name = atom_of name;
          arg_ty = typ_of arg_ty;
          init = expr_of init;
          render = expr_of render;
        }
  | _ -> fail "malformed definition"

let entry_of : sexp -> Trace.entry = function
  | L [ A "tap"; x; y ] -> Trace.Tap { x = int_of x; y = int_of y }
  | L [ A "back" ] -> Trace.Back
  | _ -> fail "malformed trace entry"

let event_of : sexp -> Wire.event = function
  | L [ A "tap"; x; y ] -> Wire.Ev_tap { x = int_of x; y = int_of y }
  | L [ A "back" ] -> Wire.Ev_back
  | _ -> fail "malformed pending event"

let binding_of (kind : string) : sexp -> string * Ast.value = function
  | L [ name; v ] -> (atom_of name, value_of v)
  | _ -> fail "malformed %s binding" kind

let of_string (text : string) : (t, string) result =
  try
    match parse_sexp text with
    | L
        [
          A "snapshot";
          L [ A "version"; v ];
          L [ A "width"; width ];
          L [ A "fuel"; fuel ];
          L [ A "incremental"; incremental ];
          L [ A "cache"; cache ];
          L [ A "evaluator"; ev ];
          L (A "program" :: defs);
          L (A "store" :: store);
          L (A "stack" :: stack);
          L (A "trace" :: trace);
          L [ A "fault"; fault ];
          L (A "pending" :: pending);
        ] ->
        if int_of v <> 1 then fail "unsupported snapshot version %s" (atom_of v);
        Ok
          {
            width = int_of width;
            fuel = int_of fuel;
            incremental = bool_of incremental;
            cache = bool_of cache;
            evaluator =
              (match atom_of ev with
              | "subst" -> Machine.Subst
              | "compiled" -> Machine.Compiled
              | s -> fail "unknown evaluator %S" s);
            program = Program.of_defs (List.map def_of defs);
            store = List.map (binding_of "store") store;
            stack = List.map (binding_of "stack") stack;
            trace = List.map entry_of trace;
            fault =
              (match atom_of fault with
              | "none" -> None
              | "drop" -> Some Session.Drop_next_event
              | "dup" -> Some Session.Duplicate_next_event
              | s -> fail "unknown fault %S" s);
            pending = List.map event_of pending;
          }
    | _ -> Error "not a snapshot"
  with
  | Parse m -> Error m
  | Invalid_argument m -> Error m

(* ------------------------------------------------------------------ *)
(* Standalone programs                                                 *)
(* ------------------------------------------------------------------ *)

let program_to_string (p : Program.t) : string =
  let b = Buffer.create 1024 in
  print_sexp b (L (A "program" :: List.map sexp_of_def (Program.defs p)));
  Buffer.add_char b '\n';
  Buffer.contents b

let program_of_string (text : string) : (Program.t, string) result =
  try
    match parse_sexp (String.trim text) with
    | L (A "program" :: defs) -> Ok (Program.of_defs (List.map def_of defs))
    | _ -> Error "not a program"
  with
  | Parse m -> Error m
  | Invalid_argument m -> Error m

(* ------------------------------------------------------------------ *)
(* Capture / restore                                                   *)
(* ------------------------------------------------------------------ *)

let of_session ?(pending = []) (s : Session.t) : t =
  let st = Session.state s in
  {
    width = Session.width s;
    fuel = Session.fuel s;
    incremental = Session.cache_stats s <> None;
    cache = Session.render_cache_stats s <> None;
    evaluator = Session.evaluator s;
    program = st.Live_core.State.code;
    store = Store.bindings st.Live_core.State.store;
    stack = st.Live_core.State.stack;
    trace = Session.trace s;
    fault = Session.pending_fault s;
    pending;
  }

let def_equal (a : Program.def) (b : Program.def) : bool =
  match (a, b) with
  | ( Program.Global { name = n1; ty = t1; init = v1 },
      Program.Global { name = n2; ty = t2; init = v2 } ) ->
      String.equal n1 n2 && Typ.equal t1 t2 && Ast.equal_value v1 v2
  | ( Program.Func { name = n1; ty = t1; body = b1 },
      Program.Func { name = n2; ty = t2; body = b2 } ) ->
      String.equal n1 n2 && Typ.equal t1 t2 && Ast.equal_expr b1 b2
  | ( Program.Page { name = n1; arg_ty = t1; init = i1; render = r1 },
      Program.Page { name = n2; arg_ty = t2; init = i2; render = r2 } ) ->
      String.equal n1 n2 && Typ.equal t1 t2 && Ast.equal_expr i1 i2
      && Ast.equal_expr r1 r2
  | _ -> false

let program_equal (p : Program.t) (q : Program.t) : bool =
  let dp = Program.defs p and dq = Program.defs q in
  List.compare_lengths dp dq = 0 && List.for_all2 def_equal dp dq

let restore ?program (snap : t) : (Session.t, string) result =
  let program =
    match program with
    | Some p when program_equal p snap.program -> p
    | _ -> snap.program
  in
  match
    Session.restore ~width:snap.width ~fuel:snap.fuel
      ~incremental:snap.incremental ~cache:snap.cache ~evaluator:snap.evaluator
      ~trace:snap.trace ~fault:snap.fault
      ~store:(Store.of_bindings snap.store)
      ~stack:snap.stack program
  with
  | Ok s -> Ok s
  | Error e -> Error (Machine.error_to_string e)

let save (path : string) (s : t) : unit =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (to_string s);
  close_out oc;
  Sys.rename tmp path

let load (path : string) : (t, string) result =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error m
  | text -> of_string text
