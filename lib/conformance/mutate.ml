open Live_surface

let base_pool () : string array =
  [|
    Live_workloads.Mortgage.source ~listings:3 ();
    Live_workloads.Mortgage.source ~listings:3 ~i1:true ();
    Live_workloads.Mortgage.source ~listings:3 ~i2:true ();
    Live_workloads.Mortgage.source ~listings:3 ~i1:true ~i2:true ~i3:true ();
    Live_workloads.Counter.source;
    Live_workloads.Todo.source;
  |]

let broken_source = "page broken {"

let compiles (src : string) : bool =
  match Compile.compile src with Ok _ -> true | Error _ -> false

let print (p : Sast.program) : string = Printer.program_to_string p

let dummy_expr (desc : Sast.desc) : Sast.expr =
  { Sast.desc; loc = Loc.dummy; eid = -1 }

let dummy_stmt (sdesc : Sast.sdesc) : Sast.stmt =
  { Sast.sdesc; sloc = Loc.dummy; sid = -1 }

(* -- mutation operators ---------------------------------------------- *)

(** Remove one declaration (never the start page).  Usually only
    compiles when nothing references the declaration — exactly the
    edits that make fixup delete store bindings and stack entries. *)
let drop_decl (rng : Prng.t) (p : Sast.program) : Sast.program option =
  let victims =
    List.filter
      (fun d -> not (String.equal (Sast.decl_name d) "start"))
      p.Sast.decls
  in
  match victims with
  | [] -> None
  | _ ->
      let v = Sast.decl_name (Prng.pick rng (Array.of_list victims)) in
      Some
        {
          Sast.decls =
            List.filter
              (fun d -> not (String.equal (Sast.decl_name d) v))
              p.Sast.decls;
        }

(** Change a numeric global's declared initial value: old store
    bindings still type (S-OKAY), but renders that read the global
    through EP-GLOBAL-2's fallback must observe the new initial. *)
let reset_global (rng : Prng.t) (p : Sast.program) : Sast.program option =
  let nums =
    List.filter
      (fun d ->
        match d with
        | Sast.DGlobal { gty = Sast.TyNum; _ } -> true
        | _ -> false)
      p.Sast.decls
  in
  match nums with
  | [] -> None
  | _ ->
      let v = Sast.decl_name (Prng.pick rng (Array.of_list nums)) in
      let fresh = float_of_int (1 + Prng.int rng 99) in
      Some
        {
          Sast.decls =
            List.map
              (fun d ->
                match d with
                | Sast.DGlobal ({ name; _ } as g) when String.equal name v ->
                    Sast.DGlobal
                      { g with init = dummy_expr (Sast.Num fresh) }
                | d -> d)
              p.Sast.decls;
        }

(** Flip a global between number and string: a surviving store binding
    no longer types, so fixup must S-SKIP it back to the new initial. *)
let retype_global (rng : Prng.t) (p : Sast.program) : Sast.program option =
  let globals =
    List.filter
      (fun d ->
        match d with
        | Sast.DGlobal { gty = Sast.TyNum | Sast.TyStr; _ } -> true
        | _ -> false)
      p.Sast.decls
  in
  match globals with
  | [] -> None
  | _ ->
      let v = Sast.decl_name (Prng.pick rng (Array.of_list globals)) in
      Some
        {
          Sast.decls =
            List.map
              (fun d ->
                match d with
                | Sast.DGlobal ({ name; gty = Sast.TyNum; _ } as g)
                  when String.equal name v ->
                    Sast.DGlobal
                      {
                        g with
                        gty = Sast.TyStr;
                        init = dummy_expr (Sast.Str "mutated");
                      }
                | Sast.DGlobal ({ name; gty = Sast.TyStr; _ } as g)
                  when String.equal name v ->
                    Sast.DGlobal
                      { g with gty = Sast.TyNum; init = dummy_expr (Sast.Num 7.) }
                | d -> d)
              p.Sast.decls;
        }

(** Declare a fresh global the old code never had: its first read goes
    through EP-GLOBAL-2, and an UPDATE back to the old code deletes
    any binding it acquired. *)
let add_global (rng : Prng.t) (p : Sast.program) : Sast.program option =
  let name = Printf.sprintf "fz%d" (Prng.int rng 1000) in
  if List.exists (fun d -> String.equal (Sast.decl_name d) name) p.Sast.decls
  then None
  else
    Some
      {
        Sast.decls =
          Sast.DGlobal
            {
              name;
              gty = Sast.TyNum;
              init = dummy_expr (Sast.Num (float_of_int (Prng.int rng 10)));
              dloc = Loc.dummy;
            }
          :: p.Sast.decls;
      }

(** Body-only edit class: append a [post] line to one page's render
    block.  Every declared signature is preserved, so the incremental
    pipeline classifies exactly this page (and its reverse dependants)
    dirty, no store binding or stack entry is re-checked, and only the
    edited page's cache entries are invalidated — the common case of
    live editing, and the edit class B13 benchmarks. *)
let edit_page_render (rng : Prng.t) (p : Sast.program) : Sast.program option =
  let pages =
    List.filter
      (fun d -> match d with Sast.DPage _ -> true | _ -> false)
      p.Sast.decls
  in
  match pages with
  | [] -> None
  | _ ->
      let v = Sast.decl_name (Prng.pick rng (Array.of_list pages)) in
      let line =
        dummy_stmt
          (Sast.SPost
             (dummy_expr (Sast.Str (Printf.sprintf "fz%d" (Prng.int rng 1000)))))
      in
      Some
        {
          Sast.decls =
            List.map
              (fun d ->
                match d with
                | Sast.DPage ({ name; prender; _ } as pg)
                  when String.equal name v ->
                    Sast.DPage { pg with prender = prender @ [ line ] }
                | d -> d)
              p.Sast.decls;
        }

(** Added-definition edit class: declare a fresh identity function
    nothing references.  The incremental typecheck must check exactly
    the new definition; every session's state survives untouched. *)
let add_fun (rng : Prng.t) (p : Sast.program) : Sast.program option =
  let name = Printf.sprintf "fzf%d" (Prng.int rng 1000) in
  if List.exists (fun d -> String.equal (Sast.decl_name d) name) p.Sast.decls
  then None
  else
    Some
      {
        Sast.decls =
          Sast.DFun
            {
              name;
              params = [ ("x", Sast.TyNum) ];
              ret = Some Sast.TyNum;
              body = [ dummy_stmt (Sast.SReturn (dummy_expr (Sast.Ref "x"))) ];
              dloc = Loc.dummy;
            }
          :: p.Sast.decls;
      }

(** The transaction edit class: 2–4 stacked signature-preserving edits
    (page-body lines, fresh functions) composed into {e one} change
    set — what {!Live_host.Rollout.compose} hands to [begin_] as a
    single diff/typecheck.  Kept out of {!operators}: a transaction is
    the payload of a [Begin_txn] trace event, not a plain UPDATE. *)
let transaction (rng : Prng.t) (src : string) : string option =
  match Compile.parse src with
  | Error _ -> None
  | Ok p ->
      let ops = [| edit_page_render; add_fun |] in
      let rec compose_edits i q =
        if i = 0 then Some q
        else
          match (Prng.pick rng ops) rng q with
          | None -> None
          | Some q' -> compose_edits (i - 1) q'
      in
      let rec attempt k =
        if k = 0 then None
        else
          match compose_edits (2 + Prng.int rng 3) p with
          | None -> attempt (k - 1)
          | Some p' ->
              let src' = print p' in
              if (not (String.equal src' src)) && compiles src' then Some src'
              else attempt (k - 1)
      in
      attempt 10

let operators =
  [|
    drop_decl;
    reset_global;
    retype_global;
    add_global;
    edit_page_render;
    add_fun;
  |]

let mutate (rng : Prng.t) (src : string) : string option =
  match Compile.parse src with
  | Error _ -> None
  | Ok p ->
      let rec attempt k =
        if k = 0 then None
        else
          let op = Prng.pick rng operators in
          match op rng p with
          | None -> attempt (k - 1)
          | Some p' ->
              let src' = print p' in
              if (not (String.equal src' src)) && compiles src' then Some src'
              else attempt (k - 1)
      in
      attempt 10

(* -- deterministic simplifications (for the shrinker) ---------------- *)

(** Drop trailing halves first (strongest), then single statements. *)
let block_reductions (b : Sast.block) : Sast.block list =
  let n = List.length b in
  if n = 0 then []
  else
    let take k = List.filteri (fun i _ -> i < k) b in
    let without i = List.filteri (fun j _ -> j <> i) b in
    let halves = if n > 1 then [ take (n / 2) ] else [] in
    halves @ List.init n without

let simplifications (src : string) : string list =
  match Compile.parse src with
  | Error _ -> []
  | Ok p ->
      let drop_decls =
        List.filter_map
          (fun d ->
            let name = Sast.decl_name d in
            if String.equal name "start" then None
            else
              Some
                {
                  Sast.decls =
                    List.filter
                      (fun d' ->
                        not (String.equal (Sast.decl_name d') name))
                      p.Sast.decls;
                })
          p.Sast.decls
      in
      let page_reductions =
        List.concat_map
          (fun d ->
            match d with
            | Sast.DPage { name; params; pinit; prender; dloc } ->
                let with_bodies ~pinit ~prender =
                  {
                    Sast.decls =
                      List.map
                        (fun d' ->
                          match d' with
                          | Sast.DPage { name = n'; _ }
                            when String.equal n' name ->
                              Sast.DPage { name; params; pinit; prender; dloc }
                          | d' -> d')
                        p.Sast.decls;
                  }
                in
                List.map
                  (fun b -> with_bodies ~pinit ~prender:b)
                  (block_reductions prender)
                @
                if pinit = [] then []
                else [ with_bodies ~pinit:[] ~prender ]
            | _ -> [])
          p.Sast.decls
      in
      let candidates = drop_decls @ page_reductions in
      let seen = Hashtbl.create 16 in
      List.filter_map
        (fun p' ->
          let src' = print p' in
          if
            String.equal src' src
            || Hashtbl.mem seen src'
            || not (compiles src')
          then None
          else begin
            Hashtbl.replace seen src' ();
            Some src'
          end)
        candidates
