(** Deterministic conformance traces: a serializable script of system
    transitions, replayable from a file or regenerable from a one-line
    seed ({!Engine.gen_trace}).

    A trace is self-contained: it carries the {e program pool} — the
    surface sources its UPDATE events install — so a checked-in trace
    replays identically forever, independent of the workload library
    it was originally generated from. *)

type event =
  | Tap of { x : int; y : int }  (** the TAP transition, by coordinates *)
  | Back  (** the BACK transition *)
  | Update of int  (** the UPDATE transition; installs pool.(i) *)
  | Broken_update
      (** an edit that fails to compile: must be rejected by every
          configuration and change nothing *)
  | Render
      (** force an extra display observation (screenshot) — exercises
          the cached pipeline's revalidation / skipped-frame paths *)
  | Flush_cache
      (** fault: drop every warm cache; must be observationally
          invisible *)
  | Drop_next
      (** fault: the event enqueued by the next tap/back is lost *)
  | Dup_next
      (** fault: ... is delivered twice, back to back *)
  | Begin_txn of { prog : int; promote : bool }
      (** stage an edit transaction targeting pool.(prog); [promote]
          records the decision the driver will take at the end of the
          canary window.  A [Begin_txn] while another transaction is
          open resolves the open one first (promote iff it was
          canaried with a promote decision, else rollback). *)
  | Canary
      (** apply the staged transaction to the canary cohort (the whole
          fleet-of-one under the oracle); a [Canary] with no staged
          transaction is a no-op *)
  | Promote
      (** resolve the open transaction; migrates the shadow cohort iff
          the canary ran with a promote decision (a transaction that
          never canaried is closed without applying anything) *)
  | Rollback
      (** resolve the open transaction by rewinding canaries to the
          base epoch — observationally a no-op *)

type t = {
  seed : int;  (** provenance; [0] for hand-written traces *)
  pool : string array;  (** program sources; [pool.(0)] boots the trace *)
  events : event list;
}

val equal : t -> t -> bool
val pp_event : Format.formatter -> event -> unit
val event_to_string : event -> string

val to_string : t -> string
(** Canonical text serialization: [to_string] after {!of_string} is
    byte-identical. *)

val of_string : string -> (t, string) result

val save : string -> t -> unit
val load : string -> (t, string) result

val used_ids : t -> int list
(** Pool ids the trace actually references (boot slot 0 plus every
    [Update] and [Begin_txn]), ascending. *)

val gc_pool : t -> t
(** Drop unreferenced pool entries and renumber — keeps shrunk traces
    small before they are checked in. *)
