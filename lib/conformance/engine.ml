let default_events = 24

let gen_trace ?(n_events = default_events) ?(mutants = 2) ~(seed : int) () :
    Ctrace.t =
  let rng = Prng.create seed in
  let base = Mutate.base_pool () in
  (* grow the pool with seeded fixup-aware mutants of random bases *)
  let extra = ref [] in
  for _ = 1 to mutants do
    match Mutate.mutate rng (Prng.pick rng base) with
    | Some src -> extra := src :: !extra
    | None -> ()
  done;
  (* ... and one transaction-sized change set (2–4 stacked edits), so
     Begin_txn events can stage the edit class rollouts exist for *)
  (match Mutate.transaction rng (Prng.pick rng base) with
  | Some src -> extra := src :: !extra
  | None -> ());
  let pool = Array.append base (Array.of_list (List.rev !extra)) in
  (* any pool entry may boot the trace; slot 0 is the boot slot *)
  let b = Prng.int rng (Array.length pool) in
  let tmp = pool.(0) in
  pool.(0) <- pool.(b);
  pool.(b) <- tmp;
  let n = 1 + Prng.int rng (max 1 n_events) in
  let rec gen acc k =
    if k <= 0 then List.rev acc
    else
      let w = Prng.int rng 22 in
      if w < 8 then
        gen
          (Ctrace.Tap { x = Prng.int rng 46; y = Prng.int rng 40 } :: acc)
          (k - 1)
      else if w < 10 then gen (Ctrace.Back :: acc) (k - 1)
      else if w < 13 then
        gen (Ctrace.Update (Prng.int rng (Array.length pool)) :: acc) (k - 1)
      else if w < 14 then begin
        (* an UPDATE storm: consecutive code swaps with no interaction
           in between — the mid-trace stress for the fixup path *)
        let burst = 2 + Prng.int rng 3 in
        let acc = ref acc in
        for _ = 1 to burst do
          acc := Ctrace.Update (Prng.int rng (Array.length pool)) :: !acc
        done;
        gen !acc (k - 1)
      end
      else if w < 15 then gen (Ctrace.Broken_update :: acc) (k - 1)
      else if w < 16 then gen (Ctrace.Render :: acc) (k - 1)
      else if w < 17 then gen (Ctrace.Flush_cache :: acc) (k - 1)
      else if w < 18 then gen (Ctrace.Drop_next :: acc) (k - 1)
      else if w < 19 then gen (Ctrace.Dup_next :: acc) (k - 1)
      else begin
        (* a staged-rollout block: stage a change set, canary it under
           a little interleaved traffic, then resolve it the way it
           was opened to — the full edit-transaction lifecycle in one
           generated unit (the shrinker may still tear it apart, which
           the oracle's resolution rule handles) *)
        let promote = Prng.bool rng in
        let prog = Prng.int rng (Array.length pool) in
        let acc = ref (Ctrace.Begin_txn { prog; promote } :: acc) in
        let traffic () =
          for _ = 1 to Prng.int rng 3 do
            acc :=
              Ctrace.Tap { x = Prng.int rng 46; y = Prng.int rng 40 } :: !acc
          done
        in
        traffic ();
        acc := Ctrace.Canary :: !acc;
        traffic ();
        acc := (if promote then Ctrace.Promote else Ctrace.Rollback) :: !acc;
        gen !acc (k - 1)
      end
  in
  { Ctrace.seed; pool; events = gen [] n }

type failure = {
  iter : int;
  trace_seed : int;
  trace : Ctrace.t;
  divergence : Oracle.divergence;
  shrunk : Ctrace.t;
  shrunk_divergence : Oracle.divergence;
}

type report = {
  iters_run : int;
  events_run : int;
  failure : failure option;
}

let run_campaign ?(iters = 100) ?n_events ?width ?configs ?sabotage
    ?shrink_budget ?(on_progress = fun _ -> ()) ~(seed : int) () : report =
  let events_run = ref 0 in
  let rec go k =
    if k >= iters then { iters_run = iters; events_run = !events_run; failure = None }
    else begin
      on_progress k;
      let trace_seed = Prng.derive seed k in
      let trace = gen_trace ?n_events ~seed:trace_seed () in
      events_run := !events_run + List.length trace.Ctrace.events;
      match Oracle.run ?width ?configs ?sabotage trace with
      | Oracle.Agreed -> go (k + 1)
      | Oracle.Boot_failed _ ->
          (* the generator only emits compiling boot programs; treat a
             failure to boot as a skipped iteration *)
          go (k + 1)
      | Oracle.Diverged d ->
          let shrunk, shrunk_d =
            Shrink.shrink ?budget:shrink_budget ?width ?configs ?sabotage
              trace d
          in
          {
            iters_run = k + 1;
            events_run = !events_run;
            failure =
              Some
                {
                  iter = k;
                  trace_seed;
                  trace;
                  divergence = d;
                  shrunk;
                  shrunk_divergence = shrunk_d;
                };
          }
    end
  in
  go 0

let replay_seed ?n_events ?width ?configs ?sabotage (trace_seed : int) :
    Ctrace.t * Oracle.outcome =
  let trace = gen_trace ?n_events ~seed:trace_seed () in
  (trace, Oracle.run ?width ?configs ?sabotage trace)
