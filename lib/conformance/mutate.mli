(** The fuzzer's program-edit pool: fixup-aware mutations of surface
    sources.

    "Fixup-aware" means the operators are chosen to exercise the
    Fig. 12 UPDATE/fixup path specifically: deleting declarations
    (S-SKIP / P-SKIP), retyping globals (S-SKIP on type mismatch),
    changing initial values (EP-GLOBAL-2's fallback, and the render
    cache's recorded reads), and adding fresh globals.  Every mutant
    is validated by the full compilation pipeline, so the pool only
    ever contains programs an editor could actually install. *)

val base_pool : unit -> string array
(** The workload variants edits move between: the mortgage app's
    Sec. 3.1 improvement steps plus two differently-shaped apps, so
    edits cross program-shape boundaries. *)

val broken_source : string
(** A source that must be rejected by the compiler — the
    [Broken_update] event's payload. *)

val mutate : Prng.t -> string -> string option
(** One random fixup-aware mutation of a compiling source; [None] if
    no compiling mutant was found within the attempt budget. *)

val transaction : Prng.t -> string -> string option
(** A transaction-sized change set: 2–4 stacked signature-preserving
    edits (page-body lines, fresh functions) composed into one
    compiling source — the payload of a [Begin_txn] trace event, the
    edit class {!Live_host.Rollout} stages and B14 benchmarks.  [None]
    if no compiling composition was found within the budget. *)

val simplifications : string -> string list
(** Deterministic, compiling one-step simplifications of a source
    (declaration dropped, page body truncated, init body emptied) —
    the shrinker's program-reduction moves, strongest first. *)
