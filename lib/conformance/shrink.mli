(** Delta-debugging minimizer for failing conformance traces.

    A shrink step is accepted only if the reduced trace still fails
    with the {e same divergence class} — the same configuration
    disagreeing on the same observable — so the shrunk trace
    witnesses the same bug, not a different one (a property tested in
    [test/test_conformance.ml]). *)

type cls = { config : string; field : string }
(** The identity of a divergence for shrinking purposes. *)

val class_of : Oracle.divergence -> cls
val class_equal : cls -> cls -> bool

val shrink :
  ?budget:int ->
  ?width:int ->
  ?configs:string list ->
  ?sabotage:Oracle.sabotage ->
  Ctrace.t ->
  Oracle.divergence ->
  Ctrace.t * Oracle.divergence
(** Minimize: (1) truncate past the divergent step, (2) delta-debug
    the event list (chunks, then single events), (3) simplify the
    programs UPDATE installs with the fixup-aware mutator's
    deterministic reductions, (4) garbage-collect the pool.  [budget]
    caps the number of oracle re-runs (default 400). *)
