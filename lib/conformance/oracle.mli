(** The differential oracle: one trace, several semantic
    configurations, structural diffing after every step.

    Configurations (all driving the same Fig. 9 transition system):

    - ["machine"]   — the uncached {!Live_core.Machine} driven
      directly, with its own hit-testing (the reference);
    - ["session"]   — {!Live_runtime.Session} with no caches;
    - ["cached"]    — Session with the end-to-end incremental render
      pipeline (dependency-tracked memoization, layout reuse, damage
      repainting);
    - ["incremental"] — Session with the Sec. 5 structural layout
      cache;
    - ["host"]      — a {!Live_host} fleet of one, driven end-to-end
      through its ingress queue, batching scheduler and typecheck-once
      broadcast; must agree byte-for-byte with the plain session;
    - ["host-incr"] — the same fleet of one with the O(edit) broadcast
      pipeline fully on: render cache enabled and {e retargeted} (not
      flushed) across updates, targeted fix-up, incremental
      compilation, and every UPDATE typechecked by both the scratch
      and the incremental checker
      ({!Live_host.Broadcast.typecheck_mode} [Cross_check]) — a
      verdict disagreement rejects the broadcast and shows up as a
      status divergence, so every golden trace and fuzzed [Mutate]
      edit differentially verifies the incremental pipeline;
    - ["host-parallel"] — the same fleet of one executed by the
      {!Live_host.Parallel} domain pool (2 domains): taps drain
      through the parallel tick's shard assignment and barrier,
      updates through the stop-the-world broadcast.  Covering it here
      means every golden trace and every fuzz campaign differentially
      checks the multicore host against the reference machine,
      byte-for-byte;
    - ["host-txn"]  — the transactional staged-rollout pipeline
      ({!Live_host.Rollout}) as a fleet of one, driven through real
      edit transactions: [Begin_txn] stages the change set as a second
      live epoch (diffed, typechecked once, cross-checked), [Canary]
      applies it to the (whole-fleet) canary cohort, and the
      transaction resolves by promote or rollback per the recorded
      decision.  Every other configuration interprets the same events
      through the reference transaction semantics: a promoted
      transaction is exactly one plain UPDATE, a rolled-back one is
      exactly nothing.  During a doomed-to-roll-back canary window
      this configuration legitimately runs the edit, so it is compared
      non-strictly for the window; byte-equality resumes at the
      resolving event — the rollback soundness statement (checkpoint +
      journal replay ≡ never rolled out) checked on every trace;
    - ["host-net"]  — the networked host's persistence stack: a fleet
      of one where every step is followed by a full detach/resume
      cycle — the session is captured as a canonical
      {!Live_net.Snapshot}, the text rides through a {!Live_net.Wire}
      [Resume] frame, is parsed back (re-print byte-identical), and
      the restored session is adopted into a fresh registry as a fresh
      host process would.  Byte-agreement with the reference machine
      is the ISSUE's digest-equality statement: detach/resume after
      every single transition must be observationally invisible;
    - ["restart"]   — the {!Live_baseline.Restart_runtime}
      edit-compile-run baseline; compared strictly until the first
      UPDATE or queue fault (after which its semantics intentionally
      differ), invariant-checked throughout.

    After every event the oracle compares, per configuration: the
    step status, the store, the page stack, the display box tree, and
    the painted pixels — and reports the {e first} divergent step. *)

type divergence = {
  step : int;  (** event index; [-1] = divergence at boot *)
  event : Ctrace.event option;  (** [None] at boot *)
  config : string;  (** the configuration that disagrees *)
  field : string;
      (** ["status"], ["store"], ["stack"], ["display"], ["pixels"],
          ["invariant"], or ["broken-update"] *)
  expected : string;  (** the reference configuration's observation *)
  actual : string;
}

type outcome =
  | Agreed  (** every configuration agreed at every step *)
  | Diverged of divergence
  | Boot_failed of string
      (** the trace's boot program does not compile or boot *)

type sabotage =
  | Cache_no_flush
      (** deliberately keep stale render-cache entries across UPDATE
          (see {!Live_core.Render_cache.set_sabotage_no_flush}) — used
          to prove the oracle catches a broken cache *)

val all_configs : string list

val run :
  ?width:int ->
  ?configs:string list ->
  ?sabotage:sabotage ->
  Ctrace.t ->
  outcome
(** Replay the trace through the named configurations (default: all).
    The first named configuration is the comparison reference;
    ["machine"] leads the default list. *)

val pp_divergence : Format.formatter -> divergence -> unit
(** The pretty-printed delta: step, event, configuration, field, and
    a focused diff of the two observations. *)
