type cls = { config : string; field : string }

let class_of (d : Oracle.divergence) : cls =
  { config = d.Oracle.config; field = d.Oracle.field }

let class_equal (a : cls) (b : cls) =
  String.equal a.config b.config && String.equal a.field b.field

let shrink ?(budget = 400) ?width ?configs ?sabotage (trace : Ctrace.t)
    (d0 : Oracle.divergence) : Ctrace.t * Oracle.divergence =
  let cls = class_of d0 in
  let runs = ref 0 in
  (* Does the candidate still fail the same way?  Returns the fresh
     divergence so the final report matches the final trace. *)
  let still_fails (t : Ctrace.t) : Oracle.divergence option =
    if !runs >= budget then None
    else begin
      incr runs;
      match Oracle.run ?width ?configs ?sabotage t with
      | Oracle.Diverged d when class_equal (class_of d) cls -> Some d
      | _ -> None
    end
  in
  let best = ref trace in
  let best_d = ref d0 in
  let accept (t : Ctrace.t) : bool =
    match still_fails t with
    | Some d ->
        best := t;
        best_d := d;
        true
    | None -> false
  in

  (* 1. events after the divergent step cannot matter *)
  let n = List.length trace.Ctrace.events in
  if d0.Oracle.step >= 0 && d0.Oracle.step + 1 < n then
    ignore
      (accept
         {
           trace with
           Ctrace.events =
             List.filteri (fun i _ -> i <= d0.Oracle.step) trace.Ctrace.events;
         });

  (* 2. delta-debug the event list: remove chunks, halving the chunk
     size until single events *)
  let rec ddmin (chunk : int) =
    if chunk >= 1 && !runs < budget then begin
      let removed = ref false in
      let start = ref 0 in
      while !start < List.length !best.Ctrace.events && !runs < budget do
        let evs = Array.of_list !best.Ctrace.events in
        let len = Array.length evs in
        let hi = min len (!start + chunk) in
        let candidate =
          {
            !best with
            Ctrace.events =
              Array.to_list
                (Array.append (Array.sub evs 0 !start)
                   (Array.sub evs hi (len - hi)));
          }
        in
        if accept candidate then removed := true
          (* keep [start]: the next chunk slid into place *)
        else start := !start + chunk
      done;
      if !removed then ddmin chunk else ddmin (chunk / 2)
    end
  in
  ddmin (max 1 (List.length !best.Ctrace.events / 2));

  (* 3. simplify the programs the trace still uses *)
  let rec simplify_pool () =
    if !runs < budget then begin
      let improved = ref false in
      List.iter
        (fun id ->
          if (not !improved) && id < Array.length !best.Ctrace.pool then
            let src = !best.Ctrace.pool.(id) in
            List.iter
              (fun src' ->
                if (not !improved) && !runs < budget then begin
                  let pool = Array.copy !best.Ctrace.pool in
                  pool.(id) <- src';
                  if accept { !best with Ctrace.pool } then improved := true
                end)
              (Mutate.simplifications src))
        (Ctrace.used_ids !best);
      if !improved then simplify_pool ()
    end
  in
  simplify_pool ();

  (* 4. drop unused pool entries (this cannot change behaviour, but
     verify anyway — and keep the larger trace if it somehow does) *)
  let gced = Ctrace.gc_pool !best in
  if not (Ctrace.equal gced !best) then ignore (accept gced);
  (!best, !best_d)
