(** The fuzzing engine: seeded trace generation and the campaign loop
    that drives the differential oracle and the shrinker.

    Everything is a pure function of the seed: [gen_trace ~seed] is
    deterministic (it uses {!Prng}, never the stdlib [Random]), and
    campaign iteration [k] of master seed [s] uses the derived seed
    {!Prng.derive}[ s k] — so any failure reproduces from one line:
    [fuzz --replay-seed N]. *)

val gen_trace : ?n_events:int -> ?mutants:int -> seed:int -> unit -> Ctrace.t
(** A random trace over {!Mutate.base_pool} plus up to [mutants]
    (default 2) seeded fixup-aware mutants: taps, backs, updates
    (including storms of consecutive updates), broken edits, forced
    renders, cache flushes, and queue faults.  [n_events] bounds the
    script length (default 24; at least one event is generated). *)

type failure = {
  iter : int;  (** campaign iteration that failed *)
  trace_seed : int;  (** the derived one-line reproduction seed *)
  trace : Ctrace.t;  (** the original failing trace *)
  divergence : Oracle.divergence;
  shrunk : Ctrace.t;  (** delta-debugged witness *)
  shrunk_divergence : Oracle.divergence;
}

type report = {
  iters_run : int;
  events_run : int;  (** total events stepped, for throughput stats *)
  failure : failure option;  (** [None]: every trace agreed *)
}

val run_campaign :
  ?iters:int ->
  ?n_events:int ->
  ?width:int ->
  ?configs:string list ->
  ?sabotage:Oracle.sabotage ->
  ?shrink_budget:int ->
  ?on_progress:(int -> unit) ->
  seed:int ->
  unit ->
  report
(** Generate-and-check [iters] traces (default 100), stopping at the
    first divergence, which is shrunk before being reported. *)

val replay_seed :
  ?n_events:int ->
  ?width:int ->
  ?configs:string list ->
  ?sabotage:Oracle.sabotage ->
  int ->
  Ctrace.t * Oracle.outcome
(** Regenerate the trace of a derived seed and run the oracle once —
    the one-line reproduction path. *)
