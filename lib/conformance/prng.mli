(** Re-export of {!Live_core.Prng} (splitmix64).  The generator lives
    in [live_core] so host-side code (canary cohort selection in
    {!Live_host.Rollout}), the networked load harness and the
    conformance fuzzer share one pinned stream; re-exporting the whole
    signature (rather than redeclaring it) keeps the two modules
    equal by construction — seeds, states and helpers cross the
    boundary freely and cannot drift. *)

include module type of struct
  include Live_core.Prng
end
