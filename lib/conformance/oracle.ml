open Live_core
module Session = Live_runtime.Session
module Restart = Live_baseline.Restart_runtime

type divergence = {
  step : int;
  event : Ctrace.event option;
  config : string;
  field : string;
  expected : string;
  actual : string;
}

type outcome = Agreed | Diverged of divergence | Boot_failed of string

type sabotage = Cache_no_flush

(* ------------------------------------------------------------------ *)
(* Observations                                                        *)
(* ------------------------------------------------------------------ *)

(** What a configuration exposes after every step, as canonical
    strings: cheap to compare, and already printable when a
    divergence must be reported. *)
type obs = { store : string; stack : string; display : string; pixels : string }

let obs_of_state ~(width : int) (st : State.t) : obs =
  let store =
    Store.bindings st.State.store
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (g, v) ->
           Printf.sprintf "%s = %s" g (Pretty.value_to_string v))
    |> String.concat "\n"
  in
  let stack =
    st.State.stack
    |> List.map (fun (p, v) ->
           Printf.sprintf "%s(%s)" p (Pretty.value_to_string v))
    |> String.concat " ; "
  in
  let display, pixels =
    match st.State.display with
    | State.Invalid -> ("<invalid>", "<invalid>")
    | State.Shown b ->
        (Fmt.str "%a" Boxcontent.pp b, Live_ui.Render.screenshot ~width b)
  in
  { store; stack; display; pixels }

(** Structural invariants every configuration must keep at every
    stable point, whatever the trace did: the state types (Fig. 11),
    the queue is drained, the display is valid. *)
let invariant_of_state (st : State.t) : string option =
  match State_typing.check_state st with
  | Error m -> Some ("ill-typed state: " ^ m)
  | Ok () ->
      if not (State.is_stable st) then Some "state not stable"
      else if not (State.display_valid st) then Some "display invalid"
      else None

(* ------------------------------------------------------------------ *)
(* Configurations                                                      *)
(* ------------------------------------------------------------------ *)

(** A step consumes one trace event; [Ok] carries a short status word
    so configurations must also agree on {e how} a step concluded
    (tapped vs. missed, updated vs. rejected). *)
type config = {
  name : string;
  step : Ctrace.event -> Program.t option -> (string, string) result;
  observe : unit -> obs;
  invariant : unit -> string option;
  strict : unit -> bool;
      (** structural comparison applies; the restart baseline drops
          out at its first UPDATE or queue fault *)
  finalize : unit -> unit;
      (** release owned resources (the parallel host's worker
          domains); called exactly once by {!run}, on every path *)
}

let err_str (e : Machine.error) = Machine.error_to_string e

(** The reference: the uncached Machine driven directly, with the
    oracle's own hit-testing (no Session code involved). *)
let machine_config ~(width : int) (boot : Program.t) :
    (config, string) result =
  match Machine.boot boot with
  | Error e -> Error (err_str e)
  | Ok st0 ->
      let state = ref st0 in
      let pending : [ `Drop | `Dup ] option ref = ref None in
      let apply_pending () =
        match !pending with
        | None -> ()
        | Some f ->
            pending := None;
            state :=
              (match f with
              | `Drop -> Machine.drop_oldest_event !state
              | `Dup -> Machine.duplicate_oldest_event !state)
      in
      let stabilize () =
        match Machine.run_to_stable !state with
        | Ok st ->
            state := st;
            Ok ()
        | Error e -> Error (err_str e)
      in
      let ( let* ) = Result.bind in
      let step (ev : Ctrace.event) (prog : Program.t option) =
        match ev with
        | Ctrace.Tap { x; y } -> (
            match !state.State.display with
            | State.Invalid -> Error "tap: display invalid"
            | State.Shown b -> (
                let root = Live_ui.Layout.layout_page ~width b in
                match Live_ui.Layout.handler_at root ~x ~y with
                | None -> Ok "no-handler"
                | Some handler ->
                    let* st =
                      Result.map_error err_str
                        (Machine.tap !state ~handler)
                    in
                    state := st;
                    apply_pending ();
                    let* () = stabilize () in
                    Ok "tapped"))
        | Ctrace.Back ->
            state := Machine.back !state;
            apply_pending ();
            let* () = stabilize () in
            Ok "ok"
        | Ctrace.Update _ -> (
            match prog with
            | None -> Ok "rejected"
            | Some code ->
                let* st =
                  Result.map_error err_str (Machine.update code !state)
                in
                state := st;
                let* () = stabilize () in
                Ok "updated")
        | Ctrace.Broken_update -> Ok "rejected"
        | Ctrace.Render | Ctrace.Flush_cache -> Ok "ok"
        | Ctrace.Drop_next ->
            pending := Some `Drop;
            Ok "ok"
        | Ctrace.Dup_next ->
            pending := Some `Dup;
            Ok "ok"
        | Ctrace.Begin_txn _ | Ctrace.Canary | Ctrace.Promote
        | Ctrace.Rollback ->
            (* interpreted by the transaction wrapper ({!with_txn});
               inert if a config is ever driven without it *)
            Ok "ok"
      in
      Ok
        {
          name = "machine";
          step;
          observe = (fun () -> obs_of_state ~width !state);
          invariant = (fun () -> invariant_of_state !state);
          strict = (fun () -> true);
          finalize = ignore;
        }

(** A {!Live_runtime.Session}, in one of its cache modes and with
    either expression engine.  [evaluator] defaults to the session
    default (closure-compiled); the ["session"] configuration pins the
    substitution engine so both engines stay under differential test. *)
let session_config ~(width : int) ~(name : string) ~(incremental : bool)
    ~(cache : bool) ?evaluator ?(sabotage : sabotage option)
    (boot : Program.t) : (config, string) result =
  match Session.create ~width ~incremental ~cache ?evaluator boot with
  | Error e -> Error (err_str e)
  | Ok s ->
      (match sabotage with
      | Some Cache_no_flush ->
          Option.iter
            (fun rc -> Render_cache.set_sabotage_no_flush rc true)
            (Session.render_cache_handle s)
      | None -> ());
      let step (ev : Ctrace.event) (prog : Program.t option) =
        match ev with
        | Ctrace.Tap { x; y } -> (
            match Session.tap s ~x ~y with
            | Ok Session.Tapped -> Ok "tapped"
            | Ok Session.No_handler -> Ok "no-handler"
            | Error e -> Error (err_str e))
        | Ctrace.Back -> (
            match Session.back s with
            | Ok () -> Ok "ok"
            | Error e -> Error (err_str e))
        | Ctrace.Update _ -> (
            match prog with
            | None -> Ok "rejected"
            | Some code -> (
                match Session.update s code with
                | Ok _report -> Ok "updated"
                | Error e -> Error (err_str e)))
        | Ctrace.Broken_update -> Ok "rejected"
        | Ctrace.Render ->
            ignore (Session.screenshot s);
            Ok "ok"
        | Ctrace.Flush_cache ->
            Session.flush_caches s;
            Ok "ok"
        | Ctrace.Drop_next ->
            Session.inject s Session.Drop_next_event;
            Ok "ok"
        | Ctrace.Dup_next ->
            Session.inject s Session.Duplicate_next_event;
            Ok "ok"
        | Ctrace.Begin_txn _ | Ctrace.Canary | Ctrace.Promote
        | Ctrace.Rollback ->
            Ok "ok" (* interpreted by {!with_txn} *)
      in
      Ok
        {
          name;
          step;
          observe = (fun () -> obs_of_state ~width (Session.state s));
          invariant = (fun () -> invariant_of_state (Session.state s));
          strict = (fun () -> true);
          finalize = ignore;
        }

(** The multi-session host (lib/host) as a fleet of one, driven
    end-to-end through its ingress / scheduler / broadcast pipeline: a
    tap is offered to the bounded ingress queue and drained by a
    scheduler tick; an update goes through the typecheck-once
    {!Live_host.Broadcast}.  A single-session fleet must agree
    byte-for-byte with the plain session — the scheduler batches and
    coalesces only {e painting}, never the Fig. 9 transitions — so the
    fuzzer's whole trace corpus covers the host subsystem for free. *)
let host_config ~(width : int) ?jobs ?(cache = false) ?typecheck
    (boot : Program.t) : (config, string) result =
  let open Live_host in
  let cfg =
    {
      Registry.default_config with
      Registry.width;
      cache;
      (* ample headroom: the oracle ticks after every offer, so the
         queue never fills and backpressure can never drop an event
         (a drop would — correctly — be a divergence) *)
      queue_capacity = 8;
      queue_policy = Backpressure.Reject;
    }
  in
  let reg = Registry.create ~config:cfg boot in
  match Registry.spawn reg with
  | Error e -> Error (err_str e)
  | Ok id -> (
      match Registry.session reg id with
      | None -> Error "host: spawned session not found"
      | Some s ->
          (* [jobs = None]: the sequential batching scheduler.
             [jobs = Some n]: the lib/host/parallel domain pool — same
             registry, same per-session semantics, ticks fanned out
             across domains and updates applied through the
             stop-the-world barrier.  A fleet of one must agree
             byte-for-byte either way, so the whole trace corpus and
             every fuzz campaign differentially covers the parallel
             path. *)
          let name, tick, update, finalize =
            match jobs with
            | None ->
                let sched =
                  Scheduler.create ~policy:Scheduler.Round_robin ~batch:1 reg
                in
                ( (if cache then "host-incr" else "host"),
                  (fun () -> Scheduler.tick sched),
                  (fun code -> Broadcast.update ?typecheck reg code),
                  ignore )
            | Some j ->
                let pool = Parallel.create ~jobs:j ~batch:1 reg in
                ( "host-parallel",
                  (fun () -> Parallel.tick pool),
                  (fun code -> Parallel.update ?typecheck pool code),
                  fun () -> Parallel.shutdown pool )
          in
          let deliver (ev : Registry.uevent) : (string, string) result =
            match Registry.offer reg id ev with
            | Backpressure.Rejected | Backpressure.Dropped_oldest ->
                Error "host: ingress queue refused the event"
            | Backpressure.Accepted -> (
                let r = tick () in
                match r.Scheduler.errors with
                | (_, e) :: _ -> Error (err_str e)
                | [] ->
                    if r.Scheduler.taps_hit > 0 then Ok "tapped"
                    else if r.Scheduler.taps_missed > 0 then Ok "no-handler"
                    else Ok "ok")
          in
          let step (ev : Ctrace.event) (prog : Program.t option) =
            match ev with
            | Ctrace.Tap { x; y } -> deliver (Registry.Tap { x; y })
            | Ctrace.Back -> deliver Registry.Back
            | Ctrace.Update _ -> (
                match prog with
                | None -> Ok "rejected"
                | Some code -> (
                    match update code with
                    | Ok _report -> Ok "updated"
                    | Error e -> Error (err_str e)))
            | Ctrace.Broken_update -> Ok "rejected"
            | Ctrace.Render ->
                ignore (Session.screenshot s);
                Ok "ok"
            | Ctrace.Flush_cache ->
                Session.flush_caches s;
                Ok "ok"
            | Ctrace.Drop_next ->
                Session.inject s Session.Drop_next_event;
                Ok "ok"
            | Ctrace.Dup_next ->
                Session.inject s Session.Duplicate_next_event;
                Ok "ok"
            | Ctrace.Begin_txn _ | Ctrace.Canary | Ctrace.Promote
            | Ctrace.Rollback ->
                Ok "ok" (* interpreted by {!with_txn} *)
          in
          Ok
            {
              name;
              step;
              observe = (fun () -> obs_of_state ~width (Session.state s));
              invariant = (fun () -> invariant_of_state (Session.state s));
              strict = (fun () -> true);
              finalize;
            })

(** The staged-rollout pipeline ({!Live_host.Rollout}) as a fleet of
    one, driven through real edit transactions: [Begin_txn] stages the
    change set as a second live epoch (diffed, typechecked once,
    cross-checked), [Canary] applies it to the canary cohort — which,
    with one session, is the whole fleet — and the transaction
    resolves by {!Live_host.Rollout.promote} or
    {!Live_host.Rollout.rollback} per the [Begin_txn]'s recorded
    decision.  The reference configurations interpret the same events
    through {!with_txn}: a promoted transaction is exactly one plain
    UPDATE, a rolled-back one is exactly nothing.  During a
    doomed-to-roll-back canary window this configuration's state
    legitimately differs from the reference (it {e is} running the
    edit), so it goes non-strict for the window and byte-equality is
    re-checked from the resolving event on — which is precisely the
    rollback soundness statement: checkpoint + journal replay must be
    indistinguishable from never having begun the rollout. *)
let host_txn_config ~(width : int) (boot : Program.t) :
    (config, string) result =
  let open Live_host in
  let cfg =
    {
      Registry.default_config with
      Registry.width;
      cache = true;
      queue_capacity = 8;
      queue_policy = Backpressure.Reject;
    }
  in
  let reg = Registry.create ~config:cfg boot in
  match Registry.spawn reg with
  | Error e -> Error (err_str e)
  | Ok id -> (
      match Registry.session reg id with
      | None -> Error "host-txn: spawned session not found"
      | Some s ->
          let sched =
            Scheduler.create ~policy:Scheduler.Round_robin ~batch:1 reg
          in
          (* the open transaction and its recorded decision; [strict]
             drops only for a rollback-decision canary window *)
          let txn : (Rollout.t * bool) option ref = ref None in
          let strict = ref true in
          let resolve () =
            match !txn with
            | None -> ()
            | Some (r, promote) ->
                txn := None;
                (match Rollout.stage r with
                | Rollout.Canarying when promote ->
                    (* fleet of one, whole-fleet cohort: nothing to
                       migrate, the promote closes the epoch *)
                    ignore (Rollout.promote r : Broadcast.session_outcome list)
                | Rollout.Staged | Rollout.Canarying ->
                    (* replay errors mirror per-event errors the window
                       already reported live; consumed exactly as the
                       scheduler consumes them *)
                    ignore
                      (Rollout.rollback r
                        : (Registry.id * Live_core.Machine.error) list)
                | Rollout.Promoted | Rollout.Rolled_back -> ());
                strict := true
          in
          let deliver (ev : Registry.uevent) : (string, string) result =
            match Registry.offer reg id ev with
            | Backpressure.Rejected | Backpressure.Dropped_oldest ->
                Error "host-txn: ingress queue refused the event"
            | Backpressure.Accepted -> (
                let r = Scheduler.tick sched in
                match r.Scheduler.errors with
                | (_, e) :: _ -> Error (err_str e)
                | [] ->
                    if r.Scheduler.taps_hit > 0 then Ok "tapped"
                    else if r.Scheduler.taps_missed > 0 then Ok "no-handler"
                    else Ok "ok")
          in
          let step (ev : Ctrace.event) (prog : Program.t option) =
            match ev with
            | Ctrace.Tap { x; y } -> deliver (Registry.Tap { x; y })
            | Ctrace.Back -> deliver Registry.Back
            | Ctrace.Update _ -> (
                resolve ();
                match prog with
                | None -> Ok "rejected"
                | Some code -> (
                    match
                      Broadcast.update ~typecheck:Broadcast.Cross_check reg
                        code
                    with
                    | Ok _report -> Ok "updated"
                    | Error e -> Error (err_str e)))
            | Ctrace.Begin_txn { promote; _ } -> (
                match prog with
                | None -> Ok "rejected"
                | Some code -> (
                    resolve ();
                    match
                      Rollout.begin_ ~typecheck:Broadcast.Cross_check
                        ~fraction:1.0 ~seed:11 reg code
                    with
                    | Ok r ->
                        txn := Some (r, promote);
                        Ok "staged"
                    | Error e -> Error (err_str e)))
            | Ctrace.Canary -> (
                match !txn with
                | Some (r, promote) -> (
                    match Rollout.stage r with
                    | Rollout.Staged ->
                        let _outcomes = Rollout.canary r in
                        (* per-session fix-up outcomes are reported,
                           not statused — exactly as a broadcast's *)
                        if not promote then strict := false;
                        Ok "updated"
                    | _ -> Ok "ok")
                | None -> Ok "ok")
            | Ctrace.Promote | Ctrace.Rollback ->
                resolve ();
                Ok "ok"
            | Ctrace.Broken_update -> Ok "rejected"
            | Ctrace.Render ->
                ignore (Session.screenshot s);
                Ok "ok"
            | Ctrace.Flush_cache ->
                Session.flush_caches s;
                Ok "ok"
            | Ctrace.Drop_next ->
                Session.inject s Session.Drop_next_event;
                Ok "ok"
            | Ctrace.Dup_next ->
                Session.inject s Session.Duplicate_next_event;
                Ok "ok"
          in
          let invariant () =
            match invariant_of_state (Session.state s) with
            | Some m -> Some m
            | None -> (
                (* while a rollout is open, the full side-by-side
                   health check: cohort accounting identities, no
                   session crossing epochs, fleet state invariants *)
                match !txn with
                | None -> None
                | Some (r, _) ->
                    let h = Rollout.observe r in
                    if Rollout.healthy h then None
                    else Some ("rollout unhealthy: " ^ Rollout.summary r))
          in
          Ok
            {
              name = "host-txn";
              step;
              observe = (fun () -> obs_of_state ~width (Session.state s));
              invariant;
              strict = (fun () -> !strict);
              finalize = ignore;
            })

(** The restart baseline: structurally compared only until its first
    UPDATE (restart-and-replay intentionally loses model state) or
    queue fault (it has no injection hooks); always
    invariant-checked — it may lose data, never corrupt it. *)
let restart_config ~(width : int) (boot : Program.t) :
    (config, string) result =
  match Restart.create ~width boot with
  | Error e -> Error (Restart.error_to_string e)
  | Ok t ->
      let strict = ref true in
      let step (ev : Ctrace.event) (prog : Program.t option) =
        match ev with
        | Ctrace.Tap { x; y } -> (
            match Restart.tap t ~x ~y with
            | Ok Session.Tapped -> Ok "tapped"
            | Ok Session.No_handler -> Ok "no-handler"
            | Error e -> Error (Restart.error_to_string e))
        | Ctrace.Back -> (
            match Restart.back t with
            | Ok () -> Ok "ok"
            | Error e -> Error (Restart.error_to_string e))
        | Ctrace.Update _ -> (
            strict := false;
            match prog with
            | None -> Ok "rejected"
            | Some code -> (
                match Restart.update t code with
                | Ok _outcome -> Ok "updated"
                | Error e -> Error (Restart.error_to_string e)))
        | Ctrace.Broken_update -> Ok "rejected"
        | Ctrace.Render | Ctrace.Flush_cache -> Ok "ok"
        | Ctrace.Drop_next | Ctrace.Dup_next ->
            strict := false;
            Ok "ok"
        | Ctrace.Begin_txn _ | Ctrace.Canary | Ctrace.Promote
        | Ctrace.Rollback ->
            Ok "ok" (* interpreted by {!with_txn} *)
      in
      Ok
        {
          name = "restart";
          step;
          observe = (fun () -> obs_of_state ~width (Restart.state t));
          invariant = (fun () -> invariant_of_state (Restart.state t));
          strict = (fun () -> !strict);
          finalize = ignore;
        }

(** The networked host's persistence path, stressed to the maximum:
    a fleet of one where {e every} step is followed by a full
    detach/resume cycle through {!Live_net.Snapshot} — capture the
    session, print the canonical snapshot text, parse it back, check
    the re-print is byte-identical, restore, and adopt the restored
    session into a {e fresh} registry (a fresh host process, as far as
    the session can tell).  The snapshot text also rides through
    {!Live_net.Wire} inside a [Resume] frame, so the binary codec's
    round-trip is fuzzed by the same corpus.  Agreement with the
    reference machine is exactly the ISSUE's digest-equality oracle:
    a session that detaches and resumes after every single transition
    must stay byte-identical to one that never detached. *)
let host_net_config ~(width : int) (boot : Program.t) :
    (config, string) result =
  let open Live_host in
  let module Snapshot = Live_net.Snapshot in
  let module Wire = Live_net.Wire in
  let cfg =
    {
      Registry.default_config with
      Registry.width;
      queue_capacity = 8;
      queue_policy = Backpressure.Reject;
    }
  in
  let fresh (program : Program.t) = Registry.create ~config:cfg program in
  let reg0 = fresh boot in
  match Registry.spawn reg0 with
  | Error e -> Error (err_str e)
  | Ok id0 -> (
      match Registry.session reg0 id0 with
      | None -> Error "host-net: spawned session not found"
      | Some s0 ->
          let reg = ref reg0 and id = ref id0 and s = ref s0 in
          let sched =
            ref (Scheduler.create ~policy:Scheduler.Round_robin ~batch:1 reg0)
          in
          (* One wire-borne detach/resume cycle: the oracle's unit of
             coverage for the whole persistence stack. *)
          let recycle () : (unit, string) result =
            let snap = Snapshot.of_session !s in
            let text = Snapshot.to_string snap in
            let via_wire =
              match
                Wire.decode
                  (Wire.encode (Wire.Client (Wire.Resume { snapshot = text })))
              with
              | Wire.Frame (Wire.Client (Wire.Resume { snapshot }), _) ->
                  Ok snapshot
              | Wire.Frame _ -> Error "host-net: wire round-trip changed frame"
              | Wire.Need_more -> Error "host-net: wire round-trip truncated"
              | Wire.Corrupt m -> Error ("host-net: wire round-trip: " ^ m)
            in
            match via_wire with
            | Error m -> Error m
            | Ok text' -> (
                match Snapshot.of_string text' with
                | Error m -> Error ("host-net: snapshot parse: " ^ m)
                | Ok snap' ->
                    if not (String.equal (Snapshot.to_string snap') text) then
                      Error "host-net: snapshot re-print not byte-identical"
                    else (
                      match Snapshot.restore snap' with
                      | Error m -> Error ("host-net: restore: " ^ m)
                      | Ok s' ->
                          let reg' =
                            fresh (Session.state s').Live_core.State.code
                          in
                          let id' = Registry.adopt reg' s' in
                          reg := reg';
                          id := id';
                          s := s';
                          sched :=
                            Scheduler.create ~policy:Scheduler.Round_robin
                              ~batch:1 reg';
                          Ok ()))
          in
          let then_recycle (r : (string, string) result) =
            match r with
            | Error _ as e -> e
            | Ok status -> (
                match recycle () with
                | Ok () -> Ok status
                | Error m -> Error m)
          in
          let deliver (ev : Registry.uevent) : (string, string) result =
            match Registry.offer !reg !id ev with
            | Backpressure.Rejected | Backpressure.Dropped_oldest ->
                Error "host-net: ingress queue refused the event"
            | Backpressure.Accepted -> (
                let r = Scheduler.tick !sched in
                match r.Scheduler.errors with
                | (_, e) :: _ -> Error (err_str e)
                | [] ->
                    if r.Scheduler.taps_hit > 0 then Ok "tapped"
                    else if r.Scheduler.taps_missed > 0 then Ok "no-handler"
                    else Ok "ok")
          in
          let step (ev : Ctrace.event) (prog : Program.t option) =
            match ev with
            | Ctrace.Tap { x; y } ->
                then_recycle (deliver (Registry.Tap { x; y }))
            | Ctrace.Back -> then_recycle (deliver Registry.Back)
            | Ctrace.Update _ -> (
                match prog with
                | None -> Ok "rejected"
                | Some code ->
                    then_recycle
                      (match Broadcast.update !reg code with
                      | Ok _report -> Ok "updated"
                      | Error e -> Error (err_str e)))
            | Ctrace.Broken_update -> Ok "rejected"
            | Ctrace.Render ->
                ignore (Session.screenshot !s);
                then_recycle (Ok "ok")
            | Ctrace.Flush_cache ->
                Session.flush_caches !s;
                then_recycle (Ok "ok")
            | Ctrace.Drop_next ->
                (* the armed fault must survive the detach/resume *)
                Session.inject !s Session.Drop_next_event;
                then_recycle (Ok "ok")
            | Ctrace.Dup_next ->
                Session.inject !s Session.Duplicate_next_event;
                then_recycle (Ok "ok")
            | Ctrace.Begin_txn _ | Ctrace.Canary | Ctrace.Promote
            | Ctrace.Rollback ->
                Ok "ok" (* interpreted by {!with_txn} *)
          in
          Ok
            {
              name = "host-net";
              step;
              observe = (fun () -> obs_of_state ~width (Session.state !s));
              invariant = (fun () -> invariant_of_state (Session.state !s));
              strict = (fun () -> true);
              finalize = ignore;
            })

(** The shard director ({!Live_net.Director}) as a fleet of one over
    two in-process shard servers, driven entirely over the wire — and
    kept {e in motion}: after {e every} consumed event the session is
    rebalanced to the other shard (detach → snapshot → wire → resume,
    global id unchanged, strict before/after digest check inside the
    director), and every UPDATE runs the two-phase Prepare / Commit
    protocol across both shards.  Agreement with the reference machine
    is the ISSUE's statement that a directed N-shard fleet is
    observationally identical to a single process, event for event. *)

let director_instances = ref 0

let host_director_config ~(width : int) (boot : Program.t) :
    (config, string) result =
  let open Live_host in
  let module Server = Live_net.Server in
  let module Director = Live_net.Director in
  let module Wire = Live_net.Wire in
  let module Snapshot = Live_net.Snapshot in
  incr director_instances;
  let sock i =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "live-oracle-dir-%d-%d-%d.sock" (Unix.getpid ())
         !director_instances i)
  in
  let cfg =
    {
      Registry.default_config with
      Registry.width;
      queue_capacity = 8;
      queue_policy = Backpressure.Reject;
    }
  in
  let shards =
    Array.init 2 (fun i -> Server.create ~config:cfg ~socket:(sock i) boot)
  in
  let pump_shards () =
    Array.iter (fun s -> ignore (Server.step ~timeout:0. s)) shards
  in
  let dir =
    Director.create ~pump:pump_shards ~socket:(sock 99)
      ~shards:[ sock 0; sock 1 ]
      ()
  in
  let pump () =
    pump_shards ();
    ignore (Director.step ~timeout:0. dir)
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX (sock 99));
  Unix.set_nonblock fd;
  let finalize () =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Director.stop dir;
    Array.iter Server.stop shards
  in
  let inbuf = Buffer.create 1024 and boff = ref 0 in
  let chunk = Bytes.create 65536 in
  let send (f : Wire.client_frame) : unit =
    let bytes = Wire.encode (Wire.Client f) in
    let len = String.length bytes in
    let o = ref 0 in
    while !o < len do
      match Unix.write_substring fd bytes !o (len - !o) with
      | n -> o := !o + n
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          pump ()
    done
  in
  (* one decode attempt; pumps the fleet and reads the socket when no
     complete frame is buffered *)
  let try_recv () : Wire.host_frame option =
    let data = Buffer.contents inbuf in
    match Wire.decode ~off:!boff data with
    | Wire.Frame (Wire.Host f, consumed) ->
        boff := !boff + consumed;
        if !boff = String.length data then begin
          Buffer.clear inbuf;
          boff := 0
        end;
        Some f
    | Wire.Frame (Wire.Client _, _) ->
        failwith "host-director: client-tagged frame from the director"
    | Wire.Corrupt m -> failwith ("host-director: corrupt stream: " ^ m)
    | Wire.Need_more ->
        pump ();
        (match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> failwith "host-director: director closed the connection"
        | n -> Buffer.add_subbytes inbuf chunk 0 n
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            ());
        None
  in
  let recv () : Wire.host_frame =
    let deadline = Unix.gettimeofday () +. 30. in
    let rec loop () =
      match try_recv () with
      | Some f -> f
      | None ->
          if Unix.gettimeofday () > deadline then
            failwith "host-director: no reply within 30s"
          else loop ()
    in
    loop ()
  in
  (* consume repaint deltas already in flight (an UPDATE marks the
     fleet dirty) so a later reply-wait cannot be satisfied by a stale
     frame; five consecutive idle pumps of an in-process fleet means
     nothing is queued anywhere *)
  let drain () =
    let idle = ref 0 in
    while !idle < 5 do
      match try_recv () with
      | Some (Wire.Delta _) -> idle := 0
      | Some f ->
          failwith
            ("host-director: unexpected frame while draining: "
            ^ Fmt.to_to_string Wire.pp (Wire.Host f))
      | None -> incr idle
    done
  in
  let find_session () : Session.t =
    let rec go i =
      if i >= Array.length shards then
        failwith "host-director: session lost"
      else
        let reg = Server.registry shards.(i) in
        match Registry.ids reg with
        | [ id ] -> Option.get (Registry.session reg id)
        | [] -> go (i + 1)
        | _ -> failwith "host-director: more than one session"
    in
    go 0
  in
  let taps () =
    Array.fold_left
      (fun (h, m) srv ->
        let mt = Registry.metrics (Server.registry srv) in
        (h + mt.Host_metrics.taps_hit, m + mt.Host_metrics.taps_missed))
      (0, 0) shards
  in
  match send (Wire.Hello { client = "oracle"; sessions = 1 }); recv () with
  | exception e ->
      finalize ();
      Error ("host-director: " ^ Printexc.to_string e)
  | Wire.Error { msg; _ } ->
      finalize ();
      Error msg
  | Wire.Attach { session = g; _ } ->
      let deliver (ev : Wire.event) : (string, string) result =
        let h0, m0 = taps () in
        send (Wire.Event { session = g; ev });
        match recv () with
        | Wire.Delta _ ->
            let h1, m1 = taps () in
            if h1 > h0 then Ok "tapped"
            else if m1 > m0 then Ok "no-handler"
            else Ok "ok"
        | Wire.Error { msg; _ } -> Error msg
        | f ->
            Error
              ("host-director: unexpected event reply: "
              ^ Fmt.to_to_string Wire.pp (Wire.Host f))
      in
      let update (code : Program.t) : (string, string) result =
        send (Wire.Update { program = Snapshot.program_to_string code });
        match recv () with
        | Wire.Ack _ ->
            drain ();
            Ok "updated"
        | Wire.Error { code = 6; msg } ->
            (* unwrap the director's two-phase framing back to the
               underlying machine error so the status stays comparable
               with the reference's *)
            let suffix = " (fleet unchanged)" in
            let prefix = "prepare failed on " in
            let msg =
              if String.length msg >= String.length suffix
                 && String.equal suffix
                      (String.sub msg
                         (String.length msg - String.length suffix)
                         (String.length suffix))
              then String.sub msg 0 (String.length msg - String.length suffix)
              else msg
            in
            let msg =
              if String.length msg > String.length prefix
                 && String.equal prefix
                      (String.sub msg 0 (String.length prefix))
              then
                match String.index_from_opt msg (String.length prefix) ':' with
                | Some i when i + 2 <= String.length msg ->
                    String.sub msg (i + 2) (String.length msg - i - 2)
                | _ -> msg
              else msg
            in
            Error msg
        | Wire.Error { msg; _ } -> Error msg
        | f ->
            Error
              ("host-director: unexpected update reply: "
              ^ Fmt.to_to_string Wire.pp (Wire.Host f))
      in
      let rebalance () : (unit, string) result =
        send (Wire.Rebalance { count = 1 });
        match recv () with
        | Wire.Ack _ ->
            drain ();
            Ok ()
        | Wire.Error { msg; _ } -> Error ("host-director: rebalance: " ^ msg)
        | f ->
            Error
              ("host-director: unexpected rebalance reply: "
              ^ Fmt.to_to_string Wire.pp (Wire.Host f))
      in
      let then_rebalance (r : (string, string) result) =
        match r with
        | Error _ as e -> e
        | Ok status -> (
            match rebalance () with
            | Ok () -> Ok status
            | Error m -> Error m)
      in
      let step (ev : Ctrace.event) (prog : Program.t option) =
        match ev with
        | Ctrace.Tap { x; y } -> then_rebalance (deliver (Wire.Ev_tap { x; y }))
        | Ctrace.Back -> then_rebalance (deliver Wire.Ev_back)
        | Ctrace.Update _ -> (
            match prog with
            | None -> Ok "rejected"
            | Some code -> then_rebalance (update code))
        | Ctrace.Broken_update -> Ok "rejected"
        | Ctrace.Render ->
            ignore (Session.screenshot (find_session ()));
            then_rebalance (Ok "ok")
        | Ctrace.Flush_cache ->
            Session.flush_caches (find_session ());
            then_rebalance (Ok "ok")
        | Ctrace.Drop_next ->
            (* armed on the live session; the very next rebalance proves
               the snapshot carries it across the shard boundary *)
            Session.inject (find_session ()) Session.Drop_next_event;
            then_rebalance (Ok "ok")
        | Ctrace.Dup_next ->
            Session.inject (find_session ()) Session.Duplicate_next_event;
            then_rebalance (Ok "ok")
        | Ctrace.Begin_txn _ | Ctrace.Canary | Ctrace.Promote
        | Ctrace.Rollback ->
            Ok "ok" (* interpreted by {!with_txn} *)
      in
      Ok
        {
          name = "host-director";
          step;
          observe =
            (fun () -> obs_of_state ~width (Session.state (find_session ())));
          invariant =
            (fun () -> invariant_of_state (Session.state (find_session ())));
          strict = (fun () -> true);
          finalize;
        }
  | f ->
      finalize ();
      Error
        ("host-director: unexpected Hello reply: "
        ^ Fmt.to_to_string Wire.pp (Wire.Host f))

(* ------------------------------------------------------------------ *)
(* Transaction semantics for the reference configurations              *)
(* ------------------------------------------------------------------ *)

(** What a staged rollout must be {e equivalent to}, expressed over
    any single-state configuration: an edit transaction resolves to
    exactly one plain UPDATE (canaried, then promoted) or to exactly
    nothing (rolled back, or closed without ever canarying).  With a
    fleet of one the canary cohort is the whole fleet, so the canary
    {e is} the update: it is applied at [Canary] time when the
    transaction's recorded decision is promote, and never applied at
    all when the decision is rollback — the byte-identity the real
    rollback (checkpoint + journal replay) must reproduce.

    The wrapper intercepts the four transaction events and translates
    them for the wrapped configuration; every other event passes
    through, except that a plain [Update] first resolves any open
    transaction (mirroring the driver, which must resolve before the
    broadcast guard lets a flat update through). *)
let with_txn (c : config) : config =
  let staged : (Program.t * bool) option ref = ref None in
  let canaried = ref false in
  let resolve () =
    (* a canaried promote-decision transaction already applied its
       update at [Canary]; every other resolution applies nothing *)
    staged := None;
    canaried := false
  in
  let step (ev : Ctrace.event) (prog : Program.t option) =
    match ev with
    | Ctrace.Begin_txn { promote; _ } -> (
        match prog with
        | None -> Ok "rejected"
        | Some code -> (
            resolve ();
            (* the rollout pipeline typechecks the change set once at
               [begin_]; stage-time rejection must match it *)
            match Machine.check_program code with
            | Error e -> Error (err_str e)
            | Ok () ->
                staged := Some (code, promote);
                Ok "staged"))
    | Ctrace.Canary -> (
        match !staged with
        | Some (code, decision) when not !canaried ->
            canaried := true;
            if decision then c.step (Ctrace.Update 0) (Some code)
            else Ok "updated" (* doomed window: never applied at all *)
        | _ -> Ok "ok")
    | Ctrace.Promote | Ctrace.Rollback ->
        resolve ();
        Ok "ok"
    | Ctrace.Update _ ->
        resolve ();
        c.step ev prog
    | _ -> c.step ev prog
  in
  { c with step }

(** How many domains the ["host-parallel"] configuration runs: enough
    to actually cross a domain boundary, small enough that a fuzz
    campaign spawning one pool per trace stays cheap. *)
let parallel_jobs = 2

let all_configs =
  [
    "machine";
    "session";
    "compiled";
    "cached";
    "incremental";
    "host";
    "host-incr";
    "host-parallel";
    "host-txn";
    "host-net";
    "host-director";
    "restart";
  ]

(* ------------------------------------------------------------------ *)
(* The differential run                                                *)
(* ------------------------------------------------------------------ *)

let default_width = 46

let run ?(width = default_width) ?(configs = all_configs) ?sabotage
    (trace : Ctrace.t) : outcome =
  if Array.length trace.Ctrace.pool = 0 then Boot_failed "empty program pool"
  else
    (* one compilation per distinct source, shared by every
       configuration (programs are immutable) *)
    let compiled : (int, Program.t option) Hashtbl.t = Hashtbl.create 8 in
    let compile (i : int) : Program.t option =
      match Hashtbl.find_opt compiled i with
      | Some r -> r
      | None ->
          let r =
            if i < 0 || i >= Array.length trace.Ctrace.pool then None
            else
              match Live_surface.Compile.compile trace.Ctrace.pool.(i) with
              | Ok c -> Some c.Live_surface.Compile.core
              | Error _ -> None
          in
          Hashtbl.replace compiled i r;
          r
    in
    match compile 0 with
    | None -> Boot_failed "boot program does not compile"
    | Some boot -> (
        let mk name =
          match name with
          | "machine" -> machine_config ~width boot
          | "session" ->
              (* the substitution engine, uncached: keeps the paper's
                 evaluator under differential test now that sessions
                 default to the compiled one *)
              session_config ~width ~name ~incremental:false ~cache:false
                ~evaluator:Machine.Subst boot
          | "compiled" ->
              (* the closure-compiled engine (the session default),
                 uncached: diffed per step against the substitution
                 machine reference *)
              session_config ~width ~name ~incremental:false ~cache:false
                ~evaluator:Machine.Compiled boot
          | "cached" ->
              session_config ~width ~name ~incremental:false ~cache:true
                ?sabotage boot
          | "incremental" ->
              session_config ~width ~name ~incremental:true ~cache:false boot
          | "host" -> host_config ~width boot
          | "host-incr" ->
              (* the O(edit) broadcast pipeline, end to end: render
                 cache retargeted (not flushed) across updates, and
                 every UPDATE typechecked by {e both} the scratch and
                 the incremental checker ([Cross_check]) — a verdict
                 disagreement rejects the broadcast and surfaces here
                 as a status divergence, so every fuzzed [Mutate] edit
                 cross-checks the two checkers *)
              host_config ~width ~cache:true
                ~typecheck:Live_host.Broadcast.Cross_check boot
          | "host-parallel" -> host_config ~width ~jobs:parallel_jobs boot
          | "host-txn" -> host_txn_config ~width boot
          | "host-net" -> host_net_config ~width boot
          | "host-director" -> host_director_config ~width boot
          | "restart" -> restart_config ~width boot
          | other -> Error (Printf.sprintf "unknown configuration %S" other)
        in
        (* every configuration but the rollout pipeline itself gets the
           reference transaction semantics layered on top *)
        let mk name =
          if String.equal name "host-txn" then mk name
          else Result.map with_txn (mk name)
        in
        let boots = List.map (fun n -> (n, mk n)) configs in
        (* whatever happens below — agreement, divergence, an
           exception — every configuration that booted releases what
           it owns (the parallel host joins its worker domains) *)
        let finalize_all () =
          List.iter
            (fun (_, r) ->
              match r with Ok c -> c.finalize () | Error _ -> ())
            boots
        in
        Fun.protect ~finally:finalize_all @@ fun () ->
        match
          List.find_opt (fun (_, r) -> Result.is_error r) boots
        with
        | Some (n, Error m) ->
            (* every configuration boots the same checked program; a
               single failing boot is itself a divergence, unless all
               fail (then the trace is unbootable) *)
            if List.for_all (fun (_, r) -> Result.is_error r) boots then
              Boot_failed m
            else
              Diverged
                {
                  step = -1;
                  event = None;
                  config = n;
                  field = "status";
                  expected = "boot ok";
                  actual = m;
                }
        | _ -> (
            let cfgs =
              List.map
                (fun (_, r) ->
                  match r with Ok c -> c | Error _ -> assert false)
                boots
            in
            match cfgs with
            | [] -> Boot_failed "no configurations selected"
            | reference :: others -> (
                let divergence = ref None in
                let report step event config field expected actual =
                  if !divergence = None then
                    divergence :=
                      Some { step; event; config; field; expected; actual }
                in
                let compare_obs step event (ref_obs : obs) (c : config) =
                  if c.strict () && !divergence = None then begin
                    let o = c.observe () in
                    let fields =
                      [
                        ("store", ref_obs.store, o.store);
                        ("stack", ref_obs.stack, o.stack);
                        ("display", ref_obs.display, o.display);
                        ("pixels", ref_obs.pixels, o.pixels);
                      ]
                    in
                    List.iter
                      (fun (f, e, a) ->
                        if !divergence = None && not (String.equal e a) then
                          report step event c.name f e a)
                      fields
                  end
                in
                let check_invariants step event =
                  List.iter
                    (fun c ->
                      if !divergence = None then
                        match c.invariant () with
                        | Some m ->
                            report step event c.name "invariant" "holds" m
                        | None -> ())
                    cfgs
                in
                (* boot observation *)
                let ref_obs = ref (reference.observe ()) in
                List.iter (compare_obs (-1) None !ref_obs) others;
                check_invariants (-1) None;
                let stepno = ref 0 in
                List.iter
                  (fun ev ->
                    if !divergence = None then begin
                      let k = !stepno in
                      incr stepno;
                      let prog =
                        match ev with
                        | Ctrace.Update i | Ctrace.Begin_txn { prog = i; _ }
                          ->
                            compile i
                        | _ -> None
                      in
                      let ref_status = reference.step ev prog in
                      let status_str = function
                        | Ok s -> "ok: " ^ s
                        | Error m -> "error: " ^ m
                      in
                      List.iter
                        (fun c ->
                          let st = c.step ev prog in
                          if
                            !divergence = None
                            && c.strict ()
                            && not
                                 (String.equal (status_str st)
                                    (status_str ref_status))
                          then
                            report k (Some ev) c.name "status"
                              (status_str ref_status) (status_str st))
                        others;
                      if !divergence = None then begin
                        let prev = !ref_obs in
                        ref_obs := reference.observe ();
                        (* a rejected edit must change nothing, even in
                           the reference *)
                        (match ev with
                        | Ctrace.Broken_update ->
                            if
                              not
                                (String.equal prev.pixels !ref_obs.pixels
                                && String.equal prev.store !ref_obs.store
                                && String.equal prev.stack !ref_obs.stack)
                            then
                              report k (Some ev) reference.name
                                "broken-update" prev.pixels !ref_obs.pixels
                        | _ -> ());
                        List.iter (compare_obs k (Some ev) !ref_obs) others;
                        check_invariants k (Some ev)
                      end
                    end)
                  trace.Ctrace.events;
                match !divergence with
                | Some d -> Diverged d
                | None -> Agreed)))

(* ------------------------------------------------------------------ *)
(* Pretty-printing a delta                                             *)
(* ------------------------------------------------------------------ *)

(** Focus a pair of multi-line observations on their first differing
    line, with one line of context. *)
let first_diff (expected : string) (actual : string) : string =
  let e = Array.of_list (String.split_on_char '\n' expected) in
  let a = Array.of_list (String.split_on_char '\n' actual) in
  let n = max (Array.length e) (Array.length a) in
  let line arr i = if i < Array.length arr then arr.(i) else "<eof>" in
  let rec find i =
    if i >= n then None
    else if not (String.equal (line e i) (line a i)) then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> "(identical?)"
  | Some i ->
      Printf.sprintf "line %d:\n  expected | %s\n  actual   | %s" (i + 1)
        (line e i) (line a i)

let pp_divergence ppf (d : divergence) =
  Fmt.pf ppf "@[<v>step %d%a: configuration %S diverges on %s@,%s@]" d.step
    (fun ppf -> function
      | None -> Fmt.string ppf " (boot)"
      | Some e -> Fmt.pf ppf " (%s)" (Ctrace.event_to_string e))
    d.event d.config d.field
    (if String.length d.expected + String.length d.actual < 160 then
       Printf.sprintf "  expected | %s\n  actual   | %s" d.expected d.actual
     else first_diff d.expected d.actual)
