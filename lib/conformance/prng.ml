(** Re-export: the splitmix64 generator moved to [Live_core.Prng] so
    the host's rollout machinery can seed canary cohorts without a
    dependency cycle through the conformance layer.  Conformance code
    keeps addressing it as [Prng]. *)

include Live_core.Prng
