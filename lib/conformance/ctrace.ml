(** The trace format of the conformance subsystem.

    Serialization is line-oriented and canonical:

    {v
    itsalive-trace 1
    seed 42
    program 0 3
    global n : number = 0
    page start()
    init { } render { post n }
    events
    tap 3 5
    update 0
    end
    v}

    Program sources are carried verbatim as a counted block of lines
    ([program <id> <n-lines>]), so any source text round-trips; the
    event section is one event per line.  [to_string] after
    [of_string] is byte-identical (tested in
    [test/test_conformance.ml]), which is what lets shrunk failing
    traces be checked in as golden files. *)

type event =
  | Tap of { x : int; y : int }
  | Back
  | Update of int
  | Broken_update
  | Render
  | Flush_cache
  | Drop_next
  | Dup_next
  | Begin_txn of { prog : int; promote : bool }
  | Canary
  | Promote
  | Rollback

type t = { seed : int; pool : string array; events : event list }

let equal (a : t) (b : t) =
  a.seed = b.seed && a.pool = b.pool && a.events = b.events

let pp_event ppf = function
  | Tap { x; y } -> Fmt.pf ppf "tap %d %d" x y
  | Back -> Fmt.string ppf "back"
  | Update i -> Fmt.pf ppf "update %d" i
  | Broken_update -> Fmt.string ppf "broken-update"
  | Render -> Fmt.string ppf "render"
  | Flush_cache -> Fmt.string ppf "flush-cache"
  | Drop_next -> Fmt.string ppf "drop-next"
  | Dup_next -> Fmt.string ppf "dup-next"
  | Begin_txn { prog; promote } ->
      Fmt.pf ppf "begin-txn %d %s" prog
        (if promote then "promote" else "rollback")
  | Canary -> Fmt.string ppf "canary"
  | Promote -> Fmt.string ppf "promote"
  | Rollback -> Fmt.string ppf "rollback"

let event_to_string e = Fmt.str "%a" pp_event e

(* -- serialization --------------------------------------------------- *)

let magic = "itsalive-trace 1"

let to_string (t : t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "seed %d\n" t.seed);
  Array.iteri
    (fun i src ->
      let lines = String.split_on_char '\n' src in
      Buffer.add_string buf
        (Printf.sprintf "program %d %d\n" i (List.length lines));
      List.iter
        (fun l ->
          Buffer.add_string buf l;
          Buffer.add_char buf '\n')
        lines)
    t.pool;
  Buffer.add_string buf "events\n";
  List.iter
    (fun e ->
      Buffer.add_string buf (event_to_string e);
      Buffer.add_char buf '\n')
    t.events;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let of_string (s : string) : (t, string) result =
  let lines = Array.of_list (String.split_on_char '\n' s) in
  let n = Array.length lines in
  let pos = ref 0 in
  let error fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let line () = if !pos < n then Some lines.(!pos) else None in
  let next () =
    let l = line () in
    incr pos;
    l
  in
  let parse_event l =
    match String.split_on_char ' ' l with
    | [ "back" ] -> Some Back
    | [ "broken-update" ] -> Some Broken_update
    | [ "render" ] -> Some Render
    | [ "flush-cache" ] -> Some Flush_cache
    | [ "drop-next" ] -> Some Drop_next
    | [ "dup-next" ] -> Some Dup_next
    | [ "canary" ] -> Some Canary
    | [ "promote" ] -> Some Promote
    | [ "rollback" ] -> Some Rollback
    | [ "begin-txn"; i; d ] -> (
        match (int_of_string_opt i, d) with
        | Some prog, "promote" -> Some (Begin_txn { prog; promote = true })
        | Some prog, "rollback" -> Some (Begin_txn { prog; promote = false })
        | _ -> None)
    | [ "tap"; x; y ] -> (
        match (int_of_string_opt x, int_of_string_opt y) with
        | Some x, Some y -> Some (Tap { x; y })
        | _ -> None)
    | [ "update"; i ] ->
        Option.map (fun i -> Update i) (int_of_string_opt i)
    | _ -> None
  in
  match next () with
  | Some m when m = magic -> (
      match next () with
      | Some l when String.length l > 5 && String.sub l 0 5 = "seed " -> (
          match int_of_string_opt (String.sub l 5 (String.length l - 5)) with
          | None -> error "bad seed line: %S" l
          | Some seed -> (
              (* program blocks *)
              let pool = ref [] in
              let rec programs () =
                match line () with
                | Some l
                  when String.length l > 8 && String.sub l 0 8 = "program "
                  -> (
                    incr pos;
                    match
                      String.split_on_char ' '
                        (String.sub l 8 (String.length l - 8))
                    with
                    | [ id; count ] -> (
                        match
                          (int_of_string_opt id, int_of_string_opt count)
                        with
                        | Some id, Some count when id = List.length !pool ->
                            if !pos + count > n then
                              error "program %d: truncated source" id
                            else begin
                              let src =
                                String.concat "\n"
                                  (Array.to_list
                                     (Array.sub lines !pos count))
                              in
                              pos := !pos + count;
                              pool := src :: !pool;
                              programs ()
                            end
                        | _ -> error "bad program header: %S" l)
                    | _ -> error "bad program header: %S" l)
                | _ -> Ok ()
              in
              match programs () with
              | Error m -> Error m
              | Ok () -> (
                  match next () with
                  | Some "events" -> (
                      let events = ref [] in
                      let rec go () =
                        match next () with
                        | Some "end" -> Ok ()
                        | Some l -> (
                            match parse_event l with
                            | Some e ->
                                events := e :: !events;
                                go ()
                            | None -> error "unknown event: %S" l)
                        | None -> error "missing 'end'"
                      in
                      match go () with
                      | Error m -> Error m
                      | Ok () ->
                          Ok
                            {
                              seed;
                              pool = Array.of_list (List.rev !pool);
                              events = List.rev !events;
                            })
                  | other ->
                      error "expected 'events', got %S"
                        (Option.value other ~default:"<eof>"))))
      | other ->
          error "expected 'seed N', got %S"
            (Option.value other ~default:"<eof>"))
  | other ->
      error "not a trace file (expected %S, got %S)" magic
        (Option.value other ~default:"<eof>")

let save (path : string) (t : t) : unit =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load (path : string) : (t, string) result =
  match open_in path with
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      of_string s
  | exception Sys_error m -> Error m

(* -- pool garbage collection ----------------------------------------- *)

let used_ids (t : t) : int list =
  let used =
    List.fold_left
      (fun acc e ->
        match e with
        | Update i | Begin_txn { prog = i; _ } -> i :: acc
        | _ -> acc)
      [ 0 ] t.events
  in
  List.sort_uniq compare used

let gc_pool (t : t) : t =
  let ids = used_ids t in
  let keep = List.filter (fun i -> i >= 0 && i < Array.length t.pool) ids in
  let renumber = Hashtbl.create 8 in
  List.iteri (fun fresh old -> Hashtbl.replace renumber old fresh) keep;
  let pool = Array.of_list (List.map (fun i -> t.pool.(i)) keep) in
  let events =
    List.filter_map
      (fun e ->
        match e with
        | Update i -> (
            match Hashtbl.find_opt renumber i with
            | Some j -> Some (Update j)
            | None -> None (* out-of-range id: drop the event *))
        | Begin_txn { prog = i; promote } -> (
            match Hashtbl.find_opt renumber i with
            | Some j -> Some (Begin_txn { prog = j; promote })
            | None -> None)
        | e -> Some e)
      t.events
  in
  { t with pool; events }
