(** Interaction traces, addressed by screen coordinates like a real
    user's finger.  The live runtime records them but never needs
    them; the restart baseline replays them to win back UI context
    after every code change — and diverges when the edit moves boxes
    (Sec. 1's trace-re-execution problem). *)

type entry = Tap of { x : int; y : int } | Back
type t = entry list

val empty : t
val add : entry -> t -> t
val length : t -> int
val equal : t -> t -> bool
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Canonical line-oriented serialization ([tap X Y] / [back], oldest
    first), suitable for checking traces into the repository. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; [to_string] of the result is
    byte-identical to a canonically formatted input. *)
