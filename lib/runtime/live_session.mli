(** The live-programming environment (Sec. 3): a running session
    paired with its surface source.

    - {b Live Editing}: {!edit} compiles and applies the UPDATE
      transition; the program keeps running, the model survives, and a
      source that fails to compile leaves the running program
      untouched (the editor keeps executing the last good version).
    - {b UI-Code Navigation}: {!select_box}, {!enclosing_boxes},
      {!frames_of_stmt}.
    - {b Direct Manipulation}: see {!Direct_manipulation}. *)

type t

type error =
  | Compile_error of Live_surface.Compile.error
  | Runtime_error of Live_core.Machine.error

val error_to_string : error -> string

val create :
  ?width:int ->
  ?fuel:int ->
  ?incremental:bool ->
  ?cache:bool ->
  string ->
  (t, error) result
(** [cache] enables the end-to-end incremental render pipeline (see
    {!Session.create}). *)

val session : t -> Session.t
val compiled : t -> Live_surface.Compile.compiled
val source : t -> string

val last_error : t -> Live_surface.Compile.error option
(** The most recent rejected edit, for the editor to display. *)

type edit_outcome = {
  report : Live_core.Fixup.report;
  screenshot : string;  (** the refreshed live view *)
}

val edit : t -> string -> (edit_outcome, error) result
val edit_ast : t -> Live_surface.Sast.program -> (edit_outcome, error) result

val undo : t -> (edit_outcome, error) result option
(** Revert to the previous source version; [None] without history. *)

val tap : t -> x:int -> y:int -> (Session.tap_result, error) result
val tap_first : t -> (Session.tap_result, error) result
val back : t -> (unit, error) result
val screenshot : t -> string
val screenshot_ansi : t -> string

val select_box : t -> x:int -> y:int -> Navigation.selection option
val enclosing_boxes : t -> x:int -> y:int -> Navigation.selection list
val frames_of_stmt : t -> Live_core.Srcid.t -> Live_ui.Geometry.rect list
