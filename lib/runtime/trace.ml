(** Event traces: the sequence of user interactions a session has seen.

    Live programming does not need traces — its whole point is that
    the model state persists across edits.  Traces exist for the
    {e baseline}: the conventional edit-compile-run cycle has to replay
    the user's navigation to regain UI context after a restart (steps
    4-5 of the Sec. 2 workflow), and the [live_vs_restart] benchmark
    measures exactly that replay cost.  Traces address taps by screen
    coordinates, like a real user: after a code change the same
    coordinate may hit a different (or no) box — the divergence problem
    the paper attributes to trace re-execution (Sec. 1). *)

type entry =
  | Tap of { x : int; y : int }
  | Back

type t = entry list
(** oldest first *)

let empty : t = []

let add (e : entry) (t : t) : t = t @ [ e ]

let length = List.length

let pp_entry ppf = function
  | Tap { x; y } -> Fmt.pf ppf "tap(%d,%d)" x y
  | Back -> Fmt.string ppf "back"

let pp = Fmt.list ~sep:(Fmt.any "; ") pp_entry

let equal (a : t) (b : t) = a = b

(* -- serialization --------------------------------------------------- *)

(** One entry per line, oldest first: [tap X Y] or [back].  The format
    is canonical, so [to_string] after {!of_string} is byte-identical
    — the property the conformance round-trip tests rely on. *)
let to_string (t : t) : string =
  let buf = Buffer.create 64 in
  List.iter
    (fun e ->
      match e with
      | Tap { x; y } -> Buffer.add_string buf (Printf.sprintf "tap %d %d\n" x y)
      | Back -> Buffer.add_string buf "back\n")
    t;
  Buffer.contents buf

let of_string (s : string) : (t, string) result =
  let entries = ref [] in
  let err = ref None in
  List.iteri
    (fun i line ->
      if !err = None && line <> "" then
        match String.split_on_char ' ' line with
        | [ "back" ] -> entries := Back :: !entries
        | [ "tap"; x; y ] -> (
            match (int_of_string_opt x, int_of_string_opt y) with
            | Some x, Some y -> entries := Tap { x; y } :: !entries
            | _ -> err := Some (Printf.sprintf "line %d: bad tap %S" (i + 1) line))
        | _ -> err := Some (Printf.sprintf "line %d: unknown entry %S" (i + 1) line))
    (String.split_on_char '\n' s);
  match !err with Some m -> Error m | None -> Ok (List.rev !entries)
