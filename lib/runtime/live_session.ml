(** The live-programming environment: a running {!Session} paired with
    its surface source, supporting the paper's three features (Sec. 3):

    - {b Live Editing}: {!edit} compiles the new source and applies the
      UPDATE transition — the program keeps running, model state
      survives, the display refreshes under the new code.  A source
      that does not compile leaves the running program untouched (the
      editor keeps executing the last good version while the programmer
      is mid-edit).
    - {b UI-Code Navigation}: {!select_box} / {!frames_of_stmt}
      delegate to {!Navigation}.
    - {b Direct Manipulation}: see {!Direct_manipulation}, which edits
      the AST and routes the result through {!edit_ast}. *)

type t = {
  session : Session.t;
  mutable compiled : Live_surface.Compile.compiled;
  mutable history : string list;  (** previous sources, newest first *)
  mutable last_error : Live_surface.Compile.error option;
}

type error =
  | Compile_error of Live_surface.Compile.error
  | Runtime_error of Live_core.Machine.error

let error_to_string = function
  | Compile_error e -> Live_surface.Compile.error_to_string e
  | Runtime_error e -> Live_core.Machine.error_to_string e

let create ?width ?fuel ?incremental ?cache (source : string) :
    (t, error) result =
  match Live_surface.Compile.compile source with
  | Error e -> Error (Compile_error e)
  | Ok compiled -> (
      match
        Session.create ?width ?fuel ?incremental ?cache
          compiled.Live_surface.Compile.core
      with
      | Error e -> Error (Runtime_error e)
      | Ok session ->
          Ok { session; compiled; history = []; last_error = None })

let session (t : t) = t.session
let compiled (t : t) = t.compiled
let source (t : t) = t.compiled.Live_surface.Compile.source
let last_error (t : t) = t.last_error

(** The outcome of a live edit. *)
type edit_outcome = {
  report : Live_core.Fixup.report;
      (** what the fix-up (Fig. 12) deleted *)
  screenshot : string;  (** the refreshed live view *)
}

(** Apply a code edit to the running program.  On a compile error the
    session keeps running the previous code (and the error is recorded
    for the editor to display); on success the UPDATE transition swaps
    the code, fixes up the state, and re-renders. *)
let edit (t : t) (new_source : string) : (edit_outcome, error) result =
  match Live_surface.Compile.compile new_source with
  | Error e ->
      t.last_error <- Some e;
      Error (Compile_error e)
  | Ok compiled -> (
      match
        Session.update t.session compiled.Live_surface.Compile.core
      with
      | Error e -> Error (Runtime_error e)
      | Ok report ->
          t.history <- source t :: t.history;
          t.compiled <- compiled;
          t.last_error <- None;
          Ok { report; screenshot = Session.screenshot t.session })

(** Apply an AST-level edit (direct manipulation): print, recompile,
    update. *)
let edit_ast (t : t) (ast : Live_surface.Sast.program) :
    (edit_outcome, error) result =
  edit t (Live_surface.Printer.program_to_string ast)

(** Revert to the previous source version, if any. *)
let undo (t : t) : (edit_outcome, error) result option =
  match t.history with
  | [] -> None
  | prev :: rest ->
      let r = edit t prev in
      (* [edit] pushed the undone version; restore a linear history *)
      (match r with Ok _ -> t.history <- rest | Error _ -> ());
      Some r

(* -- interaction passthrough --------------------------------------- *)

let tap (t : t) ~x ~y : (Session.tap_result, error) result =
  Result.map_error (fun e -> Runtime_error e) (Session.tap t.session ~x ~y)

let tap_first (t : t) : (Session.tap_result, error) result =
  Result.map_error (fun e -> Runtime_error e) (Session.tap_first t.session)

let back (t : t) : (unit, error) result =
  Result.map_error (fun e -> Runtime_error e) (Session.back t.session)

let screenshot (t : t) : string = Session.screenshot t.session
let screenshot_ansi (t : t) : string = Session.screenshot_ansi t.session

(* -- navigation ----------------------------------------------------- *)

let select_box (t : t) ~x ~y : Navigation.selection option =
  Navigation.select_at t.session t.compiled ~x ~y

let enclosing_boxes (t : t) ~x ~y : Navigation.selection list =
  Navigation.enclosing_at t.session t.compiled ~x ~y

let frames_of_stmt (t : t) (id : Live_core.Srcid.t) :
    Live_ui.Geometry.rect list =
  Navigation.frames_of_stmt t.session id
