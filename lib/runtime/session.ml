(** An interactive session: a system state (Fig. 7) driven by the
    transition rules (Fig. 9), connected to the character-cell display.

    The session keeps the state {e stable} between interactions: every
    public operation ends by draining the event queue and re-rendering
    (the "system is always live" loop of Sec. 4.2).  Screen-coordinate
    taps are resolved to handlers by hit-testing the laid-out box tree
    — the implementation counterpart of the TAP rule's premise
    [[ontap = v] ∈ B].

    With [~cache:true] the whole render pipeline is incremental, end to
    end: RENDER is memoized on the globals it reads
    ({!Live_core.Render_cache}), an unchanged box tree skips re-layout
    (physical identity — the cache returns the previous tree), and
    painting repaints only the damaged row spans
    ({!Live_ui.Render.paint_damaged}).  All of it is observationally
    transparent; {!render_cache_stats} and {!damage_stats} expose the
    hit/miss/damage counters for tests and benchmarks.

    A session also records the trace of user interactions, which the
    restart baseline replays and which this runtime deliberately never
    needs. *)

module Machine = Live_core.Machine
module State = Live_core.State

(** The last painted frame: box content, its layout, its pixels. *)
type frame = {
  fbox : Live_core.Boxcontent.t;
  froot : Live_ui.Layout.node;
  ffb : Live_ui.Framebuffer.t;
}

(** Cumulative damage-painting counters (cache-enabled sessions). *)
type damage_totals = {
  frames : int;  (** screenshots that painted something *)
  skipped_frames : int;  (** identical frames reused outright *)
  full_repaints : int;  (** height changes forcing a full paint *)
  repainted_rows : int;  (** dirty rows actually repainted *)
  total_rows : int;  (** rows a full repaint would have painted *)
}

let no_damage =
  {
    frames = 0;
    skipped_frames = 0;
    full_repaints = 0;
    repainted_rows = 0;
    total_rows = 0;
  }

(** Event-queue faults the conformance fuzzer injects (CRASH-style
    transitions): each is a one-shot modifier consumed by the next
    interaction that actually enqueues an event. *)
type fault = Drop_next_event | Duplicate_next_event

(** One journalled interaction, for rollback replay.  Taps are replayed
    by screen coordinates — the same resolution path a live user's
    finger takes — so a rewound session re-derives hits and misses
    from the restored display rather than trusting the recording. *)
type jop = J_tap of { x : int; y : int } | J_back | J_inject of fault

type t = {
  mutable state : State.t;
  width : int;
  fuel : int;
  evaluator : Machine.evaluator;
      (** closure-compiled (the default) or substitution evaluation;
          observationally identical, enforced by the conformance
          oracle's ["compiled"] configuration *)
  mutable layout : Live_ui.Layout.node option;
  mutable trace : Trace.t;
  cache : Live_ui.Layout.cache option;  (** incremental layout, if on *)
  render_cache : Live_core.Render_cache.t option;
      (** dependency-tracked render memoization, if on *)
  reuse : Live_ui.Layout.reuse option;
      (** previous-frame physical layout reuse (with [render_cache]) *)
  mutable frame : frame option;  (** last painted frame (cache on) *)
  mutable damage : damage_totals;
  mutable pending_fault : fault option;
      (** consumed by the next tap/back that enqueues an event *)
  mutable epoch : int;
      (** the code epoch this session is pinned to; the registry keeps
          it consistent with [state.code] during staged rollouts *)
  mutable journal : jop list option;
      (** [Some ops] (newest first) while a checkpoint is armed:
          interactions recorded for rollback replay *)
}

let ( let* ) = Result.bind

let stabilize (t : t) : (unit, Machine.error) result =
  let* st =
    Machine.run_to_stable ~fuel:t.fuel ?cache:t.render_cache
      ~evaluator:t.evaluator t.state
  in
  t.state <- st;
  t.layout <- None;
  Ok ()

let create ?(width = 48) ?(fuel = Live_core.Eval.default_fuel)
    ?(incremental = false) ?(cache = false)
    ?(evaluator = Machine.Compiled) (program : Live_core.Program.t) :
    (t, Machine.error) result =
  let t =
    {
      state = State.initial program;
      width;
      fuel;
      evaluator;
      layout = None;
      trace = Trace.empty;
      cache = (if incremental then Some (Live_ui.Layout.create_cache ()) else None);
      render_cache =
        (if cache then Some (Live_core.Render_cache.create ()) else None);
      reuse = (if cache then Some (Live_ui.Layout.create_reuse ()) else None);
      frame = None;
      damage = no_damage;
      pending_fault = None;
      epoch = 0;
      journal = None;
    }
  in
  let* () = stabilize t in
  Ok t

(** Apply (and clear) the pending queue fault.  Called between the
    transition that enqueued an event and the stabilisation loop that
    would dispatch it — the only window in which a session's queue is
    non-empty. *)
let apply_pending_fault (t : t) : unit =
  match t.pending_fault with
  | None -> ()
  | Some f ->
      t.pending_fault <- None;
      t.state <-
        (match f with
        | Drop_next_event -> Machine.drop_oldest_event t.state
        | Duplicate_next_event -> Machine.duplicate_oldest_event t.state)

(** Record an interaction in the armed journal, if any. *)
let journal_op (t : t) (op : jop) : unit =
  match t.journal with
  | None -> ()
  | Some ops -> t.journal <- Some (op :: ops)

let inject (t : t) (f : fault) : unit =
  journal_op t (J_inject f);
  t.pending_fault <- Some f

(** Drop every warm structure the incremental pipeline holds: the
    render memoization cache, the previous frame (forcing the next
    screenshot to paint from scratch) and the memoized layout.  A
    forced flush must be observationally invisible — the conformance
    fuzzer injects it mid-trace and diffs the configurations after. *)
let flush_caches (t : t) : unit =
  Option.iter Live_core.Render_cache.flush t.render_cache;
  t.frame <- None;
  t.layout <- None

(** Rebuild a session from persisted state (see the interface): the
    state is reassembled with an invalid display and an empty queue,
    then driven to stability — RENDER re-derives the display (and so
    the pixels) deterministically from code, store and stack, which is
    what makes snapshot/restore byte-identical without ever
    serializing a framebuffer. *)
let restore ?(width = 48) ?(fuel = Live_core.Eval.default_fuel)
    ?(incremental = false) ?(cache = false) ?(evaluator = Machine.Compiled)
    ?(trace = Trace.empty) ?(fault = None) ~(store : Live_core.Store.t)
    ~(stack : (Live_core.Ident.page * Live_core.Ast.value) list)
    (program : Live_core.Program.t) : (t, Machine.error) result =
  let state0 = Live_core.State.initial program in
  let t =
    {
      state = { state0 with Live_core.State.store; stack };
      width;
      fuel;
      evaluator;
      layout = None;
      trace;
      cache = (if incremental then Some (Live_ui.Layout.create_cache ()) else None);
      render_cache =
        (if cache then Some (Live_core.Render_cache.create ()) else None);
      reuse = (if cache then Some (Live_ui.Layout.create_reuse ()) else None);
      frame = None;
      damage = no_damage;
      pending_fault = fault;
      epoch = 0;
      journal = None;
    }
  in
  let* () = stabilize t in
  Ok t

let state (t : t) = t.state
let evaluator (t : t) = t.evaluator
let fuel (t : t) = t.fuel
let pending_fault (t : t) = t.pending_fault
let trace (t : t) = t.trace
let width (t : t) = t.width

let display_content (t : t) : Live_core.Boxcontent.t option =
  match t.state.State.display with
  | State.Invalid -> None
  | State.Shown b -> Some b

(** The layout of the current display, computed lazily and cached until
    the next transition.  When the render cache revalidated the display
    (the box tree is physically the previous one), the previous layout
    is reused without recomputation. *)
let layout (t : t) : Live_ui.Layout.node option =
  match t.layout with
  | Some l -> Some l
  | None -> (
      match display_content t with
      | None -> None
      | Some b ->
          let l =
            match t.frame with
            | Some fr when fr.fbox == b -> fr.froot
            | _ ->
                Live_ui.Layout.layout_page ?cache:t.cache ?reuse:t.reuse
                  ~width:t.width b
          in
          t.layout <- Some l;
          Some l)

let full_paint (t : t) (root : Live_ui.Layout.node) : Live_ui.Framebuffer.t =
  let fb =
    Live_ui.Framebuffer.create ~width:t.width
      ~height:(max 1 (Live_ui.Layout.total_height root))
  in
  Live_ui.Render.paint fb root;
  fb

let screenshot (t : t) : string =
  match layout t with
  | None -> "<display invalid>\n"
  | Some root -> (
      match t.render_cache with
      | None -> Live_ui.Framebuffer.to_text (full_paint t root)
      | Some _ -> (
          let b =
            match display_content t with
            | Some b -> b
            | None -> assert false (* layout t returned Some *)
          in
          match t.frame with
          | Some fr when fr.fbox == b ->
              (* the display was revalidated: the last frame is already
                 this frame *)
              t.damage <-
                { t.damage with skipped_frames = t.damage.skipped_frames + 1 };
              Live_ui.Framebuffer.to_text fr.ffb
          | Some fr ->
              let fb, dmg =
                Live_ui.Render.paint_damaged ~prev:(fr.froot, fr.ffb) root
              in
              t.damage <-
                {
                  t.damage with
                  frames = t.damage.frames + 1;
                  full_repaints =
                    (t.damage.full_repaints
                    + if dmg.Live_ui.Render.full then 1 else 0);
                  repainted_rows =
                    t.damage.repainted_rows + dmg.Live_ui.Render.repainted_rows;
                  total_rows = t.damage.total_rows + dmg.Live_ui.Render.total_rows;
                };
              t.frame <- Some { fbox = b; froot = root; ffb = fb };
              Live_ui.Framebuffer.to_text fb
          | None ->
              let fb = full_paint t root in
              t.damage <-
                {
                  t.damage with
                  frames = t.damage.frames + 1;
                  full_repaints = t.damage.full_repaints + 1;
                  repainted_rows =
                    t.damage.repainted_rows + fb.Live_ui.Framebuffer.height;
                  total_rows =
                    t.damage.total_rows + fb.Live_ui.Framebuffer.height;
                };
              t.frame <- Some { fbox = b; froot = root; ffb = fb };
              Live_ui.Framebuffer.to_text fb))

let screenshot_ansi (t : t) : string =
  match display_content t with
  | None -> "<display invalid>\n"
  | Some b -> Live_ui.Render.screenshot_ansi ~width:t.width b

(** Outcome of a coordinate tap. *)
type tap_result =
  | Tapped  (** a handler ran; the display was refreshed *)
  | No_handler  (** nothing tappable at that position *)

(** Tap the display at screen coordinates, like a user's finger.
    Records the interaction in the trace either way (the user did
    touch the screen; whether it hit is a property of the current UI). *)
let tap (t : t) ~(x : int) ~(y : int) : (tap_result, Machine.error) result =
  journal_op t (J_tap { x; y });
  t.trace <- Trace.add (Trace.Tap { x; y }) t.trace;
  match layout t with
  | None -> Ok No_handler
  | Some root -> (
      match Live_ui.Layout.handler_at root ~x ~y with
      | None -> Ok No_handler
      | Some handler ->
          let* st = Machine.tap t.state ~handler in
          t.state <- st;
          apply_pending_fault t;
          let* () = stabilize t in
          Ok Tapped)

(** Tap the first handler in document order — convenient in tests. *)
let tap_first (t : t) : (tap_result, Machine.error) result =
  match display_content t with
  | None -> Ok No_handler
  | Some b -> (
      match Live_core.Boxcontent.first_handler b with
      | None -> Ok No_handler
      | Some handler ->
          let* st = Machine.tap t.state ~handler in
          t.state <- st;
          apply_pending_fault t;
          let* () = stabilize t in
          Ok Tapped)

(** The BACK button. *)
let back (t : t) : (unit, Machine.error) result =
  journal_op t J_back;
  t.trace <- Trace.add Trace.Back t.trace;
  t.state <- Machine.back t.state;
  apply_pending_fault t;
  stabilize t

(** Apply a code update (the UPDATE transition) and re-render.
    Returns the fix-up report: which globals and stack entries the
    update deleted.  Without [diff] the render cache flushes itself on
    the code swap (its entries are keyed to the old code); with [diff]
    the fix-up is targeted ({!Live_core.Fixup}) and the cache is
    {e retargeted} instead of flushed — entries whose definitions the
    diff proves unchanged survive the swap
    ({!Live_core.Render_cache.retarget}).  Both preserve live-edit
    semantics exactly.  [checked] skips the code typecheck when the
    caller already ran {!Live_core.Machine.check_program} — the
    multi-session host's typecheck-once broadcast path. *)
let update ?(checked = false) ?diff (t : t) (new_code : Live_core.Program.t)
    : (Live_core.Fixup.report, Machine.error) result =
  let report = ref None in
  let* st = Machine.update ~checked ?diff ~report new_code t.state in
  (* Scoped invalidation, before [stabilize] re-renders under the new
     code (and [ensure_code] would otherwise flush wholesale).  Guarded
     like [Machine.update]'s diff use: the diff must span exactly this
     session's current code and the new code. *)
  (match (diff, t.render_cache) with
  | Some d, Some rc
    when Live_core.Program_diff.old_program d == t.state.State.code
         && Live_core.Program_diff.new_program d == new_code ->
      let keep_csite =
        match t.evaluator with
        | Machine.Compiled ->
            (* the new compilation (shared fleet-wide through the
               compile cache) inherited the site ids of reused
               definitions; entries at dead sites are stale *)
            let ct = Live_core.Compile_eval.get_incremental ~diff:d new_code in
            Live_core.Compile_eval.site_live ct
        | Machine.Subst -> fun _ -> true (* no csubtree entries exist *)
      in
      Live_core.Render_cache.retarget rc ~diff:d ~keep_csite new_code
  | _ -> ());
  t.state <- st;
  let* () = stabilize t in
  Ok
    (Option.value !report
       ~default:{ Live_core.Fixup.dropped_globals = []; dropped_pages = [] })

(* -- checkpoint / rollback ------------------------------------------- *)

(** A rollback point: the immutable parts of a session, captured by
    reference (state, trace and the pending fault are persistent
    values — no copying needed). *)
type checkpoint = {
  cp_state : State.t;
  cp_trace : Trace.t;
  cp_fault : fault option;
}

(** Capture a rollback point and arm the journal: every interaction
    from here on is recorded until {!commit} or {!rewind}. *)
let checkpoint (t : t) : checkpoint =
  t.journal <- Some [];
  { cp_state = t.state; cp_trace = t.trace; cp_fault = t.pending_fault }

(** Keep the current state: disarm the journal and discard it. *)
let commit (t : t) : unit = t.journal <- None

(** Restore the checkpoint, then replay the journalled interactions on
    top of it — the session ends byte-identical to one that never left
    the checkpointed code.  Caches are flushed (their entries are keyed
    to the abandoned code), which is observationally invisible.  Errors
    raised by replayed interactions are consumed and returned, exactly
    as the scheduler consumes per-event errors on the live path; an
    empty list is a clean rewind. *)
let rewind (t : t) (cp : checkpoint) : Machine.error list =
  let ops = match t.journal with Some ops -> List.rev ops | None -> [] in
  t.journal <- None;
  t.state <- cp.cp_state;
  t.trace <- cp.cp_trace;
  t.pending_fault <- cp.cp_fault;
  flush_caches t;
  List.fold_left
    (fun errs op ->
      match op with
      | J_tap { x; y } -> (
          match tap t ~x ~y with Ok _ -> errs | Error e -> e :: errs)
      | J_back -> (
          match back t with Ok () -> errs | Error e -> e :: errs)
      | J_inject f ->
          inject t f;
          errs)
    [] ops
  |> List.rev

let journalling (t : t) : bool = t.journal <> None

(* -- epoch pin ------------------------------------------------------- *)

let epoch (t : t) : int = t.epoch
let set_epoch (t : t) (e : int) : unit = t.epoch <- e

let current_page (t : t) : (string * Live_core.Ast.value) option =
  State.top_page t.state

let store (t : t) = t.state.State.store

let cache_stats (t : t) : (int * int) option =
  Option.map Live_ui.Layout.cache_stats t.cache

let render_cache_stats (t : t) : Live_core.Render_cache.stats option =
  Option.map Live_core.Render_cache.stats t.render_cache

let render_cache_handle (t : t) : Live_core.Render_cache.t option =
  t.render_cache

let damage_stats (t : t) : damage_totals option =
  match t.render_cache with None -> None | Some _ -> Some t.damage
