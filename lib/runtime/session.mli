(** An interactive session: a system state driven by the Fig. 9
    transitions and connected to the character-cell display.  Every
    public operation leaves the state stable with a valid display
    (Sec. 4.2's liveness loop). *)

type t

type damage_totals = {
  frames : int;  (** screenshots that painted something *)
  skipped_frames : int;  (** identical frames reused outright *)
  full_repaints : int;  (** height changes forcing a full paint *)
  repainted_rows : int;  (** dirty rows actually repainted *)
  total_rows : int;  (** rows a full repaint would have painted *)
}

val create :
  ?width:int ->
  ?fuel:int ->
  ?incremental:bool ->
  ?cache:bool ->
  ?evaluator:Live_core.Machine.evaluator ->
  Live_core.Program.t ->
  (t, Live_core.Machine.error) result
(** Boot to the first stable state.  [incremental] turns on the
    Sec. 5 layout-reuse cache (pixel-identical; see
    [test/test_incremental.ml]).  [cache] turns on the end-to-end
    incremental render pipeline: dependency-tracked RENDER memoization
    ({!Live_core.Render_cache}), layout reuse for revalidated
    displays, and damage-tracked repainting — also observationally
    transparent (see [test/test_render_cache.ml]).  [evaluator]
    selects the expression engine (default
    {!Live_core.Machine.Compiled}: programs compiled once to closures;
    byte-identical to substitution, see [test/test_compile_eval.ml]
    and the oracle's ["compiled"] configuration). *)

val evaluator : t -> Live_core.Machine.evaluator
val fuel : t -> int
(** The evaluator fuel bound this session runs under. *)

val state : t -> Live_core.State.t
val store : t -> Live_core.Store.t
val trace : t -> Trace.t
val width : t -> int
val current_page : t -> (string * Live_core.Ast.value) option

val display_content : t -> Live_core.Boxcontent.t option
(** [None] iff the display is [⊥] (never, between operations). *)

val layout : t -> Live_ui.Layout.node option
(** The current display's layout, cached until the next transition. *)

val screenshot : t -> string
val screenshot_ansi : t -> string

type tap_result =
  | Tapped  (** a handler ran and the display refreshed *)
  | No_handler  (** nothing tappable there *)

val tap : t -> x:int -> y:int -> (tap_result, Live_core.Machine.error) result
(** Tap at screen coordinates; recorded in the trace either way. *)

val tap_first : t -> (tap_result, Live_core.Machine.error) result

val back : t -> (unit, Live_core.Machine.error) result

val update :
  ?checked:bool ->
  ?diff:Live_core.Program_diff.t ->
  t ->
  Live_core.Program.t ->
  (Live_core.Fixup.report, Live_core.Machine.error) result
(** Apply the UPDATE transition and re-render; reports what the
    Fig. 12 fix-up deleted.  [checked] skips the new code's typecheck
    when the caller already discharged it with
    {!Live_core.Machine.check_program} (the host's typecheck-once
    broadcast).  [diff] (spanning exactly this session's current code
    and [new_code], else ignored) makes the whole swap O(edit): the
    fix-up re-checks only bindings whose declared types could have
    changed, and the render cache is retargeted instead of flushed, so
    memoized subtrees and displays of unchanged definitions survive —
    observable behaviour is byte-identical either way (the oracle's
    ["host-incr"] configuration enforces it). *)

val cache_stats : t -> (int * int) option
(** (hits, misses) of the incremental layout cache, if enabled. *)

val render_cache_stats : t -> Live_core.Render_cache.stats option
(** Hit/miss/revalidation/flush counters of the render memoization
    cache, if enabled. *)

val render_cache_handle : t -> Live_core.Render_cache.t option
(** The cache itself — exposed for the conformance fuzzer's fault
    injection (forced flushes, deliberate sabotage); ordinary clients
    should use {!render_cache_stats}. *)

(** {1 Fault injection (conformance fuzzing)}

    CRASH-style event-queue faults, injected identically into every
    oracle configuration so their observable behaviour must stay in
    agreement (see [lib/conformance]). *)

type fault =
  | Drop_next_event
      (** the event enqueued by the next successful tap/back is lost *)
  | Duplicate_next_event
      (** ... is delivered twice, back to back *)

val inject : t -> fault -> unit
(** Arm a one-shot queue fault; consumed by the next interaction that
    enqueues an event (a tap that hits a handler, or back). *)

val pending_fault : t -> fault option
(** The armed-but-not-yet-consumed fault, if any — persisted by
    {!Live_net.Snapshot} so a detached session resumes with the same
    fault still pending. *)

val restore :
  ?width:int ->
  ?fuel:int ->
  ?incremental:bool ->
  ?cache:bool ->
  ?evaluator:Live_core.Machine.evaluator ->
  ?trace:Trace.t ->
  ?fault:fault option ->
  store:Live_core.Store.t ->
  stack:(Live_core.Ident.page * Live_core.Ast.value) list ->
  Live_core.Program.t ->
  (t, Live_core.Machine.error) result
(** Rebuild a session from persisted state — the restore half of
    {!Live_net.Snapshot}.  The state is reassembled as
    [(C, ⊥, S, P, eps)] and driven to stability, which re-renders the
    display deterministically from the code, store and stack; a
    session restored from a detached session's snapshot is therefore
    byte-identical (store, stack, pixels) to one that was never
    detached.  [trace] re-installs the interaction history and [fault]
    a still-armed one-shot queue fault.  An empty [stack] boots from
    scratch (STARTUP runs, as in {!create}). *)

val flush_caches : t -> unit
(** Drop every warm incremental structure (render memoization cache,
    previous frame, memoized layout).  Observationally invisible — the
    fuzzer injects it mid-trace to stress the cache's cold paths. *)

val damage_stats : t -> damage_totals option
(** Cumulative damage-painting counters, if the cache is enabled. *)

(** {1 Checkpoint / rollback (staged rollouts)}

    The rollback contract of {!Live_host.Rollout}: a canary session
    checkpoints before taking the staged edit, journals every
    interaction it serves while canarying, and on rollback is rewound
    to the checkpoint and replayed — ending byte-identical to a
    session that never saw the edit.  (Merely re-UPDATE-ing back to
    the old code would {e not} be a no-op: the Fig. 12 fix-up resets
    state the edit touched.) *)

type checkpoint

val checkpoint : t -> checkpoint
(** Capture a rollback point and start journalling interactions
    ([tap], [back], [inject]).  Cheap: state, trace and pending fault
    are persistent values captured by reference. *)

val commit : t -> unit
(** Keep the current state; stop journalling and drop the journal. *)

val rewind : t -> checkpoint -> Live_core.Machine.error list
(** Restore the checkpoint and replay the journalled interactions on
    top of it.  Per-interaction errors are consumed and returned (the
    scheduler consumes per-event errors the same way on the live
    path); [[]] is a clean rewind. *)

val journalling : t -> bool
(** Whether a checkpoint is currently armed. *)

(** {1 Epoch pin (staged rollouts)} *)

val epoch : t -> int
(** The code epoch this session is pinned to (0 at creation); managed
    by {!Live_host.Registry} during staged rollouts. *)

val set_epoch : t -> int -> unit
