(** Transactional staged rollouts: an {e edit transaction} applied to
    the fleet in stages instead of one flat broadcast.

    Several program edits are composed into one change set
    ({!compose}), diffed and typechecked {b once} ({!begin_} — the
    O(edit) pipeline of {!Broadcast}), and registered as a second live
    code epoch in the registry.  A deterministic canary cohort
    (seeded, {!Live_core.Prng.derive}) then takes the edit
    ({!canary}) while the shadow cohort keeps serving on the base
    epoch; the driver watches both cohorts side by side
    ({!observe}: per-cohort digests, accounting, epoch and state
    invariants) and resolves the transaction either way:

    - {!promote} migrates the shadow cohort and retires the base
      epoch.  The fleet ends {b byte-identical} to a one-shot
      {!Broadcast.update} of the same change set — the soundness
      statement, enforced by the oracle's ["host-txn"] configuration
      and [test/test_rollout.ml].
    - {!rollback} rewinds every canary to its pre-rollout checkpoint
      and replays the interactions it served while canarying
      ({!Live_runtime.Session.rewind}), ending byte-identical to a
      fleet that never saw the edit.  (Re-broadcasting the old code
      would {e not} do that: UPDATE's Fig. 12 fix-up resets state the
      edit touched.)

    Grounded in {e Edit Transactions: Dynamically Scoped Change Sets
    for Controlled Updates in Live Programming} (see PAPERS.md): the
    change set is the transaction, the canary cohort is its dynamic
    scope.

    Concurrency: every stage mutates fleet-shared structures and must
    run with the fleet quiescent — under {!Parallel}, wrap each stage
    in {!Parallel.exclusive} (the same stop-the-world discipline as a
    broadcast). *)

type stage =
  | Staged  (** typechecked and epoch-registered; no session touched *)
  | Canarying  (** the canary cohort runs the target epoch *)
  | Promoted  (** resolved: target installed fleet-wide *)
  | Rolled_back  (** resolved: canaries rewound, target retired *)

type t

val compose :
  base:Live_core.Program.t ->
  (Live_core.Program.t -> Live_core.Program.t) list ->
  Live_core.Program.t
(** Fold a list of edits over [base], first edit first — N edits, one
    change set, one diff/typecheck/compile. *)

val begin_ :
  ?typecheck:Broadcast.typecheck_mode ->
  ?fraction:float ->
  seed:int ->
  Registry.t ->
  Live_core.Program.t ->
  (t, Live_core.Machine.error) result
(** Stage an edit transaction: diff the target against the installed
    program, discharge [C' |- C'] once ([typecheck] defaults to
    [Incremental]), open the target as a second live epoch, pin both
    epochs' compilations ({!Live_core.Compile_eval.pin_epoch}, under
    the [Compiled] evaluator) and select the canary cohort — a
    deterministic [fraction] (default [0.1], at least one session) of
    the current fleet, drawn by seeded partial shuffle.  [Error] means
    the typecheck refused the change set and {e nothing} happened
    (counted in [updates_rejected]).
    @raise Invalid_argument if a rollout is already open. *)

val canary : t -> Broadcast.session_outcome list
(** Apply the target to the canary cohort.  Each canary checkpoints
    first ({!Live_runtime.Session.checkpoint}) and starts journalling
    the traffic it serves, so {!rollback} stays exact whatever happens
    during the window.  Outcomes mirror {!Broadcast.update}'s
    per-session outcomes (sessions killed since [begin_] are skipped).
    @raise Invalid_argument unless the stage is [Staged]. *)

val promote : t -> Broadcast.session_outcome list
(** Resolve by migrating the shadow cohort (and any session spawned
    mid-window) to the target, committing every canary checkpoint and
    retiring the base epoch.  Fleet digest is byte-identical to a
    one-shot broadcast of the same change set.
    @raise Invalid_argument unless the stage is [Canarying]. *)

val rollback : t -> (Registry.id * Live_core.Machine.error) list
(** Resolve by rewinding every canary to its checkpoint and replaying
    its journalled window traffic; the target epoch is retired and the
    fleet is byte-identical to one that never began the rollout.
    Replay errors are consumed and returned, as the scheduler consumes
    per-event errors on the live path; [[]] is a clean rollback.
    Allowed from [Staged] too (a rollout abandoned before canarying is
    a pure close).
    @raise Invalid_argument if already resolved. *)

(** {1 Observation (the canary-vs-shadow comparison)} *)

type health = {
  h_stage : stage;
  canary_digest : string;  (** {!Registry.digest_cohort} of the canaries *)
  shadow_digest : string;  (** ... of everyone else *)
  canary_accounting : Registry.cohort_accounting;
  shadow_accounting : Registry.cohort_accounting;
  accounting_ok : bool;  (** both cohort identities hold *)
  epoch_violations : (Registry.id * string) list;
      (** {!Registry.check_epochs}: sessions crossing epochs *)
  invariant_violations : (Registry.id * string) list;
      (** {!Registry.check_invariants} fleet-wide *)
}

val observe : t -> health
(** Both cohorts side by side, at any point in the rollout's life. *)

val healthy : health -> bool
(** Accounting holds and no epoch or state invariant is violated —
    the promote/rollback decision input. *)

(** {1 Introspection} *)

val stage : t -> stage
val canary_ids : t -> Registry.id list
(** Ascending; fixed at [begin_] time. *)

val shadow_ids : t -> Registry.id list
(** Everyone currently in the fleet but the canaries. *)

val base : t -> Live_core.Program.t
val target : t -> Live_core.Program.t
val base_epoch : t -> int
val target_epoch : t -> int

val summary : t -> string
(** One paragraph: stage, cohort sizes, epochs, and the change set's
    dirty definitions ({!Live_core.Program_diff.dirty_names}). *)
