(** The batching scheduler (see the interface for the coalescing
    argument). *)

module Session = Live_runtime.Session
module Machine = Live_core.Machine

type policy = Round_robin | Hottest_first

let policy_to_string = function
  | Round_robin -> "round-robin"
  | Hottest_first -> "hottest-first"

let policy_of_string = function
  | "round-robin" -> Some Round_robin
  | "hottest-first" -> Some Hottest_first
  | _ -> None

type t = {
  reg : Registry.t;
  policy : policy;
  batch : int;
  clock : unit -> float;
  mutable cursor : int;  (** round-robin rotation *)
}

let create ?(policy = Round_robin) ?(batch = 8)
    ?(clock = Unix.gettimeofday) (reg : Registry.t) : t =
  { reg; policy; batch = max 1 batch; clock; cursor = 0 }

type tick_report = {
  processed : int;
  sessions_served : int;
  repaints : int;
  coalesced : int;
  taps_hit : int;
  taps_missed : int;
  errors : (Registry.id * Machine.error) list;
  latency_ns : float;
}

type service = {
  sv_processed : int;
  sv_taps_hit : int;
  sv_taps_missed : int;
  sv_painted : bool;  (** at least one event drained, one frame painted *)
  sv_errors : (Registry.id * Machine.error) list;  (** oldest first *)
}

(** Serve one session: drain up to [batch] pending events in FIFO
    order, run each through the ordinary TAP / BACK transition, and
    paint a single frame iff anything was drained.  This is the unit
    of work both the sequential tick below and the parallel host's
    worker domains execute — everything it touches (the session, its
    ingress queue) belongs to exactly one caller at a time, so it is
    safe on any domain under the parallel host's session-affinity
    discipline, and its per-session behaviour is identical wherever it
    runs (the determinism the ["host-parallel"] oracle configuration
    enforces). *)
let serve (reg : Registry.t) ~(batch : int) (id : Registry.id) : service =
  match Registry.session reg id with
  | None ->
      {
        sv_processed = 0;
        sv_taps_hit = 0;
        sv_taps_missed = 0;
        sv_painted = false;
        sv_errors = [];
      }
  | Some s ->
      let n = ref 0 in
      let taps_hit = ref 0 in
      let taps_missed = ref 0 in
      let errors = ref [] in
      let continue = ref true in
      while !continue && !n < batch do
        match Registry.take reg id with
        | None -> continue := false
        | Some ev ->
            incr n;
            (match ev with
            | Registry.Tap { x; y } -> (
                match Session.tap s ~x ~y with
                | Ok Session.Tapped -> incr taps_hit
                | Ok Session.No_handler -> incr taps_missed
                | Error e -> errors := (id, e) :: !errors)
            | Registry.Back -> (
                match Session.back s with
                | Ok () -> ()
                | Error e -> errors := (id, e) :: !errors))
      done;
      if !n > 0 then
        (* the batch's single frame: paint once however many events
           the session just absorbed *)
        ignore (Session.screenshot s);
      {
        sv_processed = !n;
        sv_taps_hit = !taps_hit;
        sv_taps_missed = !taps_missed;
        sv_painted = !n > 0;
        sv_errors = List.rev !errors;
      }

(** The service order for this tick.  Round-robin rotates the spawn
    ring by one each tick; hottest-first sorts by pending backlog
    (ties by id, so the order is deterministic). *)
let service_order (t : t) : Registry.id list =
  let ids = Registry.ids t.reg in
  match t.policy with
  | Round_robin ->
      let n = List.length ids in
      if n = 0 then []
      else begin
        let k = t.cursor mod n in
        t.cursor <- t.cursor + 1;
        let arr = Array.of_list ids in
        List.init n (fun i -> arr.((i + k) mod n))
      end
  | Hottest_first ->
      List.stable_sort
        (fun a b ->
          match compare (Registry.pending t.reg b) (Registry.pending t.reg a) with
          | 0 -> compare a b
          | c -> c)
        ids

let tick (t : t) : tick_report =
  let t0 = t.clock () in
  let m = Registry.metrics t.reg in
  let processed = ref 0 in
  let served = ref 0 in
  let taps_hit = ref 0 in
  let taps_missed = ref 0 in
  let errors = ref [] in
  List.iter
    (fun id ->
      let sv = serve t.reg ~batch:t.batch id in
      processed := !processed + sv.sv_processed;
      taps_hit := !taps_hit + sv.sv_taps_hit;
      taps_missed := !taps_missed + sv.sv_taps_missed;
      if sv.sv_painted then incr served;
      errors := List.rev_append sv.sv_errors !errors)
    (service_order t);
  let latency_ns = (t.clock () -. t0) *. 1e9 in
  m.Host_metrics.ticks <- m.Host_metrics.ticks + 1;
  m.Host_metrics.events_processed <-
    m.Host_metrics.events_processed + !processed;
  m.Host_metrics.taps_hit <- m.Host_metrics.taps_hit + !taps_hit;
  m.Host_metrics.taps_missed <- m.Host_metrics.taps_missed + !taps_missed;
  m.Host_metrics.repaints <- m.Host_metrics.repaints + !served;
  m.Host_metrics.coalesced_renders <-
    m.Host_metrics.coalesced_renders + (!processed - !served);
  Host_metrics.record m.Host_metrics.tick_latency latency_ns;
  {
    processed = !processed;
    sessions_served = !served;
    repaints = !served;
    coalesced = !processed - !served;
    taps_hit = !taps_hit;
    taps_missed = !taps_missed;
    errors = List.rev !errors;
    latency_ns;
  }

let drain ?(max_ticks = 1_000_000) (t : t) : (int, string) result =
  let rec go k total =
    if Registry.total_pending t.reg = 0 then Ok total
    else if k <= 0 then
      Error
        (Printf.sprintf "drain: %d events still pending after %d ticks"
           (Registry.total_pending t.reg) max_ticks)
    else
      let r = tick t in
      if r.processed = 0 && Registry.total_pending t.reg > 0 then
        Error "drain: pending events but a tick processed nothing"
      else go (k - 1) (total + r.processed)
  in
  go max_ticks 0
