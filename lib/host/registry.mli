(** The session fleet: N concurrent {!Live_runtime.Session}s sharing
    one program.

    The registry owns spawn / kill / lookup, the per-session bounded
    ingress queue ({!Backpressure}), an optional fleet-wide admission
    limit on total pending events, and the {!Host_metrics} counters
    every component reports into.  Sessions keep their own store and
    page stack (per-user model state); the {e code} is shared and only
    changes through {!Broadcast.update}, which applies one edit
    transactionally across the whole fleet. *)

type id = int
(** Dense, never reused within a registry. *)

(** A user event addressed to one session, not yet applied — the
    host-level counterpart of the paper's TAP / BACK transitions. *)
type uevent = Tap of { x : int; y : int } | Back

val pp_uevent : Format.formatter -> uevent -> unit

type config = {
  width : int;  (** display width of every session *)
  fuel : int option;  (** evaluator fuel ([None] = default) *)
  incremental : bool;  (** Sec. 5 layout cache *)
  cache : bool;  (** the end-to-end incremental render pipeline *)
  evaluator : Live_core.Machine.evaluator;
      (** expression engine for every session (default [Compiled]:
          one shared compilation per program fleet-wide) *)
  queue_capacity : int;  (** per-session ingress bound *)
  queue_policy : Backpressure.policy;
  admission_limit : int option;
      (** fleet-wide cap on total pending events; offers beyond it are
          rejected whatever the per-session policy says *)
}

val default_config : config
(** width 48, default fuel, no caches, capacity 64, drop-oldest, no
    admission limit. *)

type t

val create : ?config:config -> Live_core.Program.t -> t
(** An empty fleet over the shared program; {!spawn} boots sessions. *)

val spawn : t -> (id, Live_core.Machine.error) result
(** Boot one session on the current shared program to its first stable
    state. *)

val spawn_many : t -> int -> (id list, Live_core.Machine.error) result
(** Spawn [n] sessions; stops at the first boot failure (already
    spawned sessions stay). *)

val adopt : t -> Live_runtime.Session.t -> id
(** Enroll an existing stable session (a snapshot the networked host
    just resumed) under a fresh id, pinned to the current epoch.  The
    caller guarantees the session's code {e is} the registry's shared
    program (physically — {!check_epochs} compares by identity); the
    server UPDATEs a resumed session whose snapshot carried older code
    before adopting it.
    @raise Invalid_argument while a staged rollout is open. *)

val kill : t -> id -> bool
(** Remove a session; its pending ingress events are accounted as
    dropped.  [false] if the id is unknown. *)

val session : t -> id -> Live_runtime.Session.t option
val ids : t -> id list
(** Spawn order — the scheduler's round-robin ring. *)

val size : t -> int
val program : t -> Live_core.Program.t

val program_checked : t -> bool
(** Whether the current shared program is known to satisfy [C |- C].
    False for the boot program (sessions boot without the UPDATE
    premise being discharged); true once a broadcast's typecheck
    accepted an edit.  {!Broadcast.update}'s incremental typecheck
    requires it — derivation reuse is only sound from a known-good
    baseline — and falls back to a scratch check when false. *)

val config : t -> config
val metrics : t -> Host_metrics.t

(** {1 Ingress} *)

val offer : t -> id -> uevent -> Backpressure.outcome
(** Enqueue a user event for one session, subject to the per-session
    bound and the fleet admission limit; every outcome is counted in
    {!metrics}.  An unknown id rejects. *)

val pending : t -> id -> int
val total_pending : t -> int
val take : t -> id -> uevent option
(** Dequeue the session's oldest pending event (the scheduler's
    draining primitive). *)

(** {1 Internals shared with Broadcast} *)

val set_program : t -> Live_core.Program.t -> unit
(** Install the new shared code — {b only} {!Broadcast.update} calls
    this, after the fleet-wide transaction committed.  Marks the
    program checked ({!program_checked}), bumps the code epoch and
    re-pins every session to it.
    @raise Invalid_argument while a staged rollout is open. *)

(** {1 Code epochs (staged rollouts)}

    In steady state the fleet has one live epoch: the installed
    program.  {!open_rollout} registers an edit transaction's target
    as a second live epoch; while the rollout is open, each session is
    pinned to exactly one of the two, and {!Broadcast.update} refuses
    to run.  {!promote_rollout} / {!rollback_rollout} close the window
    — cohort state migration (canary updates, checkpoint rewinds) is
    {!Rollout}'s job; the registry only tracks which epochs are live
    and who is pinned where. *)

val current_epoch : t -> int
(** The installed epoch's id (0 at creation; bumps on every
    [set_program] and every promoted rollout). *)

val rollout_open : t -> bool

val live_epochs : t -> (int * Live_core.Program.t) list
(** Newest first; one entry in steady state, two while a rollout is
    open. *)

val epoch_program : t -> int -> Live_core.Program.t option

val session_epoch : t -> id -> int option
(** The epoch a session is pinned to; [None] for an unknown id. *)

val pin_session : t -> id -> int -> unit
(** Re-pin one session ({!Rollout} migrating a canary).  Unknown ids
    are ignored.
    @raise Invalid_argument if the epoch is not live. *)

val open_rollout : t -> Live_core.Program.t -> int
(** Register [target] as a second live epoch and return its id.  The
    installed program and every pin are untouched.
    @raise Invalid_argument if a rollout is already open. *)

val promote_rollout : t -> unit
(** Install the open rollout's target fleet-wide and retire the base
    epoch; every session is pinned to the new epoch (the caller has
    migrated their states).  @raise Invalid_argument if none is open. *)

val rollback_rollout : t -> unit
(** Retire the open rollout's target epoch; the base stays installed
    and every session is pinned back to it (the caller has rewound the
    canaries).  @raise Invalid_argument if none is open. *)

val check_epochs : t -> (id * string) list
(** Epoch consistency: every session's pin names a live epoch and its
    state's code is physically that epoch's program.  Empty list =
    no session ever crosses epochs unaccounted. *)

(** {1 Invariants} *)

val check_invariants : t -> (id * string) list
(** Every session's state must type (Fig. 11), be stable, and show a
    valid display; each violation is reported as [(id, message)].
    Empty list = healthy fleet. *)

val snapshot : t -> Host_metrics.snapshot
(** Freeze the metrics, aggregating render-cache hits/misses across
    the fleet and the current total pending count. *)

val snapshot_merged : t -> extra:Host_metrics.t list -> Host_metrics.snapshot
(** Like {!snapshot}, with [extra] per-domain {!Host_metrics}
    instances merged into the registry's own before freezing — the
    parallel host's fleet totals ({!Parallel.snapshot} calls this). *)

val cache_totals : t -> (int * int) option
(** Fleet-aggregated render-cache (hits, misses); [None] when no
    session runs the cache. *)

val export_metrics : t -> string
(** {!Host_metrics.export} of this registry's raw counters with the
    current sessions / pending / cache totals — what a shard answers
    to the director's [Stats_data] frame. *)

val observe_session : Live_runtime.Session.t -> string
(** One session's canonical observation (sorted store, page stack,
    painted pixels) — the unit the fleet {!digest} hashes. *)

val digest : t -> string
(** MD5 over every session's observation in id order: the fleet's
    observable state as one hex string.  Sequential and parallel hosts
    replaying the same seeded trace must digest identically for every
    [--jobs] — the determinism contract of [lib/host/parallel]. *)

val digest_cohort : t -> id list -> string
(** {!digest} restricted to a cohort (always hashed in id order,
    whatever order the list is in) — the canary-vs-shadow comparison
    unit during staged rollouts. *)

(** {1 Cohort accounting}

    Per-session ingress ledgers aggregated over a cohort.  The
    accounting identity [ca_in = ca_taken + ca_dropped + ca_rejected +
    ca_pending] holds per cohort and summed — events never migrate
    between cohorts, so a staged rollout cannot launder a lost event
    through the fleet totals. *)

type cohort_accounting = {
  ca_in : int;  (** offers addressed to cohort members (any outcome) *)
  ca_taken : int;  (** events the scheduler dequeued *)
  ca_dropped : int;  (** drop-oldest victims *)
  ca_rejected : int;  (** queue-full and admission rejections *)
  ca_pending : int;  (** still queued *)
}

val cohort_accounting : t -> id list -> cohort_accounting
(** Duplicate ids in the cohort are counted once; unknown ids
    contribute nothing (killed sessions' ledgers die with them). *)

val cohort_accounting_ok : cohort_accounting -> bool
