(** Fleet-wide UPDATE (see the interface for the transaction
    contract). *)

module Session = Live_runtime.Session
module Machine = Live_core.Machine
module Fixup = Live_core.Fixup

type session_outcome = {
  id : Registry.id;
  outcome : (Fixup.report, Machine.error) result;
}

type report = {
  outcomes : session_outcome list;
  fanout_ns : float;
  dropped_globals : int;
  dropped_pages : int;
}

let update ?(clock = Unix.gettimeofday) (reg : Registry.t)
    (new_code : Live_core.Program.t) : (report, Machine.error) result =
  let m = Registry.metrics reg in
  match Machine.check_program new_code with
  | Error e ->
      (* all-or-nothing: the typecheck failed, nothing was touched *)
      m.Host_metrics.updates_rejected <- m.Host_metrics.updates_rejected + 1;
      Error e
  | Ok () ->
      (* compile once, before the fan-out: every session's first
         dispatch/render under the new code hits the warm compile
         cache, mirroring the typecheck-once contract.  (Under the
         parallel host this runs inside the stop-the-world update
         barrier, so priming is single-threaded.) *)
      (if (Registry.config reg).Registry.evaluator = Machine.Compiled then
         ignore (Live_core.Compile_eval.get new_code : Live_core.Compile_eval.t));
      let t0 = clock () in
      let outcomes =
        List.map
          (fun id ->
            match Registry.session reg id with
            | None -> assert false (* ids come from the registry *)
            | Some s ->
                { id; outcome = Session.update ~checked:true s new_code })
          (Registry.ids reg)
      in
      Registry.set_program reg new_code;
      let fanout_ns = (clock () -. t0) *. 1e9 in
      m.Host_metrics.updates_applied <- m.Host_metrics.updates_applied + 1;
      m.Host_metrics.fanout_last_ns <- fanout_ns;
      Host_metrics.record m.Host_metrics.update_fanout fanout_ns;
      let count f =
        List.fold_left
          (fun acc o ->
            match o.outcome with Ok r -> acc + List.length (f r) | Error _ -> acc)
          0 outcomes
      in
      Ok
        {
          outcomes;
          fanout_ns;
          dropped_globals = count (fun r -> r.Fixup.dropped_globals);
          dropped_pages = count (fun r -> r.Fixup.dropped_pages);
        }

let report_to_string (r : report) : string =
  let b = Buffer.create 256 in
  Printf.ksprintf (Buffer.add_string b)
    "broadcast: %d sessions in %.2f ms; %d globals / %d pages dropped \
     fleet-wide\n"
    (List.length r.outcomes) (r.fanout_ns /. 1e6) r.dropped_globals
    r.dropped_pages;
  List.iter
    (fun { id; outcome } ->
      match outcome with
      | Ok rep when rep.Fixup.dropped_globals = [] && rep.Fixup.dropped_pages = []
        ->
          ()
      | Ok rep ->
          Printf.ksprintf (Buffer.add_string b) "  session %d: %s\n" id
            (Fixup.report_to_string rep)
      | Error e ->
          Printf.ksprintf (Buffer.add_string b) "  session %d: ERROR %s\n" id
            (Machine.error_to_string e))
    r.outcomes;
  Buffer.contents b
