(** Fleet-wide UPDATE (see the interface for the transaction
    contract). *)

module Session = Live_runtime.Session
module Machine = Live_core.Machine
module Fixup = Live_core.Fixup
module Program_diff = Live_core.Program_diff

type session_outcome = {
  id : Registry.id;
  outcome : (Fixup.report, Machine.error) result;
}

type typecheck_mode = Scratch | Incremental | Cross_check

type report = {
  outcomes : session_outcome list;
  fanout_ns : float;
  typecheck_ns : float;
  diff_ns : float;
  compile_ns : float;
  dirty_defs : int;
  recheck_defs : int;
  incremental : bool;
  dropped_globals : int;
  dropped_pages : int;
}

(* The typecheck phase: run the scratch checker, the incremental one
   (when a diff against a known-good old program is available), or both.
   Returns the verdict plus whether the accepted path may hand the diff
   down to the fan-out (only when the incremental premise held — the
   old code passed its own check). *)
let run_typecheck (mode : typecheck_mode) ~(old_checked : bool)
    ~(diff : Program_diff.t) (new_code : Live_core.Program.t) :
    (unit, Machine.error) result * bool =
  let scratch () = Machine.check_program new_code in
  let incremental () = Machine.check_program_incremental ~diff new_code in
  match mode with
  | Scratch -> (scratch (), false)
  | Incremental when old_checked -> (incremental (), true)
  | Incremental -> (scratch (), false)
  | Cross_check ->
      let s = scratch () in
      if not old_checked then (s, false)
      else
        let i = incremental () in
        let agree =
          match (s, i) with
          | Ok (), Ok () -> true
          | Error a, Error b ->
              String.equal (Machine.error_to_string a)
                (Machine.error_to_string b)
          | _ -> false
        in
        if agree then (s, true)
        else
          ( Error
              (Machine.Ill_typed
                 (Printf.sprintf
                    "typecheck divergence: scratch %s, incremental %s"
                    (match s with
                    | Ok () -> "accepted"
                    | Error e -> "rejected (" ^ Machine.error_to_string e ^ ")")
                    (match i with
                    | Ok () -> "accepted"
                    | Error e -> "rejected (" ^ Machine.error_to_string e ^ ")"))),
            false )

let update ?(clock = Unix.gettimeofday) ?(typecheck = Incremental)
    (reg : Registry.t) (new_code : Live_core.Program.t) :
    (report, Machine.error) result =
  let m = Registry.metrics reg in
  if Registry.rollout_open reg then begin
    (* a flat broadcast during an open rollout would install a third
       code version and break the two-epoch invariant; the caller must
       resolve the rollout first (Rollout.promote / Rollout.rollback) *)
    m.Host_metrics.updates_rejected <- m.Host_metrics.updates_rejected + 1;
    Error
      (Machine.Not_enabled
         "broadcast update refused: a staged rollout is open")
  end
  else
  let old_code = Registry.program reg in
  let old_checked = Registry.program_checked reg in
  let t_diff = clock () in
  let diff = Program_diff.diff ~old_prog:old_code new_code in
  let diff_ns = (clock () -. t_diff) *. 1e9 in
  let t_check = clock () in
  let verdict, use_diff =
    run_typecheck typecheck ~old_checked ~diff new_code
  in
  let typecheck_ns = (clock () -. t_check) *. 1e9 in
  m.Host_metrics.typecheck_last_ns <- typecheck_ns;
  m.Host_metrics.diff_last_ns <- diff_ns;
  m.Host_metrics.dirty_defs_last <- Program_diff.dirty_count diff;
  m.Host_metrics.recheck_defs_last <- Program_diff.recheck_count diff;
  Host_metrics.record m.Host_metrics.update_typecheck typecheck_ns;
  (if use_diff then
     m.Host_metrics.broadcasts_incremental <-
       m.Host_metrics.broadcasts_incremental + 1
   else
     m.Host_metrics.broadcasts_scratch <- m.Host_metrics.broadcasts_scratch + 1);
  match verdict with
  | Error e ->
      (* all-or-nothing: the typecheck failed, nothing was touched *)
      m.Host_metrics.updates_rejected <- m.Host_metrics.updates_rejected + 1;
      Error e
  | Ok () ->
      (* compile once, before the fan-out: every session's first
         dispatch/render under the new code hits the warm compile
         cache, mirroring the typecheck-once contract.  (Under the
         parallel host this runs inside the stop-the-world update
         barrier, so priming is single-threaded.)  With a usable diff
         the compilation itself is incremental: only the dirty
         definitions are recompiled, the rest keep their closures and
         memoization site ids. *)
      let t_compile = clock () in
      (if (Registry.config reg).Registry.evaluator = Machine.Compiled then
         if use_diff then
           ignore
             (Live_core.Compile_eval.get_incremental ~diff new_code
               : Live_core.Compile_eval.t)
         else
           ignore (Live_core.Compile_eval.get new_code
                    : Live_core.Compile_eval.t));
      let compile_ns = (clock () -. t_compile) *. 1e9 in
      m.Host_metrics.compile_last_ns <- compile_ns;
      let t0 = clock () in
      let diff_opt = if use_diff then Some diff else None in
      let outcomes =
        List.map
          (fun id ->
            match Registry.session reg id with
            | None -> assert false (* ids come from the registry *)
            | Some s ->
                {
                  id;
                  outcome = Session.update ~checked:true ?diff:diff_opt s new_code;
                })
          (Registry.ids reg)
      in
      Registry.set_program reg new_code;
      let fanout_ns = (clock () -. t0) *. 1e9 in
      m.Host_metrics.updates_applied <- m.Host_metrics.updates_applied + 1;
      m.Host_metrics.fanout_last_ns <- fanout_ns;
      Host_metrics.record m.Host_metrics.update_fanout fanout_ns;
      let count f =
        List.fold_left
          (fun acc o ->
            match o.outcome with Ok r -> acc + List.length (f r) | Error _ -> acc)
          0 outcomes
      in
      Ok
        {
          outcomes;
          fanout_ns;
          typecheck_ns;
          diff_ns;
          compile_ns;
          dirty_defs = Program_diff.dirty_count diff;
          recheck_defs = Program_diff.recheck_count diff;
          incremental = use_diff;
          dropped_globals = count (fun r -> r.Fixup.dropped_globals);
          dropped_pages = count (fun r -> r.Fixup.dropped_pages);
        }

let report_to_string (r : report) : string =
  let b = Buffer.create 256 in
  Printf.ksprintf (Buffer.add_string b)
    "broadcast: %d sessions in %.2f ms; %d globals / %d pages dropped \
     fleet-wide\n"
    (List.length r.outcomes) (r.fanout_ns /. 1e6) r.dropped_globals
    r.dropped_pages;
  Printf.ksprintf (Buffer.add_string b)
    "  typecheck %s: %.2f ms (diff %.2f ms, %d dirty / %d rechecked defs); \
     compile %.2f ms\n"
    (if r.incremental then "incremental" else "scratch")
    (r.typecheck_ns /. 1e6) (r.diff_ns /. 1e6) r.dirty_defs r.recheck_defs
    (r.compile_ns /. 1e6);
  List.iter
    (fun { id; outcome } ->
      match outcome with
      | Ok rep when rep.Fixup.dropped_globals = [] && rep.Fixup.dropped_pages = []
        ->
          ()
      | Ok rep ->
          Printf.ksprintf (Buffer.add_string b) "  session %d: %s\n" id
            (Fixup.report_to_string rep)
      | Error e ->
          Printf.ksprintf (Buffer.add_string b) "  session %d: ERROR %s\n" id
            (Machine.error_to_string e))
    r.outcomes;
  Buffer.contents b
