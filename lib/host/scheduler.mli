(** The batching scheduler: one tick drains bounded batches of pending
    user events across the fleet and repaints each served session
    {e once}, so the per-frame cost is amortised over the batch.

    Semantics are untouched: every drained event runs the ordinary
    TAP / BACK transition followed by the full stabilisation loop
    (dispatch, RENDER) — what is coalesced is only the {e painting} of
    frames, which is outside the Fig. 9 relation.  A fleet of one
    driven one event per tick is therefore observably identical to a
    plain session, which the conformance oracle's ["host"]
    configuration checks byte-for-byte.

    Policies:
    - {!Round_robin}: fair — the starting session rotates every tick;
    - {!Hottest_first}: serve the longest ingress queue first (drains
      backlog fastest; can starve cold sessions under overload, which
      is what the bounded queues are for). *)

type policy = Round_robin | Hottest_first

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

type t

val create :
  ?policy:policy ->
  ?batch:int ->
  ?clock:(unit -> float) ->
  Registry.t ->
  t
(** [batch] (default 8, clamped to >= 1) bounds the events drained per
    session per tick.  [clock] is in seconds ([Unix.gettimeofday] by
    default) and times each tick into the registry's metrics. *)

(** The result of serving one session once (see {!serve}). *)
type service = {
  sv_processed : int;  (** events drained, <= the batch bound *)
  sv_taps_hit : int;
  sv_taps_missed : int;
  sv_painted : bool;  (** a frame was painted (>= 1 event drained) *)
  sv_errors : (Registry.id * Live_core.Machine.error) list;  (** oldest first *)
}

val serve : Registry.t -> batch:int -> Registry.id -> service
(** Drain up to [batch] events for one session in FIFO order and paint
    a single coalesced frame if anything was drained — the unit of
    work shared by the sequential {!tick} and the parallel host's
    worker domains ({!Parallel}).  Touches only the session and its
    ingress queue, so it may run on any domain as long as no other
    domain serves the same session concurrently. *)

type tick_report = {
  processed : int;  (** events drained and applied this tick *)
  sessions_served : int;  (** sessions that processed >= 1 event *)
  repaints : int;  (** one per served session *)
  coalesced : int;  (** processed - repaints: redundant frames saved *)
  taps_hit : int;
  taps_missed : int;
  errors : (Registry.id * Live_core.Machine.error) list;
      (** sessions whose event application failed; the event is
          consumed, the session keeps running *)
  latency_ns : float;
}

val tick : t -> tick_report
(** One scheduling round under the configured policy.  A tick with no
    pending events is a cheap no-op (still counted and timed). *)

val drain : ?max_ticks:int -> t -> (int, string) result
(** Tick until no events are pending; returns the total processed.
    [Error] if [max_ticks] (default 1_000_000) rounds were not
    enough. *)
