(** Domain-parallel session execution: a fixed pool of worker domains
    that partitions the fleet's runnable sessions into shards and runs
    {!Scheduler.serve}-style batches concurrently, one session per
    domain at a time.

    {2 Why this is sound}

    The paper's type-and-effect discipline makes fleet ticks
    embarrassingly parallel by construction: each session owns its
    store, page stack, render caches and framebuffer; sessions share
    only the {e immutable} program; and render code cannot write the
    model (the render effect excludes writes), so serving one session
    can never observe another.  The only cross-session state is the
    registry's total-pending counter (an [Atomic]) and the metrics,
    which are strictly per-domain instances merged into fleet totals
    ({!Host_metrics.merge}).

    {2 Determinism}

    For any seeded trace, the parallel host's per-session final
    stores, stacks and framebuffers are byte-identical to the
    sequential {!Scheduler}'s, for every [jobs] — event order within a
    session is preserved (its FIFO ingress queue is drained by exactly
    one domain per tick, with the same batch bound), and only the
    cross-session interleaving varies, which no session can observe.
    The ["host-parallel"] oracle configuration
    ({!Live_conformance.Oracle}), the equivalence properties in
    [test/test_parallel.ml] and [host_bench --digest] all enforce this
    byte-for-byte ({!Registry.digest}).

    {2 Scheduling}

    Each tick rebalances: runnable sessions (pending > 0) are sorted
    hottest-first by this tick's work ([min pending batch]) and dealt
    greedily to the least-loaded shard — a deterministic
    longest-processing-time partition, the work-stealing rebalance
    keyed on queue depth that {!Scheduler.Hottest_first} generalises
    across domains.  Sessions therefore migrate between domains only
    across the tick barrier, never during a tick (session-affinity
    pinning).

    {2 The broadcast barrier}

    {!update} is a stop-the-world transaction in the spirit of edit
    transactions: it takes the same world lock every tick holds, so it
    blocks until in-flight shards quiesce, applies the
    typecheck-once {!Broadcast.update} against the whole quiesced
    fleet, and only then lets workers resume.  A broadcast can never
    observe — or be observed by — a half-ticked fleet;
    {!barrier_violations} counts (and the tests assert zero) any
    overlap ever detected between serving and updating. *)

type t

val create :
  ?jobs:int -> ?batch:int -> ?clock:(unit -> float) -> Registry.t -> t
(** A pool of [jobs] shards over the registry: the calling domain
    coordinates and serves shard 0; [jobs - 1] worker domains are
    spawned for the rest (none for [jobs = 1], which is the sequential
    degenerate case running the identical code path).  [jobs] defaults
    to {!Domain.recommended_domain_count} and is clamped to [1, 64];
    [batch] (default 8) bounds events per session per tick exactly as
    the sequential scheduler does.  Call {!shutdown} (or use
    {!with_pool}) when done — worker domains are real OS threads. *)

val with_pool :
  ?jobs:int -> ?batch:int -> Registry.t -> (t -> 'a) -> 'a
(** [create], run the function, always [shutdown]. *)

val jobs : t -> int
val registry : t -> Registry.t

val tick : t -> Scheduler.tick_report
(** One parallel scheduling round: rebalance shards, serve them
    concurrently, barrier, account.  Per-session semantics are those
    of {!Scheduler.serve}; the report's [errors] are ordered by shard,
    not chronologically across sessions.  Must be called from the
    domain that owns the pool (offers and ticks are coordinator-side;
    only {!update} may come from another domain). *)

val drain : ?max_ticks:int -> t -> (int, string) result
(** Tick until no events are pending; total processed. *)

val update :
  ?typecheck:Broadcast.typecheck_mode ->
  t ->
  Live_core.Program.t ->
  (Broadcast.report, Live_core.Machine.error) result
(** The fleet-wide UPDATE as a stop-the-world transaction: waits for
    any in-flight tick to quiesce, then runs {!Broadcast.update}
    (typechecked once — incrementally by default, see
    {!Broadcast.typecheck_mode} — applied to every session,
    all-or-nothing on rejection).  Safe to call from any domain — this
    is how a live programming environment lands an edit against a
    running fleet. *)

val exclusive : t -> (unit -> 'a) -> 'a
(** Run [f] under the same stop-the-world discipline as {!update}:
    the world lock is held (no tick can start), an in-flight tick
    would be counted as a barrier violation, and the updating flag is
    set for the duration.  This is how {!Rollout} stages (begin /
    canary / promote / rollback) run against a parallel fleet — each
    stage mutates fleet-shared structures (epoch table, session pins,
    checkpoints) that must not race a serving worker. *)

val snapshot : t -> Host_metrics.snapshot
(** Fleet totals: the registry's ingress-side instance merged with
    every per-domain instance ({!Registry.snapshot_merged}).  The
    accounting identity [in = processed + dropped + rejected +
    pending] holds exactly at every quiescent point; tick latency
    quantiles are over per-shard service times. *)

val domain_metrics : t -> Host_metrics.t array
(** The per-domain instances (index 0 = the coordinator's shard) —
    exposed for tests and the load driver's per-domain breakdown. *)

val barrier_violations : t -> int
(** Times a worker observed a broadcast in flight while serving, or a
    broadcast observed an unquiesced tick.  Always 0 unless the world
    lock is broken; the barrier stress test asserts this. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  The registry
    remains usable (e.g. by a sequential {!Scheduler}). *)
