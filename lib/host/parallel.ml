(** Domain-parallel fleet execution (see the interface for the
    soundness, determinism and barrier arguments). *)

module Machine = Live_core.Machine

(** One shard: a worker domain's slice of the fleet for the current
    tick, its lifetime metrics, and the tick's deltas the coordinator
    folds into the report after the barrier.

    Ownership discipline: [assigned] and the [d_*] deltas are written
    by the coordinator during assignment (workers quiescent) and by
    the owning worker during processing (coordinator blocked on the
    barrier); [metrics] is written only by the owning worker and read
    by the coordinator only between ticks.  Every hand-off crosses the
    pool mutex, which gives the necessary happens-before edges. *)
type shard = {
  metrics : Host_metrics.t;  (** per-domain lifetime totals *)
  mutable assigned : Registry.id list;  (** this tick's sessions *)
  mutable d_processed : int;
  mutable d_taps_hit : int;
  mutable d_taps_missed : int;
  mutable d_served : int;
  mutable d_errors : (Registry.id * Machine.error) list;
}

let fresh_shard () =
  {
    metrics = Host_metrics.create ();
    assigned = [];
    d_processed = 0;
    d_taps_hit = 0;
    d_taps_missed = 0;
    d_served = 0;
    d_errors = [];
  }

type t = {
  reg : Registry.t;
  jobs : int;
  batch : int;
  clock : unit -> float;
  shards : shard array;  (** length [jobs]; index 0 = coordinator *)
  mutable workers : unit Domain.t list;  (** the [jobs - 1] spawned domains *)
  lock : Mutex.t;  (** guards [epoch], [unfinished], [stopping] *)
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable epoch : int;  (** bumped once per tick to release workers *)
  mutable unfinished : int;  (** workers still serving this epoch *)
  mutable stopping : bool;
  world : Mutex.t;
      (** the stop-the-world lock: held for the whole of every tick
          and for the whole of every broadcast, so the two can never
          overlap — the broadcast barrier *)
  ticking : bool Atomic.t;  (** a tick's shards are (possibly) in flight *)
  updating : bool Atomic.t;  (** a broadcast is being applied *)
  violations : int Atomic.t;  (** served-while-updating sightings *)
  mutable shut : bool;
}

(* ------------------------------------------------------------------ *)
(* Shard service (runs on the owning domain)                           *)
(* ------------------------------------------------------------------ *)

let process_shard (t : t) (sh : shard) : unit =
  match sh.assigned with
  | [] -> ()
  | ids ->
      let t0 = t.clock () in
      List.iter
        (fun id ->
          (* the barrier property, checked from the worker side: a
             broadcast must never be in flight while a session is
             being served *)
          if Atomic.get t.updating then
            ignore (Atomic.fetch_and_add t.violations 1);
          let sv = Scheduler.serve t.reg ~batch:t.batch id in
          sh.d_processed <- sh.d_processed + sv.Scheduler.sv_processed;
          sh.d_taps_hit <- sh.d_taps_hit + sv.Scheduler.sv_taps_hit;
          sh.d_taps_missed <- sh.d_taps_missed + sv.Scheduler.sv_taps_missed;
          if sv.Scheduler.sv_painted then sh.d_served <- sh.d_served + 1;
          sh.d_errors <-
            List.rev_append sv.Scheduler.sv_errors sh.d_errors)
        ids;
      let dt_ns = (t.clock () -. t0) *. 1e9 in
      (* lifetime per-domain accounting; merged into fleet totals by
         {!snapshot} *)
      let m = sh.metrics in
      m.Host_metrics.events_processed <-
        m.Host_metrics.events_processed + sh.d_processed;
      m.Host_metrics.taps_hit <- m.Host_metrics.taps_hit + sh.d_taps_hit;
      m.Host_metrics.taps_missed <-
        m.Host_metrics.taps_missed + sh.d_taps_missed;
      m.Host_metrics.repaints <- m.Host_metrics.repaints + sh.d_served;
      m.Host_metrics.coalesced_renders <-
        m.Host_metrics.coalesced_renders + (sh.d_processed - sh.d_served);
      Host_metrics.record m.Host_metrics.tick_latency dt_ns

let worker_loop (t : t) (i : int) : unit =
  let sh = t.shards.(i) in
  let my_epoch = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    while (not t.stopping) && t.epoch = !my_epoch do
      Condition.wait t.work_ready t.lock
    done;
    if t.stopping then begin
      Mutex.unlock t.lock;
      running := false
    end
    else begin
      my_epoch := t.epoch;
      Mutex.unlock t.lock;
      process_shard t sh;
      Mutex.lock t.lock;
      t.unfinished <- t.unfinished - 1;
      if t.unfinished = 0 then Condition.signal t.work_done;
      Mutex.unlock t.lock
    end
  done

(* ------------------------------------------------------------------ *)
(* Pool lifecycle                                                      *)
(* ------------------------------------------------------------------ *)

let create ?jobs:(j = Domain.recommended_domain_count ())
    ?(batch = 8) ?(clock = Unix.gettimeofday) (reg : Registry.t) : t =
  let jobs = max 1 (min 64 j) in
  let t =
    {
      reg;
      jobs;
      batch = max 1 batch;
      clock;
      shards = Array.init jobs (fun _ -> fresh_shard ());
      workers = [];
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      epoch = 0;
      unfinished = 0;
      stopping = false;
      world = Mutex.create ();
      ticking = Atomic.make false;
      updating = Atomic.make false;
      violations = Atomic.make 0;
      shut = false;
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker_loop t (k + 1)));
  t

let shutdown (t : t) : unit =
  if not t.shut then begin
    t.shut <- true;
    Mutex.lock t.lock;
    t.stopping <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?jobs ?batch reg f =
  let t = create ?jobs ?batch reg in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let jobs (t : t) = t.jobs
let registry (t : t) = t.reg
let barrier_violations (t : t) = Atomic.get t.violations
let domain_metrics (t : t) = Array.map (fun sh -> sh.metrics) t.shards

(* ------------------------------------------------------------------ *)
(* The tick                                                            *)
(* ------------------------------------------------------------------ *)

(** Deterministic hottest-first LPT partition: runnable sessions
    sorted by this tick's work (descending, ties by id) and dealt
    greedily to the least-loaded shard (ties to the lowest index).
    Deterministic because every input — pending depths, the id order —
    is; so for a seeded trace the shard a session lands on is a pure
    function of the trace, and so (more importantly) is the event
    sequence each {e session} sees, whatever domain serves it. *)
let assign (t : t) : unit =
  Array.iter
    (fun sh ->
      sh.assigned <- [];
      sh.d_processed <- 0;
      sh.d_taps_hit <- 0;
      sh.d_taps_missed <- 0;
      sh.d_served <- 0;
      sh.d_errors <- [])
    t.shards;
  let work =
    List.filter_map
      (fun id ->
        let p = Registry.pending t.reg id in
        if p = 0 then None else Some (id, min p t.batch))
      (Registry.ids t.reg)
  in
  let work =
    List.stable_sort
      (fun (a, wa) (b, wb) ->
        match compare wb wa with 0 -> compare a b | c -> c)
      work
  in
  let load = Array.make t.jobs 0 in
  List.iter
    (fun (id, w) ->
      let best = ref 0 in
      for j = 1 to t.jobs - 1 do
        if load.(j) < load.(!best) then best := j
      done;
      load.(!best) <- load.(!best) + w;
      t.shards.(!best).assigned <- id :: t.shards.(!best).assigned)
    work;
  (* keep hottest-first order within each shard *)
  Array.iter (fun sh -> sh.assigned <- List.rev sh.assigned) t.shards

let tick (t : t) : Scheduler.tick_report =
  if t.shut then invalid_arg "Parallel.tick: pool is shut down";
  Mutex.lock t.world;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set t.ticking false;
      Mutex.unlock t.world)
    (fun () ->
      Atomic.set t.ticking true;
      let t0 = t.clock () in
      assign t;
      (* release the workers on shards 1.., serve shard 0 here *)
      Mutex.lock t.lock;
      t.epoch <- t.epoch + 1;
      t.unfinished <- t.jobs - 1;
      if t.jobs > 1 then Condition.broadcast t.work_ready;
      Mutex.unlock t.lock;
      process_shard t t.shards.(0);
      Mutex.lock t.lock;
      while t.unfinished > 0 do
        Condition.wait t.work_done t.lock
      done;
      Mutex.unlock t.lock;
      (* every shard has quiesced: fold the tick together *)
      let latency_ns = (t.clock () -. t0) *. 1e9 in
      let m = Registry.metrics t.reg in
      m.Host_metrics.ticks <- m.Host_metrics.ticks + 1;
      let processed = ref 0 in
      let served = ref 0 in
      let taps_hit = ref 0 in
      let taps_missed = ref 0 in
      let errors = ref [] in
      Array.iter
        (fun sh ->
          processed := !processed + sh.d_processed;
          served := !served + sh.d_served;
          taps_hit := !taps_hit + sh.d_taps_hit;
          taps_missed := !taps_missed + sh.d_taps_missed;
          errors := !errors @ List.rev sh.d_errors)
        t.shards;
      {
        Scheduler.processed = !processed;
        sessions_served = !served;
        repaints = !served;
        coalesced = !processed - !served;
        taps_hit = !taps_hit;
        taps_missed = !taps_missed;
        errors = !errors;
        latency_ns;
      })

let drain ?(max_ticks = 1_000_000) (t : t) : (int, string) result =
  let rec go k total =
    if Registry.total_pending t.reg = 0 then Ok total
    else if k <= 0 then
      Error
        (Printf.sprintf "drain: %d events still pending after %d ticks"
           (Registry.total_pending t.reg) max_ticks)
    else
      let r = tick t in
      if r.Scheduler.processed = 0 && Registry.total_pending t.reg > 0 then
        Error "drain: pending events but a tick processed nothing"
      else go (k - 1) (total + r.Scheduler.processed)
  in
  go max_ticks 0

(* ------------------------------------------------------------------ *)
(* The broadcast barrier                                               *)
(* ------------------------------------------------------------------ *)

let update ?typecheck (t : t) (code : Live_core.Program.t) :
    (Broadcast.report, Machine.error) result =
  Mutex.lock t.world;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set t.updating false;
      Mutex.unlock t.world)
    (fun () ->
      (* holding [world] means no tick is in flight; if one somehow
         were, both sides would count it *)
      if Atomic.get t.ticking then
        ignore (Atomic.fetch_and_add t.violations 1);
      Atomic.set t.updating true;
      Broadcast.update ?typecheck t.reg code)

let exclusive (t : t) (f : unit -> 'a) : 'a =
  Mutex.lock t.world;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set t.updating false;
      Mutex.unlock t.world)
    (fun () ->
      if Atomic.get t.ticking then
        ignore (Atomic.fetch_and_add t.violations 1);
      Atomic.set t.updating true;
      f ())

(* ------------------------------------------------------------------ *)
(* Fleet totals                                                        *)
(* ------------------------------------------------------------------ *)

let snapshot (t : t) : Host_metrics.snapshot =
  Registry.snapshot_merged t.reg
    ~extra:(Array.to_list (domain_metrics t))
