(** The session fleet (see the interface).  Sessions live in a hash
    table keyed by dense ids; spawn order is kept separately because
    the scheduler's round-robin ring and the broadcast fan-out must
    both be deterministic. *)

module Session = Live_runtime.Session
module Machine = Live_core.Machine

type id = int

type uevent = Tap of { x : int; y : int } | Back

let pp_uevent ppf = function
  | Tap { x; y } -> Fmt.pf ppf "tap(%d,%d)" x y
  | Back -> Fmt.string ppf "back"

type config = {
  width : int;
  fuel : int option;
  incremental : bool;
  cache : bool;
  evaluator : Machine.evaluator;
      (** expression engine for every session; [Compiled] shares one
          compilation fleet-wide (see {!Live_core.Compile_eval}) *)
  queue_capacity : int;
  queue_policy : Backpressure.policy;
  admission_limit : int option;
}

let default_config =
  {
    width = 48;
    fuel = None;
    incremental = false;
    cache = false;
    evaluator = Machine.Compiled;
    queue_capacity = 64;
    queue_policy = Backpressure.Drop_oldest;
    admission_limit = None;
  }

type entry = {
  session : Session.t;
  ingress : uevent Backpressure.t;
  (* per-session ingress ledger, for cohort-level accounting during
     staged rollouts: e_in = e_taken + e_dropped + e_rejected + queued *)
  mutable e_in : int;
  mutable e_taken : int;
  mutable e_dropped : int;
  mutable e_rejected : int;
}

type t = {
  cfg : config;
  mutable program : Live_core.Program.t;
  mutable program_checked : bool;
      (** whether [program] is known to satisfy [C |- C] — true once a
          broadcast's typecheck accepted it; the boot program is not
          checked ({!Live_core.Machine.boot} does not run
          {!Live_core.Machine.check_program}), so this starts false and
          incremental typechecking falls back to scratch on the first
          broadcast. *)
  entries : (id, entry) Hashtbl.t;
  mutable order : id list;  (** spawn order, oldest first *)
  mutable next_id : id;
  mutable epoch : int;
      (** id of the installed code epoch; bumped by every
          [set_program] and every promoted rollout *)
  mutable epochs : (int * Live_core.Program.t) list;
      (** live epochs, newest first.  One entry in steady state; two
          while a rollout is open (target, then base). *)
  mutable rollout_open : bool;
  pending_total : int Atomic.t;
      (** cached sum of ingress lengths.  Atomic because it is the one
          counter genuinely shared across domains: the coordinator
          increments it on [offer] while the parallel host's worker
          domains decrement it through [take].  Everything else in the
          registry is either written only between ticks (entries,
          order, program, the ingress-side metrics) or owned by one
          domain per tick (each session and its queue). *)
  metrics : Host_metrics.t;
}

let create ?(config = default_config) (program : Live_core.Program.t) : t =
  {
    cfg = config;
    program;
    program_checked = false;
    entries = Hashtbl.create 64;
    order = [];
    next_id = 0;
    epoch = 0;
    epochs = [ (0, program) ];
    rollout_open = false;
    pending_total = Atomic.make 0;
    metrics = Host_metrics.create ();
  }

let spawn (t : t) : (id, Machine.error) result =
  match
    Session.create ~width:t.cfg.width ?fuel:t.cfg.fuel
      ~incremental:t.cfg.incremental ~cache:t.cfg.cache
      ~evaluator:t.cfg.evaluator t.program
  with
  | Error e -> Error e
  | Ok session ->
      let id = t.next_id in
      t.next_id <- id + 1;
      Session.set_epoch session t.epoch;
      Hashtbl.replace t.entries id
        {
          session;
          ingress =
            Backpressure.create ~capacity:t.cfg.queue_capacity
              ~policy:t.cfg.queue_policy;
          e_in = 0;
          e_taken = 0;
          e_dropped = 0;
          e_rejected = 0;
        };
      t.order <- t.order @ [ id ];
      t.metrics.Host_metrics.sessions_spawned <-
        t.metrics.Host_metrics.sessions_spawned + 1;
      Ok id

let adopt (t : t) (session : Session.t) : id =
  if t.rollout_open then
    invalid_arg "Registry.adopt: a staged rollout is open";
  let id = t.next_id in
  t.next_id <- id + 1;
  Session.set_epoch session t.epoch;
  Hashtbl.replace t.entries id
    {
      session;
      ingress =
        Backpressure.create ~capacity:t.cfg.queue_capacity
          ~policy:t.cfg.queue_policy;
      e_in = 0;
      e_taken = 0;
      e_dropped = 0;
      e_rejected = 0;
    };
  t.order <- t.order @ [ id ];
  t.metrics.Host_metrics.sessions_spawned <-
    t.metrics.Host_metrics.sessions_spawned + 1;
  id

let spawn_many (t : t) (n : int) : (id list, Machine.error) result =
  let rec go k acc =
    if k <= 0 then Ok (List.rev acc)
    else match spawn t with Error e -> Error e | Ok id -> go (k - 1) (id :: acc)
  in
  go n []

let kill (t : t) (id : id) : bool =
  match Hashtbl.find_opt t.entries id with
  | None -> false
  | Some e ->
      let orphaned = Backpressure.clear e.ingress in
      ignore (Atomic.fetch_and_add t.pending_total (-orphaned));
      t.metrics.Host_metrics.events_dropped <-
        t.metrics.Host_metrics.events_dropped + orphaned;
      t.metrics.Host_metrics.sessions_killed <-
        t.metrics.Host_metrics.sessions_killed + 1;
      Hashtbl.remove t.entries id;
      t.order <- List.filter (fun i -> i <> id) t.order;
      true

let session (t : t) (id : id) : Session.t option =
  Option.map (fun e -> e.session) (Hashtbl.find_opt t.entries id)

let ids (t : t) : id list = t.order
let size (t : t) : int = Hashtbl.length t.entries
let program (t : t) = t.program
let program_checked (t : t) = t.program_checked
let config (t : t) = t.cfg
let metrics (t : t) = t.metrics

let repin_all (t : t) (epoch : int) : unit =
  Hashtbl.iter (fun _ e -> Session.set_epoch e.session epoch) t.entries

let set_program (t : t) (p : Live_core.Program.t) =
  if t.rollout_open then
    invalid_arg "Registry.set_program: a staged rollout is open";
  t.program <- p;
  t.program_checked <- true;
  t.epoch <- t.epoch + 1;
  t.epochs <- [ (t.epoch, p) ];
  repin_all t t.epoch

(* ------------------------------------------------------------------ *)
(* Code epochs (staged rollouts)                                       *)
(* ------------------------------------------------------------------ *)

let current_epoch (t : t) : int = t.epoch
let rollout_open (t : t) : bool = t.rollout_open
let live_epochs (t : t) : (int * Live_core.Program.t) list = t.epochs

let epoch_program (t : t) (e : int) : Live_core.Program.t option =
  List.assoc_opt e t.epochs

let session_epoch (t : t) (id : id) : int option =
  Option.map (fun e -> Session.epoch e.session) (Hashtbl.find_opt t.entries id)

let pin_session (t : t) (id : id) (epoch : int) : unit =
  match Hashtbl.find_opt t.entries id with
  | None -> ()
  | Some e ->
      if not (List.mem_assoc epoch t.epochs) then
        invalid_arg "Registry.pin_session: epoch not live";
      Session.set_epoch e.session epoch

(** Open a rollout: register [target] as a second live epoch.  The
    installed program, [current_epoch] and every session pin are
    untouched — cohort migration is {!Live_host.Rollout}'s job. *)
let open_rollout (t : t) (target : Live_core.Program.t) : int =
  if t.rollout_open then
    invalid_arg "Registry.open_rollout: a rollout is already open";
  let e = t.epoch + 1 in
  t.epochs <- (e, target) :: t.epochs;
  t.rollout_open <- true;
  e

(** Close the open rollout by installing its target epoch fleet-wide:
    the target becomes the program new sessions boot (typechecked by
    the rollout's begin stage), the base epoch is retired, and every
    session is pinned to the new epoch — the caller has already
    migrated their states. *)
let promote_rollout (t : t) : unit =
  if not t.rollout_open then
    invalid_arg "Registry.promote_rollout: no rollout open";
  match t.epochs with
  | (e, target) :: _ ->
      t.program <- target;
      t.program_checked <- true;
      t.epoch <- e;
      t.epochs <- [ (e, target) ];
      t.rollout_open <- false;
      repin_all t e
  | [] -> assert false

(** Close the open rollout by retiring its target epoch: the base
    epoch stays installed and every session is pinned back to it — the
    caller has already rewound the canaries. *)
let rollback_rollout (t : t) : unit =
  if not t.rollout_open then
    invalid_arg "Registry.rollback_rollout: no rollout open";
  t.epochs <- [ (t.epoch, t.program) ];
  t.rollout_open <- false;
  repin_all t t.epoch

(** Epoch consistency, fleet-wide: every session's pin names a live
    epoch, and its state's code is physically that epoch's program —
    "interleaved traffic never crosses epochs" is checkable at any
    quiescent point. *)
let check_epochs (t : t) : (id * string) list =
  List.filter_map
    (fun id ->
      match Hashtbl.find_opt t.entries id with
      | None -> None
      | Some e -> (
          let pin = Session.epoch e.session in
          match List.assoc_opt pin t.epochs with
          | None -> Some (id, Printf.sprintf "pinned to dead epoch %d" pin)
          | Some prog ->
              if (Session.state e.session).Live_core.State.code == prog then
                None
              else
                Some
                  ( id,
                    Printf.sprintf "code is not epoch %d's program" pin )))
    t.order

(* ------------------------------------------------------------------ *)
(* Ingress                                                             *)
(* ------------------------------------------------------------------ *)

let offer (t : t) (id : id) (ev : uevent) : Backpressure.outcome =
  let m = t.metrics in
  m.Host_metrics.events_in <- m.Host_metrics.events_in + 1;
  let admission_full =
    match t.cfg.admission_limit with
    | Some limit -> Atomic.get t.pending_total >= limit
    | None -> false
  in
  match Hashtbl.find_opt t.entries id with
  | None ->
      m.Host_metrics.events_rejected <- m.Host_metrics.events_rejected + 1;
      Backpressure.Rejected
  | Some e when admission_full ->
      e.e_in <- e.e_in + 1;
      e.e_rejected <- e.e_rejected + 1;
      m.Host_metrics.events_rejected <- m.Host_metrics.events_rejected + 1;
      Backpressure.Rejected
  | Some e -> (
      e.e_in <- e.e_in + 1;
      match Backpressure.offer e.ingress ev with
      | Backpressure.Accepted ->
          ignore (Atomic.fetch_and_add t.pending_total 1);
          Backpressure.Accepted
      | Backpressure.Dropped_oldest ->
          (* one in, one out: total pending unchanged *)
          e.e_dropped <- e.e_dropped + 1;
          m.Host_metrics.events_dropped <- m.Host_metrics.events_dropped + 1;
          Backpressure.Dropped_oldest
      | Backpressure.Rejected ->
          e.e_rejected <- e.e_rejected + 1;
          m.Host_metrics.events_rejected <- m.Host_metrics.events_rejected + 1;
          Backpressure.Rejected)

let pending (t : t) (id : id) : int =
  match Hashtbl.find_opt t.entries id with
  | None -> 0
  | Some e -> Backpressure.length e.ingress

let total_pending (t : t) : int = Atomic.get t.pending_total

let take (t : t) (id : id) : uevent option =
  match Hashtbl.find_opt t.entries id with
  | None -> None
  | Some e -> (
      match Backpressure.take e.ingress with
      | None -> None
      | Some ev ->
          e.e_taken <- e.e_taken + 1;
          ignore (Atomic.fetch_and_add t.pending_total (-1));
          Some ev)

(* ------------------------------------------------------------------ *)
(* Invariants and snapshots                                            *)
(* ------------------------------------------------------------------ *)

(** The oracle's structural invariants, fleet-wide: every session's
    state types under Fig. 11, is stable, and shows a valid display.
    The host adds nothing a single session would not already promise —
    which is exactly the point: render-effect isolation means fleet
    membership cannot corrupt a session. *)
let check_invariants (t : t) : (id * string) list =
  List.filter_map
    (fun id ->
      match Hashtbl.find_opt t.entries id with
      | None -> None
      | Some e -> (
          let st = Session.state e.session in
          match Live_core.State_typing.check_state st with
          | Error m -> Some (id, "ill-typed state: " ^ m)
          | Ok () ->
              if not (Live_core.State.is_stable st) then
                Some (id, "state not stable")
              else if not (Live_core.State.display_valid st) then
                Some (id, "display invalid")
              else None))
    t.order

let cache_totals (t : t) : (int * int) option =
  List.fold_left
    (fun acc id ->
      match Hashtbl.find_opt t.entries id with
      | None -> acc
      | Some e -> (
          match Session.render_cache_stats e.session with
          | None -> acc
          | Some s ->
              let h, m = Option.value acc ~default:(0, 0) in
              Some
                ( h + s.Live_core.Render_cache.hits,
                  m + s.Live_core.Render_cache.misses )))
    None t.order

let snapshot_merged (t : t) ~(extra : Host_metrics.t list) :
    Host_metrics.snapshot =
  let cache = cache_totals t in
  let m =
    match extra with
    | [] -> t.metrics
    | _ -> Host_metrics.merge_all (t.metrics :: extra)
  in
  Host_metrics.snapshot m ~sessions:(size t)
    ~pending:(Atomic.get t.pending_total) ~cache

let snapshot (t : t) : Host_metrics.snapshot = snapshot_merged t ~extra:[]

let export_metrics (t : t) : string =
  Host_metrics.export t.metrics ~sessions:(size t)
    ~pending:(Atomic.get t.pending_total) ~cache:(cache_totals t)

(** Canonical digest of the fleet's observable state — every session's
    store (sorted), page stack and painted pixels, in id order, hashed
    with MD5.  Two fleets that processed the same per-session event
    sequences digest identically whatever the cross-session
    interleaving was; this is the determinism contract the parallel
    host is held to ([host_bench --digest], bench B11, and the
    equivalence properties in [test/test_parallel.ml]). *)
let observe_session (s : Session.t) : string =
  let st = Session.state s in
  let store =
    Live_core.Store.bindings st.Live_core.State.store
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (g, v) ->
           Printf.sprintf "%s = %s" g (Live_core.Pretty.value_to_string v))
    |> String.concat "\n"
  in
  let stack =
    st.Live_core.State.stack
    |> List.map (fun (p, v) ->
           Printf.sprintf "%s(%s)" p (Live_core.Pretty.value_to_string v))
    |> String.concat " ; "
  in
  store ^ "\n--\n" ^ stack ^ "\n--\n" ^ Session.screenshot s

let digest (t : t) : string =
  let b = Buffer.create 4096 in
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.entries id with
      | None -> ()
      | Some e ->
          Buffer.add_string b (Printf.sprintf "== session %d ==\n" id);
          Buffer.add_string b (observe_session e.session))
    t.order;
  Digest.to_hex (Digest.string (Buffer.contents b))

(** {!digest} restricted to a cohort.  Iterates [t.order] (not the
    argument), so the same sessions always digest in the same order
    whatever order the cohort list is in. *)
let digest_cohort (t : t) (cohort : id list) : string =
  let member = Hashtbl.create (List.length cohort * 2) in
  List.iter (fun id -> Hashtbl.replace member id ()) cohort;
  let b = Buffer.create 4096 in
  List.iter
    (fun id ->
      if Hashtbl.mem member id then
        match Hashtbl.find_opt t.entries id with
        | None -> ()
        | Some e ->
            Buffer.add_string b (Printf.sprintf "== session %d ==\n" id);
            Buffer.add_string b (observe_session e.session))
    t.order;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* Cohort accounting                                                   *)
(* ------------------------------------------------------------------ *)

type cohort_accounting = {
  ca_in : int;
  ca_taken : int;
  ca_dropped : int;
  ca_rejected : int;
  ca_pending : int;
}

let cohort_accounting (t : t) (cohort : id list) : cohort_accounting =
  List.fold_left
    (fun acc id ->
      match Hashtbl.find_opt t.entries id with
      | None -> acc
      | Some e ->
          {
            ca_in = acc.ca_in + e.e_in;
            ca_taken = acc.ca_taken + e.e_taken;
            ca_dropped = acc.ca_dropped + e.e_dropped;
            ca_rejected = acc.ca_rejected + e.e_rejected;
            ca_pending = acc.ca_pending + Backpressure.length e.ingress;
          })
    { ca_in = 0; ca_taken = 0; ca_dropped = 0; ca_rejected = 0; ca_pending = 0 }
    (List.sort_uniq compare cohort)

let cohort_accounting_ok (a : cohort_accounting) : bool =
  a.ca_in = a.ca_taken + a.ca_dropped + a.ca_rejected + a.ca_pending
