(** Fleet-wide UPDATE: one code edit applied as one transaction across
    every live session.

    The paper's key move is that a code update is just another
    transition (UPDATE, Fig. 9), so swapping the program under a
    running session is always safe; the host lifts that to a fleet.
    The edit is typechecked {b once} ({!Live_core.Machine.check_program}
    — [C' |- C'] plus the start-page condition); on failure {e no}
    session is touched (all-or-nothing).  On success every session
    runs the UPDATE transition against the already-checked code
    ([update ~checked:true]): its store and page stack are fixed up
    per Fig. 12, its display is invalidated and re-rendered, and the
    per-session fix-up report ("your edit reset global xs") is
    collected into the fan-out report. *)

type session_outcome = {
  id : Registry.id;
  outcome : (Live_core.Fixup.report, Live_core.Machine.error) result;
      (** per-session UPDATE result; errors here are runtime (fuel,
          stuck user code) — the typecheck can no longer fail *)
}

type report = {
  outcomes : session_outcome list;  (** in spawn order *)
  fanout_ns : float;  (** wall-clock time to update the whole fleet *)
  dropped_globals : int;  (** total across sessions *)
  dropped_pages : int;
}

val update :
  ?clock:(unit -> float) ->
  Registry.t ->
  Live_core.Program.t ->
  (report, Live_core.Machine.error) result
(** Apply the edit to the whole fleet.  [Error] means the new code
    failed its typecheck and {e every} session is untouched (the
    registry's shared program is unchanged too).  [clock] is in
    seconds ([Unix.gettimeofday] by default); the measured fan-out
    also lands in the registry's {!Host_metrics}. *)

val report_to_string : report -> string
(** One line per session that lost state, plus the fan-out total. *)
