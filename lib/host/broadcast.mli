(** Fleet-wide UPDATE: one code edit applied as one transaction across
    every live session.

    The paper's key move is that a code update is just another
    transition (UPDATE, Fig. 9), so swapping the program under a
    running session is always safe; the host lifts that to a fleet.
    The edit is typechecked {b once} ([C' |- C'] plus the start-page
    condition); on failure {e no} session is touched (all-or-nothing).
    On success every session runs the UPDATE transition against the
    already-checked code ([update ~checked:true]): its store and page
    stack are fixed up per Fig. 12, its display is invalidated and
    re-rendered, and the per-session fix-up report ("your edit reset
    global xs") is collected into the fan-out report.

    The whole pipeline is O(edit), not O(program × fleet): the edit is
    {e diffed} against the current program ({!Live_core.Program_diff}),
    the typecheck re-derives only the recheck set
    ({!Live_core.Machine.check_program_incremental}), the shared
    compilation reuses every transitively-clean definition
    ({!Live_core.Compile_eval.get_incremental}), and each session's
    fix-up and render-cache invalidation are scoped to the dirty set
    (the [?diff] path of {!Live_runtime.Session.update}).  All of it is
    observationally transparent — the conformance oracle's
    ["host-incr"] configuration and the [Cross_check] mode below
    enforce agreement with the from-scratch pipeline. *)

type session_outcome = {
  id : Registry.id;
  outcome : (Live_core.Fixup.report, Live_core.Machine.error) result;
      (** per-session UPDATE result; errors here are runtime (fuel,
          stuck user code) — the typecheck can no longer fail *)
}

(** How the UPDATE premise [C' |- C'] is discharged. *)
type typecheck_mode =
  | Scratch  (** the Fig. 11 checker over the whole program *)
  | Incremental
      (** re-derive only the diff's recheck set — requires the old
          program to be known-good ({!Registry.program_checked});
          falls back to [Scratch] otherwise (e.g. the first broadcast
          after boot).  The default. *)
  | Cross_check
      (** run {e both} and require bit-identical verdicts (same
          accept/reject, same first error); a disagreement rejects the
          broadcast with a distinctive [Ill_typed "typecheck
          divergence: ..."] — the conformance fuzzer runs every
          generated [Mutate] edit through this mode, so a divergence
          surfaces as a shrinkable counterexample *)

type report = {
  outcomes : session_outcome list;  (** in spawn order *)
  fanout_ns : float;  (** wall-clock time to update the whole fleet *)
  typecheck_ns : float;  (** the typecheck phase (whichever mode ran) *)
  diff_ns : float;  (** computing the program diff *)
  compile_ns : float;  (** priming the shared compilation *)
  dirty_defs : int;  (** semantic dirty-set size (scoped invalidation) *)
  recheck_defs : int;  (** typecheck recheck-set size *)
  incremental : bool;
      (** whether the accepted broadcast actually reused derivations
          (false under [Scratch], under fallback, and on the boot
          program) *)
  dropped_globals : int;  (** total across sessions *)
  dropped_pages : int;
}

val run_typecheck :
  typecheck_mode ->
  old_checked:bool ->
  diff:Live_core.Program_diff.t ->
  Live_core.Program.t ->
  (unit, Live_core.Machine.error) result * bool
(** The typecheck phase alone: discharge [C' |- C'] for the diff's new
    program in the given mode.  Returns the verdict plus whether the
    incremental premise held (the diff may be handed down to fan-out
    and compilation).  Exposed for {!Rollout}, which typechecks an
    edit transaction once at [begin] time and fans out later, in
    stages. *)

val update :
  ?clock:(unit -> float) ->
  ?typecheck:typecheck_mode ->
  Registry.t ->
  Live_core.Program.t ->
  (report, Live_core.Machine.error) result
(** Apply the edit to the whole fleet.  [Error] means the new code
    failed its typecheck and {e every} session is untouched (the
    registry's shared program is unchanged too).  [typecheck] defaults
    to [Incremental].  [clock] is in seconds ([Unix.gettimeofday] by
    default); the measured per-phase times land in the registry's
    {!Host_metrics} (typecheck / diff / compile last-ns, dirty and
    recheck set sizes, incremental-vs-scratch broadcast counters).
    While a staged rollout is open the broadcast refuses with
    [Not_enabled] (and counts an [updates_rejected]): resolve the
    rollout first. *)

val report_to_string : report -> string
(** One line per session that lost state, plus the fan-out total and
    the typecheck/diff/compile breakdown. *)
