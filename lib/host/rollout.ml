(** Staged rollouts of edit transactions (see the interface for the
    lifecycle and the two soundness statements). *)

module Session = Live_runtime.Session
module Machine = Live_core.Machine
module Program_diff = Live_core.Program_diff
module Compile_eval = Live_core.Compile_eval
module Prng = Live_core.Prng

type stage = Staged | Canarying | Promoted | Rolled_back

type t = {
  reg : Registry.t;
  base : Live_core.Program.t;
  target : Live_core.Program.t;
  diff : Program_diff.t;
  use_diff : bool;  (** the incremental premise held at [begin_] *)
  base_epoch : int;
  new_epoch : int;
  canary : Registry.id list;  (** ascending; fixed at [begin_] *)
  mutable checkpoints : (Registry.id * Session.checkpoint) list;
      (** newest first; non-empty exactly while [Canarying] *)
  mutable stage : stage;
}

let compose ~(base : Live_core.Program.t)
    (edits : (Live_core.Program.t -> Live_core.Program.t) list) :
    Live_core.Program.t =
  List.fold_left (fun p edit -> edit p) base edits

(** The canary cohort: [k = ceil (fraction * n)] (clamped to [1..n])
    ids drawn by a seeded partial Fisher–Yates shuffle — deterministic
    in (seed, fleet), so a shadow fleet replaying the same seeded load
    selects the same cohort. *)
let select_cohort ~(seed : int) ~(fraction : float)
    (ids : Registry.id list) : Registry.id list =
  let arr = Array.of_list ids in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let k =
      min n (max 1 (int_of_float (Float.ceil (fraction *. float_of_int n))))
    in
    let rng = Prng.create (Prng.derive seed 0) in
    for i = 0 to k - 1 do
      let j = i + Prng.int rng (n - i) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done;
    List.sort compare (Array.to_list (Array.sub arr 0 k))
  end

let begin_ ?(typecheck = Broadcast.Incremental) ?(fraction = 0.1)
    ~(seed : int) (reg : Registry.t) (target : Live_core.Program.t) :
    (t, Machine.error) result =
  if Registry.rollout_open reg then
    invalid_arg "Rollout.begin_: a rollout is already open";
  let m = Registry.metrics reg in
  let base = Registry.program reg in
  let t_check = Unix.gettimeofday () in
  let diff = Program_diff.diff ~old_prog:base target in
  let verdict, use_diff =
    Broadcast.run_typecheck typecheck
      ~old_checked:(Registry.program_checked reg)
      ~diff target
  in
  let typecheck_ns = (Unix.gettimeofday () -. t_check) *. 1e9 in
  m.Host_metrics.typecheck_last_ns <- typecheck_ns;
  m.Host_metrics.dirty_defs_last <- Program_diff.dirty_count diff;
  m.Host_metrics.recheck_defs_last <- Program_diff.recheck_count diff;
  Host_metrics.record m.Host_metrics.update_typecheck typecheck_ns;
  match verdict with
  | Error e ->
      (* all-or-nothing at transaction granularity: the change set was
         refused as a whole, no epoch opened, no session touched *)
      m.Host_metrics.updates_rejected <- m.Host_metrics.updates_rejected + 1;
      Error e
  | Ok () ->
      let base_epoch = Registry.current_epoch reg in
      let new_epoch = Registry.open_rollout reg target in
      (* both epochs' compilations must survive the whole window *)
      (if (Registry.config reg).Registry.evaluator = Machine.Compiled then begin
         Compile_eval.pin_epoch ~epoch:base_epoch base;
         if use_diff then Compile_eval.pin_epoch ~epoch:new_epoch ~diff target
         else Compile_eval.pin_epoch ~epoch:new_epoch target
       end);
      let canary = select_cohort ~seed ~fraction (Registry.ids reg) in
      m.Host_metrics.rollouts_begun <- m.Host_metrics.rollouts_begun + 1;
      m.Host_metrics.canary_sessions_last <- List.length canary;
      Ok
        {
          reg;
          base;
          target;
          diff;
          use_diff;
          base_epoch;
          new_epoch;
          canary;
          checkpoints = [];
          stage = Staged;
        }

let unpin (t : t) : unit =
  if (Registry.config t.reg).Registry.evaluator = Machine.Compiled then begin
    Compile_eval.unpin_epoch ~epoch:t.base_epoch;
    Compile_eval.unpin_epoch ~epoch:t.new_epoch
  end

(** Update one session to the target epoch, mirroring the broadcast
    fan-out exactly (same [~checked]/[?diff] path, same
    pin-regardless-of-outcome — {!Registry.set_program} re-pins
    erroring sessions too). *)
let migrate (t : t) (id : Registry.id) (s : Session.t) :
    Broadcast.session_outcome =
  let diff_opt = if t.use_diff then Some t.diff else None in
  let outcome = Session.update ~checked:true ?diff:diff_opt s t.target in
  Registry.pin_session t.reg id t.new_epoch;
  { Broadcast.id; outcome }

let canary (t : t) : Broadcast.session_outcome list =
  if t.stage <> Staged then invalid_arg "Rollout.canary: not in Staged";
  let outcomes =
    List.filter_map
      (fun id ->
        match Registry.session t.reg id with
        | None -> None (* killed since begin_ *)
        | Some s ->
            t.checkpoints <- (id, Session.checkpoint s) :: t.checkpoints;
            Some (migrate t id s))
      t.canary
  in
  t.stage <- Canarying;
  outcomes

let promote (t : t) : Broadcast.session_outcome list =
  if t.stage <> Canarying then invalid_arg "Rollout.promote: not in Canarying";
  let m = Registry.metrics t.reg in
  let is_canary = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace is_canary id ()) t.canary;
  let t0 = Unix.gettimeofday () in
  let outcomes =
    List.filter_map
      (fun id ->
        if Hashtbl.mem is_canary id then None
        else
          match Registry.session t.reg id with
          | None -> None
          | Some s -> Some (migrate t id s))
      (Registry.ids t.reg)
  in
  List.iter
    (fun (id, _) ->
      match Registry.session t.reg id with
      | Some s -> Session.commit s
      | None -> ())
    t.checkpoints;
  t.checkpoints <- [];
  Registry.promote_rollout t.reg;
  unpin t;
  let fanout_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  m.Host_metrics.updates_applied <- m.Host_metrics.updates_applied + 1;
  m.Host_metrics.fanout_last_ns <- fanout_ns;
  Host_metrics.record m.Host_metrics.update_fanout fanout_ns;
  m.Host_metrics.rollouts_promoted <- m.Host_metrics.rollouts_promoted + 1;
  t.stage <- Promoted;
  outcomes

let rollback (t : t) : (Registry.id * Machine.error) list =
  (match t.stage with
  | Staged | Canarying -> ()
  | Promoted | Rolled_back ->
      invalid_arg "Rollout.rollback: already resolved");
  let errs =
    List.concat_map
      (fun (id, cp) ->
        match Registry.session t.reg id with
        | None -> [] (* killed mid-window: nothing to rewind *)
        | Some s -> List.map (fun e -> (id, e)) (Session.rewind s cp))
      (List.rev t.checkpoints)
  in
  t.checkpoints <- [];
  Registry.rollback_rollout t.reg;
  unpin t;
  let m = Registry.metrics t.reg in
  m.Host_metrics.rollouts_rolled_back <-
    m.Host_metrics.rollouts_rolled_back + 1;
  t.stage <- Rolled_back;
  errs

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)
(* ------------------------------------------------------------------ *)

let stage (t : t) : stage = t.stage
let canary_ids (t : t) : Registry.id list = t.canary

let shadow_ids (t : t) : Registry.id list =
  let is_canary = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace is_canary id ()) t.canary;
  List.filter (fun id -> not (Hashtbl.mem is_canary id)) (Registry.ids t.reg)

let base (t : t) = t.base
let target (t : t) = t.target
let base_epoch (t : t) = t.base_epoch
let target_epoch (t : t) = t.new_epoch

type health = {
  h_stage : stage;
  canary_digest : string;
  shadow_digest : string;
  canary_accounting : Registry.cohort_accounting;
  shadow_accounting : Registry.cohort_accounting;
  accounting_ok : bool;
  epoch_violations : (Registry.id * string) list;
  invariant_violations : (Registry.id * string) list;
}

let observe (t : t) : health =
  let shadow = shadow_ids t in
  let ca = Registry.cohort_accounting t.reg t.canary in
  let sa = Registry.cohort_accounting t.reg shadow in
  {
    h_stage = t.stage;
    canary_digest = Registry.digest_cohort t.reg t.canary;
    shadow_digest = Registry.digest_cohort t.reg shadow;
    canary_accounting = ca;
    shadow_accounting = sa;
    accounting_ok =
      Registry.cohort_accounting_ok ca && Registry.cohort_accounting_ok sa;
    epoch_violations = Registry.check_epochs t.reg;
    invariant_violations = Registry.check_invariants t.reg;
  }

let healthy (h : health) : bool =
  h.accounting_ok && h.epoch_violations = [] && h.invariant_violations = []

let stage_to_string = function
  | Staged -> "staged"
  | Canarying -> "canarying"
  | Promoted -> "promoted"
  | Rolled_back -> "rolled back"

let summary (t : t) : string =
  Printf.sprintf
    "rollout %s: epoch %d -> %d, %d canaries / %d shadow; change set \
     touches [%s]%s"
    (stage_to_string t.stage) t.base_epoch t.new_epoch
    (List.length t.canary)
    (List.length (shadow_ids t))
    (String.concat "; " (Program_diff.dirty_names t.diff))
    (if t.use_diff then " (incremental)" else " (scratch)")
