(** Bounded ingress queues (see the interface for the accounting
    contract). *)

module Fqueue = Live_core.Fqueue

type policy = Drop_oldest | Reject

let policy_to_string = function
  | Drop_oldest -> "drop-oldest"
  | Reject -> "reject"

let policy_of_string = function
  | "drop-oldest" -> Some Drop_oldest
  | "reject" -> Some Reject
  | _ -> None

type 'a t = {
  cap : int;
  pol : policy;
  mutable q : 'a Fqueue.t;
  mutable len : int;  (** cached: Fqueue.length is O(n) *)
}

let create ~capacity ~policy = { cap = max 1 capacity; pol = policy; q = Fqueue.empty; len = 0 }

type outcome = Accepted | Dropped_oldest | Rejected

let offer (t : 'a t) (x : 'a) : outcome =
  if t.len < t.cap then begin
    t.q <- Fqueue.enqueue x t.q;
    t.len <- t.len + 1;
    Accepted
  end
  else
    match t.pol with
    | Reject -> Rejected
    | Drop_oldest -> (
        match Fqueue.dequeue t.q with
        | None -> assert false (* cap >= 1 and len = cap *)
        | Some (_, rest) ->
            t.q <- Fqueue.enqueue x rest;
            Dropped_oldest)

let take (t : 'a t) : 'a option =
  match Fqueue.dequeue t.q with
  | None -> None
  | Some (x, rest) ->
      t.q <- rest;
      t.len <- t.len - 1;
      Some x

let length (t : 'a t) = t.len
let is_empty (t : 'a t) = t.len = 0
let capacity (t : 'a t) = t.cap
let policy (t : 'a t) = t.pol

let clear (t : 'a t) : int =
  let n = t.len in
  t.q <- Fqueue.empty;
  t.len <- 0;
  n
