(** Bounded ingress queues for the session fleet.

    Each session owns one bounded queue of not-yet-applied user events
    (built on the persistent {!Live_core.Fqueue}, the same structure
    as the paper's event queue [Q]).  When a queue is full the
    configured policy decides who loses:

    - {!Drop_oldest}: evict the oldest pending event to admit the new
      one (a UI prefers fresh input — a stale tap on a long-gone frame
      is worth less than the latest one);
    - {!Reject}: refuse the new event and tell the producer.

    Either way the loss is {e accounted}: {!offer}'s outcome feeds the
    {!Host_metrics} counters, and the soak job checks
    [in = processed + dropped + rejected + pending] at every quiescent
    point. *)

type policy = Drop_oldest | Reject

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

type 'a t

val create : capacity:int -> policy:policy -> 'a t
(** [capacity] is clamped to at least 1. *)

type outcome =
  | Accepted  (** enqueued; the queue had room *)
  | Dropped_oldest  (** enqueued; the oldest pending event was evicted *)
  | Rejected  (** refused; the queue is unchanged *)

val offer : 'a t -> 'a -> outcome
val take : 'a t -> 'a option
(** Oldest first; [None] on an empty queue. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val capacity : 'a t -> int
val policy : 'a t -> policy

val clear : 'a t -> int
(** Discard every pending event (session kill); returns how many were
    discarded so they can be accounted as dropped. *)
