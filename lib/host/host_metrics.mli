(** Fleet-wide counters and latency histograms for the multi-session
    host: events in / dropped / rejected / processed, repaints and
    coalesced re-renders, broadcast updates, and log-bucketed
    histograms of scheduler-tick latency and broadcast fan-out time.

    A {!snapshot} is a typed immutable record (with the p50/p99
    quantiles already computed) and {!to_string} is the text dump the
    load driver prints.  The accounting identity

    {v events_in = processed + dropped + rejected + pending v}

    must hold at every quiescent point; {!accounting_ok} checks it and
    the CI soak job fails on a mismatch. *)

(** {1 Latency histograms} *)

type histogram
(** Log-scale histogram over nanoseconds (32 buckets per decade,
    13 decades — 1 ns to ~10^4 s): O(1)
    recording, quantiles approximated by the bucket's geometric centre
    (good to ~15%, plenty for p50/p99 trend lines). *)

val histogram : unit -> histogram
val record : histogram -> float -> unit
(** [record h ns] — negative values clamp to 0. *)

val hist_count : histogram -> int

val union_histogram : histogram -> histogram -> histogram
(** Bucket-wise sum (fresh histogram; the inputs keep counting).
    Quantile-safe: counts, sums and extrema add exactly, so quantiles
    of the union are as accurate as if one histogram had seen every
    sample. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1], in ns; [0.] on an empty
    histogram.  Clamped to the exact observed min/max. *)

(** {1 Live counters} *)

type t = {
  mutable events_in : int;  (** every event offered to the host *)
  mutable events_processed : int;  (** drained and applied by a tick *)
  mutable events_dropped : int;  (** evicted by drop-oldest / on kill *)
  mutable events_rejected : int;  (** refused: queue full or admission *)
  mutable taps_hit : int;
  mutable taps_missed : int;
  mutable ticks : int;
  mutable repaints : int;  (** one per served session per tick *)
  mutable coalesced_renders : int;  (** batched events minus repaints *)
  mutable updates_applied : int;
  mutable updates_rejected : int;  (** broadcasts refused by typecheck *)
  mutable sessions_spawned : int;
  mutable sessions_killed : int;
  mutable fanout_last_ns : float;  (** duration of the last broadcast *)
  mutable typecheck_last_ns : float;
      (** typecheck phase of the last broadcast (scratch or incremental) *)
  mutable diff_last_ns : float;
      (** program-diff phase of the last broadcast (0 when scratch) *)
  mutable compile_last_ns : float;
      (** compile-priming phase of the last broadcast *)
  mutable dirty_defs_last : int;
      (** semantic dirty-set size of the last diffed broadcast *)
  mutable recheck_defs_last : int;
      (** typecheck recheck-set size of the last diffed broadcast *)
  mutable broadcasts_incremental : int;
      (** broadcasts whose typecheck reused the previous derivation *)
  mutable broadcasts_scratch : int;
      (** broadcasts typechecked from scratch *)
  mutable rollouts_begun : int;  (** staged rollouts opened *)
  mutable rollouts_promoted : int;
  mutable rollouts_rolled_back : int;
  mutable canary_sessions_last : int;
      (** canary cohort size of the last begun rollout *)
  tick_latency : histogram;
  update_fanout : histogram;
  update_typecheck : histogram;
}

val create : unit -> t

val merge : t -> t -> t
(** Exact sum of two instances as a fresh instance: counters add,
    histograms union, [fanout_last_ns] keeps the non-zero side.  The
    parallel host ({!Parallel}) folds its per-domain instances into
    the registry's ingress-side instance with this; addition being
    exact, the accounting identity survives the merge. *)

val merge_all : t list -> t
(** [merge] folded over a list (empty list = zeros). *)

(** {1 Snapshots} *)

type snapshot = {
  sessions : int;
  s_events_in : int;
  s_events_processed : int;
  s_events_dropped : int;
  s_events_rejected : int;
  s_pending : int;
  s_taps_hit : int;
  s_taps_missed : int;
  s_ticks : int;
  s_repaints : int;
  s_coalesced_renders : int;
  s_updates_applied : int;
  s_updates_rejected : int;
  s_sessions_spawned : int;
  s_sessions_killed : int;
  cache_hits : int;  (** aggregated render-cache hits ([0] when off) *)
  cache_misses : int;
  cache_hit_rate : float;  (** [nan] when the cache is off / unused *)
  tick_p50_ns : float;
  tick_p99_ns : float;
  fanout_p50_ns : float;
  fanout_p99_ns : float;
  fanout_last_ns : float;
  s_typecheck_last_ns : float;
  s_diff_last_ns : float;
  s_compile_last_ns : float;
  s_typecheck_p50_ns : float;
  s_typecheck_p99_ns : float;
  s_dirty_defs_last : int;
  s_recheck_defs_last : int;
  s_broadcasts_incremental : int;
  s_broadcasts_scratch : int;
  s_rollouts_begun : int;
  s_rollouts_promoted : int;
  s_rollouts_rolled_back : int;
  s_canary_sessions_last : int;
}

val snapshot :
  t -> sessions:int -> pending:int -> cache:(int * int) option -> snapshot
(** Freeze the counters; [cache] is the fleet-aggregated render-cache
    (hits, misses), [None] when no session runs the cache. *)

val accounting_ok : snapshot -> bool
(** The dropped-event accounting identity above. *)

val to_string : snapshot -> string
(** The multi-line text dump (host_bench, the CI soak job). *)

(** {1 Machine-readable export}

    Cross-process aggregation (the shard director's [stats]): each
    shard {!export}s its raw counters and histogram buckets — {e not}
    a {!snapshot}, whose quantiles could not be recombined — and the
    director {!import}s and {!merge_exported}s them into one fleet
    snapshot whose quantiles are computed over the exact union. *)

type exported = {
  x_metrics : t;
  x_sessions : int;
  x_pending : int;
  x_cache : (int * int) option;
}

val export :
  t -> sessions:int -> pending:int -> cache:(int * int) option -> string
(** Line-based text of the raw counters, extrema and non-zero
    histogram buckets; floats as C99 hex literals so every bit pattern
    round-trips. *)

val import : string -> (exported, string) result
(** Parse {!export} text.  Total: malformed input is [Error reason].
    [export (import (export m))] is byte-identical. *)

val merge_exported : exported list -> snapshot
(** Exact fleet aggregate: {!merge_all} over the metrics, sessions /
    pending / cache totals summed, quantiles recomputed from the
    unioned histograms. *)
