(** Fleet-wide counters and latency histograms (see the interface for
    the accounting identity the soak job enforces). *)

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

(** Thirty-two buckets per decade of nanoseconds across 13 decades
    (1 ns to ~10000 s) — constant-time recording, and a quantile is
    read off the cumulative bucket walk.  Exact min/max are kept so the
    clamped quantiles never overshoot the observed range.  The
    per-decade resolution matters: at 8/decade a bucket spans 1.33×,
    which collapsed p50 and p99 to the same value whenever a fleet's
    latency spread fit one bucket (the B15 saturation bug); at
    32/decade a bucket spans 1.075×. *)
let buckets_per_decade = 32

let n_buckets = 13 * buckets_per_decade

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  buckets : int array;
}

let histogram () =
  {
    count = 0;
    sum = 0.;
    vmin = infinity;
    vmax = neg_infinity;
    buckets = Array.make n_buckets 0;
  }

let bucket_of (v : float) : int =
  if v <= 1. then 0
  else
    min (n_buckets - 1)
      (int_of_float (float_of_int buckets_per_decade *. log10 v))

let record (h : histogram) (v : float) =
  let v = if v < 0. then 0. else v in
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let hist_count (h : histogram) = h.count

(** Bucket-wise union: counts, sums and extrema add exactly, so every
    quantile of the union is computed from the same log-bucket data the
    two inputs held — merging per-domain histograms loses nothing a
    single shared histogram would have kept (quantile-safe). *)
let union_histogram (a : histogram) (b : histogram) : histogram =
  {
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    vmin = Float.min a.vmin b.vmin;
    vmax = Float.max a.vmax b.vmax;
    buckets = Array.init n_buckets (fun i -> a.buckets.(i) + b.buckets.(i));
  }

let quantile (h : histogram) (q : float) : float =
  if h.count = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = max 1 (int_of_float (Float.round (q *. float_of_int h.count))) in
    let rec walk i cum =
      if i >= n_buckets then h.vmax
      else
        let cum = cum + h.buckets.(i) in
        if cum >= rank then
          (* the bucket's geometric centre *)
          Float.pow 10.
            ((float_of_int i +. 0.5) /. float_of_int buckets_per_decade)
        else walk (i + 1) cum
    in
    Float.max h.vmin (Float.min h.vmax (walk 0 0))
  end

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

type t = {
  mutable events_in : int;
  mutable events_processed : int;
  mutable events_dropped : int;
  mutable events_rejected : int;
  mutable taps_hit : int;
  mutable taps_missed : int;
  mutable ticks : int;
  mutable repaints : int;
  mutable coalesced_renders : int;
  mutable updates_applied : int;
  mutable updates_rejected : int;
  mutable sessions_spawned : int;
  mutable sessions_killed : int;
  mutable fanout_last_ns : float;
  mutable typecheck_last_ns : float;
  mutable diff_last_ns : float;
  mutable compile_last_ns : float;
  mutable dirty_defs_last : int;
  mutable recheck_defs_last : int;
  mutable broadcasts_incremental : int;
  mutable broadcasts_scratch : int;
  mutable rollouts_begun : int;
  mutable rollouts_promoted : int;
  mutable rollouts_rolled_back : int;
  mutable canary_sessions_last : int;
  tick_latency : histogram;
  update_fanout : histogram;
  update_typecheck : histogram;
}

let create () =
  {
    events_in = 0;
    events_processed = 0;
    events_dropped = 0;
    events_rejected = 0;
    taps_hit = 0;
    taps_missed = 0;
    ticks = 0;
    repaints = 0;
    coalesced_renders = 0;
    updates_applied = 0;
    updates_rejected = 0;
    sessions_spawned = 0;
    sessions_killed = 0;
    fanout_last_ns = 0.;
    typecheck_last_ns = 0.;
    diff_last_ns = 0.;
    compile_last_ns = 0.;
    dirty_defs_last = 0;
    recheck_defs_last = 0;
    broadcasts_incremental = 0;
    broadcasts_scratch = 0;
    rollouts_begun = 0;
    rollouts_promoted = 0;
    rollouts_rolled_back = 0;
    canary_sessions_last = 0;
    tick_latency = histogram ();
    update_fanout = histogram ();
    update_typecheck = histogram ();
  }

(** Sum of two metric instances, as a fresh instance (the inputs keep
    counting).  This is how the parallel host turns its per-domain
    instances into fleet totals: every counter adds, both histograms
    union bucket-wise, and [fanout_last_ns] takes the non-zero side
    (only the coordinating instance ever records a fan-out).

    Because addition is exact, the accounting identity is preserved:
    if [in_a = processed_a + dropped_a + rejected_a + pending_a] and
    likewise for [b], the merged snapshot satisfies it with the summed
    pending — which is exactly what {!Registry}'s atomic total pending
    reports.  [test/test_parallel.ml] proves this as a unit test. *)
let merge (a : t) (b : t) : t =
  {
    events_in = a.events_in + b.events_in;
    events_processed = a.events_processed + b.events_processed;
    events_dropped = a.events_dropped + b.events_dropped;
    events_rejected = a.events_rejected + b.events_rejected;
    taps_hit = a.taps_hit + b.taps_hit;
    taps_missed = a.taps_missed + b.taps_missed;
    ticks = a.ticks + b.ticks;
    repaints = a.repaints + b.repaints;
    coalesced_renders = a.coalesced_renders + b.coalesced_renders;
    updates_applied = a.updates_applied + b.updates_applied;
    updates_rejected = a.updates_rejected + b.updates_rejected;
    sessions_spawned = a.sessions_spawned + b.sessions_spawned;
    sessions_killed = a.sessions_killed + b.sessions_killed;
    fanout_last_ns =
      (if b.fanout_last_ns <> 0. then b.fanout_last_ns else a.fanout_last_ns);
    typecheck_last_ns =
      (if b.typecheck_last_ns <> 0. then b.typecheck_last_ns
       else a.typecheck_last_ns);
    diff_last_ns =
      (if b.diff_last_ns <> 0. then b.diff_last_ns else a.diff_last_ns);
    compile_last_ns =
      (if b.compile_last_ns <> 0. then b.compile_last_ns else a.compile_last_ns);
    dirty_defs_last =
      (if b.broadcasts_incremental + b.broadcasts_scratch > 0 then
         b.dirty_defs_last
       else a.dirty_defs_last);
    recheck_defs_last =
      (if b.broadcasts_incremental + b.broadcasts_scratch > 0 then
         b.recheck_defs_last
       else a.recheck_defs_last);
    broadcasts_incremental = a.broadcasts_incremental + b.broadcasts_incremental;
    broadcasts_scratch = a.broadcasts_scratch + b.broadcasts_scratch;
    rollouts_begun = a.rollouts_begun + b.rollouts_begun;
    rollouts_promoted = a.rollouts_promoted + b.rollouts_promoted;
    rollouts_rolled_back = a.rollouts_rolled_back + b.rollouts_rolled_back;
    canary_sessions_last =
      (if b.rollouts_begun > 0 then b.canary_sessions_last
       else a.canary_sessions_last);
    tick_latency = union_histogram a.tick_latency b.tick_latency;
    update_fanout = union_histogram a.update_fanout b.update_fanout;
    update_typecheck = union_histogram a.update_typecheck b.update_typecheck;
  }

let merge_all (ms : t list) : t = List.fold_left merge (create ()) ms

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  sessions : int;
  s_events_in : int;
  s_events_processed : int;
  s_events_dropped : int;
  s_events_rejected : int;
  s_pending : int;
  s_taps_hit : int;
  s_taps_missed : int;
  s_ticks : int;
  s_repaints : int;
  s_coalesced_renders : int;
  s_updates_applied : int;
  s_updates_rejected : int;
  s_sessions_spawned : int;
  s_sessions_killed : int;
  cache_hits : int;
  cache_misses : int;
  cache_hit_rate : float;
  tick_p50_ns : float;
  tick_p99_ns : float;
  fanout_p50_ns : float;
  fanout_p99_ns : float;
  fanout_last_ns : float;
  s_typecheck_last_ns : float;
  s_diff_last_ns : float;
  s_compile_last_ns : float;
  s_typecheck_p50_ns : float;
  s_typecheck_p99_ns : float;
  s_dirty_defs_last : int;
  s_recheck_defs_last : int;
  s_broadcasts_incremental : int;
  s_broadcasts_scratch : int;
  s_rollouts_begun : int;
  s_rollouts_promoted : int;
  s_rollouts_rolled_back : int;
  s_canary_sessions_last : int;
}

let snapshot (m : t) ~(sessions : int) ~(pending : int)
    ~(cache : (int * int) option) : snapshot =
  let cache_hits, cache_misses = Option.value cache ~default:(0, 0) in
  let cache_hit_rate =
    match cache with
    | Some (h, ms) when h + ms > 0 -> float_of_int h /. float_of_int (h + ms)
    | _ -> Float.nan
  in
  {
    sessions;
    s_events_in = m.events_in;
    s_events_processed = m.events_processed;
    s_events_dropped = m.events_dropped;
    s_events_rejected = m.events_rejected;
    s_pending = pending;
    s_taps_hit = m.taps_hit;
    s_taps_missed = m.taps_missed;
    s_ticks = m.ticks;
    s_repaints = m.repaints;
    s_coalesced_renders = m.coalesced_renders;
    s_updates_applied = m.updates_applied;
    s_updates_rejected = m.updates_rejected;
    s_sessions_spawned = m.sessions_spawned;
    s_sessions_killed = m.sessions_killed;
    cache_hits;
    cache_misses;
    cache_hit_rate;
    tick_p50_ns = quantile m.tick_latency 0.5;
    tick_p99_ns = quantile m.tick_latency 0.99;
    fanout_p50_ns = quantile m.update_fanout 0.5;
    fanout_p99_ns = quantile m.update_fanout 0.99;
    fanout_last_ns = m.fanout_last_ns;
    s_typecheck_last_ns = m.typecheck_last_ns;
    s_diff_last_ns = m.diff_last_ns;
    s_compile_last_ns = m.compile_last_ns;
    s_typecheck_p50_ns = quantile m.update_typecheck 0.5;
    s_typecheck_p99_ns = quantile m.update_typecheck 0.99;
    s_dirty_defs_last = m.dirty_defs_last;
    s_recheck_defs_last = m.recheck_defs_last;
    s_broadcasts_incremental = m.broadcasts_incremental;
    s_broadcasts_scratch = m.broadcasts_scratch;
    s_rollouts_begun = m.rollouts_begun;
    s_rollouts_promoted = m.rollouts_promoted;
    s_rollouts_rolled_back = m.rollouts_rolled_back;
    s_canary_sessions_last = m.canary_sessions_last;
  }

let accounting_ok (s : snapshot) : bool =
  s.s_events_in
  = s.s_events_processed + s.s_events_dropped + s.s_events_rejected
    + s.s_pending

let pp_ns (ns : float) : string =
  if Float.is_nan ns then "n/a"
  else if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.1f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else Printf.sprintf "%.2f s" (ns /. 1e9)

(* ------------------------------------------------------------------ *)
(* Machine-readable export (cross-process aggregation)                 *)
(* ------------------------------------------------------------------ *)

type exported = {
  x_metrics : t;
  x_sessions : int;
  x_pending : int;
  x_cache : (int * int) option;
}

(* Raw counters and histogram buckets — not the snapshot — cross the
   wire, so the director can [merge_all] exactly and recompute
   quantiles over the union; precomputed per-shard quantiles could not
   be combined quantile-safely. *)
let export (m : t) ~(sessions : int) ~(pending : int)
    ~(cache : (int * int) option) : string =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "metrics 2";
  line "sessions %d" sessions;
  line "pending %d" pending;
  (match cache with
  | None -> line "cache none"
  | Some (h, ms) -> line "cache %d %d" h ms);
  line "events_in %d" m.events_in;
  line "events_processed %d" m.events_processed;
  line "events_dropped %d" m.events_dropped;
  line "events_rejected %d" m.events_rejected;
  line "taps_hit %d" m.taps_hit;
  line "taps_missed %d" m.taps_missed;
  line "ticks %d" m.ticks;
  line "repaints %d" m.repaints;
  line "coalesced_renders %d" m.coalesced_renders;
  line "updates_applied %d" m.updates_applied;
  line "updates_rejected %d" m.updates_rejected;
  line "sessions_spawned %d" m.sessions_spawned;
  line "sessions_killed %d" m.sessions_killed;
  line "fanout_last_ns %h" m.fanout_last_ns;
  line "typecheck_last_ns %h" m.typecheck_last_ns;
  line "diff_last_ns %h" m.diff_last_ns;
  line "compile_last_ns %h" m.compile_last_ns;
  line "dirty_defs_last %d" m.dirty_defs_last;
  line "recheck_defs_last %d" m.recheck_defs_last;
  line "broadcasts_incremental %d" m.broadcasts_incremental;
  line "broadcasts_scratch %d" m.broadcasts_scratch;
  line "rollouts_begun %d" m.rollouts_begun;
  line "rollouts_promoted %d" m.rollouts_promoted;
  line "rollouts_rolled_back %d" m.rollouts_rolled_back;
  line "canary_sessions_last %d" m.canary_sessions_last;
  let hist name (h : histogram) =
    Buffer.add_string b
      (Printf.sprintf "hist %s %d %h %h %h" name h.count h.sum h.vmin h.vmax);
    Array.iteri
      (fun i c ->
        if c > 0 then Buffer.add_string b (Printf.sprintf " %d:%d" i c))
      h.buckets;
    Buffer.add_char b '\n'
  in
  hist "tick_latency" m.tick_latency;
  hist "update_fanout" m.update_fanout;
  hist "update_typecheck" m.update_typecheck;
  Buffer.contents b

let import (text : string) : (exported, string) result =
  let fail m = Error m in
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  match lines with
  | "metrics 2" :: rest -> (
      let m = create () in
      let sessions = ref 0 and pending = ref 0 in
      let cache = ref None in
      let bad = ref None in
      let int_field v k =
        match int_of_string_opt v with
        | Some n -> k n
        | None -> bad := Some (Printf.sprintf "malformed integer %S" v)
      in
      let float_field v k =
        match float_of_string_opt v with
        | Some f -> k f
        | None -> bad := Some (Printf.sprintf "malformed float %S" v)
      in
      let parse_hist (h : histogram) = function
        | count :: sum :: vmin :: vmax :: buckets ->
            int_field count (fun n -> h.count <- n);
            float_field sum (fun f -> h.sum <- f);
            float_field vmin (fun f -> h.vmin <- f);
            float_field vmax (fun f -> h.vmax <- f);
            List.iter
              (fun pair ->
                match String.index_opt pair ':' with
                | Some i -> (
                    let bi = String.sub pair 0 i in
                    let bc =
                      String.sub pair (i + 1) (String.length pair - i - 1)
                    in
                    match (int_of_string_opt bi, int_of_string_opt bc) with
                    | Some bi, Some bc when bi >= 0 && bi < n_buckets ->
                        h.buckets.(bi) <- bc
                    | _ -> bad := Some (Printf.sprintf "malformed bucket %S" pair)
                    )
                | None -> bad := Some (Printf.sprintf "malformed bucket %S" pair))
              buckets
        | _ -> bad := Some "truncated histogram line"
      in
      List.iter
        (fun line ->
          match String.split_on_char ' ' line with
          | [ "sessions"; v ] -> int_field v (fun n -> sessions := n)
          | [ "pending"; v ] -> int_field v (fun n -> pending := n)
          | [ "cache"; "none" ] -> cache := None
          | [ "cache"; h; ms ] ->
              int_field h (fun hv ->
                  int_field ms (fun mv -> cache := Some (hv, mv)))
          | [ "events_in"; v ] -> int_field v (fun n -> m.events_in <- n)
          | [ "events_processed"; v ] ->
              int_field v (fun n -> m.events_processed <- n)
          | [ "events_dropped"; v ] ->
              int_field v (fun n -> m.events_dropped <- n)
          | [ "events_rejected"; v ] ->
              int_field v (fun n -> m.events_rejected <- n)
          | [ "taps_hit"; v ] -> int_field v (fun n -> m.taps_hit <- n)
          | [ "taps_missed"; v ] -> int_field v (fun n -> m.taps_missed <- n)
          | [ "ticks"; v ] -> int_field v (fun n -> m.ticks <- n)
          | [ "repaints"; v ] -> int_field v (fun n -> m.repaints <- n)
          | [ "coalesced_renders"; v ] ->
              int_field v (fun n -> m.coalesced_renders <- n)
          | [ "updates_applied"; v ] ->
              int_field v (fun n -> m.updates_applied <- n)
          | [ "updates_rejected"; v ] ->
              int_field v (fun n -> m.updates_rejected <- n)
          | [ "sessions_spawned"; v ] ->
              int_field v (fun n -> m.sessions_spawned <- n)
          | [ "sessions_killed"; v ] ->
              int_field v (fun n -> m.sessions_killed <- n)
          | [ "fanout_last_ns"; v ] ->
              float_field v (fun f -> m.fanout_last_ns <- f)
          | [ "typecheck_last_ns"; v ] ->
              float_field v (fun f -> m.typecheck_last_ns <- f)
          | [ "diff_last_ns"; v ] -> float_field v (fun f -> m.diff_last_ns <- f)
          | [ "compile_last_ns"; v ] ->
              float_field v (fun f -> m.compile_last_ns <- f)
          | [ "dirty_defs_last"; v ] ->
              int_field v (fun n -> m.dirty_defs_last <- n)
          | [ "recheck_defs_last"; v ] ->
              int_field v (fun n -> m.recheck_defs_last <- n)
          | [ "broadcasts_incremental"; v ] ->
              int_field v (fun n -> m.broadcasts_incremental <- n)
          | [ "broadcasts_scratch"; v ] ->
              int_field v (fun n -> m.broadcasts_scratch <- n)
          | [ "rollouts_begun"; v ] -> int_field v (fun n -> m.rollouts_begun <- n)
          | [ "rollouts_promoted"; v ] ->
              int_field v (fun n -> m.rollouts_promoted <- n)
          | [ "rollouts_rolled_back"; v ] ->
              int_field v (fun n -> m.rollouts_rolled_back <- n)
          | [ "canary_sessions_last"; v ] ->
              int_field v (fun n -> m.canary_sessions_last <- n)
          | "hist" :: "tick_latency" :: rest -> parse_hist m.tick_latency rest
          | "hist" :: "update_fanout" :: rest -> parse_hist m.update_fanout rest
          | "hist" :: "update_typecheck" :: rest ->
              parse_hist m.update_typecheck rest
          | _ -> bad := Some (Printf.sprintf "unknown metrics line %S" line))
        rest;
      match !bad with
      | Some m -> fail m
      | None ->
          Ok
            {
              x_metrics = m;
              x_sessions = !sessions;
              x_pending = !pending;
              x_cache = !cache;
            })
  | _ -> fail "not a metrics export"

let merge_exported (xs : exported list) : snapshot =
  let m = merge_all (List.map (fun x -> x.x_metrics) xs) in
  let sessions = List.fold_left (fun acc x -> acc + x.x_sessions) 0 xs in
  let pending = List.fold_left (fun acc x -> acc + x.x_pending) 0 xs in
  let cache =
    if List.for_all (fun x -> x.x_cache = None) xs then None
    else
      Some
        (List.fold_left
           (fun (h, ms) x ->
             let xh, xm = Option.value x.x_cache ~default:(0, 0) in
             (h + xh, ms + xm))
           (0, 0) xs)
  in
  snapshot m ~sessions ~pending ~cache

let to_string (s : snapshot) : string =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "host metrics";
  line "  sessions          %6d  (spawned %d, killed %d)" s.sessions
    s.s_sessions_spawned s.s_sessions_killed;
  line "  events in         %6d  processed %d  dropped %d  rejected %d  pending %d"
    s.s_events_in s.s_events_processed s.s_events_dropped s.s_events_rejected
    s.s_pending;
  line "  taps              %6d  hit / %d missed" s.s_taps_hit s.s_taps_missed;
  line "  scheduler         %6d  ticks; latency p50 %s, p99 %s" s.s_ticks
    (pp_ns s.tick_p50_ns) (pp_ns s.tick_p99_ns);
  line "  renders           %6d  repaints, %d coalesced" s.s_repaints
    s.s_coalesced_renders;
  (if s.cache_hits + s.cache_misses > 0 then
     line "  render cache      %6d  hits / %d misses (%.1f%% hit rate)"
       s.cache_hits s.cache_misses (100. *. s.cache_hit_rate)
   else line "  render cache         off");
  line "  broadcast         %6d  applied, %d rejected" s.s_updates_applied
    s.s_updates_rejected;
  line "  update fan-out    p50 %s, p99 %s, last %s" (pp_ns s.fanout_p50_ns)
    (pp_ns s.fanout_p99_ns) (pp_ns s.fanout_last_ns);
  (if s.s_broadcasts_incremental + s.s_broadcasts_scratch > 0 then begin
     line "  typecheck         p50 %s, p99 %s, last %s (%d incremental, %d scratch)"
       (pp_ns s.s_typecheck_p50_ns) (pp_ns s.s_typecheck_p99_ns)
       (pp_ns s.s_typecheck_last_ns) s.s_broadcasts_incremental
       s.s_broadcasts_scratch;
     line "  last edit         %d dirty defs, %d rechecked; diff %s, compile %s"
       s.s_dirty_defs_last s.s_recheck_defs_last (pp_ns s.s_diff_last_ns)
       (pp_ns s.s_compile_last_ns)
   end);
  (if s.s_rollouts_begun > 0 then
     line "  rollouts          %6d  begun: %d promoted, %d rolled back (last canary %d sessions)"
       s.s_rollouts_begun s.s_rollouts_promoted s.s_rollouts_rolled_back
       s.s_canary_sessions_last);
  line "  accounting        %s"
    (if accounting_ok s then "ok (in = processed + dropped + rejected + pending)"
     else "MISMATCH");
  Buffer.contents b
