(** Inference types for the surface checker: the arrow-free types of
    the calculus plus unification variables.

    The surface language has no lambda syntax, so inference never needs
    function types — calls are resolved by name against known
    signatures.  Unification variables exist to give local inference
    for [var] bindings and empty list literals ([var xs := []] followed
    by [xs := cons(1, xs)]). *)

exception Error of string * Loc.t

let error loc fmt = Fmt.kstr (fun m -> raise (Error (m, loc))) fmt

type t =
  | INum
  | IStr
  | ITuple of t list
  | IList of t
  | IVar of tv ref

and tv = Unbound of int | Link of t

(* Atomic: compilation happens on the coordinating domain (boot, the
   broadcast's typecheck-once), but nothing in the API forbids a
   client compiling elsewhere, and variable ids must stay unique. *)
let var_counter = Atomic.make 0

let fresh () : t =
  IVar (ref (Unbound (1 + Atomic.fetch_and_add var_counter 1)))

(** Chase links so the head constructor is meaningful. *)
let rec repr (t : t) : t =
  match t with
  | IVar ({ contents = Link u } as r) ->
      let u' = repr u in
      r := Link u';
      u'
  | _ -> t

let rec of_surface : Sast.ty -> t = function
  | Sast.TyNum -> INum
  | Sast.TyStr -> IStr
  | Sast.TyTuple ts -> ITuple (List.map of_surface ts)
  | Sast.TyList t -> IList (of_surface t)

(** Import an arrow-free core type (attribute types, page signatures). *)
let rec of_core (t : Live_core.Typ.t) : t =
  match t with
  | Live_core.Typ.Num -> INum
  | Live_core.Typ.Str -> IStr
  | Live_core.Typ.Tuple ts -> ITuple (List.map of_core ts)
  | Live_core.Typ.List t -> IList (of_core t)
  | Live_core.Typ.Fn _ ->
      invalid_arg "Ity.of_core: function types have no surface counterpart"

let rec occurs (r : tv ref) (t : t) : bool =
  match repr t with
  | INum | IStr -> false
  | ITuple ts -> List.exists (occurs r) ts
  | IList t -> occurs r t
  | IVar r' -> r == r'

let rec pp ppf (t : t) =
  match repr t with
  | INum -> Fmt.string ppf "number"
  | IStr -> Fmt.string ppf "string"
  | ITuple ts -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp) ts
  | IList t -> Fmt.pf ppf "[%a]" pp t
  | IVar { contents = Unbound n } -> Fmt.pf ppf "'t%d" n
  | IVar { contents = Link _ } -> assert false

let to_string t = Fmt.str "%a" pp t

let rec unify (loc : Loc.t) (a : t) (b : t) : unit =
  let a = repr a and b = repr b in
  match (a, b) with
  | INum, INum | IStr, IStr -> ()
  | ITuple xs, ITuple ys when List.length xs = List.length ys ->
      List.iter2 (unify loc) xs ys
  | IList x, IList y -> unify loc x y
  | IVar r, t | t, IVar r -> (
      match t with
      | IVar r' when r == r' -> ()
      | _ ->
          if occurs r t then
            error loc "cannot construct the infinite type %s = %s"
              (to_string (IVar r)) (to_string t)
          else r := Link t)
  | _ ->
      error loc "type mismatch: %s is not compatible with %s" (to_string a)
        (to_string b)

(** Resolve to a concrete core type; unresolved variables are an
    "ambiguous type" error at the given location. *)
let rec zonk (loc : Loc.t) (t : t) : Live_core.Typ.t =
  match repr t with
  | INum -> Live_core.Typ.Num
  | IStr -> Live_core.Typ.Str
  | ITuple ts -> Live_core.Typ.Tuple (List.map (zonk loc) ts)
  | IList t -> Live_core.Typ.List (zonk loc t)
  | IVar { contents = Unbound _ } ->
      error loc
        "cannot infer a concrete type here; add a use or an annotation"
  | IVar { contents = Link _ } -> assert false

(** Resolve as far as possible, defaulting leftover variables to
    [number] — used only by error-recovery paths, never by compilation. *)
let rec zonk_default (t : t) : Live_core.Typ.t =
  match repr t with
  | INum -> Live_core.Typ.Num
  | IStr -> Live_core.Typ.Str
  | ITuple ts -> Live_core.Typ.Tuple (List.map zonk_default ts)
  | IList t -> Live_core.Typ.List (zonk_default t)
  | IVar _ -> Live_core.Typ.Num
