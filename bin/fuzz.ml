(** The conformance fuzzer CLI (see [lib/conformance] and DESIGN.md):
    generate seeded traces, replay each through every semantic
    configuration, diff after every step, and shrink the first
    divergence to a minimal witness.

    Exit status: 0 when every trace agreed, 1 on a divergence (after
    printing the shrunk trace and the reproduction seed), 2 on usage
    errors.

    {v
    fuzz --iters 500 --seed 42          # a campaign
    fuzz --replay-seed 123456789        # reproduce one generated trace
    fuzz --replay failing.trace         # re-run a saved/golden trace
    fuzz --sabotage cache-no-flush ...  # prove the oracle catches a broken cache
    v} *)

open Live_conformance

let usage () =
  prerr_endline
    {|usage: fuzz [options]
  --iters N         traces to generate and check (default 100)
  --seed N          master campaign seed (default: from the date, YYYYMMDD)
  --events N        max events per trace (default 24)
  --configs a,b,c   configurations to compare (default: all; first is reference)
  --sabotage S      deliberately break an invariant (cache-no-flush)
  --replay-seed N   regenerate one derived-seed trace and run the oracle
  --replay FILE     run the oracle on a serialized trace file
  --save FILE       write the shrunk failing trace to FILE
  --quiet           no per-iteration progress|};
  exit 2

let () =
  let iters = ref 100 in
  let seed = ref None in
  let events = ref None in
  let configs = ref None in
  let sabotage = ref None in
  let replay_seed = ref None in
  let replay_file = ref None in
  let save = ref None in
  let quiet = ref false in
  let rec parse = function
    | [] -> ()
    | "--iters" :: v :: rest ->
        iters := int_of_string v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := Some (int_of_string v);
        parse rest
    | "--events" :: v :: rest ->
        events := Some (int_of_string v);
        parse rest
    | "--configs" :: v :: rest ->
        configs := Some (String.split_on_char ',' v);
        parse rest
    | "--sabotage" :: "cache-no-flush" :: rest ->
        sabotage := Some Oracle.Cache_no_flush;
        parse rest
    | "--sabotage" :: other :: _ ->
        Printf.eprintf "unknown sabotage %S\n" other;
        usage ()
    | "--replay-seed" :: v :: rest ->
        replay_seed := Some (int_of_string v);
        parse rest
    | "--replay" :: v :: rest ->
        replay_file := Some v;
        parse rest
    | "--save" :: v :: rest ->
        save := Some v;
        parse rest
    | "--quiet" :: rest ->
        quiet := true;
        parse rest
    | other :: _ ->
        Printf.eprintf "unknown option %S\n" other;
        usage ()
  in
  (try parse (List.tl (Array.to_list Sys.argv))
   with Failure _ -> usage ());
  let seed =
    match !seed with
    | Some s -> s
    | None ->
        (* a fresh deterministic seed per day — the CI smoke job's
           "from-date" mode *)
        let tm = Unix.gmtime (Unix.time ()) in
        ((tm.Unix.tm_year + 1900) * 10000)
        + ((tm.Unix.tm_mon + 1) * 100)
        + tm.Unix.tm_mday
  in
  let report_divergence ?(trace_seed = 0) (trace : Ctrace.t)
      (d : Oracle.divergence) ~(shrunk : Ctrace.t)
      ~(shrunk_d : Oracle.divergence) =
    Printf.printf "\nDIVERGENCE (master seed %d, reproduction seed %d)\n" seed
      trace_seed;
    Printf.printf "  original: %d events; %s\n"
      (List.length trace.Ctrace.events)
      (Fmt.str "%a" Oracle.pp_divergence d);
    Printf.printf "\nshrunk to %d events:\n%s\n"
      (List.length shrunk.Ctrace.events)
      (Fmt.str "%a" Oracle.pp_divergence shrunk_d);
    Printf.printf "\n--- shrunk trace ---\n%s--- end trace ---\n"
      (Ctrace.to_string shrunk);
    Printf.printf "\nreproduce with: fuzz --replay-seed %d%s\n" trace_seed
      (match !sabotage with
      | Some Oracle.Cache_no_flush -> " --sabotage cache-no-flush"
      | None -> "");
    Option.iter
      (fun path ->
        Ctrace.save path shrunk;
        Printf.printf "shrunk trace written to %s\n" path)
      !save
  in
  match (!replay_file, !replay_seed) with
  | Some path, _ -> (
      match Ctrace.load path with
      | Error m ->
          Printf.eprintf "cannot load %s: %s\n" path m;
          exit 2
      | Ok trace -> (
          match
            Oracle.run ?configs:!configs ?sabotage:!sabotage trace
          with
          | Oracle.Agreed ->
              Printf.printf "%s: %d events, all configurations agree\n" path
                (List.length trace.Ctrace.events);
              exit 0
          | Oracle.Boot_failed m ->
              Printf.printf "%s: boot failed: %s\n" path m;
              exit 1
          | Oracle.Diverged d ->
              let shrunk, shrunk_d =
                Shrink.shrink ?configs:!configs ?sabotage:!sabotage trace d
              in
              report_divergence trace d ~shrunk ~shrunk_d;
              exit 1))
  | None, Some tseed -> (
      let trace, outcome =
        Engine.replay_seed ?n_events:!events ?configs:!configs
          ?sabotage:!sabotage tseed
      in
      match outcome with
      | Oracle.Agreed ->
          Printf.printf "seed %d: %d events, all configurations agree\n" tseed
            (List.length trace.Ctrace.events);
          exit 0
      | Oracle.Boot_failed m ->
          Printf.printf "seed %d: boot failed: %s\n" tseed m;
          exit 1
      | Oracle.Diverged d ->
          let shrunk, shrunk_d =
            Shrink.shrink ?configs:!configs ?sabotage:!sabotage trace d
          in
          report_divergence ~trace_seed:tseed trace d ~shrunk ~shrunk_d;
          exit 1)
  | None, None ->
      let t0 = Unix.gettimeofday () in
      let on_progress k =
        if (not !quiet) && k > 0 && k mod 50 = 0 then begin
          Printf.printf "  ... %d traces checked\n" k;
          flush stdout
        end
      in
      Printf.printf
        "conformance fuzz: %d traces, master seed %d, configurations: %s\n"
        !iters seed
        (String.concat ", "
           (Option.value !configs ~default:Oracle.all_configs));
      flush stdout;
      let report =
        Engine.run_campaign ~iters:!iters ?n_events:!events
          ?configs:!configs ?sabotage:!sabotage ~on_progress ~seed ()
      in
      let dt = Unix.gettimeofday () -. t0 in
      (match report.Engine.failure with
      | None ->
          Printf.printf
            "OK: %d traces (%d events) across %d configurations, zero \
             divergences (%.1f traces/s)\n"
            report.Engine.iters_run report.Engine.events_run
            (List.length (Option.value !configs ~default:Oracle.all_configs))
            (float_of_int report.Engine.iters_run /. dt);
          exit 0
      | Some f ->
          Printf.printf "iteration %d diverged after %.1fs\n" f.Engine.iter dt;
          report_divergence ~trace_seed:f.Engine.trace_seed f.Engine.trace
            f.Engine.divergence ~shrunk:f.Engine.shrunk
            ~shrunk_d:f.Engine.shrunk_divergence;
          exit 1)
