(** Standalone networked-host tooling (DESIGN.md §12): one binary,
    three subcommands, so the server and its clients can live in
    different processes — the deployment shape the in-process harness
    in [host_bench --net] only simulates.

    {v
    host_client serve --socket /tmp/live.sock --rows 8 &
    host_client load  --socket /tmp/live.sock --sessions 100 --rounds 50
    host_client stats --socket /tmp/live.sock
    v}

    [serve] binds a Unix-domain socket over a fresh synthetic-app
    fleet and steps the select loop until SIGINT/SIGTERM.  [load]
    drives the seeded lockstep {!Live_net.Client} against whatever is
    listening (any process) and prints the end-to-end latency report;
    exit 0 iff the run completed without protocol errors.  [stats]
    sends a single [Stats] frame and prints the host's metrics dump. *)

module Wire = Live_net.Wire
module Prng = Live_core.Prng

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let usage () =
  prerr_endline
    {|usage: host_client <serve|load|stats|director|rebalance> --socket PATH [options]
  serve --socket PATH [--width W] [--rows N] [--cache]
        [--evaluator subst|compiled] [--queue-capacity Q]
        [--queue-policy drop-oldest|reject] [--batch B]
      run a networked host until SIGINT/SIGTERM
  load --socket PATH [--sessions K] [--conns C] [--rounds R]
       [--seed N] [--window W] [--detach-every K] [--width W] [--rows N]
       [--update-every R] [--rebalance-every R] [--count K] [--verify]
      drive seeded load against a running host; --window W pipelines up
      to W rounds of each session's events before waiting for delta
      credits (default 1 = lockstep), --update-every broadcasts a fresh
      program version every R rounds, --rebalance-every asks a director
      to migrate --count sessions every R rounds (both land at full
      barriers whatever the window), and --verify replays the trace
      in-process afterwards and cross-checks the fleet digest over the
      wire
  stats --socket PATH
      print the host's metrics dump (aggregated across shards when the
      socket is a director)
  director --socket PATH --shards P1,P2,... [--connect-timeout S]
      front N running shard hosts behind one socket until SIGINT/SIGTERM
  rebalance --socket PATH [--count K]
      ask a running director to migrate K sessions between shards|};
  exit 2

(* ---- shared flags ------------------------------------------------ *)

let socket = ref ""
let width = ref 32
let rows = ref 8
let cache = ref false
let evaluator = ref Live_core.Machine.Compiled
let queue_capacity = ref 64
let queue_policy = ref Live_host.Backpressure.Drop_oldest
let batch = ref 8
let sessions = ref 100
let conns = ref 0
let rounds = ref 50
let seed = ref 42
let detach_every = ref 0
let shards_csv = ref ""
let connect_timeout = ref 10.
let count = ref 1
let update_every = ref 0
let rebalance_every = ref 0
let verify = ref false
let window = ref 1

let int_arg name v =
  match int_of_string_opt v with
  | Some n -> n
  | None -> die "host_client: %s expects an integer, got %S" name v

let float_arg name v =
  match float_of_string_opt v with
  | Some f -> f
  | None -> die "host_client: %s expects a number, got %S" name v

let rec parse = function
  | [] -> ()
  | "--socket" :: v :: rest -> socket := v; parse rest
  | "--width" :: v :: rest -> width := int_arg "--width" v; parse rest
  | "--rows" :: v :: rest -> rows := int_arg "--rows" v; parse rest
  | "--cache" :: rest -> cache := true; parse rest
  | "--evaluator" :: v :: rest ->
      (match v with
      | "subst" -> evaluator := Live_core.Machine.Subst
      | "compiled" -> evaluator := Live_core.Machine.Compiled
      | _ -> die "host_client: unknown evaluator %S" v);
      parse rest
  | "--queue-capacity" :: v :: rest ->
      queue_capacity := int_arg "--queue-capacity" v;
      parse rest
  | "--queue-policy" :: v :: rest ->
      (match v with
      | "drop-oldest" -> queue_policy := Live_host.Backpressure.Drop_oldest
      | "reject" -> queue_policy := Live_host.Backpressure.Reject
      | _ -> die "host_client: unknown queue policy %S" v);
      parse rest
  | "--batch" :: v :: rest -> batch := int_arg "--batch" v; parse rest
  | "--sessions" :: v :: rest -> sessions := int_arg "--sessions" v; parse rest
  | "--conns" :: v :: rest -> conns := int_arg "--conns" v; parse rest
  | "--rounds" :: v :: rest -> rounds := int_arg "--rounds" v; parse rest
  | "--seed" :: v :: rest -> seed := int_arg "--seed" v; parse rest
  | "--detach-every" :: v :: rest ->
      detach_every := int_arg "--detach-every" v;
      parse rest
  | "--shards" :: v :: rest -> shards_csv := v; parse rest
  | "--connect-timeout" :: v :: rest ->
      connect_timeout := float_arg "--connect-timeout" v;
      parse rest
  | "--count" :: v :: rest -> count := int_arg "--count" v; parse rest
  | "--update-every" :: v :: rest ->
      update_every := int_arg "--update-every" v;
      parse rest
  | "--rebalance-every" :: v :: rest ->
      rebalance_every := int_arg "--rebalance-every" v;
      parse rest
  | "--verify" :: rest -> verify := true; parse rest
  | "--window" :: v :: rest -> window := int_arg "--window" v; parse rest
  | a :: _ -> die "host_client: unknown argument %S" a

let require_socket () = if !socket = "" then die "host_client: --socket is required"

(* ---- serve ------------------------------------------------------- *)

let serve () =
  require_socket ();
  let program =
    (Live_workloads.Synthetic.compile_exn
       (Live_workloads.Synthetic.host_app ~rows:!rows ~version:0 ()))
      .Live_surface.Compile.core
  in
  let config =
    {
      Live_host.Registry.default_config with
      Live_host.Registry.width = !width;
      cache = !cache;
      queue_capacity = !queue_capacity;
      queue_policy = !queue_policy;
      evaluator = !evaluator;
    }
  in
  let srv = Live_net.Server.create ~config ~batch:!batch ~socket:!socket program in
  let stopping = ref false in
  let quit _ = stopping := true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
  Printf.printf "host_client: serving on %s (rows %d, width %d, %s)\n%!"
    !socket !rows !width
    (match !evaluator with
    | Live_core.Machine.Subst -> "subst"
    | Live_core.Machine.Compiled -> "compiled");
  Live_net.Server.run ~until:(fun () -> !stopping) srv;
  let s = Live_net.Server.stats srv in
  Live_net.Server.stop srv;
  Printf.printf
    "host_client: served %d connections, %d frames in / %d out, %d \
     detaches, %d resumes\n%!"
    s.Live_net.Server.accepted s.Live_net.Server.frames_in
    s.Live_net.Server.frames_out s.Live_net.Server.detaches
    s.Live_net.Server.resumes;
  exit 0

(* ---- a raw admin connection -------------------------------------- *)

(* Blocking request/reply over a side connection that owns no sessions,
   so the only frames it ever sees are replies to its own requests.
   Works identically against a [serve] host and a [director]. *)

type admin = { afd : Unix.file_descr; abuf : Buffer.t; mutable aoff : int }

let admin_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     die "host_client: cannot connect to %s: %s" path (Unix.error_message e));
  { afd = fd; abuf = Buffer.create 1024; aoff = 0 }

let admin_send (a : admin) (f : Wire.client_frame) : unit =
  let payload = Wire.encode (Wire.Client f) in
  let len = String.length payload in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring a.afd payload !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let admin_chunk = Bytes.create 65536

let rec admin_recv (a : admin) : Wire.host_frame =
  let data = Buffer.contents a.abuf in
  match Wire.decode ~off:a.aoff data with
  | Wire.Frame (Wire.Host f, consumed) ->
      a.aoff <- a.aoff + consumed;
      if a.aoff = String.length data then begin
        Buffer.clear a.abuf;
        a.aoff <- 0
      end;
      f
  | Wire.Frame (Wire.Client _, _) ->
      die "host_client: host sent a client frame"
  | Wire.Corrupt m -> die "host_client: corrupt reply: %s" m
  | Wire.Need_more -> (
      match Unix.read a.afd admin_chunk 0 (Bytes.length admin_chunk) with
      | 0 -> die "host_client: host closed the connection"
      | k ->
          Buffer.add_subbytes a.abuf admin_chunk 0 k;
          admin_recv a
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> admin_recv a)

let admin_rpc a f =
  admin_send a f;
  admin_recv a

let admin_close (a : admin) : unit =
  admin_send a Wire.Bye;
  try Unix.close a.afd with Unix.Unix_error _ -> ()

(* ---- load -------------------------------------------------------- *)

let app version : Live_core.Program.t =
  (Live_workloads.Synthetic.compile_exn
     (Live_workloads.Synthetic.host_app ~rows:!rows ~version ()))
    .Live_surface.Compile.core

(* The seeded event stream, shared between the wire client and the
   in-process shadow replay so [--verify] consumes the prng streams
   identically on both sides. *)
let mk_gen () =
  let rngs =
    Array.init !sessions (fun s -> Prng.create (Prng.derive !seed s))
  in
  fun ~slot ~round:_ ->
    let rng = rngs.(slot) in
    if Prng.int rng 10 = 0 then Wire.Ev_back
    else Wire.Ev_tap { x = Prng.int rng !width; y = Prng.int rng (!rows + 3) }

(* Replay the exact load trace on a private single-process fleet and
   return its digest: the ground truth a directed (or single) host
   must match byte-for-byte. *)
let shadow_digest () =
  let module R = Live_host.Registry in
  let config = { R.default_config with R.width = !width } in
  let reg = R.create ~config (app 0) in
  let sched = Live_host.Scheduler.create reg in
  (match R.spawn_many reg !sessions with
  | Ok _ -> ()
  | Error e ->
      die "host_client: verify: spawn: %s"
        (Live_core.Machine.error_to_string e));
  let gen = mk_gen () in
  for round = 0 to !rounds - 1 do
    for s = 0 to !sessions - 1 do
      let ev =
        match gen ~slot:s ~round with
        | Wire.Ev_tap { x; y } -> R.Tap { x; y }
        | Wire.Ev_back -> R.Back
      in
      ignore (R.offer reg s ev)
    done;
    (match Live_host.Scheduler.drain sched with Ok _ | Error _ -> ());
    if !update_every > 0 && (round + 1) mod !update_every = 0 then
      match
        Live_host.Broadcast.update reg (app ((round + 1) / !update_every))
      with
      | Ok _ -> ()
      | Error e ->
          die "host_client: verify: shadow update: %s"
            (Live_core.Machine.error_to_string e)
  done;
  R.digest reg

let observed_digest (a : admin) : string =
  match admin_rpc a Wire.Observe with
  | Wire.Observed { sessions = obs } ->
      let b = Buffer.create 4096 in
      List.iter
        (fun (id, o) ->
          Buffer.add_string b (Printf.sprintf "== session %d ==\n" id);
          Buffer.add_string b o)
        obs;
      Digest.to_hex (Digest.string (Buffer.contents b))
  | Wire.Error { code; msg } ->
      die "host_client: observe failed (%d): %s" code msg
  | _ -> die "host_client: unexpected reply to Observe"

let load () =
  require_socket ();
  if !conns = 0 then conns := min !sessions 16;
  if !conns > !sessions then conns := !sessions;
  if !window < 1 then die "host_client: --window must be >= 1";
  if !verify && !detach_every > 0 then
    die
      "host_client: --verify needs stable session ids; drop --detach-every";
  let gen = mk_gen () in
  let admin = ref None in
  let admin_get () =
    match !admin with
    | Some a -> a
    | None ->
        let a = admin_connect !socket in
        admin := Some a;
        a
  in
  let updates_sent = ref 0 and rebalances_sent = ref 0 in
  let on_round r =
    if !update_every > 0 && (r + 1) mod !update_every = 0 then begin
      let v = (r + 1) / !update_every in
      match
        admin_rpc (admin_get ())
          (Wire.Update { program = Live_net.Snapshot.program_to_string (app v) })
      with
      | Wire.Ack _ -> incr updates_sent
      | Wire.Error { code; msg } ->
          die "host_client: update refused (%d): %s" code msg
      | _ -> die "host_client: unexpected reply to Update"
    end;
    if !rebalance_every > 0 && (r + 1) mod !rebalance_every = 0 then
      match admin_rpc (admin_get ()) (Wire.Rebalance { count = !count }) with
      | Wire.Ack _ -> incr rebalances_sent
      | Wire.Error { code; msg } ->
          die "host_client: rebalance refused (%d): %s" code msg
      | _ -> die "host_client: unexpected reply to Rebalance"
  in
  (* the rounds on_round acts at must be full barriers: broadcasts and
     rebalances land on a quiescent fleet whatever the window *)
  let barrier r =
    (!update_every > 0 && (r + 1) mod !update_every = 0)
    || (!rebalance_every > 0 && (r + 1) mod !rebalance_every = 0)
  in
  let t0 = Unix.gettimeofday () in
  match
    Live_net.Client.run ~socket:!socket ~conns:!conns ~sessions:!sessions
      ~rounds:!rounds ~gen ~window:!window ~barrier
      ?detach_every:(if !detach_every > 0 then Some !detach_every else None)
      ~on_round ~stats:true ()
  with
  | Error m ->
      prerr_endline ("host_client: load failed: " ^ m);
      exit 1
  | Ok r ->
      let dt = Unix.gettimeofday () -. t0 in
      let p q =
        Live_host.Host_metrics.quantile r.Live_net.Client.latency q /. 1e6
      in
      Printf.printf "load: %d sessions x %d rounds over %d connections%s\n"
        !sessions r.Live_net.Client.rounds !conns
        (if !window > 1 then Printf.sprintf " (window %d)" !window else "");
      Printf.printf "load: %d events in %.2f s (%.0f events/s)\n"
        r.Live_net.Client.events_sent dt
        (float_of_int r.Live_net.Client.events_sent /. dt);
      Printf.printf "load: e2e latency p50 %.3f ms  p99 %.3f ms (%d rejected)\n"
        (p 0.5) (p 0.99) r.Live_net.Client.rejected;
      if r.Live_net.Client.full_rows > 0 then
        Printf.printf "load: delta rows %d vs full-repaint rows %d (%.1f%%)\n"
          r.Live_net.Client.delta_rows r.Live_net.Client.full_rows
          (100.
          *. float_of_int r.Live_net.Client.delta_rows
          /. float_of_int r.Live_net.Client.full_rows);
      if r.Live_net.Client.detaches > 0 then
        Printf.printf "load: %d detaches, %d resumes\n"
          r.Live_net.Client.detaches r.Live_net.Client.resumes;
      (match r.Live_net.Client.metrics with
      | Some m -> print_string m
      | None -> ());
      if !updates_sent > 0 || !rebalances_sent > 0 then
        Printf.printf "load: %d fleet updates, %d rebalances\n" !updates_sent
          !rebalances_sent;
      let ok = ref true in
      if !verify then begin
        let wire = observed_digest (admin_get ()) in
        let shadow = shadow_digest () in
        if String.equal wire shadow then
          Printf.printf "verify: fleet digest %s matches shadow replay\n" wire
        else begin
          Printf.printf "verify: FLEET DIGEST MISMATCH wire %s shadow %s\n"
            wire shadow;
          ok := false
        end
      end;
      (match !admin with Some a -> admin_close a | None -> ());
      exit (if !ok then 0 else 1)

(* ---- stats ------------------------------------------------------- *)

let stats () =
  require_socket ();
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX !socket)
   with Unix.Unix_error (e, _, _) ->
     die "host_client: cannot connect to %s: %s" !socket (Unix.error_message e));
  let payload = Wire.encode (Wire.Client Wire.Stats) in
  let n = Unix.write_substring fd payload 0 (String.length payload) in
  if n <> String.length payload then die "host_client: short write";
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec read_frame () =
    match Wire.decode (Buffer.contents buf) with
    | Wire.Frame (f, _) -> f
    | Wire.Corrupt m -> die "host_client: corrupt reply: %s" m
    | Wire.Need_more ->
        let k = Unix.read fd chunk 0 (Bytes.length chunk) in
        if k = 0 then die "host_client: host closed the connection";
        Buffer.add_subbytes buf chunk 0 k;
        read_frame ()
  in
  (match read_frame () with
  | Wire.Host (Wire.Metrics { text }) -> print_string text
  | Wire.Host (Wire.Error { code; msg }) ->
      die "host_client: host error %d: %s" code msg
  | _ -> die "host_client: unexpected reply to Stats");
  let bye = Wire.encode (Wire.Client Wire.Bye) in
  ignore (Unix.write_substring fd bye 0 (String.length bye));
  Unix.close fd;
  exit 0

(* ---- director ---------------------------------------------------- *)

let director () =
  require_socket ();
  let shards =
    String.split_on_char ',' !shards_csv
    |> List.filter (fun s -> s <> "")
  in
  if shards = [] then die "host_client: --shards P1,P2,... is required";
  let dir =
    try
      Live_net.Director.create ~connect_timeout:!connect_timeout
        ~socket:!socket ~shards ()
    with Unix.Unix_error (e, _, p) ->
      die "host_client: cannot reach shard %s: %s" p (Unix.error_message e)
  in
  let stopping = ref false in
  let quit _ = stopping := true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
  Printf.printf "host_client: directing %d shards on %s\n%!"
    (List.length shards) !socket;
  (try Live_net.Director.run ~until:(fun () -> !stopping) dir
   with Live_net.Director.Fatal m ->
     prerr_endline ("host_client: director: fatal: " ^ m));
  let s = Live_net.Director.stats dir in
  Live_net.Director.stop dir;
  Printf.printf
    "host_client: %d sessions over %d shards, %d clients, %d frames in / %d \
     out\n"
    s.Live_net.Director.sessions s.Live_net.Director.shards
    s.Live_net.Director.accepted s.Live_net.Director.frames_in
    s.Live_net.Director.frames_out;
  List.iter
    (fun (ep, n) -> Printf.printf "host_client:   %-40s %d sessions\n" ep n)
    s.Live_net.Director.per_shard;
  Printf.printf
    "host_client: updates %d committed / %d rejected, rebalances %d (%d \
     moved), digest checks %d (%d failed)\n"
    s.Live_net.Director.updates_committed s.Live_net.Director.updates_rejected
    s.Live_net.Director.rebalances s.Live_net.Director.sessions_moved
    s.Live_net.Director.digest_checks s.Live_net.Director.digest_failures;
  exit (if s.Live_net.Director.digest_failures = 0 then 0 else 1)

(* ---- rebalance --------------------------------------------------- *)

let rebalance () =
  require_socket ();
  let a = admin_connect !socket in
  (match admin_rpc a (Wire.Rebalance { count = !count }) with
  | Wire.Ack { info } -> print_endline ("host_client: " ^ info)
  | Wire.Error { code; msg } ->
      die "host_client: rebalance refused (%d): %s" code msg
  | _ -> die "host_client: unexpected reply to Rebalance");
  admin_close a;
  exit 0

let () =
  match Array.to_list Sys.argv with
  | _ :: "serve" :: rest -> parse rest; serve ()
  | _ :: "load" :: rest -> parse rest; load ()
  | _ :: "stats" :: rest -> parse rest; stats ()
  | _ :: "director" :: rest -> parse rest; director ()
  | _ :: "rebalance" :: rest -> parse rest; rebalance ()
  | _ -> usage ()
