(** Standalone networked-host tooling (DESIGN.md §12): one binary,
    three subcommands, so the server and its clients can live in
    different processes — the deployment shape the in-process harness
    in [host_bench --net] only simulates.

    {v
    host_client serve --socket /tmp/live.sock --rows 8 &
    host_client load  --socket /tmp/live.sock --sessions 100 --rounds 50
    host_client stats --socket /tmp/live.sock
    v}

    [serve] binds a Unix-domain socket over a fresh synthetic-app
    fleet and steps the select loop until SIGINT/SIGTERM.  [load]
    drives the seeded lockstep {!Live_net.Client} against whatever is
    listening (any process) and prints the end-to-end latency report;
    exit 0 iff the run completed without protocol errors.  [stats]
    sends a single [Stats] frame and prints the host's metrics dump. *)

module Wire = Live_net.Wire
module Prng = Live_core.Prng

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let usage () =
  prerr_endline
    {|usage: host_client <serve|load|stats> --socket PATH [options]
  serve --socket PATH [--width W] [--rows N] [--cache]
        [--evaluator subst|compiled] [--queue-capacity Q]
        [--queue-policy drop-oldest|reject] [--batch B]
      run a networked host until SIGINT/SIGTERM
  load --socket PATH [--sessions K] [--conns C] [--rounds R]
       [--seed N] [--detach-every K] [--width W] [--rows N]
      drive seeded lockstep load against a running host
  stats --socket PATH
      print the running host's metrics dump|};
  exit 2

(* ---- shared flags ------------------------------------------------ *)

let socket = ref ""
let width = ref 32
let rows = ref 8
let cache = ref false
let evaluator = ref Live_core.Machine.Compiled
let queue_capacity = ref 64
let queue_policy = ref Live_host.Backpressure.Drop_oldest
let batch = ref 8
let sessions = ref 100
let conns = ref 0
let rounds = ref 50
let seed = ref 42
let detach_every = ref 0

let int_arg name v =
  match int_of_string_opt v with
  | Some n -> n
  | None -> die "host_client: %s expects an integer, got %S" name v

let rec parse = function
  | [] -> ()
  | "--socket" :: v :: rest -> socket := v; parse rest
  | "--width" :: v :: rest -> width := int_arg "--width" v; parse rest
  | "--rows" :: v :: rest -> rows := int_arg "--rows" v; parse rest
  | "--cache" :: rest -> cache := true; parse rest
  | "--evaluator" :: v :: rest ->
      (match v with
      | "subst" -> evaluator := Live_core.Machine.Subst
      | "compiled" -> evaluator := Live_core.Machine.Compiled
      | _ -> die "host_client: unknown evaluator %S" v);
      parse rest
  | "--queue-capacity" :: v :: rest ->
      queue_capacity := int_arg "--queue-capacity" v;
      parse rest
  | "--queue-policy" :: v :: rest ->
      (match v with
      | "drop-oldest" -> queue_policy := Live_host.Backpressure.Drop_oldest
      | "reject" -> queue_policy := Live_host.Backpressure.Reject
      | _ -> die "host_client: unknown queue policy %S" v);
      parse rest
  | "--batch" :: v :: rest -> batch := int_arg "--batch" v; parse rest
  | "--sessions" :: v :: rest -> sessions := int_arg "--sessions" v; parse rest
  | "--conns" :: v :: rest -> conns := int_arg "--conns" v; parse rest
  | "--rounds" :: v :: rest -> rounds := int_arg "--rounds" v; parse rest
  | "--seed" :: v :: rest -> seed := int_arg "--seed" v; parse rest
  | "--detach-every" :: v :: rest ->
      detach_every := int_arg "--detach-every" v;
      parse rest
  | a :: _ -> die "host_client: unknown argument %S" a

let require_socket () = if !socket = "" then die "host_client: --socket is required"

(* ---- serve ------------------------------------------------------- *)

let serve () =
  require_socket ();
  let program =
    (Live_workloads.Synthetic.compile_exn
       (Live_workloads.Synthetic.host_app ~rows:!rows ~version:0 ()))
      .Live_surface.Compile.core
  in
  let config =
    {
      Live_host.Registry.default_config with
      Live_host.Registry.width = !width;
      cache = !cache;
      queue_capacity = !queue_capacity;
      queue_policy = !queue_policy;
      evaluator = !evaluator;
    }
  in
  let srv = Live_net.Server.create ~config ~batch:!batch ~socket:!socket program in
  let stopping = ref false in
  let quit _ = stopping := true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
  Printf.printf "host_client: serving on %s (rows %d, width %d, %s)\n%!"
    !socket !rows !width
    (match !evaluator with
    | Live_core.Machine.Subst -> "subst"
    | Live_core.Machine.Compiled -> "compiled");
  Live_net.Server.run ~until:(fun () -> !stopping) srv;
  let s = Live_net.Server.stats srv in
  Live_net.Server.stop srv;
  Printf.printf
    "host_client: served %d connections, %d frames in / %d out, %d \
     detaches, %d resumes\n%!"
    s.Live_net.Server.accepted s.Live_net.Server.frames_in
    s.Live_net.Server.frames_out s.Live_net.Server.detaches
    s.Live_net.Server.resumes;
  exit 0

(* ---- load -------------------------------------------------------- *)

let load () =
  require_socket ();
  if !conns = 0 then conns := min !sessions 16;
  if !conns > !sessions then conns := !sessions;
  let rngs =
    Array.init !sessions (fun s -> Prng.create (Prng.derive !seed s))
  in
  let gen ~slot ~round:_ =
    let rng = rngs.(slot) in
    if Prng.int rng 10 = 0 then Wire.Ev_back
    else Wire.Ev_tap { x = Prng.int rng !width; y = Prng.int rng (!rows + 3) }
  in
  let t0 = Unix.gettimeofday () in
  match
    Live_net.Client.run ~socket:!socket ~conns:!conns ~sessions:!sessions
      ~rounds:!rounds ~gen
      ?detach_every:(if !detach_every > 0 then Some !detach_every else None)
      ~stats:true ()
  with
  | Error m ->
      prerr_endline ("host_client: load failed: " ^ m);
      exit 1
  | Ok r ->
      let dt = Unix.gettimeofday () -. t0 in
      let p q =
        Live_host.Host_metrics.quantile r.Live_net.Client.latency q /. 1e6
      in
      Printf.printf "load: %d sessions x %d rounds over %d connections\n"
        !sessions r.Live_net.Client.rounds !conns;
      Printf.printf "load: %d events in %.2f s (%.0f events/s)\n"
        r.Live_net.Client.events_sent dt
        (float_of_int r.Live_net.Client.events_sent /. dt);
      Printf.printf "load: e2e latency p50 %.3f ms  p99 %.3f ms (%d rejected)\n"
        (p 0.5) (p 0.99) r.Live_net.Client.rejected;
      if r.Live_net.Client.full_rows > 0 then
        Printf.printf "load: delta rows %d vs full-repaint rows %d (%.1f%%)\n"
          r.Live_net.Client.delta_rows r.Live_net.Client.full_rows
          (100.
          *. float_of_int r.Live_net.Client.delta_rows
          /. float_of_int r.Live_net.Client.full_rows);
      if r.Live_net.Client.detaches > 0 then
        Printf.printf "load: %d detaches, %d resumes\n"
          r.Live_net.Client.detaches r.Live_net.Client.resumes;
      (match r.Live_net.Client.metrics with
      | Some m -> print_string m
      | None -> ());
      exit 0

(* ---- stats ------------------------------------------------------- *)

let stats () =
  require_socket ();
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX !socket)
   with Unix.Unix_error (e, _, _) ->
     die "host_client: cannot connect to %s: %s" !socket (Unix.error_message e));
  let payload = Wire.encode (Wire.Client Wire.Stats) in
  let n = Unix.write_substring fd payload 0 (String.length payload) in
  if n <> String.length payload then die "host_client: short write";
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec read_frame () =
    match Wire.decode (Buffer.contents buf) with
    | Wire.Frame (f, _) -> f
    | Wire.Corrupt m -> die "host_client: corrupt reply: %s" m
    | Wire.Need_more ->
        let k = Unix.read fd chunk 0 (Bytes.length chunk) in
        if k = 0 then die "host_client: host closed the connection";
        Buffer.add_subbytes buf chunk 0 k;
        read_frame ()
  in
  (match read_frame () with
  | Wire.Host (Wire.Metrics { text }) -> print_string text
  | Wire.Host (Wire.Error { code; msg }) ->
      die "host_client: host error %d: %s" code msg
  | _ -> die "host_client: unexpected reply to Stats");
  let bye = Wire.encode (Wire.Client Wire.Bye) in
  ignore (Unix.write_substring fd bye 0 (String.length bye));
  Unix.close fd;
  exit 0

let () =
  match Array.to_list Sys.argv with
  | _ :: "serve" :: rest -> parse rest; serve ()
  | _ :: "load" :: rest -> parse rest; load ()
  | _ :: "stats" :: rest -> parse rest; stats ()
  | _ -> usage ()
