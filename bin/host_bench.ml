(** The multi-session host load driver (lib/host; DESIGN.md §7):
    spawn a fleet of sessions over the synthetic workload, replay
    seeded per-session event streams through the bounded ingress
    queues and the batching scheduler, fire mid-stream broadcast
    updates, and dump {!Live_host.Host_metrics} — including p50/p99
    tick latency and update fan-out time.

    Exit status 0 iff the run completed with zero invariant
    violations, a clean dropped-event accounting identity, and every
    broadcast applied; 1 otherwise; 2 on usage errors.

    {v
    host_bench --sessions 1000 --seed 42       # the acceptance run
    host_bench --sessions 100 --soak 60        # the CI soak job
    host_bench --policy hottest-first --cache  # other configurations
    host_bench --jobs 4 --digest               # the parallel pool
    host_bench --evaluator subst               # the substitution engine
    host_bench --net --conns 25                # over real Unix sockets
    host_bench --net --soak 60 --detach-every 5  # the net soak job
    v}

    Determinism contract: for a fixed [--seed], the final fleet state
    is a pure function of the replayed trace — [--digest] prints the
    same MD5 for every [--jobs] value (see [Live_host.Parallel]) and
    for both [--evaluator] engines (see [Live_core.Compile_eval]).
    [--soak] enforces the latter directly: it drives a lockstep shadow
    fleet under the {e other} evaluator over the same trace and fails
    unless the two digests agree. *)

module H = Live_host
module Session = Live_runtime.Session
module Prng = Live_conformance.Prng

let usage () =
  prerr_endline
    {|usage: host_bench [options]
  --sessions K        fleet size (default 100)
  --seed N            master event-stream seed (default 42)
  --events N          events per session (default 50)
  --updates U         mid-stream broadcast updates (default 2)
  --batch B           scheduler batch per session per tick (default 8)
  --policy P          round-robin | hottest-first (default round-robin)
  --queue-capacity Q  per-session ingress bound (default 64)
  --queue-policy P    drop-oldest | reject (default drop-oldest)
  --admission N       fleet-wide pending-event cap (default: none)
  --cache             enable the incremental render pipeline
  --rows N            rows in the synthetic app (default 8)
  --width W           display width (default 32)
  --jobs J            worker domains (default 1 = sequential scheduler;
                      J > 1 executes ticks on a Domain pool).  The run
                      is deterministic in --seed: per-session final
                      state is byte-identical for every J, only
                      wall-clock varies.
  --evaluator E       subst | compiled (default compiled): execution
                      engine for every session in the fleet
  --typecheck M       scratch | incremental | both (default incremental):
                      how broadcasts discharge the UPDATE typecheck.
                      "both" cross-checks the two checkers on every
                      broadcast AND replays the whole run against a
                      lockstep scratch-mode shadow fleet, failing
                      unless the final MD5 digests agree
  --edit-size N       broadcast N-definition structural edits (via
                      Program.with_def on cold definitions, preserving
                      physical sharing) instead of whole-program
                      version bumps; prints the per-broadcast
                      typecheck / diff / compile / fan-out breakdown
  --digest            print the fleet's MD5 state digest (the
                      determinism contract: equal across --jobs values
                      and across --evaluator engines)
  --soak SECS         wall-clock soak: run SECS seconds, broadcast ~1/s,
                      and digest-cross-check a lockstep shadow fleet
                      running the other evaluator
  --rollout-soak SECS wall-clock staged-rollout soak: run SECS seconds,
                      open a staged rollout every ~5 s (seeded random
                      promote/rollback), and digest-cross-check a
                      lockstep shadow fleet that takes each promoted
                      change set as one flat broadcast and never sees
                      a rolled-back one; nonzero exit on divergence
  --net               drive the fleet over real Unix-domain sockets:
                      an in-process lib/net server plus the lockstep
                      load client, one event per session per round.
                      Reports end-to-end (event-written to
                      delta-decoded) p50/p99 latency and the damage
                      delta vs full-repaint byte ratio, then replays
                      the identical seeded trace on a direct
                      in-process fleet and fails unless the two
                      digests agree (transport invariance).  With
                      --soak SECS, runs the wall-clock net soak
                      (periodic detach/resume, one broadcast at
                      half-time) instead of a fixed --events count
  --conns C           connections the --net client multiplexes the
                      fleet over (default: min(sessions, 16))
  --window W          per-session in-flight event budget for the --net
                      or --shards client (default 1 = lockstep).  With
                      W > 1 the client pipelines up to W rounds of a
                      session's events before waiting for delta
                      credits; broadcasts and rebalances still land at
                      full barriers, so the digest contract is
                      unchanged
  --fork              under --shards: fork each shard server as a real
                      child process running its own select loop, so
                      shards execute on separate cores.  The director,
                      the client and the digest cross-check are
                      unchanged — transport invariance must hold
                      across process boundaries too
  --detach-every K    under --net: detach one session (rotating) to a
                      client-held snapshot and resume it every K
                      rounds (default 0 = never; the net soak
                      defaults to 5)
  --shards N          drive the fleet through an in-process shard
                      director fronting N shard servers over real
                      Unix-domain sockets: fleet-wide UPDATEs run as
                      two-phase commits, one mid-run rebalance
                      migrates ~10%% of the fleet between shards, and
                      the directed fleet's digest is cross-checked
                      against a direct in-process shadow replay of the
                      identical seeded trace.  With --soak SECS, runs
                      complete sharded cycles back to back
  --quiet             no per-phase progress|};
  exit 2

(* ------------------------------------------------------------------ *)
(* Options                                                             *)
(* ------------------------------------------------------------------ *)

let sessions = ref 100
let seed = ref 42
let events = ref 50
let updates = ref 2
let batch = ref 8
let policy = ref H.Scheduler.Round_robin
let queue_capacity = ref 64
let queue_policy = ref H.Backpressure.Drop_oldest
let admission = ref None
let cache = ref false
let rows = ref 8
let width = ref 32
let jobs = ref 1
let digest = ref false
let soak = ref None
let rollout_soak = ref None
let quiet = ref false
let evaluator = ref Live_core.Machine.Compiled
let typecheck = ref H.Broadcast.Incremental
let edit_size = ref 0
let net = ref false
let conns = ref 0 (* 0 = auto: min (sessions, 16) *)
let detach_every = ref 0
let shards = ref 0 (* 0 = no director; N > 0 = directed N-shard fleet *)
let window = ref 1
let fork = ref false

let evaluator_name = function
  | Live_core.Machine.Subst -> "subst"
  | Live_core.Machine.Compiled -> "compiled"

let other_evaluator = function
  | Live_core.Machine.Subst -> Live_core.Machine.Compiled
  | Live_core.Machine.Compiled -> Live_core.Machine.Subst

let parse_args () =
  let rec parse = function
    | [] -> ()
    | "--sessions" :: v :: rest ->
        sessions := int_of_string v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--events" :: v :: rest ->
        events := int_of_string v;
        parse rest
    | "--updates" :: v :: rest ->
        updates := int_of_string v;
        parse rest
    | "--batch" :: v :: rest ->
        batch := int_of_string v;
        parse rest
    | "--policy" :: v :: rest -> (
        match H.Scheduler.policy_of_string v with
        | Some p ->
            policy := p;
            parse rest
        | None ->
            Printf.eprintf "unknown policy %S\n" v;
            usage ())
    | "--queue-capacity" :: v :: rest ->
        queue_capacity := int_of_string v;
        parse rest
    | "--queue-policy" :: v :: rest -> (
        match H.Backpressure.policy_of_string v with
        | Some p ->
            queue_policy := p;
            parse rest
        | None ->
            Printf.eprintf "unknown queue policy %S\n" v;
            usage ())
    | "--admission" :: v :: rest ->
        admission := Some (int_of_string v);
        parse rest
    | "--cache" :: rest ->
        cache := true;
        parse rest
    | "--rows" :: v :: rest ->
        rows := int_of_string v;
        parse rest
    | "--width" :: v :: rest ->
        width := int_of_string v;
        parse rest
    | "--jobs" :: v :: rest ->
        jobs := int_of_string v;
        if !jobs < 1 then begin
          prerr_endline "--jobs must be >= 1";
          usage ()
        end;
        parse rest
    | "--evaluator" :: v :: rest -> (
        match v with
        | "subst" ->
            evaluator := Live_core.Machine.Subst;
            parse rest
        | "compiled" ->
            evaluator := Live_core.Machine.Compiled;
            parse rest
        | _ ->
            Printf.eprintf "unknown evaluator %S (subst | compiled)\n" v;
            usage ())
    | "--typecheck" :: v :: rest -> (
        match v with
        | "scratch" ->
            typecheck := H.Broadcast.Scratch;
            parse rest
        | "incremental" ->
            typecheck := H.Broadcast.Incremental;
            parse rest
        | "both" ->
            typecheck := H.Broadcast.Cross_check;
            parse rest
        | _ ->
            Printf.eprintf "unknown typecheck mode %S (scratch | incremental | both)\n" v;
            usage ())
    | "--edit-size" :: v :: rest ->
        edit_size := int_of_string v;
        if !edit_size < 0 then begin
          prerr_endline "--edit-size must be >= 0";
          usage ()
        end;
        parse rest
    | "--digest" :: rest ->
        digest := true;
        parse rest
    | "--soak" :: v :: rest ->
        soak := Some (float_of_string v);
        parse rest
    | "--rollout-soak" :: v :: rest ->
        rollout_soak := Some (float_of_string v);
        parse rest
    | "--net" :: rest ->
        net := true;
        parse rest
    | "--conns" :: v :: rest ->
        conns := int_of_string v;
        parse rest
    | "--detach-every" :: v :: rest ->
        detach_every := int_of_string v;
        parse rest
    | "--shards" :: v :: rest ->
        shards := int_of_string v;
        parse rest
    | "--window" :: v :: rest ->
        window := int_of_string v;
        parse rest
    | "--fork" :: rest ->
        fork := true;
        parse rest
    | "--quiet" :: rest ->
        quiet := true;
        parse rest
    | other :: _ ->
        Printf.eprintf "unknown option %S\n" other;
        usage ()
  in
  try parse (List.tl (Array.to_list Sys.argv)) with Failure _ -> usage ()

(** Reject nonsensical flag combinations up front, before any fleet is
    spawned — a bad invocation must die with a usage message, never
    silently ignore one of its flags (the old behaviour when --soak
    and --rollout-soak were both given). *)
let validate_flags () =
  let err m =
    prerr_endline m;
    usage ()
  in
  if !sessions < 1 then err "--sessions must be >= 1";
  if !events < 1 then err "--events must be >= 1";
  if !updates < 0 then err "--updates must be >= 0";
  if !batch < 1 then err "--batch must be >= 1";
  if !queue_capacity < 1 then err "--queue-capacity must be >= 1";
  (match !admission with
  | Some a when a < 1 -> err "--admission must be >= 1"
  | _ -> ());
  if !rows < 1 then err "--rows must be >= 1";
  if !width < 4 then err "--width must be >= 4";
  (match !soak with
  | Some s when s <= 0. -> err "--soak seconds must be > 0"
  | _ -> ());
  (match !rollout_soak with
  | Some s when s <= 0. -> err "--rollout-soak seconds must be > 0"
  | _ -> ());
  if !soak <> None && !rollout_soak <> None then
    err "--soak and --rollout-soak are mutually exclusive";
  if !net && !rollout_soak <> None then
    err "--net does not support --rollout-soak";
  if !net && !jobs <> 1 then
    err "--net drives the sequential scheduler; drop --jobs";
  if !shards < 0 then err "--shards must be >= 1";
  if !shards > 0 && !net then
    err "--shards already drives the fleet over the wire; drop --net";
  if !shards > 0 && !rollout_soak <> None then
    err "--shards does not support --rollout-soak";
  if !shards > 0 && !jobs <> 1 then
    err "--shards drives the sequential scheduler per shard; drop --jobs";
  if !shards > 0 && !detach_every <> 0 then
    err "--shards digest-checks by global id; drop --detach-every";
  if !shards > 0 && !edit_size <> 0 then
    err "--shards broadcasts whole-program versions; drop --edit-size";
  if (not !net) && !shards = 0 && !conns <> 0 then
    err "--conns requires --net or --shards";
  if !window < 1 then err "--window must be >= 1";
  if !window > 1 && (not !net) && !shards = 0 then
    err "--window requires --net or --shards";
  if !fork && !shards = 0 then err "--fork requires --shards";
  if (not !net) && !detach_every <> 0 then err "--detach-every requires --net";
  if !conns < 0 then err "--conns must be >= 1";
  if !conns > 256 then err "--conns must be <= 256 (select fd budget)";
  if !detach_every < 0 then err "--detach-every must be >= 0";
  if (!net || !shards > 0) && !conns = 0 then conns := min !sessions 16;
  if (!net || !shards > 0) && !conns > !sessions then conns := !sessions;
  if !jobs > Domain.recommended_domain_count () then
    Printf.eprintf
      "warning: --jobs %d exceeds the recommended domain count (%d); expect \
       oversubscription, not speedup\n\
       %!"
      !jobs
      (Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let failures : string list ref = ref []
let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt

let compile_version (v : int) : Live_core.Program.t =
  (Live_workloads.Synthetic.compile_exn
     (Live_workloads.Synthetic.host_app ~cold:!edit_size ~rows:!rows
        ~version:v ()))
    .Live_surface.Compile.core

(** An [--edit-size]-definition structural edit: bump the initial
    values of the app's cold globals [c0..c{n-1}] with
    [Program.with_def], leaving every other definition {e physically}
    shared with the current program.  This is how a real editor-driven
    host would hand an edit to the broadcast — only the touched
    definitions are new values — and it is what makes the diff's
    unchanged-classification O(1) per untouched definition.  [stamp]
    makes the edit deterministic per version so lockstep fleets
    derive identical programs. *)
let structural_edit (reg : H.Registry.t) ~(stamp : int) (n : int) :
    Live_core.Program.t =
  let module P = Live_core.Program in
  let p = ref (H.Registry.program reg) in
  for i = 0 to n - 1 do
    let name = Printf.sprintf "c%d" i in
    match P.find !p name with
    | Some (P.Global { name; ty; _ }) ->
        p :=
          P.with_def !p
            (P.Global
               {
                 name;
                 ty;
                 init = Live_core.Ast.VNum (float_of_int ((1000 * stamp) + i));
               })
    | _ -> fail "--edit-size: cold global %s not found" name
  done;
  !p

(** The next broadcast's program: a structural edit of the current one
    ([--edit-size] > 0) or a whole-source version bump. *)
let next_edit (reg : H.Registry.t) (version : int) : Live_core.Program.t =
  if !edit_size > 0 then structural_edit reg ~stamp:version !edit_size
  else compile_version version

(** One seeded user event: mostly taps across the app's tappable band
    (some deliberately miss), occasionally BACK.  Each session draws
    from its own derived stream, so fleets of different sizes replay
    identical per-session behaviour. *)
let gen_event (rng : Prng.t) : H.Registry.uevent =
  if Prng.int rng 10 = 0 then H.Registry.Back
  else
    H.Registry.Tap
      { x = Prng.int rng !width; y = Prng.int rng (!rows + 3) }

let say fmt =
  Printf.ksprintf
    (fun s ->
      if not !quiet then begin
        print_string s;
        flush stdout
      end)
    fmt

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)
(* ------------------------------------------------------------------ *)

(** The execution driver: [--jobs 1] replays through the sequential
    {!Live_host.Scheduler}, [--jobs J>1] through the
    {!Live_host.Parallel} domain pool.  Same trace, same final fleet
    state either way — that is the pool's determinism contract. *)
type driver = {
  dr_tick : unit -> unit;
  dr_drain : unit -> (int, string) result;
  dr_update :
    Live_core.Program.t ->
    (H.Broadcast.report, Live_core.Machine.error) result;
  dr_snapshot : unit -> H.Host_metrics.snapshot;
  dr_excl : (unit -> unit) -> unit;
      (** stop-the-world section for rollout stages (no-op when
          sequential, {!Live_host.Parallel.exclusive} on the pool) *)
  dr_shutdown : unit -> unit;
}

let check_fleet (reg : H.Registry.t) (where : string) =
  match H.Registry.check_invariants reg with
  | [] -> ()
  | vs ->
      List.iter
        (fun (id, m) -> fail "%s: session %d violates invariant: %s" where id m)
        (if List.length vs > 5 then [ List.hd vs ] else vs);
      if List.length vs > 5 then
        fail "%s: ... and %d more invariant violations" where
          (List.length vs - 1)

let check_accounting (s : H.Host_metrics.snapshot) (where : string) =
  if not (H.Host_metrics.accounting_ok s) then
    fail
      "%s: dropped-event accounting mismatch: in=%d processed=%d dropped=%d \
       rejected=%d pending=%d"
      where s.H.Host_metrics.s_events_in s.H.Host_metrics.s_events_processed
      s.H.Host_metrics.s_events_dropped s.H.Host_metrics.s_events_rejected
      s.H.Host_metrics.s_pending

let broadcast ?(silent = false) (dr : driver) (version : int)
    (code : Live_core.Program.t) =
  match dr.dr_update code with
  | Ok r ->
      if not silent then begin
        say "  broadcast v%d: %d sessions in %.2f ms (%d globals reset)\n"
          version
          (List.length r.H.Broadcast.outcomes)
          (r.H.Broadcast.fanout_ns /. 1e6)
          r.H.Broadcast.dropped_globals;
        say
          "    typecheck %s %.3f ms; diff %.3f ms (%d dirty / %d rechecked \
           defs); compile %.3f ms\n"
          (if r.H.Broadcast.incremental then "incremental" else "scratch")
          (r.H.Broadcast.typecheck_ns /. 1e6)
          (r.H.Broadcast.diff_ns /. 1e6)
          r.H.Broadcast.dirty_defs r.H.Broadcast.recheck_defs
          (r.H.Broadcast.compile_ns /. 1e6)
      end;
      List.iter
        (fun o ->
          match o.H.Broadcast.outcome with
          | Ok _ -> ()
          | Error e ->
              fail "broadcast v%d: session %d failed: %s" version
                o.H.Broadcast.id
                (Live_core.Machine.error_to_string e))
        r.H.Broadcast.outcomes
  | Error e ->
      fail "broadcast v%d rejected: %s" version
        (Live_core.Machine.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Modes                                                               *)
(* ------------------------------------------------------------------ *)

let make_fleet ?ev ?j ?tc () : H.Registry.t * driver =
  let ev = match ev with Some e -> e | None -> !evaluator in
  let jobs = match j with Some j -> j | None -> !jobs in
  let tc = match tc with Some t -> t | None -> !typecheck in
  let cfg =
    {
      H.Registry.default_config with
      H.Registry.width = !width;
      cache = !cache;
      queue_capacity = !queue_capacity;
      queue_policy = !queue_policy;
      admission_limit = !admission;
      evaluator = ev;
    }
  in
  let reg = H.Registry.create ~config:cfg (compile_version 0) in
  (match H.Registry.spawn_many reg !sessions with
  | Ok _ -> ()
  | Error e ->
      Printf.eprintf "spawn failed: %s\n" (Live_core.Machine.error_to_string e);
      exit 1);
  if jobs = 1 then
    let sched = H.Scheduler.create ~policy:!policy ~batch:!batch reg in
    ( reg,
      {
        dr_tick = (fun () -> ignore (H.Scheduler.tick sched));
        dr_drain = (fun () -> H.Scheduler.drain sched);
        dr_update = (fun code -> H.Broadcast.update ~typecheck:tc reg code);
        dr_snapshot = (fun () -> H.Registry.snapshot reg);
        dr_excl = (fun f -> f ());
        dr_shutdown = ignore;
      } )
  else begin
    (* the pool's shard assignment is always hottest-first LPT *)
    say "pool: %d worker domains\n" jobs;
    let pool = H.Parallel.create ~jobs ~batch:!batch reg in
    ( reg,
      {
        dr_tick = (fun () -> ignore (H.Parallel.tick pool));
        dr_drain = (fun () -> H.Parallel.drain pool);
        dr_update = (fun code -> H.Parallel.update ~typecheck:tc pool code);
        dr_snapshot = (fun () -> H.Parallel.snapshot pool);
        dr_excl = (fun f -> H.Parallel.exclusive pool f);
        dr_shutdown =
          (fun () ->
            (match H.Parallel.barrier_violations pool with
            | 0 -> ()
            | v -> fail "%d broadcast barrier violation(s)" v);
            H.Parallel.shutdown pool);
      } )
  end

(** Per-round burst for one session: 1-3 events, so pending batches
    build up and the scheduler's render coalescing has work to do. *)
let offer_burst (reg : H.Registry.t) (rng : Prng.t) (id : H.Registry.id) =
  for _ = 0 to Prng.int rng 3 do
    ignore (H.Registry.offer reg id (gen_event rng))
  done

(** Seeded load run: [events] rounds; each round offers a small burst
    per session then ticks once, and the configured number of
    broadcasts fire at evenly spaced mid-stream rounds. *)
let run_load () : H.Registry.t * driver =
  let t0 = Unix.gettimeofday () in
  let reg, dr = make_fleet () in
  (* under --typecheck both, a lockstep shadow fleet replays the whole
     run with scratch-mode broadcasts on the sequential scheduler; the
     final MD5 digests must agree — end-to-end evidence that the
     incremental pipeline (typecheck reuse, targeted fix-up, cache
     retargeting) is observationally invisible *)
  let shadow =
    if !typecheck = H.Broadcast.Cross_check then
      Some (make_fleet ~j:1 ~tc:H.Broadcast.Scratch ())
    else None
  in
  say "fleet: %d sessions up in %.2f s%s\n" (H.Registry.size reg)
    (Unix.gettimeofday () -. t0)
    (if shadow <> None then " (+ scratch-typecheck shadow fleet)" else "");
  let ids = Array.of_list (H.Registry.ids reg) in
  let rngs = Array.map (fun id -> Prng.create (Prng.derive !seed id)) ids in
  let srngs = Array.map (fun id -> Prng.create (Prng.derive !seed id)) ids in
  let update_rounds =
    (* mid-stream: never round 0, never after the last round *)
    List.init !updates (fun u -> max 1 ((!events * (u + 1)) / (!updates + 1)))
  in
  let version = ref 0 in
  let t1 = Unix.gettimeofday () in
  for round = 0 to !events - 1 do
    Array.iteri (fun i id -> offer_burst reg rngs.(i) id) ids;
    dr.dr_tick ();
    Option.iter
      (fun (sreg, sdr) ->
        Array.iteri (fun i id -> offer_burst sreg srngs.(i) id) ids;
        sdr.dr_tick ())
      shadow;
    if List.mem round update_rounds then begin
      incr version;
      broadcast dr !version (next_edit reg !version);
      Option.iter
        (fun (sreg, sdr) ->
          broadcast ~silent:true sdr !version (next_edit sreg !version))
        shadow
    end
  done;
  (match dr.dr_drain () with
  | Ok _ -> ()
  | Error m -> fail "drain: %s" m);
  let dt = Unix.gettimeofday () -. t1 in
  check_fleet reg "end of run";
  check_accounting (dr.dr_snapshot ()) "end of run";
  Option.iter
    (fun (sreg, sdr) ->
      (match sdr.dr_drain () with
      | Ok _ -> ()
      | Error m -> fail "shadow drain: %s" m);
      check_fleet sreg "end of run (scratch shadow)";
      let d = H.Registry.digest reg and sd = H.Registry.digest sreg in
      if String.equal d sd then
        say
          "typecheck cross-check: incremental and scratch fleets \
           digest-identical (%s)\n"
          d
      else
        fail
          "typecheck cross-check: incremental fleet digest %s <> scratch \
           fleet digest %s — the broadcast pipelines diverged"
          d sd;
      sdr.dr_shutdown ())
    shadow;
  let s = dr.dr_snapshot () in
  say "load: %d events in %.2f s (%.0f events/s)\n"
    s.H.Host_metrics.s_events_processed dt
    (float_of_int s.H.Host_metrics.s_events_processed /. dt);
  (reg, dr)

(** Wall-clock soak: offer-and-tick continuously, broadcast roughly
    once a second, re-check the fleet invariants and the accounting
    identity at every broadcast.

    The soak also exercises the evaluator-equivalence contract: a
    {e shadow} fleet running the other execution engine (compiled vs
    substitution) replays the exact same event trace in lockstep — same
    per-session seeds, same bursts, same broadcast rounds — on the
    sequential scheduler, and the two fleets' MD5 state digests must
    agree at the end.  A single diverging value anywhere in any
    session's store, page stack, or display fails the run. *)
let run_soak (secs : float) : H.Registry.t * driver =
  let reg, dr = make_fleet () in
  let shadow_ev = other_evaluator !evaluator in
  let sreg, sdr = make_fleet ~ev:shadow_ev ~j:1 () in
  say
    "soak: %d sessions for %.0f s, ~1 broadcast/s; lockstep %s shadow fleet \
     for the digest cross-check\n"
    (H.Registry.size reg) secs (evaluator_name shadow_ev);
  let ids = Array.of_list (H.Registry.ids reg) in
  let rngs = Array.map (fun id -> Prng.create (Prng.derive !seed id)) ids in
  let srngs = Array.map (fun id -> Prng.create (Prng.derive !seed id)) ids in
  let t0 = Unix.gettimeofday () in
  let last_update = ref t0 in
  let version = ref 0 in
  while Unix.gettimeofday () -. t0 < secs do
    Array.iteri (fun i id -> offer_burst reg rngs.(i) id) ids;
    Array.iteri (fun i id -> offer_burst sreg srngs.(i) id) ids;
    dr.dr_tick ();
    sdr.dr_tick ();
    let now = Unix.gettimeofday () in
    if now -. !last_update >= 1.0 then begin
      last_update := now;
      incr version;
      broadcast dr !version (next_edit reg !version);
      broadcast ~silent:true sdr !version (next_edit sreg !version);
      check_fleet reg (Printf.sprintf "soak t=%.0fs" (now -. t0));
      check_accounting (dr.dr_snapshot ())
        (Printf.sprintf "soak t=%.0fs" (now -. t0))
    end
  done;
  (match dr.dr_drain () with
  | Ok _ -> ()
  | Error m -> fail "drain: %s" m);
  (match sdr.dr_drain () with
  | Ok _ -> ()
  | Error m -> fail "shadow drain: %s" m);
  check_fleet reg "end of soak";
  check_fleet sreg "end of soak (shadow)";
  check_accounting (dr.dr_snapshot ()) "end of soak";
  let d = H.Registry.digest reg and sd = H.Registry.digest sreg in
  if String.equal d sd then
    say "soak cross-check: %s and %s fleets digest-identical (%s)\n"
      (evaluator_name !evaluator) (evaluator_name shadow_ev) d
  else
    fail
      "soak cross-check: %s fleet digest %s <> %s fleet digest %s — the \
       evaluators diverged"
      (evaluator_name !evaluator) d (evaluator_name shadow_ev) sd;
  sdr.dr_shutdown ();
  (reg, dr)

(** Wall-clock staged-rollout soak: continuous fleet-wide traffic, and
    every ~5 s a full rollout lifecycle — stage a change set as a
    second epoch, canary it on a deterministic cohort under live
    window traffic, observe both cohorts, then resolve with a seeded
    coin flip.

    The equivalence contract rides a lockstep {e flat} shadow fleet on
    the sequential scheduler: when the coin says promote, the shadow
    takes the same change set as one plain broadcast at the canary
    point; when it says rollback, the shadow never sees the edit at
    all.  Window traffic is routed so both fleets provably serve the
    same trace under the same code (canary cohort only while a promote
    is pending; everyone during a rollback window, which the journal
    replay then erases).  At the end the two MD5 digests must agree —
    promote ≡ one-shot broadcast, rollback ≡ never rolled out, under
    sustained load.  Any divergence, invariant violation, cohort
    accounting mismatch, or epoch crossing is a nonzero exit. *)
let run_rollout_soak (secs : float) : H.Registry.t * driver =
  let reg, dr = make_fleet () in
  let sreg, sdr = make_fleet ~j:1 () in
  say
    "rollout soak: %d sessions for %.0f s, staged rollout every ~5 s \
     (seeded promote/rollback); lockstep flat-broadcast shadow fleet for \
     the digest cross-check\n"
    (H.Registry.size reg) secs;
  let ids = Array.of_list (H.Registry.ids reg) in
  let index = Hashtbl.create (Array.length ids) in
  Array.iteri (fun i id -> Hashtbl.replace index id i) ids;
  let rngs = Array.map (fun id -> Prng.create (Prng.derive !seed id)) ids in
  let srngs = Array.map (fun id -> Prng.create (Prng.derive !seed id)) ids in
  (* one round of lockstep traffic to [targets] on both fleets; each
     session draws from its own stream, so restricting the target list
     keeps the two fleets' RNG consumption aligned *)
  let round targets =
    List.iter
      (fun id ->
        let i = Hashtbl.find index id in
        offer_burst reg rngs.(i) id;
        offer_burst sreg srngs.(i) id)
      targets;
    dr.dr_tick ();
    sdr.dr_tick ()
  in
  let all = Array.to_list ids in
  let crng = Prng.create (Prng.derive !seed 999_983) in
  let version = ref 0 in
  let promoted = ref 0 and rolled_back = ref 0 in
  let t0 = Unix.gettimeofday () in
  let last_rollout = ref t0 in
  while Unix.gettimeofday () -. t0 < secs do
    round all;
    let now = Unix.gettimeofday () in
    if now -. !last_rollout >= 5.0 then begin
      last_rollout := now;
      incr version;
      let promote = Prng.bool crng in
      let target = next_edit reg !version in
      let ro = ref None in
      dr.dr_excl (fun () ->
          match
            H.Rollout.begin_ ~typecheck:!typecheck ~fraction:0.25
              ~seed:(Prng.derive !seed (7_000 + !version))
              reg target
          with
          | Ok r -> ro := Some r
          | Error e ->
              fail "rollout v%d refused: %s" !version
                (Live_core.Machine.error_to_string e));
      match !ro with
      | None -> ()
      | Some r ->
          let window = if promote then H.Rollout.canary_ids r else all in
          for _ = 1 to 3 do
            round window
          done;
          dr.dr_excl (fun () ->
              List.iter
                (fun o ->
                  match o.H.Broadcast.outcome with
                  | Ok _ -> ()
                  | Error e ->
                      fail "rollout v%d: canary %d failed: %s" !version
                        o.H.Broadcast.id
                        (Live_core.Machine.error_to_string e))
                (H.Rollout.canary r));
          if promote then
            broadcast ~silent:true sdr !version (next_edit sreg !version);
          for _ = 1 to 3 do
            round window
          done;
          let h = H.Rollout.observe r in
          if not (H.Rollout.healthy h) then
            fail "rollout v%d unhealthy mid-canary: %s" !version
              (H.Rollout.summary r);
          dr.dr_excl (fun () ->
              if promote then begin
                incr promoted;
                List.iter
                  (fun o ->
                    match o.H.Broadcast.outcome with
                    | Ok _ -> ()
                    | Error e ->
                        fail "rollout v%d: promote of %d failed: %s" !version
                          o.H.Broadcast.id
                          (Live_core.Machine.error_to_string e))
                  (H.Rollout.promote r)
              end
              else begin
                incr rolled_back;
                List.iter
                  (fun (id, e) ->
                    fail "rollout v%d: rollback replay of %d failed: %s"
                      !version id
                      (Live_core.Machine.error_to_string e))
                  (H.Rollout.rollback r)
              end);
          (match H.Registry.check_epochs reg with
          | [] -> ()
          | vs ->
              List.iter
                (fun (id, m) ->
                  fail "rollout v%d: session %d crosses epochs: %s" !version
                    id m)
                vs);
          check_fleet reg (Printf.sprintf "after rollout v%d" !version);
          check_accounting (dr.dr_snapshot ())
            (Printf.sprintf "after rollout v%d" !version);
          say "  rollout v%d %s (t=%.0fs)\n" !version
            (if promote then "promoted" else "rolled back")
            (now -. t0)
    end
  done;
  (match dr.dr_drain () with
  | Ok _ -> ()
  | Error m -> fail "drain: %s" m);
  (match sdr.dr_drain () with
  | Ok _ -> ()
  | Error m -> fail "shadow drain: %s" m);
  check_fleet reg "end of rollout soak";
  check_fleet sreg "end of rollout soak (flat shadow)";
  check_accounting (dr.dr_snapshot ()) "end of rollout soak";
  if !version = 0 then fail "no rollout was staged during the soak";
  let d = H.Registry.digest reg and sd = H.Registry.digest sreg in
  if String.equal d sd then
    say
      "rollout cross-check: staged fleet (%d promoted, %d rolled back) and \
       flat fleet digest-identical (%s)\n"
      !promoted !rolled_back d
  else
    fail
      "rollout cross-check: staged fleet digest %s <> flat fleet digest %s \
       — promote/rollback is not equivalent to the flat path"
      d sd;
  sdr.dr_shutdown ();
  (reg, dr)

(* ------------------------------------------------------------------ *)
(* The networked fleet (lib/net)                                       *)
(* ------------------------------------------------------------------ *)

let to_wire_event : H.Registry.uevent -> Live_net.Wire.event = function
  | H.Registry.Tap { x; y } -> Live_net.Wire.Ev_tap { x; y }
  | H.Registry.Back -> Live_net.Wire.Ev_back

let net_config () =
  {
    H.Registry.default_config with
    H.Registry.width = !width;
    cache = !cache;
    queue_capacity = !queue_capacity;
    queue_policy = !queue_policy;
    admission_limit = !admission;
    evaluator = !evaluator;
  }

(** The fleet digest in {e slot} order rather than id order: resumed
    sessions come back under fresh ids, so the socket fleet and the
    direct shadow fleet can only be compared by what each slot
    observes, not by the ids it happens to hold. *)
let slot_digest (reg : H.Registry.t) (ids : int list) : string =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun i id ->
      Buffer.add_string buf (Printf.sprintf "== slot %d ==\n" i);
      match H.Registry.session reg id with
      | None -> Buffer.add_string buf "<missing>\n"
      | Some s -> Buffer.add_string buf (H.Registry.observe_session s))
    ids;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(** One complete networked run: an in-process {!Live_net.Server} on a
    real Unix-domain socket, the lockstep {!Live_net.Client} driving
    one seeded event per session per round (with optional periodic
    detach/resume), broadcasts at the same evenly spaced rounds as the
    direct load mode — then the {e transport invariance} check: a
    direct in-process fleet replays the identical seeded trace and the
    two fleets' slot-order digests must agree.  The client's
    delta-reconstructed frames are also checked byte-for-byte against
    the server's screenshots, so the damage protocol itself is
    verified end to end on every run. *)
let run_net_rounds ~(seed : int) ~(rounds : int) ~(detach_every : int)
    ~(label : string) : H.Registry.t * driver =
  let module Server = Live_net.Server in
  let module Client = Live_net.Client in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "itsalive-net-%d.sock" (Unix.getpid ()))
  in
  let srv =
    Server.create ~config:(net_config ()) ~batch:!batch ~socket
      (compile_version 0)
  in
  let reg = Server.registry srv in
  let pump () = ignore (Server.step ~timeout:0. srv) in
  let rngs = Array.init !sessions (fun s -> Prng.create (Prng.derive seed s)) in
  let gen ~slot ~round:_ = to_wire_event (gen_event rngs.(slot)) in
  let update_rounds =
    List.init !updates (fun u -> max 1 (rounds * (u + 1) / (!updates + 1)))
  in
  let version = ref 0 in
  let on_round r =
    if List.mem r update_rounds then begin
      incr version;
      (match
         H.Broadcast.update ~typecheck:!typecheck reg (next_edit reg !version)
       with
      | Ok _ -> ()
      | Error e ->
          fail "net broadcast v%d rejected: %s" !version
            (Live_core.Machine.error_to_string e));
      Server.mark_all_dirty srv
    end
  in
  say "%s: %d sessions over %d connections, %d rounds%s%s\n" label !sessions
    !conns rounds
    (if !window > 1 then Printf.sprintf ", window %d" !window else "")
    (if detach_every > 0 then
       Printf.sprintf ", detach/resume every %d rounds" detach_every
     else "");
  let t0 = Unix.gettimeofday () in
  let result =
    Client.run ~socket ~conns:!conns ~sessions:!sessions ~rounds ~gen
      ~window:!window
      ~barrier:(fun r -> List.mem r update_rounds)
      ?detach_every:(if detach_every > 0 then Some detach_every else None)
      ~on_round ~pump ~stats:true ()
  in
  let dt = Unix.gettimeofday () -. t0 in
  (* let the server process the goodbyes *)
  for _ = 1 to 50 do
    ignore (Server.step ~timeout:0. srv)
  done;
  (match result with
  | Error m -> fail "net client: %s" m
  | Ok r ->
      let p q = H.Host_metrics.quantile r.Client.latency q /. 1e6 in
      say "net: %d events in %.2f s (%.0f events/s end-to-end)\n"
        r.Client.events_sent dt
        (float_of_int r.Client.events_sent /. dt);
      say "net: e2e latency p50 %.3f ms  p99 %.3f ms  (%d samples, %d rejected)\n"
        (p 0.5) (p 0.99)
        (H.Host_metrics.hist_count r.Client.latency)
        r.Client.rejected;
      if r.Client.full_rows > 0 then
        say
          "net: damage deltas shipped %d rows vs %d full-repaint rows \
           (%.1f%%)\n"
          r.Client.delta_rows r.Client.full_rows
          (100.
          *. float_of_int r.Client.delta_rows
          /. float_of_int r.Client.full_rows);
      if r.Client.detaches > 0 then
        say "net: %d detaches, %d resumes (snapshots round-tripped the wire)\n"
          r.Client.detaches r.Client.resumes;
      (* the client's delta-reconstructed frames must equal the
         server's screenshots *)
      List.iteri
        (fun slot id ->
          match H.Registry.session reg id with
          | None -> fail "net: slot %d's session %d missing at end of run" slot id
          | Some s ->
              let want =
                Live_net.Wire.rows_of_text (Live_runtime.Session.screenshot s)
              in
              if want <> r.Client.frames.(slot) then
                fail
                  "net: slot %d's delta-reconstructed frame differs from the \
                   server's screenshot"
                  slot)
        r.Client.session_ids;
      (* transport invariance: the same seeded trace replayed on a
         direct in-process fleet must digest-agree, slot for slot *)
      let sreg = H.Registry.create ~config:(net_config ()) (compile_version 0) in
      (match H.Registry.spawn_many sreg !sessions with
      | Ok _ -> ()
      | Error e ->
          fail "net shadow spawn failed: %s"
            (Live_core.Machine.error_to_string e));
      let sched =
        H.Scheduler.create ~policy:H.Scheduler.Round_robin ~batch:!batch sreg
      in
      let srngs =
        Array.init !sessions (fun s -> Prng.create (Prng.derive seed s))
      in
      let sversion = ref 0 in
      for round = 0 to rounds - 1 do
        Array.iteri
          (fun s rng -> ignore (H.Registry.offer sreg s (gen_event rng)))
          srngs;
        (match H.Scheduler.drain sched with
        | Ok _ -> ()
        | Error m -> fail "net shadow drain: %s" m);
        if List.mem round update_rounds then begin
          incr sversion;
          match
            H.Broadcast.update ~typecheck:!typecheck sreg
              (next_edit sreg !sversion)
          with
          | Ok _ -> ()
          | Error e ->
              fail "net shadow broadcast v%d rejected: %s" !sversion
                (Live_core.Machine.error_to_string e)
        end
      done;
      check_fleet sreg (Printf.sprintf "%s (direct shadow)" label);
      let d = slot_digest reg r.Client.session_ids in
      let sd = slot_digest sreg (List.init !sessions Fun.id) in
      if String.equal d sd then
        say
          "net cross-check: socket fleet and direct fleet digest-identical \
           (%s)\n"
          d
      else
        fail
          "net cross-check: socket fleet digest %s <> direct fleet digest %s \
           — the wire changed behaviour"
          d sd);
  check_fleet reg (Printf.sprintf "%s: end of run" label);
  check_accounting (H.Registry.snapshot reg)
    (Printf.sprintf "%s: end of run" label);
  ( reg,
    {
      dr_tick = (fun () -> ignore (Server.step ~timeout:0. srv));
      dr_drain = (fun () -> Ok 0);
      dr_update =
        (fun code -> H.Broadcast.update ~typecheck:!typecheck reg code);
      dr_snapshot = (fun () -> H.Registry.snapshot reg);
      dr_excl = (fun f -> f ());
      dr_shutdown = (fun () -> Server.stop srv);
    } )

let run_net () : H.Registry.t * driver =
  run_net_rounds ~seed:!seed ~rounds:!events ~detach_every:!detach_every
    ~label:"net"

(** Wall-clock net soak: complete networked cycles (fresh server,
    fresh fleet, seeded traffic with periodic detach/resume,
    mid-stream broadcasts, digest cross-check against the direct
    shadow) back to back until the budget runs out.  Every chunk
    derives a fresh master seed, so an hour of soaking explores an
    hour's worth of distinct traffic, and every chunk enforces the
    full transport-invariance and accounting contract. *)
let run_net_soak (secs : float) : H.Registry.t * driver =
  let de = if !detach_every > 0 then !detach_every else 5 in
  let t0 = Unix.gettimeofday () in
  let chunk = ref 0 in
  let current = ref None in
  while !chunk = 0 || Unix.gettimeofday () -. t0 < secs do
    (match !current with Some (_, dr) -> dr.dr_shutdown () | None -> ());
    current :=
      Some
        (run_net_rounds
           ~seed:(Prng.derive !seed (424_242 + !chunk))
           ~rounds:!events ~detach_every:de
           ~label:(Printf.sprintf "net soak chunk %d" !chunk));
    incr chunk
  done;
  say "net soak: %d chunks in %.0f s\n" !chunk (Unix.gettimeofday () -. t0);
  Option.get !current

(* ------------------------------------------------------------------ *)
(* The directed multi-shard fleet (lib/net/director)                   *)
(* ------------------------------------------------------------------ *)

(** One complete sharded run: N in-process shard servers behind a
    {!Live_net.Director}, the lockstep client driving the fleet through
    the director's socket.  Broadcasts go over the wire as [Update]
    frames, so they exercise the two-phase prepare/commit across every
    shard; one mid-run [Rebalance] migrates ~10%% of the fleet between
    shards under traffic.  The check is the ISSUE's acceptance
    criterion verbatim: the directed fleet's digest (by global id) must
    be byte-identical to a direct in-process shadow fleet replaying the
    same seeded trace — sharding, the wire, two-phase UPDATE, and live
    migration must all be observationally invisible. *)
let run_sharded_rounds ~(seed : int) ~(rounds : int) ~(label : string) :
    H.Registry.t * driver =
  let module Server = Live_net.Server in
  let module Client = Live_net.Client in
  let module Director = Live_net.Director in
  let module Wire = Live_net.Wire in
  let n = !shards in
  let sockpath i =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "itsalive-shard-%d-%d.sock" (Unix.getpid ()) i)
  in
  (* --fork: each shard is a real child process running its own select
     loop on its own core — the director connects to the children's
     sockets exactly as it would to remote hosts ({!Director.create}
     retries for up to 10 s while the children bind).  Without --fork
     the shards are in-process servers co-scheduled on this thread via
     [pump_shards] (a no-op in fork mode: the children schedule
     themselves). *)
  let shard_pids, shard_srvs =
    if !fork then
      ( Array.init n (fun i ->
            (* resolve the path before forking: [sockpath] embeds the
               calling process's pid, and the director will connect to
               the parent-pid name *)
            let path = sockpath i in
            match Unix.fork () with
            | 0 ->
                let srv =
                  Server.create ~config:(net_config ()) ~batch:!batch
                    ~socket:path (compile_version 0)
                in
                Server.run ~until:(fun () -> false) srv;
                Stdlib.exit 0
            | pid -> pid),
        [||] )
    else
      ( [||],
        Array.init n (fun i ->
            Server.create ~config:(net_config ()) ~batch:!batch
              ~socket:(sockpath i) (compile_version 0)) )
  in
  let pump_shards () =
    Array.iter (fun s -> ignore (Server.step ~timeout:0. s)) shard_srvs
  in
  let dpath = sockpath 9999 in
  let dir =
    Director.create ~pump:pump_shards ~socket:dpath
      ~shards:(List.init n sockpath) ()
  in
  let pump () =
    pump_shards ();
    ignore (Director.step ~timeout:0. dir)
  in
  (* a pump-aware admin connection for the fleet-wide control frames *)
  let afd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect afd (Unix.ADDR_UNIX dpath);
  Unix.set_nonblock afd;
  let abuf = Buffer.create 1024 and aoff = ref 0 in
  let admin_send f =
    let payload = Wire.encode (Wire.Client f) in
    let len = String.length payload in
    let off = ref 0 in
    while !off < len do
      match Unix.write_substring afd payload !off (len - !off) with
      | k -> off := !off + k
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          pump ()
    done
  in
  let achunk = Bytes.create 65536 in
  let rec admin_recv () =
    let data = Buffer.contents abuf in
    match Wire.decode ~off:!aoff data with
    | Wire.Frame (Wire.Host f, k) ->
        aoff := !aoff + k;
        if !aoff = String.length data then begin
          Buffer.clear abuf;
          aoff := 0
        end;
        f
    | Wire.Frame (Wire.Client _, _) ->
        failwith "client-tagged frame from the director"
    | Wire.Corrupt m -> failwith ("corrupt director reply: " ^ m)
    | Wire.Need_more ->
        pump ();
        (match Unix.read afd achunk 0 (Bytes.length achunk) with
        | 0 -> failwith "director closed the admin connection"
        | k -> Buffer.add_subbytes abuf achunk 0 k
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            ());
        admin_recv ()
  in
  let admin_rpc f =
    admin_send f;
    admin_recv ()
  in
  let rngs = Array.init !sessions (fun s -> Prng.create (Prng.derive seed s)) in
  let gen ~slot ~round:_ = to_wire_event (gen_event rngs.(slot)) in
  let update_rounds =
    List.init !updates (fun u -> max 1 (rounds * (u + 1) / (!updates + 1)))
  in
  let rebalance_round = max 1 (rounds / 2) in
  let rebalance_count = max 1 (!sessions / 10) in
  let version = ref 0 in
  let on_round r =
    if List.mem r update_rounds then begin
      incr version;
      match
        admin_rpc
          (Wire.Update
             {
               program =
                 Live_net.Snapshot.program_to_string (compile_version !version);
             })
      with
      | Wire.Ack _ -> ()
      | Wire.Error { code; msg } ->
          fail "%s: two-phase update v%d refused (%d): %s" label !version code
            msg
      | _ -> fail "%s: unexpected reply to Update" label
    end;
    if r = rebalance_round then
      match admin_rpc (Wire.Rebalance { count = rebalance_count }) with
      | Wire.Ack _ -> ()
      | Wire.Error { code; msg } ->
          fail "%s: rebalance refused (%d): %s" label code msg
      | _ -> fail "%s: unexpected reply to Rebalance" label
  in
  say "%s: %d sessions over %d shards%s (%d connections), %d rounds%s\n" label
    !sessions n
    (if !fork then " (forked processes)" else "")
    !conns rounds
    (if !window > 1 then Printf.sprintf ", window %d" !window else "");
  let t0 = Unix.gettimeofday () in
  let result =
    Client.run ~socket:dpath ~conns:!conns ~sessions:!sessions ~rounds ~gen
      ~window:!window
      ~barrier:(fun r -> List.mem r update_rounds || r = rebalance_round)
      ~on_round ~pump ~stats:true ()
  in
  let dt = Unix.gettimeofday () -. t0 in
  for _ = 1 to 50 do
    pump ()
  done;
  (* the direct in-process shadow: same seeded trace, same broadcast
     rounds, one flat fleet *)
  let sreg = H.Registry.create ~config:(net_config ()) (compile_version 0) in
  (match H.Registry.spawn_many sreg !sessions with
  | Ok _ -> ()
  | Error e ->
      fail "shard shadow spawn failed: %s" (Live_core.Machine.error_to_string e));
  let sched =
    H.Scheduler.create ~policy:H.Scheduler.Round_robin ~batch:!batch sreg
  in
  let srngs =
    Array.init !sessions (fun s -> Prng.create (Prng.derive seed s))
  in
  let sversion = ref 0 in
  for round = 0 to rounds - 1 do
    Array.iteri
      (fun s rng -> ignore (H.Registry.offer sreg s (gen_event rng)))
      srngs;
    (match H.Scheduler.drain sched with
    | Ok _ -> ()
    | Error m -> fail "shard shadow drain: %s" m);
    if List.mem round update_rounds then begin
      incr sversion;
      match
        H.Broadcast.update ~typecheck:!typecheck sreg (compile_version !sversion)
      with
      | Ok _ -> ()
      | Error e ->
          fail "shard shadow broadcast v%d rejected: %s" !sversion
            (Live_core.Machine.error_to_string e)
    end
  done;
  (match result with
  | Error m -> fail "%s client: %s" label m
  | Ok r ->
      let p q = H.Host_metrics.quantile r.Client.latency q /. 1e6 in
      say "%s: %d events in %.2f s (%.0f events/s end-to-end)\n" label
        r.Client.events_sent dt
        (float_of_int r.Client.events_sent /. dt);
      say
        "%s: e2e latency p50 %.3f ms  p99 %.3f ms  (%d samples, %d rejected)\n"
        label (p 0.5) (p 0.99)
        (H.Host_metrics.hist_count r.Client.latency)
        r.Client.rejected);
  let ds = Director.stats dir in
  say
    "%s: updates %d committed / %d rejected; rebalance moved %d sessions (%d \
     digest checks, %d failed)\n"
    label ds.Director.updates_committed ds.Director.updates_rejected
    ds.Director.sessions_moved ds.Director.digest_checks
    ds.Director.digest_failures;
  List.iter
    (fun (ep, k) -> say "%s:   %-40s %d sessions\n" label ep k)
    ds.Director.per_shard;
  if ds.Director.digest_failures > 0 then
    fail "%s: %d rebalance digest check(s) failed" label
      ds.Director.digest_failures;
  check_fleet sreg (Printf.sprintf "%s (direct shadow)" label);
  let d = Director.fleet_digest dir in
  let sd = H.Registry.digest sreg in
  if String.equal d sd then
    say "%s cross-check: directed fleet and direct fleet digest-identical (%s)\n"
      label d
  else
    fail
      "%s cross-check: directed fleet digest %s <> direct fleet digest %s — \
       sharding changed behaviour"
      label d sd;
  let merged_snapshot () =
    if !fork then
      (* the children's registries live in other processes; ask the
         director for the fleet-merged export over the wire *)
      match admin_rpc Wire.Stats_data with
      | Wire.Metrics { text } -> (
          match H.Host_metrics.import text with
          | Ok e -> H.Host_metrics.merge_exported [ e ]
          | Error m -> failwith ("director metrics import: " ^ m))
      | Wire.Error { code; msg } ->
          failwith (Printf.sprintf "director stats: error %d: %s" code msg)
      | _ -> failwith "unexpected reply to Stats_data"
    else
      Array.to_list shard_srvs
      |> List.map (fun s ->
             match
               H.Host_metrics.import
                 (H.Registry.export_metrics (Server.registry s))
             with
             | Ok e -> e
             | Error m -> failwith ("shard metrics import: " ^ m))
      |> H.Host_metrics.merge_exported
  in
  check_accounting (merged_snapshot ()) (Printf.sprintf "%s: end of run" label);
  ( sreg,
    {
      dr_tick = pump;
      dr_drain = (fun () -> Ok 0);
      dr_update =
        (fun code -> H.Broadcast.update ~typecheck:!typecheck sreg code);
      dr_snapshot = merged_snapshot;
      dr_excl = (fun f -> f ());
      dr_shutdown =
        (fun () ->
          (try Unix.close afd with Unix.Unix_error _ -> ());
          Director.stop dir;
          Array.iter Server.stop shard_srvs;
          Array.iter
            (fun pid ->
              (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
              ignore (Unix.waitpid [] pid))
            shard_pids;
          if !fork then
            for i = 0 to n - 1 do
              try Unix.unlink (sockpath i) with Unix.Unix_error _ -> ()
            done);
    } )

let run_sharded () : H.Registry.t * driver =
  run_sharded_rounds ~seed:!seed ~rounds:!events
    ~label:(Printf.sprintf "shards[%d]" !shards)

(** Wall-clock sharded soak: complete directed cycles (fresh shard
    servers, fresh director, seeded traffic, two-phase updates, a live
    rebalance, the digest cross-check) back to back until the budget
    runs out, each chunk under a fresh derived seed. *)
let run_sharded_soak (secs : float) : H.Registry.t * driver =
  let t0 = Unix.gettimeofday () in
  let chunk = ref 0 in
  let current = ref None in
  while !chunk = 0 || Unix.gettimeofday () -. t0 < secs do
    (match !current with Some (_, dr) -> dr.dr_shutdown () | None -> ());
    current :=
      Some
        (run_sharded_rounds
           ~seed:(Prng.derive !seed (515_151 + !chunk))
           ~rounds:!events
           ~label:(Printf.sprintf "shard soak chunk %d" !chunk));
    incr chunk
  done;
  say "shard soak: %d chunks in %.0f s\n" !chunk (Unix.gettimeofday () -. t0);
  Option.get !current

(* ------------------------------------------------------------------ *)

let () =
  parse_args ();
  validate_flags ();
  let reg, dr =
    if !shards > 0 then
      match !soak with
      | Some s -> run_sharded_soak s
      | None -> run_sharded ()
    else
      match (!net, !soak, !rollout_soak) with
      | true, Some s, None -> run_net_soak s
      | true, None, None -> run_net ()
      | false, _, Some s -> run_rollout_soak s
      | false, Some s, None -> run_soak s
      | false, None, None -> run_load ()
      | true, _, Some _ ->
          (* rejected by validate_flags *)
          assert false
  in
  let snap = dr.dr_snapshot () in
  dr.dr_shutdown ();
  print_newline ();
  print_string (H.Host_metrics.to_string snap);
  if !digest then Printf.printf "fleet digest: %s\n" (H.Registry.digest reg);
  (if !rollout_soak <> None then begin
     if snap.H.Host_metrics.s_rollouts_begun = 0 then
       fail "no rollout was begun during the run";
     if
       snap.H.Host_metrics.s_rollouts_promoted
       + snap.H.Host_metrics.s_rollouts_rolled_back
       = 0
     then fail "no rollout was resolved during the run"
   end
   else if snap.H.Host_metrics.s_updates_applied = 0 then
     fail "no broadcast update was applied during the run");
  match !failures with
  | [] ->
      Printf.printf "\nOK: zero invariant violations, accounting clean, %d \
                     broadcast update(s) applied\n"
        snap.H.Host_metrics.s_updates_applied;
      exit 0
  | fs ->
      Printf.printf "\nFAILED (%d problems):\n" (List.length fs);
      List.iter (fun f -> Printf.printf "  - %s\n" f) (List.rev fs);
      exit 1
