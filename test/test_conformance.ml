(** The conformance fuzzer itself ([lib/conformance]): the
    differential oracle must find nothing on the real system, must
    find a deliberately broken render cache and shrink it to a tiny
    witness of the same divergence class, traces must round-trip
    byte-identically, and the checked-in golden traces must replay. *)

open Live_conformance
open Helpers

(* -- the oracle on the real system --------------------------------- *)

let test_campaign_agrees () =
  let r = Engine.run_campaign ~iters:15 ~seed:42 () in
  Alcotest.(check int) "all iterations ran" 15 r.Engine.iters_run;
  match r.Engine.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "seed %d diverged: %a" f.Engine.trace_seed
        Oracle.pp_divergence f.Engine.divergence

let test_replay_seed_deterministic () =
  let t1 = Engine.gen_trace ~seed:12345 () in
  let t2 = Engine.gen_trace ~seed:12345 () in
  Alcotest.(check string)
    "same seed, same trace" (Ctrace.to_string t1) (Ctrace.to_string t2);
  let t3 = Engine.gen_trace ~seed:12346 () in
  Alcotest.(check bool)
    "different seed, different trace" false
    (String.equal (Ctrace.to_string t1) (Ctrace.to_string t3))

(* -- sensitivity: a broken cache must be caught -------------------- *)

let test_sabotage_caught () =
  let r =
    Engine.run_campaign ~iters:50 ~seed:42 ~sabotage:Oracle.Cache_no_flush ()
  in
  match r.Engine.failure with
  | None ->
      Alcotest.fail
        "a render cache that never flushes survived 50 random traces"
  | Some f ->
      let d = f.Engine.divergence and sd = f.Engine.shrunk_divergence in
      Alcotest.(check bool)
        "only the sabotaged configuration diverges" true
        (String.equal d.Oracle.config "cached");
      Alcotest.(check bool)
        "shrinking preserves the divergence class" true
        (Shrink.class_equal (Shrink.class_of d) (Shrink.class_of sd));
      let n = List.length f.Engine.shrunk.Ctrace.events in
      if n > 10 then
        Alcotest.failf "shrunk witness has %d events (want <= 10)" n;
      (* the minimized trace must be self-sufficient: replay it from
         its own serialization and it still fails the same way *)
      match
        Ctrace.of_string (Ctrace.to_string f.Engine.shrunk)
      with
      | Error m -> Alcotest.failf "shrunk trace does not re-parse: %s" m
      | Ok t -> (
          match Oracle.run ~sabotage:Oracle.Cache_no_flush t with
          | Oracle.Diverged d' ->
              Alcotest.(check bool)
                "replayed witness fails in the same class" true
                (Shrink.class_equal (Shrink.class_of sd) (Shrink.class_of d'))
          | _ -> Alcotest.fail "replayed witness no longer diverges")

(* -- serialization ------------------------------------------------- *)

let prop_roundtrip =
  qcheck ~count:60 "trace serialization round-trips byte-identically"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let t = Engine.gen_trace ~seed () in
      let s = Ctrace.to_string t in
      match Ctrace.of_string s with
      | Error m -> QCheck2.Test.fail_reportf "does not re-parse: %s" m
      | Ok t' ->
          if not (Ctrace.equal t t') then
            QCheck2.Test.fail_reportf "parsed trace differs structurally";
          if not (String.equal (Ctrace.to_string t') s) then
            QCheck2.Test.fail_reportf "re-serialization is not byte-identical";
          true)

let test_parse_errors () =
  let bad s =
    match Ctrace.of_string s with
    | Ok _ -> Alcotest.failf "parsed: %S" s
    | Error _ -> ()
  in
  bad "";
  bad "not-a-trace 1\nend\n";
  bad "itsalive-trace 1\nseed 0\nevents\ntap 1\nend\n";
  bad "itsalive-trace 1\nseed 0\nprogram 1 0\nevents\nend\n";
  bad "itsalive-trace 1\nseed 0\nevents\nupdate nope\nend\n"

let test_gc_pool () =
  let t =
    {
      Ctrace.seed = 0;
      pool = [| "a"; "b"; "c"; "d" |];
      events = [ Ctrace.Update 2; Ctrace.Back ];
    }
  in
  let g = Ctrace.gc_pool t in
  Alcotest.(check int) "pool shrunk" 2 (Array.length g.Ctrace.pool);
  Alcotest.(check string) "boot kept" "a" g.Ctrace.pool.(0);
  Alcotest.(check string) "target kept" "c" g.Ctrace.pool.(1);
  Alcotest.(check bool)
    "update renumbered" true
    (g.Ctrace.events = [ Ctrace.Update 1; Ctrace.Back ])

(* -- golden traces ------------------------------------------------- *)

let golden =
  [
    "cache_stale_render";
    "queue_fault_tap";
    "fixup_retype_global";
    "update_storm";
    "oedit_update_classes";
    "rollout_promote_lifecycle";
    "rollout_midcanary_rollback";
    "director_update_rebalance";
  ]

(* under [dune runtest] the cwd is the build copy of test/; under a
   bare [dune exec] it is the project root *)
let golden_path name =
  let rel = Filename.concat "traces" (name ^ ".trace") in
  if Sys.file_exists rel then rel else Filename.concat "test" rel

let load_golden name =
  match Ctrace.load (golden_path name) with
  | Ok t -> t
  | Error m -> Alcotest.failf "cannot load %s: %s" name m

let test_golden_replay () =
  List.iter
    (fun name ->
      let t = load_golden name in
      (match Oracle.run t with
      | Oracle.Agreed -> ()
      | Oracle.Diverged d ->
          Alcotest.failf "%s: %a" name Oracle.pp_divergence d
      | Oracle.Boot_failed m -> Alcotest.failf "%s: boot failed: %s" name m);
      (* golden files are stored in canonical form *)
      let ic = open_in_bin (golden_path name) in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string)
        (name ^ " is canonical") raw (Ctrace.to_string t))
    golden

let test_golden_sabotage_witness () =
  let t = load_golden "cache_stale_render" in
  Alcotest.(check bool)
    "witness is tiny" true
    (List.length t.Ctrace.events <= 10);
  match Oracle.run ~sabotage:Oracle.Cache_no_flush t with
  | Oracle.Diverged d ->
      Alcotest.(check string) "cached config" "cached" d.Oracle.config;
      Alcotest.(check string) "display field" "display" d.Oracle.field
  | Oracle.Agreed -> Alcotest.fail "sabotage not caught by the witness"
  | Oracle.Boot_failed m -> Alcotest.failf "boot failed: %s" m

(* -- the mutator --------------------------------------------------- *)

let prop_mutants_compile =
  qcheck ~count:40 "mutated programs always compile"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let base = Mutate.base_pool () in
      match Mutate.mutate rng (Prng.pick rng base) with
      | None -> true
      | Some src -> (
          match Live_surface.Compile.compile src with
          | Ok _ -> true
          | Error e ->
              QCheck2.Test.fail_reportf "mutant does not compile: %s"
                (Live_surface.Compile.error_to_string e)))

let test_simplifications_compile () =
  Array.iter
    (fun src ->
      List.iter
        (fun src' ->
          match Live_surface.Compile.compile src' with
          | Ok _ -> ()
          | Error e ->
              Alcotest.failf "simplification does not compile: %s"
                (Live_surface.Compile.error_to_string e))
        (Mutate.simplifications src))
    (Mutate.base_pool ())

(* -- the PRNG ------------------------------------------------------ *)

let test_prng_stable () =
  (* the stream is pinned: regenerating traces from checked-in seeds
     must survive compiler and stdlib upgrades *)
  let r = Prng.create 42 in
  let xs = List.init 4 (fun _ -> Prng.int r 1000) in
  Alcotest.(check (list int)) "splitmix64 stream" [ 706; 145; 929; 882 ] xs;
  let a = Prng.derive 42 0 and b = Prng.derive 42 1 in
  Alcotest.(check bool) "derived seeds differ" true (a <> b);
  Alcotest.(check int) "derive is stable" a (Prng.derive 42 0)

let suite =
  [
    slow_case "a short campaign finds no divergence" test_campaign_agrees;
    case "trace generation is deterministic" test_replay_seed_deterministic;
    slow_case "a no-flush render cache is caught and shrunk"
      test_sabotage_caught;
    prop_roundtrip;
    case "malformed traces are rejected" test_parse_errors;
    case "pool garbage collection renumbers updates" test_gc_pool;
    slow_case "golden traces replay and agree" test_golden_replay;
    case "the cache witness still bites" test_golden_sabotage_witness;
    prop_mutants_compile;
    case "shrinker simplifications compile" test_simplifications_compile;
    case "the seeded prng stream is pinned" test_prng_stable;
  ]
