(** The O(edit) broadcast's blast-radius analysis
    ({!Live_core.Program_diff}): definition classification, the two
    derived sets (recheck vs. semantic dirty), the incremental
    typechecker's agreement with the from-scratch oracle, and the
    render cache's scoped retargeting across a diffed UPDATE. *)

open Live_core
open Helpers
module Mutate = Live_conformance.Mutate
module Prng = Live_conformance.Prng
module Session = Live_runtime.Session

let core (src : string) : Program.t =
  (ok_compile src).Live_surface.Compile.core

(** A host-app-shaped source: [start] reads [w] through [f]; the cold
    definitions [c0]/[cf0] are reachable only through [aux], which
    nobody pushes — editing them must leave [start] clean. *)
let base_src =
  "global w : number = 1\n\
   global c0 : number = 7\n\
   fun f(x : number) : number {\n\
  \  return x + w\n\
   }\n\
   fun cf0(x : number) : number {\n\
  \  return x + c0\n\
   }\n\
   page aux()\n\
   init { }\n\
   render {\n\
  \  post \"aux \" ++ str(cf0(0))\n\
   }\n\
   page start()\n\
   init { }\n\
   render {\n\
  \  post \"f = \" ++ str(f(1))\n\
  \  on tapped {\n\
  \    w := w + 1\n\
  \  }\n\
   }\n"

(** Restamp [c0]'s initial value — the B13 1-line cold edit. *)
let edit_c0 (p : Program.t) (v : float) : Program.t =
  match Program.find p "c0" with
  | Some (Program.Global { name; ty; _ }) ->
      Program.with_def p (Program.Global { name; ty; init = Ast.VNum v })
  | _ -> Alcotest.fail "c0 not found"

let test_cold_edit_blast_radius () =
  let p = core base_src in
  let p' = edit_c0 p 99.0 in
  let d = Program_diff.diff ~old_prog:p p' in
  let status n = Program_diff.status_to_string (Program_diff.status d n) in
  Alcotest.(check string) "c0 body-changed" "body-changed" (status "c0");
  Alcotest.(check string) "w untouched" "unchanged" (status "w");
  (* semantic dirt flows up the reverse dependency graph and stops
     where references stop *)
  Alcotest.(check bool) "c0 dirty" true (Program_diff.is_dirty d "c0");
  Alcotest.(check bool) "cf0 dirty (reads c0)" true
    (Program_diff.is_dirty d "cf0");
  Alcotest.(check bool) "aux dirty (calls cf0)" true
    (Program_diff.is_dirty d "aux");
  Alcotest.(check bool) "start clean" false (Program_diff.is_dirty d "start");
  Alcotest.(check bool) "f clean" false (Program_diff.is_dirty d "f");
  (* the recheck set is smaller still: a body-only edit re-derives the
     edited definition alone — declared signatures cut the chain *)
  Alcotest.(check bool) "c0 rechecked" true (Program_diff.needs_recheck d "c0");
  Alcotest.(check bool) "cf0 not rechecked (c0's signature held)" false
    (Program_diff.needs_recheck d "cf0");
  Alcotest.(check int) "recheck set is the edit" 1
    (Program_diff.recheck_count d);
  (* fix-up may keep every store binding and page entry *)
  Alcotest.(check bool) "w preserved" true (Program_diff.global_preserved d "w");
  Alcotest.(check bool) "c0 preserved (same declared type)" true
    (Program_diff.global_preserved d "c0");
  Alcotest.(check bool) "start preserved" true
    (Program_diff.page_preserved d "start")

let test_sig_change_reaches_referrers () =
  let p = core base_src in
  let p' =
    Program.with_def p
      (Program.Global { name = "c0"; ty = Typ.Str; init = Ast.VStr "s" })
  in
  let d = Program_diff.diff ~old_prog:p p' in
  Alcotest.(check string) "c0 sig-changed" "sig-changed"
    (Program_diff.status_to_string (Program_diff.status d "c0"));
  Alcotest.(check bool) "direct referrer rechecked" true
    (Program_diff.needs_recheck d "cf0");
  Alcotest.(check bool) "non-referrer not rechecked" false
    (Program_diff.needs_recheck d "f");
  Alcotest.(check bool) "retyped global not preserved" false
    (Program_diff.global_preserved d "c0")

let test_add_remove () =
  let p = core base_src in
  let d_rm =
    Program_diff.diff ~old_prog:p (Program.without_def p "c0")
  in
  Alcotest.(check string) "removed" "removed"
    (Program_diff.status_to_string (Program_diff.status d_rm "c0"));
  Alcotest.(check bool) "removed is dirty" true
    (Program_diff.is_dirty d_rm "c0");
  Alcotest.(check bool) "referrer of removed rechecked" true
    (Program_diff.needs_recheck d_rm "cf0");
  let d_add =
    Program_diff.diff ~old_prog:p
      (Program.with_def p
         (Program.Global { name = "fresh"; ty = Typ.Num; init = Ast.VNum 0. }))
  in
  Alcotest.(check string) "added" "added"
    (Program_diff.status_to_string (Program_diff.status d_add "fresh"));
  Alcotest.(check bool) "addition leaves the rest clean" false
    (Program_diff.is_dirty d_add "start")

(** The incremental checker must report the {e same first error} as
    the scratch checker, not merely the same verdict. *)
let test_reject_error_identity () =
  let p = core base_src in
  (match Machine.check_program p with
  | Ok () -> ()
  | Error e -> Alcotest.failf "base ill-typed: %s" (Machine.error_to_string e));
  (* retype c0 : string while cf0 still computes x + c0 *)
  let p' =
    Program.with_def p
      (Program.Global { name = "c0"; ty = Typ.Str; init = Ast.VStr "s" })
  in
  let d = Program_diff.diff ~old_prog:p p' in
  match (Machine.check_program p', Machine.check_program_incremental ~diff:d p')
  with
  | Error a, Error b ->
      Alcotest.(check string) "same first error" (Machine.error_to_string a)
        (Machine.error_to_string b)
  | Ok (), _ -> Alcotest.fail "scratch accepted an ill-typed program"
  | _, Ok () -> Alcotest.fail "incremental accepted an ill-typed program"

(* -- properties ---------------------------------------------------- *)

(** A random well-typed program plus a fixup-aware mutant of it, via
    the fuzzer's edit pool; [None] when the mutator found no compiling
    mutant for this seed. *)
let gen_edit_pair (seed : int) : (Program.t * Program.t) option =
  let rng = Prng.create seed in
  let base = Prng.pick rng (Mutate.base_pool ()) in
  match Mutate.mutate rng base with
  | None -> None
  | Some src' -> Some (core base, core src')

let prop_self_diff_empty =
  qcheck ~count:100 "diff p p is empty"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let src = Prng.pick rng (Mutate.base_pool ()) in
      let src =
        match Mutate.mutate rng src with None -> src | Some s -> s
      in
      let p = core src in
      let d = Program_diff.diff ~old_prog:p p in
      Program_diff.identical d
      && Program_diff.dirty_count d = 0
      && Program_diff.recheck_count d = 0)

(** Closure of the dirty set: a clean definition references only clean
    definitions — exactly the premise compiled-code reuse and cache
    retention stand on. *)
let prop_dirty_set_closed =
  qcheck ~count:150 "dirty set is closed under reverse dependencies"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      match gen_edit_pair seed with
      | None -> true
      | Some (old_prog, new_prog) ->
          let d = Program_diff.diff ~old_prog new_prog in
          List.for_all
            (fun def ->
              let name = Program.def_name def in
              Program_diff.is_dirty d name
              ||
              match def with
              | Program.Global { init; _ } -> Program_diff.value_clean d init
              | Program.Func { body; _ } -> Program_diff.expr_clean d body
              | Program.Page { init; render; _ } ->
                  Program_diff.expr_clean d init
                  && Program_diff.expr_clean d render)
            (Program.defs new_prog))

(** The tentpole's soundness property, fuzzed: on every mutated edit
    whose old program passes the scratch check, the incremental
    checker agrees with the scratch checker — verdict {e and} first
    error. *)
let prop_incremental_check_agrees =
  qcheck ~count:150 "incremental typecheck == scratch on mutants"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      match gen_edit_pair seed with
      | None -> true
      | Some (old_prog, new_prog) -> (
          match Machine.check_program old_prog with
          | Error _ -> true (* incremental premise not established *)
          | Ok () -> (
              let d = Program_diff.diff ~old_prog new_prog in
              let s = Machine.check_program new_prog in
              let i = Machine.check_program_incremental ~diff:d new_prog in
              match (s, i) with
              | Ok (), Ok () -> true
              | Error a, Error b ->
                  String.equal (Machine.error_to_string a)
                    (Machine.error_to_string b)
              | Ok (), Error e ->
                  QCheck2.Test.fail_reportf
                    "incremental rejects what scratch accepts: %s"
                    (Machine.error_to_string e)
              | Error e, Ok () ->
                  QCheck2.Test.fail_reportf
                    "incremental accepts what scratch rejects: %s"
                    (Machine.error_to_string e))))

(* -- scoped cache invalidation across a diffed UPDATE -------------- *)

let stats_exn (s : Session.t) : Render_cache.stats =
  match Session.render_cache_stats s with
  | Some st -> st
  | None -> Alcotest.fail "render cache not enabled"

let update_exn ?diff (s : Session.t) (p : Program.t) =
  match Session.update ?diff s p with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "update: %s" (Machine.error_to_string e)

(** Satellite fix for the wholesale flush: a cold edit broadcast with
    a diff keeps the unchanged page's memoized display, so the
    post-update re-render revalidates instead of re-evaluating — and
    the screen is byte-identical to the flushed session's. *)
let test_retarget_keeps_unchanged_pages () =
  let p = core base_src in
  let flushed = ok_machine "boot" (Session.create ~cache:true p) in
  let retargeted = ok_machine "boot" (Session.create ~cache:true p) in
  let p' = edit_c0 p 99.0 in
  let d = Program_diff.diff ~old_prog:p p' in
  update_exn flushed p';
  update_exn ~diff:d retargeted p';
  ignore (Session.screenshot flushed);
  ignore (Session.screenshot retargeted);
  let sf = stats_exn flushed and sr = stats_exn retargeted in
  Alcotest.(check bool) "diffed update retargets, never flushes" true
    (sr.Render_cache.retargets = 1 && sr.Render_cache.flushes = 0);
  Alcotest.(check bool) "undiffed update flushed" true
    (sf.Render_cache.flushes >= 1 && sf.Render_cache.retargets = 0);
  let reused st = st.Render_cache.hits + st.Render_cache.revalidations in
  if not (reused sr > reused sf) then
    Alcotest.failf
      "no hit-rate improvement: retargeted %d hits+revals vs flushed %d"
      (reused sr) (reused sf);
  Alcotest.(check string) "observationally transparent"
    (Session.screenshot flushed)
    (Session.screenshot retargeted)

(** Editing what the page actually reads must evict: the dirty page's
    display and the subtrees referencing the edited name go, and the
    session still paints exactly what a flushed one does. *)
let test_retarget_evicts_dirty () =
  let p = core base_src in
  let flushed = ok_machine "boot" (Session.create ~cache:true p) in
  let retargeted = ok_machine "boot" (Session.create ~cache:true p) in
  let p' =
    match Program.find p "w" with
    | Some (Program.Global { name; ty; _ }) ->
        Program.with_def p (Program.Global { name; ty; init = Ast.VNum 5. })
    | _ -> Alcotest.fail "w not found"
  in
  let d = Program_diff.diff ~old_prog:p p' in
  Alcotest.(check bool) "start dirty" true (Program_diff.is_dirty d "start");
  update_exn flushed p';
  update_exn ~diff:d retargeted p';
  let sr = stats_exn retargeted in
  Alcotest.(check bool) "dirty entries evicted" true
    (sr.Render_cache.evictions > 0);
  Alcotest.(check string) "observationally transparent"
    (Session.screenshot flushed)
    (Session.screenshot retargeted)

let suite =
  [
    case "cold edit: dirty set and recheck set" test_cold_edit_blast_radius;
    case "signature change reaches direct referrers"
      test_sig_change_reaches_referrers;
    case "added and removed definitions" test_add_remove;
    case "incremental reject carries the scratch error"
      test_reject_error_identity;
    prop_self_diff_empty;
    prop_dirty_set_closed;
    prop_incremental_check_agrees;
    case "diffed UPDATE keeps unchanged pages' cache"
      test_retarget_keeps_unchanged_pages;
    case "diffed UPDATE evicts the dirty subgraph" test_retarget_evicts_dirty;
  ]
