(** Test-suite entry point.  Each [Test_*] module exposes a [suite];
    suites are grouped roughly bottom-up: core data structures, the
    formal system (Figs. 6-12), the surface compiler, the UI substrate,
    the live runtime, the baselines, and the paper's scenarios. *)

let () =
  Alcotest.run "itsalive"
    [
      ("eff", Test_eff.suite);
      ("typ", Test_typ.suite);
      ("fqueue", Test_fqueue.suite);
      ("ast", Test_ast.suite);
      ("prim", Test_prim.suite);
      ("eval", Test_eval.suite);
      ("smallstep", Test_smallstep.suite);
      ("typecheck", Test_typecheck.suite);
      ("state-typing", Test_state_typing.suite);
      ("fixup", Test_fixup.suite);
      ("state", Test_state.suite);
      ("machine", Test_machine.suite);
      ("metatheory", Test_metatheory.suite);
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("check-surface", Test_check_surface.suite);
      ("desugar", Test_desugar.suite);
      ("framebuffer", Test_framebuffer.suite);
      ("layout", Test_layout.suite);
      ("render", Test_render.suite);
      ("printer", Test_printer.suite);
      ("session", Test_session.suite);
      ("navigation", Test_navigation.suite);
      ("live", Test_live.suite);
      ("direct-manipulation", Test_direct_manipulation.suite);
      ("mortgage", Test_mortgage.suite);
      ("workloads", Test_workloads.suite);
      ("baseline", Test_baseline.suite);
      ("incremental", Test_incremental.suite);
      ("render-cache", Test_render_cache.suite);
      ("compile-eval", Test_compile_eval.suite);
      ("program-diff", Test_program_diff.suite);
      ("probe", Test_probe.suite);
      ("properties", Test_properties.suite);
      ("golden", Test_golden.suite);
      ("build", Test_build.suite);
      ("calculator", Test_calculator.suite);
      ("stepper", Test_stepper.suite);
      ("fuzz", Test_fuzz.suite);
      ("conformance", Test_conformance.suite);
      ("host", Test_host.suite);
      ("parallel", Test_parallel.suite);
      ("rollout", Test_rollout.suite);
      ("net", Test_net.suite);
      ("director", Test_director.suite);
      ("misc", Test_misc.suite);
    ]
