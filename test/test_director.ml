(** The shard director ([lib/net/director]): a directed N-shard fleet
    must be observationally {e identical} to a single-process fleet —

    - {b parity}: the same seeded client trace replayed against a
      2-shard directed fleet and against one [Server] ends with
      byte-identical fleet digests, including a mid-trace fleet-wide
      UPDATE (committed on even seeds; {e refused} atomically on odd
      seeds via an injected prepare failure) and a mid-trace live
      rebalance on the directed side only;
    - {b atomicity}: when one shard cannot prepare, two-phase UPDATE
      leaves {e every} shard on the old program, and a subsequent clean
      UPDATE moves every shard to the new one;
    - {b rebalance}: sessions migrate between shards under an open
      client connection, the before/after fleet digest holds, and the
      moved sessions keep answering events at their global ids. *)

open Helpers
module Wire = Live_net.Wire
module Snapshot = Live_net.Snapshot
module Server = Live_net.Server
module Client = Live_net.Client
module Director = Live_net.Director
module H = Live_host
module Prng = Live_conformance.Prng

let app version : Live_core.Program.t =
  (Live_workloads.Synthetic.compile_exn
     (Live_workloads.Synthetic.host_app ~rows:4 ~version ()))
    .Live_surface.Compile.core

let prog_str p = Snapshot.program_to_string p

let config =
  { H.Registry.default_config with H.Registry.width = 32; queue_capacity = 16 }

let sock tag i =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "live-dir-%s-%d-%d.sock" tag i (Unix.getpid ()))

(* ------------------------------------------------------------------ *)
(* An in-process directed fleet                                        *)
(* ------------------------------------------------------------------ *)

type fleet = {
  shards : Server.t array;
  dir : Director.t;
  dpath : string;
  pump : unit -> unit;  (** step every shard and the director once *)
}

let mk_fleet ~tag ~n_shards program : fleet =
  let shards =
    Array.init n_shards (fun i ->
        Server.create ~config ~socket:(sock tag i) program)
  in
  let pump_shards () =
    Array.iter (fun s -> ignore (Server.step ~timeout:0. s)) shards
  in
  let dpath = sock tag 999 in
  let dir =
    Director.create ~pump:pump_shards ~socket:dpath
      ~shards:(List.init n_shards (sock tag))
      ()
  in
  let pump () =
    pump_shards ();
    ignore (Director.step ~timeout:0. dir)
  in
  { shards; dir; dpath; pump }

let stop_fleet (f : fleet) : unit =
  Director.stop f.dir;
  Array.iter Server.stop f.shards

(* ------------------------------------------------------------------ *)
(* A raw admin connection to the director                              *)
(*                                                                     *)
(* Owns no sessions (unless it says Hello), so by default the only     *)
(* frames on this socket are replies to its own requests.              *)
(* ------------------------------------------------------------------ *)

type admin = { afd : Unix.file_descr; abuf : Buffer.t; mutable aoff : int }

let admin_connect (path : string) : admin =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Unix.set_nonblock fd;
  { afd = fd; abuf = Buffer.create 1024; aoff = 0 }

let admin_close (a : admin) : unit =
  try Unix.close a.afd with Unix.Unix_error _ -> ()

let admin_send ~(pump : unit -> unit) (a : admin) (f : Wire.client_frame) :
    unit =
  let bytes = Wire.encode (Wire.Client f) in
  let len = String.length bytes in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring a.afd bytes !off (len - !off) with
    | n -> off := !off + n
    | exception
        Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        pump ()
  done

let admin_chunk = Bytes.create 65536

let admin_recv ~(pump : unit -> unit) (a : admin) : Wire.host_frame =
  let deadline = Unix.gettimeofday () +. 30. in
  let rec loop () =
    let data = Buffer.contents a.abuf in
    match Wire.decode ~off:a.aoff data with
    | Wire.Frame (Wire.Host f, consumed) ->
        a.aoff <- a.aoff + consumed;
        if a.aoff = String.length data then begin
          Buffer.clear a.abuf;
          a.aoff <- 0
        end;
        f
    | Wire.Frame (Wire.Client _, _) ->
        Alcotest.fail "client-tagged frame from the director"
    | Wire.Corrupt m -> Alcotest.failf "admin: corrupt stream: %s" m
    | Wire.Need_more ->
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "admin: no reply within 30s";
        pump ();
        (match Unix.read a.afd admin_chunk 0 (Bytes.length admin_chunk) with
        | 0 -> Alcotest.fail "director closed the admin connection"
        | n -> Buffer.add_subbytes a.abuf admin_chunk 0 n
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            ());
        loop ()
  in
  loop ()

let admin_rpc ~pump a f =
  admin_send ~pump a f;
  admin_recv ~pump a

let expect_ack ~pump a f : string =
  match admin_rpc ~pump a f with
  | Wire.Ack { info } -> info
  | Wire.Error { code; msg } -> Alcotest.failf "error %d: %s" code msg
  | f -> Alcotest.failf "unexpected reply %s" (Fmt.str "%a" Wire.pp (Wire.Host f))

let expect_refusal ~pump a f : string =
  match admin_rpc ~pump a f with
  | Wire.Error { code = 6; msg } -> msg
  | Wire.Ack { info } -> Alcotest.failf "unexpected Ack %S" info
  | f -> Alcotest.failf "unexpected reply %s" (Fmt.str "%a" Wire.pp (Wire.Host f))

(* ------------------------------------------------------------------ *)
(* Parity: directed fleet == single process, on the same trace         *)
(* ------------------------------------------------------------------ *)

let mk_gen seed sessions =
  let rngs =
    Array.init sessions (fun s -> Prng.create (Prng.derive seed s))
  in
  fun ~slot ~round:_ ->
    let rng = rngs.(slot) in
    if Prng.int rng 10 = 0 then Wire.Ev_back
    else Wire.Ev_tap { x = Prng.int rng 32; y = Prng.int rng 7 }

let run_single ~seed ~sessions ~conns ~rounds ~update_round ~do_update :
    string =
  let socket = sock (Printf.sprintf "single-%d" seed) 0 in
  let srv = Server.create ~config ~socket (app 0) in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let reg = Server.registry srv in
  let on_round r =
    if r = update_round && do_update then begin
      (match H.Broadcast.update reg (app 1) with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "single update: %s"
            (Live_core.Machine.error_to_string e));
      Server.mark_all_dirty srv
    end
  in
  (match
     Client.run ~socket ~conns ~sessions ~rounds ~gen:(mk_gen seed sessions)
       ~detach_every:3 ~on_round
       ~pump:(fun () -> ignore (Server.step ~timeout:0. srv))
       ()
   with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "single client: %s" m);
  H.Registry.digest reg

let run_directed ~seed ~n_shards ~sessions ~conns ~rounds ~update_round
    ~fail_update ~rebalance_round : string =
  let f = mk_fleet ~tag:(Printf.sprintf "par-%d" seed) ~n_shards (app 0) in
  Fun.protect ~finally:(fun () -> stop_fleet f) @@ fun () ->
  let admin = admin_connect f.dpath in
  Fun.protect ~finally:(fun () -> admin_close admin) @@ fun () ->
  let on_round r =
    if r = update_round then
      if fail_update then begin
        (* hold shard 1's rollout slot so its Prepare refuses: the
           two-phase must abort shard 0 and leave the fleet untouched *)
        let reg1 = Server.registry f.shards.(1) in
        match H.Rollout.begin_ ~seed:991 reg1 (app 2) with
        | Error e ->
            Alcotest.failf "inject: %s" (Live_core.Machine.error_to_string e)
        | Ok inj ->
            let msg =
              expect_refusal ~pump:f.pump admin
                (Wire.Update { program = prog_str (app 1) })
            in
            Alcotest.(check bool) "refusal names the all-or-nothing" true
              (String.length msg > 0);
            ignore (H.Rollout.rollback inj)
      end
      else
        ignore
          (expect_ack ~pump:f.pump admin
             (Wire.Update { program = prog_str (app 1) }))
    else if r = rebalance_round then
      ignore (expect_ack ~pump:f.pump admin (Wire.Rebalance { count = 2 }))
  in
  (match
     Client.run ~socket:f.dpath ~conns ~sessions ~rounds
       ~gen:(mk_gen seed sessions) ~detach_every:3 ~on_round ~pump:f.pump ()
   with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "directed client: %s" m);
  let st = Director.stats f.dir in
  Alcotest.(check int) "no strict digest failures" 0 st.Director.digest_failures;
  if not fail_update then
    Alcotest.(check int) "update committed" 1 st.Director.updates_committed
  else begin
    Alcotest.(check int) "update rejected" 1 st.Director.updates_rejected;
    Alcotest.(check int) "nothing committed" 0 st.Director.updates_committed
  end;
  Director.fleet_digest f.dir

let prop_director_parity =
  qcheck ~count:5 "directed fleet digests like a single process"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let sessions = 6 and conns = 2 and rounds = 8 in
      let update_round = 4 and rebalance_round = 6 in
      let fail_update = seed mod 2 = 1 in
      let directed =
        run_directed ~seed ~n_shards:2 ~sessions ~conns ~rounds ~update_round
          ~fail_update ~rebalance_round
      in
      let single =
        run_single ~seed ~sessions ~conns ~rounds ~update_round
          ~do_update:(not fail_update)
      in
      if not (String.equal directed single) then
        QCheck2.Test.fail_reportf
          "seed %d: directed %s <> single %s (update %s)" seed directed single
          (if fail_update then "aborted" else "committed");
      true)

(* ------------------------------------------------------------------ *)
(* Two-phase atomicity, deterministically                              *)
(* ------------------------------------------------------------------ *)

let test_update_atomicity () =
  let f = mk_fleet ~tag:"atom" ~n_shards:2 (app 0) in
  Fun.protect ~finally:(fun () -> stop_fleet f) @@ fun () ->
  let admin = admin_connect f.dpath in
  Fun.protect ~finally:(fun () -> admin_close admin) @@ fun () ->
  let pump = f.pump in
  (* a resident fleet, owned by this connection *)
  admin_send ~pump admin (Wire.Hello { client = "atom"; sessions = 4 });
  for _ = 1 to 4 do
    match admin_recv ~pump admin with
    | Wire.Attach _ -> ()
    | fr -> Alcotest.failf "expected Attach, got %s" (Fmt.str "%a" Wire.pp (Wire.Host fr))
  done;
  let reg0 = Server.registry f.shards.(0)
  and reg1 = Server.registry f.shards.(1) in
  let v0 = prog_str (app 0) and v1 = prog_str (app 1) in
  (* shard 1 cannot prepare: an injected rollout holds its slot *)
  let inj =
    match H.Rollout.begin_ ~seed:991 reg1 (app 2) with
    | Ok r -> r
    | Error e ->
        Alcotest.failf "inject: %s" (Live_core.Machine.error_to_string e)
  in
  let msg =
    expect_refusal ~pump admin (Wire.Update { program = v1 })
  in
  Alcotest.(check bool) "refusal reports fleet unchanged" true
    (String.length msg > 0);
  ignore (H.Rollout.rollback inj);
  (* all-or-nothing: shard 0 prepared and was aborted; both shards are
     still on the boot program, no rollout left open anywhere *)
  Alcotest.(check bool) "shard 0 rollout closed" false
    (H.Registry.rollout_open reg0);
  Alcotest.(check bool) "shard 1 rollout closed" false
    (H.Registry.rollout_open reg1);
  Alcotest.(check string) "shard 0 on old program" v0
    (prog_str (H.Registry.program reg0));
  Alcotest.(check string) "shard 1 on old program" v0
    (prog_str (H.Registry.program reg1));
  Alcotest.(check int) "shard 0 epoch unchanged" 0
    (H.Registry.current_epoch reg0);
  Alcotest.(check int) "shard 1 epoch unchanged" 0
    (H.Registry.current_epoch reg1);
  (* the fleet is not wedged: a clean UPDATE commits everywhere *)
  let info = expect_ack ~pump admin (Wire.Update { program = v1 }) in
  Alcotest.(check bool) "ack names the txn" true
    (String.length info > 0);
  Alcotest.(check string) "shard 0 on new program" v1
    (prog_str (H.Registry.program reg0));
  Alcotest.(check string) "shard 1 on new program" v1
    (prog_str (H.Registry.program reg1));
  let st = Director.stats f.dir in
  Alcotest.(check int) "one rejected" 1 st.Director.updates_rejected;
  Alcotest.(check int) "one committed" 1 st.Director.updates_committed

(* ------------------------------------------------------------------ *)
(* Rebalance: byte-identical migration under a live connection         *)
(* ------------------------------------------------------------------ *)

let test_rebalance_migration () =
  let f = mk_fleet ~tag:"reb" ~n_shards:2 (app 0) in
  Fun.protect ~finally:(fun () -> stop_fleet f) @@ fun () ->
  let admin = admin_connect f.dpath in
  Fun.protect ~finally:(fun () -> admin_close admin) @@ fun () ->
  let pump = f.pump in
  let spawn n =
    admin_send ~pump admin (Wire.Hello { client = "reb"; sessions = n });
    for _ = 1 to n do
      match admin_recv ~pump admin with
      | Wire.Attach _ -> ()
      | fr ->
          Alcotest.failf "expected Attach, got %s"
            (Fmt.str "%a" Wire.pp (Wire.Host fr))
    done
  in
  spawn 6;
  (* Placement hashes the shard socket paths, which embed the pid, so the
     6 sessions may land balanced (3/3) — in which case a rebalance
     correctly moves nothing.  Top up by one: an odd fleet over 2 shards
     can never be balanced, so the rebalance below must migrate. *)
  let balanced () =
    match List.map snd (Director.stats f.dir).Director.per_shard with
    | l :: rest -> List.for_all (Int.equal l) rest
    | [] -> false
  in
  let sessions = ref 6 in
  if balanced () then begin
    spawn 1;
    incr sessions
  end;
  let sessions = !sessions in
  let observe () =
    match admin_rpc ~pump admin Wire.Observe with
    | Wire.Observed { sessions } -> sessions
    | fr -> Alcotest.failf "expected Observed, got %s" (Fmt.str "%a" Wire.pp (Wire.Host fr))
  in
  let before = observe () in
  Alcotest.(check int) "all sessions observed" sessions (List.length before);
  let info = expect_ack ~pump admin (Wire.Rebalance { count = 3 }) in
  let st = Director.stats f.dir in
  Alcotest.(check bool)
    (Printf.sprintf "sessions moved (%s)" info)
    true
    (st.Director.sessions_moved > 0);
  Alcotest.(check int) "strict digest check ran" 1 st.Director.digest_checks;
  Alcotest.(check int) "no digest failures" 0 st.Director.digest_failures;
  let after = observe () in
  Alcotest.(check (list (pair int string))) "observations byte-identical"
    before after;
  (* both shards now hold part of the fleet *)
  let loads = List.map snd st.Director.per_shard in
  Alcotest.(check bool) "no shard is empty" true
    (List.for_all (fun l -> l > 0) loads);
  Alcotest.(check int) "no session lost" sessions
    (List.fold_left ( + ) 0 loads);
  (* migrated sessions still answer events at their global ids *)
  List.iter
    (fun (g, _) ->
      admin_send ~pump admin (Wire.Event { session = g; ev = Wire.Ev_tap { x = 1; y = 1 } });
      let rec await () =
        match admin_recv ~pump admin with
        | Wire.Delta { session; _ } when session = g -> ()
        | Wire.Delta _ -> await ()
        | fr ->
            Alcotest.failf "expected Delta for %d, got %s" g
              (Fmt.str "%a" Wire.pp (Wire.Host fr))
      in
      await ())
    after

let suite =
  [
    prop_director_parity;
    Alcotest.test_case "two-phase UPDATE is all-or-nothing" `Quick
      test_update_atomicity;
    Alcotest.test_case "rebalance migrates byte-identically" `Quick
      test_rebalance_migration;
  ]
