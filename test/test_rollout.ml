(** Transactional staged rollouts ([lib/host/rollout]): the two
    soundness statements, byte-for-byte —

    - {b promote} ≡ one flat {!Live_host.Broadcast.update} of the same
      change set (the canary merely saw it earlier);
    - {b rollback} ≡ a fleet that never began the rollout (checkpoint
      + journal replay, {e not} a re-broadcast of the old code, which
      would reset state through the Fig. 12 fix-up);

    plus the window invariants: interleaved traffic never crosses
    epochs, and the per-cohort ingress ledgers keep the accounting
    identity separately and summed.  Every property is checked under
    both expression engines and under the domain-parallel host
    (rollout stages wrapped in {!Live_host.Parallel.exclusive}). *)

open Helpers
module H = Live_host
module Machine = Live_core.Machine
module Prng = Live_conformance.Prng

let rows = 4
let width = 32
let sessions = 6

let app version : Live_core.Program.t =
  (Live_workloads.Synthetic.compile_exn
     (Live_workloads.Synthetic.host_app ~rows ~version ()))
    .Live_surface.Compile.core

type resolution = Promote | Rollback

(* ------------------------------------------------------------------ *)
(* A fleet driver: sequential scheduler or parallel pool               *)
(* ------------------------------------------------------------------ *)

type excl = { run : 'a. (unit -> 'a) -> 'a }

type driver = {
  reg : H.Registry.t;
  tick : unit -> unit;
  drain : unit -> unit;
  excl : excl;  (** the stop-the-world discipline for rollout stages *)
  stop : unit -> unit;
}

let make_driver ~(evaluator : Machine.evaluator) ~(jobs : int option)
    (base : Live_core.Program.t) : driver =
  let config =
    {
      H.Registry.default_config with
      H.Registry.width;
      evaluator;
      cache = true;
      queue_capacity = 16;
      queue_policy = H.Backpressure.Reject;
    }
  in
  let reg = H.Registry.create ~config base in
  match jobs with
  | None ->
      let sched = H.Scheduler.create ~batch:4 reg in
      {
        reg;
        tick = (fun () -> ignore (H.Scheduler.tick sched));
        drain =
          (fun () ->
            match H.Scheduler.drain sched with
            | Ok _ -> ()
            | Error m -> Alcotest.fail m);
        excl = { run = (fun f -> f ()) };
        stop = ignore;
      }
  | Some j ->
      let pool = H.Parallel.create ~jobs:j ~batch:4 reg in
      {
        reg;
        tick = (fun () -> ignore (H.Parallel.tick pool));
        drain =
          (fun () ->
            match H.Parallel.drain pool with
            | Ok _ -> ()
            | Error m -> Alcotest.fail m);
        excl = { run = (fun f -> H.Parallel.exclusive pool f) };
        stop =
          (fun () ->
            Alcotest.(check int)
              "no barrier violations" 0
              (H.Parallel.barrier_violations pool);
            H.Parallel.shutdown pool);
      }

(** One seeded traffic round: a burst per target, then a tick.  RNG
    consumption depends only on the target list, so a staged fleet and
    its control twin replaying the same seed see identical load. *)
let offer_round (d : driver) (rng : Prng.t) (targets : H.Registry.id list) :
    unit =
  List.iter
    (fun id ->
      for _ = 1 to Prng.int rng 3 do
        let ev =
          if Prng.int rng 8 = 0 then H.Registry.Back
          else
            H.Registry.Tap
              { x = Prng.int rng width; y = Prng.int rng (rows + 3) }
        in
        ignore (H.Registry.offer d.reg id ev)
      done)
    targets;
  d.tick ()

let ok_rollout what = function
  | Ok r -> r
  | Error e -> Alcotest.failf "%s: %s" what (Machine.error_to_string e)

(* ------------------------------------------------------------------ *)
(* The staged scenario and its control twin                            *)
(* ------------------------------------------------------------------ *)

(** Run the full rollout lifecycle under load and return the final
    fleet digest plus the cohort it picked.  Window traffic goes to
    the canaries only when promoting (the shadow cohort must end
    having seen exactly what a one-shot broadcast fleet saw) and to
    everyone when rolling back (replay must cover the whole window). *)
let run_staged ~evaluator ~jobs ~(resolution : resolution) ~(seed : int) () :
    string * H.Registry.id list =
  let d = make_driver ~evaluator ~jobs (app 0) in
  Fun.protect ~finally:d.stop @@ fun () ->
  let _ = ok_machine "spawn" (H.Registry.spawn_many d.reg sessions) in
  let all = H.Registry.ids d.reg in
  let rng = Prng.create (Prng.derive seed 1) in
  for _ = 1 to 3 do
    offer_round d rng all
  done;
  let r =
    d.excl.run (fun () ->
        ok_rollout "begin_"
          (H.Rollout.begin_ ~fraction:0.34 ~seed d.reg (app 1)))
  in
  let canary = H.Rollout.canary_ids r in
  Alcotest.(check int) "ceil(0.34 * 6) canaries" 3 (List.length canary);
  let window =
    match resolution with Promote -> canary | Rollback -> all
  in
  (* traffic against the Staged (not yet canaried) window *)
  offer_round d rng window;
  let _ = d.excl.run (fun () -> H.Rollout.canary r) in
  (* interleaved traffic, with the fleet split across two epochs *)
  for _ = 1 to 2 do
    offer_round d rng window
  done;
  (* prop: traffic never crosses epochs — every session is pinned to
     exactly its cohort's epoch and runs that epoch's code *)
  Alcotest.(check (list (pair int string)))
    "no session crosses epochs" []
    (H.Registry.check_epochs d.reg);
  List.iter
    (fun id ->
      let expect =
        if List.mem id canary then H.Rollout.target_epoch r
        else H.Rollout.base_epoch r
      in
      Alcotest.(check (option int))
        (Printf.sprintf "session %d pinned to its cohort's epoch" id)
        (Some expect)
        (H.Registry.session_epoch d.reg id))
    all;
  (* prop: the side-by-side health check holds mid-window *)
  let h = d.excl.run (fun () -> H.Rollout.observe r) in
  if not (H.Rollout.healthy h) then
    Alcotest.failf "unhealthy mid-window: %s" (H.Rollout.summary r);
  (* prop: cohort ledgers sum exactly to the fleet's ingress total *)
  let snap = H.Registry.snapshot d.reg in
  Alcotest.(check int)
    "canary_in + shadow_in = fleet_in" snap.H.Host_metrics.s_events_in
    (h.H.Rollout.canary_accounting.H.Registry.ca_in
    + h.H.Rollout.shadow_accounting.H.Registry.ca_in);
  (* a flat broadcast is refused while the window is open *)
  (match d.excl.run (fun () -> H.Broadcast.update d.reg (app 2)) with
  | Error (Machine.Not_enabled _) -> ()
  | Ok _ -> Alcotest.fail "flat broadcast during an open rollout accepted"
  | Error e ->
      Alcotest.failf "unexpected refusal: %s" (Machine.error_to_string e));
  (match resolution with
  | Promote ->
      let _ = d.excl.run (fun () -> H.Rollout.promote r) in
      Alcotest.(check int)
        "target epoch installed"
        (H.Rollout.target_epoch r)
        (H.Registry.current_epoch d.reg)
  | Rollback -> (
      match d.excl.run (fun () -> H.Rollout.rollback r) with
      | [] -> ()
      | (id, e) :: _ ->
          Alcotest.failf "replay error on session %d: %s" id
            (Machine.error_to_string e)));
  Alcotest.(check bool) "window closed" false (H.Registry.rollout_open d.reg);
  Alcotest.(check int)
    "one live epoch" 1
    (List.length (H.Registry.live_epochs d.reg));
  Alcotest.(check (list (pair int string)))
    "epochs consistent after resolution" []
    (H.Registry.check_epochs d.reg);
  for _ = 1 to 2 do
    offer_round d rng all
  done;
  d.drain ();
  (H.Registry.digest d.reg, canary)

(** The control twin: identical fleet, identical seeded load, no
    rollout machinery at all — a promoted transaction is one flat
    broadcast at the canary point, a rolled-back one is nothing. *)
let run_control ~evaluator ~jobs ~(resolution : resolution) ~(seed : int)
    ~(canary : H.Registry.id list) () : string =
  let d = make_driver ~evaluator ~jobs (app 0) in
  Fun.protect ~finally:d.stop @@ fun () ->
  let _ = ok_machine "spawn" (H.Registry.spawn_many d.reg sessions) in
  let all = H.Registry.ids d.reg in
  let rng = Prng.create (Prng.derive seed 1) in
  for _ = 1 to 3 do
    offer_round d rng all
  done;
  (* begin_ point: nothing happens in the control *)
  let window =
    match resolution with Promote -> canary | Rollback -> all
  in
  offer_round d rng window;
  (* canary point: the one-shot broadcast, or nothing at all *)
  (match resolution with
  | Promote -> (
      match d.excl.run (fun () -> H.Broadcast.update d.reg (app 1)) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "broadcast: %s" (Machine.error_to_string e))
  | Rollback -> ());
  for _ = 1 to 2 do
    offer_round d rng window
  done;
  (* resolve point: nothing *)
  for _ = 1 to 2 do
    offer_round d rng all
  done;
  d.drain ();
  H.Registry.digest d.reg

(* ------------------------------------------------------------------ *)
(* Properties (a) and (b): the two byte-identities                     *)
(* ------------------------------------------------------------------ *)

let prop_promote_equals_broadcast =
  qcheck ~count:8
    "promote ≡ one flat broadcast of the same change set (fleet digest)"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let dg, canary =
        run_staged ~evaluator:Machine.Compiled ~jobs:None
          ~resolution:Promote ~seed ()
      in
      let dc =
        run_control ~evaluator:Machine.Compiled ~jobs:None
          ~resolution:Promote ~seed ~canary ()
      in
      String.equal dg dc
      || QCheck2.Test.fail_reportf "promote digest diverges (seed %d)" seed)

let prop_rollback_equals_never_rolled_out =
  qcheck ~count:8
    "rollback ≡ a fleet that never began the rollout (fleet digest)"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let dg, canary =
        run_staged ~evaluator:Machine.Compiled ~jobs:None
          ~resolution:Rollback ~seed ()
      in
      let dc =
        run_control ~evaluator:Machine.Compiled ~jobs:None
          ~resolution:Rollback ~seed ~canary ()
      in
      String.equal dg dc
      || QCheck2.Test.fail_reportf "rollback digest diverges (seed %d)" seed)

(* ------------------------------------------------------------------ *)
(* Property (c): epoch isolation under varying cohort fractions        *)
(* ------------------------------------------------------------------ *)

let prop_traffic_never_crosses_epochs =
  qcheck ~count:10
    "interleaved traffic never crosses epochs, at any cohort fraction"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 2))
    (fun (seed, f3) ->
      let fraction = [| 0.2; 0.51; 0.9 |].(f3) in
      let d = make_driver ~evaluator:Machine.Compiled ~jobs:None (app 0) in
      Fun.protect ~finally:d.stop @@ fun () ->
      let _ = ok_machine "spawn" (H.Registry.spawn_many d.reg sessions) in
      let all = H.Registry.ids d.reg in
      let rng = Prng.create (Prng.derive seed 2) in
      let r =
        ok_rollout "begin_"
          (H.Rollout.begin_ ~fraction ~seed d.reg (app 1))
      in
      let _ = H.Rollout.canary r in
      let ok = ref true in
      for _ = 1 to 4 do
        offer_round d rng all;
        if H.Registry.check_epochs d.reg <> [] then ok := false
      done;
      let _ = H.Rollout.rollback r in
      (!ok && H.Registry.check_epochs d.reg = [])
      || QCheck2.Test.fail_reportf
           "epoch crossing at fraction %.2f (seed %d)" fraction seed)

(* ------------------------------------------------------------------ *)
(* Property (d): cohort accounting under a lossy ingress               *)
(* ------------------------------------------------------------------ *)

let prop_cohort_accounting_identity =
  qcheck ~count:10
    "cohort ledgers: identity per cohort and summed, drops included"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      (* tiny drop-oldest queues, bursty offers, sparse ticks: drops
         and evictions must stay attributed to the right cohort *)
      let config =
        {
          H.Registry.default_config with
          H.Registry.width;
          queue_capacity = 2;
          queue_policy = H.Backpressure.Drop_oldest;
        }
      in
      let reg = H.Registry.create ~config (app 0) in
      let _ = ok_machine "spawn" (H.Registry.spawn_many reg sessions) in
      let sched = H.Scheduler.create ~batch:2 reg in
      let all = H.Registry.ids reg in
      let rng = Prng.create (Prng.derive seed 3) in
      let r =
        ok_rollout "begin_"
          (H.Rollout.begin_ ~fraction:0.5 ~seed reg (app 1))
      in
      let _ = H.Rollout.canary r in
      let check_point () =
        let h = H.Rollout.observe r in
        let ca = h.H.Rollout.canary_accounting in
        let sa = h.H.Rollout.shadow_accounting in
        let snap = H.Registry.snapshot reg in
        H.Registry.cohort_accounting_ok ca
        && H.Registry.cohort_accounting_ok sa
        && ca.H.Registry.ca_in + sa.H.Registry.ca_in
           = snap.H.Host_metrics.s_events_in
        && ca.H.Registry.ca_dropped + sa.H.Registry.ca_dropped
           = snap.H.Host_metrics.s_events_dropped
        && ca.H.Registry.ca_pending + sa.H.Registry.ca_pending
           = H.Registry.total_pending reg
      in
      let ok = ref true in
      for round = 1 to 6 do
        List.iter
          (fun id ->
            for _ = 1 to 2 + Prng.int rng 3 do
              ignore
                (H.Registry.offer reg id
                   (H.Registry.Tap
                      { x = Prng.int rng width; y = Prng.int rng (rows + 3) }))
            done)
          all;
        if round mod 2 = 0 then ignore (H.Scheduler.tick sched);
        if not (check_point ()) then ok := false
      done;
      let _ = H.Rollout.rollback r in
      (match H.Scheduler.drain sched with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m);
      (!ok && check_point ())
      || QCheck2.Test.fail_reportf
           "cohort accounting identity broke (seed %d)" seed)

(* ------------------------------------------------------------------ *)
(* The evaluator × jobs matrix (the acceptance digest check)           *)
(* ------------------------------------------------------------------ *)

let test_digest_matrix () =
  let seed = 4242 in
  List.iter
    (fun resolution ->
      let combos =
        [
          (Machine.Subst, None);
          (Machine.Subst, Some 1);
          (Machine.Subst, Some 4);
          (Machine.Compiled, None);
          (Machine.Compiled, Some 1);
          (Machine.Compiled, Some 4);
        ]
      in
      let digests =
        List.map
          (fun (evaluator, jobs) ->
            let dg, canary =
              run_staged ~evaluator ~jobs ~resolution ~seed ()
            in
            let dc = run_control ~evaluator ~jobs ~resolution ~seed ~canary () in
            Alcotest.(check string) "staged ≡ control" dc dg;
            dg)
          combos
      in
      match digests with
      | d0 :: rest ->
          List.iteri
            (fun i d ->
              Alcotest.(check string)
                (Printf.sprintf "combo %d digests like combo 0" (i + 1))
                d0 d)
            rest
      | [] -> ())
    [ Promote; Rollback ]

(* ------------------------------------------------------------------ *)
(* Lifecycle guards, metrics, the transaction edit class               *)
(* ------------------------------------------------------------------ *)

let test_lifecycle_guards_and_metrics () =
  let d = make_driver ~evaluator:Machine.Compiled ~jobs:None (app 0) in
  let _ = ok_machine "spawn" (H.Registry.spawn_many d.reg 3) in
  let m = H.Registry.metrics d.reg in
  let r = ok_rollout "begin_" (H.Rollout.begin_ ~seed:5 d.reg (app 1)) in
  Alcotest.(check int) "begun counted" 1 m.H.Host_metrics.rollouts_begun;
  Alcotest.(check int)
    "cohort size recorded" 1 m.H.Host_metrics.canary_sessions_last;
  (match H.Rollout.begin_ ~seed:5 d.reg (app 2) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "a second begin_ must be refused");
  (match H.Rollout.promote r with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "promote from Staged must be refused");
  (match H.Registry.set_program d.reg (app 2) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "set_program during an open rollout must be refused");
  (* abandoning a never-canaried transaction is a pure close *)
  (match H.Rollout.rollback r with
  | [] -> ()
  | _ -> Alcotest.fail "abort from Staged must be a pure close");
  Alcotest.(check int) "rollback counted" 1 m.H.Host_metrics.rollouts_rolled_back;
  (match H.Rollout.rollback r with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "resolving twice must be refused");
  (* the full promote cycle re-enables flat broadcasts *)
  let r2 = ok_rollout "begin_ 2" (H.Rollout.begin_ ~seed:6 d.reg (app 1)) in
  let _ = H.Rollout.canary r2 in
  let _ = H.Rollout.promote r2 in
  Alcotest.(check int) "promote counted" 1 m.H.Host_metrics.rollouts_promoted;
  (match H.Broadcast.update d.reg (app 2) with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "broadcast after promote: %s" (Machine.error_to_string e));
  let s = H.Registry.snapshot d.reg in
  check_contains "snapshot prints the rollout counters"
    (H.Host_metrics.to_string s) "rollouts"

let test_compose_folds_in_order () =
  let p0 = app 0 and p1 = app 1 and p2 = app 2 in
  let got =
    H.Rollout.compose ~base:p0
      [
        (fun _ -> p1);
        (fun p ->
          Alcotest.(check bool) "second edit sees the first" true (p == p1);
          p2);
      ]
  in
  Alcotest.(check bool) "the composed change set is the last edit" true
    (got == p2)

let test_transaction_edit_class () =
  (* a Mutate.transaction change set (2-4 stacked edits) staged and
     promoted as one rollout, against the real surface pipeline *)
  let rng = Prng.create 7 in
  let base_src = Live_workloads.Mortgage.source ~listings:3 () in
  match Live_conformance.Mutate.transaction rng base_src with
  | None -> Alcotest.fail "no compiling transaction mutant found"
  | Some src ->
      let base = (ok_compile base_src).Live_surface.Compile.core in
      let target = (ok_compile src).Live_surface.Compile.core in
      let d = make_driver ~evaluator:Machine.Compiled ~jobs:None base in
      let _ = ok_machine "spawn" (H.Registry.spawn_many d.reg 4) in
      let r = ok_rollout "begin_" (H.Rollout.begin_ ~fraction:0.5 ~seed:9 d.reg target) in
      check_contains "the change set's dirty definitions are reported"
        (H.Rollout.summary r) "touches [";
      let _ = H.Rollout.canary r in
      let h = H.Rollout.observe r in
      if not (H.Rollout.healthy h) then
        Alcotest.failf "unhealthy: %s" (H.Rollout.summary r);
      let _ = H.Rollout.promote r in
      Alcotest.(check (list (pair int string)))
        "fleet-wide on the transaction target" []
        (H.Registry.check_epochs d.reg)

let test_oracle_covers_host_txn () =
  Alcotest.(check bool) "host-txn is differentially fuzzed" true
    (List.mem "host-txn" Live_conformance.Oracle.all_configs)

let suite =
  [
    prop_promote_equals_broadcast;
    prop_rollback_equals_never_rolled_out;
    prop_traffic_never_crosses_epochs;
    prop_cohort_accounting_identity;
    slow_case
      "promote ≡ broadcast and rollback ≡ no-op across {subst,compiled} × \
       {seq, jobs 1, jobs 4}"
      test_digest_matrix;
    case "lifecycle guards and rollout metrics"
      test_lifecycle_guards_and_metrics;
    case "compose folds edits first-edit-first" test_compose_folds_in_order;
    case "a Mutate.transaction change set rides one rollout"
      test_transaction_edit_class;
    case "host-txn rides the differential fuzzer" test_oracle_covers_host_txn;
  ]
