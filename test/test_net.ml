(** The networked host ([lib/net]): wire-codec totality and
    canonicity, snapshot persistence, and the end-to-end
    detach/resume soundness statement —

    - {b codec}: [decode (encode f)] returns [f] exactly, re-encoding
      is byte-identical (qcheck over the whole frame grammar), every
      truncation of a valid frame is [Need_more] and arbitrary garbage
      is [Corrupt] or a valid decode — never an exception; the on-disk
      format (version byte included) is pinned by a golden file;
    - {b snapshot}: [of_string (to_string s)] re-prints
      byte-identically, and a malformed text is an [Error], never an
      exception;
    - {b persistence}: detach + restore is observationally invisible —
      a session snapshotted mid-trace and resumed finishes the trace
      byte-identical to one that never detached, under both expression
      engines (the ISSUE's digest-equality acceptance statement);
    - {b server}: a real Unix-socket fleet driven by the lockstep
      client agrees state-for-state with a direct in-process fleet
      replaying the same seeded trace (transport invariance), with
      detach/resume and a mid-run broadcast in the loop. *)

open Helpers
module Wire = Live_net.Wire
module Snapshot = Live_net.Snapshot
module H = Live_host
module Session = Live_runtime.Session
module Prng = Live_conformance.Prng

let app version : Live_core.Program.t =
  (Live_workloads.Synthetic.compile_exn
     (Live_workloads.Synthetic.host_app ~rows:4 ~version ()))
    .Live_surface.Compile.core

(* ------------------------------------------------------------------ *)
(* Wire codec                                                          *)
(* ------------------------------------------------------------------ *)

module Gen_frame = struct
  open QCheck2.Gen

  let small_id = int_bound 100_000
  let small_str = string_size ~gen:printable (int_range 0 40)

  let event =
    oneof
      [
        (let* x = int_bound 1000 in
         let* y = int_bound 1000 in
         pure (Wire.Ev_tap { x; y }));
        pure Wire.Ev_back;
      ]

  let client_frame =
    oneof
      [
        (let* client = small_str in
         let* sessions = int_range 1 64 in
         pure (Wire.Hello { client; sessions }));
        (let* session = small_id in
         let* ev = event in
         pure (Wire.Event { session; ev }));
        (small_id >|= fun session -> Wire.Detach { session });
        (small_str >|= fun snapshot -> Wire.Resume { snapshot });
        pure Wire.Stats;
        pure Wire.Bye;
        (small_str >|= fun program -> Wire.Update { program });
        (let* txn = small_id in
         let* program = small_str in
         pure (Wire.Prepare { txn; program }));
        (small_id >|= fun txn -> Wire.Commit { txn });
        (small_id >|= fun txn -> Wire.Abort { txn });
        pure Wire.Observe;
        (small_id >|= fun count -> Wire.Rebalance { count });
        pure Wire.Stats_data;
      ]

  let host_frame =
    oneof
      [
        (let* session = small_id in
         let* width = int_range 1 256 in
         let* frame = small_str in
         pure (Wire.Attach { session; width; frame }));
        (let* session = small_id in
         let* height = int_range 0 64 in
         let* acks = int_bound 64 in
         let* rows =
           list_size (int_range 0 8)
             (let* i = int_bound 63 in
              let* s = small_str in
              pure (i, s))
         in
         pure (Wire.Delta { session; height; acks; rows }));
        (let* session = small_id in
         let* snapshot = small_str in
         pure (Wire.Detached { session; snapshot }));
        (let* code = int_range 1 6 in
         let* msg = small_str in
         pure (Wire.Error { code; msg }));
        (small_str >|= fun text -> Wire.Metrics { text });
        (small_str >|= fun info -> Wire.Ack { info });
        (let* sessions =
           list_size (int_range 0 6)
             (let* id = small_id in
              let* obs = small_str in
              pure (id, obs))
         in
         pure (Wire.Observed { sessions }));
      ]

  let frame =
    oneof
      [
        (client_frame >|= fun f -> Wire.Client f);
        (host_frame >|= fun f -> Wire.Host f);
      ]
end

let prop_roundtrip =
  qcheck ~count:500 "wire: decode (encode f) = f, re-encode byte-identical"
    Gen_frame.frame (fun f ->
      let bytes = Wire.encode f in
      match Wire.decode bytes with
      | Wire.Frame (f', consumed) ->
          if not (Wire.equal f f') then
            QCheck2.Test.fail_reportf "decode mismatch: %a <> %a" Wire.pp f
              Wire.pp f';
          if consumed <> String.length bytes then
            QCheck2.Test.fail_reportf "consumed %d of %d bytes" consumed
              (String.length bytes);
          if Wire.encode f' <> bytes then
            QCheck2.Test.fail_reportf "re-encode not byte-identical for %a"
              Wire.pp f;
          true
      | Wire.Need_more -> QCheck2.Test.fail_reportf "Need_more on a full frame"
      | Wire.Corrupt m -> QCheck2.Test.fail_reportf "Corrupt: %s" m)

let prop_truncation =
  qcheck ~count:200 "wire: every truncation is Need_more, never an exception"
    Gen_frame.frame (fun f ->
      let bytes = Wire.encode f in
      for k = 0 to String.length bytes - 1 do
        match Wire.decode (String.sub bytes 0 k) with
        | Wire.Need_more -> ()
        | Wire.Frame _ ->
            QCheck2.Test.fail_reportf "truncation to %d bytes decoded" k
        | Wire.Corrupt m ->
            QCheck2.Test.fail_reportf "truncation to %d bytes Corrupt: %s" k m
      done;
      true)

let prop_garbage =
  qcheck ~count:500 "wire: arbitrary bytes never raise"
    QCheck2.Gen.(string_size ~gen:char (int_range 0 64))
    (fun s ->
      (match Wire.decode s with
      | Wire.Frame _ | Wire.Need_more | Wire.Corrupt _ -> ());
      true)

(* A valid frame whose body is then corrupted in one byte: must never
   raise, and a corrupted version byte must be Corrupt. *)
let prop_bitflip =
  qcheck ~count:200 "wire: single corrupted body byte never raises"
    QCheck2.Gen.(pair Gen_frame.frame (int_bound 1_000_000))
    (fun (f, salt) ->
      let bytes = Bytes.of_string (Wire.encode f) in
      if Bytes.length bytes > 4 then begin
        let pos = 4 + (salt mod (Bytes.length bytes - 4)) in
        Bytes.set bytes pos
          (Char.chr (Char.code (Bytes.get bytes pos) lxor 0xFF));
        match Wire.decode (Bytes.to_string bytes) with
        | Wire.Frame _ | Wire.Need_more | Wire.Corrupt _ -> ()
      end;
      true)

(* -- the raw relay fast path --------------------------------------- *)

(* The session substitution [relay_rewrite] claims to perform, spelled
   in the typed world: the five session-addressed frames with the id
   replaced, [None] for every other tag. *)
let with_session (f : Wire.frame) (session : int) : Wire.frame option =
  match f with
  | Wire.Client (Wire.Event e) ->
      Some (Wire.Client (Wire.Event { e with session }))
  | Wire.Client (Wire.Detach _) -> Some (Wire.Client (Wire.Detach { session }))
  | Wire.Host (Wire.Attach a) -> Some (Wire.Host (Wire.Attach { a with session }))
  | Wire.Host (Wire.Delta d) -> Some (Wire.Host (Wire.Delta { d with session }))
  | Wire.Host (Wire.Detached d) ->
      Some (Wire.Host (Wire.Detached { d with session }))
  | _ -> None

let prop_relay_rewrite =
  qcheck ~count:500
    "wire: relay_rewrite ≡ decode; substitute id; re-encode (byte-identical)"
    QCheck2.Gen.(pair Gen_frame.frame Gen_frame.small_id)
    (fun (f, session) ->
      let bytes = Wire.encode f in
      match Wire.peek bytes with
      | Wire.Raw_need_more | Wire.Raw_corrupt _ ->
          QCheck2.Test.fail_reportf "peek rejected a valid frame %a" Wire.pp f
      | Wire.Raw r ->
          if r.Wire.r_off <> 0 || r.Wire.r_total <> String.length bytes then
            QCheck2.Test.fail_reportf "peek misframed %a" Wire.pp f;
          (* the blind passthrough is byte-identical *)
          let out = Buffer.create 64 in
          Wire.relay out bytes r;
          if Buffer.contents out <> bytes then
            QCheck2.Test.fail_reportf "relay not byte-identical for %a" Wire.pp
              f;
          (match with_session f r.Wire.r_session with
          | Some f' when Wire.session_addressed r.Wire.r_tag ->
              (* peek read the id the typed view holds *)
              if not (Wire.equal f f') then
                QCheck2.Test.fail_reportf "peek read session %d out of %a"
                  r.Wire.r_session Wire.pp f
          | Some _ ->
              QCheck2.Test.fail_reportf
                "tag 0x%02x addressed in the typed world but not for peek"
                r.Wire.r_tag
          | None ->
              if Wire.session_addressed r.Wire.r_tag then
                QCheck2.Test.fail_reportf
                  "tag 0x%02x session-addressed for peek but not in the typed \
                   world"
                  r.Wire.r_tag);
          (match with_session f session with
          | None -> ()
          | Some f' ->
              let out = Buffer.create 64 in
              Wire.relay_rewrite out bytes r ~session;
              if Buffer.contents out <> Wire.encode f' then
                QCheck2.Test.fail_reportf
                  "relay_rewrite to %d differs from re-encode for %a" session
                  Wire.pp f);
          true)

let describe_decoded = function
  | Wire.Frame _ -> "Frame"
  | Wire.Need_more -> "Need_more"
  | Wire.Corrupt m -> "Corrupt: " ^ m

let prop_peek_agreement =
  qcheck ~count:300
    "wire: peek agrees with decode on framing (truncation, corruption)"
    QCheck2.Gen.(pair Gen_frame.frame (int_bound 1_000_000))
    (fun (f, salt) ->
      let bytes = Wire.encode f in
      for k = 0 to String.length bytes - 1 do
        match Wire.peek (String.sub bytes 0 k) with
        | Wire.Raw_need_more -> ()
        | Wire.Raw r ->
            QCheck2.Test.fail_reportf
              "peek framed a %d-byte truncation as %d bytes" k r.Wire.r_total
        | Wire.Raw_corrupt m ->
            QCheck2.Test.fail_reportf "peek corrupt on truncation to %d: %s" k
              m
      done;
      (* peek is envelope-strict but payload-blind: [Raw] may still
         decode [Corrupt], but a peek verdict of need-more/corrupt must
         agree with the decoder *)
      let b = Bytes.of_string bytes in
      let pos = salt mod Bytes.length b in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
      let s = Bytes.to_string b in
      (match (Wire.peek s, Wire.decode s) with
      | Wire.Raw_corrupt _, Wire.Corrupt _ -> ()
      | (Wire.Raw_corrupt m, v) ->
          QCheck2.Test.fail_reportf "peek Corrupt (%s) but decode %s" m
            (describe_decoded v)
      | Wire.Raw_need_more, Wire.Need_more -> ()
      | (Wire.Raw_need_more, v) ->
          QCheck2.Test.fail_reportf "peek Need_more but decode %s"
            (describe_decoded v)
      | Wire.Raw _, _ -> ());
      true)

let prop_event_payload_ok =
  qcheck ~count:500
    "wire: event_payload_ok accepts exactly what decode accepts"
    QCheck2.Gen.(pair Gen_frame.frame (int_bound 1_000_000))
    (fun (f, salt) ->
      let check s =
        match Wire.peek s with
        | Wire.Raw r when r.Wire.r_tag = 0x02 ->
            let ok = Wire.event_payload_ok s r in
            let accepts =
              match Wire.decode s with
              | Wire.Frame (Wire.Client (Wire.Event _), _) -> true
              | _ -> false
            in
            if ok <> accepts then
              QCheck2.Test.fail_reportf
                "event_payload_ok %b but the decoder says %b" ok accepts
        | _ -> ()
      in
      let bytes = Wire.encode f in
      check bytes;
      let b = Bytes.of_string bytes in
      let pos = salt mod Bytes.length b in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
      check (Bytes.to_string b);
      true)

(* The golden corpus: one frame of every tag, encoded and hex-dumped.
   Catching an unintentional format change is the whole point: if this
   test fails, either revert the codec change or bump {!Wire.version}
   AND regenerate the file. *)
let golden_frames : Wire.frame list =
  [
    Wire.Client (Wire.Hello { client = "live-load"; sessions = 3 });
    Wire.Client (Wire.Event { session = 7; ev = Wire.Ev_tap { x = 11; y = 2 } });
    Wire.Client (Wire.Event { session = 8; ev = Wire.Ev_back });
    Wire.Client (Wire.Detach { session = 9 });
    Wire.Client (Wire.Resume { snapshot = "(snapshot)" });
    Wire.Client Wire.Stats;
    Wire.Client Wire.Bye;
    Wire.Host (Wire.Attach { session = 7; width = 32; frame = "a\nb\n" });
    Wire.Host
      (Wire.Delta
         { session = 7; height = 4; acks = 2; rows = [ (0, "x"); (3, "yz") ] });
    Wire.Host (Wire.Detached { session = 9; snapshot = "(snapshot)" });
    Wire.Host (Wire.Error { code = 2; msg = "7 rejected by backpressure" });
    Wire.Host (Wire.Metrics { text = "host metrics\n" });
    Wire.Client (Wire.Update { program = "(program)" });
    Wire.Client (Wire.Prepare { txn = 4; program = "(program)" });
    Wire.Client (Wire.Commit { txn = 4 });
    Wire.Client (Wire.Abort { txn = 4 });
    Wire.Client Wire.Observe;
    Wire.Client (Wire.Rebalance { count = 2 });
    Wire.Client Wire.Stats_data;
    Wire.Host (Wire.Ack { info = "prepared txn 4 (epoch 1)" });
    Wire.Host
      (Wire.Observed { sessions = [ (0, "g = 1\n--\n"); (2, "g = 2\n--\n") ] });
  ]

let hex (s : string) : string =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.init (String.length s) (fun i -> Char.code s.[i])))

let golden_text () : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "# wire format v%d — regenerate only on a version bump\n"
       Wire.version);
  List.iter
    (fun f ->
      Buffer.add_string buf (Fmt.str "%a\n" Wire.pp f);
      Buffer.add_string buf (hex (Wire.encode f));
      Buffer.add_char buf '\n')
    golden_frames;
  Buffer.contents buf

let golden_path name =
  let rel = Filename.concat "traces" name in
  if Sys.file_exists rel then rel else Filename.concat "test" rel

let test_wire_golden () =
  let path = golden_path "wire_v3.golden" in
  if Sys.getenv_opt "WIRE_GOLDEN_REGEN" = Some "1" then begin
    let oc = open_out_bin path in
    output_string oc (golden_text ());
    close_out oc
  end;
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let want = really_input_string ic n in
  close_in ic;
  Alcotest.(check string) "pinned wire format" want (golden_text ())

(* ------------------------------------------------------------------ *)
(* Snapshot text                                                       *)
(* ------------------------------------------------------------------ *)

let mk_session ?(evaluator = Live_core.Machine.Compiled) ?(cache = false) () :
    Session.t =
  match Session.create ~width:32 ~cache ~evaluator (app 0) with
  | Ok s -> s
  | Error e -> Alcotest.failf "boot: %s" (Live_core.Machine.error_to_string e)

let drive (s : Session.t) (rng : Prng.t) (n : int) : unit =
  for _ = 1 to n do
    if Prng.int rng 10 = 0 then ignore (Session.back s)
    else ignore (Session.tap s ~x:(Prng.int rng 32) ~y:(Prng.int rng 7))
  done

let test_snapshot_roundtrip () =
  let s = mk_session () in
  drive s (Prng.create 7) 20;
  let snap =
    Snapshot.of_session ~pending:[ Wire.Ev_tap { x = 1; y = 2 }; Wire.Ev_back ]
      s
  in
  let text = Snapshot.to_string snap in
  match Snapshot.of_string text with
  | Error m -> Alcotest.failf "of_string: %s" m
  | Ok snap' ->
      Alcotest.(check string) "re-print byte-identical" text
        (Snapshot.to_string snap');
      Alcotest.(check bool) "program survives" true
        (Snapshot.program_equal snap.Snapshot.program snap'.Snapshot.program)

let test_snapshot_malformed () =
  let s = mk_session () in
  let text = Snapshot.to_string (Snapshot.of_session s) in
  let cases =
    [
      "";
      "(";
      "()";
      "(snapshot)";
      "(snapshot (version 99))";
      String.sub text 0 (String.length text / 2);
      text ^ "garbage";
      Helpers.replace text "(version 1)" "(version 2)";
    ]
  in
  List.iter
    (fun c ->
      match Snapshot.of_string c with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "malformed snapshot accepted: %S" c)
    cases

(* ------------------------------------------------------------------ *)
(* Restore ≡ never detached                                            *)
(* ------------------------------------------------------------------ *)

(* One seeded interaction, detached and resumed at the midpoint; the
   control session plays the same events straight through.  Both must
   finish byte-identical — store, stack, trace, pixels. *)
let check_restore_invisible ~(evaluator : Live_core.Machine.evaluator)
    ~(cache : bool) (seed : int) =
  let control = mk_session ~evaluator ~cache () in
  let subject = mk_session ~evaluator ~cache () in
  let rng_c = Prng.create (Prng.derive seed 1) in
  let rng_s = Prng.create (Prng.derive seed 1) in
  drive control rng_c 15;
  drive subject rng_s 15;
  (* detach: capture, throw the live session away, restore *)
  let snap = Snapshot.of_session subject in
  let text = Snapshot.to_string snap in
  let subject' =
    match Snapshot.of_string text with
    | Error m -> Alcotest.failf "of_string: %s" m
    | Ok snap' -> (
        match Snapshot.restore snap' with
        | Error m -> Alcotest.failf "restore: %s" m
        | Ok s -> s)
  in
  drive control rng_c 15;
  drive subject' rng_s 15;
  Alcotest.(check string)
    (Printf.sprintf "observable state (seed %d)" seed)
    (H.Registry.observe_session control)
    (H.Registry.observe_session subject');
  Alcotest.(check string)
    (Printf.sprintf "pixels (seed %d)" seed)
    (Session.screenshot control)
    (Session.screenshot subject')

let test_restore_invisible_subst () =
  List.iter
    (check_restore_invisible ~evaluator:Live_core.Machine.Subst ~cache:false)
    [ 1; 2; 3 ]

let test_restore_invisible_compiled () =
  List.iter
    (check_restore_invisible ~evaluator:Live_core.Machine.Compiled ~cache:true)
    [ 1; 2; 3 ]

(* Cross-engine restore: a snapshot written by the substitution engine
   restores under the compiled engine's host (the evaluator rides in
   the snapshot — restore honours it). *)
let test_restore_carries_evaluator () =
  let s = mk_session ~evaluator:Live_core.Machine.Subst () in
  drive s (Prng.create 11) 10;
  let snap = Snapshot.of_session s in
  match Snapshot.restore snap with
  | Error m -> Alcotest.failf "restore: %s" m
  | Ok s' ->
      Alcotest.(check bool) "evaluator preserved" true
        (Session.evaluator s' = Live_core.Machine.Subst);
      Alcotest.(check string) "state preserved"
        (H.Registry.observe_session s)
        (H.Registry.observe_session s')

(* save/load: the file round-trip, including the atomic write path. *)
let test_snapshot_save_load () =
  let s = mk_session () in
  drive s (Prng.create 13) 10;
  let snap = Snapshot.of_session s in
  let path = Filename.temp_file "live-snap" ".sexp" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Snapshot.save path snap;
      match Snapshot.load path with
      | Error m -> Alcotest.failf "load: %s" m
      | Ok snap' ->
          Alcotest.(check string) "file round-trip"
            (Snapshot.to_string snap)
            (Snapshot.to_string snap'))

(* ------------------------------------------------------------------ *)
(* Delta helpers                                                       *)
(* ------------------------------------------------------------------ *)

let prop_delta =
  qcheck ~count:300 "wire: apply_delta ∘ delta_of_frames = id"
    QCheck2.Gen.(
      pair
        (array_size (int_range 0 12)
           (string_size ~gen:printable (int_range 0 8)))
        (array_size (int_range 0 12)
           (string_size ~gen:printable (int_range 0 8))))
    (fun (prev, next) ->
      let rows = Wire.delta_of_frames ~prev next in
      let got = Wire.apply_delta prev ~height:(Array.length next) ~rows in
      got = next)

(* ------------------------------------------------------------------ *)
(* The server, end to end over a real socket                           *)
(* ------------------------------------------------------------------ *)

let test_server_e2e () =
  let module Server = Live_net.Server in
  let module Client = Live_net.Client in
  let sessions = 8 and conns = 3 and rounds = 12 and seed = 42 in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "live-test-net-%d.sock" (Unix.getpid ()))
  in
  let config =
    {
      H.Registry.default_config with
      H.Registry.width = 32;
      queue_capacity = 16;
    }
  in
  let srv = Server.create ~config ~socket (app 0) in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let reg = Server.registry srv in
  let rngs =
    Array.init sessions (fun s -> Prng.create (Prng.derive seed s))
  in
  let gen ~slot ~round:_ =
    let rng = rngs.(slot) in
    if Prng.int rng 10 = 0 then Wire.Ev_back
    else Wire.Ev_tap { x = Prng.int rng 32; y = Prng.int rng 7 }
  in
  let broadcast_round = rounds / 2 in
  let on_round r =
    if r = broadcast_round then begin
      (match H.Broadcast.update reg (app 1) with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "broadcast: %s" (Live_core.Machine.error_to_string e));
      Server.mark_all_dirty srv
    end
  in
  let report =
    match
      Client.run ~socket ~conns ~sessions ~rounds ~gen ~detach_every:4
        ~on_round
        ~pump:(fun () -> ignore (Server.step ~timeout:0. srv))
        ()
    with
    | Ok r -> r
    | Error m -> Alcotest.failf "client: %s" m
  in
  Alcotest.(check int) "every event answered" (sessions * rounds)
    (H.Host_metrics.hist_count report.Client.latency
    + report.Client.rejected);
  Alcotest.(check bool) "detach/resume exercised" true
    (report.Client.detaches > 0 && report.Client.detaches = report.Client.resumes);
  (* reconstructed frames = server screenshots *)
  List.iteri
    (fun slot id ->
      match H.Registry.session reg id with
      | None -> Alcotest.failf "slot %d session %d missing" slot id
      | Some s ->
          Alcotest.(check (array string))
            (Printf.sprintf "slot %d frame" slot)
            (Wire.rows_of_text (Session.screenshot s))
            report.Client.frames.(slot))
    report.Client.session_ids;
  (* transport invariance: direct in-process replay, same seeds *)
  let sreg = H.Registry.create ~config (app 0) in
  (match H.Registry.spawn_many sreg sessions with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "spawn: %s" (Live_core.Machine.error_to_string e));
  let sched = H.Scheduler.create sreg in
  let srngs =
    Array.init sessions (fun s -> Prng.create (Prng.derive seed s))
  in
  for round = 0 to rounds - 1 do
    Array.iteri
      (fun s rng ->
        let ev =
          if Prng.int rng 10 = 0 then H.Registry.Back
          else
            H.Registry.Tap { x = Prng.int rng 32; y = Prng.int rng 7 }
        in
        ignore (H.Registry.offer sreg s ev))
      srngs;
    (match H.Scheduler.drain sched with
    | Ok _ -> ()
    | Error m -> Alcotest.fail m);
    if round = broadcast_round then
      match H.Broadcast.update sreg (app 1) with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "shadow broadcast: %s"
            (Live_core.Machine.error_to_string e)
  done;
  List.iteri
    (fun slot id ->
      let net = Option.get (H.Registry.session reg id) in
      let direct = Option.get (H.Registry.session sreg slot) in
      Alcotest.(check string)
        (Printf.sprintf "slot %d transport invariance" slot)
        (H.Registry.observe_session direct)
        (H.Registry.observe_session net))
    report.Client.session_ids;
  (* the fleet survives the client: Bye does not kill sessions *)
  Alcotest.(check int) "sessions survive Bye" sessions (H.Registry.size reg);
  match H.Registry.check_invariants reg with
  | [] -> ()
  | vs ->
      Alcotest.failf "invariants: %s"
        (String.concat "; "
           (List.map (fun (id, m) -> Printf.sprintf "#%d: %s" id m) vs))

(* Pipelining is invisible: the same seeded trace driven with
   window = 4 (credits in flight, barriers only at the broadcast
   round) must leave every session byte-identical to the lockstep
   window = 1 run — the server applies each session's events in FIFO
   order whatever the credit schedule.  Capacity is sized so neither
   run sheds events; both must answer all of them. *)
let test_pipelined_client () =
  let module Server = Live_net.Server in
  let module Client = Live_net.Client in
  let sessions = 6 and conns = 2 and rounds = 10 and seed = 7 in
  let config =
    {
      H.Registry.default_config with
      H.Registry.width = 32;
      queue_capacity = 64;
    }
  in
  let broadcast_round = rounds / 2 in
  let run_with ~window ~tag =
    let socket =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "live-test-net-pipe-%s-%d.sock" tag (Unix.getpid ()))
    in
    let srv = Server.create ~config ~socket (app 0) in
    Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
    let reg = Server.registry srv in
    let rngs =
      Array.init sessions (fun s -> Prng.create (Prng.derive seed s))
    in
    let gen ~slot ~round:_ =
      let rng = rngs.(slot) in
      if Prng.int rng 10 = 0 then Wire.Ev_back
      else Wire.Ev_tap { x = Prng.int rng 32; y = Prng.int rng 7 }
    in
    let on_round r =
      if r = broadcast_round then begin
        (match H.Broadcast.update reg (app 1) with
        | Ok _ -> ()
        | Error e ->
            Alcotest.failf "broadcast (%s): %s" tag
              (Live_core.Machine.error_to_string e));
        Server.mark_all_dirty srv
      end
    in
    let report =
      match
        Client.run ~socket ~conns ~sessions ~rounds ~gen ~window
          ~barrier:(fun r -> r = broadcast_round)
          ~on_round
          ~pump:(fun () -> ignore (Server.step ~timeout:0. srv))
          ()
      with
      | Ok r -> r
      | Error m -> Alcotest.failf "client (%s): %s" tag m
    in
    Alcotest.(check int)
      (Printf.sprintf "every event answered (%s)" tag)
      (sessions * rounds)
      (H.Host_metrics.hist_count report.Client.latency);
    Alcotest.(check int)
      (Printf.sprintf "nothing shed (%s)" tag)
      0 report.Client.rejected;
    let observations =
      List.map
        (fun id ->
          match H.Registry.session reg id with
          | None -> Alcotest.failf "session %d missing (%s)" id tag
          | Some _ -> H.Registry.observe_session (Option.get (H.Registry.session reg id)))
        report.Client.session_ids
    in
    (H.Registry.digest reg, observations, report.Client.frames)
  in
  let d1, obs1, frames1 = run_with ~window:1 ~tag:"w1" in
  let d4, obs4, frames4 = run_with ~window:4 ~tag:"w4" in
  Alcotest.(check string) "pipelining preserves the fleet digest" d1 d4;
  List.iteri
    (fun slot (a, b) ->
      Alcotest.(check string)
        (Printf.sprintf "slot %d state invariant under pipelining" slot)
        a b)
    (List.combine obs1 obs4);
  Array.iteri
    (fun slot rows ->
      Alcotest.(check (array string))
        (Printf.sprintf "slot %d client frame invariant under pipelining" slot)
        rows frames4.(slot))
    frames1

(* A host-tagged frame from a client is a protocol violation: Error 1
   and the connection closes — and the server survives. *)
let test_server_rejects_garbage () =
  let module Server = Live_net.Server in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "live-test-net-g-%d.sock" (Unix.getpid ()))
  in
  let srv = Server.create ~socket (app 0) in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let bad = Wire.encode (Wire.Host (Wire.Metrics { text = "nope" })) in
  ignore (Unix.write_substring fd bad 0 (String.length bad));
  (* pump the server until the reply arrives *)
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  Unix.set_nonblock fd;
  let deadline = 200 in
  let rec wait n =
    if n = 0 then Alcotest.fail "no Error reply";
    ignore (Server.step ~timeout:0.01 srv);
    (match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | k -> Buffer.add_subbytes buf chunk 0 k
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
    match Wire.decode (Buffer.contents buf) with
    | Wire.Frame (Wire.Host (Wire.Error { code; _ }), _) ->
        Alcotest.(check int) "protocol violation code" 1 code
    | Wire.Frame (f, _) ->
        Alcotest.failf "unexpected reply %s" (Fmt.str "%a" Wire.pp f)
    | Wire.Need_more | Wire.Corrupt _ -> wait (n - 1)
  in
  wait deadline

(* ------------------------------------------------------------------ *)
(* Signal hardening: EINTR must not surface as idleness or errors      *)
(* ------------------------------------------------------------------ *)

(* A one-shot SIGALRM lands while the server is blocked in select with
   a connected-but-silent client.  The old loop treated the EINTR as
   "nothing happened" and returned after ~30 ms; the hardened loop
   retries the select and blocks out the full timeout — and the
   connection is still perfectly usable afterwards. *)
let test_server_select_eintr () =
  let module Server = Live_net.Server in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "live-test-net-eintr-%d.sock" (Unix.getpid ()))
  in
  let srv = Server.create ~socket (app 0) in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let prev = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
  Fun.protect ~finally:(fun () -> ignore (Sys.signal Sys.sigalrm prev))
  @@ fun () ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* let the server accept the connection *)
  for _ = 1 to 5 do
    ignore (Server.step ~timeout:0.01 srv)
  done;
  (* one-shot timer: fires once at 30 ms, well inside the 200 ms select *)
  let old_timer =
    Unix.setitimer Unix.ITIMER_REAL
      { Unix.it_value = 0.03; it_interval = 0. }
  in
  ignore old_timer;
  let t0 = Unix.gettimeofday () in
  ignore (Server.step ~timeout:0.2 srv);
  let elapsed = Unix.gettimeofday () -. t0 in
  ignore (Unix.setitimer Unix.ITIMER_REAL { Unix.it_value = 0.; it_interval = 0. });
  Alcotest.(check bool)
    (Printf.sprintf "select retried after EINTR (%.0f ms)" (elapsed *. 1000.))
    true (elapsed >= 0.15);
  (* the interrupted connection still works: a Stats round-trip *)
  let req = Wire.encode (Wire.Client Wire.Stats) in
  ignore (Unix.write_substring fd req 0 (String.length req));
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  Unix.set_nonblock fd;
  let rec wait n =
    if n = 0 then Alcotest.fail "no Metrics reply after EINTR";
    ignore (Server.step ~timeout:0.01 srv);
    (match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | k -> Buffer.add_subbytes buf chunk 0 k
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
    match Wire.decode (Buffer.contents buf) with
    | Wire.Frame (Wire.Host (Wire.Metrics _), _) -> ()
    | Wire.Frame (f, _) ->
        Alcotest.failf "unexpected reply %s" (Fmt.str "%a" Wire.pp f)
    | Wire.Need_more | Wire.Corrupt _ -> wait (n - 1)
  in
  wait 200

(* A 5 ms interval timer storms the whole client/server exchange with
   signals: every read, write and select gets interrupted repeatedly.
   The session must come out exactly as if no signal ever fired. *)
let test_server_eintr_storm () =
  let module Server = Live_net.Server in
  let module Client = Live_net.Client in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "live-test-net-storm-%d.sock" (Unix.getpid ()))
  in
  let srv = Server.create ~socket (app 0) in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let prev = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
  Fun.protect
    ~finally:(fun () ->
      ignore
        (Unix.setitimer Unix.ITIMER_REAL { Unix.it_value = 0.; it_interval = 0. });
      ignore (Sys.signal Sys.sigalrm prev))
  @@ fun () ->
  ignore
    (Unix.setitimer Unix.ITIMER_REAL
       { Unix.it_value = 0.005; it_interval = 0.005 });
  let sessions = 4 and rounds = 20 and seed = 7 in
  let rngs =
    Array.init sessions (fun s -> Prng.create (Prng.derive seed s))
  in
  let gen ~slot ~round:_ =
    let rng = rngs.(slot) in
    if Prng.int rng 10 = 0 then Wire.Ev_back
    else Wire.Ev_tap { x = Prng.int rng 32; y = Prng.int rng 7 }
  in
  let report =
    match
      Client.run ~socket ~conns:2 ~sessions ~rounds ~gen ~detach_every:6
        ~pump:(fun () -> ignore (Server.step ~timeout:0. srv))
        ()
    with
    | Ok r -> r
    | Error m -> Alcotest.failf "client under signal storm: %s" m
  in
  Alcotest.(check int) "every event answered under storm"
    (sessions * rounds)
    (H.Host_metrics.hist_count report.Client.latency
    + report.Client.rejected);
  Alcotest.(check int) "fleet intact" sessions
    (H.Registry.size (Server.registry srv))

(* ------------------------------------------------------------------ *)
(* The host-net oracle configuration                                   *)
(* ------------------------------------------------------------------ *)

(* Every step of a fuzzed trace followed by a full snapshot → wire →
   parse → restore → adopt cycle must stay byte-identical to the
   reference machine. *)
let prop_host_net_oracle =
  qcheck ~count:15 "oracle: host-net agrees with the machine"
    QCheck2.Gen.(int_bound 1_000_000_000)
    (fun seed ->
      let open Live_conformance in
      let trace = Engine.gen_trace ~n_events:8 ~seed () in
      match Oracle.run ~configs:[ "machine"; "host-net" ] trace with
      | Oracle.Agreed -> true
      | Oracle.Boot_failed _ -> true (* not this property's concern *)
      | Oracle.Diverged d ->
          QCheck2.Test.fail_reportf "seed %d: %s" seed
            (Fmt.str "%a" Oracle.pp_divergence d))

let suite =
  [
    prop_roundtrip;
    prop_truncation;
    prop_garbage;
    prop_bitflip;
    prop_relay_rewrite;
    prop_peek_agreement;
    prop_event_payload_ok;
    prop_delta;
    Alcotest.test_case "wire golden file" `Quick test_wire_golden;
    Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot rejects malformed" `Quick
      test_snapshot_malformed;
    Alcotest.test_case "restore invisible (subst)" `Quick
      test_restore_invisible_subst;
    Alcotest.test_case "restore invisible (compiled+cache)" `Quick
      test_restore_invisible_compiled;
    Alcotest.test_case "restore carries evaluator" `Quick
      test_restore_carries_evaluator;
    Alcotest.test_case "snapshot save/load" `Quick test_snapshot_save_load;
    Alcotest.test_case "server e2e over a real socket" `Quick test_server_e2e;
    Alcotest.test_case "pipelined client is state-invariant" `Quick
      test_pipelined_client;
    Alcotest.test_case "server rejects protocol violations" `Quick
      test_server_rejects_garbage;
    Alcotest.test_case "select retries on EINTR" `Quick
      test_server_select_eintr;
    Alcotest.test_case "signal storm leaves traffic intact" `Quick
      test_server_eintr_storm;
    prop_host_net_oracle;
  ]
