(** The domain-parallel host ([lib/host/parallel]): parallel execution
    must be {e deterministically equivalent} to the sequential
    scheduler — same seeded traces, byte-identical per-session stores,
    stacks and framebuffers for every [jobs], with the loss accounting
    agreeing to the event — the broadcast barrier must never let an
    update overlap a tick, and {!Live_host.Host_metrics.merge} must
    preserve the accounting identity exactly. *)

open Helpers
module H = Live_host
module Session = Live_runtime.Session
module Prng = Live_conformance.Prng

let rows = 4
let width = 32

let app version : Live_core.Program.t =
  (Live_workloads.Synthetic.compile_exn
     (Live_workloads.Synthetic.host_app ~rows ~version ()))
    .Live_surface.Compile.core

(* ------------------------------------------------------------------ *)
(* Metrics merge (the per-domain → fleet-totals operation)             *)
(* ------------------------------------------------------------------ *)

let test_metrics_merge_accounting () =
  (* two instances that each satisfy the accounting identity against
     their own pending count *)
  let a = H.Host_metrics.create () in
  a.H.Host_metrics.events_in <- 100;
  a.H.Host_metrics.events_processed <- 70;
  a.H.Host_metrics.events_dropped <- 15;
  a.H.Host_metrics.events_rejected <- 10;
  let pending_a = 5 in
  let b = H.Host_metrics.create () in
  b.H.Host_metrics.events_in <- 40;
  b.H.Host_metrics.events_processed <- 33;
  b.H.Host_metrics.events_rejected <- 4;
  let pending_b = 3 in
  let ok m pending =
    H.Host_metrics.accounting_ok
      (H.Host_metrics.snapshot m ~sessions:1 ~pending ~cache:None)
  in
  Alcotest.(check bool) "a accounts" true (ok a pending_a);
  Alcotest.(check bool) "b accounts" true (ok b pending_b);
  let m = H.Host_metrics.merge a b in
  Alcotest.(check bool)
    "the identity survives the merge" true
    (ok m (pending_a + pending_b));
  Alcotest.(check int) "counters add exactly" 140 m.H.Host_metrics.events_in;
  Alcotest.(check int) "processed adds" 103 m.H.Host_metrics.events_processed;
  (* the inputs keep counting: merge is a fresh instance *)
  a.H.Host_metrics.events_in <- 101;
  Alcotest.(check int) "merge is a snapshot, not a view" 140
    m.H.Host_metrics.events_in

let test_histogram_union () =
  let a = H.Host_metrics.histogram () in
  let b = H.Host_metrics.histogram () in
  (* disjoint ranges: a holds 1..500 us, b holds 501..1000 us *)
  for i = 1 to 500 do
    H.Host_metrics.record a (float_of_int i *. 1000.)
  done;
  for i = 501 to 1000 do
    H.Host_metrics.record b (float_of_int i *. 1000.)
  done;
  let u = H.Host_metrics.union_histogram a b in
  Alcotest.(check int) "counts add" 1000 (H.Host_metrics.hist_count u);
  let p50 = H.Host_metrics.quantile u 0.5 in
  let p99 = H.Host_metrics.quantile u 0.99 in
  if p50 < 400_000. || p50 > 600_000. then
    Alcotest.failf "union p50 %.0f outside [400k, 600k]" p50;
  if p99 < 800_000. || p99 > 1_000_000. then
    Alcotest.failf "union p99 %.0f outside [800k, 1000k]" p99;
  (* extrema union: quantiles clamp to the combined observed range *)
  Alcotest.(check (float 0.0))
    "q=1 clamps to b's max" 1_000_000.
    (H.Host_metrics.quantile u 1.);
  let q0 = H.Host_metrics.quantile u 0. in
  if q0 < 1000. || q0 > 1200. then
    Alcotest.failf "union q=0 is %.0f, not near a's min" q0;
  (* the union is fresh: recording into an input changes nothing *)
  H.Host_metrics.record a 1.;
  Alcotest.(check int) "fresh" 1000 (H.Host_metrics.hist_count u)

(* ------------------------------------------------------------------ *)
(* parallel ≡ sequential                                               *)
(* ------------------------------------------------------------------ *)

(** Replay one seeded load scenario — per-session event bursts,
    mid-stream broadcasts, a final drain — through either the
    sequential scheduler ([jobs = None]) or the parallel pool, and
    return the canonical fleet digest plus the loss-accounting
    counters.  The ingress queues are deliberately tiny so drop-oldest
    evictions happen; determinism must cover the lossy paths too. *)
let run_scenario ?(sessions = 5) ?(rounds = 14) ?(capacity = 2)
    ?(updates = [ 4; 9 ]) ~seed (jobs : int option) :
    string * (int * int * int * int) =
  let config =
    {
      H.Registry.default_config with
      H.Registry.width;
      queue_capacity = capacity;
      queue_policy = H.Backpressure.Drop_oldest;
    }
  in
  let reg = H.Registry.create ~config (app 0) in
  let _ids = ok_machine "spawn" (H.Registry.spawn_many reg sessions) in
  let ids = Array.of_list (H.Registry.ids reg) in
  let rngs = Array.map (fun id -> Prng.create (Prng.derive seed id)) ids in
  let offer_burst i id =
    let rng = rngs.(i) in
    for _ = 0 to Prng.int rng 3 do
      let ev =
        if Prng.int rng 10 = 0 then H.Registry.Back
        else
          H.Registry.Tap
            { x = Prng.int rng width; y = Prng.int rng (rows + 3) }
      in
      ignore (H.Registry.offer reg id ev)
    done
  in
  let finish snapshot =
    let s = snapshot () in
    if not (H.Host_metrics.accounting_ok s) then
      Alcotest.failf "accounting mismatch (jobs=%s)"
        (match jobs with None -> "seq" | Some j -> string_of_int j);
    Alcotest.(check (list int))
      "violation-free fleet" []
      (List.map fst (H.Registry.check_invariants reg));
    ( H.Registry.digest reg,
      ( s.H.Host_metrics.s_events_in,
        s.H.Host_metrics.s_events_processed,
        s.H.Host_metrics.s_events_dropped,
        s.H.Host_metrics.s_events_rejected ) )
  in
  match jobs with
  | None ->
      let sched = H.Scheduler.create ~batch:8 reg in
      let version = ref 0 in
      for round = 0 to rounds - 1 do
        Array.iteri offer_burst ids;
        ignore (H.Scheduler.tick sched);
        if List.mem round updates then begin
          incr version;
          match H.Broadcast.update reg (app !version) with
          | Ok _ -> ()
          | Error e ->
              Alcotest.failf "broadcast: %s"
                (Live_core.Machine.error_to_string e)
        end
      done;
      (match H.Scheduler.drain sched with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m);
      finish (fun () -> H.Registry.snapshot reg)
  | Some jobs ->
      H.Parallel.with_pool ~jobs ~batch:8 reg (fun pool ->
          let version = ref 0 in
          for round = 0 to rounds - 1 do
            Array.iteri offer_burst ids;
            ignore (H.Parallel.tick pool);
            if List.mem round updates then begin
              incr version;
              match H.Parallel.update pool (app !version) with
              | Ok _ -> ()
              | Error e ->
                  Alcotest.failf "parallel broadcast: %s"
                    (Live_core.Machine.error_to_string e)
            end
          done;
          (match H.Parallel.drain pool with
          | Ok _ -> ()
          | Error m -> Alcotest.fail m);
          Alcotest.(check int)
            "no barrier violations" 0
            (H.Parallel.barrier_violations pool);
          finish (fun () -> H.Parallel.snapshot pool))

let prop_parallel_equals_sequential =
  qcheck ~count:12
    "parallel(jobs=1|2|4) ≡ sequential: byte-identical fleets, exact \
     accounting, under broadcasts and drops"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let sessions = 2 + (seed mod 4) in
      let d0, acct0 = run_scenario ~sessions ~seed None in
      List.for_all
        (fun jobs ->
          let d, acct = run_scenario ~sessions ~seed (Some jobs) in
          if not (String.equal d d0) then
            QCheck2.Test.fail_reportf
              "fleet digest diverges at jobs=%d (seed %d)" jobs seed
          else if acct <> acct0 then
            QCheck2.Test.fail_reportf
              "accounting diverges at jobs=%d (seed %d)" jobs seed
          else true)
        [ 1; 2; 4 ])

(** The lossless cross-check: ample queues, every event processed, and
    the per-domain metrics must sum to exactly the fleet total. *)
let test_domain_metrics_sum () =
  let reg = H.Registry.create
      ~config:{ H.Registry.default_config with H.Registry.width }
      (app 0)
  in
  let _ = ok_machine "spawn" (H.Registry.spawn_many reg 6) in
  H.Parallel.with_pool ~jobs:3 ~batch:4 reg (fun pool ->
      let tap = H.Registry.Tap { x = 2; y = 1 } in
      List.iter
        (fun id ->
          for _ = 1 to 5 do
            ignore (H.Registry.offer reg id tap)
          done)
        (H.Registry.ids reg);
      (match H.Parallel.drain pool with
      | Ok n -> Alcotest.(check int) "all processed" 30 n
      | Error m -> Alcotest.fail m);
      let per_domain =
        Array.fold_left
          (fun acc m -> acc + m.H.Host_metrics.events_processed)
          0
          (H.Parallel.domain_metrics pool)
      in
      Alcotest.(check int) "per-domain processed sums to the fleet" 30
        per_domain;
      let s = H.Parallel.snapshot pool in
      Alcotest.(check int) "fleet snapshot agrees" 30
        s.H.Host_metrics.s_events_processed;
      Alcotest.(check bool) "identity" true (H.Host_metrics.accounting_ok s);
      (* each session absorbed its 5 taps exactly once, wherever it ran *)
      List.iter
        (fun id ->
          match H.Registry.session reg id with
          | None -> Alcotest.fail "session vanished"
          | Some s ->
              Alcotest.(check (float 0.0))
                (Printf.sprintf "session %d tick global" id)
                5.0
                (get_store_num (Session.state s) "tick"))
        (H.Registry.ids reg))

(* ------------------------------------------------------------------ *)
(* The broadcast barrier                                               *)
(* ------------------------------------------------------------------ *)

(** Broadcasts fired from another domain while the coordinator ticks
    under load: the stop-the-world lock must serialize them against
    in-flight shards — zero barrier violations, every per-session
    update outcome clean, a healthy fleet, exact accounting. *)
let test_concurrent_broadcast_barrier () =
  let reg = H.Registry.create
      ~config:{ H.Registry.default_config with H.Registry.width }
      (app 0)
  in
  let _ = ok_machine "spawn" (H.Registry.spawn_many reg 8) in
  let n_updates = 5 in
  H.Parallel.with_pool ~jobs:4 ~batch:4 reg (fun pool ->
      let bad_outcomes = Atomic.make 0 in
      let updater =
        Domain.spawn (fun () ->
            for v = 1 to n_updates do
              (match H.Parallel.update pool (app v) with
              | Ok r ->
                  List.iter
                    (fun o ->
                      match o.H.Broadcast.outcome with
                      | Ok _ -> ()
                      | Error _ ->
                          ignore (Atomic.fetch_and_add bad_outcomes 1))
                    r.H.Broadcast.outcomes
              | Error _ -> ignore (Atomic.fetch_and_add bad_outcomes 1));
              (* let some ticks land between broadcasts *)
              Unix.sleepf 0.002
            done)
      in
      let rng = Prng.create 99 in
      let ids = Array.of_list (H.Registry.ids reg) in
      for _ = 1 to 300 do
        Array.iter
          (fun id ->
            let ev =
              if Prng.int rng 10 = 0 then H.Registry.Back
              else
                H.Registry.Tap
                  { x = Prng.int rng width; y = Prng.int rng (rows + 3) }
            in
            ignore (H.Registry.offer reg id ev))
          ids;
        ignore (H.Parallel.tick pool)
      done;
      Domain.join updater;
      (match H.Parallel.drain pool with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m);
      Alcotest.(check int)
        "a broadcast never overlapped a tick" 0
        (H.Parallel.barrier_violations pool);
      Alcotest.(check int) "every per-session update clean" 0
        (Atomic.get bad_outcomes);
      let s = H.Parallel.snapshot pool in
      Alcotest.(check int) "all broadcasts applied" n_updates
        s.H.Host_metrics.s_updates_applied;
      Alcotest.(check bool) "identity" true (H.Host_metrics.accounting_ok s);
      Alcotest.(check (list int))
        "no session saw a half-ticked fleet" []
        (List.map fst (H.Registry.check_invariants reg)))

(* ------------------------------------------------------------------ *)
(* Pool mechanics                                                      *)
(* ------------------------------------------------------------------ *)

let test_shutdown_is_idempotent_and_final () =
  let reg = H.Registry.create
      ~config:{ H.Registry.default_config with H.Registry.width }
      (app 0)
  in
  let _ = ok_machine "spawn" (H.Registry.spawn_many reg 2) in
  let pool = H.Parallel.create ~jobs:3 reg in
  Alcotest.(check int) "jobs clamped as given" 3 (H.Parallel.jobs pool);
  ignore (H.Parallel.tick pool);
  H.Parallel.shutdown pool;
  H.Parallel.shutdown pool;
  (match H.Parallel.tick pool with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "tick after shutdown must be refused");
  (* the registry survives the pool: a sequential scheduler drains it *)
  ignore (H.Registry.offer reg 0 (H.Registry.Tap { x = 2; y = 1 }));
  match H.Scheduler.drain (H.Scheduler.create reg) with
  | Ok n -> Alcotest.(check int) "registry still serviceable" 1 n
  | Error m -> Alcotest.fail m

let test_oracle_covers_host_parallel () =
  Alcotest.(check bool) "host-parallel is differentially fuzzed" true
    (List.mem "host-parallel" Live_conformance.Oracle.all_configs)

let prop_parallel_fleet_of_one_agrees_with_machine =
  qcheck ~count:10
    "a parallel fleet of one ≡ the reference machine on random traces"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let open Live_conformance in
      let t = Engine.gen_trace ~n_events:10 ~seed () in
      match Oracle.run ~configs:[ "machine"; "host-parallel" ] t with
      | Oracle.Agreed -> true
      | Oracle.Diverged d ->
          QCheck2.Test.fail_reportf "diverged: %a" Oracle.pp_divergence d
      | Oracle.Boot_failed m -> QCheck2.Test.fail_reportf "boot failed: %s" m)

let suite =
  [
    case "Host_metrics.merge preserves the accounting identity"
      test_metrics_merge_accounting;
    case "histogram union is quantile-safe" test_histogram_union;
    prop_parallel_equals_sequential;
    case "per-domain metrics sum exactly to fleet totals"
      test_domain_metrics_sum;
    slow_case "broadcasts from another domain hit the barrier, never a \
               half-ticked fleet"
      test_concurrent_broadcast_barrier;
    case "shutdown is idempotent; the registry outlives the pool"
      test_shutdown_is_idempotent_and_final;
    case "host-parallel rides the differential fuzzer"
      test_oracle_covers_host_parallel;
    prop_parallel_fleet_of_one_agrees_with_machine;
  ]
