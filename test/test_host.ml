(** The multi-session host ([lib/host]): the fleet-wide broadcast
    UPDATE must be observably identical to updating every session
    independently (and all-or-nothing on a failed typecheck), the
    bounded ingress queues must enforce their policies with exact
    loss accounting, the batching scheduler must drain fairly and
    coalesce only repaints, and a fleet of one must agree with the
    reference machine on random traces (the oracle's ["host"]
    configuration). *)

open Helpers
module H = Live_host
module Session = Live_runtime.Session
module Prng = Live_conformance.Prng

let rows = 4
let width = 32

let app version : Live_core.Program.t =
  (Live_workloads.Synthetic.compile_exn
     (Live_workloads.Synthetic.host_app ~rows ~version ()))
    .Live_surface.Compile.core

(** Canonical observation of one session, à la the conformance
    oracle: store, page stack, painted pixels. *)
let obs (s : Session.t) : string =
  let st = Session.state s in
  let store =
    Live_core.Store.bindings st.Live_core.State.store
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (g, v) ->
           Printf.sprintf "%s=%s" g (Live_core.Pretty.value_to_string v))
    |> String.concat ";"
  in
  let stack =
    st.Live_core.State.stack
    |> List.map (fun (p, v) ->
           Printf.sprintf "%s(%s)" p (Live_core.Pretty.value_to_string v))
    |> String.concat ";"
  in
  store ^ "\n" ^ stack ^ "\n" ^ Session.screenshot s

(** A deterministic per-session event stream: mostly taps across the
    app (some hit, some miss), occasionally BACK. *)
let gen_events ~seed ~n (id : H.Registry.id) : H.Registry.uevent list =
  let rng = Prng.create (Prng.derive seed id) in
  List.init n (fun _ ->
      if Prng.int rng 10 = 0 then H.Registry.Back
      else
        H.Registry.Tap
          { x = Prng.int rng width; y = Prng.int rng (rows + 3) })

(** Apply one event directly to a plain session, with the scheduler's
    error semantics: a failing event is consumed, the session keeps
    running. *)
let apply_direct (s : Session.t) (ev : H.Registry.uevent) : unit =
  match ev with
  | H.Registry.Tap { x; y } -> (
      match Session.tap s ~x ~y with Ok _ | Error _ -> ())
  | H.Registry.Back -> ( match Session.back s with Ok _ | Error _ -> ())

let make_fleet ?(config = { H.Registry.default_config with H.Registry.width })
    ~sessions version : H.Registry.t * H.Registry.id list =
  let reg = H.Registry.create ~config (app version) in
  let ids = ok_machine "spawn_many" (H.Registry.spawn_many reg sessions) in
  (reg, ids)

let fleet_session reg id =
  match H.Registry.session reg id with
  | Some s -> s
  | None -> Alcotest.failf "session %d not found" id

(* -- broadcast ≡ independent per-session updates ------------------- *)

let test_broadcast_equals_independent () =
  let n = 5 in
  let reg, ids = make_fleet ~sessions:n 0 in
  let sched = H.Scheduler.create ~batch:4 reg in
  let controls =
    List.map
      (fun _ -> ok_machine "control create" (Session.create ~width (app 0)))
      ids
  in
  let streams = List.map (gen_events ~seed:7 ~n:12) ids in
  (* drive the fleet through its ingress queues and the scheduler,
     the controls directly — per-session order is identical *)
  List.iter2
    (fun id evs ->
      List.iter
        (fun ev ->
          match H.Registry.offer reg id ev with
          | H.Backpressure.Accepted -> ()
          | _ -> Alcotest.fail "offer not accepted under default capacity")
        evs)
    ids streams;
  (match H.Scheduler.drain sched with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  List.iter2 (fun c evs -> List.iter (apply_direct c) evs) controls streams;
  List.iter2
    (fun id c ->
      Alcotest.(check string)
        (Printf.sprintf "pre-update obs of session %d" id)
        (obs c) (obs (fleet_session reg id)))
    ids controls;
  (* one broadcast vs. n independent updates of the same edit *)
  let rep =
    match H.Broadcast.update reg (app 1) with
    | Ok r -> r
    | Error e ->
        Alcotest.failf "broadcast rejected: %s"
          (Live_core.Machine.error_to_string e)
  in
  let control_reports =
    List.map (fun c -> ok_machine "independent update" (Session.update c (app 1))) controls
  in
  List.iter2
    (fun id c ->
      Alcotest.(check string)
        (Printf.sprintf "post-update obs of session %d" id)
        (obs c) (obs (fleet_session reg id)))
    ids controls;
  (* the per-session fix-up summaries match the independent ones *)
  List.iter2
    (fun o control_rep ->
      match o.H.Broadcast.outcome with
      | Ok r ->
          Alcotest.(check string)
            (Printf.sprintf "fixup report of session %d" o.H.Broadcast.id)
            (Live_core.Fixup.report_to_string control_rep)
            (Live_core.Fixup.report_to_string r)
      | Error e ->
          Alcotest.failf "session %d failed the broadcast: %s"
            o.H.Broadcast.id
            (Live_core.Machine.error_to_string e))
    rep.H.Broadcast.outcomes control_reports;
  (* the version bump resets exactly the epoch global, per session *)
  Alcotest.(check int) "one reset global per session" n
    rep.H.Broadcast.dropped_globals;
  Alcotest.(check (list int))
    "violation-free fleet" []
    (List.map fst (H.Registry.check_invariants reg))

let test_broadcast_all_or_nothing () =
  let reg, ids = make_fleet ~sessions:4 0 in
  let sched = H.Scheduler.create reg in
  List.iter
    (fun id ->
      ignore (H.Registry.offer reg id (H.Registry.Tap { x = 2; y = 1 })))
    ids;
  (match H.Scheduler.drain sched with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let before = List.map (fun id -> obs (fleet_session reg id)) ids in
  let program_before = H.Registry.program reg in
  (* no start page: Machine.check_program must refuse the edit *)
  let bad = Live_core.Program.without_def (app 1) "start" in
  let host_err =
    match H.Broadcast.update reg bad with
    | Ok _ -> Alcotest.fail "an ill-typed broadcast was applied"
    | Error e -> Live_core.Machine.error_to_string e
  in
  (* same rejection a single session would produce *)
  let solo = ok_machine "solo create" (Session.create ~width (app 0)) in
  (match Session.update solo bad with
  | Ok _ -> Alcotest.fail "an ill-typed solo update was applied"
  | Error e ->
      Alcotest.(check string)
        "fleet and solo reject identically" host_err
        (Live_core.Machine.error_to_string e));
  (* nothing was touched: observations, shared program, counters *)
  List.iter2
    (fun id o ->
      Alcotest.(check string)
        (Printf.sprintf "session %d untouched" id)
        o
        (obs (fleet_session reg id)))
    ids before;
  Alcotest.(check bool)
    "shared program unchanged" true
    (program_before == H.Registry.program reg);
  let s = H.Registry.snapshot reg in
  Alcotest.(check int) "updates_rejected" 1 s.H.Host_metrics.s_updates_rejected;
  Alcotest.(check int) "updates_applied" 0 s.H.Host_metrics.s_updates_applied

(* -- backpressure -------------------------------------------------- *)

let offer_all q xs = List.map (H.Backpressure.offer q) xs

let drain_all q =
  let rec go acc =
    match H.Backpressure.take q with
    | Some x -> go (x :: acc)
    | None -> List.rev acc
  in
  go []

let outcome : H.Backpressure.outcome Alcotest.testable =
  Alcotest.testable
    (fun ppf o ->
      Format.pp_print_string ppf
        (match o with
        | H.Backpressure.Accepted -> "accepted"
        | H.Backpressure.Dropped_oldest -> "dropped-oldest"
        | H.Backpressure.Rejected -> "rejected"))
    ( = )

let test_backpressure_drop_oldest () =
  let q =
    H.Backpressure.create ~capacity:3 ~policy:H.Backpressure.Drop_oldest
  in
  Alcotest.(check (list outcome))
    "first three admitted, then evictions"
    H.Backpressure.[ Accepted; Accepted; Accepted; Dropped_oldest; Dropped_oldest ]
    (offer_all q [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check int) "still bounded" 3 (H.Backpressure.length q);
  Alcotest.(check (list int)) "freshest events survive" [ 3; 4; 5 ] (drain_all q)

let test_backpressure_reject () =
  let q = H.Backpressure.create ~capacity:3 ~policy:H.Backpressure.Reject in
  Alcotest.(check (list outcome))
    "first three admitted, then refusals"
    H.Backpressure.[ Accepted; Accepted; Accepted; Rejected; Rejected ]
    (offer_all q [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check (list int)) "oldest events survive" [ 1; 2; 3 ] (drain_all q)

let test_backpressure_clamp_and_clear () =
  let q = H.Backpressure.create ~capacity:0 ~policy:H.Backpressure.Reject in
  Alcotest.(check int) "capacity clamps to 1" 1 (H.Backpressure.capacity q);
  ignore (H.Backpressure.offer q 1);
  Alcotest.(check int) "clear reports the discarded count" 1
    (H.Backpressure.clear q);
  Alcotest.(check bool) "cleared" true (H.Backpressure.is_empty q)

(* -- registry accounting ------------------------------------------- *)

let accounting_line (s : H.Host_metrics.snapshot) =
  Printf.sprintf "in=%d processed=%d dropped=%d rejected=%d pending=%d"
    s.H.Host_metrics.s_events_in s.H.Host_metrics.s_events_processed
    s.H.Host_metrics.s_events_dropped s.H.Host_metrics.s_events_rejected
    s.H.Host_metrics.s_pending

let check_accounting reg where =
  let s = H.Registry.snapshot reg in
  if not (H.Host_metrics.accounting_ok s) then
    Alcotest.failf "%s: accounting mismatch: %s" where (accounting_line s)

let test_registry_accounting_under_drops () =
  let config =
    {
      H.Registry.default_config with
      H.Registry.width;
      queue_capacity = 2;
      queue_policy = H.Backpressure.Drop_oldest;
    }
  in
  let reg, ids = make_fleet ~config ~sessions:2 0 in
  let a = List.nth ids 0 and b = List.nth ids 1 in
  let tap = H.Registry.Tap { x = 2; y = 1 } in
  Alcotest.(check (list outcome))
    "bounded queue evicts under load"
    H.Backpressure.[ Accepted; Accepted; Dropped_oldest; Dropped_oldest ]
    (List.init 4 (fun _ -> H.Registry.offer reg a tap));
  Alcotest.(check outcome) "unknown id rejects" H.Backpressure.Rejected
    (H.Registry.offer reg 999 tap);
  Alcotest.(check int) "pending bounded" 2 (H.Registry.pending reg a);
  check_accounting reg "after drops";
  let sched = H.Scheduler.create reg in
  (match H.Scheduler.drain sched with
  | Ok n -> Alcotest.(check int) "surviving events processed" 2 n
  | Error m -> Alcotest.fail m);
  check_accounting reg "after drain";
  (* a kill accounts its orphaned pending events as dropped *)
  ignore (H.Registry.offer reg b tap);
  ignore (H.Registry.offer reg b tap);
  Alcotest.(check bool) "kill succeeds" true (H.Registry.kill reg b);
  Alcotest.(check bool) "killed id is gone" true
    (H.Registry.session reg b = None);
  Alcotest.(check outcome) "offers to the dead reject" H.Backpressure.Rejected
    (H.Registry.offer reg b tap);
  Alcotest.(check int) "fleet shrank" 1 (H.Registry.size reg);
  check_accounting reg "after kill";
  let s = H.Registry.snapshot reg in
  Alcotest.(check int) "kill counted" 1 s.H.Host_metrics.s_sessions_killed

let test_admission_limit () =
  let config =
    {
      H.Registry.default_config with
      H.Registry.width;
      admission_limit = Some 3;
    }
  in
  let reg, ids = make_fleet ~config ~sessions:2 0 in
  let a = List.nth ids 0 and b = List.nth ids 1 in
  let tap = H.Registry.Tap { x = 2; y = 1 } in
  Alcotest.(check outcome) "1st" H.Backpressure.Accepted (H.Registry.offer reg a tap);
  Alcotest.(check outcome) "2nd" H.Backpressure.Accepted (H.Registry.offer reg b tap);
  Alcotest.(check outcome) "3rd" H.Backpressure.Accepted (H.Registry.offer reg a tap);
  (* per-session queues have plenty of room; the fleet-wide cap bites *)
  Alcotest.(check outcome) "over the admission limit" H.Backpressure.Rejected
    (H.Registry.offer reg b tap);
  Alcotest.(check int) "total pending capped" 3 (H.Registry.total_pending reg);
  check_accounting reg "at the admission limit";
  let sched = H.Scheduler.create reg in
  (match H.Scheduler.drain sched with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check outcome) "room again after draining" H.Backpressure.Accepted
    (H.Registry.offer reg b tap)

(* -- the scheduler ------------------------------------------------- *)

let test_scheduler_batching_and_coalescing () =
  let reg, ids = make_fleet ~sessions:3 0 in
  let sched = H.Scheduler.create ~batch:2 reg in
  let tap = H.Registry.Tap { x = 2; y = 1 } in
  List.iter
    (fun id -> for _ = 1 to 5 do ignore (H.Registry.offer reg id tap) done)
    ids;
  let r1 = H.Scheduler.tick sched in
  Alcotest.(check int) "tick 1: batch events per session" 6 r1.H.Scheduler.processed;
  Alcotest.(check int) "tick 1: all sessions served" 3 r1.H.Scheduler.sessions_served;
  Alcotest.(check int) "tick 1: one repaint per served session" 3 r1.H.Scheduler.repaints;
  Alcotest.(check int) "tick 1: the rest coalesced" 3 r1.H.Scheduler.coalesced;
  Alcotest.(check int) "tick 1: every tap hit" 6 r1.H.Scheduler.taps_hit;
  Alcotest.(check int) "tick 1: no errors" 0 (List.length r1.H.Scheduler.errors);
  ignore (H.Scheduler.tick sched);
  let r3 = H.Scheduler.tick sched in
  Alcotest.(check int) "tick 3: the single leftover per session" 3
    r3.H.Scheduler.processed;
  Alcotest.(check int) "tick 3: nothing to coalesce" 0 r3.H.Scheduler.coalesced;
  Alcotest.(check int) "all drained" 0 (H.Registry.total_pending reg);
  let r4 = H.Scheduler.tick sched in
  Alcotest.(check int) "an idle tick is a no-op" 0 r4.H.Scheduler.processed;
  let s = H.Registry.snapshot reg in
  Alcotest.(check int) "processed total" 15 s.H.Host_metrics.s_events_processed;
  Alcotest.(check int) "coalesced total" 6 s.H.Host_metrics.s_coalesced_renders;
  Alcotest.(check int) "every tap landed on a handler" 15
    s.H.Host_metrics.s_taps_hit;
  check_accounting reg "after the batched drain";
  (* each session counted every one of its 5 taps exactly once *)
  List.iter
    (fun id ->
      let st = Session.state (fleet_session reg id) in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "session %d tick global" id)
        5.0 (get_store_num st "tick"))
    ids

let test_scheduler_hottest_first () =
  let reg, ids = make_fleet ~sessions:3 0 in
  let sched =
    H.Scheduler.create ~policy:H.Scheduler.Hottest_first ~batch:8 reg
  in
  let tap = H.Registry.Tap { x = 2; y = 2 } in
  (* unbalanced backlog: 12, 3, 0 pending *)
  let a = List.nth ids 0 and b = List.nth ids 1 in
  for _ = 1 to 12 do ignore (H.Registry.offer reg a tap) done;
  for _ = 1 to 3 do ignore (H.Registry.offer reg b tap) done;
  let r1 = H.Scheduler.tick sched in
  Alcotest.(check int) "only sessions with backlog served" 2
    r1.H.Scheduler.sessions_served;
  Alcotest.(check int) "hottest drains a full batch, the other its 3" 11
    r1.H.Scheduler.processed;
  (match H.Scheduler.drain sched with
  | Ok n -> Alcotest.(check int) "leftover backlog" 4 n
  | Error m -> Alcotest.fail m);
  check_accounting reg "after hottest-first drain";
  Alcotest.(check (list int))
    "violation-free fleet" []
    (List.map fst (H.Registry.check_invariants reg))

let test_scheduler_policy_strings () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (H.Scheduler.policy_to_string p ^ " round-trips")
        true
        (H.Scheduler.policy_of_string (H.Scheduler.policy_to_string p)
        = Some p))
    [ H.Scheduler.Round_robin; H.Scheduler.Hottest_first ];
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (H.Backpressure.policy_to_string p ^ " round-trips")
        true
        (H.Backpressure.policy_of_string (H.Backpressure.policy_to_string p)
        = Some p))
    [ H.Backpressure.Drop_oldest; H.Backpressure.Reject ];
  Alcotest.(check bool) "unknown policy" true
    (H.Scheduler.policy_of_string "nope" = None)

(* -- metrics ------------------------------------------------------- *)

let test_histogram_quantiles () =
  let h = H.Host_metrics.histogram () in
  Alcotest.(check (float 0.0)) "empty histogram" 0.0
    (H.Host_metrics.quantile h 0.5);
  for i = 1 to 1000 do
    H.Host_metrics.record h (float_of_int i *. 1000.)
  done;
  Alcotest.(check int) "count" 1000 (H.Host_metrics.hist_count h);
  let p50 = H.Host_metrics.quantile h 0.5 in
  let p99 = H.Host_metrics.quantile h 0.99 in
  (* buckets approximate by their geometric centre: ~15% tolerance *)
  if p50 < 400_000. || p50 > 600_000. then
    Alcotest.failf "p50 %.0f outside [400k, 600k]" p50;
  if p99 < 800_000. || p99 > 1_000_000. then
    Alcotest.failf "p99 %.0f outside [800k, 1000k]" p99;
  if p50 > p99 then Alcotest.failf "p50 %.0f above p99 %.0f" p50 p99;
  let q0 = H.Host_metrics.quantile h 0. in
  if q0 < 1000. || q0 > 1200. then
    Alcotest.failf "q=0 is %.0f, not within a bucket of the observed min" q0;
  Alcotest.(check (float 0.0)) "q=1 clamps to the observed max" 1_000_000.
    (H.Host_metrics.quantile h 1.)

let test_histogram_wide_distribution () =
  (* The 8-per-decade table this replaced saturated under B15's
     fleet=1000 run: 1.33x-wide buckets swallowed the whole latency
     spread and the report printed p50 = p99.  Reproduce the shape
     synthetically — bulk mass over two decades plus a 1% tail three
     decades up — and demand the quantiles separate and land where
     they should. *)
  let h = H.Host_metrics.histogram () in
  for i = 1 to 980 do
    (* bulk: 11 µs .. ~1 ms *)
    H.Host_metrics.record h (10_000. +. (float_of_int i *. 1_000.))
  done;
  for i = 1 to 20 do
    (* tail: 1 s .. 20 s — beyond the old table's top bucket *)
    H.Host_metrics.record h (float_of_int i *. 1_000_000_000.)
  done;
  let p50 = H.Host_metrics.quantile h 0.5 in
  let p99 = H.Host_metrics.quantile h 0.99 in
  if not (p50 < p99) then
    Alcotest.failf "p50 %.0f not below p99 %.0f on a wide distribution" p50 p99;
  if p50 > 2_000_000. then Alcotest.failf "p50 %.0f escaped the bulk" p50;
  if p99 < 500_000_000. then Alcotest.failf "p99 %.0f missed the tail" p99

let test_metrics_dump () =
  let reg, ids = make_fleet ~sessions:2 0 in
  let sched = H.Scheduler.create reg in
  List.iter
    (fun id ->
      ignore (H.Registry.offer reg id (H.Registry.Tap { x = 2; y = 1 })))
    ids;
  (match H.Scheduler.drain sched with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match H.Broadcast.update reg (app 1) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "broadcast: %s" (Live_core.Machine.error_to_string e));
  let dump = H.Host_metrics.to_string (H.Registry.snapshot reg) in
  List.iter (check_contains "metrics dump" dump)
    [ "sessions"; "latency"; "fan-out"; "p50"; "p99"; "accounting        ok" ]

(* -- the oracle's single-session fleet ----------------------------- *)

let test_host_is_an_oracle_config () =
  Alcotest.(check bool) "host is differentially fuzzed" true
    (List.mem "host" Live_conformance.Oracle.all_configs)

let prop_fleet_of_one_agrees_with_machine =
  qcheck ~count:15 "a fleet of one ≡ the reference machine on random traces"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let open Live_conformance in
      let t = Engine.gen_trace ~n_events:10 ~seed () in
      match Oracle.run ~configs:[ "machine"; "host" ] t with
      | Oracle.Agreed -> true
      | Oracle.Diverged d ->
          QCheck2.Test.fail_reportf "diverged: %a" Oracle.pp_divergence d
      | Oracle.Boot_failed m -> QCheck2.Test.fail_reportf "boot failed: %s" m)

let suite =
  [
    case "broadcast UPDATE ≡ independent per-session updates"
      test_broadcast_equals_independent;
    case "a rejected broadcast touches nothing" test_broadcast_all_or_nothing;
    case "drop-oldest evicts the stalest event" test_backpressure_drop_oldest;
    case "reject refuses the newest event" test_backpressure_reject;
    case "capacity clamps; clear accounts" test_backpressure_clamp_and_clear;
    case "loss accounting survives drops, rejects and kills"
      test_registry_accounting_under_drops;
    case "the fleet-wide admission limit bites" test_admission_limit;
    case "batched draining coalesces repaints, not semantics"
      test_scheduler_batching_and_coalescing;
    case "hottest-first serves the backlog" test_scheduler_hottest_first;
    case "policy names round-trip" test_scheduler_policy_strings;
    case "histogram quantiles are sane" test_histogram_quantiles;
    case "histogram separates p50 from p99 on a wide spread"
      test_histogram_wide_distribution;
    case "the metrics dump names its numbers" test_metrics_dump;
    case "host rides the differential fuzzer" test_host_is_an_oracle_config;
    prop_fleet_of_one_agrees_with_machine;
  ]
