(** The closure-compiled evaluator ({!Live_core.Compile_eval}) against
    the substitution machine: the two engines must be byte-identical on
    every observable — values, stores, displays, stuck messages, and
    the dynamic effect discipline — including on randomly {e mutated}
    programs (the fuzzer's fixup-aware edit pool) and on deliberately
    stuck terms.

    Also home to the {!Live_core.Subst.rename_away} regression: stacked
    alpha-renamings under the non-[closed_arg] path must never capture,
    and the fresh-name scheme is pinned to ["x#n"]. *)

open Live_core
module Conf = Live_conformance
module SS = Ast.StringSet

(* ------------------------------------------------------------------ *)
(* Compiled = substitution on mutated programs                         *)
(* ------------------------------------------------------------------ *)

(** A random compiling mutant: a base workload pushed through a couple
    of fixup-aware edits.  [None] when a mutation chain happens not to
    produce a compiling program (the pool member itself always does). *)
let mutant_core (seed : int) : Program.t option =
  let pool = Conf.Mutate.base_pool () in
  let rng = Conf.Prng.create seed in
  let src = pool.(Conf.Prng.int rng (Array.length pool)) in
  let src =
    List.fold_left
      (fun s _ ->
        match Conf.Mutate.mutate rng s with Some s' -> s' | None -> s)
      src [ 1; 2 ]
  in
  match Live_surface.Compile.compile src with
  | Ok c -> Some c.Live_surface.Compile.core
  | Error _ -> None

let observe (st : State.t) : string =
  Fmt.str "store=%a display=%s" Store.pp st.State.store
    (match st.State.display with
    | State.Shown b -> Fmt.str "%a" Boxcontent.pp b
    | State.Invalid -> "<invalid>")

(** Boot, tap through three full interaction loops, then live-update to
    a second program — all under one evaluator — and return the final
    observation (or the machine error verbatim, so stuck/diverged runs
    must agree too). *)
let drive (ev : Machine.evaluator) (core : Program.t)
    (edit : Program.t option) : (string, string) result =
  let ( let* ) = Result.bind in
  let outcome =
    let* st = Machine.boot ~evaluator:ev core in
    let* st =
      List.fold_left
        (fun acc _ ->
          let* st = acc in
          match Machine.tap_first st with
          | Ok st -> Machine.run_to_stable ~evaluator:ev st
          | Error (Machine.Not_enabled _) -> Ok st (* nothing tappable *)
          | Error e -> Error e)
        (Ok st) [ 1; 2; 3 ]
    in
    match edit with
    | None -> Ok st
    | Some code ->
        let* st = Machine.update code st in
        Machine.run_to_stable ~evaluator:ev st
  in
  match outcome with
  | Ok st -> Ok (observe st)
  | Error e -> Error (Machine.error_to_string e)

let prop_mutants_agree =
  Helpers.qcheck ~count:60
    "compiled = substitution on mutated programs (boot, taps, update)"
    QCheck2.Gen.(int_bound 1_000_000_000)
    (fun seed ->
      match (mutant_core seed, mutant_core (seed + 1)) with
      | None, _ | _, None -> true
      | Some core, Some edit ->
          let a = drive Machine.Subst core (Some edit) in
          let b = drive Machine.Compiled core (Some edit) in
          if a = b then true
          else
            QCheck2.Test.fail_reportf
              "engines diverged (seed %d):\n  subst:    %s\n  compiled: %s"
              seed
              (match a with Ok s -> s | Error e -> "ERROR " ^ e)
              (match b with Ok s -> s | Error e -> "ERROR " ^ e))

(** The same equivalence through the full differential oracle: random
    conformance traces (taps, backs, mutated live edits, update storms,
    queue faults) replayed under ["machine"] (substitution reference)
    vs. ["compiled"], compared on store, stack, display and pixels
    after every step. *)
let prop_oracle_compiled_agrees =
  Helpers.qcheck ~count:25 "oracle: compiled config agrees with machine"
    QCheck2.Gen.(int_bound 1_000_000_000)
    (fun seed ->
      let trace = Conf.Engine.gen_trace ~n_events:12 ~seed () in
      match Conf.Oracle.run ~configs:[ "machine"; "compiled" ] trace with
      | Conf.Oracle.Agreed -> true
      | Conf.Oracle.Boot_failed m ->
          QCheck2.Test.fail_reportf "seed %d: boot failed: %s" seed m
      | Conf.Oracle.Diverged d ->
          QCheck2.Test.fail_reportf "seed %d: %s" seed
            (Fmt.str "%a" Conf.Oracle.pp_divergence d))

let test_compiled_in_all_configs () =
  Alcotest.(check bool)
    "\"compiled\" is a standard oracle configuration" true
    (List.mem "compiled" Conf.Oracle.all_configs)

let test_compile_cache_memoizes () =
  let core = Helpers.render_only (Helpers.num 1.0) in
  Alcotest.(check bool)
    "get is memoized by physical program identity" true
    (Compile_eval.get core == Compile_eval.get core);
  Alcotest.(check bool) "cache is populated" true (Compile_eval.cache_size () > 0)

(* ------------------------------------------------------------------ *)
(* Stuck-state and effect-discipline parity                            *)
(* ------------------------------------------------------------------ *)

let stuck_msg (f : unit -> 'a) : string option =
  try
    ignore (f ());
    None
  with Eval.Stuck m -> Some m

(** Both engines must refuse the same term with the same message. *)
let check_stuck_pure name (prog : Program.t) (e : Ast.expr) =
  let ct = Compile_eval.compile prog in
  let subst = stuck_msg (fun () -> Eval.eval_pure prog Store.empty e) in
  let compiled =
    stuck_msg (fun () -> Compile_eval.eval_pure ct Store.empty e)
  in
  Alcotest.(check (option string)) (name ^ " (message)") subst compiled;
  Alcotest.(check bool) (name ^ " (is stuck)") true (subst <> None)

let check_stuck_render name (prog : Program.t) (e : Ast.expr) =
  let ct = Compile_eval.compile prog in
  let subst = stuck_msg (fun () -> Eval.eval_render prog Store.empty e) in
  let compiled =
    stuck_msg (fun () -> Compile_eval.eval_render ct Store.empty e)
  in
  Alcotest.(check (option string)) (name ^ " (message)") subst compiled;
  Alcotest.(check bool) (name ^ " (is stuck)") true (subst <> None)

let test_stuck_parity () =
  let prog = Helpers.render_only Ast.eunit in
  check_stuck_pure "apply non-function" prog
    (Ast.App (Helpers.num 1.0, Helpers.num 2.0));
  check_stuck_pure "unbound variable" prog (Ast.Var "x");
  check_stuck_pure "projection from non-tuple" prog
    (Ast.Proj (Helpers.num 1.0, 0));
  check_stuck_pure "projection out of range" prog
    (Ast.Proj (Ast.Tuple [ Helpers.num 1.0 ], 3));
  check_stuck_pure "undefined function" prog
    (Ast.App (Ast.Fn "nope", Helpers.num 1.0))

(** The dynamic effect discipline: render code may read the store but
    never write it, touch the queue, or pop a page — under either
    engine, with the same stuck message. *)
let test_effect_discipline_parity () =
  let prog = Helpers.counter_core () in
  check_stuck_render "Set in render mode" prog
    (Ast.Set ("n", Helpers.num 1.0));
  check_stuck_render "Push in render mode" prog
    (Ast.Push ("start", Ast.eunit));
  check_stuck_render "Pop in render mode" prog Ast.Pop;
  (* and the store really was not written: eval_render returns no
     store at all (read-only by construction), so it suffices that the
     compiled engine rejects the write before producing a value *)
  let ct = Compile_eval.compile prog in
  (match
     stuck_msg (fun () ->
         Compile_eval.eval_pure ct Store.empty
           (Ast.Post (Helpers.num 1.0)))
   with
  | Some _ -> ()
  | None -> Alcotest.fail "compiled pure mode accepted a post")

(* ------------------------------------------------------------------ *)
(* Subst.rename_away: capture-freedom under stacked renamings          *)
(* ------------------------------------------------------------------ *)

(** Random terms over a small variable pool, so substituted {e open}
    values collide with binders often. *)
let gen_term : Ast.expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  let var = oneofl [ "a"; "b"; "z"; "x" ] in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof [ (var >|= fun v -> Ast.Var v); pure (Helpers.num 1.0) ]
         else
           oneof
             [
               (var >|= fun v -> Ast.Var v);
               (let* x = oneofl [ "a"; "b"; "z" ] in
                let* body = self (n / 2) in
                pure (Helpers.lam x Typ.Num body));
               map2 (fun a b -> Ast.App (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Helpers.add a b) (self (n / 2)) (self (n / 2));
               (self (n / 2) >|= fun a -> Ast.Tuple [ a ]);
             ])

(** What capture-avoiding substitution must do to the free variables:
    [fv(e[v/x]) = (fv(e) \ x) ∪ (fv(v) if x ∈ fv(e))].  A capture bug
    loses a free variable of [v] into some binder, breaking the
    equation. *)
let expected_fv (x : Ident.var) (v : Ast.value) (e : Ast.expr) : SS.t =
  let fv_e = Ast.free_vars e in
  SS.union (SS.remove x fv_e)
    (if SS.mem x fv_e then Ast.free_vars (Ast.Val v) else SS.empty)

let prop_stacked_renamings_never_capture =
  (* two open values whose free variables ("z", then "b") collide with
     the binder pool, substituted in sequence: the second substitution
     runs on a term full of the first one's alpha-renamings, which is
     exactly the stacked-renaming path *)
  let v1 = Ast.VLam ("w", Typ.Num, Ast.App (Ast.Var "w", Ast.Var "z")) in
  let v2 = Ast.VLam ("u", Typ.Num, Ast.App (Ast.Var "u", Ast.Var "b")) in
  Helpers.qcheck ~count:300
    "stacked alpha-renamings never capture (non-closed_arg path)" gen_term
    (fun e ->
      let e1 = Subst.subst_expr "x" v1 e in
      if not (SS.equal (Ast.free_vars e1) (expected_fv "x" v1 e)) then
        QCheck2.Test.fail_reportf "first substitution captured in %s"
          (Fmt.str "%a" Pretty.pp_expr e)
      else
        let e2 = Subst.subst_expr "z" v2 e1 in
        if not (SS.equal (Ast.free_vars e2) (expected_fv "z" v2 e1)) then
          QCheck2.Test.fail_reportf
            "second (stacked) substitution captured in %s"
            (Fmt.str "%a" Pretty.pp_expr e1)
        else true)

(** Pin the fresh-name scheme on a crafted nested-lambda term:
    substituting [v = λw. y] (free [y]) for [x] in [λy. x y] must
    alpha-rename the binder to ["y#n"] and rewrite its occurrence
    consistently. *)
let test_rename_away_scheme () =
  let v = Ast.VLam ("w", Typ.Num, Ast.Var "y") in
  let e =
    Ast.Val (Ast.VLam ("y", Typ.Num, Ast.App (Ast.Var "x", Ast.Var "y")))
  in
  match Subst.subst_expr "x" v e with
  | Ast.Val (Ast.VLam (y', _, Ast.App (Ast.Val v', Ast.Var y''))) ->
      Alcotest.(check bool)
        "binder was renamed away from y" true
        (not (String.equal y' "y"));
      Alcotest.(check bool)
        "fresh name follows the y#n scheme" true
        (String.length y' > 2
        && String.sub y' 0 2 = "y#"
        &&
        match int_of_string_opt (String.sub y' 2 (String.length y' - 2)) with
        | Some n -> n > 0
        | None -> false);
      Alcotest.(check string) "occurrence renamed consistently" y' y'';
      Alcotest.check Helpers.value "substituted value untouched" v v';
      Alcotest.(check bool)
        "v's free y stays free (no capture)" true
        (SS.mem "y"
           (Ast.free_vars (Subst.subst_expr "x" v e)))
  | r ->
      Alcotest.failf "unexpected substitution result: %s"
        (Fmt.str "%a" Pretty.pp_expr r)

(** The [closed_arg] fast path never renames: same term, closed value,
    binder kept verbatim. *)
let test_closed_arg_keeps_binder () =
  let e =
    Ast.Val (Ast.VLam ("y", Typ.Num, Ast.App (Ast.Var "x", Ast.Var "y")))
  in
  match Subst.subst_expr ~closed_arg:true "x" (Ast.VNum 7.0) e with
  | Ast.Val (Ast.VLam ("y", _, Ast.App (Ast.Val (Ast.VNum 7.0), Ast.Var "y")))
    ->
      ()
  | r ->
      Alcotest.failf "unexpected closed_arg result: %s"
        (Fmt.str "%a" Pretty.pp_expr r)

let suite =
  [
    prop_mutants_agree;
    prop_oracle_compiled_agrees;
    Helpers.case "compiled is a standard oracle config"
      test_compiled_in_all_configs;
    Helpers.case "compile cache memoizes by identity"
      test_compile_cache_memoizes;
    Helpers.case "stuck messages agree between engines" test_stuck_parity;
    Helpers.case "effect discipline agrees between engines"
      test_effect_discipline_parity;
    prop_stacked_renamings_never_capture;
    Helpers.case "rename_away pins the y#n scheme" test_rename_away_scheme;
    Helpers.case "closed_arg path keeps binders" test_closed_arg_keeps_binder;
  ]
