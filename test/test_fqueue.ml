(** The persistent FIFO backing the event queue [Q].  Model-checked
    against plain lists: any sequence of enqueues/dequeues agrees with
    the list semantics. *)

open Live_core

let test_empty () =
  Alcotest.(check bool) "is_empty" true (Fqueue.is_empty Fqueue.empty);
  Alcotest.(check int) "length" 0 (Fqueue.length Fqueue.empty);
  Alcotest.(check bool)
    "dequeue" true
    (Fqueue.dequeue Fqueue.empty = None)

let test_fifo_order () =
  let q =
    Fqueue.empty |> Fqueue.enqueue 1 |> Fqueue.enqueue 2 |> Fqueue.enqueue 3
  in
  Alcotest.(check (list int)) "to_list oldest first" [ 1; 2; 3 ]
    (Fqueue.to_list q);
  match Fqueue.dequeue q with
  | Some (x, q') ->
      Alcotest.(check int) "dequeues oldest" 1 x;
      Alcotest.(check (list int)) "rest" [ 2; 3 ] (Fqueue.to_list q')
  | None -> Alcotest.fail "dequeue of non-empty queue"

let test_interleaved () =
  let q = Fqueue.empty |> Fqueue.enqueue "a" |> Fqueue.enqueue "b" in
  let x, q = Option.get (Fqueue.dequeue q) in
  let q = Fqueue.enqueue "c" q in
  let y, q = Option.get (Fqueue.dequeue q) in
  let z, q = Option.get (Fqueue.dequeue q) in
  Alcotest.(check (list string)) "order across interleaving" [ "a"; "b"; "c" ]
    [ x; y; z ];
  Alcotest.(check bool) "drained" true (Fqueue.is_empty q)

let test_of_list () =
  Alcotest.(check (list int))
    "roundtrip" [ 5; 6; 7 ]
    (Fqueue.to_list (Fqueue.of_list [ 5; 6; 7 ]))

let test_push_front () =
  (* push_front is the fault-injection primitive behind event
     duplication: it must re-deliver exactly at the head *)
  let q = Fqueue.empty |> Fqueue.enqueue 1 |> Fqueue.enqueue 2 in
  let q = Fqueue.push_front 0 q in
  Alcotest.(check (list int)) "head position" [ 0; 1; 2 ] (Fqueue.to_list q);
  match Fqueue.dequeue q with
  | Some (x, q') ->
      Alcotest.(check int) "dequeues the pushed element" 0 x;
      Alcotest.(check (list int)) "rest untouched" [ 1; 2 ]
        (Fqueue.to_list q')
  | None -> Alcotest.fail "dequeue of non-empty queue"

(* model-based property: a random op sequence matches the list model *)
type op = Enq of int | Deq | Push of int

let gen_ops : op list QCheck2.Gen.t =
  let open QCheck2.Gen in
  list_size (int_range 0 60)
    (frequency
       [
         (3, int_range 0 100 >|= fun n -> Enq n);
         (2, pure Deq);
         (1, int_range 0 100 >|= fun n -> Push n);
       ])

let prop_model =
  Helpers.qcheck "agrees with the list model" gen_ops (fun ops ->
      let rec run q (model : int list) outs_q outs_m = function
        | [] -> Fqueue.to_list q = model && List.rev outs_q = List.rev outs_m
        | Enq n :: rest ->
            run (Fqueue.enqueue n q) (model @ [ n ]) outs_q outs_m rest
        | Push n :: rest ->
            run (Fqueue.push_front n q) (n :: model) outs_q outs_m rest
        | Deq :: rest -> (
            match (Fqueue.dequeue q, model) with
            | None, [] -> run q model outs_q outs_m rest
            | Some (x, q'), m :: ms ->
                run q' ms (x :: outs_q) (m :: outs_m) rest
            | None, _ :: _ | Some _, [] -> false)
      in
      run Fqueue.empty [] [] [] ops)

let prop_length =
  Helpers.qcheck "length = list length"
    QCheck2.Gen.(list_size (int_range 0 40) int)
    (fun xs ->
      let q = List.fold_left (fun q x -> Fqueue.enqueue x q) Fqueue.empty xs in
      Fqueue.length q = List.length xs)

let suite =
  [
    Helpers.case "empty queue" test_empty;
    Helpers.case "fifo order" test_fifo_order;
    Helpers.case "interleaved enqueue/dequeue" test_interleaved;
    Helpers.case "of_list/to_list" test_of_list;
    Helpers.case "push_front re-delivers at the head" test_push_front;
    prop_model;
    prop_length;
  ]
