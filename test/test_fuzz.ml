(** Fuzzing the live environment through the conformance harness
    ([lib/conformance]): random seeded traces — taps, backs, live
    edits, update storms, broken edits, cache flushes and queue
    faults — are replayed through every semantic configuration
    (uncached machine, plain/cached/incremental sessions, restart
    baseline) and must agree on store, page stack, display tree and
    pixels after every step, with every state well-typed and stable.
    This subsumes the old ad-hoc action generator: the oracle checks
    equivalence across implementations, not just "never crashes"
    (Sec. 4.2's "the system is always live"). *)

open Live_conformance
open Live_runtime

(** One-line reproduction: any failing seed here replays with
    [dune exec bin/fuzz.exe -- --replay-seed N]. *)
let prop_traces_agree =
  Helpers.qcheck ~count:30 "random traces agree across all configurations"
    QCheck2.Gen.(int_bound 1_000_000_000)
    (fun seed ->
      match Engine.replay_seed seed with
      | _, Oracle.Agreed -> true
      | _, Oracle.Boot_failed m ->
          QCheck2.Test.fail_reportf "seed %d: boot failed: %s" seed m
      | _, Oracle.Diverged d ->
          QCheck2.Test.fail_reportf "seed %d: %s" seed
            (Fmt.str "%a" Oracle.pp_divergence d))

(* The oracle does not model undo (it is an editor feature, not a
   system transition), so undo keeps a dedicated fuzz.  Undo is an
   UPDATE back to the previous source: fixup may legitimately have
   dropped state on the way (the paper "just deletes" whatever no
   longer types), so we assert liveness and self-consistency, not a
   byte-identical screen. *)
let prop_undo_restores =
  Helpers.qcheck ~count:30 "undo after a random trace keeps the session live"
    QCheck2.Gen.(int_bound 1_000_000_000)
    (fun seed ->
      let trace = Engine.gen_trace ~n_events:10 ~seed () in
      let rng = Prng.create (seed + 1) in
      match Live_session.create ~width:46 trace.Ctrace.pool.(0) with
      | Error e ->
          QCheck2.Test.fail_reportf "boot: %s"
            (Live_session.error_to_string e)
      | Ok ls ->
          List.iter
            (fun (ev : Ctrace.event) ->
              match ev with
              | Ctrace.Tap { x; y } -> ignore (Live_session.tap ls ~x ~y)
              | Ctrace.Back -> ignore (Live_session.back ls)
              | Ctrace.Update i -> (
                  match Live_session.edit ls trace.Ctrace.pool.(i) with
                  | Error e ->
                      QCheck2.Test.fail_reportf "edit: %s"
                        (Live_session.error_to_string e)
                  | Ok _ ->
                      if Prng.bool rng then begin
                        match Live_session.undo ls with
                        | None ->
                            QCheck2.Test.fail_reportf
                              "no undo after a successful edit"
                        | Some (Error e) ->
                            QCheck2.Test.fail_reportf "undo: %s"
                              (Live_session.error_to_string e)
                        | Some (Ok o) ->
                            (* the outcome's screenshot is the live one *)
                            if
                              not
                                (String.equal o.Live_session.screenshot
                                   (Live_session.screenshot ls))
                            then
                              QCheck2.Test.fail_reportf
                                "undo outcome screenshot is stale"
                      end)
              | Ctrace.Broken_update -> (
                  match Live_session.edit ls Mutate.broken_source with
                  | Ok _ ->
                      QCheck2.Test.fail_reportf "broken edit accepted"
                  | Error (Live_session.Compile_error _) -> ()
                  | Error e ->
                      QCheck2.Test.fail_reportf "broken edit: %s"
                        (Live_session.error_to_string e))
              | Ctrace.Render -> ignore (Live_session.screenshot ls)
              | Ctrace.Flush_cache | Ctrace.Drop_next | Ctrace.Dup_next
              (* transactions are a host-level (fleet) notion; the
                 single-session undo fuzz has nothing to stage *)
              | Ctrace.Begin_txn _ | Ctrace.Canary | Ctrace.Promote
              | Ctrace.Rollback ->
                  ())
            trace.Ctrace.events;
          (* whatever happened, the session must still be live *)
          let st = Session.state (Live_session.session ls) in
          (match Live_core.State_typing.check_state st with
          | Ok () -> ()
          | Error m -> QCheck2.Test.fail_reportf "ill-typed state: %s" m);
          true)

let suite = [ prop_traces_agree; prop_undo_restores ]
