(** The dependency-tracked render cache and the damage-tracked painter
    (ISSUE 1): {b transparency} — a cached RENDER installs exactly the
    box tree the uncached rule produces, across taps, backs and code
    UPDATEs, and damage repaints are cell-identical to full repaints —
    and {b effectiveness} — unchanged displays revalidate without
    evaluation, unchanged subtrees splice from the cache, unchanged
    rows are not repainted. *)

open Live_runtime
open Helpers
module Rc = Live_core.Render_cache
module Machine = Live_core.Machine
module State = Live_core.State
module Boxcontent = Live_core.Boxcontent

let core_of (src : string) : Live_core.Program.t =
  (ok_compile src).Live_surface.Compile.core

let rows_src n = Live_workloads.Synthetic.flat_rows ~n
let indep_src n = Live_workloads.Synthetic.independent_rows ~n

let stable_with cache st =
  ok_machine "run_to_stable" (Machine.run_to_stable ~cache st)

(* ------------------------------------------------------------------ *)
(* Unit: the whole-display fast path                                   *)
(* ------------------------------------------------------------------ *)

let test_unchanged_rerender_revalidates () =
  let cache = Rc.create () in
  let st = ok_machine "boot" (Machine.boot ~cache (core_of (rows_src 20))) in
  let st1 =
    ok_machine "re-render" (Machine.render ~cache (State.invalidate st))
  in
  Alcotest.(check bool)
    "display physically reused" true
    (get_display st == get_display st1);
  let s = Rc.stats cache in
  Alcotest.(check bool)
    (Printf.sprintf "revalidated (saw %d)" s.Rc.revalidations)
    true (s.Rc.revalidations >= 1)

let test_foreign_thunk_is_free () =
  (* the tap handler writes a global the render never reads: RENDER
     must revalidate the display without evaluating anything, and the
     painter must skip the identical frame outright *)
  let src =
    "global shown : number = 0\n\
     global hidden : number = 0\n\
     page start()\n\
     init { }\n\
     render {\n\
    \  boxed { post \"shown \" ++ str(shown) on tapped { hidden := hidden + \
     1 } }\n\
     }\n"
  in
  let s = session_of ~width:30 ~cache:true src in
  ignore (Session.screenshot s);
  let before = Option.get (Session.render_cache_stats s) in
  ignore (ok_machine "tap" (Session.tap_first s));
  ignore (Session.screenshot s);
  let after = Option.get (Session.render_cache_stats s) in
  Alcotest.(check bool)
    "THUNK not touching rendered state revalidates" true
    (after.Rc.revalidations > before.Rc.revalidations);
  let d = Option.get (Session.damage_stats s) in
  Alcotest.(check bool)
    "identical frame skipped outright" true
    (d.Session.skipped_frames >= 1)

(* ------------------------------------------------------------------ *)
(* Unit: subtree splicing                                              *)
(* ------------------------------------------------------------------ *)

let test_tap_reuses_unchanged_subtrees () =
  let core = core_of (indep_src 20) in
  let cache = Rc.create () in
  let cached = ok_machine "boot" (Machine.boot ~cache core) in
  let plain = ok_machine "boot" (Machine.boot core) in
  let s0 = Rc.stats cache in
  (* tap row 0: only g0 changes, so rows 1..19 must splice *)
  let cached =
    stable_with cache (ok_machine "tap" (Machine.tap_first cached))
  in
  let plain =
    ok_machine "run_to_stable"
      (Machine.run_to_stable (ok_machine "tap" (Machine.tap_first plain)))
  in
  Alcotest.(check boxcontent)
    "cached display = uncached display" (get_display plain)
    (get_display cached);
  let s1 = Rc.stats cache in
  let hits = s1.Rc.hits - s0.Rc.hits in
  let misses = s1.Rc.misses - s0.Rc.misses in
  Alcotest.(check bool)
    (Printf.sprintf "mostly hits (%d hits, %d misses)" hits misses)
    true
    (hits >= 15 && misses <= 6)

let test_update_flushes_cache () =
  let cache = Rc.create () in
  let st = ok_machine "boot" (Machine.boot ~cache (core_of (rows_src 10))) in
  let st =
    ok_machine "re-render" (Machine.render ~cache (State.invalidate st))
  in
  let flushes0 = (Rc.stats cache).Rc.flushes in
  (* swap code: entries keyed to the old code must go, and the display
     immediately after UPDATE must match an uncached render *)
  let v2 = core_of (rows_src 12) in
  let st' = stable_with cache (ok_machine "update" (Machine.update v2 st)) in
  let plain =
    ok_machine "uncached render"
      (Machine.run_to_stable (State.invalidate st'))
  in
  Alcotest.(check boxcontent)
    "display after UPDATE = uncached render" (get_display plain)
    (get_display st');
  Alcotest.(check bool)
    "code swap flushed the cache" true
    ((Rc.stats cache).Rc.flushes > flushes0)

(* ------------------------------------------------------------------ *)
(* Unit: damage-tracked painting                                       *)
(* ------------------------------------------------------------------ *)

let full_paint root =
  let fb =
    Live_ui.Framebuffer.create ~width:40
      ~height:(max 1 (Live_ui.Layout.total_height root))
  in
  Live_ui.Render.paint fb root;
  fb

let layout_of src =
  let st = ok_machine "boot" (Machine.boot (core_of src)) in
  (Live_ui.Layout.layout_page ~width:40 (get_display st), st)

let test_damage_repaint_is_cell_identical () =
  let root0, st = layout_of (rows_src 30) in
  let fb0 = full_paint root0 in
  (* move the selection: tap the second row's handler *)
  let handler = List.nth (Boxcontent.handlers (get_display st)) 1 in
  let st1 =
    ok_machine "run_to_stable"
      (Machine.run_to_stable (ok_machine "tap" (Machine.tap st ~handler)))
  in
  let root1 = Live_ui.Layout.layout_page ~width:40 (get_display st1) in
  let damaged, dmg = Live_ui.Render.paint_damaged ~prev:(root0, fb0) root1 in
  let full = full_paint root1 in
  Alcotest.(check string)
    "damaged repaint = full repaint"
    (Live_ui.Framebuffer.to_text full)
    (Live_ui.Framebuffer.to_text damaged);
  Alcotest.(check int)
    "no cell differs" 0
    (Live_ui.Framebuffer.diff_cells full damaged);
  Alcotest.(check bool)
    (Printf.sprintf "few rows repainted (%d of %d)"
       dmg.Live_ui.Render.repainted_rows dmg.Live_ui.Render.total_rows)
    true
    (dmg.Live_ui.Render.repainted_rows < dmg.Live_ui.Render.total_rows / 2)

let test_damage_zero_when_unchanged () =
  let root0, _ = layout_of (rows_src 10) in
  let fb0 = full_paint root0 in
  (* an identical layout (deterministic relayout of the same content) *)
  let root1, _ = layout_of (rows_src 10) in
  let fb1, dmg = Live_ui.Render.paint_damaged ~prev:(root0, fb0) root1 in
  Alcotest.(check int)
    "zero rows repainted" 0 dmg.Live_ui.Render.repainted_rows;
  Alcotest.(check string)
    "frame unchanged"
    (Live_ui.Framebuffer.to_text fb0)
    (Live_ui.Framebuffer.to_text fb1)

let test_damage_full_on_height_change () =
  let root0, _ = layout_of (rows_src 10) in
  let fb0 = full_paint root0 in
  let root1, _ = layout_of (rows_src 14) in
  let fb1, dmg = Live_ui.Render.paint_damaged ~prev:(root0, fb0) root1 in
  Alcotest.(check bool) "full repaint" true dmg.Live_ui.Render.full;
  Alcotest.(check string)
    "still cell-identical"
    (Live_ui.Framebuffer.to_text (full_paint root1))
    (Live_ui.Framebuffer.to_text fb1)

(* ------------------------------------------------------------------ *)
(* Unit: the TAP handler index                                         *)
(* ------------------------------------------------------------------ *)

let test_handler_index_agrees_with_scan () =
  let st =
    ok_machine "boot"
      (Machine.boot (Live_workloads.Mortgage.core ~listings:8 ()))
  in
  let b = get_display st in
  let all = Boxcontent.handlers b in
  Alcotest.(check bool) "has handlers" true (all <> []);
  List.iter
    (fun h ->
      Alcotest.(check bool)
        "indexed lookup finds every handler" true
        (Boxcontent.mem_handler b h))
    all;
  Alcotest.(check bool)
    "indexed lookup rejects a non-handler" false
    (Boxcontent.mem_handler b (Live_core.Ast.VStr "not a handler"))

(* ------------------------------------------------------------------ *)
(* Property: cached RENDER = uncached RENDER                           *)
(* ------------------------------------------------------------------ *)

(** Program pool the machines UPDATE between; crossing shapes (globals
    appear and disappear, pages change) exercises the flush path. *)
let sources : string array =
  [|
    Live_workloads.Mortgage.source ~listings:3 ();
    Live_workloads.Mortgage.source ~listings:3 ~i1:true ();
    Live_workloads.Counter.source;
    Live_workloads.Todo.source;
    rows_src 8;
    indep_src 6;
  |]

let variants : Live_core.Program.t array Lazy.t =
  lazy (Array.map core_of sources)

type action = Tap_nth of int | Back | Update of int

let gen_action : action QCheck2.Gen.t =
  let open QCheck2.Gen in
  frequency
    [
      (5, int_range 0 20 >|= fun k -> Tap_nth k);
      (2, pure Back);
      (3, int_range 0 5 >|= fun i -> Update i);
    ]

let prop_cached_equals_uncached =
  Helpers.qcheck ~count:60
    "cached RENDER = uncached RENDER across taps, backs and UPDATEs"
    QCheck2.Gen.(pair (int_range 0 5) (list_size (int_range 1 25) gen_action))
    (fun (start, script) ->
      let variants = Lazy.force variants in
      let cache = Rc.create () in
      let fail fmt = QCheck2.Test.fail_reportf fmt in
      let unwrap what = function
        | Ok v -> v
        | Error e -> fail "%s: %s" what (Machine.error_to_string e)
      in
      let plain = ref (unwrap "boot" (Machine.boot variants.(start))) in
      let cached =
        ref (unwrap "boot" (Machine.boot ~cache variants.(start)))
      in
      (* the machines must succeed and fail in lockstep; on agreed
         failure both states are unchanged, so they still agree *)
      let step what p c =
        match (p, c) with
        | Ok p, Ok c ->
            plain := unwrap what (Machine.run_to_stable p);
            cached := unwrap what (Machine.run_to_stable ~cache c)
        | Error _, Error _ -> ()
        | Ok _, Error e ->
            fail "%s: cached failed where uncached succeeded: %s" what
              (Machine.error_to_string e)
        | Error e, Ok _ ->
            fail "%s: uncached failed where cached succeeded: %s" what
              (Machine.error_to_string e)
      in
      let check_agree what =
        let dp = get_display !plain and dc = get_display !cached in
        if not (Boxcontent.equal dp dc) then
          fail "%s: cached display diverged from uncached" what;
        let sp = (!plain).State.store and sc = (!cached).State.store in
        if not (Live_core.Store.equal sp sc) then
          fail "%s: stores diverged" what
      in
      check_agree "boot";
      List.iter
        (fun a ->
          (match a with
          | Tap_nth k -> (
              match Boxcontent.handlers (get_display !plain) with
              | [] -> ()
              | hs ->
                  let h = List.nth hs (k mod List.length hs) in
                  step "tap"
                    (Machine.tap !plain ~handler:h)
                    (Machine.tap !cached ~handler:h))
          | Back ->
              step "back" (Ok (Machine.back !plain)) (Ok (Machine.back !cached))
          | Update i ->
              (* the acceptance criterion calls out the state
                 immediately after an UPDATE — checked below like any
                 other step *)
              step "update"
                (Machine.update variants.(i) !plain)
                (Machine.update variants.(i) !cached));
          check_agree "step")
        script;
      true)

(* the same transparency one layer up: the whole session — memoized
   RENDER, layout reuse and the damage-tracked painter together — must
   produce pixel-identical screenshots *)
let prop_session_pixels_identical =
  Helpers.qcheck ~count:30
    "cached sessions render pixel-identical screenshots"
    QCheck2.Gen.(pair (int_range 0 5) (list_size (int_range 1 15) gen_action))
    (fun (start, script) ->
      let plain = session_of ~width:44 sources.(start) in
      let cached = session_of ~width:44 ~cache:true sources.(start) in
      let fail fmt = QCheck2.Test.fail_reportf fmt in
      let agree what p c =
        match (p, c) with
        | Ok _, Ok _ | Error _, Error _ -> ()
        | Ok _, Error e ->
            fail "%s: cached session failed: %s" what
              (Machine.error_to_string e)
        | Error e, Ok _ ->
            fail "%s: uncached session failed: %s" what
              (Machine.error_to_string e)
      in
      let check_same what =
        let a = Session.screenshot plain and b = Session.screenshot cached in
        if not (String.equal a b) then
          fail "%s: screenshots diverged:\n%s\nvs\n%s" what a b
      in
      check_same "boot";
      List.iter
        (fun a ->
          (match a with
          | Tap_nth k ->
              let x = 2 + (k mod 40) and y = k mod 30 in
              agree "tap" (Session.tap plain ~x ~y) (Session.tap cached ~x ~y)
          | Back -> agree "back" (Session.back plain) (Session.back cached)
          | Update i ->
              let core = core_of sources.(i) in
              agree "update" (Session.update plain core)
                (Session.update cached core));
          check_same "step")
        script;
      true)

let suite =
  [
    case "unchanged store: re-render revalidates"
      test_unchanged_rerender_revalidates;
    case "THUNK not touching rendered state is free" test_foreign_thunk_is_free;
    case "tap reuses unchanged subtrees" test_tap_reuses_unchanged_subtrees;
    case "UPDATE flushes the cache" test_update_flushes_cache;
    case "damage repaint is cell-identical" test_damage_repaint_is_cell_identical;
    case "no damage on unchanged layout" test_damage_zero_when_unchanged;
    case "height change forces full repaint" test_damage_full_on_height_change;
    case "handler index agrees with the scan" test_handler_index_agrees_with_scan;
    prop_cached_equals_uncached;
    prop_session_pixels_identical;
  ]
