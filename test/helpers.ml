(** Shared helpers for the test-suite: Alcotest testables for the core
    types, compilation shortcuts, and small program builders. *)

open Live_core

let typ : Typ.t Alcotest.testable = Alcotest.testable Typ.pp Typ.equal
let eff : Eff.t Alcotest.testable = Alcotest.testable Eff.pp Eff.equal

let value : Ast.value Alcotest.testable =
  Alcotest.testable Pretty.pp_value Ast.equal_value

let expr : Ast.expr Alcotest.testable =
  Alcotest.testable Pretty.pp_expr Ast.equal_expr

let boxcontent : Boxcontent.t Alcotest.testable =
  Alcotest.testable Boxcontent.pp Boxcontent.equal

let store : Store.t Alcotest.testable =
  Alcotest.testable Store.pp Store.equal

let event : Event.t Alcotest.testable =
  Alcotest.testable Event.pp Event.equal

let rect : Live_ui.Geometry.rect Alcotest.testable =
  Alcotest.testable Live_ui.Geometry.pp Live_ui.Geometry.equal

(** Substring containment, for screenshot and error-message checks. *)
let contains (s : string) (sub : string) : bool =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let check_contains name s sub =
  if not (contains s sub) then
    Alcotest.failf "%s: %S does not contain %S" name s sub

(** Replace every occurrence of [from] in [s] by [into]. *)
let replace (s : string) (from : string) (into : string) : string =
  let n = String.length s and m = String.length from in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + m <= n && String.sub s !i m = from then begin
      Buffer.add_string buf into;
      i := !i + m
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* -- result unwrapping --------------------------------------------- *)

let ok_machine (what : string) (r : ('a, Machine.error) result) : 'a =
  match r with
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Machine.error_to_string e)

let ok_compile (src : string) : Live_surface.Compile.compiled =
  match Live_surface.Compile.compile src with
  | Ok c -> c
  | Error e ->
      Alcotest.failf "compile failed: %s"
        (Live_surface.Compile.error_to_string e)

let compile_error (src : string) : string =
  match Live_surface.Compile.compile src with
  | Ok _ -> Alcotest.fail "expected a compile error"
  | Error e -> e.Live_surface.Compile.message

(** Compile, boot and stabilise a surface program into a session. *)
let session_of ?width ?incremental ?cache (src : string) :
    Live_runtime.Session.t =
  let c = ok_compile src in
  ok_machine "session create"
    (Live_runtime.Session.create ?width ?incremental ?cache
       c.Live_surface.Compile.core)

let live_of ?width (src : string) : Live_runtime.Live_session.t =
  match Live_runtime.Live_session.create ?width src with
  | Ok l -> l
  | Error e ->
      Alcotest.failf "live session: %s"
        (Live_runtime.Live_session.error_to_string e)

(* -- core program builders ----------------------------------------- *)

let vnum f = Ast.VNum f
let vstr s = Ast.VStr s
let num f = Ast.Val (Ast.VNum f)
let str s = Ast.Val (Ast.VStr s)
let lam x ty body = Ast.Val (Ast.VLam (x, ty, body))
let prim ?(targs = []) name args = Ast.Prim (name, targs, args)
let add a b = prim "add" [ a; b ]

(** [page start() init { } render { body }] with no globals: the
    minimal host for a render expression. *)
let render_only (body : Ast.expr) : Program.t =
  Program.of_defs
    [
      Program.Page
        {
          name = "start";
          arg_ty = Typ.unit_;
          init = lam "_" Typ.unit_ Ast.eunit;
          render = lam "_" Typ.unit_ body;
        };
    ]

(** A program with one numeric global and a render body showing it. *)
let counter_core ?(init_body = Ast.eunit) () : Program.t =
  Program.of_defs
    [
      Program.Global { name = "n"; ty = Typ.Num; init = vnum 0.0 };
      Program.Page
        {
          name = "start";
          arg_ty = Typ.unit_;
          init = lam "_" Typ.unit_ init_body;
          render =
            lam "_" Typ.unit_
              (Ast.Boxed
                 ( Some (Srcid.of_int 1),
                   Ast.App
                     ( lam "x" Typ.unit_
                         (Ast.SetAttr
                            ( "ontap",
                              lam "_" Typ.unit_
                                (Ast.Set ("n", add (Ast.Get "n") (num 1.0)))
                            )),
                       Ast.Post (Ast.Get "n") ) ));
        };
    ]

let boot (p : Program.t) : State.t = ok_machine "boot" (Machine.boot p)

let stable (st : State.t) : State.t =
  ok_machine "run_to_stable" (Machine.run_to_stable st)

let get_display (st : State.t) : Boxcontent.t =
  match st.State.display with
  | State.Invalid -> Alcotest.fail "display is invalid"
  | State.Shown b -> b

let get_store_num (st : State.t) (g : string) : float =
  match Store.read st.State.code g st.State.store with
  | Some (Ast.VNum f) -> f
  | Some v -> Alcotest.failf "global %s is not a number: %a" g Pretty.pp_value v
  | None -> Alcotest.failf "global %s unreadable" g
