(** The benchmark harness: one experiment per performance claim in the
    paper's discussion (see DESIGN.md's experiment index and
    EXPERIMENTS.md for measured results).

    The paper (PLDI 2013) reports no absolute numbers; its performance
    statements are qualitative (Sec. 5).  Each experiment below
    regenerates the quantitative series behind one such statement:

    - B1 [fig1_render]      — render cost vs. box count ("recreating
      the entire box tree on a redraw can become slow if there are
      many boxes on the screen");
    - B2 [update_latency]   — the cost of one live edit: compile,
      UPDATE (typecheck + fixup), re-render ("continuously
      type-checked, compiled, and executed");
    - B3 [live_vs_restart]  — edit-to-feedback latency of the live
      UPDATE transition vs. the conventional restart-and-replay cycle
      (Sec. 2's archery-vs-hose contrast), vs. trace length;
    - B4 [incremental]      — full re-layout vs. the box-tree-reuse
      cache (Sec. 5's proposed optimization), vs. page size;
    - B5 [typecheck]        — type-and-effect checking throughput vs.
      program size;
    - B6 [event_throughput] — steady-state TAP -> THUNK -> RENDER
      cycles;
    - B7 [fixup_cost]       — the Fig. 12 store fix-up vs. store size;
    - B8 [session_ablation] — the incremental caches (layout reuse,
      dependency-tracked render memoization, damage repainting) ablated
      in the full interaction loop: cached vs. uncached tap cycles and
      unchanged-store re-renders;
    - B9 [fuzz_throughput]  — the conformance fuzzer's own burn rate:
      traces/sec replayed per oracle configuration and for the full
      differential run (lib/conformance);
    - B10 [host_throughput] — the multi-session live host (lib/host):
      events/sec and p50/p99 scheduler-tick latency at fleet sizes
      {1, 10, 100, 1000}, plus broadcast-update fan-out time, under
      the seeded synthetic load;
    - B11 [host_parallel]   — the same fleet load through the
      domain-parallel pool at jobs 1/2/4/8, digest-cross-checked;
    - B12 [compiled_eval]   — the closure-compiled evaluator
      (lib/core/compile_eval) against the substitution machine:
      speedup and allocation reduction on the hot render (B1), the
      live-edit re-render (B2), and the host fleet load (B10);
    - B13 [o_edit_broadcast] — the O(edit) fleet UPDATE: incremental
      (diff + dirty-set recheck + compile reuse + retargeted caches)
      vs. from-scratch broadcast at fleets {100, 1000, 10000};
    - B14 [staged_rollout]  — the transactional rollout lifecycle
      (lib/host/rollout): begin/canary/promote of a 2-edit change set
      vs. one flat broadcast at the same fleet sizes, digests
      cross-checked byte-identical;
    - B15 [net_e2e]         — the networked host (lib/net) over real
      Unix-domain sockets: event-sent -> delta-received p50/p99
      latency at fleets {10, 100, 1000} and the damage-delta
      bandwidth ratio vs. full-frame repaints on independent_rows;
    - B16 [shard_scaling]   — the shard director (lib/net/director):
      aggregate events/sec and e2e p50/p99 with the fleet spread over
      shards {1, 2, 4} at fleets {100, 1000}, against the undirected
      single-server baseline (the B15 shape) — the routing proxy's
      per-event tax, measured;
    - B17 [shard_scaleup]   — real scale-out: shard servers forked as
      separate processes behind the director, clients pipelining up
      to W in-flight events per session — single vs shards {1, 2, 4}
      x window {1, 8, 32} at fleets {1k, 10k}, core count recorded,
      every configuration digest-checked against an in-process shadow
      replay;
    - B18 [wire_encode]     — Wire.encode allocation: fresh-buffer
      encode vs the scratch-reusing encode_into on a Delta frame.

    Output: one table per experiment, estimated ns (or µs/ms) per
    operation from Bechamel's OLS fit against the run count, plus a
    machine-readable BENCH_RESULTS.json: a flat [entries] array in
    which every benchmark point carries a stable [id] and an explicit
    [unit] — the schema the CI artifact upload preserves so the
    cross-PR trajectory can be tracked.  Every Bechamel point also
    emits a per-run allocation figure (minor+major words, in bytes)
    under the same id with an ["/alloc"] suffix and unit ["B/run"]. *)

open Bechamel
open Toolkit

let ok_machine = function
  | Ok v -> v
  | Error e -> failwith (Live_core.Machine.error_to_string e)

let compile src =
  match Live_surface.Compile.compile src with
  | Ok c -> c
  | Error e -> failwith (Live_surface.Compile.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)
(* ------------------------------------------------------------------ *)

let quota =
  match Sys.getenv_opt "BENCH_QUOTA" with
  | Some s -> float_of_string s
  | None -> 0.5

(** Per-run heap allocation (bytes, minor + major) for every point
    measured so far, keyed by the benchmark name — accumulated across
    [run_tests] calls and emitted into BENCH_RESULTS.json as
    ["<id>/alloc"] entries with unit ["B/run"]. *)
let alloc_rows : (string * float) list ref = ref []

let find_alloc name =
  try List.assoc name !alloc_rows with Not_found -> Float.nan

let run_tests (tests : Test.t) : (string * float) list =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let instances =
    [
      Instance.monotonic_clock;
      Instance.minor_allocated;
      Instance.major_allocated;
    ]
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let estimates instance =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | _ -> Float.nan
        in
        (name, est) :: acc)
      (Analyze.all ols instance raw)
      []
  in
  let minor = estimates Instance.minor_allocated in
  let major = estimates Instance.major_allocated in
  let word_bytes = float_of_int (Sys.word_size / 8) in
  List.iter
    (fun (name, mw) ->
      let mj =
        match List.assoc_opt name major with
        | Some v when not (Float.is_nan v) -> v
        | _ -> 0.0
      in
      let bytes =
        if Float.is_nan mw then Float.nan else (mw +. mj) *. word_bytes
      in
      alloc_rows := (name, bytes) :: !alloc_rows)
    minor;
  estimates Instance.monotonic_clock
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_time ns =
  if Float.is_nan ns then "n/a"
  else if ns < 1e3 then Printf.sprintf "%8.1f ns" ns
  else if ns < 1e6 then Printf.sprintf "%8.2f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
  else Printf.sprintf "%8.2f s " (ns /. 1e9)

let header title claim =
  Printf.printf "\n=== %s ===\n%s\n%s\n" title claim (String.make 72 '-')

let pp_bytes b =
  if Float.is_nan b then "        n/a"
  else if b < 1024. then Printf.sprintf "%8.0f B " b
  else if b < 1_048_576. then Printf.sprintf "%8.1f KB" (b /. 1024.)
  else Printf.sprintf "%8.2f MB" (b /. 1_048_576.)

let print_rows rows =
  List.iter
    (fun (name, est) ->
      Printf.printf "  %-44s %s %s/run\n" name (pp_time est)
        (pp_bytes (find_alloc name)))
    rows

let run_experiment title claim (tests : Test.t) : (string * float) list =
  header title claim;
  let rows = run_tests tests in
  print_rows rows;
  rows

let find rows name = try List.assoc name rows with Not_found -> Float.nan

(* -- machine-readable output ---------------------------------------- *)

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** One benchmark point in the stable output schema: a globally unique
    [id] ("b3/live-update/trace=032"), an explicit [unit], a value.
    The Bechamel experiments all report "ns/run"; B10's throughput
    rows carry their own units — which is why the schema is a flat
    entries array rather than an implicit-unit tree. *)
type jentry = { id : string; unit_ : string; value : float }

let entries_of_rows (rows : (string * float) list) : jentry list =
  List.map (fun (name, est) -> { id = name; unit_ = "ns/run"; value = est }) rows

(** Write BENCH_RESULTS.json, schema v2: every entry has a stable
    [id]/[unit] pair, so the CI-uploaded artifacts are comparable
    across PRs.  NaN (no estimate) becomes null. *)
let write_json (entries : jentry list) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema_version\": 2,\n";
  Buffer.add_string buf (Printf.sprintf "  \"quota_s\": %g,\n" quota);
  Buffer.add_string buf "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"id\": \"%s\", \"unit\": \"%s\", \"value\": %s }%s\n"
           (json_escape e.id) (json_escape e.unit_)
           (if Float.is_nan e.value then "null"
            else Printf.sprintf "%.1f" e.value)
           (if i = List.length entries - 1 then "" else ",")))
    entries;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_RESULTS.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nWrote BENCH_RESULTS.json (%d entries)\n"
    (List.length entries)

(* ------------------------------------------------------------------ *)
(* B1: render scaling                                                  *)
(* ------------------------------------------------------------------ *)

let b1 () =
  let sizes = [ 10; 50; 100; 250; 500; 1000 ] in
  let tests =
    List.concat_map
      (fun n ->
        (* a mortgage start page with n listings in the model *)
        let core = Live_workloads.Mortgage.core ~listings:n () in
        let st = ok_machine (Live_core.Machine.boot core) in
        let invalid = Live_core.State.invalidate st in
        let display =
          match st.Live_core.State.display with
          | Live_core.State.Shown b -> b
          | Live_core.State.Invalid -> failwith "no display"
        in
        [
          Test.make
            ~name:(Printf.sprintf "eval-render/listings=%04d" n)
            (Staged.stage (fun () ->
                 ok_machine (Live_core.Machine.render invalid)));
          Test.make
            ~name:(Printf.sprintf "layout+paint/listings=%04d" n)
            (Staged.stage (fun () ->
                 Live_ui.Render.screenshot ~width:48 display));
        ])
      sizes
  in
  let rows =
    run_experiment "B1: fig1_render — render cost vs. box count"
      "Claim (Sec. 5): rebuilding the whole box tree on a redraw scales \
       with the number of boxes on the screen (linear here)."
      (Test.make_grouped ~name:"b1" tests)
  in
  let t100 = find rows "b1/eval-render/listings=0100" in
  let t1000 = find rows "b1/eval-render/listings=1000" in
  Printf.printf
    "  -> eval-render grows %.1fx from 100 to 1000 listings (linear ~ 10x)\n"
    (t1000 /. t100);
  rows

(* ------------------------------------------------------------------ *)
(* B2: the cost of one live edit                                       *)
(* ------------------------------------------------------------------ *)

let b2 () =
  let sizes = [ 10; 100; 500 ] in
  let tests =
    List.concat_map
      (fun n ->
        let src = Live_workloads.Mortgage.source ~listings:n () in
        let c' = compile (Live_workloads.Mortgage.source ~listings:n ~i3:true ()) in
        let st =
          ok_machine
            (Live_core.Machine.boot
               (Live_workloads.Mortgage.core ~listings:n ()))
        in
        [
          Test.make
            ~name:(Printf.sprintf "compile/listings=%03d" n)
            (Staged.stage (fun () -> compile src));
          Test.make
            ~name:(Printf.sprintf "update+fixup/listings=%03d" n)
            (Staged.stage (fun () ->
                 ok_machine
                   (Live_core.Machine.update c'.Live_surface.Compile.core st)));
          Test.make
            ~name:(Printf.sprintf "update+rerender/listings=%03d" n)
            (Staged.stage (fun () ->
                 let st' =
                   ok_machine
                     (Live_core.Machine.update c'.Live_surface.Compile.core
                        st)
                 in
                 ok_machine (Live_core.Machine.run_to_stable st')));
        ])
      sizes
  in
  let rows =
    run_experiment "B2: update_latency — one live edit, end to end"
      "Claim (Sec. 3): code is continuously type-checked, compiled and \
       executed; the edit loop stays interactive.  Re-render dominates; \
       UPDATE's typecheck+fixup is cheap."
      (Test.make_grouped ~name:"b2" tests)
  in
  let fx = find rows "b2/update+fixup/listings=500" in
  let rr = find rows "b2/update+rerender/listings=500" in
  Printf.printf
    "  -> at 500 listings, re-render is %.0fx the cost of UPDATE's \
     typecheck+fixup\n"
    (rr /. fx);
  rows

(* ------------------------------------------------------------------ *)
(* B3: live UPDATE vs. restart + trace replay                          *)
(* ------------------------------------------------------------------ *)

let b3 () =
  (* a counter app; the user has tapped T times before the edit *)
  let v1 = compile Live_workloads.Counter.source in
  let v2 =
    compile
      (Printf.sprintf "%s\n// trivial edit\n" Live_workloads.Counter.source)
  in
  let traces = [ 1; 8; 32; 128 ] in
  let tests =
    List.concat_map
      (fun t ->
        (* state after T taps, and the recorded trace *)
        let session =
          ok_machine
            (Live_runtime.Session.create ~width:24
               v1.Live_surface.Compile.core)
        in
        for _ = 1 to t do
          ignore (ok_machine (Live_runtime.Session.tap session ~x:2 ~y:1))
        done;
        let st = Live_runtime.Session.state session in
        let trace = Live_runtime.Session.trace session in
        [
          Test.make
            ~name:(Printf.sprintf "live-update/trace=%03d" t)
            (Staged.stage (fun () ->
                 let st' =
                   ok_machine
                     (Live_core.Machine.update v2.Live_surface.Compile.core
                        st)
                 in
                 ok_machine (Live_core.Machine.run_to_stable st')));
          Test.make
            ~name:(Printf.sprintf "restart+replay/trace=%03d" t)
            (Staged.stage (fun () ->
                 let fresh =
                   ok_machine
                     (Live_runtime.Session.create ~width:24
                        v2.Live_surface.Compile.core)
                 in
                 match Live_baseline.Restart_runtime.replay fresh trace with
                 | Ok o -> o
                 | Error e ->
                     failwith
                       (Live_baseline.Restart_runtime.error_to_string e)));
        ])
      traces
  in
  let rows =
    run_experiment "B3: live_vs_restart — edit-to-feedback latency"
      "Claim (Secs. 1-2): the live UPDATE transition costs one re-render \
       regardless of history; the conventional cycle replays the whole \
       interaction trace, so its cost grows with it."
      (Test.make_grouped ~name:"b3" tests)
  in
  List.iter
    (fun t ->
      let live = find rows (Printf.sprintf "b3/live-update/trace=%03d" t) in
      let restart =
        find rows (Printf.sprintf "b3/restart+replay/trace=%03d" t)
      in
      Printf.printf "  -> trace=%3d: restart/live = %.1fx\n" t
        (restart /. live))
    traces;
  rows

(* ------------------------------------------------------------------ *)
(* B4: incremental re-layout                                           *)
(* ------------------------------------------------------------------ *)

let b4 () =
  let sizes = [ 50; 200; 800 ] in
  let tests =
    List.concat_map
      (fun n ->
        let core =
          (Live_workloads.Synthetic.compile_exn
             (Live_workloads.Synthetic.flat_rows ~n))
            .Live_surface.Compile.core
        in
        let st = ok_machine (Live_core.Machine.boot core) in
        let display st =
          match st.Live_core.State.display with
          | Live_core.State.Shown b -> b
          | Live_core.State.Invalid -> failwith "no display"
        in
        let d0 = display st in
        (* a tap moved the selection highlight by one row *)
        let st1 =
          let handler = List.nth (Live_core.Boxcontent.handlers d0) 1 in
          ok_machine
            (Result.bind
               (Live_core.Machine.tap st ~handler)
               Live_core.Machine.run_to_stable)
        in
        let d1 = display st1 in
        let warm = Live_ui.Layout.create_cache () in
        ignore (Live_ui.Layout.layout_page ~cache:warm ~width:48 d0);
        [
          Test.make
            ~name:(Printf.sprintf "full-layout/rows=%03d" n)
            (Staged.stage (fun () -> Live_ui.Layout.layout_page ~width:48 d1));
          Test.make
            ~name:(Printf.sprintf "cached-layout/rows=%03d" n)
            (Staged.stage (fun () ->
                 Live_ui.Layout.layout_page ~cache:warm ~width:48 d1));
        ])
      sizes
  in
  let rows =
    run_experiment "B4: incremental_rerender — reuse of unchanged subtrees"
      "Claim (Sec. 5): 'a simple optimization where we can reuse box tree \
       elements that have not changed' pays off when few boxes change \
       between frames (here: a selection highlight moved by one row)."
      (Test.make_grouped ~name:"b4" tests)
  in
  List.iter
    (fun n ->
      let full = find rows (Printf.sprintf "b4/full-layout/rows=%03d" n) in
      let inc = find rows (Printf.sprintf "b4/cached-layout/rows=%03d" n) in
      Printf.printf "  -> rows=%3d: full/cached = %.1fx\n" n (full /. inc))
    sizes;
  rows

(* ------------------------------------------------------------------ *)
(* B5: type-and-effect checking throughput                             *)
(* ------------------------------------------------------------------ *)

let b5 () =
  let sizes = [ 10; 50; 200 ] in
  let tests =
    List.concat_map
      (fun n ->
        let src = Live_workloads.Synthetic.many_functions ~n in
        let core = (Live_workloads.Synthetic.compile_exn src).core in
        [
          Test.make
            ~name:(Printf.sprintf "surface-check/functions=%03d" n)
            (Staged.stage (fun () ->
                 match Live_surface.Compile.check src with
                 | Ok _ -> ()
                 | Error _ -> failwith "check failed"));
          Test.make
            ~name:(Printf.sprintf "core-check/functions=%03d" n)
            (Staged.stage (fun () ->
                 match Live_core.State_typing.check_code core with
                 | Ok () -> ()
                 | Error m -> failwith m));
        ])
      sizes
    @ [
        (let core = Live_workloads.Mortgage.core () in
         Test.make ~name:"core-check/mortgage"
           (Staged.stage (fun () ->
                match Live_core.State_typing.check_code core with
                | Ok () -> ()
                | Error m -> failwith m)));
      ]
  in
  run_experiment "B5: typecheck_throughput — continuous checking"
    "Claim (Sec. 3): the program is continuously type-checked as the \
     programmer edits; Fig. 10/11 checking must be far cheaper than a \
     frame."
    (Test.make_grouped ~name:"b5" tests)

(* ------------------------------------------------------------------ *)
(* B6: steady-state interaction                                        *)
(* ------------------------------------------------------------------ *)

let b6 () =
  let apps =
    [
      ("counter", Live_workloads.Counter.core ());
      ("todo", Live_workloads.Todo.core ());
      ( "flat100",
        (Live_workloads.Synthetic.compile_exn
           (Live_workloads.Synthetic.flat_rows ~n:100))
          .core );
    ]
  in
  let tests =
    List.map
      (fun (name, core) ->
        let st = ok_machine (Live_core.Machine.boot core) in
        Test.make ~name:("tap-cycle/" ^ name)
          (Staged.stage (fun () ->
               let st' = ok_machine (Live_core.Machine.tap_first st) in
               ok_machine (Live_core.Machine.run_to_stable st'))))
      apps
  in
  run_experiment "B6: event_throughput — TAP -> THUNK -> RENDER cycles"
    "Steady-state interaction cost: one user tap including handler \
     execution and the full re-render of the page."
    (Test.make_grouped ~name:"b6" tests)

(* ------------------------------------------------------------------ *)
(* B7: fix-up cost                                                     *)
(* ------------------------------------------------------------------ *)

let b7 () =
  let sizes = [ 10; 100; 1000 ] in
  let tests =
    List.concat_map
      (fun n ->
        let src = Live_workloads.Synthetic.many_globals ~n in
        let core = (Live_workloads.Synthetic.compile_exn src).core in
        let st =
          ok_machine
            (Result.bind (Live_core.Machine.boot core)
               Live_core.Machine.run_to_stable)
        in
        (* new code keeps only the first half of the globals: the rest
           of the store is deleted by S-SKIP *)
        let half = Live_workloads.Synthetic.many_globals ~n:(n / 2) in
        let half_core = (Live_workloads.Synthetic.compile_exn half).core in
        [
          Test.make
            ~name:(Printf.sprintf "fixup-keep-all/globals=%04d" n)
            (Staged.stage (fun () ->
                 Live_core.Fixup.fixup_store core st.Live_core.State.store));
          Test.make
            ~name:(Printf.sprintf "fixup-drop-half/globals=%04d" n)
            (Staged.stage (fun () ->
                 Live_core.Fixup.fixup_store half_core
                   st.Live_core.State.store));
        ])
      sizes
  in
  run_experiment "B7: fixup_cost — Fig. 12's store fix-up"
    "The UPDATE transition re-checks every store binding against the new \
     code ('it just deletes whatever does not type'); linear in the \
     store, cheap in absolute terms."
    (Test.make_grouped ~name:"b7" tests)

(* ------------------------------------------------------------------ *)
(* B8: end-to-end ablation of the incremental render pipeline          *)
(* ------------------------------------------------------------------ *)

let b8 () =
  let sizes = [ 100; 400 ] in
  let layout_tests =
    List.concat_map
      (fun n ->
        let core =
          (Live_workloads.Synthetic.compile_exn
             (Live_workloads.Synthetic.flat_rows ~n))
            .Live_surface.Compile.core
        in
        let session incremental =
          ok_machine (Live_runtime.Session.create ~width:48 ~incremental core)
        in
        let plain = session false in
        let cached = session true in
        (* warm both *)
        ignore (Live_runtime.Session.screenshot plain);
        ignore (Live_runtime.Session.screenshot cached);
        let cycle s =
          (* one full user interaction: tap a row, restabilise, repaint *)
          ignore (ok_machine (Live_runtime.Session.tap s ~x:2 ~y:7));
          ignore (Live_runtime.Session.screenshot s)
        in
        [
          Test.make
            ~name:(Printf.sprintf "session-plain/rows=%03d" n)
            (Staged.stage (fun () -> cycle plain));
          Test.make
            ~name:(Printf.sprintf "session-incremental/rows=%03d" n)
            (Staged.stage (fun () -> cycle cached));
        ])
      sizes
  in
  (* the render memoization cache (dependency-tracked; see
     Render_cache): (a) re-render with an unchanged store — the
     whole-display fast path revalidates without evaluating; (b) the
     full TAP -> THUNK -> RENDER loop on independent_rows, where a tap
     dirties one row's read set and the other rows splice from the
     cache, with damage-tracked repainting downstream *)
  let rerender_tests =
    List.concat_map
      (fun n ->
        let core =
          (Live_workloads.Synthetic.compile_exn
             (Live_workloads.Synthetic.flat_rows ~n))
            .Live_surface.Compile.core
        in
        let cache = Live_core.Render_cache.create () in
        let st = ok_machine (Live_core.Machine.boot ~cache core) in
        let invalid = Live_core.State.invalidate st in
        [
          Test.make
            ~name:(Printf.sprintf "rerender-unchanged-plain/rows=%03d" n)
            (Staged.stage (fun () ->
                 ok_machine (Live_core.Machine.render invalid)));
          Test.make
            ~name:(Printf.sprintf "rerender-unchanged-cached/rows=%03d" n)
            (Staged.stage (fun () ->
                 ok_machine (Live_core.Machine.render ~cache invalid)));
        ])
      sizes
  in
  let tap_tests =
    List.concat_map
      (fun n ->
        let core =
          (Live_workloads.Synthetic.compile_exn
             (Live_workloads.Synthetic.independent_rows ~n))
            .Live_surface.Compile.core
        in
        (* ablate the whole incremental pipeline (render memoization +
           previous-frame layout reuse + damage repainting) vs. none *)
        let session cache =
          ok_machine (Live_runtime.Session.create ~width:48 ~cache core)
        in
        let plain = session false in
        let cached = session true in
        ignore (Live_runtime.Session.screenshot plain);
        ignore (Live_runtime.Session.screenshot cached);
        let cycle s =
          ignore (ok_machine (Live_runtime.Session.tap s ~x:2 ~y:7));
          ignore (Live_runtime.Session.screenshot s)
        in
        [
          Test.make
            ~name:(Printf.sprintf "tap-cycle-plain/rows=%03d" n)
            (Staged.stage (fun () -> cycle plain));
          Test.make
            ~name:(Printf.sprintf "tap-cycle-cached/rows=%03d" n)
            (Staged.stage (fun () -> cycle cached));
        ])
      sizes
  in
  let rows =
    run_experiment
      "B8: session ablation — the caches in the full interaction loop"
      "End-to-end effect of the incremental pipeline: the Sec. 5 layout \
       cache on a whole interaction; the dependency-tracked render cache \
       on an unchanged-store re-render (revalidation, no evaluation) and \
       on the tap loop (one dirty row re-evaluated, the rest spliced)."
      (Test.make_grouped ~name:"b8"
         (layout_tests @ rerender_tests @ tap_tests))
  in
  List.iter
    (fun n ->
      let plain = find rows (Printf.sprintf "b8/session-plain/rows=%03d" n) in
      let inc =
        find rows (Printf.sprintf "b8/session-incremental/rows=%03d" n)
      in
      Printf.printf "  -> rows=%3d: plain/incremental = %.2fx\n" n
        (plain /. inc))
    sizes;
  List.iter
    (fun n ->
      let plain =
        find rows (Printf.sprintf "b8/rerender-unchanged-plain/rows=%03d" n)
      in
      let cached =
        find rows (Printf.sprintf "b8/rerender-unchanged-cached/rows=%03d" n)
      in
      Printf.printf
        "  -> rows=%3d: unchanged-store re-render plain/cached = %.1fx\n" n
        (plain /. cached))
    sizes;
  List.iter
    (fun n ->
      let plain =
        find rows (Printf.sprintf "b8/tap-cycle-plain/rows=%03d" n)
      in
      let cached =
        find rows (Printf.sprintf "b8/tap-cycle-cached/rows=%03d" n)
      in
      Printf.printf "  -> rows=%3d: tap cycle plain/cached = %.2fx\n" n
        (plain /. cached))
    sizes;
  rows

(* ------------------------------------------------------------------ *)
(* B9: conformance fuzzing throughput                                  *)
(* ------------------------------------------------------------------ *)

let b9 () =
  let open Live_conformance in
  (* a fixed, representative trace: regenerable forever from its seed *)
  let trace = Engine.gen_trace ~n_events:16 ~seed:42 () in
  let n_events = List.length trace.Ctrace.events in
  let replay configs () =
    match Oracle.run ~configs trace with
    | Oracle.Agreed -> ()
    | Oracle.Diverged _ | Oracle.Boot_failed _ -> failwith "trace must agree"
  in
  let tests =
    List.map
      (fun name ->
        Test.make
          ~name:(Printf.sprintf "replay/%s" name)
          (Staged.stage (replay [ name ])))
      Oracle.all_configs
    @ [
        Test.make ~name:"replay/differential-all"
          (Staged.stage (replay Oracle.all_configs));
        Test.make ~name:"generate"
          (Staged.stage (fun () ->
               ignore (Engine.gen_trace ~n_events:16 ~seed:42 ())));
      ]
  in
  let rows =
    run_experiment "B9: fuzz_throughput — the conformance oracle's own cost"
      "How fast the differential fuzzer burns traces: one 16-event trace \
       replayed through each configuration alone (observation included), \
       the full 5-way differential run, and trace generation itself."
      (Test.make_grouped ~name:"b9" tests)
  in
  List.iter
    (fun name ->
      let ns = find rows (Printf.sprintf "b9/replay/%s" name) in
      if not (Float.is_nan ns) then
        Printf.printf "  -> %-16s %8.1f traces/s (%d events each)\n" name
          (1e9 /. ns) n_events)
    (Oracle.all_configs @ [ "differential-all" ]);
  rows

(* ------------------------------------------------------------------ *)
(* B10: multi-session host throughput                                  *)
(* ------------------------------------------------------------------ *)

(** B10 is not a Bechamel experiment: a host run is a long stateful
    loop (seeded event streams, a mid-stream broadcast), so we measure
    one deterministic run per fleet size wall-clock and read the
    latency percentiles straight out of {!Live_host.Host_metrics}. *)
let b10 () : jentry list =
  let module H = Live_host in
  let module Prng = Live_conformance.Prng in
  let fleet_sizes = [ 1; 10; 100; 1000 ] in
  let rows_n = 6 in
  let app version =
    (Live_workloads.Synthetic.compile_exn
       (Live_workloads.Synthetic.host_app ~rows:rows_n ~version ()))
      .Live_surface.Compile.core
  in
  header "B10: host_throughput — the multi-session live host"
    "The lib/host subsystem under seeded synthetic load: events/sec, \
     p50/p99 scheduler-tick latency, and broadcast-update fan-out time \
     vs. fleet size.";
  List.concat_map
    (fun k ->
      (* same total event budget per fleet size, so runs stay ~equal *)
      let rounds = max 4 (4000 / k) in
      let cfg = { H.Registry.default_config with H.Registry.width = 32 } in
      let reg = H.Registry.create ~config:cfg (app 0) in
      (match H.Registry.spawn_many reg k with
      | Ok _ -> ()
      | Error e -> failwith (Live_core.Machine.error_to_string e));
      let sched = H.Scheduler.create ~batch:8 reg in
      let ids = Array.of_list (H.Registry.ids reg) in
      let rngs = Array.map (fun id -> Prng.create (Prng.derive 42 id)) ids in
      let broadcast_round = rounds / 2 in
      let t0 = Unix.gettimeofday () in
      for round = 0 to rounds - 1 do
        Array.iteri
          (fun i id ->
            let rng = rngs.(i) in
            let ev =
              if Prng.int rng 10 = 0 then H.Registry.Back
              else
                H.Registry.Tap
                  { x = Prng.int rng 32; y = 1 + Prng.int rng rows_n }
            in
            ignore (H.Registry.offer reg id ev))
          ids;
        ignore (H.Scheduler.tick sched);
        if round = broadcast_round then
          match H.Broadcast.update reg (app 1) with
          | Ok _ -> ()
          | Error e -> failwith (Live_core.Machine.error_to_string e)
      done;
      (match H.Scheduler.drain sched with
      | Ok _ -> ()
      | Error m -> failwith m);
      let dt = Unix.gettimeofday () -. t0 in
      let s = H.Registry.snapshot reg in
      let processed = s.H.Host_metrics.s_events_processed in
      let eps = float_of_int processed /. dt in
      let p50 = s.H.Host_metrics.tick_p50_ns in
      let p99 = s.H.Host_metrics.tick_p99_ns in
      let fanout = s.H.Host_metrics.fanout_last_ns in
      Printf.printf
        "  fleet=%4d  %9.0f events/s  tick p50 %s  p99 %s  fan-out %s\n" k
        eps (pp_time p50) (pp_time p99) (pp_time fanout);
      [
        {
          id = Printf.sprintf "b10/events-per-sec/fleet=%04d" k;
          unit_ = "events/s";
          value = eps;
        };
        {
          id = Printf.sprintf "b10/tick-p50/fleet=%04d" k;
          unit_ = "ns";
          value = p50;
        };
        {
          id = Printf.sprintf "b10/tick-p99/fleet=%04d" k;
          unit_ = "ns";
          value = p99;
        };
        {
          id = Printf.sprintf "b10/update-fanout/fleet=%04d" k;
          unit_ = "ns";
          value = fanout;
        };
      ])
    fleet_sizes

(* ------------------------------------------------------------------ *)
(* B11: domain-parallel host speedup                                   *)
(* ------------------------------------------------------------------ *)

(** B11, like B10, is a wall-clock measurement of one deterministic
    run — here the same fleet-of-1000 load replayed through the
    {!Live_host.Parallel} domain pool at each [jobs].  The pool's
    determinism contract makes the runs strictly comparable: every
    [jobs] value processes byte-identical per-session event sequences
    and must land on the same fleet digest, so the only thing that
    varies across the speedup curve is scheduling. *)
let b11 () : jentry list =
  let module H = Live_host in
  let module Prng = Live_conformance.Prng in
  let fleet = 1000 in
  let rows_n = 6 in
  let jobs_axis = [ 1; 2; 4; 8 ] in
  let app version =
    (Live_workloads.Synthetic.compile_exn
       (Live_workloads.Synthetic.host_app ~rows:rows_n ~version ()))
      .Live_surface.Compile.core
  in
  header "B11: host_parallel_speedup — domain-parallel fleet execution"
    "The fleet-of-1000 host load from B10 executed by the Parallel \
     domain pool at jobs 1/2/4/8: events/sec and speedup vs. jobs=1, \
     with the fleet digest cross-checked for byte-identical final \
     state at every point.";
  Printf.printf "  (this machine recommends %d domains)\n"
    (Domain.recommended_domain_count ());
  let run jobs =
    let rounds = 8 in
    let cfg = { H.Registry.default_config with H.Registry.width = 32 } in
    let reg = H.Registry.create ~config:cfg (app 0) in
    (match H.Registry.spawn_many reg fleet with
    | Ok _ -> ()
    | Error e -> failwith (Live_core.Machine.error_to_string e));
    H.Parallel.with_pool ~jobs ~batch:8 reg (fun pool ->
        let ids = Array.of_list (H.Registry.ids reg) in
        let rngs = Array.map (fun id -> Prng.create (Prng.derive 42 id)) ids in
        let t0 = Unix.gettimeofday () in
        for round = 0 to rounds - 1 do
          Array.iteri
            (fun i id ->
              let rng = rngs.(i) in
              let ev =
                if Prng.int rng 10 = 0 then H.Registry.Back
                else
                  H.Registry.Tap
                    { x = Prng.int rng 32; y = 1 + Prng.int rng rows_n }
              in
              ignore (H.Registry.offer reg id ev))
            ids;
          ignore (H.Parallel.tick pool);
          if round = rounds / 2 then
            match H.Parallel.update pool (app 1) with
            | Ok _ -> ()
            | Error e -> failwith (Live_core.Machine.error_to_string e)
        done;
        (match H.Parallel.drain pool with
        | Ok _ -> ()
        | Error m -> failwith m);
        let dt = Unix.gettimeofday () -. t0 in
        if H.Parallel.barrier_violations pool <> 0 then
          failwith "B11: broadcast barrier violated";
        let s = H.Parallel.snapshot pool in
        if not (H.Host_metrics.accounting_ok s) then
          failwith "B11: accounting identity broken";
        ( float_of_int s.H.Host_metrics.s_events_processed /. dt,
          H.Registry.digest reg ))
  in
  let results = List.map (fun j -> (j, run j)) jobs_axis in
  let _, (base_eps, base_digest) = List.hd results in
  List.concat_map
    (fun (j, (eps, digest)) ->
      if not (String.equal digest base_digest) then
        failwith
          (Printf.sprintf
             "B11: determinism contract broken — jobs=%d digest differs \
              from jobs=1"
             j);
      let speedup = eps /. base_eps in
      Printf.printf "  jobs=%d  %9.0f events/s  speedup %.2fx  digest %s\n" j
        eps speedup
        (String.sub digest 0 8);
      [
        {
          id = Printf.sprintf "b11/events-per-sec/jobs=%d" j;
          unit_ = "events/s";
          value = eps;
        };
        {
          id = Printf.sprintf "b11/speedup/jobs=%d" j;
          unit_ = "ratio";
          value = speedup;
        };
      ])
    results

(* ------------------------------------------------------------------ *)
(* B12: the closure-compiled evaluator vs. the substitution machine    *)
(* ------------------------------------------------------------------ *)

(** B12 measures the tentpole of lib/core/compile_eval: the same
    workloads executed by both engines.  The Bechamel half re-runs B1's
    hot render and B2's live-edit re-render at 500 listings under each
    [Machine.evaluator]; the wall-clock half replays B10's fleet=100
    host load under each {!Live_host.Registry.config} evaluator.  The
    conformance oracle's ["compiled"] configuration guarantees the two
    engines produce byte-identical states, so the speedup and
    allocation-reduction ratios compare like with like. *)
let b12 () : jentry list =
  let module M = Live_core.Machine in
  let n = 500 in
  let core = Live_workloads.Mortgage.core ~listings:n () in
  let st = ok_machine (M.boot core) in
  let invalid = Live_core.State.invalidate st in
  let c' = compile (Live_workloads.Mortgage.source ~listings:n ~i3:true ()) in
  let upd evaluator () =
    let st' = ok_machine (M.update c'.Live_surface.Compile.core st) in
    ok_machine (M.run_to_stable ~evaluator st')
  in
  let point what ev =
    Printf.sprintf "%s/%s/listings=%03d" what
      (match ev with M.Subst -> "subst" | M.Compiled -> "compiled")
      n
  in
  let tests =
    List.concat_map
      (fun ev ->
        [
          Test.make
            ~name:(point "eval-render" ev)
            (Staged.stage (fun () ->
                 ok_machine (M.render ~evaluator:ev invalid)));
          Test.make ~name:(point "update+rerender" ev) (Staged.stage (upd ev));
        ])
      [ M.Subst; M.Compiled ]
  in
  let rows =
    run_experiment
      "B12: compiled_eval — closure compilation vs. substitution"
      "The compile-once evaluator resolves variables to environment \
       slots at compile time, so the run-time pays no Subst.beta copy \
       and no free-variable scan; verified byte-identical against the \
       substitution machine by the conformance oracle."
      (Test.make_grouped ~name:"b12" tests)
  in
  (* the fleet under each engine: B10's load, fleet=100 *)
  let host_eps (ev : M.evaluator) : float =
    let module H = Live_host in
    let module Prng = Live_conformance.Prng in
    let rows_n = 6 in
    let k = 100 in
    let rounds = 40 in
    let app =
      (Live_workloads.Synthetic.compile_exn
         (Live_workloads.Synthetic.host_app ~rows:rows_n ~version:0 ()))
        .Live_surface.Compile.core
    in
    let cfg =
      {
        H.Registry.default_config with
        H.Registry.width = 32;
        evaluator = ev;
      }
    in
    let reg = H.Registry.create ~config:cfg app in
    (match H.Registry.spawn_many reg k with
    | Ok _ -> ()
    | Error e -> failwith (Live_core.Machine.error_to_string e));
    let sched = H.Scheduler.create ~batch:8 reg in
    let ids = Array.of_list (H.Registry.ids reg) in
    let rngs = Array.map (fun id -> Prng.create (Prng.derive 42 id)) ids in
    let t0 = Unix.gettimeofday () in
    for _round = 0 to rounds - 1 do
      Array.iteri
        (fun i id ->
          let rng = rngs.(i) in
          let e =
            if Prng.int rng 10 = 0 then H.Registry.Back
            else
              H.Registry.Tap { x = Prng.int rng 32; y = 1 + Prng.int rng rows_n }
          in
          ignore (H.Registry.offer reg id e))
        ids;
      ignore (H.Scheduler.tick sched)
    done;
    (match H.Scheduler.drain sched with
    | Ok _ -> ()
    | Error m -> failwith m);
    let dt = Unix.gettimeofday () -. t0 in
    let s = H.Registry.snapshot reg in
    float_of_int s.H.Host_metrics.s_events_processed /. dt
  in
  let eps_subst = host_eps M.Subst in
  let eps_compiled = host_eps M.Compiled in
  let ratio a b =
    if Float.is_nan a || Float.is_nan b || b = 0.0 then Float.nan else a /. b
  in
  let summary what =
    let s = find rows ("b12/" ^ point what M.Subst) in
    let c = find rows ("b12/" ^ point what M.Compiled) in
    let sa = find_alloc ("b12/" ^ point what M.Subst) in
    let ca = find_alloc ("b12/" ^ point what M.Compiled) in
    Printf.printf
      "  -> %-16s compiled is %.2fx faster, allocates %.1fx less\n" what
      (ratio s c) (ratio sa ca);
    [
      {
        id = Printf.sprintf "b12/speedup/%s/listings=%03d" what n;
        unit_ = "ratio";
        value = ratio s c;
      };
      {
        id = Printf.sprintf "b12/alloc-reduction/%s/listings=%03d" what n;
        unit_ = "ratio";
        value = ratio sa ca;
      };
    ]
  in
  let summaries =
    List.concat_map summary [ "eval-render"; "update+rerender" ]
  in
  Printf.printf
    "  -> host fleet=100: %.0f events/s (subst) vs %.0f events/s (compiled) \
     = %.2fx\n"
    eps_subst eps_compiled
    (ratio eps_compiled eps_subst);
  entries_of_rows rows @ summaries
  @ [
      {
        id = "b12/host-events-per-sec/subst/fleet=0100";
        unit_ = "events/s";
        value = eps_subst;
      };
      {
        id = "b12/host-events-per-sec/compiled/fleet=0100";
        unit_ = "events/s";
        value = eps_compiled;
      };
      {
        id = "b12/speedup/host/fleet=0100";
        unit_ = "ratio";
        value = ratio eps_compiled eps_subst;
      };
    ]

(* ------------------------------------------------------------------ *)
(* B13: O(edit) broadcast — incremental vs. from-scratch UPDATE        *)
(* ------------------------------------------------------------------ *)

(** B13 measures the O(edit) broadcast pipeline end to end: a 1-line
    structural edit of a cold definition (one [Program.with_def] on a
    global the start page never reads) broadcast to fleets of 100 /
    1000 / 10000 cached sessions, once through the from-scratch path
    ([typecheck_mode = Scratch]: whole-program recheck, full
    recompile, wholesale cache flush, full per-session re-render) and
    once through the incremental path (diff + dirty-set recheck,
    compile reuse, retargeted render caches).  The two fleets replay
    the identical edit sequence and must land on byte-identical
    digests — the speedup compares like with like. *)
let b13 () : jentry list =
  let module H = Live_host in
  let module P = Live_core.Program in
  let fleet_sizes = [ 100; 1000; 10000 ] in
  let rows_n = 6 in
  let cold = 32 in
  let edits = 4 in
  let app =
    (Live_workloads.Synthetic.compile_exn
       (Live_workloads.Synthetic.host_app ~cold ~rows:rows_n ~version:0 ()))
      .Live_surface.Compile.core
  in
  (* the 1-line edit: restamp cold global c0's initial value *)
  let edit (prog : P.t) ~(stamp : int) : P.t =
    match P.find prog "c0" with
    | Some (P.Global { name; ty; _ }) ->
        P.with_def prog
          (P.Global
             { name; ty; init = Live_core.Ast.VNum (float_of_int stamp) })
    | _ -> failwith "B13: cold global c0 not found"
  in
  header "B13: o_edit_broadcast — incremental vs. from-scratch UPDATE"
    "A 1-line edit of a cold definition broadcast fleet-wide: the \
     incremental path (program diff, dirty-set typecheck, compile \
     reuse, retargeted render caches) vs. the from-scratch path \
     (whole-program recheck, full recompile, wholesale cache flush), \
     with the two fleets' digests cross-checked byte-identical.";
  let run (mode : H.Broadcast.typecheck_mode) (k : int) : float * string =
    let cfg =
      {
        H.Registry.default_config with
        H.Registry.width = 32;
        cache = true;
        evaluator = Live_core.Machine.Compiled;
      }
    in
    let reg = H.Registry.create ~config:cfg app in
    (match H.Registry.spawn_many reg k with
    | Ok _ -> ()
    | Error e -> failwith (Live_core.Machine.error_to_string e));
    let broadcast stamp =
      let prog = edit (H.Registry.program reg) ~stamp in
      match H.Broadcast.update ~typecheck:mode reg prog with
      | Ok _ -> ()
      | Error e -> failwith (Live_core.Machine.error_to_string e)
    in
    (* warm-up broadcast: the boot program was never typechecked, so
       the first UPDATE is from-scratch in every mode; after it the
       incremental premise (old code checked) holds *)
    broadcast 1000;
    let t0 = Unix.gettimeofday () in
    for stamp = 1 to edits do
      broadcast stamp
    done;
    let per_edit_ns =
      (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int edits
    in
    (per_edit_ns, H.Registry.digest reg)
  in
  List.concat_map
    (fun k ->
      let scratch_ns, scratch_digest = run H.Broadcast.Scratch k in
      let incr_ns, incr_digest = run H.Broadcast.Incremental k in
      if not (String.equal scratch_digest incr_digest) then
        failwith
          (Printf.sprintf
             "B13: fleet=%d digest mismatch — incremental broadcast \
              diverged from from-scratch"
             k);
      let speedup = scratch_ns /. incr_ns in
      Printf.printf
        "  fleet=%5d  scratch %s/edit  incremental %s/edit  speedup %.1fx  \
         digest %s\n"
        k (pp_time scratch_ns) (pp_time incr_ns) speedup
        (String.sub scratch_digest 0 8);
      if k = 10000 && speedup < 5.0 then
        Printf.printf
          "  WARNING: fleet=10000 speedup %.1fx below the 5x target\n" speedup;
      [
        {
          id = Printf.sprintf "b13/broadcast-scratch/fleet=%05d" k;
          unit_ = "ns";
          value = scratch_ns;
        };
        {
          id = Printf.sprintf "b13/broadcast-incremental/fleet=%05d" k;
          unit_ = "ns";
          value = incr_ns;
        };
        {
          id = Printf.sprintf "b13/speedup/fleet=%05d" k;
          unit_ = "ratio";
          value = speedup;
        };
      ])
    fleet_sizes

(* ------------------------------------------------------------------ *)
(* B14: staged rollout — begin/canary/promote vs. one flat broadcast   *)
(* ------------------------------------------------------------------ *)

(** B14 prices the transactional rollout machinery (lib/host/rollout):
    the same 2-edit change set delivered to fleets of 100 / 1000 /
    10000 cached sessions either as one flat incremental broadcast or
    as a full staged lifecycle — [Rollout.begin_] (one diff/typecheck/
    compile, second epoch opened, 10% canary cohort drawn),
    [Rollout.canary] (cohort checkpointed and migrated), then
    [Rollout.promote] (shadow cohort migrated, base epoch retired).
    Both fleets must land on byte-identical digests — the promote ≡
    one-shot-broadcast soundness statement, priced rather than merely
    asserted.  The interesting number is the overhead ratio: staging
    pays one extra per-canary checkpoint + a second migration pass,
    and stays O(edit) in compile work because the change set is still
    diffed and typechecked exactly once. *)
let b14 () : jentry list =
  let module H = Live_host in
  let module P = Live_core.Program in
  let fleet_sizes = [ 100; 1000; 10000 ] in
  let rows_n = 6 in
  let cold = 32 in
  let edits = 4 in
  let app =
    (Live_workloads.Synthetic.compile_exn
       (Live_workloads.Synthetic.host_app ~cold ~rows:rows_n ~version:0 ()))
      .Live_surface.Compile.core
  in
  (* the change set: two stacked cold-global restamps composed into one
     target program — N edits, one diff/typecheck/compile *)
  let restamp (name : string) (stamp : int) (prog : P.t) : P.t =
    match P.find prog name with
    | Some (P.Global { name; ty; _ }) ->
        P.with_def prog
          (P.Global
             { name; ty; init = Live_core.Ast.VNum (float_of_int stamp) })
    | _ -> failwith ("B14: cold global " ^ name ^ " not found")
  in
  let change_set (prog : P.t) ~(stamp : int) : P.t =
    H.Rollout.compose ~base:prog
      [ restamp "c0" stamp; restamp "c1" (stamp + 1) ]
  in
  header "B14: staged_rollout — begin/canary/promote vs. flat broadcast"
    "The same 2-edit change set fleet-wide, either as one flat \
     incremental broadcast or as the full staged lifecycle (stage the \
     second epoch, canary a 10% cohort with checkpoints, promote the \
     rest), with the two fleets' digests cross-checked byte-identical \
     — the price of making every fleet edit a revocable transaction.";
  let make k =
    let cfg =
      {
        H.Registry.default_config with
        H.Registry.width = 32;
        cache = true;
        evaluator = Live_core.Machine.Compiled;
      }
    in
    let reg = H.Registry.create ~config:cfg app in
    (match H.Registry.spawn_many reg k with
    | Ok _ -> ()
    | Error e -> failwith (Live_core.Machine.error_to_string e));
    (* warm-up broadcast: after it the boot code has been checked, so
       every timed delivery starts from the incremental premise *)
    (match
       H.Broadcast.update ~typecheck:H.Broadcast.Incremental reg
         (change_set (H.Registry.program reg) ~stamp:1000)
     with
    | Ok _ -> ()
    | Error e -> failwith (Live_core.Machine.error_to_string e));
    reg
  in
  let run_flat (k : int) : float * string =
    let reg = make k in
    let t0 = Unix.gettimeofday () in
    for stamp = 1 to edits do
      match
        H.Broadcast.update ~typecheck:H.Broadcast.Incremental reg
          (change_set (H.Registry.program reg) ~stamp)
      with
      | Ok _ -> ()
      | Error e -> failwith (Live_core.Machine.error_to_string e)
    done;
    ( (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int edits,
      H.Registry.digest reg )
  in
  let run_staged (k : int) : float * string =
    let reg = make k in
    let t0 = Unix.gettimeofday () in
    for stamp = 1 to edits do
      match
        H.Rollout.begin_ ~typecheck:H.Broadcast.Incremental ~fraction:0.1
          ~seed:(100 + stamp) reg
          (change_set (H.Registry.program reg) ~stamp)
      with
      | Error e -> failwith (Live_core.Machine.error_to_string e)
      | Ok r ->
          ignore (H.Rollout.canary r);
          ignore (H.Rollout.promote r)
    done;
    ( (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int edits,
      H.Registry.digest reg )
  in
  List.concat_map
    (fun k ->
      let flat_ns, flat_digest = run_flat k in
      let staged_ns, staged_digest = run_staged k in
      if not (String.equal flat_digest staged_digest) then
        failwith
          (Printf.sprintf
             "B14: fleet=%d digest mismatch — staged promote diverged from \
              the flat broadcast"
             k);
      let overhead = staged_ns /. flat_ns in
      Printf.printf
        "  fleet=%5d  flat %s/edit  staged %s/edit  overhead %.2fx  digest \
         %s\n"
        k (pp_time flat_ns) (pp_time staged_ns) overhead
        (String.sub flat_digest 0 8);
      [
        {
          id = Printf.sprintf "b14/broadcast-flat/fleet=%05d" k;
          unit_ = "ns";
          value = flat_ns;
        };
        {
          id = Printf.sprintf "b14/rollout-staged/fleet=%05d" k;
          unit_ = "ns";
          value = staged_ns;
        };
        {
          id = Printf.sprintf "b14/overhead/fleet=%05d" k;
          unit_ = "ratio";
          value = overhead;
        };
      ])
    fleet_sizes

(* ------------------------------------------------------------------ *)
(* B15: networked host — end-to-end latency over real sockets          *)
(* ------------------------------------------------------------------ *)

(** B15 prices the wire (lib/net): the full event-sent →
    delta-received path over real Unix-domain sockets, server and
    lockstep client co-scheduled on one thread.  Latency here includes
    everything B10's tick latency leaves out — framing, the socket
    round-trip, select, decode, and the damage diff — so the p50 gap
    between B15 and B10 at the same fleet size {e is} the cost of the
    network layer.  The workload is [independent_rows], where a tap
    dirties exactly one row: the delta-row ratio is the fraction of
    rows actually shipped vs. what full-frame repaints would send —
    the protocol's bandwidth claim, measured rather than asserted. *)
let b15 () : jentry list =
  let module H = Live_host in
  let module Server = Live_net.Server in
  let module Client = Live_net.Client in
  let module Wire = Live_net.Wire in
  let module Prng = Live_conformance.Prng in
  let fleet_conns = [ (10, 10); (100, 25); (1000, 50) ] in
  let rows_n = 16 in
  let core =
    (Live_workloads.Synthetic.compile_exn
       (Live_workloads.Synthetic.independent_rows ~n:rows_n))
      .Live_surface.Compile.core
  in
  header "B15: net_e2e — the networked host over real sockets"
    "lib/net end to end: event-sent -> delta-received latency \
     (framing + socket + select + decode + damage diff included) and \
     the damage-delta bandwidth ratio on independent_rows, vs. fleet \
     size.";
  List.concat_map
    (fun (k, conns) ->
      let rounds = max 4 (2000 / k) in
      let socket =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "itsalive-b15-%d-%d.sock" (Unix.getpid ()) k)
      in
      let cfg = { H.Registry.default_config with H.Registry.width = 48 } in
      let srv = Server.create ~config:cfg ~batch:8 ~socket core in
      let rngs = Array.init k (fun s -> Prng.create (Prng.derive 42 s)) in
      let gen ~slot ~round:_ =
        let rng = rngs.(slot) in
        Wire.Ev_tap { x = 2; y = Prng.int rng (rows_n + 3) }
      in
      let t0 = Unix.gettimeofday () in
      let report =
        match
          Client.run ~socket ~conns ~sessions:k ~rounds ~gen
            ~pump:(fun () -> ignore (Server.step ~timeout:0. srv))
            ()
        with
        | Ok r -> r
        | Error m -> failwith ("b15 client: " ^ m)
      in
      let dt = Unix.gettimeofday () -. t0 in
      Server.stop srv;
      let p q = H.Host_metrics.quantile report.Client.latency q in
      let p50 = p 0.5 and p99 = p 0.99 in
      let eps = float_of_int report.Client.events_sent /. dt in
      let ratio =
        if report.Client.full_rows = 0 then 0.
        else
          float_of_int report.Client.delta_rows
          /. float_of_int report.Client.full_rows
      in
      Printf.printf
        "  fleet=%4d conns=%2d  %8.0f events/s  e2e p50 %s  p99 %s  \
         delta-rows %.1f%%\n"
        k conns eps (pp_time p50) (pp_time p99) (100. *. ratio);
      [
        {
          id = Printf.sprintf "b15/e2e-p50-ns/fleet=%04d" k;
          unit_ = "ns";
          value = p50;
        };
        {
          id = Printf.sprintf "b15/e2e-p99-ns/fleet=%04d" k;
          unit_ = "ns";
          value = p99;
        };
        {
          id = Printf.sprintf "b15/events-per-sec/fleet=%04d" k;
          unit_ = "events/s";
          value = eps;
        };
        {
          (* percent, not a 0-1 ratio: the JSON emitter keeps one
             decimal, which would flatten 0.053 to 0.1 *)
          id = Printf.sprintf "b15/delta-rows-pct/fleet=%04d" k;
          unit_ = "percent";
          value = 100. *. ratio;
        };
      ])
    fleet_conns

(* ------------------------------------------------------------------ *)
(* B16: shard director — multi-shard scaling over the routing proxy    *)
(* ------------------------------------------------------------------ *)

(** B16 prices the shard director (lib/net/director): the same
    end-to-end path as B15 but with the fleet spread across N shard
    servers behind the routing proxy, at shards {1, 2, 4} x fleet
    {100, 1000}.  The [single] column is the B15 configuration — one
    undirected server — so the per-event cost of the extra hop
    (client -> director -> shard -> director -> client, two more
    framings per event) is read directly off the table.  Everything is
    co-scheduled on one thread, so this measures the proxy's overhead,
    not multi-core speedup: the win sharding buys in deployment is N
    processes' worth of CPU, which a single-thread harness cannot
    show; what it {e can} show is that the routing layer's tax stays
    flat as shards are added. *)
let b16 () : jentry list =
  let module H = Live_host in
  let module Server = Live_net.Server in
  let module Client = Live_net.Client in
  let module Director = Live_net.Director in
  let module Wire = Live_net.Wire in
  let module Prng = Live_conformance.Prng in
  let rows_n = 16 in
  let core =
    (Live_workloads.Synthetic.compile_exn
       (Live_workloads.Synthetic.independent_rows ~n:rows_n))
      .Live_surface.Compile.core
  in
  header "B16: shard_scaling — the fleet behind the shard director"
    "lib/net/director: event-sent -> delta-received latency and \
     aggregate throughput with the fleet spread over N shard servers \
     behind the routing proxy, vs. the undirected single server \
     (the B15 baseline).";
  let fleet_conns = [ (100, 25); (1000, 50) ] in
  let shard_counts = [ 1; 2; 4 ] in
  let cfg = { H.Registry.default_config with H.Registry.width = 48 } in
  List.concat_map
    (fun (k, conns) ->
      let rounds = max 4 (2000 / k) in
      let mk_gen () =
        let rngs = Array.init k (fun s -> Prng.create (Prng.derive 42 s)) in
        fun ~slot ~round:_ ->
          Wire.Ev_tap { x = 2; y = Prng.int rngs.(slot) (rows_n + 3) }
      in
      let run_one ~label ~socket ~pump : Client.report * float =
        let t0 = Unix.gettimeofday () in
        match
          Client.run ~socket ~conns ~sessions:k ~rounds ~gen:(mk_gen ()) ~pump
            ()
        with
        | Ok r -> (r, Unix.gettimeofday () -. t0)
        | Error m -> failwith ("b16 " ^ label ^ ": " ^ m)
      in
      let entries ~col (r : Client.report) (dt : float) =
        let p q = H.Host_metrics.quantile r.Client.latency q in
        let eps = float_of_int r.Client.events_sent /. dt in
        Printf.printf
          "  fleet=%4d %-8s  %8.0f events/s  e2e p50 %s  p99 %s\n" k col eps
          (pp_time (p 0.5))
          (pp_time (p 0.99));
        [
          {
            id = Printf.sprintf "b16/e2e-p50-ns/%s/fleet=%04d" col k;
            unit_ = "ns";
            value = p 0.5;
          };
          {
            id = Printf.sprintf "b16/e2e-p99-ns/%s/fleet=%04d" col k;
            unit_ = "ns";
            value = p 0.99;
          };
          {
            id = Printf.sprintf "b16/events-per-sec/%s/fleet=%04d" col k;
            unit_ = "events/s";
            value = eps;
          };
        ]
      in
      (* the baseline column: one undirected server (B15's shape) *)
      let base_sock =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "itsalive-b16-base-%d-%d.sock" (Unix.getpid ()) k)
      in
      let srv = Server.create ~config:cfg ~batch:8 ~socket:base_sock core in
      let br, bdt =
        run_one ~label:"single" ~socket:base_sock
          ~pump:(fun () -> ignore (Server.step ~timeout:0. srv))
      in
      Server.stop srv;
      entries ~col:"single" br bdt
      @ List.concat_map
          (fun n ->
            let spath i =
              Filename.concat
                (Filename.get_temp_dir_name ())
                (Printf.sprintf "itsalive-b16-%d-%d-%d.sock" (Unix.getpid ())
                   k i)
            in
            let shards =
              Array.init n (fun i ->
                  Server.create ~config:cfg ~batch:8 ~socket:(spath i) core)
            in
            let pump_shards () =
              Array.iter (fun s -> ignore (Server.step ~timeout:0. s)) shards
            in
            let dpath = spath 9999 in
            let dir =
              Director.create ~pump:pump_shards ~socket:dpath
                ~shards:(List.init n spath) ()
            in
            let pump () =
              pump_shards ();
              ignore (Director.step ~timeout:0. dir)
            in
            let col = Printf.sprintf "shards=%d" n in
            let r, dt = run_one ~label:col ~socket:dpath ~pump in
            Director.stop dir;
            Array.iter Server.stop shards;
            entries ~col r dt)
          shard_counts)
    fleet_conns

(* ------------------------------------------------------------------ *)
(* B17: shard scale-up — forked shard processes, pipelined clients     *)
(* ------------------------------------------------------------------ *)

(** B17 measures real scale-out, where B16 could only measure the
    routing tax: each shard server is a {e separate child process} (a
    spawned standalone [host_client serve], the CI soak's shape)
    running its own select loop, so on a multi-core machine shards=N
    buys N processes' worth of execution; the client additionally
    pipelines up to W of each session's events before waiting for
    delta credits ([window]).  The machine's core count is emitted as
    [b17/cores] so the speedup figures are interpretable — on a
    single-core container the scale-up curve is honestly flat, and
    the CI runner's multi-core artifact is the number the acceptance
    criterion reads.  Every configuration's fleet digest (observed
    over the wire) must equal an in-process shadow replay of the same
    seeded trace — the transport-invariance oracle guards the fast
    paths at every point of the matrix. *)
let b17 () : jentry list =
  let module H = Live_host in
  let module Server = Live_net.Server in
  let module Client = Live_net.Client in
  let module Director = Live_net.Director in
  let module Wire = Live_net.Wire in
  let module Prng = Live_conformance.Prng in
  let rows_n = 16 in
  (* the synthetic host app, because that is what a spawned
     [host_client serve] shard runs — the shadow replay and the
     in-process single-server baseline must execute the identical
     program *)
  let core =
    (Live_workloads.Synthetic.compile_exn
       (Live_workloads.Synthetic.host_app ~rows:rows_n ~version:0 ()))
      .Live_surface.Compile.core
  in
  header "B17: shard_scaleup — forked shard processes, pipelined clients"
    "Real scale-out: shard servers forked as separate processes \
     behind the director, the client pipelining up to W in-flight \
     events per session; single vs shards {1,2,4} x window {1,8,32}, \
     every configuration digest-checked against an in-process shadow \
     replay.";
  let ncores = Domain.recommended_domain_count () in
  Printf.printf "  (this machine has %d cores)\n" ncores;
  let fleet_conns = [ (1000, 50); (10000, 64) ] in
  let windows = [ 1; 8; 32 ] in
  let shard_counts = [ 1; 2; 4 ] in
  let cfg = { H.Registry.default_config with H.Registry.width = 48 } in
  (* Shard processes are spawned by exec-ing the standalone
     [host_client serve] binary — the CI soak's spawn path — rather
     than [Unix.fork]: OCaml 5 forbids fork in a process that has ever
     created domains, and B11's pool ran earlier in this binary.
     [Sys.command] goes through the C library's [system], which
     fork-execs below the runtime's radar. *)
  let host_client_exe =
    let self = Filename.dirname Sys.executable_name in
    let p = Filename.concat (Filename.dirname self) "bin/host_client.exe" in
    if Sys.file_exists p then p
    else failwith ("b17: host_client binary not found at " ^ p)
  in
  let spawn_shard ~socket =
    let pidfile = socket ^ ".pid" in
    let cmd =
      Printf.sprintf "%s serve --socket %s --width 48 --rows %d >/dev/null 2>&1 & echo $! > %s"
        (Filename.quote host_client_exe)
        (Filename.quote socket) rows_n (Filename.quote pidfile)
    in
    if Sys.command cmd <> 0 then failwith ("b17: cannot spawn shard on " ^ socket);
    let pid =
      let ic = open_in pidfile in
      let p = int_of_string (String.trim (input_line ic)) in
      close_in ic;
      Sys.remove pidfile;
      p
    in
    pid
  in
  let reap pid =
    (* the shell that launched the server has exited, so the process
       is init's child — kill it and let init reap *)
    try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()
  in
  let cores_entry = { id = "b17/cores"; unit_ = "cores"; value = float_of_int ncores } in
  cores_entry
  :: List.concat_map
       (fun (k, conns) ->
         let rounds = max 2 (4000 / k) in
         let mk_gen () =
           let rngs = Array.init k (fun s -> Prng.create (Prng.derive 42 s)) in
           fun ~slot ~round:_ ->
             Wire.Ev_tap { x = 2; y = Prng.int rngs.(slot) (rows_n + 3) }
         in
         (* the trace is a pure function of (fleet, rounds) — one shadow
            replay serves every topology x window cell *)
         let shadow =
           let reg = H.Registry.create ~config:cfg core in
           (match H.Registry.spawn_many reg k with
           | Ok _ -> ()
           | Error e -> failwith (Live_core.Machine.error_to_string e));
           let sched = H.Scheduler.create ~batch:8 reg in
           let gen = mk_gen () in
           for round = 0 to rounds - 1 do
             for s = 0 to k - 1 do
               (match gen ~slot:s ~round with
               | Wire.Ev_tap { x; y } ->
                   ignore (H.Registry.offer reg s (H.Registry.Tap { x; y }))
               | Wire.Ev_back -> ignore (H.Registry.offer reg s H.Registry.Back));
             done;
             match H.Scheduler.drain sched with
             | Ok _ -> ()
             | Error m -> failwith ("b17 shadow: " ^ m)
           done;
           H.Registry.digest reg
         in
         let eps_tbl : (string * int, float) Hashtbl.t = Hashtbl.create 16 in
         let run_cfg ~col ~window ~socket ~pump ~digest_of :
             jentry list =
           let t0 = Unix.gettimeofday () in
           let r =
             match
               Client.run ~socket ~conns ~sessions:k ~rounds ~gen:(mk_gen ())
                 ~window
                 ~barrier:(fun _ -> false)
                 ~pump ()
             with
             | Ok r -> r
             | Error m -> failwith (Printf.sprintf "b17 %s: %s" col m)
           in
           let dt = Unix.gettimeofday () -. t0 in
           let d = digest_of () in
           if not (String.equal d shadow) then
             failwith
               (Printf.sprintf
                  "b17 %s window=%d fleet=%d: digest %s <> shadow %s — the \
                   fast path changed behaviour"
                  col window k d shadow);
           let p q = H.Host_metrics.quantile r.Client.latency q in
           let eps = float_of_int r.Client.events_sent /. dt in
           Hashtbl.replace eps_tbl (col, window) eps;
           Printf.printf
             "  fleet=%5d %-8s window=%2d  %8.0f events/s  e2e p50 %s  p99 \
              %s  digest ok\n%!"
             k col window eps
             (pp_time (p 0.5))
             (pp_time (p 0.99));
           [
             {
               id =
                 Printf.sprintf "b17/events-per-sec/%s/window=%02d/fleet=%05d"
                   col window k;
               unit_ = "events/s";
               value = eps;
             };
             {
               id =
                 Printf.sprintf "b17/e2e-p50-ns/%s/window=%02d/fleet=%05d" col
                   window k;
               unit_ = "ns";
               value = p 0.5;
             };
             {
               id =
                 Printf.sprintf "b17/e2e-p99-ns/%s/window=%02d/fleet=%05d" col
                   window k;
               unit_ = "ns";
               value = p 0.99;
             };
           ]
         in
         let tmp = Filename.get_temp_dir_name () in
         let single_entries =
           List.concat_map
             (fun w ->
               let socket =
                 Filename.concat tmp
                   (Printf.sprintf "itsalive-b17-s-%d-%d-%d.sock"
                      (Unix.getpid ()) k w)
               in
               let srv = Server.create ~config:cfg ~batch:8 ~socket core in
               let entries =
                 run_cfg ~col:"single" ~window:w ~socket
                   ~pump:(fun () -> ignore (Server.step ~timeout:0. srv))
                   ~digest_of:(fun () -> H.Registry.digest (Server.registry srv))
               in
               Server.stop srv;
               entries)
             windows
         in
         let sharded_entries =
           List.concat_map
             (fun n ->
               List.concat_map
                 (fun w ->
                   let spath i =
                     Filename.concat tmp
                       (Printf.sprintf "itsalive-b17-%d-%d-%d-%d-%d.sock"
                          (Unix.getpid ()) k n w i)
                   in
                   let pids =
                     Array.init n (fun i -> spawn_shard ~socket:(spath i))
                   in
                   Fun.protect ~finally:(fun () -> Array.iter reap pids)
                   @@ fun () ->
                   let dpath = spath 9999 in
                   let dir =
                     Director.create ~socket:dpath
                       ~shards:(List.init n spath) ()
                   in
                   let col = Printf.sprintf "shards=%d" n in
                   let entries =
                     run_cfg ~col ~window:w ~socket:dpath
                       ~pump:(fun () -> ignore (Director.step ~timeout:0. dir))
                       ~digest_of:(fun () -> Director.fleet_digest dir)
                   in
                   Director.stop dir;
                   for i = 0 to n - 1 do
                     try Unix.unlink (spath i) with Unix.Unix_error _ -> ()
                   done;
                   entries)
                 windows)
             shard_counts
         in
         let eps col w = Hashtbl.find eps_tbl (col, w) in
         let ratios =
           List.map
             (fun w ->
               {
                 id =
                   Printf.sprintf "b17/scaleup-shards4-vs-1/window=%02d/fleet=%05d"
                     w k;
                 unit_ = "ratio";
                 value = eps "shards=4" w /. eps "shards=1" w;
               })
             windows
           @ [
               {
                 id = Printf.sprintf "b17/pipeline-win8-vs-1/shards=1/fleet=%05d" k;
                 unit_ = "ratio";
                 value = eps "shards=1" 8 /. eps "shards=1" 1;
               };
             ]
         in
         List.iter
           (fun w ->
             Printf.printf
               "  -> fleet=%5d window=%2d: shards=4 is %.2fx shards=1\n" k w
               (eps "shards=4" w /. eps "shards=1" w))
           windows;
         Printf.printf
           "  -> fleet=%5d shards=1: window=8 is %.2fx window=1\n" k
           (eps "shards=1" 8 /. eps "shards=1" 1);
         single_entries @ sharded_entries @ ratios)
       fleet_conns

(* ------------------------------------------------------------------ *)
(* B18: wire encode allocation — fresh buffers vs the reused scratch   *)
(* ------------------------------------------------------------------ *)

(** B18 prices one frame encode, the operation the data plane performs
    for every delta of every session: [Wire.encode] allocates two
    fresh buffers and an output string per call, while [encode_into]
    appends to a caller-owned staging buffer through a reused scratch
    — the per-connection discipline the server and director use.  The
    companion [/alloc] entries (emitted for every Bechamel point) are
    the satellite's confirmation that the scratch path allocates a
    small constant rather than per-frame garbage. *)
let b18 () =
  let module Wire = Live_net.Wire in
  let frame =
    Wire.Host
      (Wire.Delta
         {
           session = 7;
           height = 16;
           acks = 2;
           rows = [ (0, "updated row zero"); (9, "updated row nine") ];
         })
  in
  let scratch = Buffer.create 256 in
  let staging = Buffer.create 4096 in
  run_experiment "B18: wire_encode — per-frame allocation on the data plane"
    "Wire.encode allocates fresh buffers per frame; encode_into reuses \
     a per-connection scratch and appends to the outbound staging \
     buffer — the /alloc entries confirm the difference."
    (Test.make_grouped ~name:"b18"
       [
         Test.make ~name:"encode"
           (Staged.stage (fun () -> ignore (Wire.encode frame)));
         Test.make ~name:"encode-into"
           (Staged.stage (fun () ->
                if Buffer.length staging > 1_000_000 then Buffer.clear staging;
                Wire.encode_into ~scratch staging frame));
       ])

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf
    "itsalive benchmark harness — regenerating the paper's performance \
     discussion\n";
  Printf.printf "(quota per point: %.2fs; set BENCH_QUOTA to change)\n" quota;
  let r1 = b1 () in
  let r2 = b2 () in
  let r3 = b3 () in
  let r4 = b4 () in
  let r5 = b5 () in
  let r6 = b6 () in
  let r7 = b7 () in
  let r8 = b8 () in
  let r9 = b9 () in
  let r10 = b10 () in
  let r11 = b11 () in
  let r12 = b12 () in
  let r13 = b13 () in
  let r14 = b14 () in
  let r15 = b15 () in
  let r16 = b16 () in
  let r17 = b17 () in
  let r18 = b18 () in
  let alloc_entries =
    List.rev_map
      (fun (name, b) -> { id = name ^ "/alloc"; unit_ = "B/run"; value = b })
      !alloc_rows
  in
  write_json
    (List.concat_map entries_of_rows
       [ r1; r2; r3; r4; r5; r6; r7; r8; r9; r18 ]
    @ r10 @ r11 @ r12 @ r13 @ r14 @ r15 @ r16 @ r17 @ alloc_entries);
  Printf.printf "\nDone. See EXPERIMENTS.md for interpretation.\n"
