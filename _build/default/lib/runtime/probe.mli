(** Probing: live debugging output for non-UI code — the paper's
    Sec. 5 future-work suggestion ("the use of boxed statements to
    produce debugging output in batch computations"), implemented.

    A probe evaluates pure or render code against the running
    session's {e current} model state and shows the boxes it builds
    (or its value, for pure code) on a scratch display.  Because
    render code cannot write globals, probing is side-effect-free by
    construction; state code is rejected. *)

type error =
  | Unknown_function of string
  | Wrong_effect of string
  | Bad_argument of string
  | Probe_failed of string

val error_to_string : error -> string

type result_ = {
  value : Live_core.Ast.value;
  boxes : Live_core.Boxcontent.t;
  screenshot : string;
}

val probe_expr :
  ?width:int -> Session.t -> Live_core.Ast.expr -> (result_, error) result
(** Probe a closed core expression (typechecked first; must be pure or
    render effect). *)

val probe_call :
  ?width:int ->
  Session.t ->
  func:string ->
  arg:Live_core.Ast.value ->
  (result_, error) result
(** Probe a global function applied to an argument. *)

val probe_source :
  ?width:int -> Live_session.t -> string -> (result_, error) result
(** Probe a surface-syntax expression against a live session — e.g.
    [probe_source ls "monthly_payment(price, apr, 360)"].  It may use
    the program's globals, functions and builtins. *)
