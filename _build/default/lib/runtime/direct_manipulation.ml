(** Direct manipulation (Sec. 3): change a box's attributes from the
    live view, with the change "enshrined in code" — the editor inserts
    or updates the corresponding [box.attr := v] statement inside the
    boxed statement that created the box, recompiles, and applies the
    UPDATE transition.

    This is the I1 improvement of Sec. 3.1: select a box, pick the
    margin property, and nudge the number while watching the live view. *)

module Sast = Live_surface.Sast

type error =
  | No_such_box  (** the srcid does not name a boxed statement *)
  | Bad_attribute of string
  | Edit_failed of Live_session.error

let error_to_string = function
  | No_such_box -> "no boxed statement with that id"
  | Bad_attribute m -> m
  | Edit_failed e -> Live_session.error_to_string e

(** Build the replacement block for a boxed statement: update the last
    top-level [box.attr := _] if one exists, else append one.  Fresh
    statements get ids above every existing id; ids are reassigned by
    the re-parse anyway. *)
let upsert_attr (ast : Sast.program) (stmt : Sast.stmt) (attr : string)
    (value : Sast.expr) : Sast.stmt =
  match stmt.Sast.sdesc with
  | Sast.SBoxed block ->
      let updated = ref false in
      let block =
        List.map
          (fun (s : Sast.stmt) ->
            match s.Sast.sdesc with
            | Sast.SAttr (a, _) when String.equal a attr && not !updated ->
                updated := true;
                { s with Sast.sdesc = Sast.SAttr (attr, value) }
            | _ -> s)
          block
      in
      let block =
        if !updated then block
        else begin
          let max_id = Sast.fold_stmts (fun m s -> max m s.Sast.sid) 0 ast in
          block
          @ [
              {
                Sast.sdesc = Sast.SAttr (attr, value);
                sloc = Live_surface.Loc.dummy;
                sid = max_id + 1;
              };
            ]
        end
      in
      { stmt with Sast.sdesc = Sast.SBoxed block }
  | _ -> stmt

(** Set an attribute of the box created by the given boxed statement.
    [value] is surface expression syntax (e.g. ["12"] or
    ["\"light blue\""]). *)
let set_attribute (t : Live_session.t) ~(srcid : Live_core.Srcid.t)
    ~(attr : string) ~(value : string) :
    (Live_session.edit_outcome, error) result =
  match Live_core.Attrs.lookup attr with
  | None -> Error (Bad_attribute (Fmt.str "unknown attribute '%s'" attr))
  | Some (Live_core.Typ.Fn _) ->
      Error
        (Bad_attribute
           (Fmt.str "attribute '%s' holds a handler; edit the code" attr))
  | Some _ -> (
      match
        try Ok (Live_surface.Parser.parse_expr_string value)
        with Live_surface.Lexer.Error (m, _) | Live_surface.Parser.Error (m, _)
        -> Error (Bad_attribute m)
      with
      | Error e -> Error e
      | Ok value_expr -> (
          let ast = (Live_session.compiled t).Live_surface.Compile.ast in
          match
            Sast.rewrite_stmt ast (Live_core.Srcid.to_int srcid) (fun s ->
                match s.Sast.sdesc with
                | Sast.SBoxed _ -> [ upsert_attr ast s attr value_expr ]
                | _ -> [ s ])
          with
          | None -> Error No_such_box
          | Some ast' -> (
              (* verify the target really was a boxed statement *)
              match Sast.find_stmt ast (Live_core.Srcid.to_int srcid) with
              | Some { Sast.sdesc = Sast.SBoxed _; _ } -> (
                  match Live_session.edit_ast t ast' with
                  | Ok outcome -> Ok outcome
                  | Error e -> Error (Edit_failed e))
              | _ -> Error No_such_box)))

(** Read the current value of an attribute on the first box a boxed
    statement produced — what the property editor shows before the
    user changes it. *)
let get_attribute (t : Live_session.t) ~(srcid : Live_core.Srcid.t)
    ~(attr : string) : Live_core.Ast.value option =
  match Session.display_content (Live_session.session t) with
  | None -> None
  | Some b -> (
      match Live_core.Boxcontent.paths_of_srcid srcid b with
      | [] -> None
      | path :: _ ->
          Option.bind
            (Live_core.Boxcontent.box_at path b)
            (Live_core.Boxcontent.own_attr attr))
