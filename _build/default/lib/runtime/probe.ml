(** Probing: live debugging output for non-UI code.

    Sec. 5 of the paper suggests, as future work, "the use of boxed
    statements to produce debugging output in batch computations".
    This module realises that idea: evaluate an expression or a global
    function against the {e current} model state of a running session,
    in render mode, and show the boxes it produces — a scratch display
    that never touches the session's real state (render code cannot
    write globals, so probing is side-effect-free by construction).

    A pure function probes as its printed result; a render function
    probes as the box tree it builds.  Combined with live editing this
    gives the REPL-with-state experience the paper contrasts with
    command-line REPLs (Sec. 2): the probe sees the program's actual
    globals, not a synthetic environment. *)

module Ast = Live_core.Ast
module Typ = Live_core.Typ
module Eff = Live_core.Eff

type error =
  | Unknown_function of string
  | Wrong_effect of string  (** state-effect code cannot be probed *)
  | Bad_argument of string
  | Probe_failed of string

let error_to_string = function
  | Unknown_function f -> Fmt.str "unknown function '%s'" f
  | Wrong_effect m -> m
  | Bad_argument m -> m
  | Probe_failed m -> m

type result_ = {
  value : Ast.value;  (** the function's return value *)
  boxes : Live_core.Boxcontent.t;  (** debugging output it posted *)
  screenshot : string;  (** the boxes, rendered *)
}

(** Evaluate a closed core expression in render mode against the
    session's current store. *)
let probe_expr ?(width = 48) (session : Session.t) (e : Ast.expr) :
    (result_, error) result =
  let st = Session.state session in
  let prog = st.Live_core.State.code in
  (* type it first: only pure or render expressions are probeable *)
  match Live_core.Typecheck.infer prog Live_core.Typecheck.empty_gamma e with
  | Error m -> Error (Bad_argument m)
  | Ok a ->
      if not (Eff.sub a.Live_core.Typecheck.eff Eff.Render) then
        Error
          (Wrong_effect
             "only pure or render code can be probed; state code would \
              mutate the model (run it through a handler instead)")
      else begin
        match
          Live_core.Eval.eval_render prog st.Live_core.State.store e
        with
        | value, boxes ->
            let boxes =
              if Live_core.Boxcontent.count_items boxes = 0 then
                (* pure expressions: show the value itself *)
                [ Live_core.Boxcontent.Leaf value ]
              else boxes
            in
            Ok
              {
                value;
                boxes;
                screenshot = Live_ui.Render.screenshot ~width boxes;
              }
        | exception Live_core.Eval.Stuck m -> Error (Probe_failed m)
        | exception Live_core.Eval.Out_of_fuel ->
            Error (Probe_failed "probe diverged")
      end

(** Probe a global function applied to an argument value. *)
let probe_call ?width (session : Session.t) ~(func : string)
    ~(arg : Ast.value) : (result_, error) result =
  let st = Session.state session in
  match Live_core.Program.find_func st.Live_core.State.code func with
  | None -> Error (Unknown_function func)
  | Some _ -> probe_expr ?width session (Ast.App (Ast.Fn func, Ast.Val arg))

(** Probe a surface-syntax expression typed against a live session —
    e.g. [probe_source ls "monthly_payment(100000, 4.5, 360)"].

    The expression is wrapped into a scratch render body and compiled
    with the session's current program text, so it can use globals,
    functions and builtins exactly like code in the editor. *)
let probe_source ?width (ls : Live_session.t) (src : string) :
    (result_, error) result =
  let wrapped =
    Printf.sprintf "%s\n\npage %s()\ninit { }\nrender {\n  post (%s)\n}\n"
      (Live_session.source ls)
      (* a name users cannot collide with is not expressible in surface
         syntax, so use an unlikely one and fail gracefully on clash *)
      "probe_scratch_page_" src
  in
  match Live_surface.Compile.compile wrapped with
  | Error e -> Error (Bad_argument (Live_surface.Compile.error_to_string e))
  | Ok compiled -> (
      match
        Live_core.Program.find_page compiled.Live_surface.Compile.core
          "probe_scratch_page_"
      with
      | None -> Error (Probe_failed "internal error: scratch page missing")
      | Some (_, _, render_fn) ->
          (* evaluate the scratch render body against the live store,
             under the session's (equivalent) current program *)
          let st = Session.state (Live_session.session ls) in
          let e = Ast.App (render_fn, Ast.eunit) in
          let prog = compiled.Live_surface.Compile.core in
          (match
             Live_core.Eval.eval_render prog st.Live_core.State.store e
           with
          | _, boxes ->
              (* the wrapper's [post] made the last leaf the probed
                 expression's value; surface it as [value], and drop it
                 from the display when it is an uninformative "()" next
                 to real debugging output *)
              let value, boxes =
                match List.rev boxes with
                | Live_core.Boxcontent.Leaf v :: (_ :: _ as rest)
                  when Ast.equal_value v Ast.vunit ->
                    (v, List.rev rest)
                | Live_core.Boxcontent.Leaf v :: _ -> (v, boxes)
                | _ -> (Ast.vunit, boxes)
              in
              Ok
                {
                  value;
                  boxes;
                  screenshot = Live_ui.Render.screenshot ?width boxes;
                }
          | exception Live_core.Eval.Stuck m -> Error (Probe_failed m)
          | exception Live_core.Eval.Out_of_fuel ->
              Error (Probe_failed "probe diverged")))
