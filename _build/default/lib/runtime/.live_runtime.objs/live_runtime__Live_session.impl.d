lib/runtime/live_session.ml: Live_core Live_surface Live_ui Navigation Result Session
