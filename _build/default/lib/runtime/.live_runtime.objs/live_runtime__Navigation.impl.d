lib/runtime/navigation.ml: List Live_core Live_surface Live_ui Option Session
