lib/runtime/stepper.ml: Buffer Fmt List Live_core Live_surface Option Printf
