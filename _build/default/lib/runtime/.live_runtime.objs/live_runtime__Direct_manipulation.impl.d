lib/runtime/direct_manipulation.ml: Fmt List Live_core Live_session Live_surface Option Session String
