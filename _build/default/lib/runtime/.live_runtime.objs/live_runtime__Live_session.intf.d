lib/runtime/live_session.mli: Live_core Live_surface Live_ui Navigation Session
