lib/runtime/probe.mli: Live_core Live_session Session
