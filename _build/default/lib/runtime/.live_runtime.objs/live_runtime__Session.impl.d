lib/runtime/session.ml: Live_core Live_ui Option Result Trace
