lib/runtime/navigation.mli: Live_core Live_surface Live_ui Session
