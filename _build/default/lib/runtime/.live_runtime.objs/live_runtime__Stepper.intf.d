lib/runtime/stepper.mli: Format Live_core Live_surface
