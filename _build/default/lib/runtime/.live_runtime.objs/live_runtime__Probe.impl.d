lib/runtime/probe.ml: Fmt List Live_core Live_session Live_surface Live_ui Printf Session
