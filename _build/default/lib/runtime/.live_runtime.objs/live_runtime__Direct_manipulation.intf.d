lib/runtime/direct_manipulation.mli: Live_core Live_session
