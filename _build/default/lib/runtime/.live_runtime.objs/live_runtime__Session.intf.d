lib/runtime/session.mli: Live_core Live_ui Trace
