(** An interactive session: a system state (Fig. 7) driven by the
    transition rules (Fig. 9), connected to the character-cell display.

    The session keeps the state {e stable} between interactions: every
    public operation ends by draining the event queue and re-rendering
    (the "system is always live" loop of Sec. 4.2).  Screen-coordinate
    taps are resolved to handlers by hit-testing the laid-out box tree
    — the implementation counterpart of the TAP rule's premise
    [[ontap = v] ∈ B].

    A session also records the trace of user interactions, which the
    restart baseline replays and which this runtime deliberately never
    needs. *)

module Machine = Live_core.Machine
module State = Live_core.State

type t = {
  mutable state : State.t;
  width : int;
  fuel : int;
  mutable layout : Live_ui.Layout.node option;
  mutable trace : Trace.t;
  cache : Live_ui.Layout.cache option;  (** incremental layout, if on *)
}

let ( let* ) = Result.bind

let stabilize (t : t) : (unit, Machine.error) result =
  let* st = Machine.run_to_stable ~fuel:t.fuel t.state in
  t.state <- st;
  t.layout <- None;
  Ok ()

let create ?(width = 48) ?(fuel = Live_core.Eval.default_fuel)
    ?(incremental = false) (program : Live_core.Program.t) :
    (t, Machine.error) result =
  let t =
    {
      state = State.initial program;
      width;
      fuel;
      layout = None;
      trace = Trace.empty;
      cache = (if incremental then Some (Live_ui.Layout.create_cache ()) else None);
    }
  in
  let* () = stabilize t in
  Ok t

let state (t : t) = t.state
let trace (t : t) = t.trace
let width (t : t) = t.width

let display_content (t : t) : Live_core.Boxcontent.t option =
  match t.state.State.display with
  | State.Invalid -> None
  | State.Shown b -> Some b

(** The layout of the current display, computed lazily and cached until
    the next transition. *)
let layout (t : t) : Live_ui.Layout.node option =
  match t.layout with
  | Some l -> Some l
  | None -> (
      match display_content t with
      | None -> None
      | Some b ->
          let l = Live_ui.Layout.layout_page ?cache:t.cache ~width:t.width b in
          t.layout <- Some l;
          Some l)

let screenshot (t : t) : string =
  match layout t with
  | None -> "<display invalid>\n"
  | Some root ->
      let fb =
        Live_ui.Framebuffer.create ~width:t.width
          ~height:(max 1 (Live_ui.Layout.total_height root))
      in
      Live_ui.Render.paint fb root;
      Live_ui.Framebuffer.to_text fb

let screenshot_ansi (t : t) : string =
  match display_content t with
  | None -> "<display invalid>\n"
  | Some b -> Live_ui.Render.screenshot_ansi ~width:t.width b

(** Outcome of a coordinate tap. *)
type tap_result =
  | Tapped  (** a handler ran; the display was refreshed *)
  | No_handler  (** nothing tappable at that position *)

(** Tap the display at screen coordinates, like a user's finger.
    Records the interaction in the trace either way (the user did
    touch the screen; whether it hit is a property of the current UI). *)
let tap (t : t) ~(x : int) ~(y : int) : (tap_result, Machine.error) result =
  t.trace <- Trace.add (Trace.Tap { x; y }) t.trace;
  match layout t with
  | None -> Ok No_handler
  | Some root -> (
      match Live_ui.Layout.handler_at root ~x ~y with
      | None -> Ok No_handler
      | Some handler ->
          let* st = Machine.tap t.state ~handler in
          t.state <- st;
          let* () = stabilize t in
          Ok Tapped)

(** Tap the first handler in document order — convenient in tests. *)
let tap_first (t : t) : (tap_result, Machine.error) result =
  match display_content t with
  | None -> Ok No_handler
  | Some b -> (
      match Live_core.Boxcontent.first_handler b with
      | None -> Ok No_handler
      | Some handler ->
          let* st = Machine.tap t.state ~handler in
          t.state <- st;
          let* () = stabilize t in
          Ok Tapped)

(** The BACK button. *)
let back (t : t) : (unit, Machine.error) result =
  t.trace <- Trace.add Trace.Back t.trace;
  t.state <- Machine.back t.state;
  stabilize t

(** Apply a code update (the UPDATE transition) and re-render.
    Returns the fix-up report: which globals and stack entries the
    update deleted. *)
let update (t : t) (new_code : Live_core.Program.t) :
    (Live_core.Fixup.report, Machine.error) result =
  let report = ref None in
  let* st = Machine.update ~report new_code t.state in
  t.state <- st;
  let* () = stabilize t in
  Ok
    (Option.value !report
       ~default:{ Live_core.Fixup.dropped_globals = []; dropped_pages = [] })

let current_page (t : t) : (string * Live_core.Ast.value) option =
  State.top_page t.state

let store (t : t) = t.state.State.store

let cache_stats (t : t) : (int * int) option =
  Option.map Live_ui.Layout.cache_stats t.cache
