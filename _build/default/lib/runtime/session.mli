(** An interactive session: a system state driven by the Fig. 9
    transitions and connected to the character-cell display.  Every
    public operation leaves the state stable with a valid display
    (Sec. 4.2's liveness loop). *)

type t

val create :
  ?width:int ->
  ?fuel:int ->
  ?incremental:bool ->
  Live_core.Program.t ->
  (t, Live_core.Machine.error) result
(** Boot to the first stable state.  [incremental] turns on the
    Sec. 5 layout-reuse cache (pixel-identical; see
    [test/test_incremental.ml]). *)

val state : t -> Live_core.State.t
val store : t -> Live_core.Store.t
val trace : t -> Trace.t
val width : t -> int
val current_page : t -> (string * Live_core.Ast.value) option

val display_content : t -> Live_core.Boxcontent.t option
(** [None] iff the display is [⊥] (never, between operations). *)

val layout : t -> Live_ui.Layout.node option
(** The current display's layout, cached until the next transition. *)

val screenshot : t -> string
val screenshot_ansi : t -> string

type tap_result =
  | Tapped  (** a handler ran and the display refreshed *)
  | No_handler  (** nothing tappable there *)

val tap : t -> x:int -> y:int -> (tap_result, Live_core.Machine.error) result
(** Tap at screen coordinates; recorded in the trace either way. *)

val tap_first : t -> (tap_result, Live_core.Machine.error) result

val back : t -> (unit, Live_core.Machine.error) result

val update :
  t ->
  Live_core.Program.t ->
  (Live_core.Fixup.report, Live_core.Machine.error) result
(** Apply the UPDATE transition and re-render; reports what the
    Fig. 12 fix-up deleted. *)

val cache_stats : t -> (int * int) option
(** (hits, misses) of the incremental layout cache, if enabled. *)
