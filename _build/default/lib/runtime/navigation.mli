(** UI-Code Navigation (Sec. 3, Fig. 2): the bidirectional mapping
    between boxes in the live view and [boxed] statements in the code
    view. *)

type selection = {
  srcid : Live_core.Srcid.t;
  span : Live_surface.Loc.t;  (** source span of the boxed statement *)
  text : string;  (** its printed source *)
}

val selection_of_srcid :
  Live_surface.Compile.compiled -> Live_core.Srcid.t -> selection option

val select_at :
  Session.t ->
  Live_surface.Compile.compiled ->
  x:int ->
  y:int ->
  selection option
(** Live view -> code: deepest boxed statement whose box contains the
    point. *)

val enclosing_at :
  Session.t ->
  Live_surface.Compile.compiled ->
  x:int ->
  y:int ->
  selection list
(** The chain of enclosing boxed statements, innermost first — the
    paper's nested selection mode (Sec. 5). *)

val frames_of_stmt :
  Session.t -> Live_core.Srcid.t -> Live_ui.Geometry.rect list
(** Code -> live view: every frame the statement produced (several in
    loops — Fig. 2's collective selection). *)

val visible_srcids : Session.t -> Live_core.Srcid.t list
