(** Direct manipulation (Sec. 3): change a box's attributes from the
    live view, with the change enshrined in code — the editor upserts
    the corresponding [box.attr := v] statement inside the boxed
    statement that created the box, recompiles, and applies UPDATE.
    This is Sec. 3.1's I1 improvement. *)

type error =
  | No_such_box
  | Bad_attribute of string
  | Edit_failed of Live_session.error

val error_to_string : error -> string

val set_attribute :
  Live_session.t ->
  srcid:Live_core.Srcid.t ->
  attr:string ->
  value:string ->
  (Live_session.edit_outcome, error) result
(** [value] is surface expression syntax (["12"], ["\"light blue\""],
    ["1 + 1"]).  Handler attributes are not settable this way.  A
    value that fails to type leaves the program untouched. *)

val get_attribute :
  Live_session.t ->
  srcid:Live_core.Srcid.t ->
  attr:string ->
  Live_core.Ast.value option
(** Current value on the first box the statement produced — what a
    property editor shows before the user changes it. *)
