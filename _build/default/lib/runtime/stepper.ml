(** A small-step tracer over the Fig. 8 specification machine: reduce
    an expression step by step and record each intermediate term and
    the side effects it produced.  Used by [liveui step] to show the
    calculus at work, and by anyone studying how the surface language
    lowers and reduces. *)

module Ast = Live_core.Ast
module Eff = Live_core.Eff
module Eval = Live_core.Eval

type entry = {
  index : int;
  term : string;  (** the term before this step, pretty-printed *)
  note : string option;  (** a store/queue/box change this step made *)
}

type outcome =
  | Finished of Ast.value
  | Got_stuck of string
  | Ran_out of int  (** more steps remained after the limit *)

type trace = {
  steps : entry list;  (** in order; the initial term is index 0 *)
  outcome : outcome;
  store : Live_core.Store.t;
  box : Live_core.Boxcontent.t;
}

let describe_change (before : Eval.cfg) (after : Eval.cfg) : string option =
  if not (Live_core.Store.equal before.Eval.store after.Eval.store) then
    Some
      (Fmt.str "store: %a" Live_core.Store.pp after.Eval.store)
  else if
    Live_core.Fqueue.length after.Eval.queue
    > Live_core.Fqueue.length before.Eval.queue
  then
    Some
      (Fmt.str "enqueued: %a"
         (Live_core.Fqueue.pp Live_core.Event.pp)
         after.Eval.queue)
  else if
    Live_core.Boxcontent.count_items after.Eval.box
    > Live_core.Boxcontent.count_items before.Eval.box
  then Some "box content grew"
  else None

(** Trace up to [limit] steps of [e] under the given mode. *)
let trace ?(mode = Eff.State) ?(limit = 200)
    (prog : Live_core.Program.t) (store : Live_core.Store.t) (e : Ast.expr)
    : trace =
  let rec go i (cfg : Eval.cfg) (e : Ast.expr) (acc : entry list) =
    let entry note =
      { index = i; term = Live_core.Pretty.expr_to_string e; note }
    in
    if i >= limit then
      ( List.rev (entry None :: acc),
        Ran_out limit,
        cfg )
    else
      match Eval.step mode prog cfg e with
      | Eval.Value ->
          ( List.rev (entry None :: acc),
            Finished (Option.get (Ast.as_value e)),
            cfg )
      | Eval.Wrong m -> (List.rev (entry None :: acc), Got_stuck m, cfg)
      | Eval.Next (cfg', e') ->
          let note = describe_change cfg cfg' in
          go (i + 1) cfg' e' (entry note :: acc)
  in
  let steps, outcome, cfg = go 0 (Eval.cfg_of_store store) e [] in
  { steps; outcome; store = cfg.Eval.store; box = cfg.Eval.box }

let pp_outcome ppf = function
  | Finished v -> Fmt.pf ppf "value: %a" Live_core.Pretty.pp_value v
  | Got_stuck m -> Fmt.pf ppf "stuck: %s" m
  | Ran_out n -> Fmt.pf ppf "stopped after %d steps" n

(** Render a trace as text, one numbered line per step. *)
let to_string (t : trace) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Printf.sprintf "%4d  %s\n" e.index e.term);
      match e.note with
      | Some note -> Buffer.add_string buf (Printf.sprintf "      -- %s\n" note)
      | None -> ())
    t.steps;
  Buffer.add_string buf (Fmt.str "%a\n" pp_outcome t.outcome);
  Buffer.contents buf

(** Trace a surface expression against a compiled program: the
    expression may call the program's functions and read its globals.
    The store starts empty (initial values apply via EP-GLOBAL-2). *)
let trace_source ?mode ?limit (compiled : Live_surface.Compile.compiled)
    (src : string) : (trace, string) result =
  (* compile the expression in a scratch function of the program *)
  let wrapped =
    Printf.sprintf "%s\n\npage step_scratch_page_()\ninit { }\nrender {\n  post (%s)\n}\n"
      compiled.Live_surface.Compile.source src
  in
  match Live_surface.Compile.compile wrapped with
  | Error e -> Error (Live_surface.Compile.error_to_string e)
  | Ok c -> (
      match
        Live_core.Program.find_page c.Live_surface.Compile.core
          "step_scratch_page_"
      with
      | None -> Error "internal error: scratch page missing"
      | Some (_, _, render_fn) ->
          Ok
            (trace ?mode:(Some (Option.value mode ~default:Eff.Render))
               ?limit c.Live_surface.Compile.core Live_core.Store.empty
               (Ast.App (render_fn, Ast.eunit))))
