(** A tracer over the Fig. 8 small-step specification machine: reduce
    an expression step by step, recording each intermediate term and
    the side effect (store write, enqueued event, box growth) it
    performed.  Drives [liveui step]. *)

type entry = {
  index : int;
  term : string;  (** the term before this step, pretty-printed *)
  note : string option;  (** side effect this step performed, if any *)
}

type outcome =
  | Finished of Live_core.Ast.value
  | Got_stuck of string
  | Ran_out of int

type trace = {
  steps : entry list;
  outcome : outcome;
  store : Live_core.Store.t;
  box : Live_core.Boxcontent.t;
}

val trace :
  ?mode:Live_core.Eff.t ->
  ?limit:int ->
  Live_core.Program.t ->
  Live_core.Store.t ->
  Live_core.Ast.expr ->
  trace
(** Trace up to [limit] (default 200) steps under the given mode
    (default [State]). *)

val trace_source :
  ?mode:Live_core.Eff.t ->
  ?limit:int ->
  Live_surface.Compile.compiled ->
  string ->
  (trace, string) result
(** Trace a surface expression against a compiled program; it may call
    the program's functions and read its globals. *)

val pp_outcome : Format.formatter -> outcome -> unit
val to_string : trace -> string
