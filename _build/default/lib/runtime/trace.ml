(** Event traces: the sequence of user interactions a session has seen.

    Live programming does not need traces — its whole point is that
    the model state persists across edits.  Traces exist for the
    {e baseline}: the conventional edit-compile-run cycle has to replay
    the user's navigation to regain UI context after a restart (steps
    4-5 of the Sec. 2 workflow), and the [live_vs_restart] benchmark
    measures exactly that replay cost.  Traces address taps by screen
    coordinates, like a real user: after a code change the same
    coordinate may hit a different (or no) box — the divergence problem
    the paper attributes to trace re-execution (Sec. 1). *)

type entry =
  | Tap of { x : int; y : int }
  | Back

type t = entry list
(** oldest first *)

let empty : t = []

let add (e : entry) (t : t) : t = t @ [ e ]

let length = List.length

let pp_entry ppf = function
  | Tap { x; y } -> Fmt.pf ppf "tap(%d,%d)" x y
  | Back -> Fmt.string ppf "back"

let pp = Fmt.list ~sep:(Fmt.any "; ") pp_entry

let equal (a : t) (b : t) = a = b
